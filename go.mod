module substream

go 1.24
