// Package integration exercises cross-module paths end to end: workload
// generation → Bernoulli sampling → estimation, checked against exact
// statistics, plus degenerate-input robustness and determinism of the
// whole pipeline.
package integration

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

func TestMonitorPipelineAcrossWorkloads(t *testing.T) {
	cases := []workload.Workload{
		workload.Zipf(80000, 2000, 1.1, 1),
		workload.Uniform(80000, 1000, 2),
		workload.ConstantFreq(4000, 20, 3),
	}
	nf, _ := workload.NetFlow(80000, 3000, 1.05, 1.3, 4, 4)
	cases = append(cases, nf)

	const p = 0.2
	for _, wl := range cases {
		t.Run(wl.Name, func(t *testing.T) {
			f := stream.NewFreq(wl.Stream)
			mon := core.NewMonitor(core.MonitorConfig{P: p, HHAlpha: 0.02}, rng.New(7))
			r := rng.New(8)
			_ = sample.NewBernoulli(p).Pipe(wl.Stream, r, func(it stream.Item) error {
				mon.Observe(it)
				return nil
			})
			rep := mon.Report()

			if err := stats1(rep.EstimatedLength, float64(f.F1()), 0.05); err != "" {
				t.Fatalf("length: %s", err)
			}
			if err := stats1(rep.Fk, f.Fk(2), 0.4); err != "" {
				t.Fatalf("F2: %s", err)
			}
			mult := math.Max(rep.F0/float64(f.F0()), float64(f.F0())/rep.F0)
			if mult > 4/math.Sqrt(p) {
				t.Fatalf("F0 mult error %v exceeds Lemma 8 bound", mult)
			}
			if f.Entropy() > 1 {
				if ratio := rep.Entropy / f.Entropy(); ratio < 0.5 || ratio > 2 {
					t.Fatalf("entropy ratio %v outside [1/2, 2]", ratio)
				}
			}
			// All true 2% hitters found.
			reported := map[stream.Item]bool{}
			for _, h := range rep.F1HeavyHitters {
				reported[h.Item] = true
			}
			for _, hh := range f.FkHeavyHitters(1, 0.02) {
				if !reported[hh.Item] {
					t.Fatalf("missed F1 heavy hitter %d (f=%d)", hh.Item, hh.Freq)
				}
			}
		})
	}
}

func stats1(est, exact, tol float64) string {
	if exact == 0 {
		return ""
	}
	if rel := math.Abs(est-exact) / exact; rel > tol {
		return fmt.Sprintf("estimate %v vs exact %v (rel %v > %v)", est, exact, rel, tol)
	}
	return ""
}

func TestDegenerateInputs(t *testing.T) {
	// Every estimator must survive empty, single-item, and constant
	// sampled streams without panicking and with sane outputs.
	builders := map[string]func() interface {
		Observe(stream.Item)
	}{
		"fk": func() interface{ Observe(stream.Item) } {
			return core.NewFkEstimator(core.FkConfig{K: 3, P: 0.5}, rng.New(1))
		},
		"f0": func() interface{ Observe(stream.Item) } {
			return core.NewF0Estimator(core.F0Config{P: 0.5}, rng.New(1))
		},
		"entropy": func() interface{ Observe(stream.Item) } {
			return core.NewEntropyEstimator(core.EntropyConfig{P: 0.5}, rng.New(1))
		},
		"hh1": func() interface{ Observe(stream.Item) } {
			return core.NewF1HeavyHitters(core.F1HHConfig{P: 0.5, Alpha: 0.1}, rng.New(1))
		},
		"hh2": func() interface{ Observe(stream.Item) } {
			return core.NewF2HeavyHitters(core.F2HHConfig{P: 0.5, Alpha: 0.1}, rng.New(1))
		},
		"monitor": func() interface{ Observe(stream.Item) } {
			return core.NewMonitor(core.MonitorConfig{P: 0.5}, rng.New(1))
		},
	}
	inputs := map[string]stream.Slice{
		"empty":    {},
		"single":   {42},
		"constant": bytes42(5000),
	}
	for bName, build := range builders {
		for iName, in := range inputs {
			t.Run(bName+"/"+iName, func(t *testing.T) {
				e := build()
				for _, it := range in {
					e.Observe(it)
				}
				// Reaching here without panic is the main assertion;
				// spot-check outputs on the types that expose them.
				switch v := e.(type) {
				case *core.FkEstimator:
					if est := v.Estimate(); est < 0 || math.IsNaN(est) {
						t.Fatalf("Fk estimate %v", est)
					}
				case *core.F0Estimator:
					if est := v.Estimate(); est < 0 || math.IsNaN(est) {
						t.Fatalf("F0 estimate %v", est)
					}
				case *core.Monitor:
					rep := v.Report()
					if math.IsNaN(rep.Entropy) || math.IsNaN(rep.Fk) {
						t.Fatalf("NaN in report %+v", rep)
					}
				}
			})
		}
	}
}

func bytes42(n int) stream.Slice {
	s := make(stream.Slice, n)
	for i := range s {
		s[i] = 42
	}
	return s
}

func TestPipelineDeterministic(t *testing.T) {
	wl := workload.Zipf(30000, 500, 1.0, 9)
	run := func() core.Report {
		mon := core.NewMonitor(core.MonitorConfig{P: 0.3}, rng.New(10))
		_ = sample.NewBernoulli(0.3).Pipe(wl.Stream, rng.New(11), func(it stream.Item) error {
			mon.Observe(it)
			return nil
		})
		return mon.Report()
	}
	a, b := run(), run()
	if a.SampledLength != b.SampledLength || len(a.F1HeavyHitters) != len(b.F1HeavyHitters) {
		t.Fatalf("pipeline not deterministic:\n%+v\n%+v", a, b)
	}
	// Float aggregates sum over Go maps, whose iteration order varies,
	// so identical runs agree only up to floating-point reassociation.
	closeEnough := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	if !closeEnough(a.Fk, b.Fk) || !closeEnough(a.F0, b.F0) || !closeEnough(a.Entropy, b.Entropy) {
		t.Fatalf("pipeline not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestLemma2CollisionExpectation(t *testing.T) {
	// E[C_ℓ(L)] = p^ℓ·C_ℓ(P): the core identity behind Algorithm 1,
	// checked end to end through the Bernoulli sampler.
	wl := workload.Zipf(20000, 200, 1.0, 12)
	f := stream.NewFreq(wl.Stream)
	const p, trials = 0.3, 250
	r := rng.New(13)
	b := sample.NewBernoulli(p)
	for _, l := range []int{2, 3} {
		var sum float64
		for tr := 0; tr < trials; tr++ {
			L := b.Apply(wl.Stream, r.Split())
			sum += stream.NewFreq(L).Collisions(l)
		}
		mean := sum / trials
		want := math.Pow(p, float64(l)) * f.Collisions(l)
		if math.Abs(mean-want)/want > 0.05 {
			t.Fatalf("l=%d: mean C_l(L) = %v, want p^l·C_l(P) = %v", l, mean, want)
		}
	}
}

func TestSampleFreqShortcutMatchesStreaming(t *testing.T) {
	// The Bin(f, p) shortcut and the streaming sampler must produce
	// statistically indistinguishable collision counts (same mean).
	wl := workload.Zipf(20000, 300, 1.1, 14)
	f := stream.NewFreq(wl.Stream)
	const p, trials = 0.25, 300
	b := sample.NewBernoulli(p)
	r1, r2 := rng.New(15), rng.New(16)
	var viaStream, viaFreq float64
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(wl.Stream, r1.Split())
		viaStream += stream.NewFreq(L).Collisions(2)
		g := b.SampleFreq(f, r2.Split())
		viaFreq += g.Collisions(2)
	}
	viaStream /= trials
	viaFreq /= trials
	if math.Abs(viaStream-viaFreq)/viaStream > 0.05 {
		t.Fatalf("shortcut disagrees: streaming %v vs Bin-shortcut %v", viaStream, viaFreq)
	}
}

func TestStreamCodecFeedsEstimators(t *testing.T) {
	// Serialize a workload with the text codec, read it back, and verify
	// the estimators see the identical stream.
	wl := workload.Zipf(10000, 100, 1.0, 17)
	var buf bytes.Buffer
	if err := stream.WriteText(&buf, wl.Stream); err != nil {
		t.Fatal(err)
	}
	back, err := stream.ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := stream.NewFreq(wl.Stream), stream.NewFreq(back)
	if fa.Fk(2) != fb.Fk(2) || fa.F0() != fb.F0() {
		t.Fatal("codec round trip changed the stream")
	}
}

func TestAdaptiveSamplingEndToEnd(t *testing.T) {
	// The adaptive-p extension: halve the rate mid-stream, estimates of
	// F1 and F2 stay unbiased via per-phase corrections.
	wl := workload.Zipf(40000, 300, 1.0, 18)
	f := stream.NewFreq(wl.Stream)
	ab := sample.NewAdaptiveBernoulli([]int{20000}, []float64{0.4, 0.1})
	const trials = 400
	r := rng.New(19)
	var sumF1, sumF2 float64
	for tr := 0; tr < trials; tr++ {
		tagged := ab.Apply(wl.Stream, r.Split())
		sumF1 += ab.EstimateF1(tagged)
		sumF2 += ab.EstimateF2(tagged)
	}
	meanF1, meanF2 := sumF1/trials, sumF2/trials
	if math.Abs(meanF1-float64(f.F1()))/float64(f.F1()) > 0.02 {
		t.Fatalf("adaptive F1 mean %v, exact %d", meanF1, f.F1())
	}
	if math.Abs(meanF2-f.Fk(2))/f.Fk(2) > 0.05 {
		t.Fatalf("adaptive F2 mean %v, exact %v", meanF2, f.Fk(2))
	}
}
