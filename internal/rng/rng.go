// Package rng provides the deterministic randomness substrate used by every
// randomized component in the library: fast seedable PRNGs, pairwise- and
// k-wise-independent hash families, and samplers for the distributions the
// workload generators and sketches need.
//
// Everything in this package is deterministic given a seed, which is what
// makes the experiment harness and the statistical tests reproducible.
package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// splitmix64Next advances a SplitMix64 state and returns the next output.
// SplitMix64 is used both as a tiny standalone PRNG and to expand a single
// 64-bit seed into the larger state vectors of other generators.
func splitmix64Next(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitMix64 is a tiny, fast, seedable PRNG with a 64-bit state.
// It passes BigCrush and is the standard seed-expansion generator.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (s *SplitMix64) Uint64() uint64 {
	return splitmix64Next(&s.state)
}

// Xoshiro256 implements the xoshiro256** generator of Blackman and Vigna:
// 256 bits of state, period 2^256−1, excellent statistical quality, and
// much faster than crypto-grade sources. It is the default PRNG for
// samplers and workload generators.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via SplitMix64,
// as recommended by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	var x Xoshiro256
	sm := seed
	for i := range x.s {
		x.s[i] = splitmix64Next(&sm)
	}
	// A theoretically-possible all-zero state would lock the generator.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

// State returns the generator's 256-bit state vector, for serializers
// that must reconstruct the exact generator (a decoded summary continues
// the same pseudo-random stream its source would have).
func (x *Xoshiro256) State() [4]uint64 { return x.s }

// FromState reconstructs a Xoshiro256 from a State() vector. The all-zero
// vector is the one state the generator cannot leave, so it is rejected —
// it can only come from corrupt input, never from State().
func FromState(s [4]uint64) (*Xoshiro256, error) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return nil, fmt.Errorf("rng: all-zero xoshiro256 state")
	}
	return &Xoshiro256{s: s}, nil
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random 64-bit value.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Split returns a new generator whose stream is independent (for all
// practical purposes) from the receiver's: it is seeded from the next
// output of the receiver through SplitMix64. Split lets one experiment
// seed fan out into per-trial and per-component generators without
// correlated streams.
func (x *Xoshiro256) Split() *Xoshiro256 {
	return New(x.Uint64())
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1]: never zero, so it is safe
// as the random threshold η in the level-set estimator and as the input to
// logarithms in exponential sampling.
func (x *Xoshiro256) Float64Open() float64 {
	return (float64(x.Uint64()>>11) + 1) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Int63 returns a uniform value in [0, 2^63).
func (x *Xoshiro256) Int63() int64 {
	return int64(x.Uint64() >> 1)
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	// Lemire's nearly-divisionless method.
	v := x.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			v = x.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	return hi
}

// Bool returns true with probability 1/2.
func (x *Xoshiro256) Bool() bool { return x.Uint64()&1 == 1 }

// Bernoulli returns true with probability p. Values of p outside [0,1]
// are clamped.
func (x *Xoshiro256) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (x *Xoshiro256) NormFloat64() float64 {
	for {
		u := 2*x.Float64() - 1
		v := 2*x.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (x *Xoshiro256) ExpFloat64() float64 {
	return -math.Log(x.Float64Open())
}

// Perm returns a uniform random permutation of [0, n) as a slice.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := x.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function,
// via the Fisher–Yates algorithm.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo), via the
// single-instruction intrinsic.
func mul64(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}
