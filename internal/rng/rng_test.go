package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical C implementation.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("output %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestXoshiroZeroSeedNotStuck(t *testing.T) {
	x := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[x.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed-0 generator produced only %d distinct values of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(7)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64OpenRange(t *testing.T) {
	x := New(7)
	for i := 0; i < 100000; i++ {
		f := x.Float64Open()
		if f <= 0 || f > 1 {
			t.Fatalf("Float64Open out of (0,1]: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	// Std error is 1/sqrt(12n) ≈ 0.00065; allow 6 sigma.
	if math.Abs(mean-0.5) > 0.004 {
		t.Fatalf("Float64 mean = %v, want ≈ 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	x := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 30} {
		for i := 0; i < 1000; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniform(t *testing.T) {
	// Chi-squared uniformity check over 8 buckets.
	x := New(5)
	const buckets, n = 8, 800000
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[x.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 7 degrees of freedom; 99.99% quantile ≈ 29. Use 40 for slack.
	if chi2 > 40 {
		t.Fatalf("Uint64n uniformity chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestBernoulliRate(t *testing.T) {
	x := New(9)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		const n = 400000
		hits := 0
		for i := 0; i < n; i++ {
			if x.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		tol := 6 * math.Sqrt(p*(1-p)/n)
		if math.Abs(got-p) > tol {
			t.Fatalf("Bernoulli(%v) rate = %v, tolerance %v", p, got, tol)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	x := New(1)
	for i := 0; i < 100; i++ {
		if x.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !x.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if x.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !x.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	x := New(13)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := x.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈ 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	x := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := x.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ≈ 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(19)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	x := New(23)
	const n, trials = 5, 100000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[x.Perm(n)[0]]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("Perm first-element bias at %d: %v", i, counts)
		}
	}
}

func TestShuffleMatchesPermDistribution(t *testing.T) {
	x := New(29)
	const trials = 60000
	counts := map[[3]int]int{}
	for i := 0; i < trials; i++ {
		a := [3]int{0, 1, 2}
		x.Shuffle(3, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a]++
	}
	if len(counts) != 6 {
		t.Fatalf("Shuffle produced %d of 6 permutations", len(counts))
	}
	expected := float64(trials) / 6
	for perm, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("Shuffle bias: perm %v count %d, expected %v", perm, c, expected)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	child := parent.Split()
	// Child and parent streams should not collide element-wise.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split generator matched parent %d times", same)
	}
}

func TestMul64AgainstBig(t *testing.T) {
	// Property: mul64 matches 128-bit multiplication decomposed manually.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via the identity on the low 64 bits and a second
		// decomposition for the high bits.
		if lo != a*b {
			return false
		}
		wantHi, _ := mulParts(a, b)
		return hi == wantHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// mulParts is an independent reimplementation of the 128-bit product used
// to cross-check mul64.
func mulParts(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	ll := al * bl
	lh := al * bh
	hl := ah * bl
	hh := ah * bh
	mid := lh + (ll >> 32) + hl&mask
	_ = mid
	carry := ((ll >> 32) + (lh & mask) + (hl & mask)) >> 32
	hi = hh + (lh >> 32) + (hl >> 32) + carry
	lo = a * b
	return
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkXoshiroFloat64(b *testing.B) {
	x := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += x.Float64()
	}
	_ = sink
}
