package rng

import "math/bits"

// This file implements the hash families the sketches rely on.
//
// CountMin needs pairwise-independent row hashes; CountSketch needs
// pairwise-independent bucket hashes plus 4-wise-independent sign hashes;
// the AMS tug-of-war sketch needs 4-wise-independent signs; the level-set
// estimator needs a pairwise-independent map to (0,1] for geometric
// universe sampling. All are provided by two families:
//
//   - multiply–shift (Dietzfelbinger et al.): 2-universal, extremely fast,
//     used where plain universality suffices (bucket selection);
//   - degree-(k−1) polynomials over the Mersenne prime field GF(2^61−1):
//     exactly k-wise independent, used where the analysis needs it.

// mersenne61 is the Mersenne prime 2^61 − 1, the field modulus for the
// polynomial hash family.
const mersenne61 = (1 << 61) - 1

// mulmod61 returns a*b mod 2^61−1 without overflow, exploiting the
// Mersenne structure: for x = hi·2^61 + lo, x ≡ hi + lo (mod 2^61−1).
func mulmod61(a, b uint64) uint64 {
	hi, lo := mul64(a, b)
	// lo61 holds the low 61 bits; the remaining 67 bits are hi·8 + lo>>61.
	lo61 := lo & mersenne61
	rest := hi<<3 | lo>>61
	s := lo61 + rest
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// addmod61 returns a+b mod 2^61−1 for a, b < 2^61−1.
func addmod61(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// PolyHash is a k-wise-independent hash function h: uint64 → [0, 2^61−1),
// implemented as a random polynomial of degree k−1 over GF(2^61−1).
type PolyHash struct {
	coef []uint64 // coef[0] + coef[1]·x + … evaluated by Horner's rule
}

// NewPolyHash draws a fresh k-wise-independent hash function using r for
// its coefficients. It panics if k < 1.
func NewPolyHash(k int, r *Xoshiro256) *PolyHash {
	if k < 1 {
		panic("rng: NewPolyHash requires k >= 1")
	}
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = r.Uint64n(mersenne61)
	}
	// A zero leading coefficient only reduces the effective degree for a
	// negligible fraction of draws; the family stays k-wise independent,
	// so no correction is needed.
	return &PolyHash{coef: coef}
}

// Coefficients returns a copy of the polynomial's coefficients, low
// degree first. Together with NewPolyHashFromCoefficients it lets
// serialized sketches reconstruct their exact hash functions.
func (h *PolyHash) Coefficients() []uint64 {
	out := make([]uint64, len(h.coef))
	copy(out, h.coef)
	return out
}

// NewPolyHashFromCoefficients reconstructs a hash function from
// previously extracted coefficients. It panics on an empty slice or a
// coefficient outside the field.
func NewPolyHashFromCoefficients(coef []uint64) *PolyHash {
	if len(coef) == 0 {
		panic("rng: NewPolyHashFromCoefficients requires coefficients")
	}
	cp := make([]uint64, len(coef))
	for i, c := range coef {
		if c >= mersenne61 {
			panic("rng: coefficient outside GF(2^61-1)")
		}
		cp[i] = c
	}
	return &PolyHash{coef: cp}
}

// Hash evaluates the polynomial at x mod 2^61−1 by Horner's rule.
func (h *PolyHash) Hash(x uint64) uint64 {
	// Reduce x into the field first.
	x = x % mersenne61
	acc := h.coef[len(h.coef)-1]
	for i := len(h.coef) - 2; i >= 0; i-- {
		acc = addmod61(mulmod61(acc, x), h.coef[i])
	}
	return acc
}

// Bucket maps x to [0, buckets) with k-wise independence (up to the
// negligible non-uniformity of reducing a 61-bit value mod buckets).
func (h *PolyHash) Bucket(x uint64, buckets int) int {
	return int(h.Hash(x) % uint64(buckets))
}

// Sign maps x to ±1 with the independence of the underlying family;
// constructed from the hash's low bit.
func (h *PolyHash) Sign(x uint64) int {
	if h.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// Unit maps x to a value in (0, 1], k-wise independently. It is the map
// used to drive geometric universe sampling: Pr[Unit(x) ≤ q] ≈ q.
func (h *PolyHash) Unit(x uint64) float64 {
	return (float64(h.Hash(x)) + 1) / float64(mersenne61)
}

// Mod61 reduces an arbitrary 64-bit value into the field [0, 2^61−1)
// without a hardware divide, using the Mersenne fold x ≡ (x>>61) + (x &
// 2^61−1): the fold lands in [0, 2^61+6], so one conditional subtraction
// yields exactly x % (2^61−1).
func Mod61(x uint64) uint64 {
	s := (x >> 61) + (x & mersenne61)
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// Mod61Lanes4 reduces four 64-bit values into the field at once,
// bit-identical to four Mod61 calls. The four folds carry no data
// dependencies on one another, so the CPU overlaps their shift/mask/add
// chains — the reduction half of the 4-lane batch kernels.
func Mod61Lanes4(x0, x1, x2, x3 uint64) (r0, r1, r2, r3 uint64) {
	s0 := (x0 >> 61) + (x0 & mersenne61)
	s1 := (x1 >> 61) + (x1 & mersenne61)
	s2 := (x2 >> 61) + (x2 & mersenne61)
	s3 := (x3 >> 61) + (x3 & mersenne61)
	if s0 >= mersenne61 {
		s0 -= mersenne61
	}
	if s1 >= mersenne61 {
		s1 -= mersenne61
	}
	if s2 >= mersenne61 {
		s2 -= mersenne61
	}
	if s3 >= mersenne61 {
		s3 -= mersenne61
	}
	return s0, s1, s2, s3
}

// Hash2 is the specialized degree-1 polynomial kernel h(x) = A·x + B over
// GF(2^61−1): the pairwise-independent hash every bucket-choice and
// universe-sampling site uses, stored as two plain words so sketches can
// keep rows in contiguous arrays instead of chasing *PolyHash pointers.
// It is bit-identical to NewPolyHash(2, r).Hash for the same coefficient
// draws.
type Hash2 struct {
	A, B uint64 // h(x) = A·x + B; B is coefficient 0, A coefficient 1
}

// NewHash2 draws a pairwise-independent kernel from r, consuming exactly
// the draws NewPolyHash(2, r) would (constant coefficient first), so
// seeded construction sequences stay reproducible across the two
// representations.
func NewHash2(r *Xoshiro256) Hash2 {
	b := r.Uint64n(mersenne61)
	a := r.Uint64n(mersenne61)
	return Hash2{A: a, B: b}
}

// Hash2FromCoefficients rebuilds a kernel from serialized polynomial
// coefficients, low degree first. It panics on a wrong count or a
// coefficient outside the field — decoders validate before calling.
func Hash2FromCoefficients(coef []uint64) Hash2 {
	if len(coef) != 2 {
		panic("rng: Hash2 requires exactly 2 coefficients")
	}
	if coef[0] >= mersenne61 || coef[1] >= mersenne61 {
		panic("rng: coefficient outside GF(2^61-1)")
	}
	return Hash2{A: coef[1], B: coef[0]}
}

// Coefficients returns the polynomial coefficients low degree first, the
// serialized form shared with PolyHash.
func (h Hash2) Coefficients() []uint64 { return []uint64{h.B, h.A} }

// Hash evaluates the kernel at x, reducing x into the field first.
func (h Hash2) Hash(x uint64) uint64 { return h.Eval(Mod61(x)) }

// Eval evaluates the kernel at an already-reduced x < 2^61−1 — the form
// batch loops use after hoisting the per-item reduction out of the
// per-row work.
func (h Hash2) Eval(x uint64) uint64 {
	return addmod61(mulmod61(h.A, x), h.B)
}

// Unit maps x to a value in (0, 1], pairwise independently, like
// PolyHash.Unit.
func (h Hash2) Unit(x uint64) float64 {
	return (float64(h.Hash(x)) + 1) / float64(mersenne61)
}

// EvalLanes4 evaluates the kernel at four already-reduced inputs,
// bit-identical to four Eval calls. The lanes share only the read-only
// coefficients, so their multiply-reduce chains are independent and the
// CPU pipelines them — the per-row inner step of the 4-lane batch loops
// in internal/sketch.
func (h Hash2) EvalLanes4(x0, x1, x2, x3 uint64) (r0, r1, r2, r3 uint64) {
	hi0, lo0 := mul64(h.A, x0)
	hi1, lo1 := mul64(h.A, x1)
	hi2, lo2 := mul64(h.A, x2)
	hi3, lo3 := mul64(h.A, x3)
	m0 := foldmul61(hi0, lo0)
	m1 := foldmul61(hi1, lo1)
	m2 := foldmul61(hi2, lo2)
	m3 := foldmul61(hi3, lo3)
	return addmod61(m0, h.B), addmod61(m1, h.B), addmod61(m2, h.B), addmod61(m3, h.B)
}

// HashLanes4 evaluates the kernel at four arbitrary 64-bit inputs,
// folding the Mod61 reduction into the lane evaluation — bit-identical
// to four Hash calls.
func (h Hash2) HashLanes4(x0, x1, x2, x3 uint64) (r0, r1, r2, r3 uint64) {
	x0, x1, x2, x3 = Mod61Lanes4(x0, x1, x2, x3)
	return h.EvalLanes4(x0, x1, x2, x3)
}

// foldmul61 completes a widening multiply's reduction mod 2^61−1 — the
// tail of mulmod61 with the bits.Mul64 already done, so lane kernels can
// issue all four multiplies before any reduction.
func foldmul61(hi, lo uint64) uint64 {
	s := (lo & mersenne61) + (hi<<3 | lo>>61)
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// Hash4 is the specialized degree-3 polynomial kernel — the 4-wise
// independent sign hash of CountSketch and AMS — with the Horner loop
// fully unrolled over four plain words. Bit-identical to
// NewPolyHash(4, r).Hash for the same draws.
type Hash4 struct {
	C0, C1, C2, C3 uint64 // h(x) = C3·x³ + C2·x² + C1·x + C0
}

// NewHash4 draws a 4-wise-independent kernel from r, consuming exactly
// the draws NewPolyHash(4, r) would.
func NewHash4(r *Xoshiro256) Hash4 {
	var h Hash4
	h.C0 = r.Uint64n(mersenne61)
	h.C1 = r.Uint64n(mersenne61)
	h.C2 = r.Uint64n(mersenne61)
	h.C3 = r.Uint64n(mersenne61)
	return h
}

// Hash4FromCoefficients rebuilds a kernel from serialized polynomial
// coefficients, low degree first. It panics on a wrong count or a
// coefficient outside the field.
func Hash4FromCoefficients(coef []uint64) Hash4 {
	if len(coef) != 4 {
		panic("rng: Hash4 requires exactly 4 coefficients")
	}
	for _, c := range coef {
		if c >= mersenne61 {
			panic("rng: coefficient outside GF(2^61-1)")
		}
	}
	return Hash4{C0: coef[0], C1: coef[1], C2: coef[2], C3: coef[3]}
}

// Coefficients returns the polynomial coefficients low degree first.
func (h Hash4) Coefficients() []uint64 { return []uint64{h.C0, h.C1, h.C2, h.C3} }

// Hash evaluates the kernel at x, reducing x into the field first.
func (h Hash4) Hash(x uint64) uint64 { return h.Eval(Mod61(x)) }

// Eval evaluates the kernel at an already-reduced x < 2^61−1.
func (h Hash4) Eval(x uint64) uint64 {
	acc := addmod61(mulmod61(h.C3, x), h.C2)
	acc = addmod61(mulmod61(acc, x), h.C1)
	return addmod61(mulmod61(acc, x), h.C0)
}

// Sign maps x to ±1 from the hash's low bit, like PolyHash.Sign.
func (h Hash4) Sign(x uint64) int {
	return int(h.Hash(x)&1)*2 - 1
}

// EvalLanes4 evaluates the kernel at four already-reduced inputs,
// bit-identical to four Eval calls. Each Horner step issues the four
// lanes' multiplies back to back before reducing, so the three-step
// dependency chain of one lane overlaps the others'.
func (h Hash4) EvalLanes4(x0, x1, x2, x3 uint64) (r0, r1, r2, r3 uint64) {
	a0 := addmod61(mulmod61(h.C3, x0), h.C2)
	a1 := addmod61(mulmod61(h.C3, x1), h.C2)
	a2 := addmod61(mulmod61(h.C3, x2), h.C2)
	a3 := addmod61(mulmod61(h.C3, x3), h.C2)
	a0 = addmod61(mulmod61(a0, x0), h.C1)
	a1 = addmod61(mulmod61(a1, x1), h.C1)
	a2 = addmod61(mulmod61(a2, x2), h.C1)
	a3 = addmod61(mulmod61(a3, x3), h.C1)
	a0 = addmod61(mulmod61(a0, x0), h.C0)
	a1 = addmod61(mulmod61(a1, x1), h.C0)
	a2 = addmod61(mulmod61(a2, x2), h.C0)
	a3 = addmod61(mulmod61(a3, x3), h.C0)
	return a0, a1, a2, a3
}

// HashLanes4 evaluates the kernel at four arbitrary 64-bit inputs,
// folding the Mod61 reduction in — bit-identical to four Hash calls.
func (h Hash4) HashLanes4(x0, x1, x2, x3 uint64) (r0, r1, r2, r3 uint64) {
	x0, x1, x2, x3 = Mod61Lanes4(x0, x1, x2, x3)
	return h.EvalLanes4(x0, x1, x2, x3)
}

// Range maps 61-bit field hashes to [0, n) with Lemire's multiply-shift
// reduction (fastrange): bucket = floor(h·n / 2^61), one widening
// multiply and two shifts instead of a hardware divide. Requires
// h < 2^61 (every polynomial-family hash satisfies this). The map sends
// equal-size contiguous hash ranges to each bucket, so it inherits the
// hash family's independence guarantees exactly like `mod n` does — it
// just slices the field into consecutive runs instead of interleaved
// residue classes, with the same ≤ n/2^61 non-uniformity.
type Range struct{ n uint64 }

// NewRange builds a reducer onto [0, n). It panics if n == 0.
func NewRange(n uint64) Range {
	if n == 0 {
		panic("rng: NewRange requires n >= 1")
	}
	return Range{n: n}
}

// N returns the bucket count.
func (r Range) N() uint64 { return r.n }

// Bucket maps a field hash h < 2^61 to [0, n).
func (r Range) Bucket(h uint64) uint64 {
	hi, lo := bits.Mul64(h, r.n)
	return hi<<3 | lo>>61
}

// MultShift is a 2-universal multiply–shift hash for 64-bit keys:
// h(x) = (a·x + b) >> (64 − outBits), with odd a. It is the fastest hash in
// the package and is used for bucket selection where pairwise universality
// is all the analysis requires.
type MultShift struct {
	a, b    uint64
	outBits uint
}

// NewMultShift draws a multiply–shift function producing outBits-bit
// outputs, 1 ≤ outBits ≤ 64.
func NewMultShift(outBits uint, r *Xoshiro256) *MultShift {
	if outBits < 1 || outBits > 64 {
		panic("rng: NewMultShift outBits out of range")
	}
	return &MultShift{a: r.Uint64() | 1, b: r.Uint64(), outBits: outBits}
}

// Hash returns the outBits-bit hash of x.
func (h *MultShift) Hash(x uint64) uint64 {
	return (h.a*x + h.b) >> (64 - h.outBits)
}

// Mix64 is a fixed strong bit-mixer (the SplitMix64 finalizer). It is not
// an independent hash family — use it only for deterministic scrambles
// such as deriving per-level seeds, never where the analysis needs
// independence across keys.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
