package rng

// This file implements the hash families the sketches rely on.
//
// CountMin needs pairwise-independent row hashes; CountSketch needs
// pairwise-independent bucket hashes plus 4-wise-independent sign hashes;
// the AMS tug-of-war sketch needs 4-wise-independent signs; the level-set
// estimator needs a pairwise-independent map to (0,1] for geometric
// universe sampling. All are provided by two families:
//
//   - multiply–shift (Dietzfelbinger et al.): 2-universal, extremely fast,
//     used where plain universality suffices (bucket selection);
//   - degree-(k−1) polynomials over the Mersenne prime field GF(2^61−1):
//     exactly k-wise independent, used where the analysis needs it.

// mersenne61 is the Mersenne prime 2^61 − 1, the field modulus for the
// polynomial hash family.
const mersenne61 = (1 << 61) - 1

// mulmod61 returns a*b mod 2^61−1 without overflow, exploiting the
// Mersenne structure: for x = hi·2^61 + lo, x ≡ hi + lo (mod 2^61−1).
func mulmod61(a, b uint64) uint64 {
	hi, lo := mul64(a, b)
	// lo61 holds the low 61 bits; the remaining 67 bits are hi·8 + lo>>61.
	lo61 := lo & mersenne61
	rest := hi<<3 | lo>>61
	s := lo61 + rest
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// addmod61 returns a+b mod 2^61−1 for a, b < 2^61−1.
func addmod61(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// PolyHash is a k-wise-independent hash function h: uint64 → [0, 2^61−1),
// implemented as a random polynomial of degree k−1 over GF(2^61−1).
type PolyHash struct {
	coef []uint64 // coef[0] + coef[1]·x + … evaluated by Horner's rule
}

// NewPolyHash draws a fresh k-wise-independent hash function using r for
// its coefficients. It panics if k < 1.
func NewPolyHash(k int, r *Xoshiro256) *PolyHash {
	if k < 1 {
		panic("rng: NewPolyHash requires k >= 1")
	}
	coef := make([]uint64, k)
	for i := range coef {
		coef[i] = r.Uint64n(mersenne61)
	}
	// A zero leading coefficient only reduces the effective degree for a
	// negligible fraction of draws; the family stays k-wise independent,
	// so no correction is needed.
	return &PolyHash{coef: coef}
}

// Coefficients returns a copy of the polynomial's coefficients, low
// degree first. Together with NewPolyHashFromCoefficients it lets
// serialized sketches reconstruct their exact hash functions.
func (h *PolyHash) Coefficients() []uint64 {
	out := make([]uint64, len(h.coef))
	copy(out, h.coef)
	return out
}

// NewPolyHashFromCoefficients reconstructs a hash function from
// previously extracted coefficients. It panics on an empty slice or a
// coefficient outside the field.
func NewPolyHashFromCoefficients(coef []uint64) *PolyHash {
	if len(coef) == 0 {
		panic("rng: NewPolyHashFromCoefficients requires coefficients")
	}
	cp := make([]uint64, len(coef))
	for i, c := range coef {
		if c >= mersenne61 {
			panic("rng: coefficient outside GF(2^61-1)")
		}
		cp[i] = c
	}
	return &PolyHash{coef: cp}
}

// Hash evaluates the polynomial at x mod 2^61−1 by Horner's rule.
func (h *PolyHash) Hash(x uint64) uint64 {
	// Reduce x into the field first.
	x = x % mersenne61
	acc := h.coef[len(h.coef)-1]
	for i := len(h.coef) - 2; i >= 0; i-- {
		acc = addmod61(mulmod61(acc, x), h.coef[i])
	}
	return acc
}

// Bucket maps x to [0, buckets) with k-wise independence (up to the
// negligible non-uniformity of reducing a 61-bit value mod buckets).
func (h *PolyHash) Bucket(x uint64, buckets int) int {
	return int(h.Hash(x) % uint64(buckets))
}

// Sign maps x to ±1 with the independence of the underlying family;
// constructed from the hash's low bit.
func (h *PolyHash) Sign(x uint64) int {
	if h.Hash(x)&1 == 1 {
		return 1
	}
	return -1
}

// Unit maps x to a value in (0, 1], k-wise independently. It is the map
// used to drive geometric universe sampling: Pr[Unit(x) ≤ q] ≈ q.
func (h *PolyHash) Unit(x uint64) float64 {
	return (float64(h.Hash(x)) + 1) / float64(mersenne61)
}

// MultShift is a 2-universal multiply–shift hash for 64-bit keys:
// h(x) = (a·x + b) >> (64 − outBits), with odd a. It is the fastest hash in
// the package and is used for bucket selection where pairwise universality
// is all the analysis requires.
type MultShift struct {
	a, b    uint64
	outBits uint
}

// NewMultShift draws a multiply–shift function producing outBits-bit
// outputs, 1 ≤ outBits ≤ 64.
func NewMultShift(outBits uint, r *Xoshiro256) *MultShift {
	if outBits < 1 || outBits > 64 {
		panic("rng: NewMultShift outBits out of range")
	}
	return &MultShift{a: r.Uint64() | 1, b: r.Uint64(), outBits: outBits}
}

// Hash returns the outBits-bit hash of x.
func (h *MultShift) Hash(x uint64) uint64 {
	return (h.a*x + h.b) >> (64 - h.outBits)
}

// Mix64 is a fixed strong bit-mixer (the SplitMix64 finalizer). It is not
// an independent hash family — use it only for deterministic scrambles
// such as deriving per-level seeds, never where the analysis needs
// independence across keys.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
