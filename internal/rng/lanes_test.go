package rng

import (
	"testing"
	"testing/quick"
)

// laneEdgeCases are the inputs most likely to expose a reduction bug in
// the lane kernels: field boundaries, the Mersenne fold's carry points,
// and full-width values.
var laneEdgeCases = []uint64{
	0, 1, 2, 6, 7,
	mersenne61 - 2, mersenne61 - 1, mersenne61, mersenne61 + 1, mersenne61 + 7,
	1<<61 - 1, 1 << 61, 1<<61 + 1, 1 << 62, 1<<62 + 3,
	^uint64(0), ^uint64(0) - 1, ^uint64(0) - 7,
	0x9e3779b97f4a7c15, 0xdeadbeefcafebabe,
}

// laneQuads walks every aligned 4-tuple over the cross product of the
// edge cases plus deterministic pseudo-random fill, invoking check on
// each. The sweep is exhaustive over the edge set in every lane
// position: each edge value appears in lane 0, 1, 2, and 3 against
// varied neighbors.
func laneQuads(check func(x0, x1, x2, x3 uint64)) {
	n := len(laneEdgeCases)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Rotate the edge value through all four lane positions.
			a, b := laneEdgeCases[i], laneEdgeCases[j]
			check(a, b, Mix64(a), Mix64(b))
			check(b, a, Mix64(b), Mix64(a))
			check(Mix64(a), a, b, Mix64(b))
			check(Mix64(a), Mix64(b), a, b)
		}
	}
}

// TestMod61Lanes4MatchesScalar pins the lane reduction to the scalar
// one, exhaustively over the edge-case sweep and by randomized check.
func TestMod61Lanes4MatchesScalar(t *testing.T) {
	laneQuads(func(x0, x1, x2, x3 uint64) {
		r0, r1, r2, r3 := Mod61Lanes4(x0, x1, x2, x3)
		for i, pair := range [][2]uint64{{r0, x0}, {r1, x1}, {r2, x2}, {r3, x3}} {
			if want := Mod61(pair[1]); pair[0] != want {
				t.Fatalf("lane %d: Mod61Lanes4(%#x) = %d, scalar = %d", i, pair[1], pair[0], want)
			}
		}
	})
	f := func(x0, x1, x2, x3 uint64) bool {
		r0, r1, r2, r3 := Mod61Lanes4(x0, x1, x2, x3)
		return r0 == Mod61(x0) && r1 == Mod61(x1) && r2 == Mod61(x2) && r3 == Mod61(x3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestHash2LanesMatchScalar pins EvalLanes4/HashLanes4 bit-identical to
// the scalar Eval/Hash across many kernel draws, the exhaustive edge
// sweep, and randomized inputs — the law the 4-lane sketch batch loops
// depend on.
func TestHash2LanesMatchScalar(t *testing.T) {
	r := New(7)
	for round := 0; round < 64; round++ {
		h := NewHash2(r)
		laneQuads(func(x0, x1, x2, x3 uint64) {
			e0, e1, e2, e3 := h.EvalLanes4(Mod61(x0), Mod61(x1), Mod61(x2), Mod61(x3))
			if e0 != h.Eval(Mod61(x0)) || e1 != h.Eval(Mod61(x1)) ||
				e2 != h.Eval(Mod61(x2)) || e3 != h.Eval(Mod61(x3)) {
				t.Fatalf("round %d: EvalLanes4(%#x,%#x,%#x,%#x) diverges from scalar Eval",
					round, x0, x1, x2, x3)
			}
			h0, h1, h2, h3 := h.HashLanes4(x0, x1, x2, x3)
			if h0 != h.Hash(x0) || h1 != h.Hash(x1) || h2 != h.Hash(x2) || h3 != h.Hash(x3) {
				t.Fatalf("round %d: HashLanes4(%#x,%#x,%#x,%#x) diverges from scalar Hash",
					round, x0, x1, x2, x3)
			}
		})
	}
	h := NewHash2(New(11))
	f := func(x0, x1, x2, x3 uint64) bool {
		h0, h1, h2, h3 := h.HashLanes4(x0, x1, x2, x3)
		return h0 == h.Hash(x0) && h1 == h.Hash(x1) && h2 == h.Hash(x2) && h3 == h.Hash(x3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestHash4LanesMatchScalar is the degree-3 twin of
// TestHash2LanesMatchScalar.
func TestHash4LanesMatchScalar(t *testing.T) {
	r := New(9)
	for round := 0; round < 64; round++ {
		h := NewHash4(r)
		laneQuads(func(x0, x1, x2, x3 uint64) {
			e0, e1, e2, e3 := h.EvalLanes4(Mod61(x0), Mod61(x1), Mod61(x2), Mod61(x3))
			if e0 != h.Eval(Mod61(x0)) || e1 != h.Eval(Mod61(x1)) ||
				e2 != h.Eval(Mod61(x2)) || e3 != h.Eval(Mod61(x3)) {
				t.Fatalf("round %d: EvalLanes4(%#x,%#x,%#x,%#x) diverges from scalar Eval",
					round, x0, x1, x2, x3)
			}
			h0, h1, h2, h3 := h.HashLanes4(x0, x1, x2, x3)
			if h0 != h.Hash(x0) || h1 != h.Hash(x1) || h2 != h.Hash(x2) || h3 != h.Hash(x3) {
				t.Fatalf("round %d: HashLanes4(%#x,%#x,%#x,%#x) diverges from scalar Hash",
					round, x0, x1, x2, x3)
			}
		})
	}
	h := NewHash4(New(13))
	f := func(x0, x1, x2, x3 uint64) bool {
		h0, h1, h2, h3 := h.HashLanes4(x0, x1, x2, x3)
		return h0 == h.Hash(x0) && h1 == h.Hash(x1) && h2 == h.Hash(x2) && h3 == h.Hash(x3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash2Lanes4(b *testing.B) {
	h := NewHash2(New(1))
	var s0, s1, s2, s3 uint64
	for i := 0; i < b.N; i += 4 {
		r0, r1, r2, r3 := h.HashLanes4(uint64(i), uint64(i+1), uint64(i+2), uint64(i+3))
		s0 += r0
		s1 += r1
		s2 += r2
		s3 += r3
	}
	_ = s0 + s1 + s2 + s3
}

func BenchmarkHash4Lanes4(b *testing.B) {
	h := NewHash4(New(1))
	var s0, s1, s2, s3 uint64
	for i := 0; i < b.N; i += 4 {
		r0, r1, r2, r3 := h.HashLanes4(uint64(i), uint64(i+1), uint64(i+2), uint64(i+3))
		s0 += r0
		s1 += r1
		s2 += r2
		s3 += r3
	}
	_ = s0 + s1 + s2 + s3
}
