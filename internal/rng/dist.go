package rng

import "math"

// This file provides the distribution samplers used by the workload
// generators (Zipf, Pareto) and by the fast stream-simulation paths
// (Binomial, Geometric).

// Discrete samples from an arbitrary finite distribution in O(1) per draw
// using Walker's alias method. Construction is O(n).
type Discrete struct {
	prob  []float64 // acceptance probability per column
	alias []int32   // alias target per column
}

// NewDiscrete builds an alias table for the given non-negative weights.
// Weights need not be normalized. It panics if weights is empty, contains
// a negative or non-finite value, or sums to zero.
func NewDiscrete(weights []float64) *Discrete {
	n := len(weights)
	if n == 0 {
		panic("rng: NewDiscrete with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("rng: NewDiscrete weight must be finite and non-negative")
		}
		total += w
	}
	if total == 0 {
		panic("rng: NewDiscrete weights sum to zero")
	}

	d := &Discrete{prob: make([]float64, n), alias: make([]int32, n)}
	// Scaled probabilities; columns with scaled < 1 are "small".
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		d.prob[s] = scaled[s]
		d.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are full columns.
	for _, i := range large {
		d.prob[i] = 1
		d.alias[i] = i
	}
	for _, i := range small {
		d.prob[i] = 1
		d.alias[i] = i
	}
	return d
}

// Draw returns an index in [0, len(weights)) with probability proportional
// to its weight.
func (d *Discrete) Draw(r *Xoshiro256) int {
	col := r.Intn(len(d.prob))
	if r.Float64() < d.prob[col] {
		return col
	}
	return int(d.alias[col])
}

// Len returns the support size of the distribution.
func (d *Discrete) Len() int { return len(d.prob) }

// Zipf samples from a Zipf(s) distribution over {1, …, m}:
// P(i) ∝ 1/i^s. Any s ≥ 0 is supported (s = 0 is uniform), unlike
// rejection-based samplers that require s > 1. Draws are O(1) via the
// alias method; construction is O(m).
type Zipf struct {
	d *Discrete
}

// NewZipf builds a Zipf(s) sampler over {1, …, m}. It panics if m < 1 or
// s < 0.
func NewZipf(m int, s float64) *Zipf {
	if m < 1 {
		panic("rng: NewZipf requires m >= 1")
	}
	if s < 0 {
		panic("rng: NewZipf requires s >= 0")
	}
	w := make([]float64, m)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
	}
	return &Zipf{d: NewDiscrete(w)}
}

// Draw returns a value in [1, m].
func (z *Zipf) Draw(r *Xoshiro256) uint64 {
	return uint64(z.d.Draw(r)) + 1
}

// Pareto returns a Pareto(α) variate with scale xm > 0: values ≥ xm with
// tail P(X > x) = (xm/x)^α. Used for heavy-tailed flow sizes.
func Pareto(r *Xoshiro256, xm, alpha float64) float64 {
	return xm / math.Pow(r.Float64Open(), 1/alpha)
}

// Geometric returns the number of Bernoulli(p) trials up to and including
// the first success, i.e. a value in {1, 2, …} with P(X = k) = (1−p)^(k−1)p.
// It panics unless 0 < p ≤ 1.
func Geometric(r *Xoshiro256, p float64) uint64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 1
	}
	u := r.Float64Open()
	return uint64(math.Floor(math.Log(u)/math.Log1p(-p))) + 1
}

// Binomial returns a Bin(n, p) variate. For small expected counts it uses
// exact geometric skipping (O(np+1) expected time); for large n·p and
// n·(1−p) it uses the normal approximation with continuity correction,
// which is indistinguishable from exact at the scales the simulators use
// and is clamped to the valid range [0, n]. Exactness matters only for
// the fast-simulation shortcut — the streaming paths draw per-element
// Bernoulli decisions directly.
func Binomial(r *Xoshiro256, n uint64, p float64) uint64 {
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Symmetry: sample the rarer outcome.
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}
	mean := float64(n) * p
	if mean <= 512 {
		return binomialSkip(r, n, p)
	}
	sd := math.Sqrt(mean * (1 - p))
	v := math.Round(mean + sd*r.NormFloat64())
	if v < 0 {
		return 0
	}
	if v > float64(n) {
		return n
	}
	return uint64(v)
}

// binomialSkip counts successes among n Bernoulli(p) trials by drawing the
// geometric gaps between successes, in O(np+1) expected time.
func binomialSkip(r *Xoshiro256, n uint64, p float64) uint64 {
	var count, pos uint64
	for {
		gap := Geometric(r, p)
		pos += gap
		if pos > n {
			return count
		}
		count++
	}
}
