package rng

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMulmod61MatchesBigArithmetic(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= mersenne61
		b %= mersenne61
		hi, lo := mul64(a, b)
		return mulmod61(a, b) == foldMod61(hi, lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// foldMod61 is an independent, slower reduction of hi·2^64 + lo modulo
// 2^61−1, used to cross-check mulmod61. It uses 2^64 ≡ 8 (mod 2^61−1)
// and folds lo as (lo >> 61) + (lo & M), since 2^61 ≡ 1.
func foldMod61(hi, lo uint64) uint64 {
	loMod := modAdd(lo&mersenne61, lo>>61)
	hiMod := mulSmallMod(hi%mersenne61, 8)
	return modAdd(hiMod, loMod)
}

func modAdd(a, b uint64) uint64 {
	s := a + b
	if s >= mersenne61 {
		s -= mersenne61
	}
	return s
}

// mulSmallMod multiplies a (< M) by a small constant c (≤ 8) mod M.
func mulSmallMod(a, c uint64) uint64 {
	var acc uint64
	for i := uint64(0); i < c; i++ {
		acc = modAdd(acc, a)
	}
	return acc
}

func TestAddmod61(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{mersenne61 - 1, 1, 0},
		{mersenne61 - 1, mersenne61 - 1, mersenne61 - 2},
	}
	for _, c := range cases {
		if got := addmod61(c.a, c.b); got != c.want {
			t.Errorf("addmod61(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPolyHashInRange(t *testing.T) {
	r := New(1)
	h := NewPolyHash(4, r)
	for i := uint64(0); i < 100000; i++ {
		if v := h.Hash(i); v >= mersenne61 {
			t.Fatalf("hash(%d) = %d out of field", i, v)
		}
	}
}

func TestPolyHashDeterministic(t *testing.T) {
	h := NewPolyHash(3, New(99))
	a, b := h.Hash(12345), h.Hash(12345)
	if a != b {
		t.Fatalf("hash not deterministic: %d vs %d", a, b)
	}
}

func TestPolyHashBucketUniformity(t *testing.T) {
	r := New(2)
	h := NewPolyHash(2, r)
	const buckets, n = 16, 320000
	counts := make([]int, buckets)
	for i := uint64(0); i < n; i++ {
		counts[h.Bucket(i, buckets)]++
	}
	expected := float64(n) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 dof, 99.99% ≈ 44.3. Allow 60.
	if chi2 > 60 {
		t.Fatalf("bucket uniformity chi2 = %v", chi2)
	}
}

func TestPolyHashPairwiseCollisionRate(t *testing.T) {
	// Pairwise independence implies collision probability ≈ 1/buckets
	// over the random choice of hash function.
	const buckets = 64
	const funcs = 4000
	r := New(3)
	collisions := 0
	for i := 0; i < funcs; i++ {
		h := NewPolyHash(2, r)
		if h.Bucket(17, buckets) == h.Bucket(91, buckets) {
			collisions++
		}
	}
	got := float64(collisions) / funcs
	want := 1.0 / buckets
	tol := 6 * math.Sqrt(want*(1-want)/funcs)
	if math.Abs(got-want) > tol {
		t.Fatalf("pairwise collision rate %v, want %v ± %v", got, want, tol)
	}
}

func TestPolyHashSignBalance(t *testing.T) {
	// Over random functions, E[sign(x)] ≈ 0 and signs of two fixed keys
	// are uncorrelated (4-wise family).
	const funcs = 4000
	r := New(4)
	var sum, prod int
	for i := 0; i < funcs; i++ {
		h := NewPolyHash(4, r)
		s1, s2 := h.Sign(5), h.Sign(1234567)
		sum += s1
		prod += s1 * s2
	}
	if math.Abs(float64(sum))/funcs > 0.1 {
		t.Fatalf("sign bias: mean %v", float64(sum)/funcs)
	}
	if math.Abs(float64(prod))/funcs > 0.1 {
		t.Fatalf("sign correlation: mean product %v", float64(prod)/funcs)
	}
}

func TestPolyHashUnitRangeAndUniformity(t *testing.T) {
	h := NewPolyHash(2, New(5))
	const n = 200000
	var sum float64
	for i := uint64(0); i < n; i++ {
		u := h.Unit(i)
		if u <= 0 || u > 1 {
			t.Fatalf("Unit out of (0,1]: %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Unit mean %v, want ≈ 0.5", mean)
	}
}

func TestNewPolyHashPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPolyHash(0) did not panic")
		}
	}()
	NewPolyHash(0, New(1))
}

func TestMultShiftRangeAndUniformity(t *testing.T) {
	r := New(6)
	h := NewMultShift(4, r) // 16 buckets
	const n = 320000
	counts := make([]int, 16)
	for i := uint64(0); i < n; i++ {
		v := h.Hash(i)
		if v >= 16 {
			t.Fatalf("MultShift output %d exceeds 4 bits", v)
		}
		counts[v]++
	}
	expected := float64(n) / 16
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 60 {
		t.Fatalf("MultShift uniformity chi2 = %v (counts %v)", chi2, counts)
	}
}

func TestMultShiftPanicsOnBadBits(t *testing.T) {
	for _, bits := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMultShift(%d) did not panic", bits)
				}
			}()
			NewMultShift(bits, New(1))
		}()
	}
}

func TestMix64Bijective(t *testing.T) {
	// Mix64 must not collide on a modest sample (it is a bijection).
	seen := make(map[uint64]uint64, 100000)
	for i := uint64(0); i < 100000; i++ {
		v := Mix64(i)
		if prev, ok := seen[v]; ok {
			t.Fatalf("Mix64 collision: %d and %d both map to %#x", prev, i, v)
		}
		seen[v] = i
	}
}

func TestMod61MatchesDivide(t *testing.T) {
	cases := []uint64{0, 1, mersenne61 - 1, mersenne61, mersenne61 + 1,
		1 << 61, 1<<61 + 5, ^uint64(0), ^uint64(0) - 6}
	for _, x := range cases {
		if got, want := Mod61(x), x%mersenne61; got != want {
			t.Fatalf("Mod61(%#x) = %d, want %d", x, got, want)
		}
	}
	f := func(x uint64) bool { return Mod61(x) == x%mersenne61 }
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestHash2MatchesPolyHash pins the refactor's core invariant: the flat
// degree-1 kernel consumes the same generator draws and produces the same
// hash values as the PolyHash it replaces, so every seeded sketch keeps
// its exact pre-refactor state.
func TestHash2MatchesPolyHash(t *testing.T) {
	rA, rB := New(42), New(42)
	for round := 0; round < 32; round++ {
		p := NewPolyHash(2, rA)
		h := NewHash2(rB)
		if got := h.Coefficients(); got[0] != p.Coefficients()[0] || got[1] != p.Coefficients()[1] {
			t.Fatalf("round %d: coefficient draws diverge: %v vs %v", round, got, p.Coefficients())
		}
		for _, x := range []uint64{0, 1, 7, 1 << 40, ^uint64(0), 0x9e3779b97f4a7c15} {
			if h.Hash(x) != p.Hash(x) {
				t.Fatalf("round %d: Hash2(%#x) = %d, PolyHash = %d", round, x, h.Hash(x), p.Hash(x))
			}
			if h.Unit(x) != p.Unit(x) {
				t.Fatalf("round %d: Unit(%#x) diverges", round, x)
			}
		}
		if rt := Hash2FromCoefficients(h.Coefficients()); rt != h {
			t.Fatalf("round %d: coefficient round trip %v != %v", round, rt, h)
		}
	}
}

// TestHash4MatchesPolyHash is the 4-wise twin of TestHash2MatchesPolyHash.
func TestHash4MatchesPolyHash(t *testing.T) {
	rA, rB := New(43), New(43)
	for round := 0; round < 32; round++ {
		p := NewPolyHash(4, rA)
		h := NewHash4(rB)
		for i, c := range h.Coefficients() {
			if c != p.Coefficients()[i] {
				t.Fatalf("round %d: coefficient %d diverges", round, i)
			}
		}
		for _, x := range []uint64{0, 1, 7, 1 << 40, ^uint64(0), 0xdeadbeef} {
			if h.Hash(x) != p.Hash(x) {
				t.Fatalf("round %d: Hash4(%#x) = %d, PolyHash = %d", round, x, h.Hash(x), p.Hash(x))
			}
			if h.Sign(x) != p.Sign(x) {
				t.Fatalf("round %d: Sign(%#x) diverges", round, x)
			}
		}
		if rt := Hash4FromCoefficients(h.Coefficients()); rt != h {
			t.Fatalf("round %d: coefficient round trip diverges", round)
		}
	}
}

func TestHashFromCoefficientsPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"hash2-count": func() { Hash2FromCoefficients([]uint64{1}) },
		"hash2-field": func() { Hash2FromCoefficients([]uint64{1, mersenne61}) },
		"hash4-count": func() { Hash4FromCoefficients([]uint64{1, 2, 3}) },
		"hash4-field": func() { Hash4FromCoefficients([]uint64{1, 2, 3, mersenne61}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestRangeBucketExact pins the fastrange reduction: Bucket(h) must be
// exactly floor(h·n / 2^61) and land in [0, n) for every field hash,
// across bucket counts from 1 to sketch-sized, with the distribution
// matching the contiguous-slice map the analysis assumes.
func TestRangeBucketExact(t *testing.T) {
	ns := []uint64{1, 2, 3, 5, 7, 16, 64, 100, 1023, 1024, 4096, 5910,
		1<<24 - 3, 1 << 24}
	hashes := []uint64{0, 1, 2, 63, 64, 1<<60 + 12345, 1<<61 - 3, 1<<61 - 2}
	for _, n := range ns {
		rr := NewRange(n)
		if rr.N() != n {
			t.Fatalf("Range(%d).N() = %d", n, rr.N())
		}
		for _, h := range hashes {
			got := rr.Bucket(h)
			// Independent reference: floor(h·n / 2^61) in big-int math.
			want := new(big.Int).Mul(new(big.Int).SetUint64(h), new(big.Int).SetUint64(n))
			want.Rsh(want, 61)
			if got != want.Uint64() || got >= n {
				t.Fatalf("Range(%d).Bucket(%d) = %d, want %d (< %d)", n, h, got, want.Uint64(), n)
			}
		}
	}
	// Monotone and balanced: consecutive hash ranges of equal size map to
	// consecutive buckets.
	rr := NewRange(16)
	prev := uint64(0)
	for h := uint64(0); h < 1<<61-1; h += (1 << 61) / 97 {
		b := rr.Bucket(h)
		if b < prev {
			t.Fatalf("Bucket not monotone: h=%d gave %d after %d", h, b, prev)
		}
		prev = b
	}
}

func TestNewRangePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRange(0) did not panic")
		}
	}()
	NewRange(0)
}

func BenchmarkHash2Bucket(b *testing.B) {
	h := NewHash2(New(1))
	rr := NewRange(5910)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rr.Bucket(h.Hash(uint64(i)))
	}
	_ = sink
}

func BenchmarkPolyHash2BucketDivide(b *testing.B) {
	h := NewPolyHash(2, New(1))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Bucket(uint64(i), 5910)
	}
	_ = sink
}

func BenchmarkPolyHash4Wise(b *testing.B) {
	h := NewPolyHash(4, New(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkMultShift(b *testing.B) {
	h := NewMultShift(20, New(1))
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += h.Hash(uint64(i))
	}
	_ = sink
}
