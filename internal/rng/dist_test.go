package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiscreteMatchesWeights(t *testing.T) {
	r := New(1)
	weights := []float64{1, 2, 3, 4}
	d := NewDiscrete(weights)
	const n = 400000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[d.Draw(r)]++
	}
	total := 10.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / n
		tol := 6 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol {
			t.Fatalf("weight %d: rate %v, want %v ± %v", i, got, want, tol)
		}
	}
}

func TestDiscreteSingleton(t *testing.T) {
	d := NewDiscrete([]float64{3.5})
	r := New(2)
	for i := 0; i < 100; i++ {
		if d.Draw(r) != 0 {
			t.Fatal("singleton distribution drew nonzero index")
		}
	}
}

func TestDiscreteZeroWeightNeverDrawn(t *testing.T) {
	d := NewDiscrete([]float64{1, 0, 1})
	r := New(3)
	for i := 0; i < 100000; i++ {
		if d.Draw(r) == 1 {
			t.Fatal("zero-weight index was drawn")
		}
	}
}

func TestDiscretePanics(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"negative", []float64{1, -1}},
		{"nan", []float64{math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
		{"allzero", []float64{0, 0}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDiscrete(%v) did not panic", c.weights)
				}
			}()
			NewDiscrete(c.weights)
		})
	}
}

func TestDiscreteProbabilitiesProperty(t *testing.T) {
	// Property: for random small weight vectors, empirical frequencies
	// track normalized weights.
	f := func(seed uint64, raw [5]uint8) bool {
		weights := make([]float64, 0, 5)
		var total float64
		for _, v := range raw {
			w := float64(v%16) + 1
			weights = append(weights, w)
			total += w
		}
		d := NewDiscrete(weights)
		r := New(seed)
		const n = 40000
		counts := make([]int, len(weights))
		for i := 0; i < n; i++ {
			counts[d.Draw(r)]++
		}
		for i, w := range weights {
			want := w / total
			got := float64(counts[i]) / n
			if math.Abs(got-want) > 8*math.Sqrt(want*(1-want)/n)+0.005 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(4)
	z := NewZipf(1000, 1.0)
	const n = 300000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		v := z.Draw(r)
		if v < 1 || v > 1000 {
			t.Fatalf("Zipf draw %d out of [1,1000]", v)
		}
		counts[v]++
	}
	// With s=1, P(1)/P(2) = 2.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("Zipf(1) head ratio %v, want ≈ 2", ratio)
	}
	// Item 1 should carry ≈ 1/H_1000 ≈ 13.4% of mass.
	h := 0.0
	for i := 1; i <= 1000; i++ {
		h += 1 / float64(i)
	}
	want := 1 / h
	got := float64(counts[1]) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("Zipf(1) P(1) = %v, want %v", got, want)
	}
}

func TestZipfZeroIsUniform(t *testing.T) {
	r := New(5)
	z := NewZipf(10, 0)
	const n = 200000
	counts := make([]int, 11)
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	expected := float64(n) / 10
	for i := 1; i <= 10; i++ {
		if math.Abs(float64(counts[i])-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("Zipf(0) not uniform: counts %v", counts[1:])
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, c := range []struct {
		m int
		s float64
	}{{0, 1}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipf(%d,%v) did not panic", c.m, c.s)
				}
			}()
			NewZipf(c.m, c.s)
		}()
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(6)
	const xm, alpha = 2.0, 1.5
	for i := 0; i < 100000; i++ {
		v := Pareto(r, xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below scale: %v < %v", v, xm)
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := New(7)
	const xm, alpha, n = 1.0, 2.0, 300000
	// P(X > 2) = (1/2)^2 = 0.25.
	over := 0
	for i := 0; i < n; i++ {
		if Pareto(r, xm, alpha) > 2 {
			over++
		}
	}
	got := float64(over) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Pareto tail P(X>2) = %v, want 0.25", got)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(8)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			v := Geometric(r, p)
			if v < 1 {
				t.Fatalf("Geometric(%v) returned %d < 1", p, v)
			}
			sum += float64(v)
		}
		mean := sum / n
		want := 1 / p
		if math.Abs(mean-want)/want > 0.05 {
			t.Fatalf("Geometric(%v) mean %v, want %v", p, mean, want)
		}
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(9)
	for i := 0; i < 100; i++ {
		if Geometric(r, 1) != 1 {
			t.Fatal("Geometric(1) != 1")
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Geometric(p=%v) did not panic", p)
				}
			}()
			Geometric(New(1), p)
		}()
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(10)
	if Binomial(r, 0, 0.5) != 0 {
		t.Fatal("Bin(0, .5) != 0")
	}
	if Binomial(r, 100, 0) != 0 {
		t.Fatal("Bin(100, 0) != 0")
	}
	if Binomial(r, 100, 1) != 100 {
		t.Fatal("Bin(100, 1) != 100")
	}
	if v := Binomial(r, 100, -0.5); v != 0 {
		t.Fatalf("Bin(100, -0.5) = %d, want 0", v)
	}
	if v := Binomial(r, 100, 1.5); v != 100 {
		t.Fatalf("Bin(100, 1.5) = %d, want 100", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(11)
	cases := []struct {
		n uint64
		p float64
	}{
		{100, 0.3},       // skip path
		{10000, 0.5},     // symmetric + skip via 1-p
		{1 << 20, 0.001}, // skip path, large n
		{1 << 20, 0.25},  // normal-approximation path
	}
	for _, c := range cases {
		const trials = 3000
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			v := float64(Binomial(r, c.n, c.p))
			if v < 0 || v > float64(c.n) {
				t.Fatalf("Bin(%d,%v) out of range: %v", c.n, c.p, v)
			}
			sum += v
			sumsq += v * v
		}
		mean := sum / trials
		variance := sumsq/trials - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		seMean := math.Sqrt(wantVar / trials)
		if math.Abs(mean-wantMean) > 6*seMean+1 {
			t.Fatalf("Bin(%d,%v) mean %v, want %v", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.2 {
			t.Fatalf("Bin(%d,%v) variance %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestBinomialRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint16, pRaw uint8) bool {
		p := float64(pRaw) / 255
		v := Binomial(New(seed), uint64(n), p)
		return v <= uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkZipfDraw(b *testing.B) {
	z := NewZipf(1<<16, 1.1)
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += z.Draw(r)
	}
	_ = sink
}

func BenchmarkBinomialSkip(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Binomial(r, 1000, 0.01)
	}
	_ = sink
}
