package window_test

import (
	"math"
	"testing"

	"substream/internal/estimator"
	"substream/internal/rng"
	"substream/internal/stream"
	"substream/internal/window"

	_ "substream/internal/sample"
)

// TestWindowedVarOptSubsetSum is the "bytes from subnet X in the last 5
// epochs" scenario: a windowed VarOpt reservoir fed weighted (key,
// bytes) items across rotating epochs must answer the window-scoped
// subset sum from only the retained epochs, and the cumulative subset
// sum from everything since boot.
func TestWindowedVarOptSubsetSum(t *testing.T) {
	const (
		W        = 5
		epochs   = 9
		perEpoch = 400
	)
	clock := window.NewManualClock()
	e := build(t, "varopt", W, clock)

	// "Subnet X": keys 1..64. Weights are deterministic "byte counts".
	pred := func(it stream.Item) bool { return it <= 64 }
	r := rng.New(33)
	perEpochSubnet := make([]float64, epochs)
	var cumSubnet float64
	for ep := 0; ep < epochs; ep++ {
		batch := make(stream.WSlice, perEpoch)
		for i := range batch {
			key := stream.Item(r.Uint64n(512) + 1)
			bytes := float64(64 + r.Uint64n(1400))
			batch[i] = stream.WItem{Key: key, Weight: bytes}
			if pred(key) {
				perEpochSubnet[ep] += bytes
				cumSubnet += bytes
			}
		}
		e.UpdateWeightedBatch(batch)
		if ep < epochs-1 {
			clock.Advance()
		}
	}

	var wantWindow float64
	for ep := epochs - W; ep < epochs; ep++ {
		wantWindow += perEpochSubnet[ep]
	}

	// The reservoir Budget (256) is below the 3600 retained items, so the
	// answers are estimates; the subnet carries ~1/8 of a heavy stream, so
	// a 35% relative tolerance is loose enough to be robust at this fixed
	// seed while still catching scope mix-ups (window vs cumulative differ
	// by ~45%).
	got, ok := e.WindowSubsetSum(pred)
	if !ok {
		t.Fatal("varopt window lost its subset-sum capability")
	}
	if math.Abs(got-wantWindow) > 0.35*wantWindow {
		t.Fatalf("window subset sum %v, want ~%v", got, wantWindow)
	}
	if math.Abs(got-cumSubnet) < math.Abs(cumSubnet-wantWindow)/2 {
		t.Fatalf("window subset sum %v tracks the cumulative scope %v, not the window %v",
			got, cumSubnet, wantWindow)
	}
	cum, ok := e.SubsetSum(pred)
	if !ok {
		t.Fatal("varopt cumulative lost its subset-sum capability")
	}
	if math.Abs(cum-cumSubnet) > 0.35*cumSubnet {
		t.Fatalf("cumulative subset sum %v, want ~%v", cum, cumSubnet)
	}

	// The wrapper rides the registry wire format: a decoded ring keeps
	// answering the same window query.
	data, err := estimator.Adapt(e).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := estimator.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	we, ok := estimator.Unwrap(dec).(*window.Estimator)
	if !ok {
		t.Fatalf("decoded window payload is %T", estimator.Unwrap(dec))
	}
	got2, ok := we.WindowSubsetSum(pred)
	if !ok || !near(got, got2) {
		t.Fatalf("decoded ring answers %v (ok=%v), want %v", got2, ok, got)
	}
}

// TestWindowWeightedFallback checks the projection for inner kinds with
// no weighted path: weighted batches must land as bare keys, exactly one
// observation per item.
func TestWindowWeightedFallback(t *testing.T) {
	clock := window.NewManualClock()
	e := build(t, "exactcounter", 3, clock)
	batch := stream.WSlice{
		{Key: 1, Weight: 100}, {Key: 2, Weight: 0.5}, {Key: 1, Weight: 7},
	}
	e.UpdateWeightedBatch(batch)
	e.ObserveWeighted(3, 42)
	est := e.Estimates()
	if est["n"] != 4 || est["window_n"] != 4 || est["f0"] != 3 {
		t.Fatalf("projection fed wrong observations, want n=4 f0=3 in both scopes: %v", est)
	}
	if _, ok := e.SubsetSum(func(stream.Item) bool { return true }); ok {
		t.Fatal("exactcounter window claims a subset-sum capability")
	}
}
