package window

import (
	"fmt"

	"substream/internal/estimator"
	"substream/internal/sketch"
)

// TagWindow is the wire tag of the windowed wrapper. The window package
// owns the range 0x30–0x3f (see internal/server/doc.go).
const TagWindow byte = 0x30

// compositeTagMin/Max bound the tags a window payload may NOT nest: its
// own composite range 0x30–0x3f. Every concrete estimator range (sketch
// 0x01–0x0f, levelset 0x10–0x1f, core 0x20–0x2f, quantile 0x40–0x4f)
// rides freely. The gate runs BEFORE decoding, so a crafted payload
// cannot nest another window (or any future composite in this range) and
// recurse the decoder — the same discipline as levelset's
// collision-counter gate.
const (
	compositeTagMin byte = TagWindow
	compositeTagMax byte = TagWindow + 0x0f
)

// decodeInner revives one nested replica through the registry's single
// entry point, after gating its tag out of the composite range.
func decodeInner(data []byte) (estimator.Estimator, error) {
	tag, err := sketch.PayloadTag(data)
	if err != nil {
		return nil, err
	}
	if tag >= compositeTagMin && tag <= compositeTagMax {
		return nil, fmt.Errorf("window: payload tag %#x cannot ride inside a window", tag)
	}
	return estimator.Decode(data)
}

// MarshalBinary serializes the full ring state: epoch metadata, the
// pristine replica resets decode from, the cumulative replica, and every
// generation in slot order. The ring is rotated to the clock's epoch
// first, so the payload never ships expired generations.
func (e *Estimator) MarshalBinary() ([]byte, error) {
	e.rotate()
	w := &sketch.Writer{}
	w.Header(TagWindow)
	w.I64(e.epochLen)
	w.U32(uint32(e.window))
	w.U64(e.epoch)
	w.Nested(e.pristine)
	cum, err := e.cum.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Nested(cum)
	for _, g := range e.gens {
		payload, err := g.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Nested(payload)
	}
	return w.Bytes(), nil
}

// Unmarshal reconstructs a windowed estimator from MarshalBinary output.
// The revived estimator carries a clock frozen at its snapshot epoch: it
// answers as of that moment and never rotates on its own, which is
// exactly what a collector retaining per-agent states needs — alignment
// to "now" happens when it merges into a live accumulator.
func Unmarshal(data []byte) (*Estimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagWindow)
	epochLen := r.I64()
	window := int(r.U32())
	epoch := r.U64()
	if r.Err() == nil && (epochLen <= 0 || window < 1 || window > MaxWindow) {
		r.Fail()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	e := &Estimator{
		window:   window,
		epochLen: epochLen,
		clock:    frozenClock(epoch),
		epoch:    epoch,
		gens:     make([]estimator.Estimator, window),
	}
	// Copy the pristine payload out of the shared input buffer: it
	// outlives the decode (every later reset reads it).
	e.pristine = append([]byte(nil), r.Nested()...)
	if r.Err() != nil {
		return nil, r.Err()
	}
	var err error
	if _, err = decodeInner(e.pristine); err != nil {
		return nil, fmt.Errorf("window: pristine replica: %w", err)
	}
	if e.cum, err = decodeInner(r.Nested()); err != nil {
		return nil, fmt.Errorf("window: cumulative replica: %w", err)
	}
	for i := range e.gens {
		if e.gens[i], err = decodeInner(r.Nested()); err != nil {
			return nil, fmt.Errorf("window: generation %d: %w", i, err)
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	// A crafted payload can nest replicas of mixed kinds (or foreign
	// seeds) that would only surface as a merge failure on the first
	// query — corrupt input must fail here instead. Trial-merging every
	// replica into a pristine copy proves the ring self-consistent once,
	// which is also what makes the merge errors inside Estimates
	// unreachable for decoded rings.
	acc, err := e.windowMerged()
	if err != nil {
		return nil, fmt.Errorf("window: generations do not merge: %w", err)
	}
	if err := acc.Merge(e.cum); err != nil {
		return nil, fmt.Errorf("window: cumulative replica does not merge: %w", err)
	}
	return e, nil
}

func init() {
	// Decode-only: a Spec names one statistic, not a wrapper plus an
	// inner statistic, so windowed estimators are constructed with New
	// (the daemon drives it from StreamConfig.Window) and only revived
	// through the registry.
	estimator.Register(estimator.Kind{
		Tag: TagWindow, Name: "window",
		Doc:    "epoch-ring window wrapper around any estimator (built via New, not a Spec)",
		Decode: estimator.DecodeTyped(Unmarshal),
	})
}

// Wrap builds a windowed estimator already lifted to the registry
// interface — the one-liner ingestion layers use.
func Wrap(cfg Config) (estimator.Estimator, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return estimator.Adapt(e), nil
}

// EpochOf returns the ring position of a (possibly adapted) windowed
// estimator WITHOUT advancing it, and false for any other estimator —
// the hook the agent uses to stamp Summary.Epoch. Read after
// MarshalBinary it names exactly the serialized epoch, even if the wall
// clock has since ticked (stamping clock-now instead would advertise an
// epoch the payload does not carry).
func EpochOf(e estimator.Estimator) (uint64, bool) {
	w, ok := estimator.Unwrap(e).(*Estimator)
	if !ok {
		return 0, false
	}
	return w.epoch, true
}
