package window_test

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"substream/internal/estimator"
	"substream/internal/pipeline"
	"substream/internal/sketch"
	"substream/internal/stream"
	"substream/internal/window"
	"substream/internal/workload"

	// Populate the registry with every standard kind.
	_ "substream/internal/core"
	_ "substream/internal/quantile"
)

// innerSpec returns the construction spec tests build inner replicas
// from; every replica of one test shares it, per the mergeability rule.
func innerSpec(stat string) estimator.Spec {
	return estimator.Spec{
		Stat: stat, P: 0.5, K: 2, Epsilon: 0.2, Alpha: 0.05, Budget: 256, Seed: 9,
	}
}

// build constructs a windowed estimator over stat with W epochs on clock.
func build(t *testing.T, stat string, w int, clock window.Clock) *window.Estimator {
	t.Helper()
	e, err := window.New(window.Config{
		Window:   w,
		EpochLen: time.Second,
		Clock:    clock,
		New:      func() (estimator.Estimator, error) { return estimator.New(innerSpec(stat)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// epochStream returns a deterministic workload split into epoch slices.
func epochStream(t *testing.T, epochs, perEpoch int) []stream.Slice {
	t.Helper()
	wl := workload.Zipf(epochs*perEpoch, 2048, 1.1, 4)
	s := stream.Collect(wl.Stream)
	out := make([]stream.Slice, epochs)
	for i := range out {
		out[i] = s[i*perEpoch : (i+1)*perEpoch]
	}
	return out
}

// near tolerates float-summation-order drift (map-backed entropy).
func near(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// TestWindowMatchesReplay is the acceptance equivalence test: after
// feeding E epochs, the windowed estimate over the last W epochs must
// match a fresh estimator fed only those epochs' items — for one sketch
// kind, one levelset kind, and one core kind (all with exact merges), so
// equality is exact; the bounded-merge levelset backend is checked with
// tolerance separately in TestWindowLevelsetWithinMergeTolerance.
func TestWindowMatchesReplay(t *testing.T) {
	const epochs, perEpoch, W = 7, 3000, 3
	slices := epochStream(t, epochs, perEpoch)
	for _, stat := range []string{"kmv", "exactcounter", "f0"} {
		t.Run(stat, func(t *testing.T) {
			clock := window.NewManualClock()
			we := build(t, stat, W, clock)
			for ep, items := range slices {
				clock.Set(uint64(ep))
				we.UpdateBatch(items)
			}

			// Replay: a fresh estimator fed only the last W epochs.
			replay, err := estimator.New(innerSpec(stat))
			if err != nil {
				t.Fatal(err)
			}
			for _, items := range slices[epochs-W:] {
				replay.UpdateBatch(items)
			}
			// And a fresh cumulative estimator fed everything.
			cum, err := estimator.New(innerSpec(stat))
			if err != nil {
				t.Fatal(err)
			}
			for _, items := range slices {
				cum.UpdateBatch(items)
			}

			got := we.Estimates()
			for name, want := range replay.Estimates() {
				if !near(got["window_"+name], want) {
					t.Errorf("window_%s = %v, replay of last %d epochs = %v", name, got["window_"+name], W, want)
				}
			}
			for name, want := range cum.Estimates() {
				if !near(got[name], want) {
					t.Errorf("cumulative %s = %v, sequential = %v", name, got[name], want)
				}
			}
		})
	}
}

// TestWindowLevelsetWithinMergeTolerance checks the bounded-merge
// levelset backend: windowed vs replay agreement within the backend's
// documented merge band.
func TestWindowLevelsetWithinMergeTolerance(t *testing.T) {
	const epochs, perEpoch, W = 6, 5000, 3
	slices := epochStream(t, epochs, perEpoch)
	clock := window.NewManualClock()
	we := build(t, "levelset", W, clock)
	for ep, items := range slices {
		clock.Set(uint64(ep))
		we.UpdateBatch(items)
	}
	replay, err := estimator.New(innerSpec("levelset"))
	if err != nil {
		t.Fatal(err)
	}
	for _, items := range slices[epochs-W:] {
		replay.UpdateBatch(items)
	}
	got := we.Estimates()["window_c2"]
	want := replay.Estimates()["c2"]
	if want <= 0 {
		t.Fatalf("degenerate replay estimate %v", want)
	}
	if rel := math.Abs(got-want) / want; rel > 0.25 {
		t.Fatalf("windowed levelset c2 %v vs replay %v (rel %.3f)", got, want, rel)
	}
}

// TestWindowDropsExpiredEpochs pins the monitoring semantics: traffic
// older than W epochs leaves the window estimate but stays cumulative.
func TestWindowDropsExpiredEpochs(t *testing.T) {
	clock := window.NewManualClock()
	we := build(t, "exactcounter", 2, clock)

	we.UpdateBatch(stream.Slice{1, 2, 3, 4, 5}) // epoch 0
	clock.Set(1)
	we.UpdateBatch(stream.Slice{6, 7}) // epoch 1
	got := we.Estimates()
	if got["window_f0"] != 7 || got["f0"] != 7 {
		t.Fatalf("window still spans both epochs: %v", got)
	}

	clock.Set(2) // epoch 0 expires from the 2-epoch window
	got = we.Estimates()
	if got["window_f0"] != 2 {
		t.Fatalf("expired epoch still in window: window_f0 = %v, want 2", got["window_f0"])
	}
	if got["f0"] != 7 {
		t.Fatalf("cumulative estimate lost history: f0 = %v, want 7", got["f0"])
	}

	clock.Set(100) // long idle: everything windows out in O(W)
	got = we.Estimates()
	if got["window_f0"] != 0 || got["f0"] != 7 {
		t.Fatalf("idle expiry: window_f0 = %v (want 0), f0 = %v (want 7)", got["window_f0"], got["f0"])
	}
}

// TestMergeAlignsMismatchedEpochs merges two replicas snapshotted at
// different epochs — the collector's view of agents on different flush
// schedules — and checks the result equals the union window at the
// NEWER epoch, with the older side's expired generations dropped.
func TestMergeAlignsMismatchedEpochs(t *testing.T) {
	const W = 2
	clockA, clockB := window.NewManualClock(), window.NewManualClock()
	a := build(t, "exactcounter", W, clockA)
	b := build(t, "exactcounter", W, clockB)

	// Agent A last rotated at epoch 1; agent B is already at epoch 3.
	a.UpdateBatch(stream.Slice{1, 2}) // epoch 0 — will be outside [2, 3]
	clockA.Set(1)
	a.UpdateBatch(stream.Slice{3}) // epoch 1 — also outside [2, 3]
	clockB.Set(2)
	b.UpdateBatch(stream.Slice{10, 11}) // epoch 2
	clockB.Set(3)
	b.UpdateBatch(stream.Slice{12}) // epoch 3

	if err := b.Merge(a); err != nil {
		t.Fatal(err)
	}
	got := b.Estimates()
	if got["window_f0"] != 3 {
		t.Fatalf("aligned window_f0 = %v, want 3 (epochs 2-3 only)", got["window_f0"])
	}
	if got["f0"] != 6 {
		t.Fatalf("cumulative f0 = %v, want 6 (both agents, all epochs)", got["f0"])
	}

	// The reverse merge aligns A forward to epoch 3 first and must agree.
	a2 := build(t, "exactcounter", W, clockA)
	a2.UpdateBatch(stream.Slice{1, 2})
	clockA.Set(1)
	a2.UpdateBatch(stream.Slice{3})
	b2 := build(t, "exactcounter", W, clockB)
	clockB.Set(2)
	// b2's clock is already at 3; rebuild its history via merge from b is
	// not possible (b was mutated), so feed it afresh.
	b2.UpdateBatch(stream.Slice{10, 11})
	clockB.Set(3)
	b2.UpdateBatch(stream.Slice{12})
	if err := a2.Merge(b2); err != nil {
		t.Fatal(err)
	}
	got2 := a2.Estimates()
	if got2["window_f0"] != got["window_f0"] || got2["f0"] != got["f0"] {
		t.Fatalf("merge is not symmetric after alignment: %v vs %v", got2, got)
	}
}

// TestMergeRejectsIncompatibleShapes pins the compatibility checks.
func TestMergeRejectsIncompatibleShapes(t *testing.T) {
	clock := window.NewManualClock()
	a := build(t, "exactcounter", 2, clock)
	b := build(t, "exactcounter", 3, clock)
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "window of 3") {
		t.Fatalf("mismatched window spans merged: %v", err)
	}
	c, err := window.New(window.Config{
		Window: 2, EpochLen: 2 * time.Second, Clock: clock,
		New: func() (estimator.Estimator, error) { return estimator.New(innerSpec("exactcounter")) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err == nil || !strings.Contains(err.Error(), "epoch length") {
		t.Fatalf("mismatched epoch lengths merged: %v", err)
	}
	d := build(t, "kmv", 2, clock)
	if err := a.Merge(d); err == nil {
		t.Fatal("foreign inner kinds merged")
	}
}

// TestPipelineMergeAllStaysCorrect runs windowed replicas through the
// sharded pipeline on one shared clock, rotating at quiesce points, and
// checks MergeAll reproduces the sequential windowed estimator.
func TestPipelineMergeAllStaysCorrect(t *testing.T) {
	const epochs, perEpoch, W = 5, 4000, 2
	slices := epochStream(t, epochs, perEpoch)

	clock := window.NewManualClock()
	pl := pipeline.New(pipeline.Config{Shards: 4, BatchSize: 128}, func(int) estimator.Estimator {
		e, err := window.Wrap(window.Config{
			Window: W, EpochLen: time.Second, Clock: clock,
			New: func() (estimator.Estimator, error) { return estimator.New(innerSpec("f0")) },
		})
		if err != nil {
			panic(err)
		}
		return e
	})
	seqClock := window.NewManualClock()
	seq := build(t, "f0", W, seqClock)

	for ep, items := range slices {
		// Sync before rotating: workers apply batches asynchronously, so
		// the epoch boundary needs the pipeline quiescent (see package doc).
		pl.Sync()
		clock.Set(uint64(ep))
		pl.FeedSlice(items)
		seqClock.Set(uint64(ep))
		seq.UpdateBatch(items)
	}
	merged, err := pipeline.MergeAll(pl)
	if err != nil {
		t.Fatal(err)
	}
	got, want := merged.Estimates(), seq.Estimates()
	for name, v := range want {
		if !near(got[name], v) {
			t.Errorf("pipeline %s = %v, sequential = %v", name, got[name], v)
		}
	}
	if _, ok := window.EpochOf(merged); !ok {
		t.Fatal("merged pipeline replica lost its window wrapper")
	}
}

// TestRoundTripThroughRegistry serializes a live ring, revives it
// through the registry's Decode entry point, and checks the frozen
// replica answers identically and still merges.
func TestRoundTripThroughRegistry(t *testing.T) {
	const W = 3
	clock := window.NewManualClock()
	we := build(t, "f0", W, clock)
	slices := epochStream(t, 4, 2000)
	for ep, items := range slices {
		clock.Set(uint64(ep))
		we.UpdateBatch(items)
	}
	adapted := estimator.Adapt(we)
	payload, err := adapted.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := estimator.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, want := decoded.Estimates(), adapted.Estimates()
	for name, v := range want {
		if !near(got[name], v) {
			t.Errorf("decoded %s = %v, source = %v", name, got[name], v)
		}
	}
	ep, ok := window.EpochOf(decoded)
	if !ok || ep != 3 {
		t.Fatalf("decoded epoch = %d (%v), want 3", ep, ok)
	}

	// A decoded summary must merge into a live ring (the collector path).
	live := build(t, "f0", W, clock)
	if err := estimator.Adapt(live).Merge(decoded); err != nil {
		t.Fatalf("merging decoded summary: %v", err)
	}
	if merged := live.Estimates(); !near(merged["f0"], want["f0"]) {
		t.Fatalf("merged cumulative f0 = %v, want %v", merged["f0"], want["f0"])
	}
	// And re-encode.
	if _, err := estimator.Adapt(live).MarshalBinary(); err != nil {
		t.Fatalf("re-encode merged ring: %v", err)
	}
}

// TestDecodeRejectsCorruption sweeps truncations and targeted
// corruptions; every one must fail cleanly, never panic or recurse.
func TestDecodeRejectsCorruption(t *testing.T) {
	clock := window.NewManualClock()
	we := build(t, "kmv", 2, clock)
	we.UpdateBatch(stream.Slice{1, 2, 3})
	payload, err := we.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := window.Unmarshal(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := window.Unmarshal(append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// Window count beyond MaxWindow must fail before allocating.
	huge := append([]byte(nil), payload...)
	huge[10], huge[11], huge[12], huge[13] = 0xff, 0xff, 0xff, 0xff
	if _, err := window.Unmarshal(huge); err == nil {
		t.Fatal("absurd window count accepted")
	}
}

// TestDecodeRejectsMixedKindRing splices a foreign-kind generation into
// an otherwise valid window payload: the ring must be proven
// self-consistent at decode time, not first surface as a silent merge
// failure on a later query.
func TestDecodeRejectsMixedKindRing(t *testing.T) {
	clock := window.NewManualClock()
	f0 := build(t, "f0", 1, clock)
	f0.UpdateBatch(stream.Slice{1, 2, 3})
	good, err := f0.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	kmv, err := estimator.New(innerSpec("kmv"))
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := kmv.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// The single generation payload is the last nested field; replace it
	// with the kmv payload (4-byte length prefix + bytes, per Nested).
	r := sketch.NewReader(good)
	r.Header(window.TagWindow)
	r.I64()        // epoch length
	r.U32()        // window span
	r.U64()        // epoch
	_ = r.Nested() // pristine
	_ = r.Nested() // cumulative
	genOffset := len(good) - r.Remaining()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	spliced := append([]byte(nil), good[:genOffset]...)
	w := &sketch.Writer{}
	w.Nested(foreign)
	spliced = append(spliced, w.Bytes()...)
	if _, err := window.Unmarshal(spliced); err == nil ||
		!strings.Contains(err.Error(), "do not merge") {
		t.Fatalf("mixed-kind ring decoded: %v", err)
	}
	// Sanity: the unspliced payload still decodes.
	if _, err := window.Unmarshal(good); err != nil {
		t.Fatal(err)
	}
}

// TestNestedWindowRejected builds a syntactically valid window payload
// whose pristine replica is itself a window payload; the decode-time tag
// gate must refuse it.
func TestNestedWindowRejected(t *testing.T) {
	clock := window.NewManualClock()
	inner := build(t, "kmv", 1, clock)
	_, err := window.New(window.Config{
		Window: 1, EpochLen: time.Second, Clock: clock,
		New: func() (estimator.Estimator, error) { return estimator.Adapt(inner), nil },
	})
	if err == nil || !strings.Contains(err.Error(), "cannot ride") {
		t.Fatalf("window-in-window construction allowed: %v", err)
	}
}

// TestConfigValidation pins New's input checks.
func TestConfigValidation(t *testing.T) {
	newInner := func() (estimator.Estimator, error) { return estimator.New(innerSpec("kmv")) }
	cases := map[string]window.Config{
		"zero window":    {Window: 0, EpochLen: time.Second, New: newInner},
		"huge window":    {Window: window.MaxWindow + 1, EpochLen: time.Second, New: newInner},
		"zero epoch len": {Window: 2, New: newInner},
		"nil factory":    {Window: 2, EpochLen: time.Second},
	}
	for name, cfg := range cases {
		if _, err := window.New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestWindowedQuantileRidesRing pins the composite-gate boundary from
// the other side: the quantile tag (0x40) lies OUTSIDE the 0x30–0x3f
// composite range, so a quantile summary must nest inside window
// payloads — construct, rotate, survive the wire round-trip — and
// surface "window_p99"-style keys scoped to the last W epochs.
func TestWindowedQuantileRidesRing(t *testing.T) {
	const epochs, perEpoch, W = 6, 4000, 2
	slices := epochStream(t, epochs, perEpoch)
	clock := window.NewManualClock()
	we := build(t, "quantile", W, clock)
	for ep, items := range slices {
		clock.Set(uint64(ep))
		we.UpdateBatch(items)
	}
	est := we.Estimates()
	for _, key := range []string{"n", "p50", "p99", "window_n", "window_p50", "window_p99", "window_p999"} {
		if _, ok := est[key]; !ok {
			t.Fatalf("windowed quantile estimates missing %q", key)
		}
	}
	if est["n"] != float64(epochs*perEpoch) {
		t.Errorf("cumulative n = %v, want %d", est["n"], epochs*perEpoch)
	}
	if est["window_n"] != float64(W*perEpoch) {
		t.Errorf("window_n = %v, want %d", est["window_n"], W*perEpoch)
	}

	// The window-scoped p99 must answer for the last W epochs' items
	// within the merged CKMS bound (W shards → 2ε·n ranks).
	var last []float64
	for _, s := range slices[epochs-W:] {
		for _, it := range s {
			last = append(last, float64(it))
		}
	}
	sort.Float64s(last)
	n := float64(len(last))
	got := est["window_p99"]
	lo := sort.SearchFloat64s(last, got)
	hi := sort.Search(len(last), func(i int) bool { return last[i] > got })
	rankErr := 0.0
	if float64(hi) < 0.99*n {
		rankErr = 0.99*n - float64(hi)
	} else if float64(lo) > 0.99*n {
		rankErr = float64(lo) - 0.99*n
	}
	if bound := 2 * 0.001 * n; rankErr > bound {
		t.Errorf("window_p99 rank error %.0f > 2ε·n = %.0f", rankErr, bound)
	}

	// Wire round-trip: generations and the cumulative replica re-merge
	// deterministically, so a decoded ring answers identically.
	data, err := we.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	d, err := window.Unmarshal(data)
	if err != nil {
		t.Fatalf("windowed quantile failed to decode: %v", err)
	}
	dest := d.Estimates()
	for key, v := range est {
		if !near(dest[key], v) {
			t.Errorf("decoded ring %s = %v, want %v", key, dest[key], v)
		}
	}
}
