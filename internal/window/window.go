// Package window adds time scope to the registry's cumulative summaries:
// it wraps any registered estimator.Estimator in a ring of generation
// replicas rotated on an epoch clock, so one ingest path answers both
// "since boot" (cumulative) and "over the last W epochs" (windowed)
// estimates — the standard production answer to a monitoring question
// like "distinct flows in the last five minutes", which a
// cumulative-since-boot summary cannot give.
//
// # Epoch ring
//
// An Estimator holds W generation replicas plus one cumulative replica,
// all constructed from one spec (and therefore mutually mergeable).
// Epochs are numbered by an absolute index supplied by a Clock; slot
// i of the ring holds the generation of epoch e with e % W == i:
//
//	epoch:   e-3   e-2   e-1    e (current)
//	          │     │     │     │
//	ring:   [gen] [gen] [gen] [gen]──── Observe/UpdateBatch also feed
//	          └─────┴──┬──┴─────┘       the cumulative replica
//	        window estimate = merge of all retained generations
//
// Rotation is lazy: every ingest or query first advances the ring to the
// clock's current epoch, resetting each slot whose generation has
// expired. Advancing by W or more epochs resets the whole ring in O(W),
// so an idle stream pays nothing per elapsed epoch.
//
// # Alignment and merging
//
// The absolute epoch index is what makes windows mergeable across shard
// replicas and across agents: a wall clock derives it from Unix time, so
// every process with the same epoch length agrees on epoch boundaries
// without coordination. Merge aligns the older side to the newer side's
// epoch — generations that fell out of the newer window are dropped, the
// rest merge slot-by-slot — so folding replicas snapshotted at different
// epochs (a collector's view of agents on different flush schedules)
// yields exactly the union window.
//
// Sharded ingestion (internal/pipeline) works unchanged: build every
// shard replica with New around one shared Clock and the replicas rotate
// in lockstep; MergeAll's fold then realigns whatever epoch skew remains.
// Because pipeline workers apply batches asynchronously, a batch fed just
// before an epoch boundary may be applied just after it; quiesce the
// pipeline with Sync before reading an epoch-critical boundary if that
// skew matters.
package window

import (
	"fmt"
	"sync/atomic"
	"time"

	"substream/internal/estimator"
	"substream/internal/stream"
)

// MaxWindow bounds the generation count, here and in the decoder: a
// window is a handful of epochs, and a corrupt wire payload must not
// provoke thousands of replica allocations.
const MaxWindow = 1 << 12

// Clock supplies the absolute epoch index generations are keyed by. All
// replicas of one logical stream must share a clock (or clocks that agree
// on the index, as wall clocks with equal epoch lengths do).
// Implementations must be safe for concurrent use.
type Clock interface {
	Epoch() uint64
}

// wallClock derives the epoch index from Unix time, so independent
// processes with the same epoch length agree on epoch boundaries.
type wallClock struct {
	len int64 // nanoseconds
}

// NewWallClock returns a Clock ticking every epochLen of wall time. It
// panics if epochLen is not positive, like the estimator constructors.
func NewWallClock(epochLen time.Duration) Clock {
	if epochLen <= 0 {
		panic("window: epoch length must be positive")
	}
	return wallClock{len: int64(epochLen)}
}

func (c wallClock) Epoch() uint64 { return uint64(time.Now().UnixNano() / c.len) }

// ManualClock is an explicitly advanced Clock for tests, batch replays,
// and count-driven epochs (cmd/substream rotates one every N items). The
// zero value starts at epoch 0 and is ready to use.
type ManualClock struct {
	epoch atomic.Uint64
}

// NewManualClock returns a ManualClock at epoch 0.
func NewManualClock() *ManualClock { return &ManualClock{} }

// Epoch returns the current epoch index.
func (c *ManualClock) Epoch() uint64 { return c.epoch.Load() }

// Set moves the clock to epoch e. Moving backwards is allowed on the
// clock but rings never rotate backwards; estimators just stop advancing
// until the clock passes their epoch again.
func (c *ManualClock) Set(e uint64) { c.epoch.Store(e) }

// Advance moves the clock forward one epoch and returns the new index.
func (c *ManualClock) Advance() uint64 { return c.epoch.Add(1) }

// frozenClock pins decoded estimators to their snapshot epoch: a revived
// summary answers as of the moment it was serialized, and only advances
// when merged into a live ring.
type frozenClock uint64

func (c frozenClock) Epoch() uint64 { return uint64(c) }

// Config shapes a windowed estimator.
type Config struct {
	// Window is the number of epochs W the window spans (including the
	// current, partial one). The ring holds exactly W generations.
	Window int
	// EpochLen identifies the epoch length. Wall clocks interpret it as
	// a duration; count-driven deployments may store any positive value
	// (e.g. items per epoch). It is a merge-compatibility key: two
	// windowed estimators merge only if their EpochLen agree, because
	// the absolute epoch index is only meaningful against one length.
	EpochLen time.Duration
	// Clock supplies the epoch index. Default: NewWallClock(EpochLen).
	// Every replica of one logical stream must share the clock (see the
	// package comment on alignment).
	Clock Clock
	// New constructs one inner replica. It is called W+1 times at
	// construction (W generations plus the cumulative replica) and must
	// build every replica from identical configuration — the library's
	// usual mergeability rule.
	New func() (estimator.Estimator, error)
}

// Estimator wraps an inner estimator kind in an epoch ring. It
// implements estimator.Typed[*Estimator]; lift it to the interface with
// estimator.Adapt. Not safe for concurrent use, matching the inner
// estimators (the pipeline gives each replica a single owner).
type Estimator struct {
	window   int
	epochLen int64 // nanoseconds (or the deployment's opaque unit)
	clock    Clock
	epoch    uint64                // ring position: slot epoch-k%W holds epoch e-k
	gens     []estimator.Estimator // ring, len == window
	cum      estimator.Estimator   // cumulative-since-boot replica
	// pristine is the serialized empty inner replica. Resets and
	// window-query accumulators decode it instead of calling a factory,
	// so estimators revived from the wire — which carry no constructor —
	// rotate and answer queries exactly like constructed ones.
	pristine []byte
}

// New builds a windowed estimator around cfg.New replicas.
func New(cfg Config) (*Estimator, error) {
	if cfg.Window < 1 || cfg.Window > MaxWindow {
		return nil, fmt.Errorf("window: window must be in [1, %d], got %d", MaxWindow, cfg.Window)
	}
	if cfg.EpochLen <= 0 {
		return nil, fmt.Errorf("window: epoch length must be positive, got %v", cfg.EpochLen)
	}
	if cfg.New == nil {
		return nil, fmt.Errorf("window: missing inner estimator constructor")
	}
	clock := cfg.Clock
	if clock == nil {
		clock = NewWallClock(cfg.EpochLen)
	}
	e := &Estimator{
		window:   cfg.Window,
		epochLen: int64(cfg.EpochLen),
		clock:    clock,
		epoch:    clock.Epoch(),
		gens:     make([]estimator.Estimator, cfg.Window),
	}
	for i := range e.gens {
		inner, err := cfg.New()
		if err != nil {
			return nil, err
		}
		e.gens[i] = inner
	}
	cum, err := cfg.New()
	if err != nil {
		return nil, err
	}
	e.cum = cum
	// Serialize one pristine replica now, while the factory is at hand;
	// see the pristine field. Built from the same cfg.New, it merges with
	// every generation.
	probe, err := cfg.New()
	if err != nil {
		return nil, err
	}
	e.pristine, err = probe.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("window: inner kind is not serializable: %w", err)
	}
	if _, err := decodeInner(e.pristine); err != nil {
		return nil, fmt.Errorf("window: inner kind cannot ride a window payload: %w", err)
	}
	return e, nil
}

// Window returns the window span W in epochs.
func (e *Estimator) Window() int { return e.window }

// EpochLen returns the configured epoch length.
func (e *Estimator) EpochLen() time.Duration { return time.Duration(e.epochLen) }

// Epoch advances the ring to the clock's current epoch and returns it.
func (e *Estimator) Epoch() uint64 { e.rotate(); return e.epoch }

// reset replaces slot i with a pristine replica.
func (e *Estimator) reset(i int) {
	fresh, err := decodeInner(e.pristine)
	if err != nil {
		// Unreachable: pristine round-tripped through decodeInner in New
		// (or arrived via Unmarshal, which decodes every nested payload).
		panic(fmt.Sprintf("window: pristine payload stopped decoding: %v", err))
	}
	e.gens[i] = fresh
}

// rotate advances the ring to the clock's epoch, resetting expired slots.
func (e *Estimator) rotate() { e.advanceTo(e.clock.Epoch()) }

// advanceTo moves the ring forward to epoch target. Moving backwards is
// a no-op: generations are keyed by the furthest epoch the ring has seen.
func (e *Estimator) advanceTo(target uint64) {
	if target <= e.epoch {
		return
	}
	if target-e.epoch >= uint64(e.window) {
		for i := range e.gens {
			e.reset(i)
		}
	} else {
		for ep := e.epoch + 1; ep <= target; ep++ {
			e.reset(int(ep % uint64(e.window)))
		}
	}
	e.epoch = target
}

// current returns the generation of the current epoch.
func (e *Estimator) current() estimator.Estimator {
	return e.gens[int(e.epoch%uint64(e.window))]
}

// Observe feeds one item into the current generation and the cumulative
// replica.
func (e *Estimator) Observe(it stream.Item) {
	e.rotate()
	e.current().Observe(it)
	e.cum.Observe(it)
}

// UpdateBatch feeds a batch. The ring rotates once per batch, so a batch
// straddling an epoch boundary lands in the epoch at application time —
// the same boundary skew any asynchronous ingest path has.
func (e *Estimator) UpdateBatch(items []stream.Item) {
	e.rotate()
	e.current().UpdateBatch(items)
	e.cum.UpdateBatch(items)
}

// ObserveWeighted feeds one weighted item into the current generation
// and the cumulative replica — through each replica's native weighted
// path when the inner kind has one, and the weight-1 projection (bare
// key, observed once) otherwise. Windowed VarOpt reservoirs therefore
// answer "weight from subnet X in the last W epochs" with no extra
// plumbing.
func (e *Estimator) ObserveWeighted(it stream.Item, weight float64) {
	e.rotate()
	observeWeighted(e.current(), it, weight)
	observeWeighted(e.cum, it, weight)
}

func observeWeighted(dst estimator.Estimator, it stream.Item, weight float64) {
	if w, ok := estimator.WeightedOf(dst); ok {
		w.ObserveWeighted(it, weight)
		return
	}
	dst.Observe(it)
}

// UpdateWeightedBatch feeds a weighted batch, rotating once per batch
// like UpdateBatch.
func (e *Estimator) UpdateWeightedBatch(items []stream.WItem) {
	e.rotate()
	updateWeighted(e.current(), items)
	updateWeighted(e.cum, items)
}

func updateWeighted(dst estimator.Estimator, items []stream.WItem) {
	if w, ok := estimator.WeightedOf(dst); ok {
		w.UpdateWeightedBatch(items)
		return
	}
	for _, it := range items {
		dst.Observe(it.Key)
	}
}

// SubsetSum answers the since-boot subset-sum query from the cumulative
// replica. The second return reports whether the inner kind answers
// subset sums at all; callers surface that as a configuration error
// rather than read a silent zero.
func (e *Estimator) SubsetSum(pred func(it stream.Item) bool) (float64, bool) {
	s, ok := estimator.SummerOf(e.cum)
	if !ok {
		return 0, false
	}
	return s.SubsetSum(pred), true
}

// WindowSubsetSum answers the subset-sum query over the last W epochs:
// the retained generations merge into a fresh accumulator (the same fold
// WindowReport uses) and the accumulator answers.
func (e *Estimator) WindowSubsetSum(pred func(it stream.Item) bool) (float64, bool) {
	e.rotate()
	acc, err := e.windowMerged()
	if err != nil {
		return 0, false
	}
	s, ok := estimator.SummerOf(acc)
	if !ok {
		return 0, false
	}
	return s.SubsetSum(pred), true
}

// Merge folds another windowed estimator into the receiver. Both sides
// must agree on window span and epoch length; the receiver first
// advances to the newer of (its clock, the other's ring), so generations
// of the other side that have already expired from that window are
// dropped rather than smeared into the estimate — this is the alignment
// a collector relies on when folding agents on different flush
// schedules. The other side is never mutated.
func (e *Estimator) Merge(other *Estimator) error {
	if e.window != other.window {
		return fmt.Errorf("window: cannot merge window of %d epochs into %d", other.window, e.window)
	}
	if e.epochLen != other.epochLen {
		return fmt.Errorf("window: cannot merge epoch length %v into %v",
			time.Duration(other.epochLen), time.Duration(e.epochLen))
	}
	e.rotate()
	e.advanceTo(other.epoch)
	// Slot-by-slot: other's ring holds epochs (other.epoch-W, other.epoch];
	// merge those still retained by the receiver, i.e. > e.epoch-W.
	for k := 0; k < e.window; k++ {
		if uint64(k) > other.epoch {
			break // ring older than epoch 0 — nothing was ever there
		}
		ep := other.epoch - uint64(k)
		if e.epoch-ep >= uint64(e.window) {
			break // expired from the receiver's window
		}
		slot := int(ep % uint64(e.window))
		if err := e.gens[slot].Merge(other.gens[slot]); err != nil {
			return err
		}
	}
	return e.cum.Merge(other.cum)
}

// windowMerged folds every retained generation into a pristine
// accumulator — the last-W-epochs summary.
func (e *Estimator) windowMerged() (estimator.Estimator, error) {
	acc, err := decodeInner(e.pristine)
	if err != nil {
		return nil, err
	}
	for _, g := range e.gens {
		if err := acc.Merge(g); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// WindowReport returns the full report (scalar estimates plus any heavy
// hitters) of the last W epochs alone.
func (e *Estimator) WindowReport() (estimator.Report, error) {
	e.rotate()
	acc, err := e.windowMerged()
	if err != nil {
		return estimator.Report{}, err
	}
	return estimator.ReportOf(acc), nil
}

// CumulativeReport returns the full since-boot report.
func (e *Estimator) CumulativeReport() estimator.Report {
	return estimator.ReportOf(e.cum)
}

// Estimates answers both scopes from one summary: the cumulative
// estimates under their usual names, and the last-W-epochs estimates
// under a "window_" prefix.
func (e *Estimator) Estimates() map[string]float64 {
	e.rotate()
	out := make(map[string]float64)
	for name, v := range e.cum.Estimates() {
		out[name] = v
	}
	acc, err := e.windowMerged()
	if err != nil {
		// Unreachable for rings built by New or Unmarshal (generations
		// share one spec); a scalar map has no error channel regardless.
		return out
	}
	for name, v := range acc.Estimates() {
		out["window_"+name] = v
	}
	return out
}

// EstimatorReport reports the combined scalar map; the hitter lists come
// from the window scope, because recency is what the wrapper adds —
// CumulativeReport still serves the since-boot lists. The window merge
// runs once and feeds both the window_ scalars and the hitter lists.
func (e *Estimator) EstimatorReport() estimator.Report {
	e.rotate()
	out := make(map[string]float64)
	for name, v := range e.cum.Estimates() {
		out[name] = v
	}
	rep := estimator.Report{Values: out}
	acc, err := e.windowMerged()
	if err != nil {
		// Unreachable for rings built by New or Unmarshal; see Estimates.
		return rep
	}
	wrep := estimator.ReportOf(acc)
	for name, v := range wrep.Values {
		out["window_"+name] = v
	}
	rep.F1Hitters = wrep.F1Hitters
	rep.F2Hitters = wrep.F2Hitters
	return rep
}

// SpaceBytes returns the footprint of every replica plus the pristine
// payload the ring resets from.
func (e *Estimator) SpaceBytes() int {
	total := e.cum.SpaceBytes() + len(e.pristine)
	for _, g := range e.gens {
		total += g.SpaceBytes()
	}
	return total
}
