package sketch

import "substream/internal/stream"

// MisraGries is the deterministic frequent-items summary of Misra and
// Gries [33]: with k counters, every item's reported count underestimates
// its true count by at most N/(k+1), so all items with f_i > N/(k+1) are
// guaranteed to be present. The paper notes it as the insert-only
// alternative to CountMin for Theorem 6.
type MisraGries struct {
	k        int
	counters map[stream.Item]uint64
	n        uint64
}

// NewMisraGries returns a summary with k counters. It panics if k < 1.
func NewMisraGries(k int) *MisraGries {
	if k < 1 {
		panic("sketch: MisraGries requires k >= 1")
	}
	return &MisraGries{k: k, counters: make(map[stream.Item]uint64, k+1)}
}

// Observe feeds one item.
func (mg *MisraGries) Observe(it stream.Item) {
	mg.n++
	if _, ok := mg.counters[it]; ok {
		mg.counters[it]++
		return
	}
	if len(mg.counters) < mg.k {
		mg.counters[it] = 1
		return
	}
	// Decrement-all step; delete counters that reach zero.
	for key, c := range mg.counters {
		if c == 1 {
			delete(mg.counters, key)
		} else {
			mg.counters[key] = c - 1
		}
	}
}

// Estimate returns the (under-)estimate of item's count: true count minus
// at most N/(k+1).
func (mg *MisraGries) Estimate(it stream.Item) uint64 {
	return mg.counters[it]
}

// Candidates returns the currently tracked items and their estimates.
// The map is internal state; callers must not mutate it.
func (mg *MisraGries) Candidates() map[stream.Item]uint64 { return mg.counters }

// N returns how many items have been observed.
func (mg *MisraGries) N() uint64 { return mg.n }

// ErrorBound returns the maximum undercount N/(k+1).
func (mg *MisraGries) ErrorBound() float64 {
	return float64(mg.n) / float64(mg.k+1)
}

// SpaceBytes returns the approximate memory footprint.
func (mg *MisraGries) SpaceBytes() int { return 32 * mg.k }
