package sketch

import "substream/internal/stream"

// This file adds batched update paths. UpdateBatch(items) is semantically
// equivalent to calling Observe on each item in order, but amortizes the
// per-item costs that dominate high-throughput ingestion: interface
// dispatch at the call site, and — for the table-based sketches — hash
// and row bookkeeping, which the batch loops reorganize row-major so each
// hash function and table row stays hot across the whole batch.
//
// The sharded ingestion pipeline (internal/pipeline) feeds estimators
// exclusively through this path.

// UpdateBatch records one occurrence of every item in items. It is
// equivalent to (but faster than) calling Observe per item: the loop runs
// row-major, so one hash function and one table row are reused across the
// whole batch.
func (cm *CountMin) UpdateBatch(items []stream.Item) {
	for row := 0; row < cm.depth; row++ {
		h := cm.hashes[row]
		base := row * cm.width
		for _, it := range items {
			cm.table[base+h.Bucket(uint64(it), cm.width)]++
		}
	}
	cm.n += uint64(len(items))
}

// UpdateBatch records one occurrence of every item in items, row-major
// like CountMin.UpdateBatch.
func (cs *CountSketch) UpdateBatch(items []stream.Item) {
	for row := 0; row < cs.depth; row++ {
		bucket, sign := cs.buckets[row], cs.signs[row]
		base := row * cs.width
		for _, it := range items {
			cs.table[base+bucket.Bucket(uint64(it), cs.width)] += int64(sign.Sign(uint64(it)))
		}
	}
	cs.n += uint64(len(items))
}

// UpdateBatch records one occurrence of every item in items,
// counter-major so each sign function stays in registers across the
// batch.
func (a *AMS) UpdateBatch(items []stream.Item) {
	for i := range a.counters {
		sign := a.signs[i]
		var acc int64
		for _, it := range items {
			acc += int64(sign.Sign(uint64(it)))
		}
		a.counters[i] += acc
	}
}

// UpdateBatch feeds every item in items.
func (s *KMV) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		s.Observe(it)
	}
}

// UpdateBatch feeds every item in items.
func (h *HLL) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		h.Observe(it)
	}
}

// UpdateBatch feeds every item in items.
func (mg *MisraGries) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		mg.Observe(it)
	}
}

// UpdateBatch feeds every item in items.
func (ss *SpaceSaving) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		ss.Observe(it)
	}
}

// UpdateBatch feeds every item in items, probe-major: each reservoir
// probe's state stays in registers while it scans the batch.
func (e *EntropyEstimator) UpdateBatch(items []stream.Item) {
	n := e.n
	for probe := range e.items {
		cur, cnt := e.items[probe], e.counts[probe]
		pos := n
		for _, it := range items {
			pos++
			if e.r.Uint64n(pos) == 0 {
				cur, cnt = it, 1
			} else if cur == it && cnt > 0 {
				cnt++
			}
		}
		e.items[probe], e.counts[probe] = cur, cnt
	}
	e.n = n + uint64(len(items))
}
