package sketch

import (
	"math/bits"

	"substream/internal/rng"
	"substream/internal/stream"
)

// This file adds batched update paths. UpdateBatch(items) produces state
// bit-identical to calling Observe on each item in order (the invariant
// internal/estimator's equivalence test pins for every registered kind),
// but amortizes the per-item costs that dominate high-throughput
// ingestion: interface dispatch at the call site, hash and row
// bookkeeping for the table-based sketches (reorganized row-major on the
// flat Hash2/Hash4 kernels so each row's coefficients stay in registers
// across the whole batch), map lookups for the counter-based summaries
// (amortized across runs of equal items), and heap admission for KMV
// (a threshold prefilter rejects most hashes before any map or heap
// work).
//
// The sharded ingestion pipeline (internal/pipeline) feeds estimators
// exclusively through this path.

// UpdateBatch records one occurrence of every item in items. It is
// equivalent to (but faster than) calling Observe per item: the loop runs
// row-major, so one row kernel and one table row are reused across the
// whole batch, and the main loop evaluates four keys per iteration
// through the lane kernel — four independent multiply-reduce chains the
// CPU overlaps, where the scalar loop serialized on one. Table
// increments stay in item order, so the state is bit-identical to the
// scalar path (and to per-item Observe).
func (cm *CountMin) UpdateBatch(items []stream.Item) {
	rr := cm.rr
	for row := 0; row < cm.depth; row++ {
		h := cm.rows[row]
		base := row * cm.width
		tbl := cm.table[base : base+cm.width : base+cm.width]
		i := 0
		for ; i+4 <= len(items); i += 4 {
			h0, h1, h2, h3 := h.HashLanes4(
				uint64(items[i]), uint64(items[i+1]), uint64(items[i+2]), uint64(items[i+3]))
			tbl[rr.Bucket(h0)]++
			tbl[rr.Bucket(h1)]++
			tbl[rr.Bucket(h2)]++
			tbl[rr.Bucket(h3)]++
		}
		for ; i < len(items); i++ {
			tbl[rr.Bucket(h.Hash(uint64(items[i])))]++
		}
	}
	cm.n += uint64(len(items))
}

// UpdateBatch records one occurrence of every item in items, row-major
// like CountMin.UpdateBatch: each row keeps its bucket and sign kernels
// in registers while scanning the batch four keys at a time, sharing one
// lane reduction between the bucket and sign evaluations.
func (cs *CountSketch) UpdateBatch(items []stream.Item) {
	rr := cs.rr
	for row := 0; row < cs.depth; row++ {
		bucket, sign := cs.buckets[row], cs.signs[row]
		base := row * cs.width
		tbl := cs.table[base : base+cs.width : base+cs.width]
		i := 0
		for ; i+4 <= len(items); i += 4 {
			x0, x1, x2, x3 := rng.Mod61Lanes4(
				uint64(items[i]), uint64(items[i+1]), uint64(items[i+2]), uint64(items[i+3]))
			b0, b1, b2, b3 := bucket.EvalLanes4(x0, x1, x2, x3)
			s0, s1, s2, s3 := sign.EvalLanes4(x0, x1, x2, x3)
			tbl[rr.Bucket(b0)] += int64(s0&1)*2 - 1
			tbl[rr.Bucket(b1)] += int64(s1&1)*2 - 1
			tbl[rr.Bucket(b2)] += int64(s2&1)*2 - 1
			tbl[rr.Bucket(b3)] += int64(s3&1)*2 - 1
		}
		for ; i < len(items); i++ {
			x := rng.Mod61(uint64(items[i]))
			tbl[rr.Bucket(bucket.Eval(x))] += int64(sign.Eval(x)&1)*2 - 1
		}
	}
	cs.n += uint64(len(items))
}

// UpdateBatch records one occurrence of every item in items,
// counter-major so each sign kernel stays in registers across the
// batch.
func (a *AMS) UpdateBatch(items []stream.Item) {
	for i := range a.counters {
		sign := a.signs[i]
		var acc int64
		for _, it := range items {
			acc += int64(sign.Eval(rng.Mod61(uint64(it)))&1)*2 - 1
		}
		a.counters[i] += acc
	}
}

// UpdateBatch feeds every item in items through a hash-then-threshold
// prefilter: once the heap is full, a hash at or above the current k-th
// minimum can change nothing (admitHash would reject it, duplicate or
// not), so the batch loop discards it before any map lookup or heap
// work. The main loop hashes four items per iteration through the lane
// kernel, then applies the threshold test in item order — admissions
// update the threshold exactly where the scalar loop would, so the state
// is bit-identical. On a saturated sketch almost every lane takes the
// compare-and-skip path.
func (s *KMV) UpdateBatch(items []stream.Item) {
	h := s.h
	i := 0
	for ; i+4 <= len(items); i += 4 {
		h0, h1, h2, h3 := h.HashLanes4(
			uint64(items[i]), uint64(items[i+1]), uint64(items[i+2]), uint64(items[i+3]))
		// The threshold (heap root) may move on admission, so each lane
		// re-reads it — in-order processing keeps scalar equivalence.
		if len(s.heap) != s.k || h0 < s.heap[0] {
			s.admitHash(h0)
		}
		if len(s.heap) != s.k || h1 < s.heap[0] {
			s.admitHash(h1)
		}
		if len(s.heap) != s.k || h2 < s.heap[0] {
			s.admitHash(h2)
		}
		if len(s.heap) != s.k || h3 < s.heap[0] {
			s.admitHash(h3)
		}
	}
	for ; i < len(items); i++ {
		hv := h.Hash(uint64(items[i]))
		if len(s.heap) == s.k && hv >= s.heap[0] {
			continue
		}
		s.admitHash(hv)
	}
}

// UpdateBatch feeds every item in items with the register array and hash
// seeds hoisted into locals and the mix computed four items per
// iteration: Mix64's multiply/xor chain has no memory traffic, so the
// four independent lanes pipeline. Register maxima commute, and lanes
// are applied in item order anyway, so the state is bit-identical to
// Observe.
func (h *HLL) UpdateBatch(items []stream.Item) {
	regs := h.registers
	a, b, p := h.seedA, h.seedB, h.precision
	sentinel := uint64(1) << (p - 1) // bounds the rank like Observe
	i := 0
	for ; i+4 <= len(items); i += 4 {
		x0 := rng.Mix64(uint64(items[i])*a + b)
		x1 := rng.Mix64(uint64(items[i+1])*a + b)
		x2 := rng.Mix64(uint64(items[i+2])*a + b)
		x3 := rng.Mix64(uint64(items[i+3])*a + b)
		r0 := uint8(bits.LeadingZeros64(x0<<p|sentinel)) + 1
		r1 := uint8(bits.LeadingZeros64(x1<<p|sentinel)) + 1
		r2 := uint8(bits.LeadingZeros64(x2<<p|sentinel)) + 1
		r3 := uint8(bits.LeadingZeros64(x3<<p|sentinel)) + 1
		if idx := x0 >> (64 - p); r0 > regs[idx] {
			regs[idx] = r0
		}
		if idx := x1 >> (64 - p); r1 > regs[idx] {
			regs[idx] = r1
		}
		if idx := x2 >> (64 - p); r2 > regs[idx] {
			regs[idx] = r2
		}
		if idx := x3 >> (64 - p); r3 > regs[idx] {
			regs[idx] = r3
		}
	}
	for ; i < len(items); i++ {
		x := rng.Mix64(uint64(items[i])*a + b)
		idx := x >> (64 - p)
		rest := x<<p | sentinel
		rank := uint8(bits.LeadingZeros64(rest)) + 1
		if rank > regs[idx] {
			regs[idx] = rank
		}
	}
}

// UpdateBatch feeds every item in items, amortizing map lookups across
// runs of equal items: a run landing on a tracked counter pays one
// lookup and one write for the whole run (a tracked counter only grows,
// so no decrement-all can fire mid-run). Untracked items take the exact
// per-item Observe policy.
func (mg *MisraGries) UpdateBatch(items []stream.Item) {
	for i := 0; i < len(items); {
		it := items[i]
		j := i + 1
		for j < len(items) && items[j] == it {
			j++
		}
		run := uint64(j - i)
		if c, ok := mg.counters[it]; ok {
			mg.counters[it] = c + run
			mg.n += run
			i = j
			continue
		}
		// Untracked: the Observe policy, inlined so the admission reuses
		// this loop's lookup instead of paying a second one.
		mg.n++
		i++
		if len(mg.counters) < mg.k {
			// Admitted — the rest of the run increments the new counter.
			mg.counters[it] = run
			mg.n += run - 1
			i = j
			continue
		}
		// Decrement-all; the next occurrence in the run (if any) retries
		// with whatever capacity the deletions freed.
		for key, c := range mg.counters {
			if c == 1 {
				delete(mg.counters, key)
			} else {
				mg.counters[key] = c - 1
			}
		}
	}
}

// UpdateBatch feeds every item in items, amortizing index-map lookups
// across runs of equal items: within a run the item's heap position is
// carried from sift to sift instead of re-queried, producing exactly the
// per-item increment-and-sift sequence Observe would.
func (ss *SpaceSaving) UpdateBatch(items []stream.Item) {
	for i := 0; i < len(items); {
		it := items[i]
		j := i + 1
		for j < len(items) && items[j] == it {
			j++
		}
		pos, ok := ss.index[it]
		if !ok {
			// Admission or replace-min: the Observe policy, inlined so
			// the rest of the run can sift from the admitted position
			// without a second index lookup.
			ss.n++
			i++
			if len(ss.h) < ss.k {
				ss.h = append(ss.h, ssEntry{item: it, count: 1})
				ss.index[it] = len(ss.h) - 1
				pos = ss.up(len(ss.h) - 1)
			} else {
				min := ss.h[0]
				delete(ss.index, min.item)
				ss.h[0] = ssEntry{item: it, count: min.count + 1, err: min.count}
				ss.index[it] = 0
				pos = ss.down(0)
			}
		}
		for ; i < j; i++ {
			ss.n++
			ss.h[pos].count++
			pos = ss.down(pos)
		}
	}
}

// UpdateBatch feeds every item in items, probe-major: each reservoir
// probe's state stays in registers while it scans the batch. The probes'
// generator draws interleave differently than per-item Observe, so the
// resulting state is statistically — not bit-for-bit — identical; this
// sketch has no wire form, and the registered entropy kind uses the
// plugin backend.
func (e *EntropyEstimator) UpdateBatch(items []stream.Item) {
	n := e.n
	for probe := range e.items {
		cur, cnt := e.items[probe], e.counts[probe]
		pos := n
		for _, it := range items {
			pos++
			if e.r.Uint64n(pos) == 0 {
				cur, cnt = it, 1
			} else if cur == it && cnt > 0 {
				cnt++
			}
		}
		e.items[probe], e.counts[probe] = cur, cnt
	}
	e.n = n + uint64(len(items))
}
