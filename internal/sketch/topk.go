package sketch

import (
	"sort"

	"substream/internal/stream"
)

// TopK tracks the k items with the largest estimated counts seen so far.
// It is the candidate-set companion to CountMin/CountSketch in the
// heavy-hitter algorithms: the sketch answers point queries, TopK
// remembers which items are currently worth reporting.
type TopK struct {
	k     int
	h     tkHeap
	index map[stream.Item]int // item → position in h
}

type tkEntry struct {
	item  stream.Item
	count float64
}

// tkHeap is a min-heap on count, maintained by the hand-rolled sift code
// below (rather than container/heap) because every swap must also update
// the index map.
type tkHeap []tkEntry

// NewTopK returns a tracker for the k largest counts. It panics if k < 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("sketch: TopK requires k >= 1")
	}
	return &TopK{k: k, index: make(map[stream.Item]int, k)}
}

// Update reports a (possibly revised) estimated count for item. The
// tracker keeps the item if it is already tracked (updating its count) or
// if its count beats the current minimum.
func (t *TopK) Update(it stream.Item, count float64) {
	if pos, ok := t.index[it]; ok {
		t.h[pos].count = count
		t.fix(pos)
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, tkEntry{item: it, count: count})
		t.index[it] = len(t.h) - 1
		t.up(len(t.h) - 1)
		return
	}
	if count > t.h[0].count {
		delete(t.index, t.h[0].item)
		t.h[0] = tkEntry{item: it, count: count}
		t.index[it] = 0
		t.down(0)
	}
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.h[parent].count <= t.h[i].count {
			break
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.h[l].count < t.h[smallest].count {
			smallest = l
		}
		if r < n && t.h[r].count < t.h[smallest].count {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}

func (t *TopK) fix(i int) {
	t.up(i)
	t.down(i)
}

func (t *TopK) swap(i, j int) {
	t.h[i], t.h[j] = t.h[j], t.h[i]
	t.index[t.h[i].item] = i
	t.index[t.h[j].item] = j
}

// Contains reports whether item is currently tracked.
func (t *TopK) Contains(it stream.Item) bool {
	_, ok := t.index[it]
	return ok
}

// Min returns the smallest tracked count, or 0 when empty.
func (t *TopK) Min() float64 {
	if len(t.h) == 0 {
		return 0
	}
	return t.h[0].count
}

// Len returns the number of tracked items.
func (t *TopK) Len() int { return len(t.h) }

// SpaceBytes returns the approximate memory footprint.
func (t *TopK) SpaceBytes() int { return 48 * t.k }

// Entry is a tracked item with its estimated count.
type Entry struct {
	Item  stream.Item
	Count float64
}

// Items returns the tracked items sorted by decreasing count (ties by
// increasing item id).
func (t *TopK) Items() []Entry {
	out := make([]Entry, 0, len(t.h))
	for _, e := range t.h {
		out = append(out, Entry{Item: e.item, Count: e.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Observe counts one occurrence of it: a tracked item's count
// increments, an untracked one competes for entry at count 1 — which a
// full heap of count >= 1 entries always rejects, so an item that first
// appears after the heap fills is never admitted no matter how frequent
// it becomes. Observe exists so decoded trackers satisfy the estimator
// contract; for counting top-k from a raw stream use SpaceSaving, and
// the heavy-hitter estimators drive Update with sketch-backed scores.
func (t *TopK) Observe(it stream.Item) {
	if pos, ok := t.index[it]; ok {
		t.h[pos].count++
		t.fix(pos)
		return
	}
	t.Update(it, 1)
}

// UpdateBatch feeds a batch of single occurrences.
func (t *TopK) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		t.Observe(it)
	}
}
