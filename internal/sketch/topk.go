package sketch

import (
	"container/heap"
	"sort"

	"substream/internal/stream"
)

// TopK tracks the k items with the largest estimated counts seen so far.
// It is the candidate-set companion to CountMin/CountSketch in the
// heavy-hitter algorithms: the sketch answers point queries, TopK
// remembers which items are currently worth reporting.
type TopK struct {
	k     int
	h     tkHeap
	index map[stream.Item]int // item → position in h
}

type tkEntry struct {
	item  stream.Item
	count float64
}

type tkHeap []tkEntry

func (h tkHeap) Len() int           { return len(h) }
func (h tkHeap) Less(i, j int) bool { return h[i].count < h[j].count }

// Swap keeps the index map in sync; it is wired in via the outer type.
func (h tkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *tkHeap) Push(x interface{}) { *h = append(*h, x.(tkEntry)) }
func (h *tkHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewTopK returns a tracker for the k largest counts. It panics if k < 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		panic("sketch: TopK requires k >= 1")
	}
	return &TopK{k: k, index: make(map[stream.Item]int, k)}
}

// Update reports a (possibly revised) estimated count for item. The
// tracker keeps the item if it is already tracked (updating its count) or
// if its count beats the current minimum.
func (t *TopK) Update(it stream.Item, count float64) {
	if pos, ok := t.index[it]; ok {
		t.h[pos].count = count
		t.fix(pos)
		return
	}
	if len(t.h) < t.k {
		t.h = append(t.h, tkEntry{item: it, count: count})
		t.index[it] = len(t.h) - 1
		t.up(len(t.h) - 1)
		return
	}
	if count > t.h[0].count {
		delete(t.index, t.h[0].item)
		t.h[0] = tkEntry{item: it, count: count}
		t.index[it] = 0
		t.down(0)
	}
}

// The heap is hand-rolled (rather than container/heap) because sift
// operations must maintain the index map on every swap.

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.h[parent].count <= t.h[i].count {
			break
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.h[l].count < t.h[smallest].count {
			smallest = l
		}
		if r < n && t.h[r].count < t.h[smallest].count {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}

func (t *TopK) fix(i int) {
	t.up(i)
	t.down(i)
}

func (t *TopK) swap(i, j int) {
	t.h[i], t.h[j] = t.h[j], t.h[i]
	t.index[t.h[i].item] = i
	t.index[t.h[j].item] = j
}

// Contains reports whether item is currently tracked.
func (t *TopK) Contains(it stream.Item) bool {
	_, ok := t.index[it]
	return ok
}

// Min returns the smallest tracked count, or 0 when empty.
func (t *TopK) Min() float64 {
	if len(t.h) == 0 {
		return 0
	}
	return t.h[0].count
}

// Len returns the number of tracked items.
func (t *TopK) Len() int { return len(t.h) }

// Entry is a tracked item with its estimated count.
type Entry struct {
	Item  stream.Item
	Count float64
}

// Items returns the tracked items sorted by decreasing count (ties by
// increasing item id).
func (t *TopK) Items() []Entry {
	out := make([]Entry, 0, len(t.h))
	for _, e := range t.h {
		out = append(out, Entry{Item: e.item, Count: e.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// interface guard: tkHeap still satisfies heap.Interface so tests can
// cross-check the hand-rolled sift code against container/heap.
var _ heap.Interface = (*tkHeap)(nil)
