// Package sketch implements the streaming summaries the paper's
// estimators are built from: CountMin (Cormode–Muthukrishnan, used by
// Theorem 6), CountSketch (Charikar–Chen–Farach-Colton, used by
// Theorem 7), the AMS tug-of-war F₂ sketch, Misra–Gries frequent items,
// KMV and stochastic-averaging distinct-count estimators (used by
// Algorithm 2), a reservoir-position entropy estimator in the style of
// Chakrabarti–Cormode–McGregor (used by Theorem 5), and a top-k tracker.
//
// Every sketch is seeded explicitly from an rng.Xoshiro256 so experiments
// are reproducible, and every sketch reports its approximate memory
// footprint so the harness can compare space honestly.
package sketch

import (
	"math"

	"substream/internal/rng"
	"substream/internal/stream"
)

// CountMin is the Cormode–Muthukrishnan CountMin sketch for insert
// streams. Point queries overestimate by at most ε·N with probability
// 1−δ when built with width e/ε and depth ln(1/δ), where N is the total
// count added.
type CountMin struct {
	width int
	depth int
	table []uint64    // depth rows of width cells, row-major
	rows  []rng.Hash2 // one flat degree-1 kernel per row
	rr    rng.Range   // divide-free bucket reduction (fastrange)
	n     uint64
}

// NewCountMin builds a sketch with the given width and depth, drawing
// hash functions from r. It panics if width or depth is < 1.
func NewCountMin(width, depth int, r *rng.Xoshiro256) *CountMin {
	if width < 1 || depth < 1 {
		panic("sketch: CountMin width and depth must be >= 1")
	}
	cm := &CountMin{
		width: width,
		depth: depth,
		table: make([]uint64, width*depth),
		rows:  make([]rng.Hash2, depth),
		rr:    rng.NewRange(uint64(width)),
	}
	for i := range cm.rows {
		cm.rows[i] = rng.NewHash2(r)
	}
	return cm
}

// NewCountMinWithError builds a sketch sized for point-query error ε·N
// with failure probability δ: width = ⌈e/ε⌉, depth = ⌈ln(1/δ)⌉.
func NewCountMinWithError(epsilon, delta float64, r *rng.Xoshiro256) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: CountMin epsilon and delta must be in (0, 1)")
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	return NewCountMin(width, depth, r)
}

// Add records count occurrences of item.
func (cm *CountMin) Add(it stream.Item, count uint64) {
	x := rng.Mod61(uint64(it))
	for row := 0; row < cm.depth; row++ {
		col := cm.rr.Bucket(cm.rows[row].Eval(x))
		cm.table[uint64(row*cm.width)+col] += count
	}
	cm.n += count
}

// Observe records a single occurrence of item.
func (cm *CountMin) Observe(it stream.Item) { cm.Add(it, 1) }

// Estimate returns the point estimate f̂_i = min over rows. It never
// underestimates the true count.
func (cm *CountMin) Estimate(it stream.Item) uint64 {
	x := rng.Mod61(uint64(it))
	est := uint64(math.MaxUint64)
	for row := 0; row < cm.depth; row++ {
		col := cm.rr.Bucket(cm.rows[row].Eval(x))
		if v := cm.table[uint64(row*cm.width)+col]; v < est {
			est = v
		}
	}
	return est
}

// N returns the total count added so far (F1 of the observed stream).
func (cm *CountMin) N() uint64 { return cm.n }

// Width and Depth expose the sketch dimensions.
func (cm *CountMin) Width() int { return cm.width }

// Depth returns the number of hash rows.
func (cm *CountMin) Depth() int { return cm.depth }

// SpaceBytes returns the approximate memory footprint of the sketch, used
// by the experiment harness for space accounting.
func (cm *CountMin) SpaceBytes() int {
	return 8*len(cm.table) + 16*cm.depth + 24
}
