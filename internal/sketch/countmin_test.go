package sketch

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func zipfStream(n int, m int, s float64, seed uint64) stream.Slice {
	r := rng.New(seed)
	z := rng.NewZipf(m, s)
	out := make(stream.Slice, n)
	for i := range out {
		out[i] = stream.Item(z.Draw(r))
	}
	return out
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	s := zipfStream(50000, 1000, 1.1, 1)
	cm := NewCountMin(256, 4, rng.New(2))
	for _, it := range s {
		cm.Observe(it)
	}
	f := stream.NewFreq(s)
	for it, c := range f {
		if est := cm.Estimate(it); est < c {
			t.Fatalf("item %d: estimate %d < true %d", it, est, c)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// With width e/ε, per-item overestimate ≤ εN with good probability;
	// check that the overwhelming majority of items obey it.
	const eps, delta = 0.01, 0.01
	s := zipfStream(100000, 5000, 1.0, 3)
	cm := NewCountMinWithError(eps, delta, rng.New(4))
	for _, it := range s {
		cm.Observe(it)
	}
	f := stream.NewFreq(s)
	bound := uint64(eps * float64(cm.N()))
	bad := 0
	for it, c := range f {
		if cm.Estimate(it)-c > bound {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(f)); frac > delta*2 {
		t.Fatalf("%.3f of items exceeded εN overestimate bound, want ≤ %v", frac, delta*2)
	}
}

func TestCountMinUnseenItemSmall(t *testing.T) {
	s := zipfStream(50000, 100, 0.5, 5)
	cm := NewCountMin(512, 5, rng.New(6))
	for _, it := range s {
		cm.Observe(it)
	}
	// Items far outside the universe should estimate ≈ εN, not huge.
	bound := uint64(float64(cm.N()) * 3 / 512)
	for probe := stream.Item(1 << 40); probe < 1<<40+100; probe++ {
		if est := cm.Estimate(probe); est > bound {
			t.Fatalf("unseen item estimate %d > %d", est, bound)
		}
	}
}

func TestCountMinAddCounts(t *testing.T) {
	cm := NewCountMin(64, 3, rng.New(7))
	cm.Add(42, 1000)
	cm.Observe(42)
	if got := cm.Estimate(42); got < 1001 {
		t.Fatalf("estimate %d < 1001", got)
	}
	if cm.N() != 1001 {
		t.Fatalf("N = %d, want 1001", cm.N())
	}
}

func TestCountMinWithErrorDimensions(t *testing.T) {
	cm := NewCountMinWithError(0.01, 0.001, rng.New(8))
	if cm.Width() < 271 { // e/0.01 ≈ 271.8
		t.Fatalf("width %d too small", cm.Width())
	}
	if cm.Depth() < 6 { // ln(1000) ≈ 6.9
		t.Fatalf("depth %d too small", cm.Depth())
	}
	if cm.SpaceBytes() <= 0 {
		t.Fatal("SpaceBytes not positive")
	}
}

func TestCountMinPanics(t *testing.T) {
	cases := []func(){
		func() { NewCountMin(0, 1, rng.New(1)) },
		func() { NewCountMin(1, 0, rng.New(1)) },
		func() { NewCountMinWithError(0, 0.1, rng.New(1)) },
		func() { NewCountMinWithError(0.1, 1, rng.New(1)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCountMinEmptyEstimate(t *testing.T) {
	cm := NewCountMin(16, 2, rng.New(9))
	if got := cm.Estimate(5); got != 0 {
		t.Fatalf("empty sketch estimate %d", got)
	}
}

func BenchmarkCountMinObserve(b *testing.B) {
	cm := NewCountMin(1024, 5, rng.New(1))
	for i := 0; i < b.N; i++ {
		cm.Observe(stream.Item(i%1000 + 1))
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	cm := NewCountMin(1024, 5, rng.New(1))
	for i := 0; i < 10000; i++ {
		cm.Observe(stream.Item(i%1000 + 1))
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += cm.Estimate(stream.Item(i%1000 + 1))
	}
	_ = sink
}

func TestCountMinDeterministicWithSeed(t *testing.T) {
	build := func() *CountMin {
		cm := NewCountMin(128, 4, rng.New(99))
		for i := 0; i < 1000; i++ {
			cm.Observe(stream.Item(i%50 + 1))
		}
		return cm
	}
	a, b := build(), build()
	for i := stream.Item(1); i <= 50; i++ {
		if a.Estimate(i) != b.Estimate(i) {
			t.Fatalf("same-seed sketches disagree on %d", i)
		}
	}
}

func TestCountMinRelativeAccuracyOnHeavyItems(t *testing.T) {
	// Heavy items should be estimated within a few percent with a
	// reasonably sized sketch.
	s := zipfStream(200000, 10000, 1.3, 10)
	cm := NewCountMin(2048, 5, rng.New(11))
	for _, it := range s {
		cm.Observe(it)
	}
	f := stream.NewFreq(s)
	for _, hh := range f.TopK(5) {
		est := float64(cm.Estimate(hh.Item))
		relErr := math.Abs(est-float64(hh.Freq)) / float64(hh.Freq)
		if relErr > 0.05 {
			t.Fatalf("heavy item %d: rel err %v", hh.Item, relErr)
		}
	}
}
