package sketch

import (
	"math"
	"math/bits"

	"substream/internal/rng"
	"substream/internal/stream"
)

// KMV is the k-minimum-values distinct-count estimator: hash every item
// into the 61-bit field, keep the k smallest distinct hash values, and
// estimate F₀ ≈ (k−1)/v_k where v_k ∈ (0,1] is the normalized k-th
// smallest value. Relative error is O(1/√k) with constant probability;
// Algorithm 2 needs only a (1/2, δ) estimate, which k ≈ 64 already
// exceeds comfortably.
type KMV struct {
	k    int
	h    rng.Hash2
	heap hashMaxHeap         // k smallest hash values, max at root
	seen map[uint64]struct{} // hash values currently in the heap
}

// hashMaxHeap is a max-heap of 61-bit hash values, maintained by the
// typed pushHash/popHash helpers in merge.go. A container/heap interface
// would box every value through interface{}, one allocation per admitted
// item on the distinct-count hot path.
type hashMaxHeap []uint64

func (h hashMaxHeap) Len() int { return len(h) }

// NewKMV returns a KMV estimator retaining k minimum values. It panics if
// k < 2 (the estimator needs at least two values).
func NewKMV(k int, r *rng.Xoshiro256) *KMV {
	if k < 2 {
		panic("sketch: KMV requires k >= 2")
	}
	return &KMV{
		k:    k,
		h:    rng.NewHash2(r),
		seen: make(map[uint64]struct{}, k),
	}
}

// NewKMVWithError returns a KMV sized for relative error ≈ ε with
// constant probability: k = ⌈4/ε²⌉.
func NewKMVWithError(epsilon float64, r *rng.Xoshiro256) *KMV {
	if epsilon <= 0 || epsilon >= 1 {
		panic("sketch: KMV epsilon must be in (0, 1)")
	}
	k := int(math.Ceil(4 / (epsilon * epsilon)))
	if k < 2 {
		k = 2
	}
	return NewKMV(k, r)
}

// Observe feeds one item. Duplicate items hash identically and are
// deduplicated, so only distinct items affect the state.
func (s *KMV) Observe(it stream.Item) {
	s.admitHash(s.h.Hash(uint64(it)))
}

// Estimate returns the distinct-count estimate. With fewer than k
// distinct values observed, the count is exact.
func (s *KMV) Estimate() float64 {
	if s.heap.Len() < s.k {
		return float64(s.heap.Len())
	}
	vk := (float64(s.heap[0]) + 1) / float64(uint64(1)<<61)
	return float64(s.k-1) / vk
}

// K returns the sketch size parameter.
func (s *KMV) K() int { return s.k }

// SpaceBytes returns the approximate memory footprint.
func (s *KMV) SpaceBytes() int { return 24 * s.k }

// HLL is a stochastic-averaging distinct-count estimator in the
// HyperLogLog family: 2^precision registers, each holding the maximum
// leading-zero rank of the hashed items routed to it. It provides
// ≈ 1.04/√(2^precision) relative standard error using one byte per
// register — included as the constant-space alternative backend for
// Algorithm 2 alongside KMV. Small cardinalities fall back to linear
// counting, as in the original paper.
type HLL struct {
	precision uint
	registers []uint8
	seedA     uint64
	seedB     uint64
}

// NewHLL builds an estimator with 2^precision registers, 4 ≤ precision
// ≤ 18.
func NewHLL(precision uint, r *rng.Xoshiro256) *HLL {
	if precision < 4 || precision > 18 {
		panic("sketch: HLL precision must be in [4, 18]")
	}
	return &HLL{
		precision: precision,
		registers: make([]uint8, 1<<precision),
		seedA:     r.Uint64() | 1,
		seedB:     r.Uint64(),
	}
}

// Observe feeds one item.
func (h *HLL) Observe(it stream.Item) {
	x := rng.Mix64(uint64(it)*h.seedA + h.seedB)
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | 1<<(h.precision-1) // sentinel bit bounds the rank
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the distinct-count estimate.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, reg := range h.registers {
		sum += math.Pow(2, -float64(reg))
		if reg == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	// Linear counting for the small range, as in the HLL paper.
	if est <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return est
}

// SpaceBytes returns the approximate memory footprint.
func (h *HLL) SpaceBytes() int { return len(h.registers) + 16 }
