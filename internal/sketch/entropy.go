package sketch

import (
	"math"
	"sort"

	"substream/internal/rng"
	"substream/internal/stream"
)

// EntropyEstimator is a one-pass multiplicative estimator of the
// empirical entropy H = Σ (f_i/n)·lg(n/f_i), in the style of
// Chakrabarti–Cormode–McGregor: each of several independent probes holds
// a uniformly random stream position J (maintained by reservoir sampling)
// together with R, the number of occurrences of a_J from position J to
// the end. The telescoping estimator
//
//	X = R·lg(n/R) − (R−1)·lg(n/(R−1))
//
// satisfies E[X] = H exactly; averaging within groups and taking the
// median across groups concentrates it. Theorem 5 uses this as the
// black-box multiplicative entropy estimator run on the sampled stream.
type EntropyEstimator struct {
	groups   int
	perGroup int
	items    []stream.Item
	counts   []uint64
	n        uint64
	r        *rng.Xoshiro256
}

// NewEntropyEstimator builds an estimator with groups×perGroup probes.
func NewEntropyEstimator(groups, perGroup int, r *rng.Xoshiro256) *EntropyEstimator {
	if groups < 1 || perGroup < 1 {
		panic("sketch: EntropyEstimator groups and perGroup must be >= 1")
	}
	total := groups * perGroup
	return &EntropyEstimator{
		groups:   groups,
		perGroup: perGroup,
		items:    make([]stream.Item, total),
		counts:   make([]uint64, total),
		r:        r,
	}
}

// Observe feeds one item.
func (e *EntropyEstimator) Observe(it stream.Item) {
	e.n++
	for probe := range e.items {
		// Reservoir step: the current position replaces the probe with
		// probability 1/n, giving a uniform position overall.
		if e.r.Uint64n(e.n) == 0 {
			e.items[probe] = it
			e.counts[probe] = 1
		} else if e.items[probe] == it && e.counts[probe] > 0 {
			e.counts[probe]++
		}
	}
}

// Estimate returns the entropy estimate in bits; 0 for an empty stream.
func (e *EntropyEstimator) Estimate() float64 {
	if e.n == 0 {
		return 0
	}
	n := float64(e.n)
	means := make([]float64, e.groups)
	for g := 0; g < e.groups; g++ {
		var sum float64
		for j := 0; j < e.perGroup; j++ {
			r := float64(e.counts[g*e.perGroup+j])
			x := r * math.Log2(n/r)
			if r > 1 {
				x -= (r - 1) * math.Log2(n/(r-1))
			}
			sum += x
		}
		means[g] = sum / float64(e.perGroup)
	}
	sort.Float64s(means)
	mid := e.groups / 2
	var est float64
	if e.groups%2 == 1 {
		est = means[mid]
	} else {
		est = (means[mid-1] + means[mid]) / 2
	}
	if est < 0 {
		return 0
	}
	return est
}

// N returns how many items have been observed.
func (e *EntropyEstimator) N() uint64 { return e.n }

// SpaceBytes returns the approximate memory footprint.
func (e *EntropyEstimator) SpaceBytes() int { return 16 * len(e.items) }
