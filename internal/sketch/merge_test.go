package sketch

import (
	"errors"
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

// splitStreams cuts a stream into `parts` contiguous substreams,
// modelling independent monitors each seeing part of the traffic.
func splitStreams(s stream.Slice, parts int) []stream.Slice {
	out := make([]stream.Slice, parts)
	chunk := len(s) / parts
	for i := 0; i < parts; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if i == parts-1 {
			hi = len(s)
		}
		out[i] = s[lo:hi]
	}
	return out
}

func TestCountMinMergeEqualsSingle(t *testing.T) {
	s := zipfStream(60000, 2000, 1.1, 1)
	whole := NewCountMin(512, 4, rng.New(7))
	for _, it := range s {
		whole.Observe(it)
	}
	parts := splitStreams(s, 3)
	merged := NewCountMin(512, 4, rng.New(7))
	for i := 1; i < 3; i++ {
		part := NewCountMin(512, 4, rng.New(7))
		for _, it := range parts[i] {
			part.Observe(it)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	for _, it := range parts[0] {
		merged.Observe(it)
	}
	if merged.N() != whole.N() {
		t.Fatalf("N %d vs %d", merged.N(), whole.N())
	}
	for it := stream.Item(1); it <= 2000; it++ {
		if merged.Estimate(it) != whole.Estimate(it) {
			t.Fatalf("merged estimate differs for %d", it)
		}
	}
}

func TestCountMinMergeIncompatible(t *testing.T) {
	a := NewCountMin(512, 4, rng.New(1))
	b := NewCountMin(256, 4, rng.New(1))
	if err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("dim mismatch not detected: %v", err)
	}
	c := NewCountMin(512, 4, rng.New(2)) // different seed → different hashes
	if err := a.Merge(c); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("hash mismatch not detected: %v", err)
	}
}

func TestCountSketchMergeEqualsSingle(t *testing.T) {
	s := zipfStream(60000, 2000, 1.1, 2)
	whole := NewCountSketch(512, 5, rng.New(8))
	merged := NewCountSketch(512, 5, rng.New(8))
	half := len(s) / 2
	for _, it := range s {
		whole.Observe(it)
	}
	for _, it := range s[:half] {
		merged.Observe(it)
	}
	other := NewCountSketch(512, 5, rng.New(8))
	for _, it := range s[half:] {
		other.Observe(it)
	}
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	if merged.F2Estimate() != whole.F2Estimate() {
		t.Fatalf("merged F2 %v vs %v", merged.F2Estimate(), whole.F2Estimate())
	}
	for it := stream.Item(1); it <= 100; it++ {
		if merged.Estimate(it) != whole.Estimate(it) {
			t.Fatalf("merged estimate differs for %d", it)
		}
	}
}

func TestCountSketchMergeIncompatible(t *testing.T) {
	a := NewCountSketch(64, 3, rng.New(1))
	b := NewCountSketch(64, 3, rng.New(99))
	if err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("hash mismatch not detected: %v", err)
	}
}

func TestAMSMergeEqualsSingle(t *testing.T) {
	s := zipfStream(30000, 500, 1.0, 3)
	whole := NewAMS(5, 16, rng.New(9))
	merged := NewAMS(5, 16, rng.New(9))
	other := NewAMS(5, 16, rng.New(9))
	half := len(s) / 2
	for _, it := range s {
		whole.Observe(it)
	}
	for _, it := range s[:half] {
		merged.Observe(it)
	}
	for _, it := range s[half:] {
		other.Observe(it)
	}
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	if merged.F2Estimate() != whole.F2Estimate() {
		t.Fatalf("merged AMS F2 differs")
	}
}

func TestKMVMergeEqualsSingle(t *testing.T) {
	s := distinctStream(30000, 1)
	whole := NewKMV(256, rng.New(10))
	merged := NewKMV(256, rng.New(10))
	other := NewKMV(256, rng.New(10))
	half := len(s) / 2
	for _, it := range s {
		whole.Observe(it)
	}
	for _, it := range s[:half] {
		merged.Observe(it)
	}
	for _, it := range s[half:] {
		other.Observe(it)
	}
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	if merged.Estimate() != whole.Estimate() {
		t.Fatalf("merged KMV %v vs single-pass %v", merged.Estimate(), whole.Estimate())
	}
}

func TestKMVMergeOverlappingMonitors(t *testing.T) {
	// Monitors with overlapping item sets: union semantics, not sum.
	a := NewKMV(128, rng.New(11))
	b := NewKMV(128, rng.New(11))
	for i := 1; i <= 5000; i++ {
		a.Observe(stream.Item(i))
	}
	for i := 2501; i <= 7500; i++ {
		b.Observe(stream.Item(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := a.Estimate()
	if math.Abs(got-7500)/7500 > 0.3 {
		t.Fatalf("union estimate %v, want ≈ 7500", got)
	}
}

func TestKMVMergeIncompatible(t *testing.T) {
	a := NewKMV(128, rng.New(1))
	b := NewKMV(64, rng.New(1))
	if err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatal("k mismatch not detected")
	}
	c := NewKMV(128, rng.New(2))
	if err := a.Merge(c); !errors.Is(err, ErrIncompatible) {
		t.Fatal("hash mismatch not detected")
	}
}

func TestHLLMergeEqualsSingle(t *testing.T) {
	whole := NewHLL(10, rng.New(12))
	merged := NewHLL(10, rng.New(12))
	other := NewHLL(10, rng.New(12))
	for i := 1; i <= 20000; i++ {
		whole.Observe(stream.Item(i))
		if i <= 10000 {
			merged.Observe(stream.Item(i))
		} else {
			other.Observe(stream.Item(i))
		}
	}
	if err := merged.Merge(other); err != nil {
		t.Fatal(err)
	}
	if merged.Estimate() != whole.Estimate() {
		t.Fatalf("merged HLL %v vs %v", merged.Estimate(), whole.Estimate())
	}
}

func TestHLLMergeIncompatible(t *testing.T) {
	a := NewHLL(10, rng.New(1))
	b := NewHLL(11, rng.New(1))
	if err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatal("precision mismatch not detected")
	}
	c := NewHLL(10, rng.New(2))
	if err := a.Merge(c); !errors.Is(err, ErrIncompatible) {
		t.Fatal("seed mismatch not detected")
	}
}

func TestMisraGriesMergePreservesGuarantee(t *testing.T) {
	s := zipfStream(80000, 1000, 1.2, 4)
	const k = 64
	parts := splitStreams(s, 4)
	merged := NewMisraGries(k)
	for _, it := range parts[0] {
		merged.Observe(it)
	}
	for i := 1; i < 4; i++ {
		mg := NewMisraGries(k)
		for _, it := range parts[i] {
			mg.Observe(it)
		}
		if err := merged.Merge(mg); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != uint64(len(s)) {
		t.Fatalf("merged N = %d, want %d", merged.N(), len(s))
	}
	if len(merged.Candidates()) > k {
		t.Fatalf("merged summary has %d > k counters", len(merged.Candidates()))
	}
	// Merged guarantee: undercount ≤ N/(k+1) for every item.
	f := stream.NewFreq(s)
	bound := float64(len(s)) / float64(k+1)
	for it, c := range f {
		est := merged.Estimate(it)
		if est > c {
			t.Fatalf("item %d overestimated after merge: %d > %d", it, est, c)
		}
		if float64(c-est) > bound+1e-9 {
			t.Fatalf("item %d undercount %d exceeds merged bound %v", it, c-est, bound)
		}
	}
}

func TestMisraGriesMergeIncompatible(t *testing.T) {
	a := NewMisraGries(10)
	b := NewMisraGries(20)
	if err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatal("k mismatch not detected")
	}
}

func TestQuickselectDesc(t *testing.T) {
	vals := []uint64{5, 1, 9, 3, 7, 7, 2}
	// Descending: 9 7 7 5 3 2 1.
	cases := map[int]uint64{0: 9, 1: 7, 2: 7, 3: 5, 6: 1}
	for rank, want := range cases {
		cp := make([]uint64, len(vals))
		copy(cp, vals)
		if got := quickselectDesc(cp, rank); got != want {
			t.Fatalf("rank %d: got %d, want %d", rank, got, want)
		}
	}
}
