package sketch

import (
	"sort"

	"substream/internal/rng"
	"substream/internal/stream"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch. Point queries
// have additive error ≈ √(F₂/width) per row, driven to failure
// probability δ by taking the median of O(log 1/δ) rows. Unlike CountMin
// it is unbiased, can underestimate, and its per-row second moment also
// yields an F₂ estimate — the property Theorem 7 and the Rusu–Dobra
// baseline rely on.
type CountSketch struct {
	width   int
	depth   int
	table   []int64
	buckets []rng.Hash2 // pairwise-independent bucket choice, flat rows
	signs   []rng.Hash4 // 4-wise-independent signs, flat rows
	rr      rng.Range   // divide-free bucket reduction (fastrange)
	n       uint64
}

// NewCountSketch builds a sketch with the given width and depth.
func NewCountSketch(width, depth int, r *rng.Xoshiro256) *CountSketch {
	if width < 1 || depth < 1 {
		panic("sketch: CountSketch width and depth must be >= 1")
	}
	cs := &CountSketch{
		width:   width,
		depth:   depth,
		table:   make([]int64, width*depth),
		buckets: make([]rng.Hash2, depth),
		signs:   make([]rng.Hash4, depth),
		rr:      rng.NewRange(uint64(width)),
	}
	for i := 0; i < depth; i++ {
		cs.buckets[i] = rng.NewHash2(r)
		cs.signs[i] = rng.NewHash4(r)
	}
	return cs
}

// Add records count occurrences of item (count may model weighted
// updates; negative counts implement deletions in the turnstile model).
func (cs *CountSketch) Add(it stream.Item, count int64) {
	x := rng.Mod61(uint64(it))
	for row := 0; row < cs.depth; row++ {
		col := cs.rr.Bucket(cs.buckets[row].Eval(x))
		sign := int64(cs.signs[row].Eval(x)&1)*2 - 1
		cs.table[uint64(row*cs.width)+col] += sign * count
	}
	if count > 0 {
		cs.n += uint64(count)
	}
}

// Observe records a single occurrence of item.
func (cs *CountSketch) Observe(it stream.Item) { cs.Add(it, 1) }

// Estimate returns the median-of-rows point estimate of item's count.
func (cs *CountSketch) Estimate(it stream.Item) int64 {
	var buf [16]int64
	ests := buf[:0]
	if cs.depth > len(buf) {
		ests = make([]int64, 0, cs.depth)
	}
	x := rng.Mod61(uint64(it))
	for row := 0; row < cs.depth; row++ {
		col := cs.rr.Bucket(cs.buckets[row].Eval(x))
		sign := int64(cs.signs[row].Eval(x)&1)*2 - 1
		ests = append(ests, sign*cs.table[uint64(row*cs.width)+col])
	}
	return medianInt64(ests)
}

// medianInt64 sorts vals in place (insertion sort: the slice is one
// sketch depth long and usually stack-backed) and returns the median.
func medianInt64(vals []int64) int64 {
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// F2Estimate returns the median over rows of the row's sum of squared
// cells — an estimate of F₂ of the observed stream with relative error
// O(1/√width). This is the classic AMS estimate computed from the
// CountSketch table ("fast AMS").
func (cs *CountSketch) F2Estimate() float64 {
	sums := make([]float64, cs.depth)
	for row := 0; row < cs.depth; row++ {
		var s float64
		for col := 0; col < cs.width; col++ {
			v := float64(cs.table[row*cs.width+col])
			s += v * v
		}
		sums[row] = s
	}
	sort.Float64s(sums)
	mid := cs.depth / 2
	if cs.depth%2 == 1 {
		return sums[mid]
	}
	return (sums[mid-1] + sums[mid]) / 2
}

// N returns the total positive count added.
func (cs *CountSketch) N() uint64 { return cs.n }

// Width returns the number of columns per row.
func (cs *CountSketch) Width() int { return cs.width }

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// SpaceBytes returns the approximate memory footprint.
func (cs *CountSketch) SpaceBytes() int {
	return 8*len(cs.table) + 48*cs.depth + 24
}
