package sketch

import (
	"sort"

	"substream/internal/rng"
	"substream/internal/stream"
)

// CountSketch is the Charikar–Chen–Farach-Colton sketch. Point queries
// have additive error ≈ √(F₂/width) per row, driven to failure
// probability δ by taking the median of O(log 1/δ) rows. Unlike CountMin
// it is unbiased, can underestimate, and its per-row second moment also
// yields an F₂ estimate — the property Theorem 7 and the Rusu–Dobra
// baseline rely on.
type CountSketch struct {
	width   int
	depth   int
	table   []int64
	buckets []*rng.PolyHash // pairwise-independent bucket choice
	signs   []*rng.PolyHash // 4-wise-independent signs
	n       uint64
}

// NewCountSketch builds a sketch with the given width and depth.
func NewCountSketch(width, depth int, r *rng.Xoshiro256) *CountSketch {
	if width < 1 || depth < 1 {
		panic("sketch: CountSketch width and depth must be >= 1")
	}
	cs := &CountSketch{
		width:   width,
		depth:   depth,
		table:   make([]int64, width*depth),
		buckets: make([]*rng.PolyHash, depth),
		signs:   make([]*rng.PolyHash, depth),
	}
	for i := 0; i < depth; i++ {
		cs.buckets[i] = rng.NewPolyHash(2, r)
		cs.signs[i] = rng.NewPolyHash(4, r)
	}
	return cs
}

// Add records count occurrences of item (count may model weighted
// updates; negative counts implement deletions in the turnstile model).
func (cs *CountSketch) Add(it stream.Item, count int64) {
	for row := 0; row < cs.depth; row++ {
		col := cs.buckets[row].Bucket(uint64(it), cs.width)
		cs.table[row*cs.width+col] += int64(cs.signs[row].Sign(uint64(it))) * count
	}
	if count > 0 {
		cs.n += uint64(count)
	}
}

// Observe records a single occurrence of item.
func (cs *CountSketch) Observe(it stream.Item) { cs.Add(it, 1) }

// Estimate returns the median-of-rows point estimate of item's count.
func (cs *CountSketch) Estimate(it stream.Item) int64 {
	ests := make([]int64, cs.depth)
	for row := 0; row < cs.depth; row++ {
		col := cs.buckets[row].Bucket(uint64(it), cs.width)
		ests[row] = int64(cs.signs[row].Sign(uint64(it))) * cs.table[row*cs.width+col]
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	mid := cs.depth / 2
	if cs.depth%2 == 1 {
		return ests[mid]
	}
	return (ests[mid-1] + ests[mid]) / 2
}

// F2Estimate returns the median over rows of the row's sum of squared
// cells — an estimate of F₂ of the observed stream with relative error
// O(1/√width). This is the classic AMS estimate computed from the
// CountSketch table ("fast AMS").
func (cs *CountSketch) F2Estimate() float64 {
	sums := make([]float64, cs.depth)
	for row := 0; row < cs.depth; row++ {
		var s float64
		for col := 0; col < cs.width; col++ {
			v := float64(cs.table[row*cs.width+col])
			s += v * v
		}
		sums[row] = s
	}
	sort.Float64s(sums)
	mid := cs.depth / 2
	if cs.depth%2 == 1 {
		return sums[mid]
	}
	return (sums[mid-1] + sums[mid]) / 2
}

// N returns the total positive count added.
func (cs *CountSketch) N() uint64 { return cs.n }

// Width returns the number of columns per row.
func (cs *CountSketch) Width() int { return cs.width }

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// SpaceBytes returns the approximate memory footprint.
func (cs *CountSketch) SpaceBytes() int {
	return 8*len(cs.table) + 48*cs.depth
}
