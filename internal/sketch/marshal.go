package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"substream/internal/rng"
	"substream/internal/stream"
)

// This file implements compact binary serialization for the summaries a
// distributed monitor ships to its collector. Formats are versioned
// little-endian with a per-type tag byte; hash functions are serialized
// as their polynomial coefficients so an unmarshalled sketch is
// bit-identical to — and therefore mergeable with — its source.
//
// The Writer/Reader primitives are exported because the wire format spans
// packages: internal/levelset and internal/core encode their composite
// estimator states with the same primitives and their own tag ranges (see
// internal/server/doc.go for the format rules and the tag registry).

// Type tags for the serialized formats. The sketch package owns the range
// 0x01–0x0f; internal/levelset owns 0x10–0x1f and internal/core owns
// 0x20–0x2f.
const (
	TagCountMin    byte = 0x01
	TagCountSketch byte = 0x02
	TagKMV         byte = 0x03
	TagHLL         byte = 0x04
	TagSpaceSaving byte = 0x05
	TagMisraGries  byte = 0x06
	TagTopK        byte = 0x07
)

// WireVersion is the single version byte every payload carries after its
// tag. Decoders reject any other value, so incompatible format changes
// must bump it. Version 2 marks the switch of CountMin/CountSketch
// bucket mapping from `hash mod width` to the divide-free fastrange
// reduction: the byte layout is unchanged, but version-1 tables placed
// counts at different columns, so merging across the boundary would
// silently corrupt estimates — the bump makes old payloads fail loudly
// instead.
const WireVersion byte = 2

// MaxWireElems bounds every element count read from the wire, keeping
// corrupt input from provoking huge allocations.
const MaxWireElems = 1 << 28

// maxDim bounds single sketch dimensions (width, k, …).
const maxDim = 1 << 24

// PayloadTag returns the type tag of a serialized payload without
// decoding it — the dispatch byte for format-agnostic consumers.
func PayloadTag(data []byte) (byte, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("sketch: empty payload")
	}
	return data[0], nil
}

// Writer accumulates little-endian fields of one payload.
type Writer struct{ buf []byte }

// Header writes the (tag, version) payload prefix.
func (w *Writer) Header(tag byte) { w.U8(tag); w.U8(WireVersion) }

// U8 appends one byte.
func (w *Writer) U8(v byte) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Hash appends a polynomial hash function as its coefficient vector.
func (w *Writer) Hash(h *rng.PolyHash) {
	w.coefficients(h.Coefficients())
}

// Hash2 appends a flat degree-1 kernel in the same coefficient-vector
// wire form as Hash, so the flattened sketches stay byte-compatible with
// payloads written by the boxed representation.
func (w *Writer) Hash2(h rng.Hash2) {
	w.U32(2)
	w.U64(h.B)
	w.U64(h.A)
}

// Hash4 appends a flat degree-3 kernel in the Hash coefficient-vector
// wire form.
func (w *Writer) Hash4(h rng.Hash4) {
	w.U32(4)
	w.U64(h.C0)
	w.U64(h.C1)
	w.U64(h.C2)
	w.U64(h.C3)
}

func (w *Writer) coefficients(coef []uint64) {
	w.U32(uint32(len(coef)))
	for _, c := range coef {
		w.U64(c)
	}
}

// Nested appends a length-prefixed sub-payload, letting composite
// estimators embed their components' serialized forms verbatim.
func (w *Writer) Nested(payload []byte) {
	w.U32(uint32(len(payload)))
	w.buf = append(w.buf, payload...)
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// Reader consumes little-endian fields with bounds checking. All methods
// are safe to call after a failure; they return zero values and the first
// error sticks.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{buf: data} }

// U8 reads one byte.
func (r *Reader) U8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.Fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.Fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.Fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Count reads a uint32 element count and fails if it exceeds max or if
// elemBytes > 0 and the remaining buffer cannot possibly hold that many
// elements — so a corrupt length can never drive a huge allocation.
func (r *Reader) Count(max, elemBytes int) int {
	v := r.U32()
	if r.err == nil && (max < 0 || int64(v) > int64(max)) {
		r.Fail()
		return 0
	}
	if r.err == nil && elemBytes > 0 && int64(v)*int64(elemBytes) > int64(len(r.buf)-r.off) {
		r.Fail()
		return 0
	}
	return int(v)
}

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Hash reads a polynomial hash function.
func (r *Reader) Hash() *rng.PolyHash {
	n := r.U32()
	if r.err != nil || n == 0 || n > 16 {
		r.Fail()
		return nil
	}
	coef := make([]uint64, n)
	for i := range coef {
		coef[i] = r.U64()
		if coef[i] >= uint64(1)<<61-1 {
			r.Fail()
			return nil
		}
	}
	if r.err != nil {
		return nil
	}
	return rng.NewPolyHashFromCoefficients(coef)
}

// Hash2 reads a flat degree-1 kernel: a Hash coefficient vector that must
// carry exactly two in-field coefficients (every encoder of these sites
// has only ever written two).
func (r *Reader) Hash2() rng.Hash2 {
	if n := r.U32(); r.err != nil || n != 2 {
		r.Fail()
		return rng.Hash2{}
	}
	b := r.U64()
	a := r.U64()
	if r.err != nil || a >= uint64(1)<<61-1 || b >= uint64(1)<<61-1 {
		r.Fail()
		return rng.Hash2{}
	}
	return rng.Hash2{A: a, B: b}
}

// Hash4 reads a flat degree-3 kernel: a Hash coefficient vector that must
// carry exactly four in-field coefficients.
func (r *Reader) Hash4() rng.Hash4 {
	if n := r.U32(); r.err != nil || n != 4 {
		r.Fail()
		return rng.Hash4{}
	}
	var coef [4]uint64
	for i := range coef {
		coef[i] = r.U64()
		if r.err != nil || coef[i] >= uint64(1)<<61-1 {
			r.Fail()
			return rng.Hash4{}
		}
	}
	return rng.Hash4{C0: coef[0], C1: coef[1], C2: coef[2], C3: coef[3]}
}

// Nested reads a length-prefixed sub-payload, returning a sub-slice of
// the input (no copy).
func (r *Reader) Nested() []byte {
	n := r.Count(len(r.buf)-r.off, 1)
	if r.err != nil {
		return nil
	}
	sub := r.buf[r.off : r.off+n]
	r.off += n
	return sub
}

// Fail records the generic truncation/corruption error (first error
// sticks).
func (r *Reader) Fail() {
	if r.err == nil {
		r.err = fmt.Errorf("sketch: truncated or corrupt serialized sketch")
	}
}

// Failf records a specific decode error (first error sticks).
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Done reports the first decode error, or complains about unconsumed
// trailing bytes.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("sketch: %d trailing bytes after sketch", len(r.buf)-r.off)
	}
	return nil
}

// Header validates the (tag, version) prefix.
func (r *Reader) Header(tag byte) {
	if got := r.U8(); r.err == nil && got != tag {
		r.Failf("sketch: wrong sketch type %#x (want %#x)", got, tag)
	}
	if got := r.U8(); r.err == nil && got != WireVersion {
		r.Failf("sketch: unsupported version %d", got)
	}
}

// MarshalBinary serializes the sketch.
func (cm *CountMin) MarshalBinary() ([]byte, error) {
	w := &Writer{}
	w.Header(TagCountMin)
	w.U32(uint32(cm.width))
	w.U32(uint32(cm.depth))
	w.U64(cm.n)
	for _, h := range cm.rows {
		w.Hash2(h)
	}
	for _, c := range cm.table {
		w.U64(c)
	}
	return w.Bytes(), nil
}

// UnmarshalCountMin reconstructs a CountMin from MarshalBinary output.
func UnmarshalCountMin(data []byte) (*CountMin, error) {
	r := NewReader(data)
	r.Header(TagCountMin)
	width := int(r.U32())
	depth := int(r.U32())
	n := r.U64()
	if r.err == nil && (width < 1 || depth < 1 || width > maxDim || depth > 64 || width*depth > MaxWireElems ||
		int64(width)*int64(depth)*8 > int64(r.Remaining())) {
		r.Fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	cm := &CountMin{width: width, depth: depth, n: n,
		table: make([]uint64, width*depth), rows: make([]rng.Hash2, depth),
		rr: rng.NewRange(uint64(width))}
	for i := range cm.rows {
		cm.rows[i] = r.Hash2()
	}
	for i := range cm.table {
		cm.table[i] = r.U64()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return cm, nil
}

// MarshalBinary serializes the sketch.
func (cs *CountSketch) MarshalBinary() ([]byte, error) {
	w := &Writer{}
	w.Header(TagCountSketch)
	w.U32(uint32(cs.width))
	w.U32(uint32(cs.depth))
	w.U64(cs.n)
	for _, h := range cs.buckets {
		w.Hash2(h)
	}
	for _, h := range cs.signs {
		w.Hash4(h)
	}
	for _, c := range cs.table {
		w.I64(c)
	}
	return w.Bytes(), nil
}

// UnmarshalCountSketch reconstructs a CountSketch from MarshalBinary
// output.
func UnmarshalCountSketch(data []byte) (*CountSketch, error) {
	r := NewReader(data)
	r.Header(TagCountSketch)
	width := int(r.U32())
	depth := int(r.U32())
	n := r.U64()
	if r.err == nil && (width < 1 || depth < 1 || width > maxDim || depth > 64 || width*depth > MaxWireElems ||
		int64(width)*int64(depth)*8 > int64(r.Remaining())) {
		r.Fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	cs := &CountSketch{width: width, depth: depth, n: n,
		table:   make([]int64, width*depth),
		buckets: make([]rng.Hash2, depth),
		signs:   make([]rng.Hash4, depth),
		rr:      rng.NewRange(uint64(width))}
	for i := range cs.buckets {
		cs.buckets[i] = r.Hash2()
	}
	for i := range cs.signs {
		cs.signs[i] = r.Hash4()
	}
	for i := range cs.table {
		cs.table[i] = r.I64()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return cs, nil
}

// MarshalBinary serializes the sketch.
func (s *KMV) MarshalBinary() ([]byte, error) {
	w := &Writer{}
	w.Header(TagKMV)
	w.U32(uint32(s.k))
	w.Hash2(s.h)
	w.U32(uint32(s.heap.Len()))
	for _, hv := range s.heap {
		w.U64(hv)
	}
	return w.Bytes(), nil
}

// UnmarshalKMV reconstructs a KMV from MarshalBinary output.
func UnmarshalKMV(data []byte) (*KMV, error) {
	r := NewReader(data)
	r.Header(TagKMV)
	k := int(r.U32())
	if r.err == nil && (k < 2 || k > maxDim) {
		r.Fail()
	}
	h := r.Hash2()
	count := r.Count(k, 8)
	if r.err != nil {
		return nil, r.err
	}
	s := &KMV{k: k, h: h, seen: make(map[uint64]struct{}, count)}
	for i := 0; i < count; i++ {
		hv := r.U64()
		if _, dup := s.seen[hv]; dup {
			r.Fail()
			break
		}
		s.seen[hv] = struct{}{}
		pushHash(&s.heap, hv)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// MarshalBinary serializes the sketch.
func (h *HLL) MarshalBinary() ([]byte, error) {
	w := &Writer{}
	w.Header(TagHLL)
	w.U8(byte(h.precision))
	w.U64(h.seedA)
	w.U64(h.seedB)
	w.buf = append(w.buf, h.registers...)
	return w.Bytes(), nil
}

// UnmarshalHLL reconstructs an HLL from MarshalBinary output.
func UnmarshalHLL(data []byte) (*HLL, error) {
	r := NewReader(data)
	r.Header(TagHLL)
	precision := uint(r.U8())
	seedA := r.U64()
	seedB := r.U64()
	if r.err == nil && (precision < 4 || precision > 18) {
		r.Fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	want := 1 << precision
	if len(r.buf)-r.off != want {
		return nil, fmt.Errorf("sketch: HLL register block is %d bytes, want %d", len(r.buf)-r.off, want)
	}
	h := &HLL{precision: precision, seedA: seedA, seedB: seedB,
		registers: make([]uint8, want)}
	copy(h.registers, r.buf[r.off:])
	return h, nil
}

// MarshalBinary serializes the summary. Counters are written in heap
// order, so a round trip is byte-identical state.
func (ss *SpaceSaving) MarshalBinary() ([]byte, error) {
	w := &Writer{}
	w.Header(TagSpaceSaving)
	w.U32(uint32(ss.k))
	w.U64(ss.n)
	w.U32(uint32(len(ss.h)))
	for _, e := range ss.h {
		w.U64(uint64(e.item))
		w.U64(e.count)
		w.U64(e.err)
	}
	return w.Bytes(), nil
}

// UnmarshalSpaceSaving reconstructs a SpaceSaving from MarshalBinary
// output.
func UnmarshalSpaceSaving(data []byte) (*SpaceSaving, error) {
	r := NewReader(data)
	r.Header(TagSpaceSaving)
	k := int(r.U32())
	if r.err == nil && (k < 1 || k > maxDim) {
		r.Fail()
	}
	n := r.U64()
	count := r.Count(k, 24)
	if r.err != nil {
		return nil, r.err
	}
	ss := &SpaceSaving{k: k, n: n, h: make(ssHeap, 0, count),
		index: make(map[stream.Item]int, count)}
	for i := 0; i < count; i++ {
		it := stream.Item(r.U64())
		c := r.U64()
		e := r.U64()
		if r.err != nil {
			return nil, r.err
		}
		// The per-item invariant is f ∈ [count−err, count] with f ≥ 1 for
		// any tracked item; err > count would wrap the certified lower
		// bound, and no counter can exceed the observation count.
		if _, dup := ss.index[it]; dup || c < 1 || e >= c || c > n {
			r.Fail()
			return nil, r.err
		}
		ss.h = append(ss.h, ssEntry{item: it, count: c, err: e})
		ss.index[it] = i
	}
	// Restore the min-heap invariant regardless of serialized order.
	for i := len(ss.h)/2 - 1; i >= 0; i-- {
		ss.down(i)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return ss, nil
}

// MarshalBinary serializes the summary. Counters are written in
// increasing item order, so equal summaries serialize identically.
func (mg *MisraGries) MarshalBinary() ([]byte, error) {
	w := &Writer{}
	w.Header(TagMisraGries)
	w.U32(uint32(mg.k))
	w.U64(mg.n)
	w.U32(uint32(len(mg.counters)))
	for _, it := range SortedKeys(mg.counters) {
		w.U64(uint64(it))
		w.U64(mg.counters[it])
	}
	return w.Bytes(), nil
}

// UnmarshalMisraGries reconstructs a MisraGries from MarshalBinary
// output.
func UnmarshalMisraGries(data []byte) (*MisraGries, error) {
	r := NewReader(data)
	r.Header(TagMisraGries)
	k := int(r.U32())
	if r.err == nil && (k < 1 || k > maxDim) {
		r.Fail()
	}
	n := r.U64()
	count := r.Count(k, 16)
	if r.err != nil {
		return nil, r.err
	}
	mg := &MisraGries{k: k, n: n, counters: make(map[stream.Item]uint64, count)}
	var prev stream.Item
	for i := 0; i < count; i++ {
		it := stream.Item(r.U64())
		c := r.U64()
		if r.err != nil {
			return nil, r.err
		}
		// Strictly increasing items double as the duplicate check.
		if (i > 0 && it <= prev) || c < 1 || c > n {
			r.Fail()
			return nil, r.err
		}
		prev = it
		mg.counters[it] = c
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return mg, nil
}

// MarshalBinary serializes the tracker. Entries are written in heap
// order, so a round trip is byte-identical state.
func (t *TopK) MarshalBinary() ([]byte, error) {
	w := &Writer{}
	w.Header(TagTopK)
	w.U32(uint32(t.k))
	w.U32(uint32(len(t.h)))
	for _, e := range t.h {
		w.U64(uint64(e.item))
		w.F64(e.count)
	}
	return w.Bytes(), nil
}

// UnmarshalTopK reconstructs a TopK from MarshalBinary output.
func UnmarshalTopK(data []byte) (*TopK, error) {
	r := NewReader(data)
	r.Header(TagTopK)
	k := int(r.U32())
	if r.err == nil && (k < 1 || k > maxDim) {
		r.Fail()
	}
	count := r.Count(k, 16)
	if r.err != nil {
		return nil, r.err
	}
	t := &TopK{k: k, h: make(tkHeap, 0, count), index: make(map[stream.Item]int, count)}
	for i := 0; i < count; i++ {
		it := stream.Item(r.U64())
		c := r.F64()
		if r.err != nil {
			return nil, r.err
		}
		// NaN counts would poison every heap comparison.
		if _, dup := t.index[it]; dup || math.IsNaN(c) {
			r.Fail()
			return nil, r.err
		}
		t.h = append(t.h, tkEntry{item: it, count: c})
		t.index[it] = i
	}
	for i := len(t.h)/2 - 1; i >= 0; i-- {
		t.down(i)
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return t, nil
}

// SortedKeys returns the keys of an item-keyed map in increasing order —
// the canonical serialization order for every map-backed summary in the
// wire format (this package, internal/levelset, internal/core).
func SortedKeys[V any](m map[stream.Item]V) []stream.Item {
	items := make([]stream.Item, 0, len(m))
	for it := range m {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	return items
}
