package sketch

import (
	"encoding/binary"
	"fmt"

	"substream/internal/rng"
)

// This file implements compact binary serialization for the summaries a
// distributed monitor ships to its collector: CountMin, CountSketch, KMV
// and HLL (the mergeable set the distributed example uses). Formats are
// versioned little-endian with a per-type magic byte; hash functions are
// serialized as their polynomial coefficients so an unmarshalled sketch
// is bit-identical to — and therefore mergeable with — its source.

// Type tags for the serialized formats.
const (
	tagCountMin    byte = 0x01
	tagCountSketch byte = 0x02
	tagKMV         byte = 0x03
	tagHLL         byte = 0x04
)

const marshalVersion byte = 1

// writer accumulates little-endian fields.
type writer struct{ buf []byte }

func (w *writer) u8(v byte)    { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) hash(h *rng.PolyHash) {
	coef := h.Coefficients()
	w.u32(uint32(len(coef)))
	for _, c := range coef {
		w.u64(c)
	}
}

// reader consumes little-endian fields with bounds checking.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) u8() byte {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) hash() *rng.PolyHash {
	n := r.u32()
	if r.err != nil || n == 0 || n > 16 {
		r.fail()
		return nil
	}
	coef := make([]uint64, n)
	for i := range coef {
		coef[i] = r.u64()
		if coef[i] >= uint64(1)<<61-1 {
			r.fail()
			return nil
		}
	}
	if r.err != nil {
		return nil
	}
	return rng.NewPolyHashFromCoefficients(coef)
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("sketch: truncated or corrupt serialized sketch")
	}
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("sketch: %d trailing bytes after sketch", len(r.buf)-r.off)
	}
	return nil
}

// header validates the (tag, version) prefix.
func (r *reader) header(tag byte) {
	if got := r.u8(); r.err == nil && got != tag {
		r.err = fmt.Errorf("sketch: wrong sketch type %#x (want %#x)", got, tag)
	}
	if got := r.u8(); r.err == nil && got != marshalVersion {
		r.err = fmt.Errorf("sketch: unsupported version %d", got)
	}
}

// sanity limits keep corrupt input from provoking huge allocations.
const (
	maxDim   = 1 << 24
	maxCells = 1 << 28
)

// MarshalBinary serializes the sketch.
func (cm *CountMin) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u8(tagCountMin)
	w.u8(marshalVersion)
	w.u32(uint32(cm.width))
	w.u32(uint32(cm.depth))
	w.u64(cm.n)
	for _, h := range cm.hashes {
		w.hash(h)
	}
	for _, c := range cm.table {
		w.u64(c)
	}
	return w.buf, nil
}

// UnmarshalCountMin reconstructs a CountMin from MarshalBinary output.
func UnmarshalCountMin(data []byte) (*CountMin, error) {
	r := &reader{buf: data}
	r.header(tagCountMin)
	width := int(r.u32())
	depth := int(r.u32())
	n := r.u64()
	if r.err == nil && (width < 1 || depth < 1 || width > maxDim || depth > 64 || width*depth > maxCells) {
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	cm := &CountMin{width: width, depth: depth, n: n,
		table: make([]uint64, width*depth), hashes: make([]*rng.PolyHash, depth)}
	for i := range cm.hashes {
		cm.hashes[i] = r.hash()
	}
	for i := range cm.table {
		cm.table[i] = r.u64()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return cm, nil
}

// MarshalBinary serializes the sketch.
func (cs *CountSketch) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u8(tagCountSketch)
	w.u8(marshalVersion)
	w.u32(uint32(cs.width))
	w.u32(uint32(cs.depth))
	w.u64(cs.n)
	for _, h := range cs.buckets {
		w.hash(h)
	}
	for _, h := range cs.signs {
		w.hash(h)
	}
	for _, c := range cs.table {
		w.i64(c)
	}
	return w.buf, nil
}

// UnmarshalCountSketch reconstructs a CountSketch from MarshalBinary
// output.
func UnmarshalCountSketch(data []byte) (*CountSketch, error) {
	r := &reader{buf: data}
	r.header(tagCountSketch)
	width := int(r.u32())
	depth := int(r.u32())
	n := r.u64()
	if r.err == nil && (width < 1 || depth < 1 || width > maxDim || depth > 64 || width*depth > maxCells) {
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	cs := &CountSketch{width: width, depth: depth, n: n,
		table:   make([]int64, width*depth),
		buckets: make([]*rng.PolyHash, depth),
		signs:   make([]*rng.PolyHash, depth)}
	for i := range cs.buckets {
		cs.buckets[i] = r.hash()
	}
	for i := range cs.signs {
		cs.signs[i] = r.hash()
	}
	for i := range cs.table {
		cs.table[i] = r.i64()
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return cs, nil
}

// MarshalBinary serializes the sketch.
func (s *KMV) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u8(tagKMV)
	w.u8(marshalVersion)
	w.u32(uint32(s.k))
	w.hash(s.h)
	w.u32(uint32(s.heap.Len()))
	for _, hv := range s.heap {
		w.u64(hv)
	}
	return w.buf, nil
}

// UnmarshalKMV reconstructs a KMV from MarshalBinary output.
func UnmarshalKMV(data []byte) (*KMV, error) {
	r := &reader{buf: data}
	r.header(tagKMV)
	k := int(r.u32())
	if r.err == nil && (k < 2 || k > maxDim) {
		r.fail()
	}
	h := r.hash()
	count := int(r.u32())
	if r.err == nil && count > k {
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	s := &KMV{k: k, h: h, seen: make(map[uint64]struct{}, count)}
	for i := 0; i < count; i++ {
		hv := r.u64()
		if _, dup := s.seen[hv]; dup {
			r.fail()
			break
		}
		s.seen[hv] = struct{}{}
		pushHash(&s.heap, hv)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// MarshalBinary serializes the sketch.
func (h *HLL) MarshalBinary() ([]byte, error) {
	w := &writer{}
	w.u8(tagHLL)
	w.u8(marshalVersion)
	w.u8(byte(h.precision))
	w.u64(h.seedA)
	w.u64(h.seedB)
	w.buf = append(w.buf, h.registers...)
	return w.buf, nil
}

// UnmarshalHLL reconstructs an HLL from MarshalBinary output.
func UnmarshalHLL(data []byte) (*HLL, error) {
	r := &reader{buf: data}
	r.header(tagHLL)
	precision := uint(r.u8())
	seedA := r.u64()
	seedB := r.u64()
	if r.err == nil && (precision < 4 || precision > 18) {
		r.fail()
	}
	if r.err != nil {
		return nil, r.err
	}
	want := 1 << precision
	if len(r.buf)-r.off != want {
		return nil, fmt.Errorf("sketch: HLL register block is %d bytes, want %d", len(r.buf)-r.off, want)
	}
	h := &HLL{precision: precision, seedA: seedA, seedB: seedB,
		registers: make([]uint8, want)}
	copy(h.registers, r.buf[r.off:])
	return h, nil
}
