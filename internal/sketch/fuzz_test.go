package sketch

import (
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

// Native fuzz targets for the sketch decoders: arbitrary bytes must be
// rejected cleanly or produce a usable sketch, never panic.

func seedCorpus(f *testing.F) {
	for _, p := range validPayloads() {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
}

// validPayloads returns one well-formed payload per serializable type in
// this package, each carrying a little state.
func validPayloads() [][]byte {
	ssSum := NewSpaceSaving(4)
	mgSum := NewMisraGries(4)
	tkSum := NewTopK(4)
	for i := 0; i < 64; i++ {
		it := stream.Item(i%9 + 1)
		ssSum.Observe(it)
		mgSum.Observe(it)
		tkSum.Update(it, float64(i))
	}
	cm, _ := NewCountMin(8, 2, rng.New(1)).MarshalBinary()
	cs, _ := NewCountSketch(8, 2, rng.New(2)).MarshalBinary()
	kv, _ := NewKMV(4, rng.New(3)).MarshalBinary()
	hl, _ := NewHLL(4, rng.New(4)).MarshalBinary()
	ss, _ := ssSum.MarshalBinary()
	mg, _ := mgSum.MarshalBinary()
	tk, _ := tkSum.MarshalBinary()
	return [][]byte{cm, cs, kv, hl, ss, mg, tk}
}

// decoders is the full decode surface of the package; corruption tests
// run every input through every decoder.
var decoders = map[string]func([]byte) error{
	"CountMin":    func(d []byte) error { _, err := UnmarshalCountMin(d); return err },
	"CountSketch": func(d []byte) error { _, err := UnmarshalCountSketch(d); return err },
	"KMV":         func(d []byte) error { _, err := UnmarshalKMV(d); return err },
	"HLL":         func(d []byte) error { _, err := UnmarshalHLL(d); return err },
	"SpaceSaving": func(d []byte) error { _, err := UnmarshalSpaceSaving(d); return err },
	"MisraGries":  func(d []byte) error { _, err := UnmarshalMisraGries(d); return err },
	"TopK":        func(d []byte) error { _, err := UnmarshalTopK(d); return err },
}

// TestUnmarshalTruncatedAndBitFlipped drives every decoder over every
// strict prefix and every single-bit corruption of every valid payload:
// truncations must be rejected, and no corruption may panic. The same
// harness is replicated for the levelset and core payloads in their own
// packages.
func TestUnmarshalTruncatedAndBitFlipped(t *testing.T) {
	for _, payload := range validPayloads() {
		for name, dec := range decoders {
			for cut := 0; cut < len(payload); cut++ {
				if err := dec(payload[:cut]); err == nil {
					t.Fatalf("%s accepted a %d/%d-byte truncation", name, cut, len(payload))
				}
			}
			for bit := 0; bit < 8*len(payload); bit++ {
				flipped := append([]byte{}, payload...)
				flipped[bit/8] ^= 1 << (bit % 8)
				// A flip may survive decoding (e.g. inside a counter
				// value); the contract is no panic and no decoder crash.
				_ = dec(flipped)
			}
		}
	}
}

func FuzzUnmarshalCountMin(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		cm, err := UnmarshalCountMin(data)
		if err != nil {
			return
		}
		// A decoded sketch must be usable.
		cm.Observe(stream.Item(1))
		_ = cm.Estimate(stream.Item(1))
		if _, err := cm.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}

func FuzzUnmarshalCountSketch(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := UnmarshalCountSketch(data)
		if err != nil {
			return
		}
		cs.Observe(stream.Item(1))
		_ = cs.Estimate(stream.Item(1))
		_ = cs.F2Estimate()
	})
}

func FuzzUnmarshalKMV(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalKMV(data)
		if err != nil {
			return
		}
		s.Observe(stream.Item(1))
		if est := s.Estimate(); est < 0 {
			t.Fatalf("negative estimate %v", est)
		}
	})
}

func FuzzUnmarshalHLL(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHLL(data)
		if err != nil {
			return
		}
		h.Observe(stream.Item(1))
		if est := h.Estimate(); est < 0 {
			t.Fatalf("negative estimate %v", est)
		}
	})
}

func FuzzUnmarshalSpaceSaving(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		ss, err := UnmarshalSpaceSaving(data)
		if err != nil {
			return
		}
		ss.Observe(stream.Item(1))
		_ = ss.Counters()
		if _, err := ss.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}

func FuzzUnmarshalMisraGries(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		mg, err := UnmarshalMisraGries(data)
		if err != nil {
			return
		}
		mg.Observe(stream.Item(1))
		_ = mg.Estimate(stream.Item(1))
		if _, err := mg.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}

func FuzzUnmarshalTopK(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tk, err := UnmarshalTopK(data)
		if err != nil {
			return
		}
		tk.Update(stream.Item(1), 1)
		_ = tk.Items()
		if _, err := tk.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}
