package sketch

import (
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

// Native fuzz targets for the sketch decoders: arbitrary bytes must be
// rejected cleanly or produce a usable sketch, never panic.

func seedCorpus(f *testing.F) {
	cm, _ := NewCountMin(8, 2, rng.New(1)).MarshalBinary()
	cs, _ := NewCountSketch(8, 2, rng.New(2)).MarshalBinary()
	kv, _ := NewKMV(4, rng.New(3)).MarshalBinary()
	hl, _ := NewHLL(4, rng.New(4)).MarshalBinary()
	f.Add(cm)
	f.Add(cs)
	f.Add(kv)
	f.Add(hl)
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
}

func FuzzUnmarshalCountMin(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		cm, err := UnmarshalCountMin(data)
		if err != nil {
			return
		}
		// A decoded sketch must be usable.
		cm.Observe(stream.Item(1))
		_ = cm.Estimate(stream.Item(1))
		if _, err := cm.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}

func FuzzUnmarshalCountSketch(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		cs, err := UnmarshalCountSketch(data)
		if err != nil {
			return
		}
		cs.Observe(stream.Item(1))
		_ = cs.Estimate(stream.Item(1))
		_ = cs.F2Estimate()
	})
}

func FuzzUnmarshalKMV(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalKMV(data)
		if err != nil {
			return
		}
		s.Observe(stream.Item(1))
		if est := s.Estimate(); est < 0 {
			t.Fatalf("negative estimate %v", est)
		}
	})
}

func FuzzUnmarshalHLL(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHLL(data)
		if err != nil {
			return
		}
		h.Observe(stream.Item(1))
		if est := h.Estimate(); est < 0 {
			t.Fatalf("negative estimate %v", est)
		}
	})
}
