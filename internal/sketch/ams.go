package sketch

import (
	"sort"

	"substream/internal/rng"
	"substream/internal/stream"
)

// AMS is the original Alon–Matias–Szegedy "tug-of-war" F₂ sketch:
// groups×perGroup counters z = Σ_i σ(i)·f_i with 4-wise-independent signs
// σ. Each z² is an unbiased F₂ estimate with variance ≤ 2F₂²; averaging
// perGroup copies and taking the median over groups gives an (1+ε, δ)
// estimator for perGroup = O(1/ε²), groups = O(log 1/δ).
type AMS struct {
	groups   int
	perGroup int
	counters []int64
	signs    []rng.Hash4 // flat 4-wise sign kernels, one per counter
}

// NewAMS builds a tug-of-war sketch with the given shape.
func NewAMS(groups, perGroup int, r *rng.Xoshiro256) *AMS {
	if groups < 1 || perGroup < 1 {
		panic("sketch: AMS groups and perGroup must be >= 1")
	}
	total := groups * perGroup
	a := &AMS{
		groups:   groups,
		perGroup: perGroup,
		counters: make([]int64, total),
		signs:    make([]rng.Hash4, total),
	}
	for i := range a.signs {
		a.signs[i] = rng.NewHash4(r)
	}
	return a
}

// Add records count occurrences of item.
func (a *AMS) Add(it stream.Item, count int64) {
	x := rng.Mod61(uint64(it))
	for i := range a.counters {
		sign := int64(a.signs[i].Eval(x)&1)*2 - 1
		a.counters[i] += sign * count
	}
}

// Observe records a single occurrence of item.
func (a *AMS) Observe(it stream.Item) { a.Add(it, 1) }

// F2Estimate returns the median-of-means F₂ estimate.
func (a *AMS) F2Estimate() float64 {
	means := make([]float64, a.groups)
	for g := 0; g < a.groups; g++ {
		var sum float64
		for j := 0; j < a.perGroup; j++ {
			v := float64(a.counters[g*a.perGroup+j])
			sum += v * v
		}
		means[g] = sum / float64(a.perGroup)
	}
	sort.Float64s(means)
	mid := a.groups / 2
	if a.groups%2 == 1 {
		return means[mid]
	}
	return (means[mid-1] + means[mid]) / 2
}

// SpaceBytes returns the approximate memory footprint.
func (a *AMS) SpaceBytes() int {
	return 8*len(a.counters) + 48*len(a.signs)
}
