package sketch

import (
	"sort"

	"substream/internal/stream"
)

// SpaceSaving is the Metwally–Agrawal–El Abbadi frequent-items summary.
// With k counters every item's estimate overestimates its true count by
// at most its recorded per-counter error, and err ≤ N/k globally, so any
// item with f > N/k is guaranteed to be tracked. Unlike Misra–Gries it
// retains per-item error bounds, which lets callers certify
// ("guaranteed") counts — the property the level-set estimator's heavy
// part needs to avoid double counting.
type SpaceSaving struct {
	k     int
	h     ssHeap // min-heap on count
	index map[stream.Item]int
	n     uint64
}

type ssEntry struct {
	item  stream.Item
	count uint64
	err   uint64 // count inherited on admission; true f ∈ [count−err, count]
}

type ssHeap []ssEntry

// NewSpaceSaving returns a summary with k counters. It panics if k < 1.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic("sketch: SpaceSaving requires k >= 1")
	}
	return &SpaceSaving{k: k, index: make(map[stream.Item]int, k)}
}

// Observe feeds one item.
func (ss *SpaceSaving) Observe(it stream.Item) {
	ss.n++
	if pos, ok := ss.index[it]; ok {
		ss.h[pos].count++
		ss.down(pos)
		return
	}
	if len(ss.h) < ss.k {
		ss.h = append(ss.h, ssEntry{item: it, count: 1})
		ss.index[it] = len(ss.h) - 1
		ss.up(len(ss.h) - 1)
		return
	}
	// Replace the minimum counter, inheriting its count as error.
	min := ss.h[0]
	delete(ss.index, min.item)
	ss.h[0] = ssEntry{item: it, count: min.count + 1, err: min.count}
	ss.index[it] = 0
	ss.down(0)
}

// up restores the heap invariant toward the root from i and returns the
// entry's final position (see down).
func (ss *SpaceSaving) up(i int) int {
	for i > 0 {
		parent := (i - 1) / 2
		if ss.h[parent].count <= ss.h[i].count {
			break
		}
		ss.swap(i, parent)
		i = parent
	}
	return i
}

// down restores the heap invariant from i and returns the entry's final
// position, so batched runs of one item can sift repeatedly without
// re-querying the index map.
func (ss *SpaceSaving) down(i int) int {
	n := len(ss.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && ss.h[l].count < ss.h[smallest].count {
			smallest = l
		}
		if r < n && ss.h[r].count < ss.h[smallest].count {
			smallest = r
		}
		if smallest == i {
			return i
		}
		ss.swap(i, smallest)
		i = smallest
	}
}

func (ss *SpaceSaving) swap(i, j int) {
	ss.h[i], ss.h[j] = ss.h[j], ss.h[i]
	ss.index[ss.h[i].item] = i
	ss.index[ss.h[j].item] = j
}

// Counter reports one tracked item: the true count lies in
// [Count−Err, Count].
type Counter struct {
	Item  stream.Item
	Count uint64
	Err   uint64
}

// Counters returns all tracked items sorted by decreasing count.
func (ss *SpaceSaving) Counters() []Counter {
	out := make([]Counter, 0, len(ss.h))
	for _, e := range ss.h {
		out = append(out, Counter{Item: e.item, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// Estimate returns the (over-)estimate for item, 0 if untracked.
func (ss *SpaceSaving) Estimate(it stream.Item) uint64 {
	if pos, ok := ss.index[it]; ok {
		return ss.h[pos].count
	}
	return 0
}

// Tracked reports whether the item currently holds a counter.
func (ss *SpaceSaving) Tracked(it stream.Item) bool {
	_, ok := ss.index[it]
	return ok
}

// N returns how many items have been observed.
func (ss *SpaceSaving) N() uint64 { return ss.n }

// K returns the number of counters.
func (ss *SpaceSaving) K() int { return ss.k }

// SpaceBytes returns the approximate memory footprint.
func (ss *SpaceSaving) SpaceBytes() int { return 48 * ss.k }
