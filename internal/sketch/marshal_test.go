package sketch

import (
	"testing"
	"testing/quick"

	"substream/internal/rng"
	"substream/internal/stream"
)

func TestCountMinMarshalRoundTrip(t *testing.T) {
	cm := NewCountMin(256, 4, rng.New(1))
	s := zipfStream(20000, 500, 1.1, 2)
	for _, it := range s {
		cm.Observe(it)
	}
	data, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCountMin(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != cm.N() || back.Width() != cm.Width() || back.Depth() != cm.Depth() {
		t.Fatal("metadata lost in round trip")
	}
	for it := stream.Item(1); it <= 500; it++ {
		if back.Estimate(it) != cm.Estimate(it) {
			t.Fatalf("estimate differs for %d", it)
		}
	}
	// The reconstructed sketch must merge with the original family.
	other := NewCountMin(256, 4, rng.New(1))
	other.Observe(7)
	if err := back.Merge(other); err != nil {
		t.Fatalf("round-tripped sketch not mergeable: %v", err)
	}
}

func TestCountSketchMarshalRoundTrip(t *testing.T) {
	cs := NewCountSketch(128, 5, rng.New(3))
	s := zipfStream(20000, 300, 1.0, 4)
	for _, it := range s {
		cs.Observe(it)
	}
	cs.Add(9, -50) // negative cells must survive
	data, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCountSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.F2Estimate() != cs.F2Estimate() {
		t.Fatal("F2 estimate differs after round trip")
	}
	for it := stream.Item(1); it <= 300; it++ {
		if back.Estimate(it) != cs.Estimate(it) {
			t.Fatalf("estimate differs for %d", it)
		}
	}
}

func TestKMVMarshalRoundTrip(t *testing.T) {
	kmv := NewKMV(128, rng.New(5))
	for i := 1; i <= 10000; i++ {
		kmv.Observe(stream.Item(i))
	}
	data, err := kmv.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalKMV(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != kmv.Estimate() {
		t.Fatalf("estimate differs: %v vs %v", back.Estimate(), kmv.Estimate())
	}
	// Continue observing on the reconstructed sketch: dedup state intact.
	before := back.Estimate()
	for i := 1; i <= 10000; i++ {
		back.Observe(stream.Item(i)) // all duplicates
	}
	if back.Estimate() != before {
		t.Fatal("duplicates changed reconstructed KMV (seen-set lost)")
	}
	// And merge with a sibling from the same seed.
	sib := NewKMV(128, rng.New(5))
	for i := 10001; i <= 15000; i++ {
		sib.Observe(stream.Item(i))
	}
	if err := back.Merge(sib); err != nil {
		t.Fatalf("round-tripped KMV not mergeable: %v", err)
	}
}

func TestKMVMarshalBelowK(t *testing.T) {
	kmv := NewKMV(64, rng.New(6))
	kmv.Observe(1)
	kmv.Observe(2)
	data, _ := kmv.MarshalBinary()
	back, err := UnmarshalKMV(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != 2 {
		t.Fatalf("below-k estimate %v, want 2", back.Estimate())
	}
}

func TestHLLMarshalRoundTrip(t *testing.T) {
	h := NewHLL(10, rng.New(7))
	for i := 1; i <= 50000; i++ {
		h.Observe(stream.Item(i))
	}
	data, err := h.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalHLL(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != h.Estimate() {
		t.Fatal("HLL estimate differs after round trip")
	}
	if err := back.Merge(h); err != nil {
		t.Fatalf("round-tripped HLL not mergeable: %v", err)
	}
}

func TestSpaceSavingMarshalRoundTrip(t *testing.T) {
	ss := NewSpaceSaving(64)
	s := zipfStream(30000, 2000, 1.1, 11)
	for _, it := range s {
		ss.Observe(it)
	}
	data, err := ss.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSpaceSaving(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ss.N() || back.K() != ss.K() {
		t.Fatal("metadata lost in round trip")
	}
	want, got := ss.Counters(), back.Counters()
	if len(want) != len(got) {
		t.Fatalf("counter count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("counter %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	// The reconstructed summary keeps working: observe and merge.
	back.Observe(1)
	sib := NewSpaceSaving(64)
	sib.Observe(9)
	if err := back.Merge(sib); err != nil {
		t.Fatalf("round-tripped SpaceSaving not mergeable: %v", err)
	}
}

func TestMisraGriesMarshalRoundTrip(t *testing.T) {
	mg := NewMisraGries(48)
	s := zipfStream(30000, 2000, 1.1, 12)
	for _, it := range s {
		mg.Observe(it)
	}
	data, err := mg.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMisraGries(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != mg.N() {
		t.Fatal("N lost in round trip")
	}
	if len(back.Candidates()) != len(mg.Candidates()) {
		t.Fatal("candidate count differs")
	}
	for it, c := range mg.Candidates() {
		if back.Estimate(it) != c {
			t.Fatalf("estimate differs for %d", it)
		}
	}
	sib := NewMisraGries(48)
	sib.Observe(3)
	if err := back.Merge(sib); err != nil {
		t.Fatalf("round-tripped MisraGries not mergeable: %v", err)
	}
}

func TestTopKMarshalRoundTrip(t *testing.T) {
	tk := NewTopK(16)
	for i := 1; i <= 200; i++ {
		tk.Update(stream.Item(i), float64(i%37)*1.5)
	}
	data, err := tk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTopK(data)
	if err != nil {
		t.Fatal(err)
	}
	want, got := tk.Items(), back.Items()
	if len(want) != len(got) {
		t.Fatalf("entry count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if back.Min() != tk.Min() {
		t.Fatal("heap minimum differs after round trip")
	}
	// The rebuilt heap must keep accepting updates.
	back.Update(999, 1e9)
	if !back.Contains(999) {
		t.Fatal("update after round trip lost")
	}
}

func TestUnmarshalSpaceSavingRejectsBrokenInvariants(t *testing.T) {
	ss := NewSpaceSaving(4)
	for i := 0; i < 100; i++ {
		ss.Observe(stream.Item(i % 7))
	}
	data, _ := ss.MarshalBinary()

	// err >= count wraps the certified lower bound count−err.
	bad := append([]byte{}, data...)
	// Layout: tag(1) version(1) k(4) n(8) count(4) then entries of
	// (item 8, count 8, err 8): corrupt the first entry's err to max.
	off := 1 + 1 + 4 + 8 + 4 + 8 + 8
	for i := 0; i < 8; i++ {
		bad[off+i] = 0xff
	}
	if _, err := UnmarshalSpaceSaving(bad); err == nil {
		t.Fatal("err > count accepted")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cm := NewCountMin(16, 2, rng.New(8))
	data, _ := cm.MarshalBinary()

	cases := map[string][]byte{
		"empty":       {},
		"wrong tag":   append([]byte{0x7f}, data[1:]...),
		"bad version": append([]byte{data[0], 99}, data[2:]...),
		"truncated":   data[:len(data)-3],
		"trailing":    append(append([]byte{}, data...), 0xff),
	}
	for name, d := range cases {
		if _, err := UnmarshalCountMin(d); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	// Cross-type confusion.
	kmvData, _ := NewKMV(8, rng.New(9)).MarshalBinary()
	if _, err := UnmarshalCountMin(kmvData); err == nil {
		t.Fatal("KMV bytes accepted as CountMin")
	}
	if _, err := UnmarshalHLL(data); err == nil {
		t.Fatal("CountMin bytes accepted as HLL")
	}
}

func TestUnmarshalFuzzNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// All four decoders must reject or accept, never panic.
		_, _ = UnmarshalCountMin(data)
		_, _ = UnmarshalCountSketch(data)
		_, _ = UnmarshalKMV(data)
		_, _ = UnmarshalHLL(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	// Random streams: round-tripped CountMin answers identically.
	f := func(seed uint64, items []uint16) bool {
		cm := NewCountMin(64, 3, rng.New(seed))
		for _, v := range items {
			cm.Observe(stream.Item(v) + 1)
		}
		data, err := cm.MarshalBinary()
		if err != nil {
			return false
		}
		back, err := UnmarshalCountMin(data)
		if err != nil {
			return false
		}
		for _, v := range items {
			if back.Estimate(stream.Item(v)+1) != cm.Estimate(stream.Item(v)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
