package sketch

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func TestEntropyEstimatorUniform(t *testing.T) {
	// 64 items, uniform: H = 6 bits.
	var s stream.Slice
	for rep := 0; rep < 200; rep++ {
		for i := 1; i <= 64; i++ {
			s = append(s, stream.Item(i))
		}
	}
	e := NewEntropyEstimator(9, 200, rng.New(1))
	for _, it := range s {
		e.Observe(it)
	}
	got := e.Estimate()
	if math.Abs(got-6) > 0.5 {
		t.Fatalf("uniform entropy estimate %v, want ≈ 6", got)
	}
}

func TestEntropyEstimatorConstantStream(t *testing.T) {
	e := NewEntropyEstimator(3, 50, rng.New(2))
	for i := 0; i < 10000; i++ {
		e.Observe(7)
	}
	if got := e.Estimate(); got > 0.01 {
		t.Fatalf("constant-stream entropy %v, want ≈ 0", got)
	}
}

func TestEntropyEstimatorEmpty(t *testing.T) {
	e := NewEntropyEstimator(3, 10, rng.New(3))
	if got := e.Estimate(); got != 0 {
		t.Fatalf("empty estimate %v", got)
	}
}

func TestEntropyEstimatorUnbiased(t *testing.T) {
	// E[X] = H exactly; verify the probe-level estimator over many seeds
	// on a skewed stream.
	s := zipfStream(4000, 50, 1.0, 4)
	exact := stream.NewFreq(s).Entropy()
	const trials = 400
	var sum float64
	r := rng.New(5)
	for tr := 0; tr < trials; tr++ {
		e := NewEntropyEstimator(1, 16, r.Split())
		for _, it := range s {
			e.Observe(it)
		}
		sum += e.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.1 {
		t.Fatalf("entropy estimator mean %v, exact %v", mean, exact)
	}
}

func TestEntropyEstimatorSkewed(t *testing.T) {
	s := zipfStream(60000, 1000, 1.2, 6)
	exact := stream.NewFreq(s).Entropy()
	e := NewEntropyEstimator(9, 300, rng.New(7))
	for _, it := range s {
		e.Observe(it)
	}
	got := e.Estimate()
	if math.Abs(got-exact)/exact > 0.2 {
		t.Fatalf("skewed entropy estimate %v, exact %v", got, exact)
	}
}

func TestEntropyEstimatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEntropyEstimator(0,1) did not panic")
		}
	}()
	NewEntropyEstimator(0, 1, rng.New(1))
}

func TestEntropyEstimatorSpaceConstant(t *testing.T) {
	e := NewEntropyEstimator(5, 100, rng.New(8))
	before := e.SpaceBytes()
	for i := 0; i < 100000; i++ {
		e.Observe(stream.Item(i%997 + 1))
	}
	if e.SpaceBytes() != before {
		t.Fatalf("entropy estimator space grew: %d → %d", before, e.SpaceBytes())
	}
	if e.N() != 100000 {
		t.Fatalf("N = %d", e.N())
	}
}

func BenchmarkEntropyObserve(b *testing.B) {
	e := NewEntropyEstimator(5, 100, rng.New(1))
	for i := 0; i < b.N; i++ {
		e.Observe(stream.Item(i%1000 + 1))
	}
}
