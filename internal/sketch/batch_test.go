package sketch

import (
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
	"substream/internal/workload"
)

// zipfItems materializes a skewed test stream.
func zipfItems(n int, seed uint64) stream.Slice {
	return stream.Collect(workload.Zipf(n, 1024, 1.2, seed).Stream)
}

// TestUpdateBatchMatchesObserve checks bit-exact equivalence of the
// batched and per-item paths for the deterministic, order-insensitive
// sketches (their state is a pure function of the observed multiset).
func TestUpdateBatchMatchesObserve(t *testing.T) {
	items := zipfItems(20_000, 1)

	t.Run("countmin", func(t *testing.T) {
		a := NewCountMin(512, 4, rng.New(2))
		b := NewCountMin(512, 4, rng.New(2))
		for _, it := range items {
			a.Observe(it)
		}
		b.UpdateBatch(items)
		for _, probe := range []stream.Item{1, 2, 3, 500, 900} {
			if a.Estimate(probe) != b.Estimate(probe) {
				t.Fatalf("CountMin estimates diverge for %d", probe)
			}
		}
		if a.N() != b.N() {
			t.Fatalf("N %d vs %d", a.N(), b.N())
		}
	})

	t.Run("countsketch", func(t *testing.T) {
		a := NewCountSketch(512, 5, rng.New(3))
		b := NewCountSketch(512, 5, rng.New(3))
		for _, it := range items {
			a.Observe(it)
		}
		b.UpdateBatch(items)
		for _, probe := range []stream.Item{1, 2, 3, 500, 900} {
			if a.Estimate(probe) != b.Estimate(probe) {
				t.Fatalf("CountSketch estimates diverge for %d", probe)
			}
		}
		if a.F2Estimate() != b.F2Estimate() {
			t.Fatal("CountSketch F2 estimates diverge")
		}
	})

	t.Run("ams", func(t *testing.T) {
		a := NewAMS(5, 64, rng.New(4))
		b := NewAMS(5, 64, rng.New(4))
		for _, it := range items {
			a.Observe(it)
		}
		b.UpdateBatch(items)
		if a.F2Estimate() != b.F2Estimate() {
			t.Fatal("AMS F2 estimates diverge")
		}
	})

	t.Run("kmv", func(t *testing.T) {
		a := NewKMV(256, rng.New(5))
		b := NewKMV(256, rng.New(5))
		for _, it := range items {
			a.Observe(it)
		}
		b.UpdateBatch(items)
		if a.Estimate() != b.Estimate() {
			t.Fatal("KMV estimates diverge")
		}
	})

	t.Run("spacesaving", func(t *testing.T) {
		a := NewSpaceSaving(64)
		b := NewSpaceSaving(64)
		for _, it := range items {
			a.Observe(it)
		}
		b.UpdateBatch(items)
		ca, cb := a.Counters(), b.Counters()
		if len(ca) != len(cb) {
			t.Fatalf("counter counts %d vs %d", len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("counter %d: %+v vs %+v", i, ca[i], cb[i])
			}
		}
	})
}

// TestSpaceSavingMerge verifies the mergeable-summaries rule: the merged
// summary must (a) keep every item whose true combined count exceeds the
// combined error bound, and (b) keep every per-item interval sound.
func TestSpaceSavingMerge(t *testing.T) {
	const k = 32
	left := zipfItems(30_000, 7)
	right := zipfItems(30_000, 8)

	a, b := NewSpaceSaving(k), NewSpaceSaving(k)
	for _, it := range left {
		a.Observe(it)
	}
	for _, it := range right {
		b.Observe(it)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}

	truth := make(stream.Freq)
	for _, it := range left {
		truth[it]++
	}
	for _, it := range right {
		truth[it]++
	}
	n := truth.F1()
	if got := a.N(); got != n {
		t.Fatalf("merged N %d, want %d", got, n)
	}

	// Guaranteed-tracking property: f > 2N/k must be present (each side
	// contributes error at most N_side/k).
	bound := 2 * n / uint64(k)
	tracked := make(map[stream.Item]Counter)
	for _, c := range a.Counters() {
		tracked[c.Item] = c
	}
	for it, f := range truth {
		if f > bound {
			c, ok := tracked[it]
			if !ok {
				t.Fatalf("item %d (f=%d > %d) lost in merge", it, f, bound)
			}
			if f > c.Count || f < c.Count-c.Err {
				t.Fatalf("item %d: true %d outside [%d, %d]", it, f, c.Count-c.Err, c.Count)
			}
		}
	}

	if err := a.Merge(NewSpaceSaving(k + 1)); err == nil {
		t.Fatal("expected incompatible-k merge to fail")
	}
}

// TestSpaceSavingMergeExactWhenUnderCapacity: with spare capacity on both
// sides the merge must be exact (absence means a true zero).
func TestSpaceSavingMergeExactWhenUnderCapacity(t *testing.T) {
	a, b := NewSpaceSaving(64), NewSpaceSaving(64)
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			a.Observe(stream.Item(i + 1))
			b.Observe(stream.Item(i + 51))
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := uint64(i + 1)
		for _, it := range []stream.Item{stream.Item(i + 1), stream.Item(i + 51)} {
			if got := a.Estimate(it); got != want {
				t.Fatalf("item %d: estimate %d, want exact %d", it, got, want)
			}
		}
	}
	for _, c := range a.Counters() {
		if c.Err != 0 {
			t.Fatalf("item %d carries error %d in an under-capacity merge", c.Item, c.Err)
		}
	}
}
