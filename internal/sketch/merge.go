package sketch

import (
	"errors"
	"fmt"
	"sort"

	"substream/internal/stream"
)

// This file adds distributed merging: several monitors (e.g. line cards
// or routers) each observe an independently Bernoulli-sampled substream
// and a collector combines their summaries. All linear sketches merge
// exactly; the counter-based summaries merge with the standard bounded
// error. Merging requires structurally compatible sketches — same shape
// AND same hash functions, which in this library means "constructed from
// generators at identical state" (the deterministic constructors make
// that trivial: seed both sides identically). Compatibility of the hash
// functions is verified with probe keys rather than trusted.

// ErrIncompatible is returned when two sketches cannot be merged.
var ErrIncompatible = errors.New("sketch: incompatible sketches")

// probeKeys are fixed keys used to verify two sketches share hash
// functions; agreement on all probes makes accidental compatibility
// claims astronomically unlikely.
var probeKeys = [4]uint64{0x9e3779b97f4a7c15, 1, 1 << 40, 0xdeadbeef}

// Merge folds other into cm. Both must have identical dimensions and
// hash functions (same construction seed).
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.width != other.width || cm.depth != other.depth {
		return fmt.Errorf("%w: CountMin dims %dx%d vs %dx%d",
			ErrIncompatible, cm.depth, cm.width, other.depth, other.width)
	}
	for row := 0; row < cm.depth; row++ {
		for _, probe := range probeKeys {
			if cm.rr.Bucket(cm.rows[row].Hash(probe)) != other.rr.Bucket(other.rows[row].Hash(probe)) {
				return fmt.Errorf("%w: CountMin hash functions differ (row %d)", ErrIncompatible, row)
			}
		}
	}
	for i := range cm.table {
		cm.table[i] += other.table[i]
	}
	cm.n += other.n
	return nil
}

// Merge folds other into cs. Both must have identical dimensions, bucket
// hashes, and sign hashes.
func (cs *CountSketch) Merge(other *CountSketch) error {
	if cs.width != other.width || cs.depth != other.depth {
		return fmt.Errorf("%w: CountSketch dims %dx%d vs %dx%d",
			ErrIncompatible, cs.depth, cs.width, other.depth, other.width)
	}
	for row := 0; row < cs.depth; row++ {
		for _, probe := range probeKeys {
			if cs.rr.Bucket(cs.buckets[row].Hash(probe)) != other.rr.Bucket(other.buckets[row].Hash(probe)) ||
				cs.signs[row].Sign(probe) != other.signs[row].Sign(probe) {
				return fmt.Errorf("%w: CountSketch hash functions differ (row %d)", ErrIncompatible, row)
			}
		}
	}
	for i := range cs.table {
		cs.table[i] += other.table[i]
	}
	cs.n += other.n
	return nil
}

// Merge folds other into a. Both must share shape and sign functions.
func (a *AMS) Merge(other *AMS) error {
	if a.groups != other.groups || a.perGroup != other.perGroup {
		return fmt.Errorf("%w: AMS shape %dx%d vs %dx%d",
			ErrIncompatible, a.groups, a.perGroup, other.groups, other.perGroup)
	}
	for i := range a.signs {
		for _, probe := range probeKeys {
			if a.signs[i].Sign(probe) != other.signs[i].Sign(probe) {
				return fmt.Errorf("%w: AMS sign functions differ (counter %d)", ErrIncompatible, i)
			}
		}
	}
	for i := range a.counters {
		a.counters[i] += other.counters[i]
	}
	return nil
}

// Merge folds other into s: the union's k smallest distinct hash values.
// Both sides must share k and the hash function.
func (s *KMV) Merge(other *KMV) error {
	if s.k != other.k {
		return fmt.Errorf("%w: KMV k %d vs %d", ErrIncompatible, s.k, other.k)
	}
	for _, probe := range probeKeys {
		if s.h.Hash(probe) != other.h.Hash(probe) {
			return fmt.Errorf("%w: KMV hash functions differ", ErrIncompatible)
		}
	}
	// Re-observing by hash value keeps the heap/seen invariants; feed
	// each foreign value through the same admission logic.
	for _, hv := range other.heap {
		s.admitHash(hv)
	}
	return nil
}

// admitHash inserts a raw hash value with the same policy as Observe.
func (s *KMV) admitHash(hv uint64) {
	if _, dup := s.seen[hv]; dup {
		return
	}
	if s.heap.Len() < s.k {
		s.seen[hv] = struct{}{}
		pushHash(&s.heap, hv)
		return
	}
	if hv < s.heap[0] {
		evicted := popHash(&s.heap)
		delete(s.seen, evicted)
		s.seen[hv] = struct{}{}
		pushHash(&s.heap, hv)
	}
}

// Merge folds other into h: per-register maximum. Both sides must share
// precision and hash seeds.
func (h *HLL) Merge(other *HLL) error {
	if h.precision != other.precision {
		return fmt.Errorf("%w: HLL precision %d vs %d", ErrIncompatible, h.precision, other.precision)
	}
	if h.seedA != other.seedA || h.seedB != other.seedB {
		return fmt.Errorf("%w: HLL hash seeds differ", ErrIncompatible)
	}
	for i := range h.registers {
		if other.registers[i] > h.registers[i] {
			h.registers[i] = other.registers[i]
		}
	}
	return nil
}

// Merge folds other into mg with the Agarwal et al. merge rule: add
// matching counters, then subtract the (k+1)-th largest count from all
// and drop non-positive ones. The merged summary keeps the combined
// error bound N_total/(k+1).
func (mg *MisraGries) Merge(other *MisraGries) error {
	if mg.k != other.k {
		return fmt.Errorf("%w: MisraGries k %d vs %d", ErrIncompatible, mg.k, other.k)
	}
	for it, c := range other.counters {
		mg.counters[it] += c
	}
	mg.n += other.n
	if len(mg.counters) <= mg.k {
		return nil
	}
	// Find the (k+1)-th largest count.
	counts := make([]uint64, 0, len(mg.counters))
	for _, c := range mg.counters {
		counts = append(counts, c)
	}
	kth := quickselectDesc(counts, mg.k) // value at rank k (0-based): (k+1)-th largest
	for it, c := range mg.counters {
		if c <= kth {
			delete(mg.counters, it)
		} else {
			mg.counters[it] = c - kth
		}
	}
	return nil
}

// Merge folds other into ss with the Agarwal et al. ("Mergeable
// Summaries") rule. For an item tracked on both sides, counts and errors
// add. For an item tracked on one side only, the other side bounds its
// count by that side's minimum counter (0 if the side still has spare
// capacity, in which case absence means a true zero), so the merged entry
// inherits that bound as both count mass and error. The result is trimmed
// back to the k largest counters. Every per-item invariant survives:
// f ∈ [Count−Err, Count], and the global error stays ≤ N_total/k.
func (ss *SpaceSaving) Merge(other *SpaceSaving) error {
	if ss.k != other.k {
		return fmt.Errorf("%w: SpaceSaving k %d vs %d", ErrIncompatible, ss.k, other.k)
	}
	floorOf := func(s *SpaceSaving) uint64 {
		if len(s.h) < s.k {
			return 0 // spare capacity: untracked means never seen
		}
		return s.h[0].count
	}
	floorA, floorB := floorOf(ss), floorOf(other)
	merged := make(map[stream.Item]ssEntry, len(ss.h)+len(other.h))
	for _, e := range ss.h {
		merged[e.item] = e
	}
	for _, e := range other.h {
		if a, ok := merged[e.item]; ok {
			a.count += e.count
			a.err += e.err
			merged[e.item] = a
		} else {
			merged[e.item] = ssEntry{item: e.item, count: e.count + floorA, err: e.err + floorA}
		}
	}
	for _, e := range ss.h {
		if !other.Tracked(e.item) {
			a := merged[e.item]
			a.count += floorB
			a.err += floorB
			merged[e.item] = a
		}
	}
	entries := make([]ssEntry, 0, len(merged))
	for _, e := range merged {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].item < entries[j].item
	})
	if len(entries) > ss.k {
		entries = entries[:ss.k]
	}
	ss.h = ss.h[:0]
	ss.index = make(map[stream.Item]int, ss.k)
	for _, e := range entries {
		ss.h = append(ss.h, e)
		ss.index[e.item] = len(ss.h) - 1
		ss.up(len(ss.h) - 1)
	}
	ss.n += other.n
	return nil
}

// Merge folds other into t: counts of items tracked on both sides add
// (each side saw its own occurrences), and foreign-only entries compete
// for admission at their shipped count. Like the standalone Observe path
// this is approximate — an item evicted on both sides is gone — but it
// keeps the k largest combined counts of what either side retained.
func (t *TopK) Merge(other *TopK) error {
	if t.k != other.k {
		return fmt.Errorf("%w: TopK k %d vs %d", ErrIncompatible, t.k, other.k)
	}
	for _, e := range other.h {
		if pos, ok := t.index[e.item]; ok {
			t.h[pos].count += e.count
			t.fix(pos)
		} else {
			t.Update(e.item, e.count)
		}
	}
	return nil
}

// quickselectDesc returns the value of rank `rank` (0-based) in
// descending order, i.e. rank 0 is the maximum. It partially sorts vals.
func quickselectDesc(vals []uint64, rank int) uint64 {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		pivot := vals[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for vals[i] > pivot {
				i++
			}
			for vals[j] < pivot {
				j--
			}
			if i <= j {
				vals[i], vals[j] = vals[j], vals[i]
				i++
				j--
			}
		}
		if rank <= j {
			hi = j
		} else if rank >= i {
			lo = i
		} else {
			break
		}
	}
	return vals[rank]
}

// pushHash and popHash are tiny non-interface heap helpers shared by
// Observe/Merge paths.
func pushHash(h *hashMaxHeap, v uint64) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] >= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func popHash(h *hashMaxHeap) uint64 {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(*h) && (*h)[l] > (*h)[largest] {
			largest = l
		}
		if r < len(*h) && (*h)[r] > (*h)[largest] {
			largest = r
		}
		if largest == i {
			return top
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}
