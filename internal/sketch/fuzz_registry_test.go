// Registry-level fuzzing lives in an external test package so the full
// standard registry (core pulls levelset and this package) can be linked
// without an import cycle: estimator.Decode must hold the no-panic
// contract across EVERY registered tag, including the composite payloads
// that nest other kinds.
package sketch_test

import (
	"testing"

	"substream/internal/estimator"
	"substream/internal/sketch"
	"substream/internal/stream"

	_ "substream/internal/core"
	_ "substream/internal/quantile"
	_ "substream/internal/sample"
)

// registryCorpus builds one well-formed payload per constructible kind,
// each carrying a little state, plus degenerate seeds.
func registryCorpus(tb testing.TB) [][]byte {
	var corpus [][]byte
	for _, k := range estimator.Kinds() {
		if k.New == nil {
			continue
		}
		// Generous error/heaviness targets keep the summaries small: the
		// sweep below is quadratic-ish in payload size, and the race-
		// enabled CI run pays ~10x per decode.
		e, err := estimator.New(estimator.Spec{
			Stat: k.Name, P: 0.5, K: 2, Epsilon: 0.5, Alpha: 0.3, Budget: 16, Seed: 3,
		})
		if err != nil {
			tb.Fatalf("kind %q: %v", k.Name, err)
		}
		for i := 0; i < 200; i++ {
			e.Observe(stream.Item(i%23 + 1))
		}
		payload, err := e.MarshalBinary()
		if err != nil {
			tb.Fatalf("kind %q: marshal: %v", k.Name, err)
		}
		corpus = append(corpus, payload)
	}
	// Decode-only kinds (topk) have no Spec constructor; seed their tags
	// by hand so the fuzzer explores them too.
	tk := sketch.NewTopK(8)
	for i := 0; i < 20; i++ {
		tk.Update(stream.Item(i+1), float64(i))
	}
	payload, err := tk.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	corpus = append(corpus, payload, []byte{}, []byte{0x20}, []byte{0xff, 0xff, 0xff, 0xff})
	return corpus
}

// FuzzEstimatorDecode feeds arbitrary bytes to the registry's single
// decode entry point — the exact surface a collector exposes to the
// network. Any input must either fail cleanly or produce a usable,
// re-serializable estimator; no tag may panic or over-allocate.
func FuzzEstimatorDecode(f *testing.F) {
	for _, payload := range registryCorpus(f) {
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := estimator.Decode(data)
		if err != nil {
			return
		}
		// A decoded estimator must be usable across the whole contract.
		e.Observe(stream.Item(1))
		e.UpdateBatch([]stream.Item{2, 3, 2})
		_ = e.Estimates()
		_ = estimator.ReportOf(e)
		if e.SpaceBytes() < 0 {
			t.Fatal("negative space estimate")
		}
		if _, err := e.MarshalBinary(); err != nil {
			t.Fatalf("re-marshal of a decoded estimator failed: %v", err)
		}
	})
}

// TestDecodeTruncationsAcrossRegistry replays the per-package truncation
// harness at the registry level: strict prefixes of every kind's payload
// must be rejected by Decode, and byte corruptions must at worst error.
// Cut and corruption points are strided so the sweep stays linear in the
// largest payload (the per-package harnesses cover every offset of the
// small ones exhaustively).
func TestDecodeTruncationsAcrossRegistry(t *testing.T) {
	for _, payload := range registryCorpus(t) {
		if len(payload) == 0 {
			continue
		}
		stride := 1 + len(payload)/128
		for cut := 0; cut < len(payload); cut += stride {
			if _, err := estimator.Decode(payload[:cut]); err == nil {
				t.Fatalf("tag %#x: accepted a %d/%d-byte truncation", payload[0], cut, len(payload))
			}
		}
		for i := 0; i < len(payload); i += stride {
			mutated := append([]byte{}, payload...)
			mutated[i] ^= 0xa5
			// May or may not decode; must not panic.
			if e, err := estimator.Decode(mutated); err == nil {
				e.Observe(stream.Item(1))
			}
		}
	}
}
