package sketch

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func TestCountSketchPointEstimates(t *testing.T) {
	s := zipfStream(100000, 2000, 1.2, 1)
	cs := NewCountSketch(1024, 5, rng.New(2))
	for _, it := range s {
		cs.Observe(it)
	}
	f := stream.NewFreq(s)
	// Additive error bound ≈ 3·sqrt(F2/width) per row; median tightens it.
	bound := 4 * math.Sqrt(f.Fk(2)/1024)
	bad := 0
	for it, c := range f {
		if math.Abs(float64(cs.Estimate(it))-float64(c)) > bound {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(f)); frac > 0.02 {
		t.Fatalf("%.3f of items exceeded CountSketch error bound %v", frac, bound)
	}
}

func TestCountSketchUnbiased(t *testing.T) {
	// Average estimate across independent sketches converges to truth.
	var s stream.Slice
	for i := 0; i < 500; i++ {
		s = append(s, 1)
	}
	for i := 0; i < 5000; i++ {
		s = append(s, stream.Item(i%100+2))
	}
	const trials = 200
	var sum float64
	r := rng.New(3)
	for tr := 0; tr < trials; tr++ {
		cs := NewCountSketch(64, 1, r.Split()) // depth 1: no median, pure mean
		for _, it := range s {
			cs.Observe(it)
		}
		sum += float64(cs.Estimate(1))
	}
	mean := sum / trials
	if math.Abs(mean-500)/500 > 0.1 {
		t.Fatalf("CountSketch mean estimate %v, want ≈ 500", mean)
	}
}

func TestCountSketchDeletions(t *testing.T) {
	cs := NewCountSketch(256, 5, rng.New(4))
	cs.Add(7, 100)
	cs.Add(7, -40)
	got := cs.Estimate(7)
	if got != 60 {
		t.Fatalf("estimate after deletion = %d, want 60", got)
	}
}

func TestCountSketchF2Estimate(t *testing.T) {
	s := zipfStream(100000, 1000, 1.0, 5)
	f := stream.NewFreq(s)
	exact := f.Fk(2)
	cs := NewCountSketch(4096, 7, rng.New(6))
	for _, it := range s {
		cs.Observe(it)
	}
	got := cs.F2Estimate()
	if math.Abs(got-exact)/exact > 0.1 {
		t.Fatalf("F2 estimate %v, exact %v (rel err %v)", got, exact, math.Abs(got-exact)/exact)
	}
}

func TestCountSketchPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewCountSketch(0, 1, rng.New(1)) },
		func() { NewCountSketch(1, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAMSF2Estimate(t *testing.T) {
	s := zipfStream(50000, 500, 1.0, 7)
	exact := stream.NewFreq(s).Fk(2)
	ams := NewAMS(9, 64, rng.New(8))
	for _, it := range s {
		ams.Observe(it)
	}
	got := ams.F2Estimate()
	// Relative error ~ sqrt(2/64) per group mean; median over 9 groups.
	if math.Abs(got-exact)/exact > 0.3 {
		t.Fatalf("AMS F2 %v, exact %v", got, exact)
	}
}

func TestAMSUnbiasedAcrossSeeds(t *testing.T) {
	s := zipfStream(5000, 100, 0.8, 9)
	exact := stream.NewFreq(s).Fk(2)
	const trials = 300
	var sum float64
	r := rng.New(10)
	for tr := 0; tr < trials; tr++ {
		ams := NewAMS(1, 8, r.Split())
		for _, it := range s {
			ams.Observe(it)
		}
		sum += ams.F2Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.15 {
		t.Fatalf("AMS mean across seeds %v, exact %v", mean, exact)
	}
}

func TestAMSWeightedAdd(t *testing.T) {
	// Adding weight w must equal adding the item w times.
	a := NewAMS(3, 16, rng.New(11))
	b := NewAMS(3, 16, rng.New(11))
	a.Add(5, 10)
	for i := 0; i < 10; i++ {
		b.Observe(5)
	}
	if got, want := a.F2Estimate(), b.F2Estimate(); got != want {
		t.Fatalf("weighted add mismatch: %v vs %v", got, want)
	}
}

func TestAMSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAMS(0,1) did not panic")
		}
	}()
	NewAMS(0, 1, rng.New(1))
}

func TestSketchSpaceAccounting(t *testing.T) {
	cs := NewCountSketch(100, 3, rng.New(1))
	if cs.SpaceBytes() < 8*300 {
		t.Fatalf("CountSketch SpaceBytes %d too small", cs.SpaceBytes())
	}
	ams := NewAMS(2, 5, rng.New(1))
	if ams.SpaceBytes() < 8*10 {
		t.Fatalf("AMS SpaceBytes %d too small", ams.SpaceBytes())
	}
}

func BenchmarkCountSketchObserve(b *testing.B) {
	cs := NewCountSketch(1024, 5, rng.New(1))
	for i := 0; i < b.N; i++ {
		cs.Observe(stream.Item(i%1000 + 1))
	}
}

func BenchmarkAMSObserve(b *testing.B) {
	ams := NewAMS(5, 32, rng.New(1))
	for i := 0; i < b.N; i++ {
		ams.Observe(stream.Item(i%1000 + 1))
	}
}
