package sketch

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func distinctStream(d int, repeats int) stream.Slice {
	var s stream.Slice
	for i := 1; i <= d; i++ {
		for j := 0; j < repeats; j++ {
			s = append(s, stream.Item(i))
		}
	}
	return s
}

func TestKMVExactBelowK(t *testing.T) {
	kmv := NewKMV(100, rng.New(1))
	for _, it := range distinctStream(50, 3) {
		kmv.Observe(it)
	}
	if got := kmv.Estimate(); got != 50 {
		t.Fatalf("KMV below-k estimate %v, want exactly 50", got)
	}
}

func TestKMVAccuracy(t *testing.T) {
	const d = 100000
	kmv := NewKMV(1024, rng.New(2))
	for _, it := range distinctStream(d, 1) {
		kmv.Observe(it)
	}
	got := kmv.Estimate()
	relErr := math.Abs(got-d) / d
	// Relative error ~ 1/sqrt(1024) ≈ 3%; allow 5 standard errors.
	if relErr > 0.16 {
		t.Fatalf("KMV estimate %v for %d distinct (rel err %v)", got, d, relErr)
	}
}

func TestKMVDuplicatesIgnored(t *testing.T) {
	a := NewKMV(64, rng.New(3))
	b := NewKMV(64, rng.New(3))
	for _, it := range distinctStream(1000, 1) {
		a.Observe(it)
	}
	for _, it := range distinctStream(1000, 7) {
		b.Observe(it)
	}
	if a.Estimate() != b.Estimate() {
		t.Fatalf("duplicates changed KMV estimate: %v vs %v", a.Estimate(), b.Estimate())
	}
}

func TestKMVUnbiasedAcrossSeeds(t *testing.T) {
	const d, trials = 5000, 300
	s := distinctStream(d, 1)
	var sum float64
	r := rng.New(4)
	for tr := 0; tr < trials; tr++ {
		kmv := NewKMV(256, r.Split())
		for _, it := range s {
			kmv.Observe(it)
		}
		sum += kmv.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-d)/d > 0.02 {
		t.Fatalf("KMV mean across seeds %v, want ≈ %d", mean, d)
	}
}

func TestKMVWithError(t *testing.T) {
	kmv := NewKMVWithError(0.1, rng.New(5))
	if kmv.K() < 400 {
		t.Fatalf("KMV k=%d too small for eps=0.1", kmv.K())
	}
	if kmv.SpaceBytes() <= 0 {
		t.Fatal("SpaceBytes not positive")
	}
}

func TestKMVPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewKMV(1, rng.New(1)) },
		func() { NewKMVWithError(0, rng.New(1)) },
		func() { NewKMVWithError(1, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHLLAccuracyAcrossScales(t *testing.T) {
	for _, d := range []int{100, 10000, 300000} {
		h := NewHLL(12, rng.New(uint64(d)))
		for i := 1; i <= d; i++ {
			h.Observe(stream.Item(i))
		}
		got := h.Estimate()
		relErr := math.Abs(got-float64(d)) / float64(d)
		// 1.04/sqrt(4096) ≈ 1.6%; allow generous 8%.
		if relErr > 0.08 {
			t.Fatalf("HLL estimate %v for %d distinct (rel err %v)", got, d, relErr)
		}
	}
}

func TestHLLDuplicatesIgnored(t *testing.T) {
	a := NewHLL(10, rng.New(6))
	b := NewHLL(10, rng.New(6))
	for _, it := range distinctStream(2000, 1) {
		a.Observe(it)
	}
	for _, it := range distinctStream(2000, 5) {
		b.Observe(it)
	}
	if a.Estimate() != b.Estimate() {
		t.Fatalf("duplicates changed HLL estimate")
	}
}

func TestHLLEmpty(t *testing.T) {
	h := NewHLL(8, rng.New(7))
	if got := h.Estimate(); got != 0 {
		t.Fatalf("empty HLL estimate %v, want 0", got)
	}
}

func TestHLLPanics(t *testing.T) {
	for _, p := range []uint{3, 19} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHLL(%d) did not panic", p)
				}
			}()
			NewHLL(p, rng.New(1))
		}()
	}
}

func TestHLLSpaceSmallerThanKMVAtSameAccuracy(t *testing.T) {
	// Sanity on the space accounting: HLL at ~1.6% error uses far less
	// space than KMV at ~3%.
	h := NewHLL(12, rng.New(8))
	kmv := NewKMV(1024, rng.New(9))
	if h.SpaceBytes() >= kmv.SpaceBytes() {
		t.Fatalf("HLL %dB >= KMV %dB", h.SpaceBytes(), kmv.SpaceBytes())
	}
}

func BenchmarkKMVObserve(b *testing.B) {
	kmv := NewKMV(1024, rng.New(1))
	for i := 0; i < b.N; i++ {
		kmv.Observe(stream.Item(i + 1))
	}
}

func BenchmarkHLLObserve(b *testing.B) {
	h := NewHLL(12, rng.New(1))
	for i := 0; i < b.N; i++ {
		h.Observe(stream.Item(i + 1))
	}
}
