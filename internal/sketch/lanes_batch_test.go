package sketch

import (
	"reflect"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

// TestLaneBatchBitIdenticalToScalar pins the 4-lane batch loops to the
// scalar per-item path at the level of FULL INTERNAL STATE (tables,
// heaps, registers — not just estimates), exhaustively over batch
// lengths 0..33 so every lane remainder (0, 1, 2, 3) and the
// empty/sub-lane cases are exercised, plus a large skewed batch. Any
// divergence in lane order, threshold handling, or the folded Mod61
// reduction shows up as a state mismatch here before it could reach the
// registry-wide equivalence law.
func TestLaneBatchBitIdenticalToScalar(t *testing.T) {
	big := zipfItems(50_000, 99)
	lengths := make([]int, 0, 36)
	for n := 0; n <= 33; n++ {
		lengths = append(lengths, n)
	}
	lengths = append(lengths, 4096, len(big))

	t.Run("countmin", func(t *testing.T) {
		for _, n := range lengths {
			a := NewCountMin(256, 5, rng.New(21))
			b := NewCountMin(256, 5, rng.New(21))
			for _, it := range big[:n] {
				a.Observe(it)
			}
			b.UpdateBatch(big[:n])
			if !reflect.DeepEqual(a.table, b.table) || a.n != b.n {
				t.Fatalf("len %d: CountMin lane state diverges from scalar", n)
			}
		}
	})

	t.Run("countsketch", func(t *testing.T) {
		for _, n := range lengths {
			a := NewCountSketch(256, 5, rng.New(22))
			b := NewCountSketch(256, 5, rng.New(22))
			for _, it := range big[:n] {
				a.Observe(it)
			}
			b.UpdateBatch(big[:n])
			if !reflect.DeepEqual(a.table, b.table) || a.n != b.n {
				t.Fatalf("len %d: CountSketch lane state diverges from scalar", n)
			}
		}
	})

	t.Run("kmv", func(t *testing.T) {
		for _, n := range lengths {
			a := NewKMV(64, rng.New(23))
			b := NewKMV(64, rng.New(23))
			for _, it := range big[:n] {
				a.Observe(it)
			}
			b.UpdateBatch(big[:n])
			if !reflect.DeepEqual(a.heap, b.heap) || !reflect.DeepEqual(a.seen, b.seen) {
				t.Fatalf("len %d: KMV lane state diverges from scalar", n)
			}
		}
	})

	t.Run("hll", func(t *testing.T) {
		for _, n := range lengths {
			a := NewHLL(10, rng.New(24))
			b := NewHLL(10, rng.New(24))
			for _, it := range big[:n] {
				a.Observe(it)
			}
			b.UpdateBatch(big[:n])
			if !reflect.DeepEqual(a.registers, b.registers) {
				t.Fatalf("len %d: HLL lane state diverges from scalar", n)
			}
		}
	})

	// The KMV threshold moves mid-quad when an admission lands inside a
	// lane group; a descending-hash stream forces admissions on every
	// item, so each quad's later lanes see the thresholds the earlier
	// lanes just changed.
	t.Run("kmv-threshold-churn", func(t *testing.T) {
		a := NewKMV(16, rng.New(25))
		b := NewKMV(16, rng.New(25))
		churn := make(stream.Slice, 512)
		for i := range churn {
			churn[i] = stream.Item(i + 1)
		}
		for _, it := range churn {
			a.Observe(it)
		}
		b.UpdateBatch(churn)
		if !reflect.DeepEqual(a.heap, b.heap) || !reflect.DeepEqual(a.seen, b.seen) {
			t.Fatal("KMV lane state diverges from scalar under threshold churn")
		}
	})
}
