package sketch

import (
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func TestMisraGriesGuarantee(t *testing.T) {
	// Undercount is at most N/(k+1) for every item.
	s := zipfStream(100000, 2000, 1.1, 1)
	const k = 100
	mg := NewMisraGries(k)
	for _, it := range s {
		mg.Observe(it)
	}
	f := stream.NewFreq(s)
	bound := mg.ErrorBound()
	for it, c := range f {
		est := mg.Estimate(it)
		if est > c {
			t.Fatalf("item %d: Misra-Gries overestimated %d > %d", it, est, c)
		}
		if float64(c)-float64(est) > bound+1e-9 {
			t.Fatalf("item %d: undercount %d exceeds bound %v", it, c-est, bound)
		}
	}
}

func TestMisraGriesFindsMajority(t *testing.T) {
	// An item with frequency > N/(k+1) must survive.
	var s stream.Slice
	for i := 0; i < 600; i++ {
		s = append(s, 1)
	}
	for i := 0; i < 400; i++ {
		s = append(s, stream.Item(i+2)) // all distinct
	}
	mg := NewMisraGries(9) // bound N/10 = 100 < 600
	for _, it := range s {
		mg.Observe(it)
	}
	if mg.Estimate(1) == 0 {
		t.Fatal("majority item evicted")
	}
	if !containsItem(mg.Candidates(), 1) {
		t.Fatal("majority item not in candidates")
	}
}

func containsItem(m map[stream.Item]uint64, it stream.Item) bool {
	_, ok := m[it]
	return ok
}

func TestMisraGriesCounterCap(t *testing.T) {
	mg := NewMisraGries(5)
	for i := 0; i < 10000; i++ {
		mg.Observe(stream.Item(i%100 + 1))
	}
	if len(mg.Candidates()) > 5 {
		t.Fatalf("tracked %d > k=5 counters", len(mg.Candidates()))
	}
	if mg.N() != 10000 {
		t.Fatalf("N = %d", mg.N())
	}
}

func TestMisraGriesExactWhenFits(t *testing.T) {
	mg := NewMisraGries(10)
	s := stream.Slice{1, 1, 2, 3, 3, 3}
	for _, it := range s {
		mg.Observe(it)
	}
	if mg.Estimate(1) != 2 || mg.Estimate(2) != 1 || mg.Estimate(3) != 3 {
		t.Fatalf("exact counts wrong: %v", mg.Candidates())
	}
}

func TestMisraGriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMisraGries(0) did not panic")
		}
	}()
	NewMisraGries(0)
}

func TestTopKBasic(t *testing.T) {
	tk := NewTopK(3)
	tk.Update(1, 10)
	tk.Update(2, 20)
	tk.Update(3, 5)
	tk.Update(4, 30) // evicts 3
	items := tk.Items()
	if len(items) != 3 {
		t.Fatalf("len = %d", len(items))
	}
	if items[0].Item != 4 || items[1].Item != 2 || items[2].Item != 1 {
		t.Fatalf("order wrong: %+v", items)
	}
	if tk.Contains(3) {
		t.Fatal("evicted item still tracked")
	}
	if tk.Min() != 10 {
		t.Fatalf("Min = %v", tk.Min())
	}
}

func TestTopKUpdateExisting(t *testing.T) {
	tk := NewTopK(2)
	tk.Update(1, 10)
	tk.Update(2, 20)
	tk.Update(1, 50) // revise upward
	items := tk.Items()
	if items[0].Item != 1 || items[0].Count != 50 {
		t.Fatalf("revision lost: %+v", items)
	}
	tk.Update(1, 5) // revise downward below 2's count
	if tk.Items()[0].Item != 2 {
		t.Fatalf("downward revision not applied: %+v", tk.Items())
	}
}

func TestTopKLowCountIgnoredWhenFull(t *testing.T) {
	tk := NewTopK(2)
	tk.Update(1, 100)
	tk.Update(2, 200)
	tk.Update(3, 50)
	if tk.Contains(3) {
		t.Fatal("low-count item admitted")
	}
	if tk.Len() != 2 {
		t.Fatalf("Len = %d", tk.Len())
	}
}

func TestTopKHeapInvariantUnderChurn(t *testing.T) {
	tk := NewTopK(50)
	r := rng.New(9)
	truth := map[stream.Item]float64{}
	for i := 0; i < 20000; i++ {
		it := stream.Item(r.Intn(200) + 1)
		truth[it] += float64(r.Intn(10) + 1)
		tk.Update(it, truth[it])
	}
	// The tracked minimum must be ≥ the 50th-largest truth value among
	// tracked items, and every tracked count must be current.
	for _, e := range tk.Items() {
		if truth[e.Item] != e.Count {
			t.Fatalf("stale count for %d: %v vs %v", e.Item, e.Count, truth[e.Item])
		}
	}
	if tk.Len() != 50 {
		t.Fatalf("Len = %d", tk.Len())
	}
}

func TestTopKEmpty(t *testing.T) {
	tk := NewTopK(4)
	if tk.Min() != 0 || tk.Len() != 0 || len(tk.Items()) != 0 {
		t.Fatal("empty tracker not empty")
	}
}

func TestTopKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) did not panic")
		}
	}()
	NewTopK(0)
}
