package sketch

import (
	"testing"

	"substream/internal/stream"
)

func TestSpaceSavingExactWhenFits(t *testing.T) {
	ss := NewSpaceSaving(10)
	s := stream.Slice{1, 1, 1, 2, 2, 3}
	for _, it := range s {
		ss.Observe(it)
	}
	for it, want := range map[stream.Item]uint64{1: 3, 2: 2, 3: 1} {
		if got := ss.Estimate(it); got != want {
			t.Fatalf("estimate(%d) = %d, want %d", it, got, want)
		}
	}
	for _, c := range ss.Counters() {
		if c.Err != 0 {
			t.Fatalf("error nonzero with ample counters: %+v", c)
		}
	}
}

func TestSpaceSavingBounds(t *testing.T) {
	// For every tracked item: f ≤ count ≤ f + err, and err ≤ N/k.
	s := zipfStream(100000, 5000, 1.1, 1)
	const k = 200
	ss := NewSpaceSaving(k)
	for _, it := range s {
		ss.Observe(it)
	}
	f := stream.NewFreq(s)
	maxErr := ss.N() / uint64(k)
	for _, c := range ss.Counters() {
		truth := f[c.Item]
		if c.Count < truth {
			t.Fatalf("item %d: count %d < true %d", c.Item, c.Count, truth)
		}
		if c.Count-c.Err > truth {
			t.Fatalf("item %d: guaranteed %d > true %d", c.Item, c.Count-c.Err, truth)
		}
		if c.Err > maxErr {
			t.Fatalf("item %d: err %d > N/k = %d", c.Item, c.Err, maxErr)
		}
	}
}

func TestSpaceSavingGuaranteesHeavyItems(t *testing.T) {
	// Every item with f > N/k must be tracked.
	s := zipfStream(50000, 1000, 1.4, 2)
	const k = 100
	ss := NewSpaceSaving(k)
	for _, it := range s {
		ss.Observe(it)
	}
	f := stream.NewFreq(s)
	threshold := ss.N() / uint64(k)
	for it, c := range f {
		if c > threshold && !ss.Tracked(it) {
			t.Fatalf("heavy item %d (f=%d > %d) not tracked", it, c, threshold)
		}
	}
}

func TestSpaceSavingCountersSorted(t *testing.T) {
	ss := NewSpaceSaving(50)
	s := zipfStream(10000, 200, 1.0, 3)
	for _, it := range s {
		ss.Observe(it)
	}
	cs := ss.Counters()
	for i := 1; i < len(cs); i++ {
		if cs[i].Count > cs[i-1].Count {
			t.Fatalf("counters not sorted at %d", i)
		}
	}
}

func TestSpaceSavingUntracked(t *testing.T) {
	ss := NewSpaceSaving(2)
	ss.Observe(1)
	if ss.Estimate(99) != 0 {
		t.Fatal("untracked estimate nonzero")
	}
	if ss.Tracked(99) {
		t.Fatal("untracked reported tracked")
	}
	if ss.K() != 2 || ss.N() != 1 {
		t.Fatalf("K=%d N=%d", ss.K(), ss.N())
	}
}

func TestSpaceSavingCapacity(t *testing.T) {
	ss := NewSpaceSaving(5)
	for i := 0; i < 10000; i++ {
		ss.Observe(stream.Item(i%50 + 1))
	}
	if len(ss.Counters()) > 5 {
		t.Fatalf("tracked %d > 5 counters", len(ss.Counters()))
	}
	if ss.SpaceBytes() != 48*5 {
		t.Fatalf("SpaceBytes = %d", ss.SpaceBytes())
	}
}

func TestSpaceSavingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpaceSaving(0) did not panic")
		}
	}()
	NewSpaceSaving(0)
}

func BenchmarkSpaceSavingObserve(b *testing.B) {
	ss := NewSpaceSaving(1024)
	for i := 0; i < b.N; i++ {
		ss.Observe(stream.Item(i%100000 + 1))
	}
}
