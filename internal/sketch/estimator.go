package sketch

import (
	"math"

	"substream/internal/estimator"
	"substream/internal/rng"
)

// This file plugs the package's serializable sketches into the
// internal/estimator registry: each tag in the 0x01–0x0f range binds its
// name, decoder, and spec-driven constructor here, and nowhere else.
// Registered standalone, a sketch summarizes the stream it actually
// observes (the sampled stream L); the 1/p corrections back to the
// original stream live in internal/core's estimator wrappers. Specs
// arrive with the registry-wide defaults already applied.

func init() {
	estimator.Register(estimator.Kind{
		Tag: TagCountMin, Name: "countmin",
		Doc: "CountMin frequency sketch of the observed stream (width 2/eps, depth ln(1/0.01))",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewCountMinWithError(s.Epsilon, 0.01, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalCountMin),
	})
	estimator.Register(estimator.Kind{
		Tag: TagCountSketch, Name: "countsketch",
		Doc: "CountSketch signed frequency sketch with an F2 estimate (width 2/eps^2, depth 5)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			width := int(math.Ceil(2 / (s.Epsilon * s.Epsilon)))
			return estimator.Adapt(NewCountSketch(width, 5, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalCountSketch),
	})
	estimator.Register(estimator.Kind{
		Tag: TagKMV, Name: "kmv",
		Doc: "k-minimum-values distinct counter (k = 4/eps^2, exact below k)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewKMVWithError(s.Epsilon, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalKMV),
	})
	estimator.Register(estimator.Kind{
		Tag: TagHLL, Name: "hll",
		Doc: "HyperLogLog-family distinct counter (precision from eps, one byte per register)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			// Standard error is 1.04/sqrt(2^precision); size for eps.
			prec := uint(math.Ceil(2 * math.Log2(1.04/s.Epsilon)))
			if prec < 4 {
				prec = 4
			}
			if prec > 18 {
				prec = 18
			}
			return estimator.Adapt(NewHLL(prec, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalHLL),
	})
	estimator.Register(estimator.Kind{
		Tag: TagSpaceSaving, Name: "spacesaving",
		Doc: "SpaceSaving top-Budget counters with certified per-item error bounds",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewSpaceSaving(s.Budget)), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalSpaceSaving),
	})
	estimator.Register(estimator.Kind{
		Tag: TagMisraGries, Name: "misragries",
		Doc: "Misra-Gries Budget-counter frequency summary (error N/(Budget+1))",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewMisraGries(s.Budget)), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalMisraGries),
	})
	// TopK is decode-only: it rides inside heavy-hitter payloads, whose
	// estimators drive Update with sketch-backed scores. Standalone
	// Observe counting cannot admit late heavy items past a full heap,
	// so "topk" is not offered as a stream stat — spacesaving and
	// misragries are the constructible counting summaries.
	estimator.Register(estimator.Kind{
		Tag: TagTopK, Name: "topk",
		Doc:    "top-k candidate tracker (decode-only component of hh1/hh2 payloads)",
		Decode: estimator.DecodeTyped(UnmarshalTopK),
	})
}

// Estimates returns the sketch's named scalars: the observed element
// count (frequency point queries need a key and are not reported here).
func (cm *CountMin) Estimates() map[string]float64 {
	return map[string]float64{"n": float64(cm.n)}
}

// Estimates returns the observed element count and the F2 estimate of
// the observed stream.
func (cs *CountSketch) Estimates() map[string]float64 {
	return map[string]float64{"n": float64(cs.n), "f2": cs.F2Estimate()}
}

// Estimates returns the distinct-count estimate of the observed stream.
func (s *KMV) Estimates() map[string]float64 {
	return map[string]float64{"f0": s.Estimate()}
}

// Estimates returns the distinct-count estimate of the observed stream.
func (h *HLL) Estimates() map[string]float64 {
	return map[string]float64{"f0": h.Estimate()}
}

// Estimates returns the observed element count and how many items the
// summary currently tracks.
func (ss *SpaceSaving) Estimates() map[string]float64 {
	return map[string]float64{"n": float64(ss.n), "tracked": float64(len(ss.h))}
}

// Estimates returns the observed element count and how many counters
// survive.
func (mg *MisraGries) Estimates() map[string]float64 {
	return map[string]float64{"n": float64(mg.n), "tracked": float64(len(mg.counters))}
}

// Estimates returns the tracked-entry count and the smallest tracked
// count (the admission threshold).
func (t *TopK) Estimates() map[string]float64 {
	return map[string]float64{"tracked": float64(len(t.h)), "min_count": t.Min()}
}
