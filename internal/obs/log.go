package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a structured logger from the conventional -log-level
// and -log-format flag values shared by the repo's CLIs. Empty strings
// mean the flag defaults ("info", "text"), so tests that drive a CLI's
// run function with a zero-valued options literal get a working logger
// without setting either field.
func NewLogger(level, format string, w io.Writer) (*slog.Logger, error) {
	if level == "" {
		level = "info"
	}
	if format == "" {
		format = "text"
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug | info | warn | error)", level)
	}
	hopts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, hopts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, hopts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text | json)", format)
	}
}
