package obs

import (
	"sync"
	"time"

	"substream/internal/quantile"
)

// Histogram tracks a latency (or size) distribution in bounded space:
// observations feed a CKMS targeted-quantile summary (internal/quantile,
// the same estimator the daemon serves as registry kind 0x40), so
// p50/p90/p99/p999 are answered from a few hundred retained samples
// (~12 KB) no matter how many observations arrive. It exposes as a
// Prometheus summary: one {quantile="φ"} sample per target plus _sum
// and _count.
//
// A mutex serializes observations; the instrumented paths record once
// per request/flush/fold (never per item), so the lock is uncontended
// relative to the work it measures.
type Histogram struct {
	mu  sync.Mutex
	q   *quantile.Estimator
	sum float64
}

// newHistogram builds a histogram over the package's default targets.
func newHistogram() *Histogram {
	return &Histogram{q: quantile.NewTargeted(quantile.DefaultTargets())}
}

// Observe records one value (seconds, for the daemon's latency
// histograms).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.q.Insert(v)
	h.sum += v
	h.mu.Unlock()
}

// Since records the elapsed time from t0 to now, in seconds — the
// one-liner the instrumented paths use: defer m.X.Since(time.Now()).
func (h *Histogram) Since(t0 time.Time) {
	h.Observe(time.Since(t0).Seconds())
}

// histSample is one rendered quantile of a snapshot.
type histSample struct {
	Quantile float64
	Value    float64
}

// snapshot reads count, sum, and every target's current estimate under
// one lock, so a scrape's samples are mutually consistent.
func (h *Histogram) snapshot() (count uint64, sum float64, qs []histSample) {
	h.mu.Lock()
	defer h.mu.Unlock()
	count = h.q.N()
	sum = h.sum
	for _, t := range h.q.Targets() {
		qs = append(qs, histSample{Quantile: t.Quantile, Value: h.q.Query(t.Quantile)})
	}
	return count, sum, qs
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.q.N()
}

// Quantile returns the current estimate for one target φ.
func (h *Histogram) Quantile(phi float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.q.Query(phi)
}
