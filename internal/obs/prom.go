package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"substream/internal/quantile"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): a # HELP and # TYPE line per
// family, then one sample line per series, label values escaped per the
// format's rules. Families appear in registration order, series within
// a family in label order, so the output is deterministic — the golden
// test relies on that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		writeHeader(bw, f)
		if f.collect != nil {
			f.collect(func(v float64, labels ...Label) {
				writeSample(bw, f.name, labels, v)
			})
			continue
		}
		for _, s := range f.snapshotSeries() {
			if s.h != nil {
				writeHistogram(bw, f.name, s.h)
				continue
			}
			writeSample(bw, f.name, s.labels, s.value())
		}
	}
	return bw.Flush()
}

func writeHeader(w *bufio.Writer, f *family) {
	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteString("\n# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.kind)
	w.WriteByte('\n')
}

func writeSample(w *bufio.Writer, name string, labels []Label, v float64) {
	w.WriteString(name)
	writeLabels(w, labels)
	w.WriteByte(' ')
	w.WriteString(formatValue(v))
	w.WriteByte('\n')
}

// writeHistogram renders a summary-typed family: quantile samples, then
// _sum and _count.
func writeHistogram(w *bufio.Writer, name string, h *Histogram) {
	count, sum, qs := h.snapshot()
	for _, q := range qs {
		writeSample(w, name, []Label{{Key: "quantile", Value: strconv.FormatFloat(q.Quantile, 'g', -1, 64)}}, q.Value)
	}
	writeSample(w, name+"_sum", nil, sum)
	writeSample(w, name+"_count", nil, float64(count))
}

func writeLabels(w *bufio.Writer, labels []Label) {
	if len(labels) == 0 {
		return
	}
	w.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(l.Key)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(l.Value))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a help string: backslash and newline (quotes are
// legal in help text).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// WriteJSON renders the registry as the flat expvar-style JSON panel
// the daemon has always served: {"name": value, ...}. Labeled series
// render as "name{key=\"value\"}" entries, labeled counter families
// additionally surface their sum under the bare name (backward
// compatibility with consumers of the pre-obs panel), and histograms
// render as one nested object with count, sum, and per-target
// quantiles.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := make(map[string]any)
	for _, f := range r.families() {
		if f.collect != nil {
			f.collect(func(v float64, labels ...Label) {
				out[seriesKey(f.name, labels)] = v
			})
			continue
		}
		var sum float64
		for _, s := range f.snapshotSeries() {
			if s.h != nil {
				count, hsum, qs := s.h.snapshot()
				nested := map[string]any{"count": count, "sum": hsum}
				for _, q := range qs {
					nested[quantile.QuantileKey(q.Quantile)] = q.Value
				}
				out[f.name] = nested
				continue
			}
			v := s.value()
			sum += v
			out[seriesKey(f.name, s.labels)] = v
		}
		if f.sumJSON {
			out[f.name] = sum
		}
	}
	// encoding/json sorts map keys, so the panel is deterministic.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// seriesKey renders one series' JSON key: the bare name when unlabeled,
// prometheus-style name{k="v"} otherwise.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}
