package obs

import (
	"math"
	"sync/atomic"
	"unsafe"
)

// numCells is the number of padded cells per counter, a power of two.
// Eight cells cover the daemon's concurrency sweet spot: HTTP handler
// goroutines and pipeline shard workers spread across cells, while a
// counter stays half a kilobyte — cheap enough for per-stream and
// per-cause families.
const numCells = 8

// cell is one cache-line-padded accumulator. The padding keeps two
// cells out of one 64-byte line, so increments from different cores
// never invalidate each other's line.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotone counter striped over padded atomic cells.
// Increments pick a goroutine-affine cell, reads sum all cells; the sum
// is monotone and eventually exact (after writers quiesce), the
// contract a metrics scrape needs.
type Counter struct {
	cells [numCells]cell
}

// cellIndex picks a cell for the calling goroutine: the address of a
// stack variable is goroutine-local (stacks are distinct heap spans),
// so hashing it spreads concurrent goroutines across cells. The index
// is only a placement hint — a goroutine whose stack moves after growth
// simply lands on another cell, and Value sums them all — so the
// uintptr conversion has no aliasing hazard.
func cellIndex() int {
	var marker byte
	h := uint64(uintptr(unsafe.Pointer(&marker)))
	// Fibonacci hash: multiply spreads entropy from the middle address
	// bits (page- and frame-aligned lows are constant) into the top.
	return int((h * 0x9E3779B97F4A7C15) >> (64 - 3)) // log2(numCells) = 3
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	c.cells[cellIndex()].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums every cell.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value (a float64 held in atomic
// bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value loads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
