package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests", "total requests")
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	// Re-registering the same name returns the same instrument.
	if r.Counter("requests", "total requests") != c {
		t.Fatal("re-registration returned a new counter")
	}
}

// TestCounterConcurrentCells hammers one counter from many goroutines
// and checks the cell-summed total is exact — the sharded-cell
// correctness test the CI -race run also validates for data races.
func TestCounterConcurrentCells(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot", "hot-path counter")
	const (
		workers = 16
		perG    = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perG {
		t.Fatalf("lost updates: %d != %d", got, workers*perG)
	}
}

// TestCounterVecConcurrent races child creation against increments on
// existing children.
func TestCounterVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("errors", "errors by cause", "cause")
	causes := []string{"decode", "network", "status", "config"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				v.With(causes[(g+i)%len(causes)]).Inc()
			}
		}(g)
	}
	wg.Wait()
	if v.Total() != 8000 {
		t.Fatalf("vec total = %d, want 8000", v.Total())
	}
	var sum uint64
	for _, cause := range causes {
		sum += v.With(cause).Value()
	}
	if sum != 8000 {
		t.Fatalf("children sum to %d, want 8000", sum)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	g.Set(3.5)
	if g.Value() != 3.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	r.GaugeFunc("uptime", "seconds up", func() float64 { return 7 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "uptime 7\n") {
		t.Fatalf("gauge func missing:\n%s", sb.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency")
	// 1..10000 microseconds: p50 ≈ 5000e-6, p99 ≈ 9900e-6.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	if p50 < 4800e-6 || p50 > 5200e-6 {
		t.Fatalf("p50 = %v, want ≈ 5000e-6", p50)
	}
	if p99 < 9850e-6 || p99 > 9950e-6 {
		t.Fatalf("p99 = %v, want ≈ 9900e-6", p99)
	}
}

// TestGoldenPrometheusFormat pins the exposition format end to end:
// HELP/TYPE lines, deterministic series order, label escaping, summary
// rendering.
func TestGoldenPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ingest_items", "items ingested")
	c.Add(12)
	v := r.CounterVec("ingest_errors", "ingest errors by cause", "cause")
	v.With("decode").Add(2)
	v.With("bad\\quote\"and\nnewline").Inc()
	g := r.Gauge("queue_len", "current queue length")
	g.Set(1.5)
	h := r.Histogram("flush_seconds", "flush latency")
	h.Observe(0.25)
	r.SetFunc("agent_age_seconds", "per-agent staleness", KindGauge, func(emit func(float64, ...Label)) {
		emit(9, Label{Key: "agent", Value: "a1"}, Label{Key: "stream", Value: "flows"})
	})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ingest_items items ingested
# TYPE ingest_items counter
ingest_items 12
# HELP ingest_errors ingest errors by cause
# TYPE ingest_errors counter
ingest_errors{cause="bad\\quote\"and\nnewline"} 1
ingest_errors{cause="decode"} 2
# HELP queue_len current queue length
# TYPE queue_len gauge
queue_len 1.5
# HELP flush_seconds flush latency
# TYPE flush_seconds summary
flush_seconds{quantile="0.5"} 0.25
flush_seconds{quantile="0.9"} 0.25
flush_seconds{quantile="0.99"} 0.25
flush_seconds{quantile="0.999"} 0.25
flush_seconds_sum 0.25
flush_seconds_count 1
# HELP agent_age_seconds per-agent staleness
# TYPE agent_age_seconds gauge
agent_age_seconds{agent="a1",stream="flows"} 9
`
	if sb.String() != want {
		t.Fatalf("golden mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestJSONViewCompat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ingest_items", "items").Add(3)
	v := r.CounterVec("ingest_errors", "errors", "cause")
	v.With("decode").Add(2)
	v.With("network").Add(1)
	r.Histogram("flush_seconds", "flush").Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	if out["ingest_items"] != 3.0 {
		t.Fatalf("ingest_items = %v", out["ingest_items"])
	}
	// The labeled family surfaces both its children and the flat sum.
	if out["ingest_errors"] != 3.0 {
		t.Fatalf("flat family sum = %v, want 3", out["ingest_errors"])
	}
	if out[`ingest_errors{cause="decode"}`] != 2.0 {
		t.Fatalf("labeled child missing: %v", out)
	}
	hist, ok := out["flush_seconds"].(map[string]any)
	if !ok || hist["count"] != 1.0 || hist["p99"] != 0.5 {
		t.Fatalf("histogram view: %v", out["flush_seconds"])
	}
}

func TestTraceRingEvictionAndOrder(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 6; i++ {
		r.Record(Span{TraceID: uint64(i), Stage: "fold", Start: time.Now()})
	}
	if r.Total() != 6 {
		t.Fatalf("total = %d", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans", len(got))
	}
	// Newest first: 6, 5, 4, 3.
	for i, want := range []uint64{6, 5, 4, 3} {
		if got[i].TraceID != want {
			t.Fatalf("span[%d] = %d, want %d (%v)", i, got[i].TraceID, want, got)
		}
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "a counter")
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x", "now a gauge")
}
