// Package obs is the daemon's self-hosted observability layer: typed
// metrics (counters, gauges, histograms) collected into per-instance
// registries and served in Prometheus text format or as a flat JSON
// expvar-style view.
//
// The layer observes the system with the system's own machinery: latency
// histograms are backed by the mergeable CKMS quantile summaries of
// internal/quantile, so p50/p99/p999 of the daemon's internal paths
// (ingest decode, shard feed, agent flush, collector fold) are answered
// from a few-hundred-sample summary instead of a fixed bucket ladder —
// the paper's bounded-space discipline applied to the monitor itself.
//
// Counters are built for the ingest hot path: each counter is a small
// array of cache-line-padded atomic cells indexed by a goroutine-affine
// hash, so concurrent increments from HTTP handler goroutines and
// pipeline shard workers land on different cache lines instead of
// contending on one. Reads sum the cells; they are monotone but not
// linearizable across cells, which is exactly what a scrape needs.
//
// Registries are per-instance (like the expvar.Map panel they replace):
// an agent fleet inside one test binary never collides on process-global
// state.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Metric kinds, in Prometheus TYPE vocabulary. Histograms expose as
// "summary" because they report φ-quantiles, not cumulative buckets.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindSummary = "summary"
)

// Registry is an ordered collection of metric families. All
// registration methods are idempotent on the family name: registering
// the same name twice returns the existing instrument (names are the
// identity, as in Prometheus).
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family is one named metric family: a help string, a kind, and either
// static series (counters, gauges, funcs, histograms) or a collect
// callback generating series at scrape time.
type family struct {
	name string
	help string
	kind string

	mu     sync.RWMutex
	series []*series
	byKey  map[string]*series

	// collect, when non-nil, makes this a dynamic family: every scrape
	// calls it with an emit function and renders whatever it emits —
	// the hook per-agent staleness gauges and pipeline occupancy use.
	collect func(emit func(v float64, labels ...Label))

	// sumJSON emits the family's summed value under the bare family
	// name in the JSON view — how a labeled counter family stays
	// compatible with consumers of the old flat expvar panel.
	sumJSON bool
}

// series is one concrete (labels, value) stream within a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// value reads the series' current scalar (histograms render their own
// multi-sample form and never reach here).
func (s *series) value() float64 {
	switch {
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return s.g.Value()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// lookup returns the named family, creating it with help/kind on first
// use. A kind clash panics: it is a programming error, caught by any
// test that touches the panel.
func (r *Registry) lookup(name, help, kind string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, KindCounter)
	return f.counterSeries(nil)
}

// CounterVec registers a counter family whose series are keyed by one
// label (e.g. ingest errors by cause). The family's sum is also exposed
// under the bare name in the JSON view.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	f := r.lookup(name, help, KindCounter)
	f.sumJSON = true
	return &CounterVec{fam: f, key: labelKey}
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, KindGauge)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.series) == 0 {
		f.series = append(f.series, &series{g: new(Gauge)})
	}
	return f.series[0].g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, KindGauge)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.series = append(f.series, &series{fn: fn})
}

// SetFunc registers a dynamic family: collect runs at every scrape and
// emits however many (value, labels) series currently exist — the shape
// of per-agent staleness gauges, whose label set changes as agents come
// and go.
func (r *Registry) SetFunc(name, help, kind string, collect func(emit func(v float64, labels ...Label))) {
	f := r.lookup(name, help, kind)
	f.collect = collect
}

// Histogram registers (or returns) a CKMS-backed latency histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.lookup(name, help, KindSummary)
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.series) == 0 {
		f.series = append(f.series, &series{h: newHistogram()})
	}
	return f.series[0].h
}

// counterSeries returns the family's series for the given labels,
// creating it on first use.
func (f *family) counterSeries(labels []Label) *Counter {
	key := labelKey(labels)
	f.mu.RLock()
	s, ok := f.byKey[key]
	f.mu.RUnlock()
	if ok {
		return s.c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s.c
	}
	s = &series{labels: labels, c: new(Counter)}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s.c
}

// labelKey renders labels as a canonical map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	out := ""
	for _, l := range labels {
		out += l.Key + "\x00" + l.Value + "\x00"
	}
	return out
}

// CounterVec is a handle on a one-label counter family.
type CounterVec struct {
	fam *family
	key string
}

// With returns the counter for one label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	return v.fam.counterSeries([]Label{{Key: v.key, Value: value}})
}

// Total sums every series of the family — the backward-compatible
// "flat" reading of a cause-labeled error counter.
func (v *CounterVec) Total() uint64 {
	v.fam.mu.RLock()
	defer v.fam.mu.RUnlock()
	var n uint64
	for _, s := range v.fam.series {
		n += s.c.Value()
	}
	return n
}

// snapshotSeries returns the family's static series sorted by label key
// for deterministic exposition.
func (f *family) snapshotSeries() []*series {
	f.mu.RLock()
	out := make([]*series, len(f.series))
	copy(out, f.series)
	f.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool {
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// families returns the registered families in registration order.
func (r *Registry) families() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.fams))
	copy(out, r.fams)
	return out
}

// formatValue renders a sample value the way Prometheus clients do:
// integers without exponent, floats in shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
