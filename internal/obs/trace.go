package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Span is one recorded hop of a summary's flush→fold journey. The agent
// stamps every shipped summary with a TraceID and its flush wall time;
// each side then records its half of the journey:
//
//   - the agent records a "ship" span per shipped summary (snapshot +
//     marshal time, POST round trip, payload bytes);
//   - the collector records a "fold" span per received summary (decode
//     time, trial-fold time, and — when the envelope carries FlushedAt —
//     the end-to-end flush→fold latency).
//
// E2ENs subtracts wall clocks of two processes; on one host (or
// NTP-synced fleet) it is the propagation latency, across unsynced
// hosts it is only as good as the clocks.
type Span struct {
	TraceID uint64 `json:"trace_id"`
	Stage   string `json:"stage"` // "ship" | "fold"
	Stream  string `json:"stream"`
	Agent   string `json:"agent"`
	// Start is when this side began processing (flush start on the
	// agent, request arrival on the collector).
	Start time.Time `json:"start"`
	Bytes int       `json:"bytes,omitempty"`

	SnapshotNs int64 `json:"snapshot_ns,omitempty"` // agent: Sync+merge+marshal
	PostNs     int64 `json:"post_ns,omitempty"`     // agent: upstream POST round trip
	DecodeNs   int64 `json:"decode_ns,omitempty"`   // collector: envelope+payload decode
	FoldNs     int64 `json:"fold_ns,omitempty"`     // collector: trial fold
	E2ENs      int64 `json:"e2e_ns,omitempty"`      // collector: arrival − agent flush stamp

	Err string `json:"err,omitempty"`
}

// TraceRing is a fixed-size ring of the most recent spans, served at
// /debug/tracez. Recording is O(1) and allocation-free after the ring
// fills; memory is bounded by the ring size regardless of traffic.
type TraceRing struct {
	mu    sync.Mutex
	spans []Span
	next  int
	total uint64
}

// DefaultTraceCap is the ring size the daemon uses: enough to hold
// several flush rounds of a sizeable fleet while staying a few hundred
// KB at most.
const DefaultTraceCap = 256

// NewTraceRing builds a ring retaining the last n spans (n <= 0 uses
// DefaultTraceCap).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceCap
	}
	return &TraceRing{spans: make([]Span, 0, n)}
}

// Record appends one span, evicting the oldest when full.
func (r *TraceRing) Record(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, s)
		return
	}
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
	}
}

// Snapshot returns the retained spans, newest first.
func (r *TraceRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.spans))
	// r.next is the oldest retained span once the ring has wrapped.
	for i := 1; i <= len(r.spans); i++ {
		out = append(out, r.spans[(r.next-i+len(r.spans))%len(r.spans)])
	}
	return out
}

// Total returns how many spans were ever recorded (retained or
// evicted).
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ServeHTTP renders the ring as JSON: {"total": N, "spans": [newest
// first]} — the /debug/tracez endpoint.
func (r *TraceRing) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	spans := r.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"total": r.Total(), "spans": spans})
}
