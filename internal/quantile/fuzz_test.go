package quantile

import (
	"testing"
)

// FuzzQuantileDecode is the package-level half of the decode no-panic
// contract (the registry-level half rides FuzzEstimatorDecode in
// internal/sketch): arbitrary bytes must either fail cleanly or produce
// a fully usable, re-serializable summary. The CKMS structural
// validation in Unmarshal — ascending values, positive widths, Σg == n —
// is what keeps a corrupt network payload from poisoning a collector
// fold.
func FuzzQuantileDecode(f *testing.F) {
	for _, n := range []int{0, 1, 511, 3_000} {
		payload, _ := marshaled(f, n, uint64(n)+89)
		f.Add(payload)
	}
	// A merged summary has weighted samples with nonzero Δ everywhere —
	// a different shape from any sequential payload.
	a := NewTargeted(DefaultTargets())
	b := NewTargeted(DefaultTargets())
	for i, v := range paretoValues(4_000, 97) {
		if i%2 == 0 {
			a.Insert(v)
		} else {
			b.Insert(v)
		}
	}
	if err := a.Merge(b); err != nil {
		f.Fatal(err)
	}
	payload, err := a.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add([]byte{})
	f.Add([]byte{TagQuantile})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Unmarshal(data)
		if err != nil {
			return
		}
		// Whatever decoded must hold the full contract.
		n := e.N()
		e.Insert(1)
		e.Insert(2.5)
		if e.N() != n+2 {
			t.Fatalf("N did not advance: %d then %d", n, e.N())
		}
		for _, tg := range e.Targets() {
			_ = e.Query(tg.Quantile)
		}
		if e.SpaceBytes() < 0 {
			t.Fatal("negative space estimate")
		}
		again, err := e.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of a decoded summary failed: %v", err)
		}
		if _, err := Unmarshal(again); err != nil {
			t.Fatalf("re-decode of a re-marshal failed: %v", err)
		}
	})
}
