// Registry-level battery: everything here drives the summary the way
// the rest of the stack does — through estimator.New / estimator.Decode
// and the Estimator interface — so it pins the adapters, the registered
// constructor, and the estimate keys, not just the float64 core.
package quantile_test

import (
	"sort"
	"testing"

	"substream/internal/estimator"
	"substream/internal/quantile"
	"substream/internal/rng"
	"substream/internal/stream"
	"substream/internal/workload"
)

func newQuantile(t testing.TB) estimator.Estimator {
	t.Helper()
	e, err := estimator.New(estimator.Spec{Stat: "quantile"})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// itemRank measures rank error of an estimate against the sorted item
// stream, mirroring the in-package helper but over stream.Item values.
func itemRankError(sorted []float64, got, targetRank float64) float64 {
	n := len(sorted)
	lo := sort.SearchFloat64s(sorted, got)
	hi := sort.Search(n, func(i int) bool { return sorted[i] > got })
	switch {
	case float64(hi) < targetRank:
		return targetRank - float64(hi)
	case float64(lo) > targetRank:
		return float64(lo) - targetRank
	}
	return 0
}

// TestRegistryMergeVsSequential is the headline registry-driven property
// test from the issue: for every shard count in 1..8 and arbitrary
// (seeded) batch split points, folding the shards through the Estimator
// interface answers p50/p90/p99/p999 within 2ε·n ranks of the exact
// stream quantile, while one sequential estimator stays within ε·n.
// CKMS merge is not bit-identical to sequential observation, so unlike
// TestBatchObserveBitEquivalence the assertions here are error bounds,
// never byte comparisons.
func TestRegistryMergeVsSequential(t *testing.T) {
	const n = 60_000
	items := stream.Collect(workload.Zipf(n, 1<<16, 1.1, 23).Stream)
	sorted := make([]float64, n)
	for i, it := range items {
		sorted[i] = float64(it)
	}
	sort.Float64s(sorted)

	seq := newQuantile(t)
	for _, it := range items {
		seq.Observe(it)
	}
	seqEst := seq.Estimates()
	for _, tg := range quantile.DefaultTargets() {
		key := quantile.QuantileKey(tg.Quantile)
		err := itemRankError(sorted, seqEst[key], tg.Quantile*float64(n))
		if bound := tg.Epsilon * float64(n); err > bound {
			t.Errorf("sequential %s: rank error %.0f > ε·n = %.0f", key, err, bound)
		}
	}

	for shards := 1; shards <= 8; shards++ {
		// Arbitrary split points: each shard consumes seeded-random-sized
		// batches via UpdateBatch, interleaved round-robin so batch
		// boundaries land everywhere in the stream.
		r := rng.New(uint64(shards) * 131)
		es := make([]estimator.Estimator, shards)
		for i := range es {
			es[i] = newQuantile(t)
		}
		next := 0
		for off := 0; off < len(items); {
			size := int(r.Uint64()%1500) + 1
			if off+size > len(items) {
				size = len(items) - off
			}
			es[next%shards].UpdateBatch(items[off : off+size])
			next++
			off += size
		}
		acc := newQuantile(t)
		for _, e := range es {
			if err := acc.Merge(e); err != nil {
				t.Fatalf("shards=%d: merge: %v", shards, err)
			}
		}
		est := acc.Estimates()
		if got := est["n"]; got != float64(n) {
			t.Fatalf("shards=%d: merged n = %v, want %d", shards, got, n)
		}
		for _, tg := range quantile.DefaultTargets() {
			key := quantile.QuantileKey(tg.Quantile)
			err := itemRankError(sorted, est[key], tg.Quantile*float64(n))
			if bound := 2 * tg.Epsilon * float64(n); err > bound {
				t.Errorf("shards=%d %s: rank error %.0f > 2ε·n = %.0f", shards, key, err, bound)
			}
		}
	}
}

// TestRegistryEstimateKeys pins the estimate-map surface the collector
// exposes ("p99") and the windowed variant documented in the README
// ("window_p99" after window.Wrap prefixes).
func TestRegistryEstimateKeys(t *testing.T) {
	e := newQuantile(t)
	e.UpdateBatch(stream.Collect(workload.Zipf(4_000, 256, 1.2, 29).Stream))
	est := e.Estimates()
	for _, key := range []string{"n", "p50", "p90", "p99", "p999"} {
		if _, ok := est[key]; !ok {
			t.Errorf("Estimates missing %q (have %v)", key, est)
		}
	}
	if est["n"] != 4_000 {
		t.Errorf("n = %v, want 4000", est["n"])
	}
	if est["p50"] > est["p99"] || est["p90"] > est["p999"] {
		t.Errorf("quantile estimates not monotone: %v", est)
	}
}

// TestRegistryDecodeRoundTrip drives the wire path the collector uses:
// estimator.Decode on a marshaled summary must reconstruct a summary
// that answers identically and merges with the original.
func TestRegistryDecodeRoundTrip(t *testing.T) {
	e := newQuantile(t)
	items := stream.Collect(workload.Zipf(10_000, 1<<12, 1.3, 31).Stream)
	e.UpdateBatch(items)
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != quantile.TagQuantile {
		t.Fatalf("wire tag = %#x, want %#x", data[0], quantile.TagQuantile)
	}
	d, err := estimator.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	want, got := e.Estimates(), d.Estimates()
	for k, v := range want {
		if got[k] != v {
			t.Errorf("decoded estimate %s = %v, want %v", k, got[k], v)
		}
	}
	if err := d.Merge(e); err != nil {
		t.Fatalf("decoded summary refuses to merge with its original: %v", err)
	}
	if d.Estimates()["n"] != 2*float64(len(items)) {
		t.Fatalf("merged n = %v, want %d", d.Estimates()["n"], 2*len(items))
	}
}

// TestRegistryKindRow pins the registry metadata the CLIs print via
// -list-estimators.
func TestRegistryKindRow(t *testing.T) {
	for _, k := range estimator.Kinds() {
		if k.Name != "quantile" {
			continue
		}
		if k.Tag != 0x40 {
			t.Errorf("quantile tag = %#x, want 0x40", k.Tag)
		}
		if k.New == nil {
			t.Error("quantile must be constructible (stat mode), not decode-only")
		}
		if k.Decode == nil {
			t.Error("quantile must be decodable")
		}
		return
	}
	t.Fatal("registry does not list a quantile kind")
}
