package quantile

import (
	"sort"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
	"substream/internal/workload"
)

// The battery in this file pins the CKMS error contract itself, on the
// raw float64 summary: sequential queries within ε·n ranks at every
// target, merged queries within 2ε·n for any shard count and split
// geometry, and sublinear space. Registry-level coverage (stream.Item
// adapters, wire round-trips through estimator.Decode, batch-split
// bit-equivalence) lives in registry_test.go and the shared suites in
// internal/estimator and internal/sketch.

// paretoValues is a deterministic heavy-tailed value stream — the shape
// where tail quantiles are the signal and uniform-ε summaries waste
// space.
func paretoValues(n int, seed uint64) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Pareto(r, 1, 1.3)
	}
	return out
}

// zipfValues reuses the item-stream generator as a value stream: a
// small discrete universe with massive ties, the other extreme from
// Pareto's all-distinct values.
func zipfValues(n int, seed uint64) []float64 {
	items := stream.Collect(workload.Zipf(n, 2048, 1.2, seed).Stream)
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = float64(it)
	}
	return out
}

// orderings returns the same multiset under adversarial arrival orders.
// Sorted arrivals are the classic CKMS stressors: ascending lets
// compress collapse everything, descending forces every insert through
// the interior Δ allowance.
func orderings(vals []float64) map[string][]float64 {
	asc := append([]float64(nil), vals...)
	sort.Float64s(asc)
	desc := make([]float64, len(asc))
	for i, v := range asc {
		desc[len(desc)-1-i] = v
	}
	return map[string][]float64{
		"arrival":    vals,
		"ascending":  asc,
		"descending": desc,
	}
}

// rankError measures how far got is from the φ·n rank in the reference
// multiset, in ranks: 0 when got's tie range covers the target rank.
func rankError(sorted []float64, got float64, targetRank float64) float64 {
	n := len(sorted)
	lo := sort.SearchFloat64s(sorted, got)
	hi := sort.Search(n, func(i int) bool { return sorted[i] > got })
	switch {
	case float64(hi) < targetRank:
		return targetRank - float64(hi)
	case float64(lo) > targetRank:
		return float64(lo) - targetRank
	}
	return 0
}

func sortedRef(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	sort.Float64s(out)
	return out
}

// TestQueryWithinTargets pins the sequential contract: after one pass
// over the stream, every configured target answers within ε·n ranks —
// on heavy-tailed and tie-heavy data, under adversarial arrival orders.
func TestQueryWithinTargets(t *testing.T) {
	const n = 100_000
	for name, base := range map[string][]float64{
		"pareto": paretoValues(n, 7),
		"zipf":   zipfValues(n, 11),
	} {
		sorted := sortedRef(base)
		for order, vals := range orderings(base) {
			e := NewTargeted(DefaultTargets())
			for _, v := range vals {
				e.Insert(v)
			}
			for _, tg := range DefaultTargets() {
				err := rankError(sorted, e.Query(tg.Quantile), tg.Quantile*float64(n))
				if bound := tg.Epsilon * float64(n); err > bound {
					t.Errorf("%s/%s φ=%v: rank error %.0f > ε·n = %.0f",
						name, order, tg.Quantile, err, bound)
				}
			}
		}
	}
}

// splitRoundRobin, splitContiguous, and splitSeeded are the three shard
// geometries the merge battery sweeps: interleaved (every shard sees the
// whole distribution), contiguous (sorted input gives shards disjoint
// value ranges — the worst case for merge), and random assignment.
func splitRoundRobin(vals []float64, shards int) [][]float64 {
	out := make([][]float64, shards)
	for i, v := range vals {
		out[i%shards] = append(out[i%shards], v)
	}
	return out
}

func splitContiguous(vals []float64, shards int) [][]float64 {
	out := make([][]float64, shards)
	per := len(vals) / shards
	for s := 0; s < shards; s++ {
		end := (s + 1) * per
		if s == shards-1 {
			end = len(vals)
		}
		out[s] = vals[s*per : end]
	}
	return out
}

func splitSeeded(vals []float64, shards int, seed uint64) [][]float64 {
	r := rng.New(seed)
	out := make([][]float64, shards)
	for _, v := range vals {
		s := int(r.Uint64() % uint64(shards))
		out[s] = append(out[s], v)
	}
	return out
}

// TestMergeWithinTwiceEpsilon is the merge half of the contract: folding
// 1..8 identically-targeted shards — whatever the shard geometry —
// answers every target within 2ε·n ranks of the full stream. Merge
// state is NOT bit-identical to sequential state, so this battery
// asserts ranks, never bytes.
func TestMergeWithinTwiceEpsilon(t *testing.T) {
	const n = 100_000
	for name, base := range map[string][]float64{
		"pareto": paretoValues(n, 13),
		"zipf":   zipfValues(n, 17),
		// Ascending + contiguous split = shards with disjoint ranges.
		"sorted-pareto": sortedRef(paretoValues(n, 13)),
	} {
		sorted := sortedRef(base)
		for shards := 1; shards <= 8; shards++ {
			for geom, split := range map[string][][]float64{
				"roundrobin": splitRoundRobin(base, shards),
				"contiguous": splitContiguous(base, shards),
				"seeded":     splitSeeded(base, shards, uint64(shards)*31),
			} {
				acc := NewTargeted(DefaultTargets())
				for _, shard := range split {
					se := NewTargeted(DefaultTargets())
					for _, v := range shard {
						se.Insert(v)
					}
					if err := acc.Merge(se); err != nil {
						t.Fatalf("%s/%d/%s: merge: %v", name, shards, geom, err)
					}
				}
				if acc.N() != uint64(n) {
					t.Fatalf("%s/%d/%s: merged N = %d, want %d", name, shards, geom, acc.N(), n)
				}
				for _, tg := range DefaultTargets() {
					err := rankError(sorted, acc.Query(tg.Quantile), tg.Quantile*float64(n))
					if bound := 2 * tg.Epsilon * float64(n); err > bound {
						t.Errorf("%s shards=%d %s φ=%v: rank error %.0f > 2ε·n = %.0f",
							name, shards, geom, tg.Quantile, err, bound)
					}
				}
			}
		}
	}
}

// TestMergeIntoEmptyAndFromEmpty covers the fold edges a collector hits
// constantly: the first shard folds into a fresh accumulator, and idle
// agents contribute empty summaries.
func TestMergeIntoEmptyAndFromEmpty(t *testing.T) {
	vals := paretoValues(10_000, 3)
	sorted := sortedRef(vals)

	full := NewTargeted(DefaultTargets())
	for _, v := range vals {
		full.Insert(v)
	}

	acc := NewTargeted(DefaultTargets())
	if err := acc.Merge(full); err != nil {
		t.Fatal(err)
	}
	if err := acc.Merge(NewTargeted(DefaultTargets())); err != nil {
		t.Fatal(err)
	}
	if acc.N() != uint64(len(vals)) {
		t.Fatalf("N = %d after folding empty, want %d", acc.N(), len(vals))
	}
	for _, tg := range DefaultTargets() {
		err := rankError(sorted, acc.Query(tg.Quantile), tg.Quantile*float64(len(vals)))
		if bound := 2 * tg.Epsilon * float64(len(vals)); err > bound {
			t.Errorf("φ=%v: rank error %.0f > %.0f", tg.Quantile, err, bound)
		}
	}
}

// TestMergeDoesNotMutateOther pins that a fold reads the donor without
// changing it — the collector folds each agent's summary into several
// windows, so a mutating merge would corrupt the second fold.
func TestMergeDoesNotMutateOther(t *testing.T) {
	donor := NewTargeted(DefaultTargets())
	for _, v := range paretoValues(5_000, 5) {
		donor.Insert(v)
	}
	// 5000 is not a multiple of bufferCap, so the donor has unflushed
	// buffered values: merged() must fold them in without flushing — a
	// collector folds one agent summary into several windows.
	if len(donor.buf) == 0 {
		t.Fatal("test setup: donor buffer unexpectedly empty")
	}
	beforeSamples := append([]sample(nil), donor.samples...)
	beforeBuf := append([]float64(nil), donor.buf...)
	beforeN := donor.n
	acc := NewTargeted(DefaultTargets())
	if err := acc.Merge(donor); err != nil {
		t.Fatal(err)
	}
	if donor.n != beforeN || len(donor.samples) != len(beforeSamples) || len(donor.buf) != len(beforeBuf) {
		t.Fatal("Merge mutated the donor summary")
	}
	for i, s := range beforeSamples {
		if donor.samples[i] != s {
			t.Fatal("Merge mutated the donor sample list")
		}
	}
	for i, v := range beforeBuf {
		if donor.buf[i] != v {
			t.Fatal("Merge mutated the donor buffer")
		}
	}
	if acc.N() != donor.N() {
		t.Fatalf("accumulator N = %d, donor N = %d", acc.N(), donor.N())
	}
}

// TestMergeRejectsForeignTargets: identical target sets are this kind's
// merge-compatibility key; anything else must error without touching
// state.
func TestMergeRejectsForeignTargets(t *testing.T) {
	e := NewTargeted(DefaultTargets())
	e.Insert(1)
	cases := [][]Target{
		{{Quantile: 0.5, Epsilon: 0.01}},                              // fewer targets
		{{0.50, 0.01}, {0.90, 0.001}, {0.99, 0.001}, {0.999, 0.0001}}, // one ε differs
		{{0.50, 0.01}, {0.90, 0.001}, {0.99, 0.001}, {0.9999, 0.001}}, // one φ differs
	}
	for i, targets := range cases {
		other := NewTargeted(targets)
		other.Insert(2)
		if err := e.Merge(other); err == nil {
			t.Errorf("case %d: merge of foreign target set succeeded", i)
		}
	}
	if e.N() != 1 {
		t.Fatalf("failed merge changed state: N = %d", e.N())
	}
}

// TestSpaceSublinear is the acceptance-criteria space bound: on a
// million-item skewed stream the summary must stay orders of magnitude
// below the item count — this is the whole point of CKMS over
// internal/stats.Summary's sorted raw sample.
func TestSpaceSublinear(t *testing.T) {
	const n = 1_000_000
	e := NewTargeted(DefaultTargets())
	for _, v := range paretoValues(n, 29) {
		e.Insert(v)
	}
	if e.N() != n {
		t.Fatalf("N = %d, want %d", e.N(), n)
	}
	if got := e.SampleCount(); got > 4096 {
		t.Fatalf("1M-item stream retained %d samples — compress is not holding", got)
	}
	// 24 bytes a sample, 8 a buffered value: raw storage would be 8 MB.
	if got := e.SpaceBytes(); got > 128<<10 {
		t.Fatalf("SpaceBytes = %d, want ≤ %d (sublinear in the stream)", got, 128<<10)
	}
	t.Logf("n=%d samples=%d space=%dB", n, e.SampleCount(), e.SpaceBytes())
}

// TestSmallStreams pins the degenerate shapes: empty (Query 0 by
// documented convention), single value, and all-ties answer exactly.
func TestSmallStreams(t *testing.T) {
	e := NewTargeted(DefaultTargets())
	if got := e.Query(0.5); got != 0 {
		t.Fatalf("empty Query = %v, want 0", got)
	}
	if e.N() != 0 {
		t.Fatalf("empty N = %d", e.N())
	}

	e.Insert(42)
	for _, tg := range DefaultTargets() {
		if got := e.Query(tg.Quantile); got != 42 {
			t.Fatalf("single-value Query(%v) = %v, want 42", tg.Quantile, got)
		}
	}

	ties := NewTargeted(DefaultTargets())
	for i := 0; i < 10_000; i++ {
		ties.Insert(7)
	}
	for _, tg := range DefaultTargets() {
		if got := ties.Query(tg.Quantile); got != 7 {
			t.Fatalf("all-ties Query(%v) = %v, want 7", tg.Quantile, got)
		}
	}
	// CKMS does not dedupe equal values — each sample's width is capped
	// by the invariant — so an all-ties stream retains Θ(1/ε) samples,
	// not O(1). Still far below n.
	if ties.SampleCount() > 1024 {
		t.Fatalf("all-ties stream retained %d samples", ties.SampleCount())
	}
}

// TestMinMaxExact: compress never removes the terminal samples, so the
// observed extremes answer exactly at φ→0 and φ→1 regardless of
// targets.
func TestMinMaxExact(t *testing.T) {
	vals := paretoValues(50_000, 41)
	e := NewTargeted(DefaultTargets())
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		e.Insert(v)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if got := e.Query(0.0001); got != lo {
		t.Fatalf("Query(→0) = %v, want observed min %v", got, lo)
	}
	if got := e.Query(0.99999); got != hi {
		t.Fatalf("Query(→1) = %v, want observed max %v", got, hi)
	}
}

// TestNewTargetedValidation pins the constructor contract shared with
// the other estimators: malformed configuration panics at build time,
// never degrades silently at query time.
func TestNewTargetedValidation(t *testing.T) {
	bad := map[string][]Target{
		"empty":         {},
		"zero-quantile": {{Quantile: 0, Epsilon: 0.01}},
		"one-quantile":  {{Quantile: 1, Epsilon: 0.01}},
		"zero-epsilon":  {{Quantile: 0.5, Epsilon: 0}},
		"unsorted":      {{Quantile: 0.9, Epsilon: 0.01}, {Quantile: 0.5, Epsilon: 0.01}},
		"duplicate":     {{Quantile: 0.5, Epsilon: 0.01}, {Quantile: 0.5, Epsilon: 0.001}},
		"too-many":      make([]Target, MaxTargets+1),
		"nan-quantile":  {{Quantile: nan(), Epsilon: 0.01}},
		"nan-epsilon":   {{Quantile: 0.5, Epsilon: nan()}},
	}
	for name, targets := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewTargeted accepted invalid targets", name)
				}
			}()
			NewTargeted(targets)
		}()
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestQuantileKey pins the estimate-map naming the server and README
// document.
func TestQuantileKey(t *testing.T) {
	cases := map[float64]string{
		0.5:   "p50",
		0.9:   "p90",
		0.95:  "p95",
		0.99:  "p99",
		0.999: "p999",
		0.25:  "p25",
	}
	for phi, want := range cases {
		if got := QuantileKey(phi); got != want {
			t.Errorf("QuantileKey(%v) = %q, want %q", phi, got, want)
		}
	}
}
