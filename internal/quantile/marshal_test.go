package quantile

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"substream/internal/sketch"
)

func marshaled(t testing.TB, n int, seed uint64) ([]byte, *Estimator) {
	t.Helper()
	e := NewTargeted(DefaultTargets())
	for _, v := range paretoValues(n, seed) {
		e.Insert(v)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data, e
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 50_000} {
		data, e := marshaled(t, n, 61)
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.N() != e.N() {
			t.Fatalf("n=%d: round-trip N = %d, want %d", n, got.N(), e.N())
		}
		for _, tg := range DefaultTargets() {
			if got.Query(tg.Quantile) != e.Query(tg.Quantile) {
				t.Fatalf("n=%d φ=%v: round-trip query diverges", n, tg.Quantile)
			}
		}
		again, err := got.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("n=%d: re-marshal is not byte-identical", n)
		}
	}
}

// TestMarshalFlushesBuffer: MarshalBinary must serialize the full
// logical state — buffered values included — so two summaries that
// observed the same stream serialize identically regardless of where
// their buffers stood.
func TestMarshalFlushesBuffer(t *testing.T) {
	vals := paretoValues(700, 67) // 700 = one flush + 188 buffered
	a := NewTargeted(DefaultTargets())
	b := NewTargeted(DefaultTargets())
	for _, v := range vals {
		a.Insert(v)
		b.Insert(v)
	}
	da, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("equal logical states serialized differently")
	}
	d, err := Unmarshal(da)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 700 {
		t.Fatalf("decoded N = %d, want 700 (buffered values lost?)", d.N())
	}
}

// corruptCase rewrites one structural aspect of a valid payload; every
// rewrite must be rejected by Unmarshal with an error, never a panic and
// never a silently-wrong summary.
type corruptCase struct {
	name string
	mut  func(p []byte) []byte
}

// Payload layout offsets (after the 2-byte tag+version header):
// u32 T, T×16 bytes of targets, u64 n, u32 S, S×24 bytes of samples.
func targetCount(p []byte) uint32 { return binary.LittleEndian.Uint32(p[2:]) }
func nOffset(p []byte) int        { return 6 + int(targetCount(p))*16 }
func sampleOffset(p []byte) int   { return nOffset(p) + 12 }

func TestUnmarshalRejectsCorruption(t *testing.T) {
	cases := []corruptCase{
		{"wrong tag", func(p []byte) []byte {
			p[0] = 0x20
			return p
		}},
		{"wrong version", func(p []byte) []byte {
			p[1] = 0xff
			return p
		}},
		{"zero targets", func(p []byte) []byte {
			binary.LittleEndian.PutUint32(p[2:], 0)
			return p
		}},
		{"huge target count", func(p []byte) []byte {
			binary.LittleEndian.PutUint32(p[2:], 1<<30)
			return p
		}},
		{"target out of range", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[6:], math.Float64bits(1.5))
			return p
		}},
		{"targets out of order", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[6:], math.Float64bits(0.95))
			return p
		}},
		{"nan epsilon", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[14:], math.Float64bits(math.NaN()))
			return p
		}},
		{"huge sample count", func(p []byte) []byte {
			binary.LittleEndian.PutUint32(p[nOffset(p)+8:], 1<<31-1)
			return p
		}},
		{"nan sample value", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[sampleOffset(p):], math.Float64bits(math.NaN()))
			return p
		}},
		{"inf sample value", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[sampleOffset(p):], math.Float64bits(math.Inf(1)))
			return p
		}},
		{"samples out of order", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[sampleOffset(p):], math.Float64bits(math.MaxFloat64))
			return p
		}},
		{"zero-width sample", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[sampleOffset(p)+8:], 0)
			return p
		}},
		{"width sum over n", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[sampleOffset(p)+8:], 1<<40)
			return p
		}},
		{"delta over n", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[sampleOffset(p)+16:], 1<<40)
			return p
		}},
		{"width sum under n", func(p []byte) []byte {
			binary.LittleEndian.PutUint64(p[nOffset(p):], 1<<40)
			return p
		}},
		{"trailing garbage", func(p []byte) []byte {
			return append(p, 0xde, 0xad)
		}},
	}
	for _, tc := range cases {
		data, _ := marshaled(t, 2_000, 71)
		if _, err := Unmarshal(tc.mut(append([]byte(nil), data...))); err == nil {
			t.Errorf("%s: Unmarshal accepted a corrupt payload", tc.name)
		}
	}
}

// TestUnmarshalTruncations rejects every strict prefix — the payload is
// small enough to sweep exhaustively, unlike the strided registry-level
// harness in internal/sketch.
func TestUnmarshalTruncations(t *testing.T) {
	data, _ := marshaled(t, 5_000, 73)
	for cut := 0; cut < len(data); cut++ {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("accepted a %d/%d-byte truncation", cut, len(data))
		}
	}
}

// TestUnmarshalBitFlips sweeps single-byte corruptions at every strided
// offset: decode may succeed (a flipped value bit can be a valid state)
// but must never panic, and anything it accepts must be usable.
func TestUnmarshalBitFlips(t *testing.T) {
	data, _ := marshaled(t, 5_000, 79)
	stride := 1 + len(data)/512
	for i := 0; i < len(data); i += stride {
		for _, mask := range []byte{0x01, 0xa5, 0xff} {
			mutated := append([]byte(nil), data...)
			mutated[i] ^= mask
			e, err := Unmarshal(mutated)
			if err != nil {
				continue
			}
			e.Insert(1)
			for _, tg := range e.Targets() {
				_ = e.Query(tg.Quantile)
			}
			if _, err := e.MarshalBinary(); err != nil {
				t.Fatalf("offset %d mask %#x: re-marshal of accepted payload failed: %v", i, mask, err)
			}
		}
	}
}

// TestWireHeader pins the tag byte and version so the wire table in
// internal/server/doc.go stays honest.
func TestWireHeader(t *testing.T) {
	data, _ := marshaled(t, 10, 83)
	if TagQuantile != 0x40 || data[0] != TagQuantile {
		t.Fatalf("tag byte = %#x, want 0x40", data[0])
	}
	if data[1] != sketch.WireVersion {
		t.Fatalf("version byte = %#x, want %#x", data[1], sketch.WireVersion)
	}
}
