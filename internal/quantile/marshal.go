package quantile

import (
	"math"

	"substream/internal/sketch"
)

// Wire format (tag 0x40, sketch.WireVersion, little-endian):
//
//	u32 target count T, then T × (f64 φ, f64 ε), ascending φ
//	u64 n (observed count)
//	u32 sample count S, then S × (f64 value, u64 g, u64 Δ), ascending value
//
// The buffer is flushed before serializing, so a payload is always the
// compressed state and Σg == n exactly. Decoding validates the CKMS
// structural invariants — ascending finite values, positive widths, Δ
// and Σg consistent with n — so a corrupt payload fails here instead of
// poisoning a collector's fold.

// MarshalBinary serializes the summary. Buffered values are flushed
// first, so equal logical states serialize identically.
func (e *Estimator) MarshalBinary() ([]byte, error) {
	e.flush()
	w := &sketch.Writer{}
	w.Header(TagQuantile)
	w.U32(uint32(len(e.targets)))
	for _, t := range e.targets {
		w.F64(t.Quantile)
		w.F64(t.Epsilon)
	}
	w.U64(e.n)
	w.U32(uint32(len(e.samples)))
	for _, s := range e.samples {
		w.F64(s.v)
		w.U64(s.g)
		w.U64(s.delta)
	}
	return w.Bytes(), nil
}

// Unmarshal reconstructs an Estimator from MarshalBinary output.
func Unmarshal(data []byte) (*Estimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagQuantile)
	tc := r.Count(MaxTargets, 16)
	if r.Err() == nil && tc < 1 {
		r.Fail()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	targets := make([]Target, tc)
	for i := range targets {
		targets[i] = Target{Quantile: r.F64(), Epsilon: r.F64()}
	}
	if r.Err() == nil && validTargets(targets) != nil {
		r.Failf("quantile: corrupt target set")
	}
	n := r.U64()
	sc := r.Count(sketch.MaxWireElems, 24)
	if r.Err() != nil {
		return nil, r.Err()
	}
	e := &Estimator{
		targets: targets,
		samples: make([]sample, sc),
		n:       n,
		buf:     make([]float64, 0, bufferCap),
	}
	var sum uint64
	prev := math.Inf(-1)
	for i := range e.samples {
		s := sample{v: r.F64(), g: r.U64(), delta: r.U64()}
		if r.Err() != nil {
			return nil, r.Err()
		}
		// Structural invariants: finite ascending values, width ≥ 1, and
		// no rank range wider than the stream (a loose cap on Δ; the CKMS
		// invariant itself is tighter but depends on float rounding, so
		// exact re-validation would reject honest payloads).
		if math.IsNaN(s.v) || math.IsInf(s.v, 0) || s.v < prev || s.g < 1 || s.g > n || s.delta > n {
			r.Fail()
			return nil, r.Err()
		}
		prev = s.v
		sum += s.g
		e.samples[i] = s
	}
	if sum != n {
		r.Failf("quantile: sample widths sum to %d, payload claims n=%d", sum, n)
		return nil, r.Err()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return e, nil
}
