// Package quantile adds mergeable streaming quantiles to the estimator
// registry: a CKMS targeted-quantile summary (Cormode, Korn,
// Muthukrishnan, Srivastava, "Effective Computation of Biased Quantiles
// over Data Streams") answering "what is the p99 flow size?" in bounded
// space from one pass over the observed stream.
//
// # Targeted invariant
//
// The summary keeps a sorted list of samples (value, g, Δ): g is the gap
// in rank to the predecessor, Δ the residual rank uncertainty. The CKMS
// invariant g_i + Δ_i ≤ f(r_i, n) is maintained by compress, where the
// targeted error function
//
//	f(r, n) = min over targets (φ, ε) of
//	          2ε·r/φ         when r ≥ φn   (above the target: slack grows)
//	          2ε·(n−r)/(1−φ) when r < φn   (below the target)
//
// spends space exactly where the configured quantiles need it. Querying
// target φ is then guaranteed within ε·n ranks; between targets the
// bound interpolates. The default targets are p50 ± 1% and p90/p99/p999
// ± 0.1% — tight where the tail is, loose in the bulk — so the summary
// stays a few hundred samples on million-item streams.
//
// # Mergeability
//
// Merge folds another summary in by weighted insertion: every foreign
// sample lands with its full width g and a Δ no smaller than it carried,
// then one compress pass restores the invariant against the combined
// count. Each fold can add at most the other side's rank uncertainty,
// so folding identically-targeted ε-summaries (shards of a pipeline,
// agents under a collector) answers within 2ε·n ranks — the bound the
// property tests in this package pin. Unlike the hash-based sketches,
// merged state is NOT bit-identical to sequential state (the compress
// schedule differs); only the error bound is preserved, which is why the
// merge battery asserts ranks, not bytes.
//
// # Sub-sampled streams
//
// Like every estimator in this repository the summary describes the
// stream it observes — the Bernoulli-sampled stream L. Because each item
// of the original stream P survives independently with probability p,
// sampling preserves ranks in expectation: the φ-quantile of L is an
// unbiased estimate of the φ-quantile of P, with additional sampling
// noise O(sqrt(φ(1−φ)/pn)) that vanishes against the CKMS bound on the
// long streams the daemon monitors.
package quantile

import (
	"fmt"
	"math"
	"sort"
)

// Target is one quantile the summary answers with a guaranteed rank
// error: Query(Quantile) is within Epsilon·n ranks of exact.
type Target struct {
	Quantile float64 // φ in (0, 1)
	Epsilon  float64 // targeted rank error ε in (0, 1)
}

// DefaultTargets returns the registry kind's fixed target set: the
// median at 1% rank error and the monitoring tail (p90/p99/p999) at
// 0.1%. Fixed targets are what make every constructed "quantile"
// estimator mergeable with every other, the same way identical seeds do
// for the hash-based kinds.
func DefaultTargets() []Target {
	return []Target{
		{Quantile: 0.50, Epsilon: 0.01},
		{Quantile: 0.90, Epsilon: 0.001},
		{Quantile: 0.99, Epsilon: 0.001},
		{Quantile: 0.999, Epsilon: 0.001},
	}
}

// MaxTargets bounds the target list, here and in the decoder.
const MaxTargets = 16

// bufferCap is the insertion buffer size: observed values accumulate
// unsorted and merge into the sample list in sorted batches, amortizing
// the list walk. The flush points are a deterministic function of the
// item sequence alone (every bufferCap-th insert), which is what keeps
// UpdateBatch bit-identical to per-item Observe for any batch split —
// the library-wide equivalence law.
const bufferCap = 512

// sample is one retained value with its rank bookkeeping.
type sample struct {
	v     float64
	g     uint64 // rank gap to the predecessor sample
	delta uint64 // residual rank uncertainty
}

// Estimator is a CKMS targeted-quantile summary. It implements
// estimator.Typed[*Estimator]; lift it with estimator.Adapt. Not safe
// for concurrent use, matching the other estimators (the pipeline gives
// each replica a single owner).
type Estimator struct {
	targets []Target // ascending by Quantile
	samples []sample // ascending by v
	n       uint64   // items folded into samples (excludes the buffer)
	buf     []float64
}

// NewTargeted builds a summary answering the given targets within their
// rank errors. Targets must be strictly increasing quantiles in (0, 1)
// with errors in (0, 1); it panics otherwise, like the other estimator
// constructors (config-driven callers validate first).
func NewTargeted(targets []Target) *Estimator {
	if err := validTargets(targets); err != nil {
		panic("quantile: " + err.Error())
	}
	return &Estimator{
		targets: append([]Target(nil), targets...),
		buf:     make([]float64, 0, bufferCap),
	}
}

func validTargets(targets []Target) error {
	if len(targets) == 0 || len(targets) > MaxTargets {
		return fmt.Errorf("need between 1 and %d targets, got %d", MaxTargets, len(targets))
	}
	prev := 0.0
	for _, t := range targets {
		if !(t.Quantile > 0 && t.Quantile < 1) || !(t.Quantile > prev) {
			return fmt.Errorf("target quantiles must be strictly increasing in (0, 1), got %v", t.Quantile)
		}
		if !(t.Epsilon > 0 && t.Epsilon < 1) {
			return fmt.Errorf("target epsilon must be in (0, 1), got %v", t.Epsilon)
		}
		prev = t.Quantile
	}
	return nil
}

// Targets returns the summary's target set (shared, do not mutate).
func (e *Estimator) Targets() []Target { return e.targets }

// epsilonSafety tightens every target's ε inside the invariant. The
// targeted error function is slightly leaky at the targets themselves: a
// sample just below rank φn sits on the below-target branch, where
// f = 2ε(n−r)/(1−φ) ≥ 2εn, so the query walk can return a value up to
// εn/(1 − ε/(1−φ)) ranks off — a few percent beyond the advertised ε·n
// (a known empirical weakness of CKMS biased/targeted invariants).
// Maintaining the invariant at 3ε/4 absorbs that boundary slack for any
// target with ε/(1−φ) ≤ 1/4 — comfortably true of DefaultTargets — so
// Query is strictly within the nominal ε·n at every target, at the cost
// of ~1/3 more samples. Nominal ε is what serializes and what Merge
// compares; the safety factor is an implementation detail.
const epsilonSafety = 0.75

// invariant is the CKMS targeted error function f(r, n): the maximum
// rank spread (g + Δ) a sample at rank r may carry, floored at 1 so an
// exact prefix of a short stream is always allowed.
func (e *Estimator) invariant(r, n float64) float64 {
	m := math.MaxFloat64
	for _, t := range e.targets {
		eps := t.Epsilon * epsilonSafety
		var f float64
		if t.Quantile*n <= r {
			f = 2 * eps * r / t.Quantile
		} else {
			f = 2 * eps * (n - r) / (1 - t.Quantile)
		}
		if f < m {
			m = f
		}
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Insert feeds one value of the observed stream.
func (e *Estimator) Insert(v float64) {
	e.buf = append(e.buf, v)
	if len(e.buf) == bufferCap {
		e.flush()
	}
}

// N returns the number of observed values.
func (e *Estimator) N() uint64 { return e.n + uint64(len(e.buf)) }

// SampleCount returns the number of retained samples — the space the
// CKMS compress bounds sublinearly in N (plus up to bufferCap buffered
// values awaiting their flush).
func (e *Estimator) SampleCount() int { return len(e.samples) }

// flush sorts the buffered values into the sample list and compresses.
func (e *Estimator) flush() {
	if len(e.buf) == 0 {
		return
	}
	sort.Float64s(e.buf)
	e.insertSorted(e.buf)
	e.buf = e.buf[:0]
	e.compress()
}

// insertSorted merges an ascending batch of raw values into the sample
// list as width-1 samples: each lands after its equals with
// Δ = ⌊f(r, n)⌋ − 1 at interior positions and Δ = 0 at either end,
// where the rank is exact.
func (e *Estimator) insertSorted(vals []float64) {
	i := 0       // insertion scan position in e.samples
	var r uint64 // rank: sum of g of samples before position i
	for _, v := range vals {
		for i < len(e.samples) && e.samples[i].v <= v {
			r += e.samples[i].g
			i++
		}
		var delta uint64
		if i > 0 && i < len(e.samples) {
			if f := math.Floor(e.invariant(float64(r), float64(e.n))) - 1; f > 0 {
				delta = uint64(f)
			}
		}
		e.samples = append(e.samples, sample{})
		copy(e.samples[i+1:], e.samples[i:])
		e.samples[i] = sample{v: v, g: 1, delta: delta}
		e.n++
		r++
		i++
	}
}

// compress walks the sample list right to left, fusing each sample into
// its successor while the invariant allows — the CKMS space bound comes
// from this pass. The first and last samples are never removed, so the
// observed minimum and maximum stay exact.
func (e *Estimator) compress() {
	if len(e.samples) < 3 {
		return
	}
	x := e.samples[len(e.samples)-1]
	xi := len(e.samples) - 1
	// r tracks one less than the rank of the sample under inspection,
	// the argument CKMS evaluates the invariant at when deciding whether
	// that sample may fuse into its successor x.
	r := float64(e.n) - 1 - float64(x.g)

	for i := len(e.samples) - 2; i >= 1; i-- {
		c := e.samples[i]
		if float64(c.g+x.g+x.delta) <= e.invariant(r, float64(e.n)) {
			x.g += c.g
			e.samples[xi] = x
			copy(e.samples[i:], e.samples[i+1:])
			e.samples = e.samples[:len(e.samples)-1]
			xi--
		} else {
			x = c
			xi = i
		}
		r -= float64(c.g)
	}
}

// Query returns the estimated φ-quantile. For a configured target the
// answer is within ε·n ranks of exact; between targets the bound
// interpolates. An empty summary returns 0.
func (e *Estimator) Query(phi float64) float64 {
	e.flush()
	if len(e.samples) == 0 {
		return 0
	}
	t := math.Ceil(phi * float64(e.n))
	t += math.Ceil(e.invariant(t, float64(e.n)) / 2)
	p := e.samples[0]
	var r float64
	for _, c := range e.samples[1:] {
		r += float64(p.g)
		if r+float64(c.g+c.delta) > t {
			return p.v
		}
		p = c
	}
	return p.v
}

// Merge folds another summary into the receiver by weighted insertion:
// each foreign sample keeps its width g and carries the larger of its
// own Δ and the receiver's insertion-point allowance, then one compress
// pass restores the invariant against the combined count. Requires
// identical target sets (the merge-compatibility key of this kind, as
// the seed is for hash-based kinds). The other side is never mutated.
func (e *Estimator) Merge(other *Estimator) error {
	if len(e.targets) != len(other.targets) {
		return fmt.Errorf("quantile: cannot merge summary with %d targets into %d", len(other.targets), len(e.targets))
	}
	for i, t := range e.targets {
		if other.targets[i] != t {
			return fmt.Errorf("quantile: cannot merge target (φ=%v ε=%v) into (φ=%v ε=%v)",
				other.targets[i].Quantile, other.targets[i].Epsilon, t.Quantile, t.Epsilon)
		}
	}
	e.flush()
	e.insertWeighted(other.merged())
	e.compress()
	return nil
}

// merged returns the other side's full state — compressed samples plus
// any buffered raw values as width-1 samples — as one ascending batch,
// without mutating the receiver.
func (e *Estimator) merged() []sample {
	if len(e.buf) == 0 {
		return e.samples
	}
	vals := append([]float64(nil), e.buf...)
	sort.Float64s(vals)
	out := make([]sample, 0, len(e.samples)+len(vals))
	j := 0
	for _, s := range e.samples {
		for j < len(vals) && vals[j] <= s.v {
			out = append(out, sample{v: vals[j], g: 1})
			j++
		}
		out = append(out, s)
	}
	for ; j < len(vals); j++ {
		out = append(out, sample{v: vals[j], g: 1})
	}
	return out
}

// insertWeighted merges an ascending sample batch into the list, each
// sample keeping its width and at least its own Δ.
func (e *Estimator) insertWeighted(batch []sample) {
	i := 0
	var r uint64
	for _, s := range batch {
		for i < len(e.samples) && e.samples[i].v <= s.v {
			r += e.samples[i].g
			i++
		}
		delta := s.delta
		if i > 0 && i < len(e.samples) {
			if f := math.Floor(e.invariant(float64(r), float64(e.n))) - 1; f > float64(delta) {
				delta = uint64(f)
			}
		}
		e.samples = append(e.samples, sample{})
		copy(e.samples[i+1:], e.samples[i:])
		e.samples[i] = sample{v: s.v, g: s.g, delta: delta}
		e.n += s.g
		r += s.g
		i++
	}
}
