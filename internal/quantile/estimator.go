package quantile

import (
	"strconv"
	"strings"

	"substream/internal/estimator"
	"substream/internal/stream"
)

// This file plugs the summary into the internal/estimator registry: the
// quantile package owns the tag range 0x40–0x4f (see
// internal/server/doc.go), and the stream.Item adapters below are what
// let the value-typed CKMS core ride the library's uniform contract.

// Observe feeds one item of the observed stream, treating the item
// identifier as the measured value (a flow size, a latency bucket).
func (e *Estimator) Observe(it stream.Item) { e.Insert(float64(it)) }

// UpdateBatch feeds a batch. Values are appended buffer-chunk by
// buffer-chunk, so the flush points — and therefore the serialized
// state — are bit-identical to per-item Observe for any batch split.
func (e *Estimator) UpdateBatch(items []stream.Item) {
	for len(items) > 0 {
		room := bufferCap - len(e.buf)
		if room > len(items) {
			room = len(items)
		}
		for _, it := range items[:room] {
			e.buf = append(e.buf, float64(it))
		}
		items = items[room:]
		if len(e.buf) == bufferCap {
			e.flush()
		}
	}
}

// SpaceBytes returns the approximate memory footprint: the sample list,
// the insertion buffer, and the target table.
func (e *Estimator) SpaceBytes() int {
	return len(e.samples)*24 + cap(e.buf)*8 + len(e.targets)*16
}

// Estimates returns the observed count and one value per target, keyed
// in the production idiom: φ = 0.99 reports as "p99", 0.999 as "p999".
// Windowed streams surface the same keys under the "window_" prefix
// ("window_p99"), which is what opens latency/size-distribution
// monitoring as a query family.
func (e *Estimator) Estimates() map[string]float64 {
	out := make(map[string]float64, len(e.targets)+1)
	out["n"] = float64(e.N())
	for _, t := range e.targets {
		out[QuantileKey(t.Quantile)] = e.Query(t.Quantile)
	}
	return out
}

// QuantileKey renders a quantile φ as its estimate-map key: the decimal
// digits of φ after "0.", padded to two digits — 0.5 → "p50",
// 0.9 → "p90", 0.99 → "p99", 0.999 → "p999", 0.25 → "p25".
func QuantileKey(phi float64) string {
	digits := strings.TrimPrefix(strconv.FormatFloat(phi, 'f', -1, 64), "0.")
	if len(digits) == 1 {
		digits += "0"
	}
	return "p" + digits
}

// TagQuantile is the summary's wire tag, first of the package's
// 0x40–0x4f range.
const TagQuantile byte = 0x40

func init() {
	estimator.Register(estimator.Kind{
		Tag: TagQuantile, Name: "quantile",
		Doc: "CKMS targeted streaming quantiles of observed values (p50 +/-1%, p90/p99/p999 +/-0.1% rank error)",
		New: func(estimator.Spec) (estimator.Estimator, error) {
			// Targets are fixed rather than Spec-derived: identical targets
			// are this kind's merge-compatibility key, so deriving them from
			// a tunable field would let two agents of one logical stream
			// build unmergeable summaries from configs the server considers
			// compatible.
			return estimator.Adapt(NewTargeted(DefaultTargets())), nil
		},
		Decode: estimator.DecodeTyped(Unmarshal),
	})
}
