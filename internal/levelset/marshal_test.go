package levelset

import (
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

// marshalStream is a small skewed stream shared by the round-trip tests.
func marshalStream(n int, seed uint64) stream.Slice {
	r := rng.New(seed)
	z := rng.NewZipf(500, 1.2)
	s := make(stream.Slice, n)
	for i := range s {
		s[i] = stream.Item(z.Draw(r))
	}
	return s
}

func TestExactCounterMarshalRoundTrip(t *testing.T) {
	c := NewExactCounter()
	for _, it := range marshalStream(20000, 1) {
		c.Observe(it)
	}
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalExactCounter(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != c.N() {
		t.Fatal("N lost in round trip")
	}
	for l := 2; l <= 4; l++ {
		if back.EstimateCollisions(l) != c.EstimateCollisions(l) {
			t.Fatalf("C_%d differs after round trip", l)
		}
	}
	// Still mergeable.
	sib := NewExactCounter()
	sib.Observe(1)
	if err := back.MergeCounter(sib); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorMarshalRoundTrip(t *testing.T) {
	mk := func() *Estimator {
		return New(Config{EpsPrime: 0.1, Budget: 256, Reps: 3}, rng.New(7))
	}
	e := mk()
	for _, it := range marshalStream(30000, 2) {
		e.Observe(it)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEstimator(data)
	if err != nil {
		t.Fatal(err)
	}
	for l := 2; l <= 3; l++ {
		if back.EstimateCollisions(l) != e.EstimateCollisions(l) {
			t.Fatalf("C_%d differs after round trip", l)
		}
	}
	if back.HeavyCount() != e.HeavyCount() {
		t.Fatal("heavy set differs after round trip")
	}
	// The reconstructed estimator must merge with a same-seed sibling:
	// hashes and band offset survived byte-exactly.
	sib := mk()
	for _, it := range marshalStream(5000, 3) {
		sib.Observe(it)
	}
	if err := back.Merge(sib); err != nil {
		t.Fatalf("round-tripped estimator not mergeable: %v", err)
	}
}

func TestIWEstimatorMarshalRoundTrip(t *testing.T) {
	mk := func() *IWEstimator {
		return NewIW(IWConfig{EpsPrime: 0.1, Width: 64, Depth: 3, Levels: 6}, rng.New(9))
	}
	e := mk()
	for _, it := range marshalStream(20000, 4) {
		e.Observe(it)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalIWEstimator(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.EstimateCollisions(2) != e.EstimateCollisions(2) {
		t.Fatal("C_2 differs after round trip")
	}
	sib := mk()
	for _, it := range marshalStream(5000, 5) {
		sib.Observe(it)
	}
	if err := back.Merge(sib); err != nil {
		t.Fatalf("round-tripped IW estimator not mergeable: %v", err)
	}
}

func TestUnmarshalCollisionCounterDispatch(t *testing.T) {
	counters := []CollisionCounter{
		NewExactCounter(),
		New(Config{EpsPrime: 0.2, Budget: 32, Reps: 3}, rng.New(1)),
		NewIW(IWConfig{EpsPrime: 0.2, Width: 32, Depth: 2, Levels: 4}, rng.New(2)),
	}
	for _, c := range counters {
		for _, it := range marshalStream(2000, 6) {
			c.Observe(it)
		}
		data, err := MarshalCollisionCounter(c)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalCollisionCounter(data)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := back.EstimateCollisions(2), c.EstimateCollisions(2); got != want {
			t.Fatalf("%T: C_2 %v after dispatch round trip, want %v", c, got, want)
		}
	}
	if _, err := UnmarshalCollisionCounter([]byte{0x7f, 0x01}); err == nil {
		t.Fatal("unknown tag accepted")
	}
	if _, err := UnmarshalCollisionCounter(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func TestUnmarshalExactCounterRejectsSumMismatch(t *testing.T) {
	c := NewExactCounter()
	c.Observe(1)
	c.Observe(1)
	c.Observe(2)
	data, _ := c.MarshalBinary()
	// Layout: tag(1) version(1) n(8) count(4) ... — inflate n.
	bad := append([]byte{}, data...)
	bad[2] = 0xff
	if _, err := UnmarshalExactCounter(bad); err == nil {
		t.Fatal("frequency-sum mismatch accepted")
	}
}

// TestLevelsetUnmarshalTruncatedAndBitFlipped mirrors the sketch
// package's corruption harness: all strict prefixes must be rejected and
// no single-bit flip may panic any decoder.
func TestLevelsetUnmarshalTruncatedAndBitFlipped(t *testing.T) {
	exact := NewExactCounter()
	est := New(Config{EpsPrime: 0.2, Budget: 16, Reps: 3}, rng.New(3))
	iw := NewIW(IWConfig{EpsPrime: 0.2, Width: 16, Depth: 2, Levels: 3}, rng.New(4))
	for _, it := range marshalStream(500, 8) {
		exact.Observe(it)
		est.Observe(it)
		iw.Observe(it)
	}
	decoders := map[string]func([]byte) error{
		"ExactCounter": func(d []byte) error { _, err := UnmarshalExactCounter(d); return err },
		"Estimator":    func(d []byte) error { _, err := UnmarshalEstimator(d); return err },
		"IWEstimator":  func(d []byte) error { _, err := UnmarshalIWEstimator(d); return err },
		"dispatch":     func(d []byte) error { _, err := UnmarshalCollisionCounter(d); return err },
	}
	for _, c := range []CollisionCounter{exact, est, iw} {
		payload, err := MarshalCollisionCounter(c)
		if err != nil {
			t.Fatal(err)
		}
		for name, dec := range decoders {
			for cut := 0; cut < len(payload); cut += 3 {
				if err := dec(payload[:cut]); err == nil {
					t.Fatalf("%s accepted a %d/%d-byte truncation of %T", name, cut, len(payload), c)
				}
			}
			for bit := 0; bit < 8*len(payload); bit += 5 {
				flipped := append([]byte{}, payload...)
				flipped[bit/8] ^= 1 << (bit % 8)
				_ = dec(flipped)
			}
		}
	}
}
