package levelset

import (
	"substream/internal/estimator"
	"substream/internal/rng"
)

// This file plugs the package's collision counters into the
// internal/estimator registry (tag range 0x10–0x1f). Standalone they
// summarize the stream they observe; as components of internal/core's
// FkEstimator they ride inside its payload through the same registry
// decode path (see UnmarshalCollisionCounter in marshal.go).

func init() {
	estimator.Register(estimator.Kind{
		Tag: TagExactCounter, Name: "exactcounter",
		Doc: "exact collision/frequency counter (space O(F0) of the observed stream)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewExactCounter()), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalExactCounter),
	})
	estimator.Register(estimator.Kind{
		Tag: TagEstimator, Name: "levelset",
		Doc: "level-set collision estimator (paper Sec 3.1; Budget-bounded space)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(New(Config{EpsPrime: s.Epsilon, Budget: s.Budget}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalEstimator),
	})
	estimator.Register(estimator.Kind{
		Tag: TagIWEstimator, Name: "iw",
		Doc: "Indyk-Woodruff level-set collision estimator (CountSketch per level)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewIW(IWConfig{EpsPrime: s.Epsilon}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalIWEstimator),
	})
}

// Estimates returns the exact observed length, distinct count, and pair
// collision count.
func (c *ExactCounter) Estimates() map[string]float64 {
	return map[string]float64{
		"n":  float64(c.n),
		"f0": float64(len(c.counts)),
		"c2": c.EstimateCollisions(2),
	}
}

// Estimates returns the estimated pair collision count of the observed
// stream.
func (e *Estimator) Estimates() map[string]float64 {
	return map[string]float64{"c2": e.EstimateCollisions(2)}
}

// Estimates returns the observed length and the estimated pair collision
// count.
func (e *IWEstimator) Estimates() map[string]float64 {
	return map[string]float64{"n": float64(e.nL), "c2": e.EstimateCollisions(2)}
}
