package levelset

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func feedIW(e *IWEstimator, s stream.Slice) {
	for _, it := range s {
		e.Observe(it)
	}
}

func TestIWCollisionsOnSkewedStream(t *testing.T) {
	// Skewed stream: C2 dominated by frequent items, which level 0's
	// CountSketch recovers directly. The estimate should land within a
	// modest factor of truth.
	s := zipfStream(200000, 20000, 1.3, 1)
	exact := stream.NewFreq(s).Collisions(2)
	e := NewIW(IWConfig{EpsPrime: 0.05, Width: 2048, Depth: 5}, rng.New(2))
	feedIW(e, s)
	got := e.EstimateCollisions(2)
	if got < exact/3 || got > exact*3 {
		t.Fatalf("IW C2 = %v, exact %v", got, exact)
	}
}

func TestIWHeadRecoveredAccurately(t *testing.T) {
	// Heavy planted items carry nearly all collisions; the IW estimate
	// of C3 should track them within band-discretization error.
	var s stream.Slice
	for i := 0; i < 5000; i++ {
		s = append(s, 1)
	}
	for i := 0; i < 3000; i++ {
		s = append(s, 2)
	}
	for i := 1; i <= 20000; i++ {
		s = append(s, stream.Item(i+10))
	}
	rng.New(3).Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	exact := stream.NewFreq(s).Collisions(3)
	e := NewIW(IWConfig{EpsPrime: 0.05, Width: 1024, Depth: 5}, rng.New(4))
	feedIW(e, s)
	got := e.EstimateCollisions(3)
	if rel := math.Abs(got-exact) / exact; rel > 0.3 {
		t.Fatalf("IW C3 = %v, exact %v (rel %v)", got, exact, rel)
	}
}

func TestIWNoGrossOverestimateOnDistinct(t *testing.T) {
	// All-singleton stream: C2 = 0. Candidates all have frequency 1,
	// below every level's recovery threshold once enough mass arrives,
	// and C(rep, 2) clamps for rep ≤ 1 — the estimate must stay ≈ 0
	// relative to the trivial bound n²/2.
	var s stream.Slice
	for i := 1; i <= 50000; i++ {
		s = append(s, stream.Item(i))
	}
	for seed := uint64(1); seed <= 5; seed++ {
		e := NewIW(IWConfig{EpsPrime: 0.1, Width: 512, Depth: 5}, rng.New(seed))
		feedIW(e, s)
		if got := e.EstimateCollisions(2); got > float64(len(s)) {
			t.Fatalf("seed %d: C2 estimate %v on collision-free stream", seed, got)
		}
	}
}

func TestIWBandsSortedAndPositive(t *testing.T) {
	s := zipfStream(50000, 500, 1.1, 5)
	e := NewIW(IWConfig{EpsPrime: 0.1}, rng.New(6))
	feedIW(e, s)
	bands := e.Bands()
	if len(bands) == 0 {
		t.Fatal("no bands recovered")
	}
	for i, b := range bands {
		if b.Size <= 0 || b.Rep <= 0 {
			t.Fatalf("degenerate band %+v", b)
		}
		if i > 0 && bands[i].Band <= bands[i-1].Band {
			t.Fatalf("bands not sorted")
		}
	}
}

func TestIWEmpty(t *testing.T) {
	e := NewIW(IWConfig{EpsPrime: 0.1}, rng.New(7))
	if got := e.EstimateCollisions(2); got != 0 {
		t.Fatalf("empty estimate %v", got)
	}
	if e.Bands() != nil {
		t.Fatal("empty Bands not nil")
	}
}

func TestIWSpaceIndependentOfStreamLength(t *testing.T) {
	e := NewIW(IWConfig{EpsPrime: 0.1, Width: 256, Depth: 3, Candidates: 64, Levels: 8}, rng.New(8))
	before := 0
	for i := 1; i <= 200000; i++ {
		e.Observe(stream.Item(i%77777 + 1))
		if i == 1000 {
			before = e.SpaceBytes()
		}
	}
	after := e.SpaceBytes()
	// Candidate trackers saturate; only slack from TopK fill remains.
	if float64(after) > 1.5*float64(before) {
		t.Fatalf("IW space grew %d → %d", before, after)
	}
}

func TestIWPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NewIW(EpsPrime=0) did not panic")
			}
		}()
		NewIW(IWConfig{}, rng.New(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EstimateCollisions(0) did not panic")
			}
		}()
		e := NewIW(IWConfig{EpsPrime: 0.1}, rng.New(1))
		e.EstimateCollisions(0)
	}()
}

func TestIWInsideAlgorithm1(t *testing.T) {
	// The IW backend must be pluggable into the Fk pipeline: estimate
	// C2(L) on a sampled stream and verify the implied F2 lands in a
	// sane range. (Full Algorithm 1 wiring is exercised in core's tests;
	// here we check the CollisionCounter contract end to end.)
	s := zipfStream(100000, 5000, 1.25, 9)
	g := stream.NewFreq(s)
	exactC2 := g.Collisions(2)
	var counter CollisionCounter = NewIW(IWConfig{EpsPrime: 0.05, Width: 2048}, rng.New(10))
	for _, it := range s {
		counter.Observe(it)
	}
	got := counter.EstimateCollisions(2)
	if got < exactC2/3 || got > exactC2*3 {
		t.Fatalf("IW via interface: C2 %v, exact %v", got, exactC2)
	}
	if counter.SpaceBytes() <= 0 {
		t.Fatal("space not positive")
	}
}
