package levelset

import (
	"math"
	"math/bits"
	"sort"

	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// IWEstimator is the literal Indyk–Woodruff construction [27], as cited
// by Theorem 2: a hierarchy of geometrically sub-sampled substreams,
// each summarized by a CountSketch plus a candidate tracker. Level t
// observes the items whose universe hash grants level ≥ t (probability
// 2^(−t)); a level-set S_i is estimated at the shallowest level where
// its band frequency is heavy enough to be recovered by that level's
// sketch, scaling the recovered count by 2^t.
//
// Compared with the package's default Estimator (SpaceSaving heavy part
// + exactly-counted universe sample), this variant recovers frequencies
// *approximately* (CountSketch point queries) rather than exactly, which
// is how the original analysis goes; E10 measures the practical cost of
// that fidelity. Both satisfy CollisionCounter and are interchangeable
// inside Algorithm 1.
type IWEstimator struct {
	epsPrime float64
	eta      float64
	universe rng.Hash2 // decides each item's deepest level
	levels   []iwLevel
	nL       uint64
}

type iwLevel struct {
	hashLevel int // minimum universe-hash level to enter this sketch
	cs        *sketch.CountSketch
	cands     *sketch.TopK
	count     uint64 // stream elements that reached this level
}

// IWConfig configures an IWEstimator.
type IWConfig struct {
	// EpsPrime is the band growth factor ε′ > 0.
	EpsPrime float64
	// Width and Depth shape each level's CountSketch.
	// Defaults 1024 and 5.
	Width int
	Depth int
	// Candidates bounds each level's tracked candidate set.
	// Default Width/4.
	Candidates int
	// Levels is the number of sub-sampling levels. Default 16.
	Levels int
}

// NewIW builds the estimator. It panics on a non-positive EpsPrime.
func NewIW(cfg IWConfig, r *rng.Xoshiro256) *IWEstimator {
	if cfg.EpsPrime <= 0 {
		panic("levelset: EpsPrime must be positive")
	}
	width := cfg.Width
	if width == 0 {
		width = 1024
	}
	depth := cfg.Depth
	if depth == 0 {
		depth = 5
	}
	cands := cfg.Candidates
	if cands == 0 {
		cands = width / 4
		if cands < 16 {
			cands = 16
		}
	}
	nLevels := cfg.Levels
	if nLevels == 0 {
		nLevels = 16
	}
	e := &IWEstimator{
		epsPrime: cfg.EpsPrime,
		eta:      r.Float64Open(),
		levels:   make([]iwLevel, nLevels),
	}
	e.universe = rng.NewHash2(r)
	for t := range e.levels {
		e.levels[t] = iwLevel{
			hashLevel: t,
			cs:        sketch.NewCountSketch(width, depth, r),
			cands:     sketch.NewTopK(cands),
		}
	}
	return e
}

func (e *IWEstimator) levelOf(it stream.Item) int {
	h := e.universe.Hash(uint64(it))
	if h == 0 {
		return len(e.levels) - 1
	}
	lvl := 61 - bits.Len64(h)
	if lvl >= len(e.levels) {
		lvl = len(e.levels) - 1
	}
	return lvl
}

// Observe feeds one element of the sampled stream.
func (e *IWEstimator) Observe(it stream.Item) {
	e.nL++
	deepest := e.levelOf(it)
	for t := 0; t <= deepest; t++ {
		lvl := &e.levels[t]
		lvl.count++
		lvl.cs.Observe(it)
		if est := lvl.cs.Estimate(it); est > 0 {
			lvl.cands.Update(it, float64(est))
		}
	}
}

// recoveryThreshold returns the smallest frequency reliably recoverable
// at level t: a few times the CountSketch additive error √(F₂(t)/width).
func (e *IWEstimator) recoveryThreshold(t int) float64 {
	lvl := &e.levels[t]
	f2 := lvl.cs.F2Estimate()
	if f2 <= 0 {
		return 1
	}
	return 4 * math.Sqrt(f2/float64(lvl.cs.Width()))
}

// Bands returns the estimated level sets. Each band i is measured at
// its designated level t*(i) — the shallowest level whose recovery
// threshold sits below the band representative — by counting that
// level's recovered candidates falling in the band and scaling by 2^t*.
// Bands unrecoverable at every level contribute nothing, which the
// Theorem 2 analysis tolerates: such bands are never "contributing".
func (e *IWEstimator) Bands() []BandStats {
	if e.nL == 0 {
		return nil
	}
	nLevels := len(e.levels)
	thresh := make([]float64, nLevels)
	perLevel := make([]map[int]float64, nLevels)
	bandSet := make(map[int]struct{})
	for t := range e.levels {
		thresh[t] = e.recoveryThreshold(t)
		m := make(map[int]float64)
		for _, c := range e.levels[t].cands.Items() {
			if c.Count < thresh[t] || c.Count < 1 {
				continue
			}
			b := e.bandOfIW(c.Count)
			m[b]++
			bandSet[b] = struct{}{}
		}
		perLevel[t] = m
	}
	out := make([]BandStats, 0, len(bandSet))
	for b := range bandSet {
		rep := e.repValueIW(b)
		tStar := -1
		for t := 0; t < nLevels; t++ {
			if thresh[t] <= rep {
				tStar = t
				break
			}
		}
		if tStar < 0 {
			continue
		}
		size := perLevel[tStar][b] * math.Pow(2, float64(tStar))
		if size > 0 {
			out = append(out, BandStats{Band: b, Rep: rep, Size: size})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Band < out[j].Band })
	return out
}

func (e *IWEstimator) bandOfIW(g float64) int {
	i := int(math.Floor(math.Log(g/e.eta) / math.Log1p(e.epsPrime)))
	if i < 0 {
		i = 0
	}
	return i
}

func (e *IWEstimator) repValueIW(i int) float64 {
	return e.eta * math.Pow(1+e.epsPrime, float64(i))
}

// EstimateCollisions returns C̃_ℓ = Σ_i s̃_i·C(rep_i, ℓ).
func (e *IWEstimator) EstimateCollisions(l int) float64 {
	if l < 1 {
		panic("levelset: collision order must be >= 1")
	}
	var total float64
	for _, b := range e.Bands() {
		total += b.Size * stream.BinomialCoeffFloat(b.Rep, l)
	}
	return total
}

// SpaceBytes returns the approximate memory footprint.
func (e *IWEstimator) SpaceBytes() int {
	total := 64
	for i := range e.levels {
		total += e.levels[i].cs.SpaceBytes() + 48*e.levels[i].cands.Len()
	}
	return total
}

var _ CollisionCounter = (*IWEstimator)(nil)
