package levelset

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func zipfStream(n, m int, s float64, seed uint64) stream.Slice {
	r := rng.New(seed)
	z := rng.NewZipf(m, s)
	out := make(stream.Slice, n)
	for i := range out {
		out[i] = stream.Item(z.Draw(r))
	}
	return out
}

func feed(e *Estimator, s stream.Slice) {
	for _, it := range s {
		e.Observe(it)
	}
}

func TestExactCounter(t *testing.T) {
	c := NewExactCounter()
	for _, it := range (stream.Slice{1, 1, 1, 2, 2, 3}) {
		c.Observe(it)
	}
	if c.N() != 6 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.EstimateCollisions(2); got != 3+1 {
		t.Fatalf("C2 = %v, want 4", got)
	}
	if got := c.EstimateCollisions(3); got != 1 {
		t.Fatalf("C3 = %v, want 1", got)
	}
	if c.SpaceBytes() != 16*3 {
		t.Fatalf("SpaceBytes = %d", c.SpaceBytes())
	}
}

func TestEstimatorExactModeWhenBudgetLarge(t *testing.T) {
	// With budget ≥ distinct items, T stays 0 and counts are exact, so
	// the direct estimate equals the exact C_ℓ.
	s := zipfStream(20000, 500, 1.1, 1)
	f := stream.NewFreq(s)
	e := New(Config{EpsPrime: 0.1, Budget: 10000, Reps: 3}, rng.New(2))
	feed(e, s)
	for _, lvl := range e.ThresholdLevels() {
		if lvl != 0 {
			t.Fatalf("threshold raised with ample budget: %v", e.ThresholdLevels())
		}
	}
	for l := 2; l <= 4; l++ {
		exact := f.Collisions(l)
		direct := e.DirectEstimateCollisions(l)
		if math.Abs(direct-exact) > 1e-6*exact {
			t.Fatalf("direct C%d = %v, exact %v", l, direct, exact)
		}
	}
}

func TestEstimatorBandedWithinEpsOfExactInExactMode(t *testing.T) {
	// In exact mode the only error in the banded estimate is band
	// discretization: representative ∈ (g/(1+ε'), g], so
	// C̃_ℓ ∈ [C_ℓ/(1+ε')^ℓ, C_ℓ] approximately.
	s := zipfStream(30000, 300, 1.2, 3)
	f := stream.NewFreq(s)
	const epsPrime = 0.05
	e := New(Config{EpsPrime: epsPrime, Budget: 10000, Reps: 3}, rng.New(4))
	feed(e, s)
	for l := 2; l <= 4; l++ {
		exact := f.Collisions(l)
		banded := e.EstimateCollisions(l)
		if banded > exact*1.0001 {
			t.Fatalf("banded C%d = %v exceeds exact %v", l, banded, exact)
		}
		// Allow the full discretization factor plus slack for items near
		// band edges with small frequencies.
		floor := exact / math.Pow(1+epsPrime, float64(l)+2)
		if banded < floor*0.5 {
			t.Fatalf("banded C%d = %v too far below exact %v (floor %v)", l, banded, exact, floor)
		}
	}
}

func TestEstimatorUnderBudgetPressure(t *testing.T) {
	// Budget forces subsampling; the direct estimate should still land
	// within a reasonable factor of the truth for C2 on a collision-rich
	// stream.
	s := zipfStream(200000, 20000, 1.3, 5)
	f := stream.NewFreq(s)
	exact := f.Collisions(2)
	e := New(Config{EpsPrime: 0.1, Budget: 2000, Reps: 5}, rng.New(6))
	feed(e, s)
	raised := false
	for _, lvl := range e.ThresholdLevels() {
		if lvl > 0 {
			raised = true
		}
	}
	if !raised {
		t.Fatal("budget pressure did not raise any threshold (test not exercising eviction)")
	}
	direct := e.DirectEstimateCollisions(2)
	if direct < exact/3 || direct > exact*3 {
		t.Fatalf("direct C2 under pressure = %v, exact %v", direct, exact)
	}
}

func TestEstimatorMedianUnbiasedUnderSampling(t *testing.T) {
	// Average the direct estimate across seeds; should approach truth.
	s := zipfStream(50000, 5000, 1.2, 7)
	exact := stream.NewFreq(s).Collisions(2)
	const trials = 30
	var sum float64
	r := rng.New(8)
	for tr := 0; tr < trials; tr++ {
		e := New(Config{EpsPrime: 0.1, Budget: 1000, Reps: 5}, r.Split())
		feed(e, s)
		sum += e.DirectEstimateCollisions(2)
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.25 {
		t.Fatalf("mean direct C2 = %v, exact %v", mean, exact)
	}
}

func TestEstimatorNoGrossOverestimate(t *testing.T) {
	// Theorem 2's property: the estimate never grossly overestimates,
	// even for streams with almost no collisions. With all-distinct
	// input, C2 = 0 and the estimate must be 0 or tiny.
	var s stream.Slice
	for i := 1; i <= 100000; i++ {
		s = append(s, stream.Item(i))
	}
	for seed := uint64(1); seed <= 10; seed++ {
		e := New(Config{EpsPrime: 0.1, Budget: 500, Reps: 5}, rng.New(seed))
		feed(e, s)
		if got := e.EstimateCollisions(2); got != 0 {
			t.Fatalf("seed %d: C2 estimate %v on collision-free stream", seed, got)
		}
	}
}

func TestBandsSorted(t *testing.T) {
	s := zipfStream(30000, 100, 1.0, 9)
	e := New(Config{EpsPrime: 0.2, Budget: 10000, Reps: 3}, rng.New(10))
	feed(e, s)
	bands := e.Bands()
	if len(bands) == 0 {
		t.Fatal("no bands")
	}
	for i := 1; i < len(bands); i++ {
		if bands[i].Band <= bands[i-1].Band {
			t.Fatalf("bands not sorted: %+v", bands)
		}
	}
	for _, b := range bands {
		if b.Size <= 0 || b.Rep <= 0 {
			t.Fatalf("degenerate band %+v", b)
		}
	}
	// Σ s̃_i should approximate the distinct count in exact mode.
	var total float64
	for _, b := range bands {
		total += b.Size
	}
	d := float64(stream.NewFreq(s).F0())
	if math.Abs(total-d) > 1e-9 {
		t.Fatalf("band sizes sum to %v, distinct = %v", total, d)
	}
}

func TestBandRepresentativeBelowFrequency(t *testing.T) {
	// Every tracked item's representative must not exceed its frequency:
	// rep = η(1+ε')^i ≤ g for the band containing g.
	e := New(Config{EpsPrime: 0.3, Budget: 100, Reps: 1}, rng.New(11))
	for g := float64(1); g <= 1000; g *= 3 {
		band := e.bandOf(g)
		rep := e.repValue(band)
		if rep > float64(g)*1.0000001 {
			t.Fatalf("g=%v: rep %v exceeds frequency", g, rep)
		}
		if float64(g) >= rep*(1+e.epsPrime)*(1+1e-9) {
			t.Fatalf("g=%v: band upper edge violated (rep %v)", g, rep)
		}
	}
}

func TestEstimatorSpaceBounded(t *testing.T) {
	const budget = 500
	e := New(Config{EpsPrime: 0.1, Budget: budget, Reps: 3}, rng.New(12))
	for i := 1; i <= 300000; i++ {
		e.Observe(stream.Item(i))
	}
	// Heavy summary (48B/counter) + 3 light reps (32B/entry) + slack.
	if e.SpaceBytes() > 48*budget+3*(32*budget+64)+1 {
		t.Fatalf("space %d exceeds budget-implied bound", e.SpaceBytes())
	}
}

func TestEstimatorPanics(t *testing.T) {
	cases := []func(){
		func() { New(Config{EpsPrime: 0, Budget: 10}, rng.New(1)) },
		func() { New(Config{EpsPrime: 0.1, Budget: 0}, rng.New(1)) },
		func() {
			e := New(Config{EpsPrime: 0.1, Budget: 10}, rng.New(1))
			e.EstimateCollisions(0)
		},
		func() {
			e := New(Config{EpsPrime: 0.1, Budget: 10}, rng.New(1))
			e.DirectEstimateCollisions(0)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEstimatorDefaultReps(t *testing.T) {
	e := New(Config{EpsPrime: 0.1, Budget: 10}, rng.New(1))
	if len(e.ThresholdLevels()) != 5 {
		t.Fatalf("default reps = %d, want 5", len(e.ThresholdLevels()))
	}
}

func BenchmarkLevelSetObserve(b *testing.B) {
	e := New(Config{EpsPrime: 0.1, Budget: 4096, Reps: 5}, rng.New(1))
	for i := 0; i < b.N; i++ {
		e.Observe(stream.Item(i%100000 + 1))
	}
}

func BenchmarkLevelSetEstimate(b *testing.B) {
	e := New(Config{EpsPrime: 0.1, Budget: 4096, Reps: 5}, rng.New(1))
	s := zipfStream(100000, 10000, 1.1, 2)
	feed(e, s)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += e.EstimateCollisions(2)
	}
	_ = sink
}
