package levelset

import (
	"encoding"
	"fmt"
	"math"

	"substream/internal/estimator"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// This file serializes the collision counters with the shared wire
// primitives of internal/sketch, so an agent process can ship its
// level-set state to a collector and the collector can fold it with the
// Merge paths in merge.go. The levelset package owns the tag range
// 0x10–0x1f (see internal/server/doc.go for the registry).

// Type tags for the serialized collision counters.
const (
	TagExactCounter byte = 0x10
	TagEstimator    byte = 0x11
	TagIWEstimator  byte = 0x12
)

// maxWireReps bounds the decoded repetition/level counts; both default to
// single digits and are never legitimately large.
const maxWireReps = 1 << 10

// MarshalBinary serializes the counter. Frequencies are written in
// increasing item order, so equal counters serialize identically.
func (c *ExactCounter) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagExactCounter)
	w.U64(c.n)
	w.U32(uint32(len(c.counts)))
	for _, it := range sketch.SortedKeys(c.counts) {
		w.U64(uint64(it))
		w.U64(c.counts[it])
	}
	return w.Bytes(), nil
}

// UnmarshalExactCounter reconstructs an ExactCounter from MarshalBinary
// output.
func UnmarshalExactCounter(data []byte) (*ExactCounter, error) {
	r := sketch.NewReader(data)
	r.Header(TagExactCounter)
	n := r.U64()
	count := r.Count(sketch.MaxWireElems, 16)
	if err := r.Err(); err != nil {
		return nil, err
	}
	c := &ExactCounter{counts: make(stream.Freq, count), n: n}
	var prev stream.Item
	var sum uint64
	for i := 0; i < count; i++ {
		it := stream.Item(r.U64())
		cnt := r.U64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if (i > 0 && it <= prev) || cnt < 1 || cnt > n {
			r.Fail()
			return nil, r.Err()
		}
		prev = it
		sum += cnt
		c.counts[it] = cnt
	}
	// n is by construction the sum of all frequencies; a mismatch means
	// corruption.
	if sum != n {
		r.Failf("levelset: exact counter frequencies sum to %d, header says %d", sum, n)
		return nil, r.Err()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// MarshalBinary serializes the level-set estimator: band geometry, the
// heavy SpaceSaving summary as a nested payload, and each repetition's
// universe hash, threshold, and exactly-tracked frequencies.
func (e *Estimator) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagEstimator)
	w.F64(e.epsPrime)
	w.F64(e.eta)
	w.U32(uint32(e.budget))
	heavy, err := e.heavy.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Nested(heavy)
	w.U32(uint32(len(e.reps)))
	for _, rs := range e.reps {
		w.Hash2(rs.hash)
		w.U32(uint32(rs.T))
		w.U32(uint32(len(rs.counts)))
		for _, it := range sketch.SortedKeys(rs.counts) {
			tr := rs.counts[it]
			w.U64(uint64(it))
			w.U8(tr.level)
			w.U64(tr.count)
		}
	}
	return w.Bytes(), nil
}

// UnmarshalEstimator reconstructs an Estimator from MarshalBinary output.
func UnmarshalEstimator(data []byte) (*Estimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagEstimator)
	epsPrime := r.F64()
	eta := r.F64()
	budget := r.Count(sketch.MaxWireElems, 0)
	if r.Err() == nil && !(epsPrime > 0 && !math.IsInf(epsPrime, 0) && eta > 0 && eta <= 1 && budget >= 1) {
		r.Fail()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	heavy, err := sketch.UnmarshalSpaceSaving(r.Nested())
	if err != nil {
		return nil, err
	}
	if heavy.K() != budget {
		return nil, fmt.Errorf("levelset: heavy summary k=%d does not match budget %d", heavy.K(), budget)
	}
	nReps := r.Count(maxWireReps, 1)
	if r.Err() == nil && nReps < 1 {
		r.Fail()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	e := &Estimator{epsPrime: epsPrime, eta: eta, budget: budget,
		heavy: heavy, reps: make([]*repState, nReps)}
	for i := range e.reps {
		hash := r.Hash2()
		T := r.Count(maxLevel, 0)
		count := r.Count(sketch.MaxWireElems, 17)
		if err := r.Err(); err != nil {
			return nil, err
		}
		rs := &repState{hash: hash, T: T, budget: budget,
			counts: make(map[stream.Item]trackedItem, count)}
		var prev stream.Item
		for j := 0; j < count; j++ {
			it := stream.Item(r.U64())
			level := r.U8()
			cnt := r.U64()
			if err := r.Err(); err != nil {
				return nil, err
			}
			// Every tracked item's sampling level is at least the final
			// threshold (lower levels were evicted when T rose).
			if (j > 0 && it <= prev) || int(level) < T || int(level) > maxLevel || cnt < 1 {
				r.Fail()
				return nil, r.Err()
			}
			prev = it
			rs.counts[it] = trackedItem{level: level, count: cnt}
		}
		e.reps[i] = rs
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return e, nil
}

// MarshalBinary serializes the Indyk–Woodruff estimator: band geometry,
// the universe hash, and each level's element count, CountSketch, and
// candidate tracker as nested payloads.
func (e *IWEstimator) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagIWEstimator)
	w.F64(e.epsPrime)
	w.F64(e.eta)
	w.U64(e.nL)
	w.Hash2(e.universe)
	w.U32(uint32(len(e.levels)))
	for t := range e.levels {
		lvl := &e.levels[t]
		w.U64(lvl.count)
		cs, err := lvl.cs.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Nested(cs)
		cands, err := lvl.cands.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.Nested(cands)
	}
	return w.Bytes(), nil
}

// UnmarshalIWEstimator reconstructs an IWEstimator from MarshalBinary
// output.
func UnmarshalIWEstimator(data []byte) (*IWEstimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagIWEstimator)
	epsPrime := r.F64()
	eta := r.F64()
	nL := r.U64()
	if r.Err() == nil && !(epsPrime > 0 && !math.IsInf(epsPrime, 0) && eta > 0 && eta <= 1) {
		r.Fail()
	}
	universe := r.Hash2()
	nLevels := r.Count(maxWireReps, 16)
	if r.Err() == nil && nLevels < 1 {
		r.Fail()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	e := &IWEstimator{epsPrime: epsPrime, eta: eta, nL: nL,
		universe: universe, levels: make([]iwLevel, nLevels)}
	for t := range e.levels {
		count := r.U64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		cs, err := sketch.UnmarshalCountSketch(r.Nested())
		if err != nil {
			return nil, err
		}
		cands, err := sketch.UnmarshalTopK(r.Nested())
		if err != nil {
			return nil, err
		}
		e.levels[t] = iwLevel{hashLevel: t, cs: cs, cands: cands, count: count}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return e, nil
}

// MarshalCollisionCounter serializes any collision counter with a wire
// form.
func MarshalCollisionCounter(c CollisionCounter) ([]byte, error) {
	m, ok := c.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("levelset: collision counter %T is not serializable", c)
	}
	return m.MarshalBinary()
}

// UnmarshalCollisionCounter reconstructs whichever collision counter was
// serialized, through the estimator registry. Only tags in the range this
// package owns are eligible: the gate runs BEFORE decoding so a crafted
// payload cannot nest a composite estimator (which itself embeds a
// collision counter) and recurse the decoder to arbitrary depth.
func UnmarshalCollisionCounter(data []byte) (CollisionCounter, error) {
	tag, err := sketch.PayloadTag(data)
	if err != nil {
		return nil, err
	}
	if tag < TagExactCounter || tag > TagExactCounter|0x0f {
		return nil, fmt.Errorf("levelset: payload tag %#x is not a collision counter", tag)
	}
	e, err := estimator.Decode(data)
	if err != nil {
		return nil, err
	}
	c, ok := estimator.Unwrap(e).(CollisionCounter)
	if !ok {
		return nil, fmt.Errorf("levelset: payload tag %#x decodes to %T, not a collision counter",
			tag, estimator.Unwrap(e))
	}
	return c, nil
}
