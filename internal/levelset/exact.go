package levelset

import (
	"substream/internal/stream"
)

// ExactCounter counts collisions exactly by maintaining the full
// frequency vector of the observed stream. Space is O(distinct items);
// it is the unlimited-space reference the level-set estimator is judged
// against, and the backend of choice when the sampled stream's support is
// known to be small.
type ExactCounter struct {
	counts stream.Freq
	n      uint64
}

// NewExactCounter returns an empty exact collision counter.
func NewExactCounter() *ExactCounter {
	return &ExactCounter{counts: make(stream.Freq)}
}

// Observe feeds one element of the sampled stream.
func (c *ExactCounter) Observe(it stream.Item) {
	c.counts[it]++
	c.n++
}

// EstimateCollisions returns the exact C_ℓ of the observed stream.
func (c *ExactCounter) EstimateCollisions(l int) float64 {
	return c.counts.Collisions(l)
}

// N returns the number of observed elements (F1 of L).
func (c *ExactCounter) N() uint64 { return c.n }

// Freq exposes the exact frequency vector (for tests and the plugin
// entropy path). Callers must not mutate it.
func (c *ExactCounter) Freq() stream.Freq { return c.counts }

// SpaceBytes returns the approximate memory footprint.
func (c *ExactCounter) SpaceBytes() int { return 16 * len(c.counts) }

// CollisionCounter is the estimator-facing abstraction Algorithm 1
// consumes: something that observes the sampled stream and can produce an
// estimate of C_ℓ(L) for each ℓ. Both ExactCounter and Estimator satisfy
// it; the space/accuracy tradeoff is the caller's choice.
type CollisionCounter interface {
	Observe(it stream.Item)
	EstimateCollisions(l int) float64
	SpaceBytes() int
}

var (
	_ CollisionCounter = (*ExactCounter)(nil)
	_ CollisionCounter = (*Estimator)(nil)
)
