// Package levelset implements the machinery Algorithm 1 uses to estimate
// collision counts C_ℓ(L) on the sampled stream: an Indyk–Woodruff-style
// estimator of the geometric level-set sizes
//
//	S_i = { j : η(1+ε')^i ≤ g_j < η(1+ε')^(i+1) }
//
// (Theorem 2 of the paper), plus an exact collision counter used as the
// unlimited-space reference.
//
// The estimator substitutes the black box of Indyk–Woodruff [27] with its
// standard practical rendering, a heavy/light decomposition:
//
//   - Heavy part: a SpaceSaving summary with B counters tracks the
//     frequent items of L deterministically. Counters whose certified
//     relative error is below ε' form the heavy set H; their frequencies
//     are known to within (1±ε'), exactly the accuracy Theorem 2 promises
//     for "contributing" level sets, which are always frequency-heavy
//     (Lemma 6 shows contributing sets satisfy an F₂-heaviness bound).
//
//   - Light part: geometric universe sub-sampling. A pairwise-independent
//     hash assigns each universe element a level ≥ t with probability
//     2^(−t); each repetition tracks exact frequencies of items at or
//     above an adaptive threshold T, raising T (and evicting) whenever
//     the tracked set exceeds B. Because T only rises and an item's level
//     is fixed by its hash, every item at level ≥ final T was tracked for
//     its whole lifetime, so its frequency in L is exact. Light level-set
//     sizes are estimated by s̃_i = 2^T·|{tracked j ∉ H : g_j ∈ band i}|,
//     medianed across repetitions — the median also enforces the
//     "never grossly overestimates" property (s̃_i ≤ 3|S_i| w.h.p.) that
//     Lemma 7's Case I relies on.
//
// H membership is decided by item identity, so the heavy and light parts
// partition the support of g: no item is counted twice and none is lost
// to classification disagreements near the heaviness threshold.
package levelset

import (
	"math"
	"math/bits"
	"sort"

	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// maxLevel caps the universe-sampling depth; 2^60 exceeds any plausible
// distinct count.
const maxLevel = 60

// Estimator estimates level-set sizes and collision counts of the stream
// it observes. Feed it the *sampled* stream L; its estimates concern g,
// the frequency vector of L.
type Estimator struct {
	epsPrime float64 // band growth ε′ (paper: ε_{ℓ−1}/4)
	eta      float64 // random band offset η ∈ (0, 1]
	budget   int     // max tracked items per structure
	heavy    *sketch.SpaceSaving
	reps     []*repState
}

// repState is one independent repetition of the universe-sampling
// structure.
type repState struct {
	hash   rng.Hash2
	counts map[stream.Item]trackedItem
	T      int // current threshold level
	budget int
}

type trackedItem struct {
	level uint8
	count uint64
}

// Config configures an Estimator.
type Config struct {
	// EpsPrime is the band growth factor ε′ > 0; bands are
	// [η(1+ε′)^i, η(1+ε′)^(i+1)).
	EpsPrime float64
	// Budget is the maximum number of items tracked by the heavy summary
	// and by each light repetition. Larger budgets certify more heavy
	// items and keep lower sampling levels alive. This is the paper's
	// Õ(p⁻¹m^(1−2/k)) knob.
	Budget int
	// Reps is the number of independent light repetitions medianed per
	// band; odd values ≥ 3 give the no-gross-overestimate guarantee.
	// Default 5.
	Reps int
}

// New builds a level-set estimator. It panics on non-positive EpsPrime or
// Budget.
func New(cfg Config, r *rng.Xoshiro256) *Estimator {
	if cfg.EpsPrime <= 0 {
		panic("levelset: EpsPrime must be positive")
	}
	if cfg.Budget < 1 {
		panic("levelset: Budget must be >= 1")
	}
	reps := cfg.Reps
	if reps < 1 {
		reps = 5
	}
	e := &Estimator{
		epsPrime: cfg.EpsPrime,
		eta:      r.Float64Open(),
		budget:   cfg.Budget,
		heavy:    sketch.NewSpaceSaving(cfg.Budget),
		reps:     make([]*repState, reps),
	}
	for i := range e.reps {
		e.reps[i] = &repState{
			hash:   rng.NewHash2(r),
			counts: make(map[stream.Item]trackedItem),
			budget: cfg.Budget,
		}
	}
	return e
}

// levelOf maps an item to its sampling level: Pr[level ≥ t] = 2^(−t).
func (rs *repState) levelOf(it stream.Item) int {
	h := rs.hash.Hash(uint64(it)) // uniform in [0, 2^61−1)
	if h == 0 {
		return maxLevel
	}
	lvl := 61 - bits.Len64(h)
	if lvl > maxLevel {
		lvl = maxLevel
	}
	return lvl
}

// Observe feeds one element of the sampled stream.
func (e *Estimator) Observe(it stream.Item) {
	e.heavy.Observe(it)
	for _, rs := range e.reps {
		rs.observe(it)
	}
}

func (rs *repState) observe(it stream.Item) {
	if tracked, ok := rs.counts[it]; ok {
		tracked.count++
		rs.counts[it] = tracked
		return
	}
	lvl := rs.levelOf(it)
	if lvl < rs.T {
		return
	}
	rs.counts[it] = trackedItem{level: uint8(lvl), count: 1}
	// Raise the threshold and evict until the tracked set fits the budget.
	for len(rs.counts) > rs.budget {
		rs.T++
		for key, tr := range rs.counts {
			if int(tr.level) < rs.T {
				delete(rs.counts, key)
			}
		}
		if rs.T >= maxLevel {
			break
		}
	}
}

// heavySet returns the certified heavy items: SpaceSaving counters whose
// error interval is within a (1+ε') relative factor. The returned map
// gives each heavy item its certified frequency lower bound count−err
// (which is within (1±ε') of the true g).
func (e *Estimator) heavySet() map[stream.Item]float64 {
	h := make(map[stream.Item]float64)
	for _, c := range e.heavy.Counters() {
		low := float64(c.Count - c.Err)
		if low <= 0 {
			continue
		}
		if float64(c.Err) <= e.epsPrime*low {
			h[c.Item] = low
		}
	}
	return h
}

// BandStats describes one estimated level set.
type BandStats struct {
	// Band is the index i of the level set.
	Band int
	// Rep is the representative frequency η(1+ε′)^i (the band's lower
	// edge), at which collision contributions are evaluated.
	Rep float64
	// Size is the estimate s̃_i of |S_i| (heavy members counted exactly,
	// light members via the median-of-reps universe-sampling estimate).
	Size float64
}

// bandOf returns the band index of a frequency g ≥ 1 under offset eta and
// growth 1+ε′: the unique i with η(1+ε′)^i ≤ g < η(1+ε′)^(i+1).
func (e *Estimator) bandOf(g float64) int {
	i := int(math.Floor(math.Log(g/e.eta) / math.Log1p(e.epsPrime)))
	if i < 0 {
		i = 0
	}
	return i
}

// repValue returns the representative frequency of band i.
func (e *Estimator) repValue(i int) float64 {
	return e.eta * math.Pow(1+e.epsPrime, float64(i))
}

// Bands returns the estimated level sets with non-zero size estimates,
// sorted by band index.
func (e *Estimator) Bands() []BandStats {
	heavy := e.heavySet()
	bandSet := make(map[int]struct{})

	heavyBands := make(map[int]float64)
	for _, g := range heavy {
		b := e.bandOf(g)
		heavyBands[b]++
		bandSet[b] = struct{}{}
	}

	perRep := make([]map[int]float64, len(e.reps))
	for ri, rs := range e.reps {
		m := make(map[int]float64)
		scale := math.Pow(2, float64(rs.T))
		for it, tr := range rs.counts {
			if _, isHeavy := heavy[it]; isHeavy {
				continue
			}
			b := e.bandOf(float64(tr.count))
			m[b] += scale
			bandSet[b] = struct{}{}
		}
		perRep[ri] = m
	}

	out := make([]BandStats, 0, len(bandSet))
	vals := make([]float64, len(e.reps))
	for b := range bandSet {
		for ri := range e.reps {
			vals[ri] = perRep[ri][b]
		}
		size := heavyBands[b] + median(vals)
		if size > 0 {
			out = append(out, BandStats{Band: b, Rep: e.repValue(b), Size: size})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Band < out[j].Band })
	return out
}

// median sorts vals in place and returns the median.
func median(vals []float64) float64 {
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}

// EstimateCollisions returns the paper's band-sum estimate
// C̃_ℓ = Σ_i s̃_i · C(η(1+ε′)^i, ℓ) for the observed stream (Section 3.1).
func (e *Estimator) EstimateCollisions(l int) float64 {
	if l < 1 {
		panic("levelset: collision order must be >= 1")
	}
	var total float64
	for _, b := range e.Bands() {
		total += b.Size * stream.BinomialCoeffFloat(b.Rep, l)
	}
	return total
}

// DirectEstimateCollisions returns the heavy/light estimate without band
// discretization: Σ_{j∈H} C(ĝ_j, ℓ) plus the median over reps of
// 2^T·Σ_{tracked j∉H} C(g_j, ℓ). It is not part of the paper's algorithm
// (which needs the banded form for its analysis) but is the natural
// practical alternative; the E10 ablation compares the two.
func (e *Estimator) DirectEstimateCollisions(l int) float64 {
	if l < 1 {
		panic("levelset: collision order must be >= 1")
	}
	heavy := e.heavySet()
	var heavySum float64
	for _, g := range heavy {
		heavySum += stream.BinomialCoeffFloat(g, l)
	}
	vals := make([]float64, len(e.reps))
	for ri, rs := range e.reps {
		scale := math.Pow(2, float64(rs.T))
		var sum float64
		for it, tr := range rs.counts {
			if _, isHeavy := heavy[it]; isHeavy {
				continue
			}
			sum += stream.BinomialCoeff(tr.count, l)
		}
		vals[ri] = scale * sum
	}
	return heavySum + median(vals)
}

// HeavyCount reports how many items are currently certified heavy, for
// diagnostics and tests.
func (e *Estimator) HeavyCount() int { return len(e.heavySet()) }

// ThresholdLevels reports each repetition's final threshold T; T = 0
// means the repetition tracked every distinct item it saw (exact mode).
func (e *Estimator) ThresholdLevels() []int {
	out := make([]int, len(e.reps))
	for i, rs := range e.reps {
		out[i] = rs.T
	}
	return out
}

// SpaceBytes returns the approximate memory footprint.
func (e *Estimator) SpaceBytes() int {
	total := e.heavy.SpaceBytes()
	for _, rs := range e.reps {
		total += 32*len(rs.counts) + 64
	}
	return total
}
