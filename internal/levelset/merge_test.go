package levelset

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
	"substream/internal/workload"
)

func splitStream(n int, seed uint64, shards int) []stream.Slice {
	s := stream.Collect(workload.Zipf(n, 1500, 1.2, seed).Stream)
	parts := make([]stream.Slice, shards)
	for i, it := range s {
		parts[i%shards] = append(parts[i%shards], it)
	}
	return parts
}

func TestExactCounterMerge(t *testing.T) {
	parts := splitStream(40_000, 3, 4)
	single := NewExactCounter()
	merged := NewExactCounter()
	shards := make([]*ExactCounter, len(parts))
	for i, part := range parts {
		shards[i] = NewExactCounter()
		shards[i].UpdateBatch(part)
		for _, it := range part {
			single.Observe(it)
		}
	}
	for _, sh := range shards {
		if err := merged.MergeCounter(sh); err != nil {
			t.Fatal(err)
		}
	}
	for l := 2; l <= 4; l++ {
		if s, m := single.EstimateCollisions(l), merged.EstimateCollisions(l); s != m {
			t.Fatalf("C_%d: single %.0f vs merged %.0f", l, s, m)
		}
	}
	if single.N() != merged.N() {
		t.Fatalf("N %d vs %d", single.N(), merged.N())
	}
}

// TestEstimatorMergeExactRegime: with budget above the distinct count no
// eviction ever happens (heavy part exact, light thresholds zero), so the
// sharded-then-merged estimator must agree with the single one exactly.
func TestEstimatorMergeExactRegime(t *testing.T) {
	parts := splitStream(40_000, 5, 4)
	mk := func() *Estimator {
		return New(Config{EpsPrime: 0.05, Budget: 4096}, rng.New(11))
	}
	single := mk()
	merged := mk()
	rest := make([]*Estimator, 0, len(parts)-1)
	for i, part := range parts {
		if i == 0 {
			merged.UpdateBatch(part)
		} else {
			sh := mk()
			sh.UpdateBatch(part)
			rest = append(rest, sh)
		}
		for _, it := range part {
			single.Observe(it)
		}
	}
	for _, sh := range rest {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	for l := 2; l <= 3; l++ {
		s, m := single.EstimateCollisions(l), merged.EstimateCollisions(l)
		if diff := math.Abs(s - m); diff > 1e-6*math.Max(s, 1) {
			t.Fatalf("C_%d: single %.6g vs merged %.6g", l, s, m)
		}
	}
	for _, T := range merged.ThresholdLevels() {
		if T != 0 {
			t.Fatalf("unexpected threshold raise in exact regime: %v", merged.ThresholdLevels())
		}
	}
}

// TestEstimatorMergeTightBudget: under eviction pressure the merge is
// approximate; it must stay a sane estimate of the true collision count.
func TestEstimatorMergeTightBudget(t *testing.T) {
	parts := splitStream(60_000, 9, 4)
	exact := NewExactCounter()
	mk := func() *Estimator {
		return New(Config{EpsPrime: 0.05, Budget: 256}, rng.New(13))
	}
	merged := mk()
	for i, part := range parts {
		exact.UpdateBatch(part)
		if i == 0 {
			merged.UpdateBatch(part)
			continue
		}
		sh := mk()
		sh.UpdateBatch(part)
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	truth := exact.EstimateCollisions(2)
	got := merged.EstimateCollisions(2)
	if rel := math.Abs(got-truth) / truth; rel > 0.5 {
		t.Fatalf("tight-budget merged C_2 %.4g strays %.0f%% from exact %.4g", got, 100*rel, truth)
	}
}

func TestEstimatorMergeRejectsMismatch(t *testing.T) {
	a := New(Config{EpsPrime: 0.05, Budget: 128}, rng.New(1))
	if err := a.Merge(New(Config{EpsPrime: 0.06, Budget: 128}, rng.New(1))); err == nil {
		t.Fatal("expected eps mismatch to fail")
	}
	if err := a.Merge(New(Config{EpsPrime: 0.05, Budget: 128}, rng.New(2))); err == nil {
		t.Fatal("expected seed mismatch to fail")
	}
	if err := a.MergeCounter(NewExactCounter()); err == nil {
		t.Fatal("expected cross-type merge to fail")
	}
}

func TestIWEstimatorMerge(t *testing.T) {
	parts := splitStream(40_000, 15, 4)
	exact := NewExactCounter()
	mk := func() *IWEstimator {
		return NewIW(IWConfig{EpsPrime: 0.1, Width: 2048, Depth: 5}, rng.New(17))
	}
	merged := mk()
	for i, part := range parts {
		exact.UpdateBatch(part)
		if i == 0 {
			merged.UpdateBatch(part)
			continue
		}
		sh := mk()
		sh.UpdateBatch(part)
		if err := merged.MergeCounter(sh); err != nil {
			t.Fatal(err)
		}
	}
	truth := exact.EstimateCollisions(2)
	got := merged.EstimateCollisions(2)
	if rel := math.Abs(got-truth) / truth; rel > 0.6 {
		t.Fatalf("IW merged C_2 %.4g strays %.0f%% from exact %.4g", got, 100*rel, truth)
	}
	if err := merged.Merge(NewIW(IWConfig{EpsPrime: 0.1, Width: 2048, Depth: 5}, rng.New(18))); err == nil {
		t.Fatal("expected seed mismatch to fail")
	}
}
