package levelset

import (
	"fmt"

	"substream/internal/sketch"
	"substream/internal/stream"
)

// This file makes the collision counters mergeable and batchable, which
// is what lets Algorithm 1 run sharded: Bernoulli sampling commutes with
// partitioning the stream, so per-shard counters over disjoint substreams
// of L can be folded into one counter whose estimates concern all of L.
// As with the sketches, mergeability requires both sides to be built from
// generators at identical state (seed both constructors identically);
// hash agreement is verified with probe keys rather than trusted.

// mergeProbes are fixed keys used to verify two estimators share
// universe-sampling hash functions.
var mergeProbes = [4]uint64{0x9e3779b97f4a7c15, 1, 1 << 40, 0xdeadbeef}

// MergeableCounter is a CollisionCounter that can fold another counter of
// the same concrete type into itself. All three counters in this package
// satisfy it; core.FkEstimator.Merge discovers it dynamically.
type MergeableCounter interface {
	CollisionCounter
	MergeCounter(other CollisionCounter) error
}

// BatchCounter is a CollisionCounter with a batched update path.
type BatchCounter interface {
	CollisionCounter
	UpdateBatch(items []stream.Item)
}

// Merge folds other into c. Exact counters over disjoint substreams merge
// exactly: frequency vectors add.
func (c *ExactCounter) Merge(other *ExactCounter) error {
	for it, cnt := range other.counts {
		c.counts[it] += cnt
	}
	c.n += other.n
	return nil
}

// MergeCounter implements MergeableCounter.
func (c *ExactCounter) MergeCounter(other CollisionCounter) error {
	o, ok := other.(*ExactCounter)
	if !ok {
		return fmt.Errorf("%w: ExactCounter vs %T", sketch.ErrIncompatible, other)
	}
	return c.Merge(o)
}

// UpdateBatch feeds every item in items.
func (c *ExactCounter) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		c.counts[it]++
	}
	c.n += uint64(len(items))
}

// Merge folds other into e. Both sides must be constructed from identical
// generator state (same ε′, budget, repetition count, band offset η, and
// universe hashes).
//
// The merge is sound shard-by-shard: the heavy SpaceSaving summaries
// merge with the standard bounded-error rule, and each light repetition
// merges exactly. For the light part, an item's sampling level is fixed
// by its (shared) hash, and each side's tracked count is its exact
// frequency in that side's substream. Taking T = max(T_a, T_b) and
// dropping items below it leaves only items that were tracked for their
// whole lifetime on *both* sides — a tracked item absent from the other
// side's map either never appeared there (contributing zero) or sits
// below the merged threshold (and is dropped) — so surviving counts add
// exactly, and the merged repetition is the state a single monitor with
// threshold T would have reached over the concatenated substream.
func (e *Estimator) Merge(other *Estimator) error {
	if e.epsPrime != other.epsPrime || e.budget != other.budget || len(e.reps) != len(other.reps) {
		return fmt.Errorf("%w: levelset shape (eps'=%g,budget=%d,reps=%d) vs (eps'=%g,budget=%d,reps=%d)",
			sketch.ErrIncompatible, e.epsPrime, e.budget, len(e.reps),
			other.epsPrime, other.budget, len(other.reps))
	}
	if e.eta != other.eta {
		return fmt.Errorf("%w: levelset band offsets differ", sketch.ErrIncompatible)
	}
	for i := range e.reps {
		for _, probe := range mergeProbes {
			if e.reps[i].hash.Hash(probe) != other.reps[i].hash.Hash(probe) {
				return fmt.Errorf("%w: levelset universe hashes differ (rep %d)", sketch.ErrIncompatible, i)
			}
		}
	}
	if err := e.heavy.Merge(other.heavy); err != nil {
		return err
	}
	for i := range e.reps {
		e.reps[i].merge(other.reps[i])
	}
	return nil
}

func (rs *repState) merge(os *repState) {
	if os.T > rs.T {
		rs.T = os.T
		for it, tr := range rs.counts {
			if int(tr.level) < rs.T {
				delete(rs.counts, it)
			}
		}
	}
	for it, tr := range os.counts {
		if int(tr.level) < rs.T {
			continue
		}
		if mine, ok := rs.counts[it]; ok {
			mine.count += tr.count
			rs.counts[it] = mine
		} else {
			rs.counts[it] = tr
		}
	}
	for len(rs.counts) > rs.budget && rs.T < maxLevel {
		rs.T++
		for it, tr := range rs.counts {
			if int(tr.level) < rs.T {
				delete(rs.counts, it)
			}
		}
	}
}

// MergeCounter implements MergeableCounter.
func (e *Estimator) MergeCounter(other CollisionCounter) error {
	o, ok := other.(*Estimator)
	if !ok {
		return fmt.Errorf("%w: levelset Estimator vs %T", sketch.ErrIncompatible, other)
	}
	return e.Merge(o)
}

// UpdateBatch feeds every item in items: the heavy summary first, then
// each repetition scans the whole batch, keeping one map hot at a time.
func (e *Estimator) UpdateBatch(items []stream.Item) {
	e.heavy.UpdateBatch(items)
	for _, rs := range e.reps {
		for _, it := range items {
			rs.observe(it)
		}
	}
}

// Merge folds other into e. Both sides must share shape, band offset, and
// all hash functions (construct from identical generator state). Level
// CountSketches merge exactly (linearity); candidate sets merge by
// re-querying the merged sketch for the union of candidates.
func (e *IWEstimator) Merge(other *IWEstimator) error {
	if e.epsPrime != other.epsPrime || len(e.levels) != len(other.levels) {
		return fmt.Errorf("%w: IW shape (eps'=%g,levels=%d) vs (eps'=%g,levels=%d)",
			sketch.ErrIncompatible, e.epsPrime, len(e.levels), other.epsPrime, len(other.levels))
	}
	if e.eta != other.eta {
		return fmt.Errorf("%w: IW band offsets differ", sketch.ErrIncompatible)
	}
	for _, probe := range mergeProbes {
		if e.universe.Hash(probe) != other.universe.Hash(probe) {
			return fmt.Errorf("%w: IW universe hashes differ", sketch.ErrIncompatible)
		}
	}
	for t := range e.levels {
		if err := e.levels[t].cs.Merge(other.levels[t].cs); err != nil {
			return err
		}
	}
	for t := range e.levels {
		lvl := &e.levels[t]
		lvl.count += other.levels[t].count
		for _, c := range other.levels[t].cands.Items() {
			if est := lvl.cs.Estimate(c.Item); est > 0 {
				lvl.cands.Update(c.Item, float64(est))
			}
		}
		for _, c := range lvl.cands.Items() {
			if est := lvl.cs.Estimate(c.Item); est > 0 {
				lvl.cands.Update(c.Item, float64(est))
			}
		}
	}
	e.nL += other.nL
	return nil
}

// MergeCounter implements MergeableCounter.
func (e *IWEstimator) MergeCounter(other CollisionCounter) error {
	o, ok := other.(*IWEstimator)
	if !ok {
		return fmt.Errorf("%w: IWEstimator vs %T", sketch.ErrIncompatible, other)
	}
	return e.Merge(o)
}

// UpdateBatch feeds every item in items with the per-item Observe body
// inlined and the level array hoisted. The candidate re-score depends on
// each level's sketch state at the item's own observation, so the
// level/item loops cannot be reordered (bit-equivalence with Observe);
// the batch win here comes from the flat universe/bucket/sign kernels
// inside levelOf and the per-level CountSketch.
func (e *IWEstimator) UpdateBatch(items []stream.Item) {
	levels := e.levels
	for _, it := range items {
		deepest := e.levelOf(it)
		for t := 0; t <= deepest; t++ {
			lvl := &levels[t]
			lvl.count++
			lvl.cs.Observe(it)
			if est := lvl.cs.Estimate(it); est > 0 {
				lvl.cands.Update(it, float64(est))
			}
		}
	}
	e.nL += uint64(len(items))
}

var (
	_ MergeableCounter = (*ExactCounter)(nil)
	_ MergeableCounter = (*Estimator)(nil)
	_ MergeableCounter = (*IWEstimator)(nil)
	_ BatchCounter     = (*ExactCounter)(nil)
	_ BatchCounter     = (*Estimator)(nil)
	_ BatchCounter     = (*IWEstimator)(nil)
)
