package pipeline

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"substream/internal/rng"
	"substream/internal/stream"
)

// Observer is the minimal per-item ingestion interface; every estimator
// in internal/core, internal/sketch, and internal/levelset satisfies it,
// as does the interface type of the internal/estimator registry.
type Observer interface {
	Observe(it stream.Item)
}

// BatchObserver is the batched fast path; shard workers prefer it over
// Observer when the replica type provides it.
type BatchObserver interface {
	UpdateBatch(items []stream.Item)
}

// WeightedObserver is the per-item ingestion interface of replicas that
// consume (key, weight) items natively — mirrors estimator.Weighted
// without importing it (pipeline stays estimator-agnostic).
type WeightedObserver interface {
	ObserveWeighted(it stream.Item, weight float64)
}

// WeightedBatchObserver is the batched weighted fast path.
type WeightedBatchObserver interface {
	UpdateWeightedBatch(items []stream.WItem)
}

// Mergeable is satisfied by estimator types that can fold a structurally
// identical replica into themselves — the contract MergeAll reduces over.
// Concrete estimators satisfy Mergeable[*T] with their typed Merge;
// estimator.Estimator satisfies Mergeable[estimator.Estimator] directly,
// so registry-built replicas flow through MergeAll with no adaptation.
type Mergeable[E any] interface {
	Merge(other E) error
}

// Config shapes a Pipeline.
type Config struct {
	// Shards is the number of workers (and estimator replicas).
	// Default runtime.GOMAXPROCS(0).
	Shards int
	// BatchSize is the number of items handed to a worker at once.
	// Larger batches amortize channel and dispatch overhead; smaller
	// ones bound merge-time staleness. Default 1024.
	BatchSize int
	// QueueDepth is the number of batches buffered per shard ring
	// before the feeder blocks (backpressure). Rounded up to a power of
	// two. Default 8.
	QueueDepth int
	// SampleP, when positive, makes the pipeline ingest the ORIGINAL
	// stream: each worker Bernoulli-samples its shard at this rate
	// before updating its replica, using an independent generator
	// derived from Seed. When zero, the fed stream is assumed to be the
	// (already sampled) stream the estimators expect.
	SampleP float64
	// Seed derives the per-worker sampling generators. Default 1.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// batchMsg is one unit of work, carrying either an unweighted or a
// weighted batch (witems non-nil selects the weighted lane). Pooled
// buffers are recycled by the worker after application; caller-owned
// slices (zero-copy FeedSlice path) are not touched; FeedOwned messages
// carry the release callback the worker invokes once the items have been
// applied. A message with a non-nil ack is a synchronization barrier:
// the worker acknowledges and applies nothing.
type batchMsg struct {
	items   []stream.Item
	witems  []stream.WItem
	pooled  bool
	release func()
	ack     chan<- struct{}
}

// keptCell is one shard's post-sampling item count and weight, padded to
// a cache line so adjacent shard workers' per-batch increments never
// share (and so never invalidate) one line — the false-sharing fix the
// flat []atomic.Uint64 layout was vulnerable to. The weight lives as
// float64 bits under the single-writer discipline: only the owning
// worker stores it, so a plain load-add-store is race-free.
type keptCell struct {
	n atomic.Uint64
	w atomic.Uint64 // kept weight, float64 bits
	_ [48]byte
}

func (c *keptCell) addWeight(d float64) {
	c.w.Store(math.Float64bits(math.Float64frombits(c.w.Load()) + d))
}

// Pipeline fans a single feed out to per-shard estimator replicas of type
// E. Feeding is single-producer; Close (or Reduce/MergeAll) must be
// called exactly once to stop the workers and collect the replicas.
type Pipeline[E any] struct {
	cfg    Config
	shards []E
	rings  []*spscRing
	wg     sync.WaitGroup
	pool   sync.Pool
	wpool  sync.Pool
	buf    []stream.Item
	wbuf   []stream.WItem // weighted batch buffer, nil until first weighted feed
	next   int            // round-robin cursor
	fed    uint64         // items fed by the producer
	fedW   float64        // weight fed by the producer (1 per unweighted item)
	kept   []keptCell
	acks   chan struct{} // reusable Sync barrier (single-producer ⇒ no overlap)
	closed bool

	// Producer-side instrumentation, guarded by the same single-producer
	// discipline as fed: batches dispatched, Sync rounds, and cumulative
	// time the producer spent parked in Sync waiting for shard acks.
	batches  uint64
	syncs    uint64
	syncWait time.Duration
}

// New builds a pipeline whose shard replicas are produced by newShard
// (called once per shard with the shard index). The replica type must
// implement BatchObserver or Observer; New panics otherwise. For the
// replicas to be mergeable afterwards, newShard must build every replica
// from identical configuration and generator state.
func New[E any](cfg Config, newShard func(shard int) E) *Pipeline[E] {
	cfg = cfg.withDefaults()
	p := &Pipeline[E]{
		cfg:    cfg,
		shards: make([]E, cfg.Shards),
		rings:  make([]*spscRing, cfg.Shards),
		kept:   make([]keptCell, cfg.Shards),
		acks:   make(chan struct{}, cfg.Shards),
	}
	p.pool.New = func() any { return make([]stream.Item, 0, cfg.BatchSize) }
	p.wpool.New = func() any { return make([]stream.WItem, 0, cfg.BatchSize) }
	p.buf = p.pool.Get().([]stream.Item)

	master := rng.New(cfg.Seed)
	for i := 0; i < cfg.Shards; i++ {
		p.shards[i] = newShard(i)
		apply := applyFunc(p.shards[i])
		applyW := applyWeightedFunc(p.shards[i], apply)
		p.rings[i] = newSPSCRing(cfg.QueueDepth)

		var coins *rng.Xoshiro256
		if cfg.SampleP > 0 {
			coins = master.Split()
		}
		p.wg.Add(1)
		go p.work(i, p.rings[i], apply, applyW, coins)
	}
	return p
}

// applyFunc resolves the per-batch application path for a replica.
func applyFunc(e any) func([]stream.Item) {
	switch x := e.(type) {
	case BatchObserver:
		return x.UpdateBatch
	case Observer:
		return func(items []stream.Item) {
			for _, it := range items {
				x.Observe(it)
			}
		}
	default:
		panic(fmt.Sprintf("pipeline: replica type %T implements neither BatchObserver nor Observer", e))
	}
}

// applyWeightedFunc resolves the weighted application path for a
// replica: its native weighted interface when it (or the concrete value
// behind an Unwrap chain, e.g. an estimator-registry adapter) has one,
// otherwise the degenerate projection — every weighted item is observed
// once as its bare key through the unweighted path, which is exactly the
// weight-1 semantics and loses only the extra mass of heavier items.
func applyWeightedFunc(e any, plain func([]stream.Item)) func([]stream.WItem) {
	probe := e
	for {
		switch x := probe.(type) {
		case WeightedBatchObserver:
			return x.UpdateWeightedBatch
		case WeightedObserver:
			return func(items []stream.WItem) {
				for _, it := range items {
					x.ObserveWeighted(it.Key, it.Weight)
				}
			}
		}
		u, ok := probe.(interface{ Unwrap() any })
		if !ok {
			break
		}
		probe = u.Unwrap()
	}
	var keys []stream.Item
	return func(items []stream.WItem) {
		keys = keys[:0]
		for _, it := range items {
			keys = append(keys, it.Key)
		}
		plain(keys)
	}
}

// work is one shard worker: it owns its replica exclusively until Close
// returns, so no locking is needed around estimator state.
func (p *Pipeline[E]) work(shard int, r *spscRing, apply func([]stream.Item), applyW func([]stream.WItem), coins *rng.Xoshiro256) {
	defer p.wg.Done()
	var scratch []stream.Item
	var wscratch []stream.WItem // allocated on the first sampled weighted batch
	var sampler bernoulliSampler
	if coins != nil {
		scratch = make([]stream.Item, 0, p.cfg.BatchSize)
		sampler.init(p.cfg.SampleP, coins)
	}
	for {
		msg, ok := r.pop()
		if !ok {
			return
		}
		if msg.ack != nil {
			msg.ack <- struct{}{}
			continue
		}
		if msg.witems != nil {
			items := msg.witems
			if coins != nil {
				wscratch = sampler.filterW(wscratch[:0], items)
				items = wscratch
			}
			p.kept[shard].n.Add(uint64(len(items)))
			var kw float64
			for _, it := range items {
				kw += it.Weight
			}
			p.kept[shard].addWeight(kw)
			if len(items) > 0 {
				applyW(items)
			}
			if msg.pooled {
				p.wpool.Put(msg.witems[:0])
			} else if msg.release != nil {
				msg.release()
			}
			continue
		}
		items := msg.items
		if coins != nil {
			scratch = sampler.filter(scratch[:0], items)
			items = scratch
		}
		p.kept[shard].n.Add(uint64(len(items)))
		p.kept[shard].addWeight(float64(len(items)))
		if len(items) > 0 {
			apply(items)
		}
		if msg.pooled {
			p.pool.Put(msg.items[:0])
		} else if msg.release != nil {
			// FeedOwned contract: the buffer returns to its owner only
			// after the batch is fully applied, never before.
			msg.release()
		}
	}
}

// bernoulliSampler filters a stream down to a Bernoulli(p) sample by
// drawing geometric inter-arrival gaps instead of flipping one coin per
// item: the number of rejections before the next acceptance is
// Geometric(p), sampled by inversion as floor(ln U / ln(1−p)). The
// sampled processes are identically distributed, but the generator is
// consulted O(p·n) times instead of O(n) — at the daemon's default
// p = 0.05 that removes 95% of the per-item sampling work, which
// profiles as the largest single cost of the ingest hot path.
type bernoulliSampler struct {
	coins     *rng.Xoshiro256
	invLog1mP float64 // 1 / ln(1−p), negative
	skip      uint64  // items still to reject before the next acceptance
	all       bool    // p >= 1: keep everything
}

func (s *bernoulliSampler) init(p float64, coins *rng.Xoshiro256) {
	s.coins = coins
	if p >= 1 {
		s.all = true
		return
	}
	s.invLog1mP = 1 / math.Log1p(-p)
	s.skip = s.gap()
}

// gap draws one geometric rejection run length.
func (s *bernoulliSampler) gap() uint64 {
	// Float64Open is in (0, 1], so the log is finite and ≤ 0; the cast
	// floors. Clamp astronomically long runs to keep the uint64 sane.
	g := math.Log(s.coins.Float64Open()) * s.invLog1mP
	if g >= 1<<62 {
		return 1 << 62
	}
	return uint64(g)
}

// filter appends the sampled subsequence of items to dst, carrying the
// current rejection run across batch boundaries.
func (s *bernoulliSampler) filter(dst, items []stream.Item) []stream.Item {
	if s.all {
		return append(dst, items...)
	}
	n := uint64(len(items))
	for s.skip < n {
		dst = append(dst, items[s.skip])
		s.skip += 1 + s.gap()
	}
	s.skip -= n
	return dst
}

// filterW is filter over a weighted batch: the same Bernoulli process on
// items (weights ride along untouched — the sampled substream keeps each
// survivor's true weight), sharing the rejection-run state so weighted
// and unweighted batches interleave under one coin sequence. A pipeline
// that never feeds weighted batches consumes coins exactly as before.
func (s *bernoulliSampler) filterW(dst, items []stream.WItem) []stream.WItem {
	if s.all {
		return append(dst, items...)
	}
	n := uint64(len(items))
	for s.skip < n {
		dst = append(dst, items[s.skip])
		s.skip += 1 + s.gap()
	}
	s.skip -= n
	return dst
}

// dispatch hands one batch to the next shard round-robin.
func (p *Pipeline[E]) dispatch(msg batchMsg) {
	p.batches++
	p.rings[p.next].push(msg)
	p.next++
	if p.next == len(p.rings) {
		p.next = 0
	}
}

// Feed ingests one item. It buffers into the current batch and dispatches
// when the batch fills.
func (p *Pipeline[E]) Feed(it stream.Item) {
	if p.closed {
		panic("pipeline: Feed after Close")
	}
	if len(p.wbuf) > 0 {
		p.flushWeighted()
	}
	p.fed++
	p.fedW++
	p.buf = append(p.buf, it)
	if len(p.buf) == p.cfg.BatchSize {
		p.dispatch(batchMsg{items: p.buf, pooled: true})
		p.buf = p.pool.Get().([]stream.Item)
	}
}

// FeedWeighted ingests one weighted item, buffering into the current
// weighted batch. The unweighted and weighted buffered lanes flush each
// other on a switch, so interleaved feeding never reorders items within
// a shard's view.
func (p *Pipeline[E]) FeedWeighted(it stream.Item, weight float64) {
	if p.closed {
		panic("pipeline: FeedWeighted after Close")
	}
	if len(p.buf) > 0 {
		p.flushPlain()
	}
	p.fed++
	p.fedW += weight
	if p.wbuf == nil {
		p.wbuf = p.wpool.Get().([]stream.WItem)
	}
	p.wbuf = append(p.wbuf, stream.WItem{Key: it, Weight: weight})
	if len(p.wbuf) == p.cfg.BatchSize {
		p.dispatch(batchMsg{witems: p.wbuf, pooled: true})
		p.wbuf = p.wpool.Get().([]stream.WItem)
	}
}

// FeedSlice ingests a materialized stream zero-copy: full batch-sized
// windows of items are dispatched as sub-slices without copying, so the
// caller must not mutate items until Close returns. The trailing partial
// window goes through the buffered Feed path.
func (p *Pipeline[E]) FeedSlice(items stream.Slice) {
	if p.closed {
		panic("pipeline: FeedSlice after Close")
	}
	b := p.cfg.BatchSize
	if len(p.wbuf) > 0 {
		p.flushWeighted()
	}
	// Flush any partial hand-fed batch first to preserve stream order
	// within each shard's view.
	i := 0
	for len(p.buf) > 0 && i < len(items) {
		p.Feed(items[i])
		i++
	}
	for ; i+b <= len(items); i += b {
		p.fed += uint64(b)
		p.fedW += float64(b)
		p.dispatch(batchMsg{items: items[i : i+b]})
	}
	for ; i < len(items); i++ {
		p.Feed(items[i])
	}
}

// FeedWeightedSlice ingests a materialized weighted stream zero-copy,
// the weighted mirror of FeedSlice: full batch-sized windows dispatch as
// sub-slices, the trailing partial window goes through FeedWeighted.
func (p *Pipeline[E]) FeedWeightedSlice(items stream.WSlice) {
	if p.closed {
		panic("pipeline: FeedWeightedSlice after Close")
	}
	b := p.cfg.BatchSize
	if len(p.buf) > 0 {
		p.flushPlain()
	}
	i := 0
	for len(p.wbuf) > 0 && i < len(items) {
		p.FeedWeighted(items[i].Key, items[i].Weight)
		i++
	}
	for ; i+b <= len(items); i += b {
		p.fed += uint64(b)
		for _, it := range items[i : i+b] {
			p.fedW += it.Weight
		}
		p.dispatch(batchMsg{witems: items[i : i+b]})
	}
	for ; i < len(items); i++ {
		p.FeedWeighted(items[i].Key, items[i].Weight)
	}
}

// FeedCopy ingests a chunk of items by bulk-copying them into the
// pipeline's pooled batch buffers (dispatching each buffer as it
// fills). Unlike FeedSlice, the caller keeps ownership of items and may
// reuse the backing array as soon as FeedCopy returns — the contract
// the daemon's pooled, streaming request decode relies on. Steady-state
// cost is one memcpy per item and zero allocations: batch buffers come
// from (and return to) the pipeline's pool.
func (p *Pipeline[E]) FeedCopy(items []stream.Item) {
	if p.closed {
		panic("pipeline: FeedCopy after Close")
	}
	if len(p.wbuf) > 0 {
		p.flushWeighted()
	}
	b := p.cfg.BatchSize
	for len(items) > 0 {
		n := b - len(p.buf)
		if n > len(items) {
			n = len(items)
		}
		p.buf = append(p.buf, items[:n]...)
		items = items[n:]
		p.fed += uint64(n)
		p.fedW += float64(n)
		if len(p.buf) == b {
			p.dispatch(batchMsg{items: p.buf, pooled: true})
			p.buf = p.pool.Get().([]stream.Item)
		}
	}
}

// FeedWeightedCopy ingests a chunk of weighted items by bulk-copying
// them into pooled weighted batch buffers — the weighted mirror of
// FeedCopy, with the same ownership contract: the caller may reuse the
// backing array as soon as the call returns.
func (p *Pipeline[E]) FeedWeightedCopy(items []stream.WItem) {
	if p.closed {
		panic("pipeline: FeedWeightedCopy after Close")
	}
	if len(p.buf) > 0 {
		p.flushPlain()
	}
	b := p.cfg.BatchSize
	for len(items) > 0 {
		if p.wbuf == nil {
			p.wbuf = p.wpool.Get().([]stream.WItem)
		}
		n := b - len(p.wbuf)
		if n > len(items) {
			n = len(items)
		}
		p.wbuf = append(p.wbuf, items[:n]...)
		for _, it := range items[:n] {
			p.fedW += it.Weight
		}
		items = items[n:]
		p.fed += uint64(n)
		if len(p.wbuf) == b {
			p.dispatch(batchMsg{witems: p.wbuf, pooled: true})
			p.wbuf = p.wpool.Get().([]stream.WItem)
		}
	}
}

// FeedOwned transfers ownership of items to the pipeline: the whole
// chunk is dispatched as a single batch (no copy, no re-slicing), and
// release — if non-nil — is invoked by the consuming shard worker
// exactly once, after the last item has been applied. Until then the
// caller must not touch the backing array; afterwards it may recycle it
// freely. This is the zero-copy hand-off the daemon's pooled request
// decode uses: chunks flow from the decoder into a shard with neither
// the FeedCopy memcpy nor a per-chunk allocation.
//
// The chunk lands on one shard, advancing the same round-robin cursor
// as batch dispatch; Bernoulli sampling commutes with any partitioning
// of the stream, so chunk-granular placement preserves the sampling
// semantics (callers control balance by their chunk size — the daemon
// decodes in chunks a few batches long). An empty chunk releases
// immediately and dispatches nothing.
func (p *Pipeline[E]) FeedOwned(items stream.Slice, release func()) {
	if p.closed {
		panic("pipeline: FeedOwned after Close")
	}
	if len(items) == 0 {
		if release != nil {
			release()
		}
		return
	}
	// Flush any partial hand-fed batch first to preserve stream order
	// within each shard's view.
	p.Flush()
	p.fed += uint64(len(items))
	p.fedW += float64(len(items))
	p.dispatch(batchMsg{items: items, release: release})
}

// FeedWeightedOwned transfers ownership of a weighted chunk to the
// pipeline, the weighted mirror of FeedOwned: one shard receives the
// whole chunk as a single batch and release — if non-nil — fires exactly
// once after the last item is applied. Chunk-granular placement is safe
// for VarOpt replicas for the merge-based reason in doc.go (not the
// commutation argument Bernoulli sampling enjoys): each shard holds a
// valid sample of whatever sub-stream it received, and the merge path
// folds shard samples into a sample of the union.
func (p *Pipeline[E]) FeedWeightedOwned(items stream.WSlice, release func()) {
	if p.closed {
		panic("pipeline: FeedWeightedOwned after Close")
	}
	if len(items) == 0 {
		if release != nil {
			release()
		}
		return
	}
	p.Flush()
	p.fed += uint64(len(items))
	for _, it := range items {
		p.fedW += it.Weight
	}
	p.dispatch(batchMsg{witems: items, release: release})
}

// FeedStream ingests every item of s through the batching Feed path.
func (p *Pipeline[E]) FeedStream(s stream.Stream) {
	_ = s.ForEach(func(it stream.Item) error {
		p.Feed(it)
		return nil
	})
}

// Flush dispatches the buffered partial batches (both lanes), if any.
func (p *Pipeline[E]) Flush() {
	if len(p.buf) > 0 {
		p.flushPlain()
	}
	if len(p.wbuf) > 0 {
		p.flushWeighted()
	}
}

func (p *Pipeline[E]) flushPlain() {
	p.dispatch(batchMsg{items: p.buf, pooled: true})
	p.buf = p.pool.Get().([]stream.Item)
}

func (p *Pipeline[E]) flushWeighted() {
	p.dispatch(batchMsg{witems: p.wbuf, pooled: true})
	p.wbuf = p.wpool.Get().([]stream.WItem)
}

// Sync flushes the buffered partial batch and blocks until every batch
// dispatched so far has been applied by its shard worker. Between Sync
// returning and the next Feed/FeedSlice/Flush call the replicas are
// quiescent — each worker is parked on an empty channel — so Replicas
// may be read (or merged into a fresh accumulator) without a data race.
// Unlike Close, the pipeline keeps accepting work afterwards; this is
// the snapshot point a long-running daemon ships summaries from.
func (p *Pipeline[E]) Sync() {
	if p.closed {
		return
	}
	p.Flush()
	start := time.Now()
	// The ack channel is allocated once at construction and reused:
	// Sync runs on the single producer goroutine, so barriers never
	// overlap and the channel is always drained on return.
	for _, r := range p.rings {
		r.push(batchMsg{ack: p.acks})
	}
	for range p.rings {
		<-p.acks
	}
	p.syncs++
	p.syncWait += time.Since(start)
}

// Replicas returns the shard replicas without stopping the workers. It
// is only safe to read (or merge from) the replicas between a Sync and
// the next feeding call, or after Close; the channel handshake in Sync
// orders every prior estimator write before the caller's reads.
func (p *Pipeline[E]) Replicas() []E { return p.shards }

// Close flushes, stops all workers, waits for every queued batch to be
// applied, and returns the shard replicas. After Close the replicas are
// exclusively owned by the caller (workers have exited), so reading or
// merging them is race-free. Close is idempotent.
func (p *Pipeline[E]) Close() []E {
	if !p.closed {
		p.Flush()
		for _, r := range p.rings {
			r.close()
		}
		p.wg.Wait()
		p.closed = true
	}
	return p.shards
}

// Reduce closes the pipeline and folds all shard replicas into the first
// one with merge, returning the merged replica.
func (p *Pipeline[E]) Reduce(merge func(dst, src E) error) (E, error) {
	shards := p.Close()
	dst := shards[0]
	for _, src := range shards[1:] {
		if err := merge(dst, src); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// Fed returns the number of items ingested by the producer so far.
func (p *Pipeline[E]) Fed() uint64 { return p.fed }

// Kept returns the number of items that reached the estimators: equal to
// Fed when SampleP is zero, the post-sampling count otherwise. It is safe
// to call while feeding (for progress reporting), in which case the value
// trails the workers; after Close it is exact.
func (p *Pipeline[E]) Kept() uint64 {
	var total uint64
	for i := range p.kept {
		total += p.kept[i].n.Load()
	}
	return total
}

// FedWeight returns the total weight ingested by the producer so far;
// unweighted items count at weight 1, so on an unweighted stream it
// equals float64(Fed()).
func (p *Pipeline[E]) FedWeight() float64 { return p.fedW }

// KeptWeight returns the total weight that reached the estimators, the
// weight analogue of Kept, with the same trailing-while-feeding caveat.
func (p *Pipeline[E]) KeptWeight() float64 {
	var total float64
	for i := range p.kept {
		total += math.Float64frombits(p.kept[i].w.Load())
	}
	return total
}

// Stats is a point-in-time instrumentation snapshot of a pipeline: the
// shape (shards, batch size, queue capacity), the producer's progress
// (items fed, batches dispatched, Sync rounds and cumulative Sync
// stall), the workers' progress (items kept post-sampling), and the
// current channel occupancy — the numbers the daemon's /metricsz gauges
// surface per stream.
type Stats struct {
	Shards    int
	BatchSize int
	QueueCap  int // per-shard ring capacity, in batches

	Fed     uint64
	Kept    uint64
	Batches uint64

	// FedWeight and KeptWeight are the weight analogues of Fed and Kept;
	// unweighted items count at weight 1.
	FedWeight  float64
	KeptWeight float64

	Syncs    uint64
	SyncWait time.Duration

	// Queued is the number of batches currently buffered across all
	// shard rings — pipeline depth; QueueCap*Shards is the ceiling
	// at which the producer blocks.
	Queued int
}

// Stats reads the snapshot. Like Feed and Fed it participates in the
// single-producer discipline: call it from the feeding goroutine or
// under whatever lock serializes feeding (the daemon holds its runner
// mutex). Queued and Kept are always safe; they read ring cursors
// and atomics.
func (p *Pipeline[E]) Stats() Stats {
	s := Stats{
		Shards:     len(p.rings),
		BatchSize:  p.cfg.BatchSize,
		QueueCap:   p.rings[0].cap(),
		Fed:        p.fed,
		Kept:       p.Kept(),
		FedWeight:  p.fedW,
		KeptWeight: p.KeptWeight(),
		Batches:    p.batches,
		Syncs:      p.syncs,
		SyncWait:   p.syncWait,
	}
	for _, r := range p.rings {
		s.Queued += r.len()
	}
	return s
}

// NumShards returns the shard count.
func (p *Pipeline[E]) NumShards() int { return len(p.rings) }

// MergeAll closes the pipeline and folds every shard replica into the
// first via the type's own Merge method.
func MergeAll[E Mergeable[E]](p *Pipeline[E]) (E, error) {
	return p.Reduce(func(dst, src E) error { return dst.Merge(src) })
}
