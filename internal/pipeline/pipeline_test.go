package pipeline

import (
	"math"
	"testing"

	"substream/internal/stream"
	"substream/internal/workload"
)

// countReplica counts items per shard through the Observe path.
type countReplica struct{ n uint64 }

func (c *countReplica) Observe(stream.Item) { c.n++ }

// batchReplica counts items through the UpdateBatch path and records the
// batch sizes it saw.
type batchReplica struct {
	n       uint64
	sum     uint64
	batches int
	maxLen  int
}

func (b *batchReplica) UpdateBatch(items []stream.Item) {
	b.n += uint64(len(items))
	b.batches++
	if len(items) > b.maxLen {
		b.maxLen = len(items)
	}
	for _, it := range items {
		b.sum += uint64(it)
	}
}

func zipfSlice(n int, seed uint64) stream.Slice {
	return stream.Collect(workload.Zipf(n, 4096, 1.2, seed).Stream)
}

func TestFeedDeliversEveryItemOnce(t *testing.T) {
	const n = 10_000
	p := New(Config{Shards: 4, BatchSize: 64}, func(int) *countReplica { return &countReplica{} })
	for i := 0; i < n; i++ {
		p.Feed(stream.Item(i%97 + 1))
	}
	shards := p.Close()
	var total uint64
	for _, s := range shards {
		total += s.n
	}
	if total != n {
		t.Fatalf("delivered %d items, want %d", total, n)
	}
	if p.Fed() != n || p.Kept() != n {
		t.Fatalf("Fed=%d Kept=%d, want %d", p.Fed(), p.Kept(), n)
	}
}

func TestFeedSliceZeroCopyAndMixedFeeding(t *testing.T) {
	const n = 9_999 // deliberately not a multiple of the batch size
	items := zipfSlice(n, 3)
	p := New(Config{Shards: 3, BatchSize: 128}, func(int) *batchReplica { return &batchReplica{} })
	p.Feed(items[0]) // partial hand-fed batch before the bulk path
	p.FeedSlice(items[1:])
	shards := p.Close()
	var total uint64
	for _, s := range shards {
		total += s.n
		if s.maxLen > 128 {
			t.Fatalf("worker saw batch of %d > BatchSize 128", s.maxLen)
		}
	}
	if total != n {
		t.Fatalf("delivered %d items, want %d", total, n)
	}
}

// TestFeedCopyDeliversAndReleasesCallerBuffer drives the copying bulk
// path: every item must arrive exactly once in BatchSize-bounded
// batches, and — the contract the daemon's pooled decode relies on —
// the caller's buffer must be safely reusable immediately after
// FeedCopy returns. Reusing (scribbling over) the chunk buffer between
// calls would corrupt delivered items if the pipeline retained it.
func TestFeedCopyDeliversAndReleasesCallerBuffer(t *testing.T) {
	const chunks, chunkLen = 300, 97 // chunk size deliberately off the batch size
	p := New(Config{Shards: 3, BatchSize: 128}, func(int) *batchReplica { return &batchReplica{} })
	sum := uint64(0)
	buf := make(stream.Slice, chunkLen)
	for c := 0; c < chunks; c++ {
		for i := range buf {
			v := uint64(c*chunkLen+i) + 1
			buf[i] = stream.Item(v)
			sum += v
		}
		p.FeedCopy(buf)
		// Scribble over the buffer immediately: the pipeline must have
		// copied, so delivered values stay intact.
		for i := range buf {
			buf[i] = ^stream.Item(0)
		}
	}
	shards := p.Close()
	var total, delivered uint64
	for _, s := range shards {
		total += s.n
		if s.maxLen > 128 {
			t.Fatalf("worker saw batch of %d > BatchSize 128", s.maxLen)
		}
		delivered += s.sum
	}
	if total != chunks*chunkLen {
		t.Fatalf("delivered %d items, want %d", total, chunks*chunkLen)
	}
	if delivered != sum {
		t.Fatalf("delivered item sum %d, want %d — pipeline retained a caller buffer", delivered, sum)
	}
	if p.Fed() != chunks*chunkLen {
		t.Fatalf("Fed() = %d, want %d", p.Fed(), chunks*chunkLen)
	}
}

// TestFeedCopyMixesWithFeedAndFeedSlice checks the copying path composes
// with the other producers without losing or duplicating the buffered
// partial batch.
func TestFeedCopyMixesWithFeedAndFeedSlice(t *testing.T) {
	items := zipfSlice(5_000, 9)
	p := New(Config{Shards: 2, BatchSize: 64}, func(int) *batchReplica { return &batchReplica{} })
	p.Feed(items[0])
	p.FeedCopy(items[1:1500])
	p.FeedSlice(items[1500:4000])
	p.FeedCopy(items[4000:])
	shards := p.Close()
	var total uint64
	for _, s := range shards {
		total += s.n
	}
	if total != uint64(len(items)) {
		t.Fatalf("delivered %d items, want %d", total, len(items))
	}
}

func TestInShardSampling(t *testing.T) {
	const (
		n = 200_000
		q = 0.1
	)
	items := zipfSlice(n, 4)
	p := New(Config{Shards: 4, BatchSize: 512, SampleP: q, Seed: 11},
		func(int) *countReplica { return &countReplica{} })
	p.FeedSlice(items)
	shards := p.Close()
	var kept uint64
	for _, s := range shards {
		kept += s.n
	}
	if kept != p.Kept() {
		t.Fatalf("Kept()=%d disagrees with shard totals %d", p.Kept(), kept)
	}
	mean := float64(n) * q
	sd := math.Sqrt(float64(n) * q * (1 - q))
	if math.Abs(float64(kept)-mean) > 6*sd {
		t.Fatalf("sampled %d items, want %.0f ± %.0f", kept, mean, 6*sd)
	}

	// Same seed → same sample; different seed → (almost surely) different.
	again := New(Config{Shards: 4, BatchSize: 512, SampleP: q, Seed: 11},
		func(int) *countReplica { return &countReplica{} })
	again.FeedSlice(items)
	again.Close()
	if again.Kept() != kept {
		t.Fatalf("same seed kept %d then %d", kept, again.Kept())
	}
	other := New(Config{Shards: 4, BatchSize: 512, SampleP: q, Seed: 12},
		func(int) *countReplica { return &countReplica{} })
	other.FeedSlice(items)
	other.Close()
	if other.Kept() == kept {
		t.Fatalf("independent seeds produced identical sample sizes %d (suspicious)", kept)
	}
}

func TestDefaultsAndCloseIdempotent(t *testing.T) {
	p := New(Config{}, func(int) *countReplica { return &countReplica{} })
	if p.NumShards() < 1 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
	p.Feed(1)
	first := p.Close()
	second := p.Close()
	if &first[0] != &second[0] {
		t.Fatal("Close not idempotent")
	}
}

func TestNewPanicsOnNonObserver(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for replica type without Observe/UpdateBatch")
		}
	}()
	New(Config{Shards: 1}, func(int) int { return 0 })
}

type mergeReplica struct {
	n      uint64
	merged int
}

func (m *mergeReplica) Observe(stream.Item) { m.n++ }
func (m *mergeReplica) Merge(other *mergeReplica) error {
	m.n += other.n
	m.merged++
	return nil
}

func TestMergeAllFoldsEveryShard(t *testing.T) {
	const n = 5_000
	p := New(Config{Shards: 4, BatchSize: 32}, func(int) *mergeReplica { return &mergeReplica{} })
	for i := 0; i < n; i++ {
		p.Feed(stream.Item(i + 1))
	}
	merged, err := MergeAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if merged.n != n {
		t.Fatalf("merged count %d, want %d", merged.n, n)
	}
	if merged.merged != 3 {
		t.Fatalf("merged %d replicas, want 3", merged.merged)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	const n = 1 << 14
	p := New(Config{Shards: 4, BatchSize: 64}, func(int) *countReplica { return &countReplica{} })
	p.FeedSlice(zipfSlice(n, 5))
	shards := p.Close()
	for i, s := range shards {
		frac := float64(s.n) / float64(n)
		if frac < 0.2 || frac > 0.3 { // perfect split is 0.25
			t.Fatalf("shard %d holds %.0f%% of the stream, want ≈25%%", i, 100*frac)
		}
	}
}

func TestSyncQuiescesWithoutStopping(t *testing.T) {
	const rounds, perRound = 5, 4_000
	p := New(Config{Shards: 4, BatchSize: 64}, func(int) *countReplica { return &countReplica{} })
	for round := 1; round <= rounds; round++ {
		for i := 0; i < perRound; i++ {
			p.Feed(stream.Item(i%89 + 1))
		}
		p.Sync()
		// Between Sync and the next Feed the replicas are quiescent: every
		// item fed so far must be visible, and feeding must still work
		// afterwards.
		var total uint64
		for _, s := range p.Replicas() {
			total += s.n
		}
		if want := uint64(round * perRound); total != want {
			t.Fatalf("round %d: replicas saw %d items, want %d", round, total, want)
		}
	}
	shards := p.Close()
	var total uint64
	for _, s := range shards {
		total += s.n
	}
	if total != rounds*perRound {
		t.Fatalf("after close: %d items, want %d", total, rounds*perRound)
	}
}

func TestSyncAfterCloseIsNoop(t *testing.T) {
	p := New(Config{Shards: 2}, func(int) *countReplica { return &countReplica{} })
	p.Feed(1)
	p.Close()
	p.Sync() // must not panic or deadlock on closed channels
}

func TestStatsSnapshot(t *testing.T) {
	p := New(Config{Shards: 2, BatchSize: 8, QueueDepth: 4},
		func(int) *countReplica { return &countReplica{} })
	for i := 0; i < 100; i++ {
		p.Feed(stream.Item(i + 1))
	}
	p.Sync()
	s := p.Stats()
	if s.Shards != 2 || s.BatchSize != 8 || s.QueueCap != 4 {
		t.Fatalf("shape: %+v", s)
	}
	if s.Fed != 100 || s.Kept != 100 {
		t.Fatalf("progress: %+v", s)
	}
	// 100 items in 8-item batches: 12 full dispatches plus the partial
	// batch Sync's Flush dispatched.
	if s.Batches != 13 {
		t.Fatalf("batches = %d, want 13", s.Batches)
	}
	if s.Syncs != 1 || s.SyncWait <= 0 {
		t.Fatalf("sync accounting: %+v", s)
	}
	// After Sync every worker has drained its channel.
	if s.Queued != 0 {
		t.Fatalf("queued = %d after Sync", s.Queued)
	}
	p.Close()
}
