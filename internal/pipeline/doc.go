// Package pipeline is the sharded, concurrent ingestion layer: it fans a
// stream of items out to N shard workers over batched channels, runs an
// independent estimator replica per shard, and merges the per-shard
// states into a single estimate on demand.
//
// # Why sharding is sound here
//
// Every estimator in this library observes a Bernoulli-sampled stream L
// and estimates a statistic of the original stream P. Bernoulli sampling
// commutes with partitioning: splitting P into substreams P₁ … P_N and
// sampling each at rate p yields substreams L₁ … L_N whose union is
// distributed exactly like a single sample L of P, because each element's
// coin flip is independent of every other element's. The paper's
// statistics (frequency moments, F₀, entropy, heavy hitters) are
// functions of the frequency vector alone, so any partitioning — the
// pipeline uses round-robin batches — preserves them. Per-shard summaries
// therefore merge into the summary a single monitor would have built:
// exactly for the linear and order-insensitive backends (CountMin,
// CountSketch, KMV, HLL, exact collision counters, plugin entropy), and
// with the standard bounded error for the counter-based ones
// (SpaceSaving, Misra–Gries). This is the same pattern distributed
// stream-monitoring systems exploit ("Boosting the Basic Counting on
// Distributed Streams"; Cohen et al.'s per-flow aggregation).
//
// The WEIGHTED lane (FeedWeighted and friends) needs a different
// argument. VarOpt reservoir sampling does NOT commute with
// partitioning: which items survive a full reservoir depends on the
// weights of the items competing for the same k slots, so shard-local
// reservoirs are not jointly distributed like one reservoir over the
// union. Sharding is sound anyway because soundness here rests on the
// MERGE, not on commutation: each shard's reservoir is a valid VarOpt
// sample of exactly the sub-stream that shard received (any split of
// the stream is fine — VarOpt makes no distributional assumption about
// its input), and the CDKLT merge procedure folds two VarOpt samples
// into a VarOpt-quality sample of the concatenated stream, preserving
// subset-sum unbiasedness. MergeAll applies that fold across shards, so
// the merged reservoir estimates the union stream with the merged
// variance bounds — slightly wider than a single sequential reservoir's
// (merging k-of-shard samples discards information a sequential pass
// keeps), which is the price of parallel ingest, and bounded by the
// merge theorem rather than growing with the shard count. Estimators
// without a weighted path degrade explicitly: the worker strips weights
// and feeds bare keys, i.e. the weight-1 projection of the stream.
//
// # Topology
//
//	            ┌─ SPSC ring ─ worker 0 ─ replica E₀ ─┐
//	feeder ──┼─ SPSC ring ─ worker 1 ─ replica E₁ ─┼── Merge → estimate
//	            └─ SPSC ring ─ worker N ─ replica E_N ┘
//
// The feeder accumulates items into batches of Config.BatchSize and
// deals complete batches round-robin to per-shard queues; workers
// apply each batch through the estimator's UpdateBatch fast path (or
// per-item Observe when the type has no batch path). With
// Config.SampleP > 0 the pipeline ingests the ORIGINAL stream and each
// worker Bernoulli-samples its shard locally with an independent,
// deterministically seeded generator — the deployment of the paper's
// sampled-NetFlow monitor, with the sampling cost spread across cores.
//
// Each shard queue is a bounded single-producer single-consumer ring
// (see ring.go) rather than a channel: the feeding goroutine and the
// shard worker exchange batches through padded atomic cursors, falling
// back to a sync.Cond park only when the ring is actually empty or
// full. On the uncontended fast path a hand-off is two atomic
// operations and no lock, and push/pop allocate nothing.
//
// # Ownership transfer
//
// Feed/FeedSlice copy or re-batch their input; FeedOwned is the
// zero-copy path. FeedOwned(items, release) transfers ownership of the
// items slice to the pipeline: the caller must not read or write the
// slice afterwards, and the pipeline calls release() exactly once when
// the batch has been fully applied (or immediately, for an empty
// slice). A pooled decoder can therefore hand chunks straight into the
// shard queues and recycle each buffer when its release fires, with no
// memcpy anywhere between the wire and the estimator. The chunk is
// dispatched to one shard as a single batch — sound for the same
// reason sharding itself is (Bernoulli sampling commutes with any
// partitioning of the stream). Pending Feed items are flushed first,
// so per-item and owned feeding interleave without reordering across a
// Sync.
//
// The weighted lane mirrors the whole feeding surface — FeedWeighted,
// FeedWeightedSlice, FeedWeightedCopy, FeedWeightedOwned — with the
// same ownership and ordering contracts; switching lanes flushes the
// other lane's partial batch so interleaved feeding never reorders a
// shard's view. A pipeline that only ever uses the unweighted feeds
// behaves bit-identically to one built before the weighted lane
// existed (same batches, same sampler coin consumption, same replica
// states).
//
// # Mergeability contract
//
// Merging requires structurally identical replicas: the factory passed to
// New must construct every replica with the same configuration and a
// generator seeded identically (e.g. rng.New(fixedSeed) per call, as in
// examples/distributed). The estimators verify this at merge time and
// return sketch.ErrIncompatible when violated.
//
// Feeding is single-producer: Feed/FeedSlice/FeedStream/FeedOwned must
// be called from one goroutine (the SPSC rings rely on it). Shard
// workers never share state; all synchronization is ring hand-off, so
// the package is race-clean under `go test -race`.
//
// # Windowed replicas
//
// Epoch-ring replicas (internal/window) ride the pipeline unchanged:
// build every shard replica around ONE shared window.Clock and they
// rotate in lockstep, with MergeAll's fold realigning whatever epoch
// skew remains. One caveat follows from the asynchronous workers: a
// batch dispatched just before an epoch boundary may be applied just
// after it. Wall-clock deployments absorb that as ordinary boundary
// skew (bounded by queue latency); deterministic replays that drive a
// ManualClock must quiesce with Sync before advancing the clock, so
// every in-flight batch lands in the epoch that fed it.
package pipeline
