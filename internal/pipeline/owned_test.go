package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"

	"substream/internal/stream"
)

// orderReplica records every item it sees, preserving arrival order, and
// snapshots nothing — it exists to catch a FeedOwned buffer being
// mutated underneath a worker.
type orderReplica struct{ seen []stream.Item }

func (o *orderReplica) UpdateBatch(items []stream.Item) {
	o.seen = append(o.seen, items...)
}

// TestFeedOwnedDeliversAndReleasesOnce pins the ownership contract:
// every item of an owned chunk reaches exactly one replica, a partial
// hand-fed batch is flushed ahead of the chunk (stream order), an empty
// chunk releases immediately without dispatching, and release runs
// exactly once per chunk — after the items were applied, which Sync
// makes observable.
func TestFeedOwnedDeliversAndReleasesOnce(t *testing.T) {
	p := New(Config{Shards: 2, BatchSize: 4}, func(int) *orderReplica { return &orderReplica{} })

	released := 0
	p.FeedOwned(nil, func() { released++ })
	if released != 1 {
		t.Fatalf("empty chunk: release ran %d times, want 1", released)
	}
	if p.Stats().Batches != 0 {
		t.Fatal("empty chunk dispatched a batch")
	}

	p.Feed(1)
	p.Feed(2)
	chunk := stream.Slice{10, 11, 12, 13, 14}
	p.FeedOwned(chunk, func() { released++ })
	p.Sync()
	if released != 2 {
		t.Fatalf("release ran %d times after Sync, want 2", released)
	}
	if p.Fed() != 7 || p.Kept() != 7 {
		t.Fatalf("Fed=%d Kept=%d, want 7/7", p.Fed(), p.Kept())
	}

	// The partial batch {1,2} must have been flushed before the chunk:
	// round-robin puts it on shard 0 and the chunk on shard 1, each
	// contiguous and in order.
	shards := p.Close()
	if got := shards[0].seen; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("shard 0 saw %v, want [1 2]", got)
	}
	if got := shards[1].seen; len(got) != 5 || got[0] != 10 || got[4] != 14 {
		t.Fatalf("shard 1 saw %v, want [10..14]", got)
	}
}

// TestFeedOwnedReleaseAfterClose pins that chunks in flight at Close are
// still applied and released: Close drains the rings before returning.
func TestFeedOwnedReleaseAfterClose(t *testing.T) {
	p := New(Config{Shards: 2, BatchSize: 4}, func(int) *batchReplica { return &batchReplica{} })
	var released atomic.Int64 // two shard workers release concurrently
	for i := 0; i < 16; i++ {
		p.FeedOwned(stream.Slice{stream.Item(i + 1)}, func() { released.Add(1) })
	}
	shards := p.Close()
	if n := released.Load(); n != 16 {
		t.Fatalf("release ran %d times after Close, want 16", n)
	}
	var total uint64
	for _, s := range shards {
		total += s.n
	}
	if total != 16 {
		t.Fatalf("replicas saw %d items, want 16", total)
	}
}

// TestFeedOwnedAllocFree is the end-to-end zero-allocation assertion for
// the ownership-transfer path: a steady-state FeedOwned+Sync cycle — ring
// push, worker wake, batch apply, release callback, ack barrier — must
// not allocate. This is the pipeline-side mirror of the server's
// TestDecodeBinaryStreamAllocFree.
func TestFeedOwnedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	p := New(Config{Shards: 2, BatchSize: 64}, func(int) *batchReplica { return &batchReplica{} })
	defer p.Close()

	chunk := make(stream.Slice, 256)
	for i := range chunk {
		chunk[i] = stream.Item(i + 1)
	}
	release := func() {} // prebuilt, like the server's pooled chunk closure
	// Warm up: first pushes may grow worker scratch and runtime stacks.
	for i := 0; i < 8; i++ {
		p.FeedOwned(chunk, release)
		p.Sync()
	}
	avg := testing.AllocsPerRun(200, func() {
		p.FeedOwned(chunk, release)
		p.Sync()
	})
	if avg != 0 {
		t.Fatalf("FeedOwned+Sync allocates %.1f times per cycle, want 0", avg)
	}
}

// TestFeedOwnedNoAliasing proves a released buffer is never observed by
// a worker mid-apply. Chunks cycle through a deliberately tiny pool; the
// producer poisons every buffer it takes back from the pool before
// refilling it. Each chunk is filled with a single distinctive value, so
// if release ever fired before the worker finished reading — or a worker
// read a slot after hand-back — the replica would observe a mixed or
// poisoned batch.
func TestFeedOwnedNoAliasing(t *testing.T) {
	const (
		chunkLen = 512
		poison   = stream.Item(1<<63 - 1)
	)
	chunks := 5_000
	if raceEnabled || testing.Short() {
		chunks = 1_000
	}

	// mixReplica checks batch purity instead of recording items.
	type counts struct {
		mu  sync.Mutex
		n   map[stream.Item]uint64
		bad int
	}
	c := &counts{n: make(map[stream.Item]uint64)}
	p := New(Config{Shards: 4, BatchSize: 64, QueueDepth: 2}, func(int) *funcReplica {
		return &funcReplica{f: func(items []stream.Item) {
			v := items[0]
			pure := v != poison
			for _, it := range items {
				if it != v {
					pure = false
				}
			}
			c.mu.Lock()
			if pure {
				c.n[v] += uint64(len(items))
			} else {
				c.bad++
			}
			c.mu.Unlock()
		}}
	})

	// Two free buffers against four shards keeps reuse pressure high:
	// the producer is always waiting to recycle a buffer some worker
	// just finished with.
	free := make(chan stream.Slice, 2)
	free <- make(stream.Slice, chunkLen)
	free <- make(stream.Slice, chunkLen)

	for i := 0; i < chunks; i++ {
		buf := <-free
		for j := range buf {
			buf[j] = poison
		}
		v := stream.Item(i%97 + 1)
		for j := range buf {
			buf[j] = v
		}
		p.FeedOwned(buf, func() { free <- buf })
	}
	p.Close()

	if c.bad != 0 {
		t.Fatalf("%d batches observed mixed or poisoned contents — released buffer aliased mid-apply", c.bad)
	}
	var total uint64
	for _, n := range c.n {
		total += n
	}
	if want := uint64(chunks * chunkLen); total != want {
		t.Fatalf("replicas saw %d pure items, want %d", total, want)
	}
}

// funcReplica adapts a closure to BatchObserver for tests.
type funcReplica struct{ f func([]stream.Item) }

func (r *funcReplica) UpdateBatch(items []stream.Item) { r.f(items) }
