package pipeline

import (
	"sync"
	"testing"

	"substream/internal/stream"
)

// TestSPSCRingOrderedDelivery hammers a minimal-capacity ring from a
// dedicated producer while a consumer drains it, checking that every
// message arrives exactly once, in order, and that pop reports closure
// only after the ring is drained. Capacity 2 forces both parking edges
// (producer-full and consumer-empty) to fire constantly, which is where
// a lost-wakeup bug in the flag/recheck handshake would deadlock; run
// with -race this doubles as the memory-ordering stress for the
// cursor/slot protocol.
func TestSPSCRingOrderedDelivery(t *testing.T) {
	const n = 200_000
	iters := n
	if raceEnabled || testing.Short() {
		iters = 20_000
	}
	r := newSPSCRing(2)
	if r.cap() != 2 {
		t.Fatalf("cap = %d, want 2", r.cap())
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var got int
	go func() {
		defer wg.Done()
		misordered := false
		for {
			msg, ok := r.pop()
			if !ok {
				return
			}
			// Report the first misorder but keep draining, so the
			// producer can't wedge on a full ring and mask the failure
			// as a timeout.
			if !misordered && int(msg.items[0]) != got {
				misordered = true
				t.Errorf("message %d carries sequence %d", got, msg.items[0])
			}
			got++
		}
	}()

	for i := 0; i < iters; i++ {
		r.push(batchMsg{items: stream.Slice{stream.Item(i)}})
	}
	r.close()
	wg.Wait()
	if got != iters {
		t.Fatalf("consumer saw %d messages, want %d", got, iters)
	}
	if _, ok := r.pop(); ok {
		t.Fatal("pop on closed+drained ring reported a message")
	}
}

// TestSPSCRingCapacityRounding pins the power-of-two rounding.
func TestSPSCRingCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ depth, want int }{
		{1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16}, {100, 128},
	} {
		if got := newSPSCRing(tc.depth).cap(); got != tc.want {
			t.Errorf("depth %d: cap = %d, want %d", tc.depth, got, tc.want)
		}
	}
}

// TestPipelineStressConcurrentSync drives a small-queue pipeline hard
// from the producer goroutine — interleaving pooled batches, zero-copy
// slices, owned chunks, and Sync barriers — while a monitor goroutine
// concurrently polls the worker-side gauges (Kept reads the shard
// atomics; ring occupancy reads the cursors). Under -race this is the
// end-to-end data-race check for the ring protocol plus the quiesce
// semantics Sync promises: after each Sync the kept count must equal
// everything fed so far.
func TestPipelineStressConcurrentSync(t *testing.T) {
	rounds := 300
	if raceEnabled || testing.Short() {
		rounds = 60
	}
	p := New(Config{Shards: 4, BatchSize: 8, QueueDepth: 2},
		func(int) *batchReplica { return &batchReplica{} })

	stop := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = p.Kept()
			}
		}
	}()

	chunk := make(stream.Slice, 37)
	for i := range chunk {
		chunk[i] = stream.Item(i + 1)
	}
	var want uint64
	released := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < 20; i++ {
			p.Feed(stream.Item(i + 1))
			want++
		}
		p.FeedSlice(chunk)
		want += uint64(len(chunk))
		p.FeedCopy(chunk)
		want += uint64(len(chunk))
		p.FeedOwned(chunk, func() { released++ })
		want += uint64(len(chunk))
		p.Sync()
		if kept := p.Kept(); kept != want {
			t.Fatalf("round %d: Kept = %d after Sync, want %d", r, kept, want)
		}
		if q := p.Stats().Queued; q != 0 {
			t.Fatalf("round %d: %d batches queued after Sync", r, q)
		}
	}
	close(stop)
	mon.Wait()
	if released != rounds {
		t.Fatalf("release ran %d times, want %d", released, rounds)
	}
	shards := p.Close()
	var total uint64
	for _, s := range shards {
		total += s.n
	}
	if total != want {
		t.Fatalf("replicas saw %d items, want %d", total, want)
	}
}
