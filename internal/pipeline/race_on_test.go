//go:build race

package pipeline

// raceEnabled reports whether the race detector is active; its
// instrumentation adds bookkeeping allocations that would fail the
// strict zero-alloc assertions, and stress iteration counts are scaled
// down to keep -race runs fast.
const raceEnabled = true
