package pipeline

import (
	"errors"
	"math"
	"testing"

	"substream/internal/core"
	"substream/internal/estimator"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

// These are the merge-correctness property tests: feeding the SAME
// sampled stream L through S shards and merging must agree with the
// single-shard estimator on L. For order-insensitive backends (exact
// collision counters, KMV/HLL, plugin entropy, CountMin/CountSketch
// tables) the agreement is exact up to float summation order; for the
// counter-based summaries it is within the documented error bounds, which
// the heavy-hitter tests check through the reporting contract.

const (
	eqN    = 120_000
	eqM    = 2_000
	eqSkew = 1.2
	eqP    = 0.25
)

// sampledZipf builds one Bernoulli-sampled Zipf stream shared by a test.
func sampledZipf(t *testing.T) stream.Slice {
	t.Helper()
	wl := workload.Zipf(eqN, eqM, eqSkew, 42)
	L := sample.NewBernoulli(eqP).Apply(wl.Stream, rng.New(99))
	if len(L) == 0 {
		t.Fatal("empty sampled stream")
	}
	return L
}

// shardMerge runs L through a sharded pipeline of replicas from mk and
// returns the merged replica.
func shardMerge[E Mergeable[E]](t *testing.T, L stream.Slice, shards int, mk func(int) E) E {
	t.Helper()
	p := New(Config{Shards: shards, BatchSize: 256}, mk)
	p.FeedSlice(L)
	merged, err := MergeAll(p)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return merged
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

func TestMergeEquivalenceFkExact(t *testing.T) {
	L := sampledZipf(t)
	mk := func(int) *core.FkEstimator {
		return core.NewFkEstimator(core.FkConfig{K: 3, P: eqP, Exact: true}, rng.New(7))
	}
	single := mk(0)
	single.UpdateBatch(L)
	merged := shardMerge(t, L, 4, mk)
	for k := 2; k <= 3; k++ {
		s, m := single.Moments()[k], merged.Moments()[k]
		if d := relDiff(s, m); d > 1e-9 {
			t.Fatalf("F%d: single %.9g vs sharded-merged %.9g (rel diff %.2g)", k, s, m, d)
		}
	}
	if single.SampledLength() != merged.SampledLength() {
		t.Fatalf("sampled length %d vs %d", single.SampledLength(), merged.SampledLength())
	}
}

func TestMergeEquivalenceFkLevelSet(t *testing.T) {
	L := sampledZipf(t)
	// Budget above F0(L): no SpaceSaving evictions, thresholds stay 0, so
	// the level-set merge is exact and must match the single replica.
	mk := func(int) *core.FkEstimator {
		return core.NewFkEstimator(core.FkConfig{K: 2, P: eqP, Budget: 4096}, rng.New(21))
	}
	single := mk(0)
	single.UpdateBatch(L)
	merged := shardMerge(t, L, 4, mk)
	s, m := single.Estimate(), merged.Estimate()
	if d := relDiff(s, m); d > 1e-9 {
		t.Fatalf("levelset F2: single %.9g vs sharded-merged %.9g (rel diff %.2g)", s, m, d)
	}

	// Sanity: both track the ground truth F2 of the original stream.
	truth := stream.NewFreq(workload.Zipf(eqN, eqM, eqSkew, 42).Stream).Fk(2)
	if d := relDiff(m, truth); d > 0.35 {
		t.Fatalf("merged estimate %.4g strays %.0f%% from exact F2 %.4g", m, 100*d, truth)
	}
}

func TestMergeEquivalenceFkLevelSetTightBudget(t *testing.T) {
	L := sampledZipf(t)
	// Budget well below F0(L): merging is approximate (bounded-error
	// SpaceSaving fold + threshold raising), so judge the merged replica
	// the way the paper judges the estimator — against ground truth.
	mk := func(int) *core.FkEstimator {
		return core.NewFkEstimator(core.FkConfig{K: 2, P: eqP, Budget: 512}, rng.New(23))
	}
	merged := shardMerge(t, L, 4, mk)
	truth := stream.NewFreq(workload.Zipf(eqN, eqM, eqSkew, 42).Stream).Fk(2)
	if d := relDiff(merged.Estimate(), truth); d > 0.5 {
		t.Fatalf("tight-budget merged estimate %.4g strays %.0f%% from exact F2 %.4g",
			merged.Estimate(), 100*d, truth)
	}
}

func TestMergeEquivalenceF0(t *testing.T) {
	L := sampledZipf(t)
	for name, cfg := range map[string]core.F0Config{
		"kmv": {P: eqP, Backend: core.F0KMV},
		"hll": {P: eqP, Backend: core.F0HLL},
	} {
		mk := func(int) *core.F0Estimator { return core.NewF0Estimator(cfg, rng.New(13)) }
		single := mk(0)
		single.UpdateBatch(L)
		merged := shardMerge(t, L, 4, mk)
		if s, m := single.Estimate(), merged.Estimate(); s != m {
			t.Fatalf("%s: single %.9g vs sharded-merged %.9g", name, s, m)
		}
	}
}

func TestMergeEquivalenceEntropyPlugin(t *testing.T) {
	L := sampledZipf(t)
	mk := func(int) *core.EntropyEstimator {
		return core.NewEntropyEstimator(core.EntropyConfig{P: eqP}, rng.New(17))
	}
	single := mk(0)
	single.UpdateBatch(L)
	merged := shardMerge(t, L, 4, mk)
	if d := relDiff(single.Estimate(), merged.Estimate()); d > 1e-9 {
		t.Fatalf("entropy: single %.9g vs sharded-merged %.9g (rel diff %.2g)",
			single.Estimate(), merged.Estimate(), d)
	}
	if single.SampledLength() != merged.SampledLength() {
		t.Fatalf("sampled length %d vs %d", single.SampledLength(), merged.SampledLength())
	}
}

func TestEntropySketchBackendNotMergeable(t *testing.T) {
	mk := func() *core.EntropyEstimator {
		return core.NewEntropyEstimator(core.EntropyConfig{P: eqP, Backend: core.EntropySketch}, rng.New(3))
	}
	a, b := mk(), mk()
	if err := a.Merge(b); !errors.Is(err, core.ErrNotMergeable) {
		t.Fatalf("expected ErrNotMergeable, got %v", err)
	}
}

// reportSet indexes a heavy-hitter report by item.
func reportSet(hh []core.ReportedHitter) map[stream.Item]float64 {
	m := make(map[stream.Item]float64, len(hh))
	for _, h := range hh {
		m[h.Item] = h.Freq
	}
	return m
}

func TestMergeEquivalenceF1HeavyHitters(t *testing.T) {
	const alpha = 0.05
	L := sampledZipf(t)
	truth := stream.NewFreq(workload.Zipf(eqN, eqM, eqSkew, 42).Stream)
	mk := func(int) *core.F1HeavyHitters {
		return core.NewF1HeavyHitters(core.F1HHConfig{P: eqP, Alpha: alpha}, rng.New(29))
	}
	single := mk(0)
	single.UpdateBatch(L)
	merged := shardMerge(t, L, 4, mk)

	sRep, mRep := reportSet(single.Report()), reportSet(merged.Report())
	for _, hh := range truth.FkHeavyHitters(1, alpha) {
		if _, ok := sRep[hh.Item]; !ok {
			t.Fatalf("single run missed true heavy hitter %d (f=%d)", hh.Item, hh.Freq)
		}
		if _, ok := mRep[hh.Item]; !ok {
			t.Fatalf("sharded-merged run missed true heavy hitter %d (f=%d)", hh.Item, hh.Freq)
		}
	}
	// CountMin is linear: the merged table is identical to the single
	// table, so common reported items must agree exactly.
	for it, mf := range mRep {
		if sf, ok := sRep[it]; ok && sf != mf {
			t.Fatalf("item %d: single freq %.1f vs merged %.1f", it, sf, mf)
		}
	}
}

func TestMergeEquivalenceF2HeavyHitters(t *testing.T) {
	const alpha = 0.2
	L := sampledZipf(t)
	truth := stream.NewFreq(workload.Zipf(eqN, eqM, eqSkew, 42).Stream)
	mk := func(int) *core.F2HeavyHitters {
		return core.NewF2HeavyHitters(core.F2HHConfig{P: eqP, Alpha: alpha}, rng.New(31))
	}
	single := mk(0)
	single.UpdateBatch(L)
	merged := shardMerge(t, L, 4, mk)

	sRep, mRep := reportSet(single.Report()), reportSet(merged.Report())
	for _, hh := range truth.FkHeavyHitters(2, alpha) {
		if _, ok := sRep[hh.Item]; !ok {
			t.Fatalf("single run missed true F2 heavy hitter %d (f=%d)", hh.Item, hh.Freq)
		}
		if _, ok := mRep[hh.Item]; !ok {
			t.Fatalf("sharded-merged run missed true F2 heavy hitter %d (f=%d)", hh.Item, hh.Freq)
		}
	}
	for it, mf := range mRep {
		if sf, ok := sRep[it]; ok && sf != mf {
			t.Fatalf("item %d: single freq %.1f vs merged %.1f", it, sf, mf)
		}
	}
}

func TestMergeEquivalenceMonitor(t *testing.T) {
	L := sampledZipf(t)
	mk := func(int) *core.Monitor {
		// The default entropy backend (plugin) merges; everything else
		// merges by construction when seeded identically.
		return core.NewMonitor(core.MonitorConfig{P: eqP, K: 2, HHAlpha: 0.05}, rng.New(37))
	}
	single := mk(0)
	single.UpdateBatch(L)
	merged := shardMerge(t, L, 4, mk)

	s, m := single.Report(), merged.Report()
	if s.SampledLength != m.SampledLength {
		t.Fatalf("sampled length %d vs %d", s.SampledLength, m.SampledLength)
	}
	if d := relDiff(s.F0, m.F0); d > 1e-9 {
		t.Fatalf("monitor F0 %.6g vs %.6g", s.F0, m.F0)
	}
	if d := relDiff(s.Entropy, m.Entropy); d > 1e-9 {
		t.Fatalf("monitor entropy %.6g vs %.6g", s.Entropy, m.Entropy)
	}
	if d := relDiff(s.Fk, m.Fk); d > 0.25 {
		t.Fatalf("monitor Fk %.6g vs %.6g (rel diff %.2g)", s.Fk, m.Fk, d)
	}
}

func TestMergeRejectsMismatchedSeeds(t *testing.T) {
	L := sampledZipf(t)
	seed := uint64(0)
	p := New(Config{Shards: 2, BatchSize: 256}, func(int) *core.F0Estimator {
		seed++ // deliberately different construction state per shard
		return core.NewF0Estimator(core.F0Config{P: eqP}, rng.New(seed))
	})
	p.FeedSlice(L)
	if _, err := MergeAll(p); err == nil {
		t.Fatal("expected merge of differently-seeded replicas to fail")
	}
}

// TestShardedSamplingEndToEnd drives the full deployment: the pipeline
// ingests the ORIGINAL stream, samples per shard, and the merged
// estimator must track ground truth within the sampling-noise tolerance.
func TestShardedSamplingEndToEnd(t *testing.T) {
	wl := workload.Zipf(eqN, eqM, eqSkew, 77)
	s := stream.Collect(wl.Stream)
	truth := stream.NewFreq(wl.Stream)

	p := New(Config{Shards: 4, BatchSize: 512, SampleP: eqP, Seed: 5},
		func(int) *core.FkEstimator {
			return core.NewFkEstimator(core.FkConfig{K: 2, P: eqP, Exact: true}, rng.New(41))
		})
	p.FeedSlice(s)
	merged, err := MergeAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(merged.Estimate(), truth.Fk(2)); d > 0.2 {
		t.Fatalf("end-to-end F2 %.4g strays %.0f%% from exact %.4g",
			merged.Estimate(), 100*d, truth.Fk(2))
	}
	if kept := p.Kept(); relDiff(float64(kept), eqP*float64(len(s))) > 0.05 {
		t.Fatalf("kept %d of %d items, want ≈%.0f", kept, len(s), eqP*float64(len(s)))
	}
}

// TestInterfaceReplicasMatchConcrete proves the pipeline's replica
// contract extends to the estimator registry's interface values: a
// pipeline of estimator.Estimator replicas (what the daemon runs) must
// produce exactly the estimates of a pipeline of the concrete type,
// batch path and MergeAll included — the interface satisfies
// Mergeable[estimator.Estimator], so nothing in this package special-
// cases it.
func TestInterfaceReplicasMatchConcrete(t *testing.T) {
	L := sampledZipf(t)
	spec := estimator.Spec{Stat: "fk", K: 2, P: eqP, Epsilon: 0.2, Exact: true, Seed: 41}

	concrete := New(Config{Shards: 4, BatchSize: 512},
		func(int) *core.FkEstimator {
			return core.NewFkEstimator(core.FkConfig{K: 2, P: eqP, Epsilon: 0.2, Exact: true}, rng.New(41))
		})
	concrete.FeedSlice(L)
	wantMerged, err := MergeAll(concrete)
	if err != nil {
		t.Fatal(err)
	}

	iface := New(Config{Shards: 4, BatchSize: 512},
		func(int) estimator.Estimator {
			e, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			return e
		})
	iface.FeedSlice(L)
	gotMerged, err := MergeAll(iface)
	if err != nil {
		t.Fatal(err)
	}

	want := wantMerged.Estimates()
	got := gotMerged.Estimates()
	if len(got) != len(want) {
		t.Fatalf("estimate sets differ: %v vs %v", got, want)
	}
	for name, v := range want {
		if got[name] != v {
			t.Fatalf("interface pipeline %q = %v, concrete pipeline = %v", name, got[name], v)
		}
	}
	// Foreign kinds must fail the merge, not corrupt it.
	other, err := estimator.New(estimator.Spec{Stat: "f0", P: eqP, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if err := gotMerged.Merge(other); err == nil {
		t.Fatal("merging a foreign kind through the interface did not fail")
	}
}
