package pipeline

import (
	"math"
	"sync"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

// wReplica consumes weighted items natively, recording totals.
type wReplica struct {
	n       uint64
	weight  float64
	batches int
}

func (w *wReplica) ObserveWeighted(_ stream.Item, weight float64) {
	w.n++
	w.weight += weight
}

func (w *wReplica) UpdateWeightedBatch(items []stream.WItem) {
	w.batches++
	for _, it := range items {
		w.ObserveWeighted(it.Key, it.Weight)
	}
}

func (w *wReplica) Observe(stream.Item)         { w.n++; w.weight++ }
func (w *wReplica) UpdateBatch(s []stream.Item) { w.n += uint64(len(s)); w.weight += float64(len(s)) }

// wrapped hides a weighted replica behind an Unwrap chain, the shape the
// estimator registry's adapter gives the pipeline.
type wrapped struct{ inner *wReplica }

func (w wrapped) Observe(it stream.Item)          { w.inner.Observe(it) }
func (w wrapped) UpdateBatch(items []stream.Item) { w.inner.UpdateBatch(items) }
func (w wrapped) Unwrap() any                     { return w.inner }

func makeWeightedStream(n int, seed uint64) stream.WSlice {
	r := rng.New(seed)
	out := make(stream.WSlice, n)
	for i := range out {
		out[i] = stream.WItem{
			Key:    stream.Item(r.Uint64n(500) + 1),
			Weight: rng.Pareto(r, 1, 1.5),
		}
	}
	return out
}

// TestWeightedFeedsDeliverAllWeight drives every weighted feed variant
// and checks the replicas saw all items at their true weights.
func TestWeightedFeedsDeliverAllWeight(t *testing.T) {
	s := makeWeightedStream(10_000, 1)
	want := s.TotalWeight()
	feeds := map[string]func(p *Pipeline[*wReplica]){
		"item": func(p *Pipeline[*wReplica]) {
			for _, it := range s {
				p.FeedWeighted(it.Key, it.Weight)
			}
		},
		"slice": func(p *Pipeline[*wReplica]) { p.FeedWeightedSlice(s) },
		"copy": func(p *Pipeline[*wReplica]) {
			for i := 0; i < len(s); i += 700 {
				end := i + 700
				if end > len(s) {
					end = len(s)
				}
				p.FeedWeightedCopy(s[i:end])
			}
		},
		"owned": func(p *Pipeline[*wReplica]) {
			var wg sync.WaitGroup
			for i := 0; i < len(s); i += 700 {
				end := i + 700
				if end > len(s) {
					end = len(s)
				}
				chunk := make(stream.WSlice, end-i)
				copy(chunk, s[i:end])
				wg.Add(1)
				p.FeedWeightedOwned(chunk, wg.Done)
			}
			defer wg.Wait()
		},
	}
	for name, feed := range feeds {
		p := New(Config{Shards: 4, BatchSize: 128}, func(int) *wReplica { return &wReplica{} })
		feed(p)
		shards := p.Close()
		var n uint64
		var weight float64
		for _, r := range shards {
			n += r.n
			weight += r.weight
		}
		if n != uint64(len(s)) {
			t.Errorf("%s: delivered %d items, want %d", name, n, len(s))
		}
		if math.Abs(weight-want) > 1e-6*want {
			t.Errorf("%s: delivered weight %v, want %v", name, weight, want)
		}
		if p.Fed() != uint64(len(s)) {
			t.Errorf("%s: Fed=%d, want %d", name, p.Fed(), len(s))
		}
		if got := p.FedWeight(); math.Abs(got-want) > 1e-6*want {
			t.Errorf("%s: FedWeight=%v, want %v", name, got, want)
		}
		if got := p.KeptWeight(); math.Abs(got-want) > 1e-6*want {
			t.Errorf("%s: KeptWeight=%v, want %v", name, got, want)
		}
	}
}

// TestWeightedUnwrapProbe checks the worker finds a replica's weighted
// path through an Unwrap chain — the adapter shape registry-built
// estimators arrive in.
func TestWeightedUnwrapProbe(t *testing.T) {
	inners := make([]*wReplica, 0, 2)
	p := New(Config{Shards: 2, BatchSize: 32}, func(int) wrapped {
		r := &wReplica{}
		inners = append(inners, r)
		return wrapped{inner: r}
	})
	s := makeWeightedStream(1_000, 2)
	p.FeedWeightedSlice(s)
	p.Close()
	var weight float64
	var batches int
	for _, r := range inners {
		weight += r.weight
		batches += r.batches
	}
	if want := s.TotalWeight(); math.Abs(weight-want) > 1e-6*want {
		t.Fatalf("unwrapped replicas saw weight %v, want %v", weight, want)
	}
	if batches == 0 {
		t.Fatal("weighted batches went through the stripped fallback, not UpdateWeightedBatch")
	}
}

// TestWeightedFallbackStripsWeights checks the degenerate projection:
// replicas without a weighted path see each weighted item once as its
// bare key.
func TestWeightedFallbackStripsWeights(t *testing.T) {
	p := New(Config{Shards: 2, BatchSize: 64}, func(int) *batchReplica { return &batchReplica{} })
	s := makeWeightedStream(2_000, 3)
	p.FeedWeightedSlice(s)
	shards := p.Close()
	var n, sum uint64
	for _, r := range shards {
		n += r.n
		sum += r.sum
	}
	var wantSum uint64
	for _, it := range s {
		wantSum += uint64(it.Key)
	}
	if n != uint64(len(s)) || sum != wantSum {
		t.Fatalf("projected feed saw n=%d sum=%d, want n=%d sum=%d", n, sum, len(s), wantSum)
	}
}

// TestWeightedInterleavingPreservesOrderAndCounts mixes the two lanes:
// lane switches flush the other lane's partial batch, so totals and
// per-shard views stay exact.
func TestWeightedInterleavingPreservesOrderAndCounts(t *testing.T) {
	p := New(Config{Shards: 3, BatchSize: 50}, func(int) *wReplica { return &wReplica{} })
	const rounds = 1_000
	var wantWeight float64
	for i := 0; i < rounds; i++ {
		p.Feed(stream.Item(i%90 + 1))
		wantWeight++
		if i%3 == 0 {
			p.FeedWeighted(stream.Item(i%90+1), 2.5)
			wantWeight += 2.5
		}
	}
	p.Sync()
	if got := p.KeptWeight(); math.Abs(got-wantWeight) > 1e-9*wantWeight {
		t.Fatalf("KeptWeight=%v after Sync, want %v", got, wantWeight)
	}
	shards := p.Close()
	var weight float64
	for _, r := range shards {
		weight += r.weight
	}
	if math.Abs(weight-wantWeight) > 1e-9*wantWeight {
		t.Fatalf("replicas saw weight %v, want %v", weight, wantWeight)
	}
	st := p.Stats()
	if st.FedWeight != p.FedWeight() || math.Abs(st.KeptWeight-wantWeight) > 1e-9*wantWeight {
		t.Fatalf("Stats weight snapshot %+v inconsistent (want %v)", st, wantWeight)
	}
}

// TestWeightedSamplingSharesCoinStream pins the bit-identity contract
// around the sampler: a weighted pipeline at SampleP samples ITEMS (not
// weight-proportionally), and an unweighted-only pipeline consumes coins
// exactly as it did before the weighted lane existed — checked by
// comparing against a hand-run bernoulliSampler on the same seed
// derivation.
func TestWeightedSamplingSharesCoinStream(t *testing.T) {
	const n = 20_000
	const sampleP = 0.25
	s := makeWeightedStream(n, 4)
	p := New(Config{Shards: 1, BatchSize: 256, SampleP: sampleP, Seed: 7},
		func(int) *wReplica { return &wReplica{} })
	p.FeedWeightedSlice(s)
	shards := p.Close()

	// Reproduce the worker's sampler: master rng.New(Seed), one Split per
	// shard.
	var sampler bernoulliSampler
	sampler.init(sampleP, rng.New(7).Split())
	var wantN uint64
	var wantW float64
	kept := sampler.filterW(nil, s)
	for _, it := range kept {
		wantN++
		wantW += it.Weight
	}
	if shards[0].n != wantN || math.Abs(shards[0].weight-wantW) > 1e-9*wantW {
		t.Fatalf("sampled weighted shard saw (%d, %v), want (%d, %v)",
			shards[0].n, shards[0].weight, wantN, wantW)
	}
	if float64(wantN) < 0.8*sampleP*n || float64(wantN) > 1.2*sampleP*n {
		t.Fatalf("sampler kept %d of %d at p=%v — filterW broken", wantN, n, sampleP)
	}
}
