package pipeline_test

import (
	"fmt"

	"substream/internal/core"
	"substream/internal/pipeline"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

// ExampleMergeAll shards an already-sampled stream across four estimator
// replicas and merges them into one estimate. Replicas must be built from
// identical seeds — that is what makes their sketches mergeable.
func ExampleMergeAll() {
	wl := workload.Zipf(50_000, 1_000, 1.2, 1)
	L := sample.NewBernoulli(0.25).Apply(wl.Stream, rng.New(2))

	p := pipeline.New(pipeline.Config{Shards: 4, BatchSize: 256},
		func(shard int) *core.F0Estimator {
			return core.NewF0Estimator(core.F0Config{P: 0.25}, rng.New(3))
		})
	p.FeedSlice(L)
	merged, err := pipeline.MergeAll(p)
	if err != nil {
		panic(err)
	}

	truth := stream.NewFreq(wl.Stream).F0()
	fmt.Printf("F0 estimate %.0f (true %d)\n", merged.Estimate(), truth)
	// Output: F0 estimate 1566 (true 989)
}

// ExampleConfig_sampleP runs the full sampled-NetFlow deployment: the
// pipeline ingests the ORIGINAL stream and every shard worker Bernoulli-
// samples its share before feeding its replica, so the sampling cost
// parallelizes along with the estimation.
func ExampleConfig_sampleP() {
	wl := workload.Zipf(80_000, 2_000, 1.3, 4)
	s := stream.Collect(wl.Stream)

	p := pipeline.New(pipeline.Config{Shards: 4, BatchSize: 512, SampleP: 0.1, Seed: 9},
		func(shard int) *core.FkEstimator {
			return core.NewFkEstimator(core.FkConfig{K: 2, P: 0.1, Exact: true}, rng.New(5))
		})
	p.FeedSlice(s)
	merged, err := pipeline.MergeAll(p)
	if err != nil {
		panic(err)
	}

	rel := merged.Estimate()/stream.NewFreq(wl.Stream).Fk(2) - 1
	fmt.Printf("fed %d, sampled %d, F2 within %.0f%%\n",
		p.Fed(), p.Kept(), 100*relAbs(rel))
	// Output: fed 80000, sampled 8047, F2 within 4%
}

func relAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
