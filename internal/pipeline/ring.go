package pipeline

import (
	"sync"
	"sync/atomic"
)

// spscRing is the per-shard work queue: a bounded single-producer /
// single-consumer ring buffer of batch messages. The hot path is two
// atomic loads and one atomic store per push or pop — no mutex, no
// channel machinery, no allocation — with head and tail on separate
// cache lines so the producer's and consumer's cursors never invalidate
// each other. When the ring runs empty (consumer) or full (producer)
// the affected side parks on a sync.Cond, the portable stand-in for a
// futex wait; the opposite side checks a parked flag after every cursor
// move and wakes it, so the condvar cost is paid only at the
// empty/full edges, never in steady state.
//
// The single-producer discipline is the Pipeline's existing feeding
// contract; the single consumer is the shard worker. Nothing else may
// touch the cursors.
type spscRing struct {
	buf  []batchMsg
	mask uint64

	_    [64]byte // keep the cursors off the buf header's line and apart
	head atomic.Uint64
	_    [64]byte
	tail atomic.Uint64
	_    [64]byte

	// Edge-case parking. The flags are set under mu before re-checking
	// the cursor condition, and read (atomically, outside mu) by the
	// opposite side after it moves its cursor; sequentially consistent
	// atomics make the classic flag/recheck handshake lossless — if the
	// mover misses the flag, the parker's recheck sees the moved cursor.
	mu             sync.Mutex
	notEmpty       sync.Cond
	notFull        sync.Cond
	consumerParked atomic.Bool
	producerParked atomic.Bool
	closed         atomic.Bool
}

// newSPSCRing builds a ring with capacity ≥ depth, rounded up to a
// power of two for mask indexing.
func newSPSCRing(depth int) *spscRing {
	capacity := 1
	for capacity < depth {
		capacity <<= 1
	}
	r := &spscRing{
		buf:  make([]batchMsg, capacity),
		mask: uint64(capacity - 1),
	}
	r.notEmpty.L = &r.mu
	r.notFull.L = &r.mu
	return r
}

// cap returns the ring capacity in messages.
func (r *spscRing) cap() int { return len(r.buf) }

// len returns the current occupancy. Safe to call from any goroutine;
// the value is a racy snapshot, like reading a channel's len.
func (r *spscRing) len() int { return int(r.tail.Load() - r.head.Load()) }

// push enqueues one message, blocking while the ring is full.
// Producer-side only.
func (r *spscRing) push(msg batchMsg) {
	for {
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.buf)) {
			r.buf[t&r.mask] = msg
			r.tail.Store(t + 1)
			if r.consumerParked.Load() {
				r.mu.Lock()
				r.consumerParked.Store(false)
				r.notEmpty.Broadcast()
				r.mu.Unlock()
			}
			return
		}
		r.mu.Lock()
		r.producerParked.Store(true)
		if r.tail.Load()-r.head.Load() == uint64(len(r.buf)) {
			r.notFull.Wait()
		}
		r.producerParked.Store(false)
		r.mu.Unlock()
	}
}

// pop dequeues one message, blocking while the ring is empty. It
// returns ok == false only once the ring is closed AND drained — the
// worker's exit signal, matching a closed channel's semantics.
// Consumer-side only.
func (r *spscRing) pop() (batchMsg, bool) {
	for {
		h := r.head.Load()
		if h != r.tail.Load() {
			msg := r.buf[h&r.mask]
			r.buf[h&r.mask] = batchMsg{} // release slice/closure refs to GC
			r.head.Store(h + 1)
			if r.producerParked.Load() {
				r.mu.Lock()
				r.producerParked.Store(false)
				r.notFull.Broadcast()
				r.mu.Unlock()
			}
			return msg, true
		}
		if r.closed.Load() {
			return batchMsg{}, false
		}
		r.mu.Lock()
		r.consumerParked.Store(true)
		if r.head.Load() == r.tail.Load() && !r.closed.Load() {
			r.notEmpty.Wait()
		}
		r.consumerParked.Store(false)
		r.mu.Unlock()
	}
}

// close marks the ring closed and wakes a parked consumer so it can
// drain the remaining messages and exit. Producer-side only; messages
// already enqueued are still delivered.
func (r *spscRing) close() {
	r.closed.Store(true)
	r.mu.Lock()
	r.notEmpty.Broadcast()
	r.mu.Unlock()
}
