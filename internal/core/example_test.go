package core_test

import (
	"fmt"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

// ExampleFkEstimator shows the F₂ path: the estimator sees only the
// Bernoulli-sampled stream yet reports the second moment of the
// original one.
func ExampleFkEstimator() {
	// Original stream: items 1..4 with frequencies 40, 30, 20, 10.
	var original stream.Slice
	for it, f := range map[stream.Item]int{1: 40, 2: 30, 3: 20, 4: 10} {
		for i := 0; i < f; i++ {
			original = append(original, it)
		}
	}
	exact := stream.NewFreq(original).Fk(2) // 1600+900+400+100 = 3000

	const p = 1.0 // sample everything: the estimate is then exact
	est := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Exact: true}, rng.New(1))
	L := sample.NewBernoulli(p).Apply(original, rng.New(2))
	for _, it := range L {
		est.Observe(it)
	}
	fmt.Printf("exact F2 = %.0f, estimate = %.0f\n", exact, est.Estimate())
	// Output: exact F2 = 3000, estimate = 3000
}

// ExampleFkEstimator_Merge shows the sharded deployment: two replicas —
// built from identical seeds, which is what makes them mergeable — each
// observe half of the sampled stream, and the merged replica answers
// exactly like a single estimator that saw everything.
func ExampleFkEstimator_Merge() {
	var original stream.Slice
	for it := stream.Item(1); it <= 4; it++ {
		for i := stream.Item(0); i < 10*it; i++ {
			original = append(original, it)
		}
	}

	const p = 1.0
	mk := func() *core.FkEstimator {
		return core.NewFkEstimator(core.FkConfig{K: 2, P: p, Exact: true}, rng.New(1))
	}
	left, right := mk(), mk()
	half := len(original) / 2
	left.UpdateBatch(original[:half])
	right.UpdateBatch(original[half:])

	if err := left.Merge(right); err != nil {
		panic(err)
	}
	fmt.Printf("merged F2 = %.0f, exact = %.0f\n",
		left.Estimate(), stream.NewFreq(original).Fk(2))
	// Output: merged F2 = 3000, exact = 3000
}

// ExampleEntropyEstimator_UpdateBatch shows the batched ingestion path:
// UpdateBatch is behaviorally identical to per-item Observe, just cheaper
// per item — it is how the sharded pipeline feeds estimators.
func ExampleEntropyEstimator_UpdateBatch() {
	L := stream.Slice{1, 1, 2, 2, 3, 3, 4, 4} // uniform over 4 items: H = 2 bits

	batched := core.NewEntropyEstimator(core.EntropyConfig{P: 1}, rng.New(1))
	batched.UpdateBatch(L)

	perItem := core.NewEntropyEstimator(core.EntropyConfig{P: 1}, rng.New(1))
	for _, it := range L {
		perItem.Observe(it)
	}

	fmt.Printf("batched H = %.0f bits, per-item H = %.0f bits\n",
		batched.Estimate(), perItem.Estimate())
	// Output: batched H = 2 bits, per-item H = 2 bits
}

// ExampleBetas shows the Lemma 1 coefficients for ℓ = 4:
// F₄ = 4!·C₄ + 6F₁ − 11F₂ + 6F₃.
func ExampleBetas() {
	fmt.Println(core.Betas(4)[1:])
	// Output: [6 -11 6]
}

// ExampleF0Estimator shows Algorithm 2's structure: a streaming distinct
// count over L, scaled by 1/√p, with the Lemma 8 error bound available
// to the caller.
func ExampleF0Estimator() {
	est := core.NewF0Estimator(core.F0Config{P: 0.25}, rng.New(1))
	for i := 1; i <= 100; i++ {
		est.Observe(stream.Item(i)) // pretend these survived sampling
	}
	fmt.Printf("F0(L) seen = %.0f, bound = %.0f\n",
		est.SampledEstimate(), est.ErrorBound())
	// Output: F0(L) seen = 100, bound = 8
}

// ExampleMonitor runs every estimator in one pass — the sampled-NetFlow
// collector shape.
func ExampleMonitor() {
	mon := core.NewMonitor(core.MonitorConfig{P: 1, HHAlpha: 0.4}, rng.New(3))
	for i := 0; i < 6; i++ {
		mon.Observe(7) // one dominant flow
	}
	for i := 0; i < 4; i++ {
		mon.Observe(stream.Item(i + 10))
	}
	rep := mon.Report()
	fmt.Printf("n=%d hitters=%d\n", rep.SampledLength, len(rep.F1HeavyHitters))
	// Output: n=10 hitters=1
}
