// Package core implements the paper's estimators — the algorithms that
// observe only the Bernoulli-sampled stream L and estimate statistics of
// the original stream P:
//
//   - FkEstimator: frequency moments F_k, k ≥ 2 (Theorem 1, Algorithm 1),
//     via the collision identity of Lemma 1 and a pluggable collision
//     counter (exact or Indyk–Woodruff-style level sets);
//   - F0Estimator: distinct elements (Algorithm 2, Lemma 8), with KMV or
//     HLL streaming backends, plus the GEE sample-profile estimator;
//   - EntropyEstimator: empirical entropy (Theorem 5), plugin or
//     sketched;
//   - F1HeavyHitters / F2HeavyHitters: Theorems 6 and 7, on CountMin /
//     Misra–Gries and CountSketch backends respectively;
//   - baselines: Rusu–Dobra-style scaled F₂ estimation and naive
//     normalization, used by the comparison experiments.
//
// All estimators take the sampling probability p as a known parameter, as
// the paper assumes (§2).
package core

// This file computes the β coefficients of Lemma 1,
//
//	F_ℓ(P) = ℓ!·C_ℓ(P) + Σ_{l=1}^{ℓ−1} β_l^ℓ F_l(P),
//
// where β_l^ℓ = (−1)^(ℓ−l+1) · e_{ℓ−l}(1, …, ℓ−1) and e_k is the
// elementary symmetric polynomial. Equivalently β_l^ℓ = −s(ℓ, l) for the
// signed Stirling numbers of the first kind, which is how they are
// computed here (the identity is property-tested against the elementary
// symmetric definition). It also derives the approximation schedule of
// Lemma 3: ε_k = ε and ε_{ℓ−1} = ε_ℓ/(A_ℓ+1) with A_ℓ = Σ|β_i^ℓ|.

// maxMomentOrder bounds k; factorials and Stirling numbers stay exactly
// representable in float64 far beyond it, but collision statistics above
// this order are never needed by the experiments and the schedule's
// ε-shrinkage makes higher orders impractical anyway.
const maxMomentOrder = 12

// stirlingFirst returns the signed Stirling numbers of the first kind
// s(n, k) for 0 ≤ k ≤ n ≤ max, as s[n][k], via the recurrence
// s(n+1, k) = s(n, k−1) − n·s(n, k).
func stirlingFirst(max int) [][]float64 {
	s := make([][]float64, max+1)
	for n := range s {
		s[n] = make([]float64, max+1)
	}
	s[0][0] = 1
	for n := 0; n < max; n++ {
		for k := 0; k <= n+1; k++ {
			var fromPrev float64
			if k > 0 {
				fromPrev = s[n][k-1]
			}
			s[n+1][k] = fromPrev - float64(n)*s[n][k]
		}
	}
	return s
}

// Betas returns the coefficients β_l^ℓ for l = 1 … ℓ−1 (index l in the
// returned slice; index 0 is unused and zero). It panics if ℓ is outside
// [1, maxMomentOrder].
func Betas(l int) []float64 {
	if l < 1 || l > maxMomentOrder {
		panic("core: Betas order out of range")
	}
	s := stirlingFirst(l)
	out := make([]float64, l)
	for i := 1; i < l; i++ {
		out[i] = -s[l][i]
	}
	return out
}

// BetaAbsSum returns A_ℓ = Σ_{i=1}^{ℓ−1} |β_i^ℓ| (Lemma 3).
func BetaAbsSum(l int) float64 {
	var a float64
	for _, b := range Betas(l) {
		if b < 0 {
			a -= b
		} else {
			a += b
		}
	}
	return a
}

// EpsilonSchedule returns the per-order approximation targets
// ε_1, …, ε_k of Lemma 3 (1-indexed; index 0 unused): ε_k = ε and
// ε_{ℓ−1} = ε_ℓ/(A_ℓ+1).
func EpsilonSchedule(k int, epsilon float64) []float64 {
	if k < 1 || k > maxMomentOrder {
		panic("core: EpsilonSchedule order out of range")
	}
	if epsilon <= 0 {
		panic("core: EpsilonSchedule requires positive epsilon")
	}
	eps := make([]float64, k+1)
	eps[k] = epsilon
	for l := k; l >= 2; l-- {
		eps[l-1] = eps[l] / (BetaAbsSum(l) + 1)
	}
	return eps
}

// Factorial returns ℓ! as a float64 (exact for ℓ ≤ maxMomentOrder).
func Factorial(l int) float64 {
	f := 1.0
	for i := 2; i <= l; i++ {
		f *= float64(i)
	}
	return f
}
