package core

import (
	"math"

	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// EntropyEstimator implements the paper's §5 approach: approximate the
// entropy H(f) of the original stream by a multiplicative estimate of the
// entropy of the sampled stream. Proposition 1 shows H_pn(g) tracks H(g)
// to within O(log m/√(pn)); Lemma 10 shows H(g) is within a constant
// factor of H(f) plus O(p^(−1/2)·n^(−1/6)); Lemma 9 shows no estimator
// can do better than a constant factor in general, so this is the right
// target.
//
// Two backends are provided: Plugin keeps the exact frequency vector of L
// (space O(F₀(L)), zero estimation error beyond sampling), Sketch runs
// the one-pass reservoir-position estimator (space O(polylog), the form
// Theorem 5's space bound refers to).
type EntropyEstimator struct {
	p      float64
	nL     uint64
	plugin stream.Freq              // non-nil for the plugin backend
	sk     *sketch.EntropyEstimator // non-nil for the sketch backend
}

// EntropyBackend selects how H(g) is estimated.
type EntropyBackend int

// Supported entropy backends.
const (
	// EntropyPlugin computes H(g) exactly from a frequency map of L.
	EntropyPlugin EntropyBackend = iota
	// EntropySketch runs the small-space reservoir-position estimator.
	EntropySketch
)

// EntropyConfig configures an EntropyEstimator.
type EntropyConfig struct {
	// P is the Bernoulli sampling probability.
	P float64
	// Backend selects the H(g) estimator. Default EntropyPlugin.
	Backend EntropyBackend
	// SketchGroups and SketchPerGroup shape the sketch backend.
	// Defaults 7 and 400.
	SketchGroups   int
	SketchPerGroup int
}

// NewEntropyEstimator builds the estimator.
func NewEntropyEstimator(cfg EntropyConfig, r *rng.Xoshiro256) *EntropyEstimator {
	if cfg.P <= 0 || cfg.P > 1 {
		panic("core: EntropyEstimator P must be in (0, 1]")
	}
	e := &EntropyEstimator{p: cfg.P}
	switch cfg.Backend {
	case EntropyPlugin:
		e.plugin = make(stream.Freq)
	case EntropySketch:
		groups, per := cfg.SketchGroups, cfg.SketchPerGroup
		if groups == 0 {
			groups = 7
		}
		if per == 0 {
			per = 400
		}
		e.sk = sketch.NewEntropyEstimator(groups, per, r)
	default:
		panic("core: unknown entropy backend")
	}
	return e
}

// Observe feeds one element of the sampled stream L.
func (e *EntropyEstimator) Observe(it stream.Item) {
	e.nL++
	if e.plugin != nil {
		e.plugin[it]++
	} else {
		e.sk.Observe(it)
	}
}

// Estimate returns the estimate of H(f) in bits: the (estimated) entropy
// of the sampled stream, which by Lemma 10 is a constant-factor
// approximation whenever H(f) = ω(p^(−1/2)·n^(−1/6)).
func (e *EntropyEstimator) Estimate() float64 {
	if e.plugin != nil {
		return e.plugin.Entropy()
	}
	return e.sk.Estimate()
}

// EstimateHpn returns H_pn(g) = Σ (g_i/(pn))·lg(pn/g_i) for a known
// original length n — the quantity Proposition 1 and Lemma 10 analyze
// directly. Available only on the plugin backend; it panics otherwise.
func (e *EntropyEstimator) EstimateHpn(n uint64) float64 {
	if e.plugin == nil {
		panic("core: EstimateHpn requires the plugin backend")
	}
	pn := e.p * float64(n)
	if pn == 0 {
		return 0
	}
	var h float64
	for _, g := range e.plugin {
		gf := float64(g)
		h += gf / pn * math.Log2(pn/gf)
	}
	if h < 0 {
		return 0
	}
	return h
}

// SampledLength returns F₁(L).
func (e *EntropyEstimator) SampledLength() uint64 { return e.nL }

// AdditiveFloor returns the additive term below which no constant-factor
// guarantee holds (Theorem 5): H(f) must be ω(p^(−1/2)·n^(−1/6)).
func (e *EntropyEstimator) AdditiveFloor(n uint64) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	return math.Pow(e.p, -0.5) * math.Pow(float64(n), -1.0/6)
}

// SpaceBytes returns the approximate memory footprint.
func (e *EntropyEstimator) SpaceBytes() int {
	if e.plugin != nil {
		return 16 * len(e.plugin)
	}
	return e.sk.SpaceBytes()
}
