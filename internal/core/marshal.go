package core

import (
	"encoding"
	"fmt"
	"math"

	"substream/internal/estimator"
	"substream/internal/levelset"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// This file serializes the paper's estimator wrappers with the shared
// wire primitives of internal/sketch, completing the cross-process story:
// an agent daemon ships its cumulative estimator state to a collector,
// which unmarshals and folds it with the Merge paths in merge.go. The
// core package owns the tag range 0x20–0x2f (see internal/server/doc.go).
//
// Only mergeable configurations serialize: the reservoir-position entropy
// sketch backend has no sound merge (a probe's run length cannot continue
// across processes), so it has no wire form either — MarshalBinary
// returns ErrNotMergeable and deployments that ship entropy must use the
// plugin backend.

// Type tags for the serialized estimator wrappers.
const (
	TagFkEstimator    byte = 0x20
	TagF0Estimator    byte = 0x21
	TagEntropy        byte = 0x22
	TagF1HeavyHitters byte = 0x23
	TagF2HeavyHitters byte = 0x24
	TagMonitor        byte = 0x25
	TagGEEF0Estimator byte = 0x26
)

// validP reports whether p is a legal sampling probability.
func validP(p float64) bool { return p > 0 && p <= 1 }

// MarshalBinary serializes the estimator, including its collision
// counter.
func (e *FkEstimator) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagFkEstimator)
	w.U32(uint32(e.k))
	w.F64(e.p)
	w.U64(e.nL)
	w.U32(uint32(len(e.schedule)))
	for _, eps := range e.schedule {
		w.F64(eps)
	}
	counter, err := levelset.MarshalCollisionCounter(e.collisions)
	if err != nil {
		return nil, err
	}
	w.Nested(counter)
	return w.Bytes(), nil
}

// UnmarshalFkEstimator reconstructs an FkEstimator from MarshalBinary
// output.
func UnmarshalFkEstimator(data []byte) (*FkEstimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagFkEstimator)
	k := int(r.U32())
	p := r.F64()
	nL := r.U64()
	if r.Err() == nil && (k < 2 || k > maxMomentOrder || !validP(p)) {
		r.Fail()
	}
	n := r.Count(maxMomentOrder+1, 8)
	if r.Err() == nil && n != k+1 {
		r.Failf("core: Fk schedule has %d entries, want %d", n, k+1)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	schedule := make([]float64, n)
	for i := range schedule {
		schedule[i] = r.F64()
		if r.Err() == nil && i >= 1 && !(schedule[i] > 0 && !math.IsInf(schedule[i], 0)) {
			r.Fail()
			return nil, r.Err()
		}
	}
	counter, err := levelset.UnmarshalCollisionCounter(r.Nested())
	if err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &FkEstimator{k: k, p: p, nL: nL, schedule: schedule, collisions: counter}, nil
}

// MarshalBinary serializes the estimator and its distinct-count backend.
func (e *F0Estimator) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagF0Estimator)
	w.F64(e.p)
	m, ok := e.backend.(encoding.BinaryMarshaler)
	if !ok {
		return nil, fmt.Errorf("core: F0 backend %T is not serializable", e.backend)
	}
	payload, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Nested(payload)
	return w.Bytes(), nil
}

// UnmarshalF0Estimator reconstructs an F0Estimator from MarshalBinary
// output.
func UnmarshalF0Estimator(data []byte) (*F0Estimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagF0Estimator)
	p := r.F64()
	if r.Err() == nil && !validP(p) {
		r.Fail()
	}
	nested := r.Nested()
	if err := r.Err(); err != nil {
		return nil, err
	}
	tag, err := sketch.PayloadTag(nested)
	if err != nil {
		return nil, err
	}
	// Gate to sketch-owned tags (0x01–0x0f) BEFORE decoding: sketch
	// payloads never nest registry decodes, so a crafted payload cannot
	// recurse composite estimators inside themselves.
	if tag == 0 || tag > 0x0f {
		return nil, fmt.Errorf("core: unknown F0 backend tag %#x", tag)
	}
	dec, err := estimator.Decode(nested)
	if err != nil {
		return nil, err
	}
	backend, ok := estimator.Unwrap(dec).(distinctBackend)
	if !ok {
		return nil, fmt.Errorf("core: F0 backend tag %#x decodes to %T, not a distinct counter",
			tag, estimator.Unwrap(dec))
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &F0Estimator{p: p, backend: backend}, nil
}

// MarshalBinary serializes the estimator: frequency profile in
// increasing item order.
func (e *GEEF0Estimator) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagGEEF0Estimator)
	w.F64(e.p)
	writeFreq(w, e.counts)
	return w.Bytes(), nil
}

// UnmarshalGEEF0Estimator reconstructs a GEEF0Estimator from
// MarshalBinary output.
func UnmarshalGEEF0Estimator(data []byte) (*GEEF0Estimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagGEEF0Estimator)
	p := r.F64()
	if r.Err() == nil && !validP(p) {
		r.Fail()
	}
	counts := readFreq(r)
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &GEEF0Estimator{p: p, counts: counts}, nil
}

// MarshalBinary serializes the estimator. Only the plugin backend has a
// wire form; the reservoir-position sketch backend returns
// ErrNotMergeable.
func (e *EntropyEstimator) MarshalBinary() ([]byte, error) {
	if e.plugin == nil {
		return nil, fmt.Errorf("%w: entropy sketch backend has no wire form", ErrNotMergeable)
	}
	w := &sketch.Writer{}
	w.Header(TagEntropy)
	w.F64(e.p)
	w.U64(e.nL)
	writeFreq(w, e.plugin)
	return w.Bytes(), nil
}

// UnmarshalEntropyEstimator reconstructs a plugin-backend
// EntropyEstimator from MarshalBinary output.
func UnmarshalEntropyEstimator(data []byte) (*EntropyEstimator, error) {
	r := sketch.NewReader(data)
	r.Header(TagEntropy)
	p := r.F64()
	nL := r.U64()
	if r.Err() == nil && !validP(p) {
		r.Fail()
	}
	plugin := readFreq(r)
	if r.Err() == nil {
		var sum uint64
		for _, c := range plugin {
			sum += c
		}
		if sum != nL {
			r.Failf("core: entropy frequencies sum to %d, header says %d", sum, nL)
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &EntropyEstimator{p: p, nL: nL, plugin: plugin}, nil
}

// MarshalBinary serializes the estimator: sketch backend and candidate
// tracker as nested payloads.
func (h *F1HeavyHitters) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagF1HeavyHitters)
	w.F64(h.p)
	w.F64(h.alpha)
	w.F64(h.eps)
	w.U64(h.observed)
	var payload []byte
	var err error
	if h.cm != nil {
		w.U8(0)
		payload, err = h.cm.MarshalBinary()
	} else {
		w.U8(1)
		payload, err = h.mg.MarshalBinary()
	}
	if err != nil {
		return nil, err
	}
	w.Nested(payload)
	tracker, err := h.tracker.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Nested(tracker)
	return w.Bytes(), nil
}

// UnmarshalF1HeavyHitters reconstructs an F1HeavyHitters from
// MarshalBinary output.
func UnmarshalF1HeavyHitters(data []byte) (*F1HeavyHitters, error) {
	r := sketch.NewReader(data)
	r.Header(TagF1HeavyHitters)
	p := r.F64()
	alpha := r.F64()
	eps := r.F64()
	observed := r.U64()
	kind := r.U8()
	if r.Err() == nil && (!validP(p) || !(alpha > 0 && alpha < 1) || !(eps > 0 && eps < 1) || kind > 1) {
		r.Fail()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	h := &F1HeavyHitters{p: p, alpha: alpha, eps: eps,
		alphaPr: (1 - 2*eps/5) * alpha, observed: observed}
	var err error
	if kind == 0 {
		h.cm, err = sketch.UnmarshalCountMin(r.Nested())
	} else {
		h.mg, err = sketch.UnmarshalMisraGries(r.Nested())
	}
	if err != nil {
		return nil, err
	}
	if h.tracker, err = sketch.UnmarshalTopK(r.Nested()); err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return h, nil
}

// MarshalBinary serializes the estimator: CountSketch and candidate
// tracker as nested payloads.
func (h *F2HeavyHitters) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagF2HeavyHitters)
	w.F64(h.p)
	w.F64(h.alpha)
	w.F64(h.eps)
	w.U64(h.nL)
	cs, err := h.cs.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Nested(cs)
	tracker, err := h.tracker.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w.Nested(tracker)
	return w.Bytes(), nil
}

// UnmarshalF2HeavyHitters reconstructs an F2HeavyHitters from
// MarshalBinary output.
func UnmarshalF2HeavyHitters(data []byte) (*F2HeavyHitters, error) {
	r := sketch.NewReader(data)
	r.Header(TagF2HeavyHitters)
	p := r.F64()
	alpha := r.F64()
	eps := r.F64()
	nL := r.U64()
	if r.Err() == nil && (!validP(p) || !(alpha > 0 && alpha < 1) || !(eps > 0 && eps < 1)) {
		r.Fail()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	h := &F2HeavyHitters{p: p, alpha: alpha, eps: eps,
		alphaPr: (1 - 2*eps/5) * alpha * math.Sqrt(p), nL: nL}
	var err error
	if h.cs, err = sketch.UnmarshalCountSketch(r.Nested()); err != nil {
		return nil, err
	}
	if h.tracker, err = sketch.UnmarshalTopK(r.Nested()); err != nil {
		return nil, err
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return h, nil
}

// Monitor sub-estimator presence bits.
const (
	monHasFk byte = 1 << iota
	monHasF0
	monHasEntropy
	monHasHH1
	monHasHH2
)

// MarshalBinary serializes the monitor: a presence bitmap followed by
// one nested payload per enabled estimator.
func (m *Monitor) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagMonitor)
	w.F64(m.p)
	w.U64(m.nL)
	var flags byte
	if m.fk != nil {
		flags |= monHasFk
	}
	if m.f0 != nil {
		flags |= monHasF0
	}
	if m.entropy != nil {
		flags |= monHasEntropy
	}
	if m.hh1 != nil {
		flags |= monHasHH1
	}
	if m.hh2 != nil {
		flags |= monHasHH2
	}
	w.U8(flags)
	parts := []func() ([]byte, error){}
	if m.fk != nil {
		parts = append(parts, m.fk.MarshalBinary)
	}
	if m.f0 != nil {
		parts = append(parts, m.f0.MarshalBinary)
	}
	if m.entropy != nil {
		parts = append(parts, m.entropy.MarshalBinary)
	}
	if m.hh1 != nil {
		parts = append(parts, m.hh1.MarshalBinary)
	}
	if m.hh2 != nil {
		parts = append(parts, m.hh2.MarshalBinary)
	}
	for _, marshal := range parts {
		payload, err := marshal()
		if err != nil {
			return nil, err
		}
		w.Nested(payload)
	}
	return w.Bytes(), nil
}

// UnmarshalMonitor reconstructs a Monitor from MarshalBinary output.
func UnmarshalMonitor(data []byte) (*Monitor, error) {
	r := sketch.NewReader(data)
	r.Header(TagMonitor)
	p := r.F64()
	nL := r.U64()
	flags := r.U8()
	if r.Err() == nil && (!validP(p) || flags >= 1<<5) {
		r.Fail()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	m := &Monitor{p: p, nL: nL}
	var err error
	if flags&monHasFk != 0 {
		if m.fk, err = UnmarshalFkEstimator(r.Nested()); err != nil {
			return nil, err
		}
	}
	if flags&monHasF0 != 0 {
		if m.f0, err = UnmarshalF0Estimator(r.Nested()); err != nil {
			return nil, err
		}
	}
	if flags&monHasEntropy != 0 {
		if m.entropy, err = UnmarshalEntropyEstimator(r.Nested()); err != nil {
			return nil, err
		}
	}
	if flags&monHasHH1 != 0 {
		if m.hh1, err = UnmarshalF1HeavyHitters(r.Nested()); err != nil {
			return nil, err
		}
	}
	if flags&monHasHH2 != 0 {
		if m.hh2, err = UnmarshalF2HeavyHitters(r.Nested()); err != nil {
			return nil, err
		}
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// writeFreq appends a frequency map in increasing item order.
func writeFreq(w *sketch.Writer, f stream.Freq) {
	items := sketch.SortedKeys(f)
	w.U32(uint32(len(items)))
	for _, it := range items {
		w.U64(uint64(it))
		w.U64(f[it])
	}
}

// readFreq reads a frequency map written by writeFreq.
func readFreq(r *sketch.Reader) stream.Freq {
	count := r.Count(sketch.MaxWireElems, 16)
	if r.Err() != nil {
		return nil
	}
	f := make(stream.Freq, count)
	var prev stream.Item
	for i := 0; i < count; i++ {
		it := stream.Item(r.U64())
		c := r.U64()
		if r.Err() != nil {
			return nil
		}
		if (i > 0 && it <= prev) || c < 1 {
			r.Fail()
			return nil
		}
		prev = it
		f[it] = c
	}
	return f
}
