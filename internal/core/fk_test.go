package core

import (
	"math"
	"testing"
	"testing/quick"

	"substream/internal/levelset"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

func zipfStream(n, m int, s float64, seed uint64) stream.Slice {
	r := rng.New(seed)
	z := rng.NewZipf(m, s)
	out := make(stream.Slice, n)
	for i := range out {
		out[i] = stream.Item(z.Draw(r))
	}
	return out
}

func feedFk(e *FkEstimator, s stream.Slice) {
	for _, it := range s {
		e.Observe(it)
	}
}

func TestFkExactWhenPOneExactCounter(t *testing.T) {
	// With p = 1 and the exact collision counter, Algorithm 1 reduces to
	// the Lemma 1 identity and must reproduce F_k exactly.
	f := func(counts [12]uint8) bool {
		var s stream.Slice
		for i, c := range counts {
			for j := 0; j < int(c%25); j++ {
				s = append(s, stream.Item(i+1))
			}
		}
		if len(s) == 0 {
			return true
		}
		fr := stream.NewFreq(s)
		for k := 2; k <= 5; k++ {
			e := NewFkEstimator(FkConfig{K: k, P: 1, Exact: true}, rng.New(1))
			feedFk(e, s)
			want := fr.Fk(k)
			got := e.Estimate()
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFkMomentsConsistent(t *testing.T) {
	s := zipfStream(20000, 200, 1.1, 1)
	fr := stream.NewFreq(s)
	e := NewFkEstimator(FkConfig{K: 4, P: 1, Exact: true}, rng.New(2))
	feedFk(e, s)
	phi := e.Moments()
	for l := 1; l <= 4; l++ {
		want := fr.Fk(l)
		if math.Abs(phi[l]-want) > 1e-6*want {
			t.Fatalf("φ_%d = %v, want %v", l, phi[l], want)
		}
	}
}

func TestFkUnbiasedUnderSampling(t *testing.T) {
	// With the exact counter, E[C_ℓ(L)/p^ℓ] = C_ℓ(P), so the estimate
	// should be unbiased across many independent samples.
	s := zipfStream(30000, 100, 1.0, 3)
	exact := stream.NewFreq(s).Fk(2)
	const p, trials = 0.1, 60
	b := sample.NewBernoulli(p)
	var sum float64
	r := rng.New(4)
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(s, r.Split())
		e := NewFkEstimator(FkConfig{K: 2, P: p, Exact: true}, r.Split())
		feedFk(e, L)
		sum += e.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.1 {
		t.Fatalf("mean F2 estimate %v, exact %v", mean, exact)
	}
}

func TestFkAccuracyImprovesWithP(t *testing.T) {
	// Theorem 1's tradeoff: larger p → lower error (at fixed space).
	s := zipfStream(100000, 1000, 1.1, 5)
	exact := stream.NewFreq(s).Fk(2)
	meanErr := func(p float64, seed uint64) float64 {
		const trials = 15
		b := sample.NewBernoulli(p)
		r := rng.New(seed)
		var total float64
		for tr := 0; tr < trials; tr++ {
			L := b.Apply(s, r.Split())
			e := NewFkEstimator(FkConfig{K: 2, P: p, Exact: true}, r.Split())
			feedFk(e, L)
			total += math.Abs(e.Estimate()-exact) / exact
		}
		return total / trials
	}
	errHigh := meanErr(0.5, 6)
	errLow := meanErr(0.02, 7)
	if errHigh > errLow {
		t.Fatalf("error did not shrink with p: p=0.5 → %v, p=0.02 → %v", errHigh, errLow)
	}
	if errHigh > 0.05 {
		t.Fatalf("p=0.5 error too large: %v", errHigh)
	}
}

func TestFkHigherMomentsUnderSampling(t *testing.T) {
	s := zipfStream(80000, 300, 1.2, 8)
	fr := stream.NewFreq(s)
	const p = 0.2
	b := sample.NewBernoulli(p)
	for _, k := range []int{3, 4} {
		const trials = 25
		var sum float64
		exact := fr.Fk(k)
		r := rng.New(uint64(10 + k))
		for tr := 0; tr < trials; tr++ {
			L := b.Apply(s, r.Split())
			e := NewFkEstimator(FkConfig{K: k, P: p, Exact: true}, r.Split())
			feedFk(e, L)
			sum += e.Estimate()
		}
		mean := sum / trials
		if math.Abs(mean-exact)/exact > 0.15 {
			t.Fatalf("k=%d: mean estimate %v, exact %v", k, mean, exact)
		}
	}
}

func TestFkLevelSetBackendTracksExact(t *testing.T) {
	// The level-set backend under a real budget should agree with the
	// exact backend within the schedule's tolerance on a skewed stream.
	s := zipfStream(150000, 20000, 1.3, 9)
	exact := stream.NewFreq(s).Fk(2)
	const p = 0.2
	b := sample.NewBernoulli(p)
	r := rng.New(10)
	L := b.Apply(s, r.Split())
	e := NewFkEstimator(FkConfig{K: 2, P: p, Epsilon: 0.2, Budget: 4096}, r.Split())
	feedFk(e, L)
	got := e.Estimate()
	if relErr := math.Abs(got-exact) / exact; relErr > 0.35 {
		t.Fatalf("level-set F2 = %v, exact %v (rel err %v)", got, exact, relErr)
	}
}

func TestFkWithLiteralIWBackend(t *testing.T) {
	// The literal Indyk–Woodruff backend plugs into Algorithm 1 through
	// the Collisions override and must land in the same accuracy class
	// as the default backend on a skewed stream.
	s := zipfStream(120000, 10000, 1.3, 20)
	exact := stream.NewFreq(s).Fk(2)
	const p = 0.2
	b := sample.NewBernoulli(p)
	r := rng.New(21)
	L := b.Apply(s, r.Split())
	e := NewFkEstimator(FkConfig{
		K: 2, P: p, Epsilon: 0.2,
		Collisions: levelset.NewIW(levelset.IWConfig{EpsPrime: 0.025, Width: 2048}, r.Split()),
	}, r.Split())
	feedFk(e, L)
	got := e.Estimate()
	if rel := math.Abs(got-exact) / exact; rel > 0.35 {
		t.Fatalf("IW-backed F2 = %v, exact %v (rel %v)", got, exact, rel)
	}
}

func TestFkStdErrEstimateCalibration(t *testing.T) {
	// The plug-in standard error should be the right order of magnitude:
	// the empirical spread of estimates across independent samples must
	// lie within a small constant factor of the reported SE.
	s := zipfStream(60000, 500, 1.1, 22)
	const p, trials = 0.1, 40
	b := sample.NewBernoulli(p)
	r := rng.New(23)
	var ests stats
	var seSum float64
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(s, r.Split())
		e := NewFkEstimator(FkConfig{K: 2, P: p, Exact: true}, r.Split())
		feedFk(e, L)
		ests.add(e.Estimate())
		seSum += e.StdErrEstimate(2)
	}
	meanSE := seSum / trials
	empirical := ests.stddev()
	if empirical > 20*meanSE || meanSE > 50*empirical {
		t.Fatalf("SE estimate %v vs empirical spread %v: wrong order of magnitude", meanSE, empirical)
	}
}

// stats is a minimal local accumulator to avoid importing the stats
// package into core's tests (which would not be a cycle, but keeps the
// test self-contained).
type stats struct {
	n          int
	sum, sumsq float64
}

func (s *stats) add(v float64) { s.n++; s.sum += v; s.sumsq += v * v }
func (s *stats) stddev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.sum / float64(s.n)
	return math.Sqrt((s.sumsq - float64(s.n)*mean*mean) / float64(s.n-1))
}

func TestFkStdErrPanics(t *testing.T) {
	e := NewFkEstimator(FkConfig{K: 3, P: 0.5, Exact: true}, rng.New(1))
	for _, l := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("StdErrEstimate(%d) did not panic", l)
				}
			}()
			e.StdErrEstimate(l)
		}()
	}
	if got := e.StdErrEstimate(2); got != 0 {
		t.Fatalf("empty-stream SE = %v, want 0", got)
	}
}

func TestFkSampledLengthAndAccessors(t *testing.T) {
	e := NewFkEstimator(FkConfig{K: 3, P: 0.5, Exact: true}, rng.New(11))
	for i := 0; i < 100; i++ {
		e.Observe(stream.Item(i%10 + 1))
	}
	if e.SampledLength() != 100 {
		t.Fatalf("SampledLength = %d", e.SampledLength())
	}
	if e.K() != 3 || e.P() != 0.5 {
		t.Fatalf("accessors wrong: K=%d P=%v", e.K(), e.P())
	}
	if len(e.Schedule()) != 4 {
		t.Fatalf("schedule length %d", len(e.Schedule()))
	}
	if e.SpaceBytes() <= 0 {
		t.Fatal("SpaceBytes not positive")
	}
}

func TestFkEmptyStream(t *testing.T) {
	e := NewFkEstimator(FkConfig{K: 2, P: 0.5, Exact: true}, rng.New(12))
	if got := e.Estimate(); got != 0 {
		t.Fatalf("empty-stream estimate %v", got)
	}
}

func TestFkClampAtF1(t *testing.T) {
	// A stream of all-distinct samples has C2(L) = 0; the estimate must
	// not fall below φ₁ = F₁(L)/p (moments are monotone).
	e := NewFkEstimator(FkConfig{K: 2, P: 0.5, Exact: true}, rng.New(13))
	for i := 1; i <= 1000; i++ {
		e.Observe(stream.Item(i))
	}
	phi1 := float64(1000) / 0.5
	if got := e.Estimate(); got < phi1 {
		t.Fatalf("estimate %v below φ₁ %v", got, phi1)
	}
}

func TestFkPanics(t *testing.T) {
	cases := []FkConfig{
		{K: 1, P: 0.5},
		{K: 13, P: 0.5},
		{K: 2, P: 0},
		{K: 2, P: 1.5},
		{K: 2, P: 0.5, Epsilon: -1},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewFkEstimator(cfg, rng.New(1))
		}()
	}
}

func TestMinSamplingP(t *testing.T) {
	if got := MinSamplingP(10000, 1<<40, 2); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("MinSamplingP = %v, want 0.01", got)
	}
	if got := MinSamplingP(0, 0, 2); got != 1 {
		t.Fatalf("MinSamplingP empty = %v", got)
	}
}

func TestFkTimeSpaceTradeoffSmoke(t *testing.T) {
	// §1.2: for F2 with n = Θ(m), p = Θ(1/√n) yields a sublinear-space
	// estimator that still lands within a constant factor.
	const n = 1 << 16
	s := zipfStream(n, n, 1.0, 14)
	exact := stream.NewFreq(s).Fk(2)
	p := 4 / math.Sqrt(float64(n))
	b := sample.NewBernoulli(p)
	r := rng.New(15)
	const trials = 10
	var sum float64
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(s, r.Split())
		e := NewFkEstimator(FkConfig{K: 2, P: p, Exact: true}, r.Split())
		feedFk(e, L)
		sum += e.Estimate()
	}
	mean := sum / trials
	if mean < exact/3 || mean > exact*3 {
		t.Fatalf("sublinear-p mean estimate %v, exact %v", mean, exact)
	}
}
