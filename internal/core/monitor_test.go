package core

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

func TestMonitorAllStats(t *testing.T) {
	s := zipfStream(100000, 2000, 1.1, 1)
	f := stream.NewFreq(s)
	const p = 0.2
	mon := NewMonitor(MonitorConfig{P: p, HHAlpha: 0.02}, rng.New(2))
	L := sample.NewBernoulli(p).Apply(s, rng.New(3))
	for _, it := range L {
		mon.Observe(it)
	}
	rep := mon.Report()

	if rep.SampledLength != uint64(len(L)) {
		t.Fatalf("SampledLength = %d, want %d", rep.SampledLength, len(L))
	}
	if math.Abs(rep.EstimatedLength-float64(len(s)))/float64(len(s)) > 0.05 {
		t.Fatalf("EstimatedLength = %v, want ≈ %d", rep.EstimatedLength, len(s))
	}
	exactF2 := f.Fk(2)
	if math.Abs(rep.Fk-exactF2)/exactF2 > 0.4 {
		t.Fatalf("Fk = %v, exact %v", rep.Fk, exactF2)
	}
	mult := math.Max(rep.F0/float64(f.F0()), float64(f.F0())/rep.F0)
	if mult > 4/math.Sqrt(p) {
		t.Fatalf("F0 = %v, exact %d (mult %v)", rep.F0, f.F0(), mult)
	}
	exactH := f.Entropy()
	if ratio := rep.Entropy / exactH; ratio < 0.5 || ratio > 2 {
		t.Fatalf("Entropy = %v, exact %v", rep.Entropy, exactH)
	}
	// Every true 2% F1 hitter is reported.
	for _, hh := range f.FkHeavyHitters(1, 0.02) {
		found := false
		for _, r := range rep.F1HeavyHitters {
			if r.Item == hh.Item {
				found = true
			}
		}
		if !found {
			t.Fatalf("monitor missed F1 heavy hitter %d", hh.Item)
		}
	}
	if mon.SpaceBytes() <= 0 {
		t.Fatal("SpaceBytes not positive")
	}
}

func TestMonitorDisableFlags(t *testing.T) {
	mon := NewMonitor(MonitorConfig{
		P:          0.5,
		DisableFk:  true,
		DisableF0:  true,
		DisableHH2: true,
	}, rng.New(4))
	for i := 0; i < 1000; i++ {
		mon.Observe(stream.Item(i%50 + 1))
	}
	rep := mon.Report()
	if rep.Fk != 0 || rep.F0 != 0 || rep.F2HeavyHitters != nil {
		t.Fatalf("disabled estimators produced output: %+v", rep)
	}
	if rep.Entropy == 0 {
		t.Fatal("enabled entropy produced nothing")
	}
	if rep.SampledLength != 1000 {
		t.Fatalf("SampledLength = %d", rep.SampledLength)
	}
}

func TestMonitorDisabledSmallerSpace(t *testing.T) {
	full := NewMonitor(MonitorConfig{P: 0.5}, rng.New(5))
	lean := NewMonitor(MonitorConfig{P: 0.5, DisableFk: true, DisableHH1: true, DisableHH2: true}, rng.New(5))
	if lean.SpaceBytes() >= full.SpaceBytes() {
		t.Fatalf("lean monitor not smaller: %d vs %d", lean.SpaceBytes(), full.SpaceBytes())
	}
}

func TestMonitorLargeAlphaClamped(t *testing.T) {
	// Regression: HHAlpha near 1 must not push the derived F₂ threshold
	// out of its (0, 1) domain.
	mon := NewMonitor(MonitorConfig{P: 0.5, HHAlpha: 0.4}, rng.New(20))
	for i := 0; i < 100; i++ {
		mon.Observe(stream.Item(i%5 + 1))
	}
	if rep := mon.Report(); rep.SampledLength != 100 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestMonitorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMonitor(P=0) did not panic")
		}
	}()
	NewMonitor(MonitorConfig{P: 0}, rng.New(1))
}

func TestMonitorEmptyReport(t *testing.T) {
	mon := NewMonitor(MonitorConfig{P: 0.5}, rng.New(6))
	rep := mon.Report()
	if rep.SampledLength != 0 || rep.EstimatedLength != 0 {
		t.Fatalf("empty report: %+v", rep)
	}
}
