package core

import (
	"substream/internal/levelset"
	"substream/internal/stream"
)

// This file adds batched ingestion. UpdateBatch(items) observes every
// item of a batch with one call, removing the per-item interface dispatch
// that dominates channel-fed deployments and letting the backends run
// their cache-friendly batch loops (see internal/sketch/batch.go). Every
// UpdateBatch produces state bit-identical to calling Observe per item —
// the invariant internal/estimator's registry-driven equivalence test
// pins for every serializable kind, so the batched pipeline, the
// sequential CLI, and a replayed stream all converge on one state.

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *FkEstimator) UpdateBatch(items []stream.Item) {
	e.nL += uint64(len(items))
	if bc, ok := e.collisions.(levelset.BatchCounter); ok {
		bc.UpdateBatch(items)
		return
	}
	for _, it := range items {
		e.collisions.Observe(it)
	}
}

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *F0Estimator) UpdateBatch(items []stream.Item) {
	type batcher interface{ UpdateBatch([]stream.Item) }
	if b, ok := e.backend.(batcher); ok {
		b.UpdateBatch(items)
		return
	}
	for _, it := range items {
		e.backend.Observe(it)
	}
}

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *GEEF0Estimator) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		e.counts[it]++
	}
}

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *EntropyEstimator) UpdateBatch(items []stream.Item) {
	e.nL += uint64(len(items))
	if e.plugin != nil {
		for _, it := range items {
			e.plugin[it]++
		}
		return
	}
	e.sk.UpdateBatch(items)
}

// UpdateBatch feeds a batch of sampled-stream elements. The candidate
// tracker's scores depend on the sketch state at each item's own
// observation, so sketch update and tracker re-score stay interleaved
// per item — batching's win here comes from the divide-free point-query
// kernels, not from reordering — and the batched state is bit-identical
// to per-item observation.
func (h *F1HeavyHitters) UpdateBatch(items []stream.Item) {
	h.observed += uint64(len(items))
	if h.cm != nil {
		for _, it := range items {
			h.cm.Observe(it)
			h.tracker.Update(it, float64(h.cm.Estimate(it)))
		}
		return
	}
	for _, it := range items {
		h.mg.Observe(it)
		h.tracker.Update(it, float64(h.mg.Estimate(it)))
	}
}

// UpdateBatch feeds a batch of sampled-stream elements, interleaved per
// item like F1HeavyHitters.UpdateBatch.
func (h *F2HeavyHitters) UpdateBatch(items []stream.Item) {
	h.nL += uint64(len(items))
	for _, it := range items {
		h.cs.Observe(it)
		if est := h.cs.Estimate(it); est > 0 {
			h.tracker.Update(it, float64(est))
		}
	}
}

// UpdateBatch feeds a batch of sampled-stream elements to every enabled
// estimator.
func (m *Monitor) UpdateBatch(items []stream.Item) {
	m.nL += uint64(len(items))
	if m.fk != nil {
		m.fk.UpdateBatch(items)
	}
	if m.f0 != nil {
		m.f0.UpdateBatch(items)
	}
	if m.entropy != nil {
		m.entropy.UpdateBatch(items)
	}
	if m.hh1 != nil {
		m.hh1.UpdateBatch(items)
	}
	if m.hh2 != nil {
		m.hh2.UpdateBatch(items)
	}
}
