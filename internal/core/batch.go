package core

import (
	"substream/internal/levelset"
	"substream/internal/stream"
)

// This file adds batched ingestion. UpdateBatch(items) observes every
// item of a batch with one call, removing the per-item interface dispatch
// that dominates channel-fed deployments and letting the backends run
// their cache-friendly batch loops (see internal/sketch/batch.go). Every
// UpdateBatch is behaviorally equivalent to calling Observe per item;
// randomized backends may consume their generator in a different order,
// so results are statistically — not bit-for-bit — identical.

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *FkEstimator) UpdateBatch(items []stream.Item) {
	e.nL += uint64(len(items))
	if bc, ok := e.collisions.(levelset.BatchCounter); ok {
		bc.UpdateBatch(items)
		return
	}
	for _, it := range items {
		e.collisions.Observe(it)
	}
}

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *F0Estimator) UpdateBatch(items []stream.Item) {
	type batcher interface{ UpdateBatch([]stream.Item) }
	if b, ok := e.backend.(batcher); ok {
		b.UpdateBatch(items)
		return
	}
	for _, it := range items {
		e.backend.Observe(it)
	}
}

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *GEEF0Estimator) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		e.counts[it]++
	}
}

// UpdateBatch feeds a batch of sampled-stream elements.
func (e *EntropyEstimator) UpdateBatch(items []stream.Item) {
	e.nL += uint64(len(items))
	if e.plugin != nil {
		for _, it := range items {
			e.plugin[it]++
		}
		return
	}
	e.sk.UpdateBatch(items)
}

// UpdateBatch feeds a batch of sampled-stream elements: the sketch
// absorbs the whole batch first, then the candidate tracker is re-scored
// once per item with the post-batch estimates. Estimates only grow under
// inserts, so candidates admitted this way are at least as accurate as
// under per-item observation, and Report re-queries the sketch anyway.
func (h *F1HeavyHitters) UpdateBatch(items []stream.Item) {
	h.observed += uint64(len(items))
	if h.cm != nil {
		h.cm.UpdateBatch(items)
		for _, it := range items {
			h.tracker.Update(it, float64(h.cm.Estimate(it)))
		}
		return
	}
	h.mg.UpdateBatch(items)
	for _, it := range items {
		if est := h.mg.Estimate(it); est > 0 {
			h.tracker.Update(it, float64(est))
		}
	}
}

// UpdateBatch feeds a batch of sampled-stream elements, like
// F1HeavyHitters.UpdateBatch.
func (h *F2HeavyHitters) UpdateBatch(items []stream.Item) {
	h.nL += uint64(len(items))
	h.cs.UpdateBatch(items)
	for _, it := range items {
		if est := h.cs.Estimate(it); est > 0 {
			h.tracker.Update(it, float64(est))
		}
	}
}

// UpdateBatch feeds a batch of sampled-stream elements to every enabled
// estimator.
func (m *Monitor) UpdateBatch(items []stream.Item) {
	m.nL += uint64(len(items))
	if m.fk != nil {
		m.fk.UpdateBatch(items)
	}
	if m.f0 != nil {
		m.f0.UpdateBatch(items)
	}
	if m.entropy != nil {
		m.entropy.UpdateBatch(items)
	}
	if m.hh1 != nil {
		m.hh1.UpdateBatch(items)
	}
	if m.hh2 != nil {
		m.hh2.UpdateBatch(items)
	}
}
