package core

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

func TestEntropyPluginConstantFactor(t *testing.T) {
	// Lemma 10 regime: entropy well above the additive floor; the
	// estimate must be within a constant factor (we check a tight one).
	s := zipfStream(100000, 5000, 1.0, 1)
	exact := stream.NewFreq(s).Entropy()
	for _, p := range []float64{0.5, 0.1, 0.05} {
		b := sample.NewBernoulli(p)
		r := rng.New(2)
		L := b.Apply(s, r.Split())
		e := NewEntropyEstimator(EntropyConfig{P: p}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		got := e.Estimate()
		if e.AdditiveFloor(uint64(len(s))) > exact/10 {
			t.Fatalf("p=%v: test workload below the guarantee regime", p)
		}
		ratio := got / exact
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("p=%v: H estimate %v, exact %v (ratio %v)", p, got, exact, ratio)
		}
	}
}

func TestEntropyHpnMatchesPaperQuantity(t *testing.T) {
	// H_pn(g) computed by the estimator must equal the definition.
	s := zipfStream(20000, 500, 1.1, 3)
	const p = 0.2
	b := sample.NewBernoulli(p)
	r := rng.New(4)
	L := b.Apply(s, r.Split())
	e := NewEntropyEstimator(EntropyConfig{P: p}, r.Split())
	for _, it := range L {
		e.Observe(it)
	}
	g := stream.NewFreq(L)
	pn := p * float64(len(s))
	var want float64
	for _, c := range g {
		want += float64(c) / pn * math.Log2(pn/float64(c))
	}
	got := e.EstimateHpn(uint64(len(s)))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Hpn = %v, want %v", got, want)
	}
}

func TestEntropyProposition1(t *testing.T) {
	// |H_pn(g) − H(g)| = O(log m/√(pn)): check the gap is small for a
	// large sampled stream.
	s := zipfStream(200000, 2000, 1.0, 5)
	const p = 0.25
	b := sample.NewBernoulli(p)
	r := rng.New(6)
	L := b.Apply(s, r.Split())
	e := NewEntropyEstimator(EntropyConfig{P: p}, r.Split())
	for _, it := range L {
		e.Observe(it)
	}
	hg := e.Estimate()                   // exact H(g) via plugin
	hpn := e.EstimateHpn(uint64(len(s))) // H_pn(g)
	gap := math.Abs(hpn - hg)            // Proposition 1 quantity
	bound := 10 * math.Log2(2000) / math.Sqrt(p*float64(len(s)))
	if gap > bound {
		t.Fatalf("|Hpn − H(g)| = %v > bound %v", gap, bound)
	}
}

func TestEntropySketchBackend(t *testing.T) {
	s := zipfStream(80000, 1000, 1.0, 7)
	exact := stream.NewFreq(s).Entropy()
	const p = 0.3
	b := sample.NewBernoulli(p)
	r := rng.New(8)
	L := b.Apply(s, r.Split())
	e := NewEntropyEstimator(EntropyConfig{P: p, Backend: EntropySketch}, r.Split())
	for _, it := range L {
		e.Observe(it)
	}
	got := e.Estimate()
	ratio := got / exact
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("sketch entropy %v, exact %v", got, exact)
	}
	if e.SampledLength() != uint64(len(L)) {
		t.Fatalf("SampledLength = %d, want %d", e.SampledLength(), len(L))
	}
}

func TestEntropyLemma9Scenario1(t *testing.T) {
	// Scenario 1: f₁ = n−k with k = 1/(10p) singletons. H(f) > 0 but the
	// sampled stream frequently contains no singleton at all, making the
	// sampled entropy estimate ≈ 0 — no multiplicative approximation.
	const n, p = 100000, 0.01
	k := int(1 / (10 * p)) // 10 singletons
	var s stream.Slice
	for i := 0; i < n-k; i++ {
		s = append(s, 1)
	}
	for i := 0; i < k; i++ {
		s = append(s, stream.Item(i+2))
	}
	exact := stream.NewFreq(s).Entropy()
	if exact <= 0 {
		t.Fatal("scenario 1 entropy should be positive")
	}
	// Count over trials how often the sampled stream has zero entropy.
	zeroTrials := 0
	const trials = 50
	b := sample.NewBernoulli(p)
	r := rng.New(9)
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(s, r.Split())
		e := NewEntropyEstimator(EntropyConfig{P: p}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		if e.Estimate() < exact/100 {
			zeroTrials++
		}
	}
	// (1−p)^k ≈ 0.90: most trials should collapse.
	if zeroTrials < trials/2 {
		t.Fatalf("only %d/%d trials collapsed; Lemma 9 scenario not reproduced", zeroTrials, trials)
	}
}

func TestEntropyAdditiveFloor(t *testing.T) {
	e := NewEntropyEstimator(EntropyConfig{P: 0.01}, rng.New(10))
	got := e.AdditiveFloor(1 << 30)
	want := math.Pow(0.01, -0.5) * math.Pow(float64(uint64(1)<<30), -1.0/6)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AdditiveFloor = %v, want %v", got, want)
	}
	if !math.IsInf(e.AdditiveFloor(0), 1) {
		t.Fatal("AdditiveFloor(0) should be +Inf")
	}
}

func TestEntropyPanics(t *testing.T) {
	cases := []func(){
		func() { NewEntropyEstimator(EntropyConfig{P: 0}, rng.New(1)) },
		func() { NewEntropyEstimator(EntropyConfig{P: 0.5, Backend: EntropyBackend(9)}, rng.New(1)) },
		func() {
			e := NewEntropyEstimator(EntropyConfig{P: 0.5, Backend: EntropySketch}, rng.New(1))
			e.EstimateHpn(10)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEntropyEmpty(t *testing.T) {
	e := NewEntropyEstimator(EntropyConfig{P: 0.5}, rng.New(11))
	if e.Estimate() != 0 || e.EstimateHpn(0) != 0 {
		t.Fatal("empty entropy not zero")
	}
}
