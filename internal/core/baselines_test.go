package core

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

func TestScaledF2UnbiasedAtModerateP(t *testing.T) {
	s := zipfStream(50000, 500, 1.0, 1)
	exact := stream.NewFreq(s).Fk(2)
	const p, trials = 0.5, 40
	b := sample.NewBernoulli(p)
	r := rng.New(2)
	var sum float64
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(s, r.Split())
		e := NewScaledF2Estimator(ScaledF2Config{P: p, Width: 8192, Depth: 5}, r.Split())
		for _, it := range L {
			e.Observe(it)
		}
		sum += e.Estimate()
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.1 {
		t.Fatalf("scaled F2 mean %v, exact %v", mean, exact)
	}
}

func TestScaledF2ErrorAmplifiedAtSmallP(t *testing.T) {
	// At equal sketch space, the scaled estimator's error should exceed
	// the collision estimator's at small p — the §1.3 comparison.
	s := zipfStream(100000, 2000, 1.1, 3)
	exact := stream.NewFreq(s).Fk(2)
	const p, trials = 0.02, 20
	b := sample.NewBernoulli(p)
	r := rng.New(4)
	var scaledErr, collisionErr float64
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(s, r.Split())
		se := NewScaledF2Estimator(ScaledF2Config{P: p, Width: 256, Depth: 5}, r.Split())
		ce := NewFkEstimator(FkConfig{K: 2, P: p, Exact: true}, r.Split())
		for _, it := range L {
			se.Observe(it)
			ce.Observe(it)
		}
		scaledErr += math.Abs(se.Estimate()-exact) / exact
		collisionErr += math.Abs(ce.Estimate()-exact) / exact
	}
	scaledErr /= trials
	collisionErr /= trials
	if collisionErr >= scaledErr {
		t.Fatalf("collision err %v not better than scaled err %v at p=%v",
			collisionErr, scaledErr, p)
	}
}

func TestScaledF2Clamp(t *testing.T) {
	// With almost no data the inversion can go below F1(L)/p; it must
	// clamp rather than return a negative moment.
	e := NewScaledF2Estimator(ScaledF2Config{P: 0.5}, rng.New(5))
	e.Observe(1)
	if got := e.Estimate(); got < 2 {
		t.Fatalf("clamped estimate %v < F1 floor 2", got)
	}
}

func TestNaiveFkUnderestimatesSkewedStreams(t *testing.T) {
	// F_k(L)/p^k drops the lower-order binomial terms; on a stream whose
	// F2 has a large linear component it must undershoot noticeably,
	// while Algorithm 1 stays close.
	var s stream.Slice
	for i := 0; i < 20000; i++ {
		s = append(s, stream.Item(i%10000+1)) // every item twice
	}
	exact := stream.NewFreq(s).Fk(2) // 10000·4 = 40000
	const p, trials = 0.1, 30
	b := sample.NewBernoulli(p)
	r := rng.New(6)
	var naiveSum, algoSum float64
	for tr := 0; tr < trials; tr++ {
		L := b.Apply(s, r.Split())
		naive := NewNaiveFkEstimator(2, p)
		algo := NewFkEstimator(FkConfig{K: 2, P: p, Exact: true}, r.Split())
		for _, it := range L {
			naive.Observe(it)
			algo.Observe(it)
		}
		naiveSum += naive.Estimate()
		algoSum += algo.Estimate()
	}
	naiveMean := naiveSum / trials
	algoMean := algoSum / trials
	// Naive expectation: (p²F2 + p(1−p)F1)/p² = F2 + F1(1−p)/p = 40000 +
	// 20000·9 = 220000 — a 5.5× overestimate (the bias is upward here
	// because the linear term dominates at small p).
	if naiveMean < exact*3 {
		t.Fatalf("naive estimator unexpectedly accurate: %v vs exact %v", naiveMean, exact)
	}
	if math.Abs(algoMean-exact)/exact > 0.25 {
		t.Fatalf("Algorithm 1 mean %v, exact %v", algoMean, exact)
	}
}

func TestNaiveF0CollapsesOnSingletonStream(t *testing.T) {
	// F0(L)/p overestimates F0(P)=n? No: F0(L) ≈ pn, so naive ≈ n — fine
	// on singleton streams. The failure mode is duplicate-heavy streams:
	// F0(L) ≈ F0(P) (every value still appears), so naive ≈ F0/p ≫ F0.
	s := distinctStream(2000, 20)
	exact := float64(stream.NewFreq(s).F0())
	const p = 0.1
	b := sample.NewBernoulli(p)
	r := rng.New(7)
	L := b.Apply(s, r.Split())
	naive := NewNaiveF0Estimator(p, 1024, r.Split())
	algo := NewF0Estimator(F0Config{P: p}, r.Split())
	for _, it := range L {
		naive.Observe(it)
		algo.Observe(it)
	}
	naiveEst := naive.Estimate()
	algoEst := algo.Estimate()
	if naiveEst < exact*5 {
		t.Fatalf("naive F0 did not blow up: %v vs exact %v", naiveEst, exact)
	}
	mult := math.Max(algoEst/exact, exact/algoEst)
	if mult > 4/math.Sqrt(p) {
		t.Fatalf("Algorithm 2 outside bound: %v vs %v", algoEst, exact)
	}
}

func TestBaselinePanics(t *testing.T) {
	cases := []func(){
		func() { NewScaledF2Estimator(ScaledF2Config{P: 0}, rng.New(1)) },
		func() { NewNaiveFkEstimator(0, 0.5) },
		func() { NewNaiveFkEstimator(2, 0) },
		func() { NewNaiveF0Estimator(0, 16, rng.New(1)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBaselineSpaceAccounting(t *testing.T) {
	se := NewScaledF2Estimator(ScaledF2Config{P: 0.5, Width: 64, Depth: 2}, rng.New(8))
	if se.SpaceBytes() < 8*128 {
		t.Fatalf("scaled F2 space %d too small", se.SpaceBytes())
	}
	nf := NewNaiveFkEstimator(2, 0.5)
	nf.Observe(1)
	if nf.SpaceBytes() != 16 {
		t.Fatalf("naive Fk space = %d", nf.SpaceBytes())
	}
	n0 := NewNaiveF0Estimator(0.5, 16, rng.New(9))
	if n0.SpaceBytes() <= 0 {
		t.Fatal("naive F0 space not positive")
	}
}
