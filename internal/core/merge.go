package core

import (
	"errors"
	"fmt"

	"substream/internal/levelset"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// This file makes the paper's estimators mergeable: several replicas,
// each observing a disjoint share of the sampled stream L (or each
// Bernoulli-sampling its own share of the original stream P — the two
// deployments are equivalent because sub-sampling commutes with
// partitioning), fold into a single estimator whose estimates concern the
// whole stream. This is the seam the sharded ingestion pipeline
// (internal/pipeline) and the distributed-monitor example build on.
//
// Mergeability requires structurally identical replicas: construct every
// replica with the same configuration AND a generator seeded identically
// (the deterministic constructors make this trivial). Merge verifies
// structure and hash agreement and returns sketch.ErrIncompatible when
// replicas were not built that way. Backends that are inherently
// single-stream (the reservoir-position entropy sketch) return
// ErrNotMergeable.

// ErrNotMergeable is returned by Merge when the estimator's configured
// backend has no sound merge operation.
var ErrNotMergeable = errors.New("core: estimator backend does not support merging")

// Merge folds other into e. Both must be configured identically (same K,
// P, and schedule) and share a mergeable collision backend constructed
// from identical generator state.
func (e *FkEstimator) Merge(other *FkEstimator) error {
	if e.k != other.k || e.p != other.p {
		return fmt.Errorf("%w: FkEstimator (K=%d,P=%g) vs (K=%d,P=%g)",
			sketch.ErrIncompatible, e.k, e.p, other.k, other.p)
	}
	mc, ok := e.collisions.(levelset.MergeableCounter)
	if !ok {
		return fmt.Errorf("%w: collision counter %T", ErrNotMergeable, e.collisions)
	}
	if err := mc.MergeCounter(other.collisions); err != nil {
		return err
	}
	e.nL += other.nL
	return nil
}

// Merge folds other into e. Replicas must share P and a backend
// constructed from identical generator state; the distinct-count sketches
// merge exactly, so the merged estimate equals a single estimator's over
// the union stream.
func (e *F0Estimator) Merge(other *F0Estimator) error {
	if e.p != other.p {
		return fmt.Errorf("%w: F0Estimator P %g vs %g", sketch.ErrIncompatible, e.p, other.p)
	}
	switch b := e.backend.(type) {
	case *sketch.KMV:
		o, ok := other.backend.(*sketch.KMV)
		if !ok {
			return fmt.Errorf("%w: F0 backends %T vs %T", sketch.ErrIncompatible, e.backend, other.backend)
		}
		return b.Merge(o)
	case *sketch.HLL:
		o, ok := other.backend.(*sketch.HLL)
		if !ok {
			return fmt.Errorf("%w: F0 backends %T vs %T", sketch.ErrIncompatible, e.backend, other.backend)
		}
		return b.Merge(o)
	default:
		return fmt.Errorf("%w: F0 backend %T", ErrNotMergeable, e.backend)
	}
}

// Merge folds other into e: frequency profiles add exactly.
func (e *GEEF0Estimator) Merge(other *GEEF0Estimator) error {
	if e.p != other.p {
		return fmt.Errorf("%w: GEEF0Estimator P %g vs %g", sketch.ErrIncompatible, e.p, other.p)
	}
	for it, c := range other.counts {
		e.counts[it] += c
	}
	return nil
}

// Merge folds other into e. The plugin backend merges exactly (frequency
// vectors add). The reservoir-position sketch backend has no sound merge
// — a probe's run length cannot be continued across a shard boundary —
// and returns ErrNotMergeable; shard with the plugin backend instead.
func (e *EntropyEstimator) Merge(other *EntropyEstimator) error {
	if e.p != other.p {
		return fmt.Errorf("%w: EntropyEstimator P %g vs %g", sketch.ErrIncompatible, e.p, other.p)
	}
	if e.plugin == nil || other.plugin == nil {
		return fmt.Errorf("%w: entropy sketch backend", ErrNotMergeable)
	}
	for it, c := range other.plugin {
		e.plugin[it] += c
	}
	e.nL += other.nL
	return nil
}

// Merge folds other into h. Replicas must share configuration and sketch
// seeds. CountMin merges exactly (linearity), Misra–Gries with the
// standard bounded error; the candidate tracker is rebuilt by re-querying
// the merged sketch for the union of both candidate sets, so Report on
// the merged estimator sees post-merge frequency estimates.
func (h *F1HeavyHitters) Merge(other *F1HeavyHitters) error {
	if h.p != other.p || h.alpha != other.alpha || h.eps != other.eps {
		return fmt.Errorf("%w: F1HeavyHitters (P=%g,α=%g,ε=%g) vs (P=%g,α=%g,ε=%g)",
			sketch.ErrIncompatible, h.p, h.alpha, h.eps, other.p, other.alpha, other.eps)
	}
	switch {
	case h.cm != nil && other.cm != nil:
		if err := h.cm.Merge(other.cm); err != nil {
			return err
		}
	case h.mg != nil && other.mg != nil:
		if err := h.mg.Merge(other.mg); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: F1 heavy-hitter backends differ", sketch.ErrIncompatible)
	}
	h.observed += other.observed
	h.retrack(other.tracker)
	return nil
}

// retrack refreshes the candidate tracker after a sketch merge: the union
// of both sides' candidates is re-scored against the merged sketch.
func (h *F1HeavyHitters) retrack(foreign *sketch.TopK) {
	estimate := func(it stream.Item) float64 {
		if h.cm != nil {
			return float64(h.cm.Estimate(it))
		}
		return float64(h.mg.Estimate(it))
	}
	for _, c := range foreign.Items() {
		h.tracker.Update(c.Item, estimate(c.Item))
	}
	for _, c := range h.tracker.Items() {
		h.tracker.Update(c.Item, estimate(c.Item))
	}
}

// Merge folds other into h, exactly like F1HeavyHitters.Merge but over
// the linear CountSketch.
func (h *F2HeavyHitters) Merge(other *F2HeavyHitters) error {
	if h.p != other.p || h.alpha != other.alpha || h.eps != other.eps {
		return fmt.Errorf("%w: F2HeavyHitters (P=%g,α=%g,ε=%g) vs (P=%g,α=%g,ε=%g)",
			sketch.ErrIncompatible, h.p, h.alpha, h.eps, other.p, other.alpha, other.eps)
	}
	if err := h.cs.Merge(other.cs); err != nil {
		return err
	}
	h.nL += other.nL
	for _, c := range other.tracker.Items() {
		if est := h.cs.Estimate(c.Item); est > 0 {
			h.tracker.Update(c.Item, float64(est))
		}
	}
	for _, c := range h.tracker.Items() {
		if est := h.cs.Estimate(c.Item); est > 0 {
			h.tracker.Update(c.Item, float64(est))
		}
	}
	return nil
}

// Merge folds other into m, merging every enabled estimator pairwise.
// Both monitors must enable the same estimators with identical
// configurations and construction seeds.
func (m *Monitor) Merge(other *Monitor) error {
	if m.p != other.p {
		return fmt.Errorf("%w: Monitor P %g vs %g", sketch.ErrIncompatible, m.p, other.p)
	}
	if (m.fk == nil) != (other.fk == nil) || (m.f0 == nil) != (other.f0 == nil) ||
		(m.entropy == nil) != (other.entropy == nil) ||
		(m.hh1 == nil) != (other.hh1 == nil) || (m.hh2 == nil) != (other.hh2 == nil) {
		return fmt.Errorf("%w: Monitors enable different estimators", sketch.ErrIncompatible)
	}
	if m.fk != nil {
		if err := m.fk.Merge(other.fk); err != nil {
			return err
		}
	}
	if m.f0 != nil {
		if err := m.f0.Merge(other.f0); err != nil {
			return err
		}
	}
	if m.entropy != nil {
		if err := m.entropy.Merge(other.entropy); err != nil {
			return err
		}
	}
	if m.hh1 != nil {
		if err := m.hh1.Merge(other.hh1); err != nil {
			return err
		}
	}
	if m.hh2 != nil {
		if err := m.hh2.Merge(other.hh2); err != nil {
			return err
		}
	}
	m.nL += other.nL
	return nil
}
