package core

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

func distinctStream(d, repeats int) stream.Slice {
	var s stream.Slice
	for i := 1; i <= d; i++ {
		for j := 0; j < repeats; j++ {
			s = append(s, stream.Item(i))
		}
	}
	return s
}

func TestF0WithinLemma8Bound(t *testing.T) {
	// Multiplicative error ≤ 4/√p w.h.p. across workloads and p.
	for _, tc := range []struct {
		name string
		s    stream.Slice
	}{
		{"distinct", distinctStream(20000, 1)},
		{"repeated", distinctStream(5000, 10)},
		{"zipf", zipfStream(50000, 8000, 1.0, 1)},
	} {
		exact := float64(stream.NewFreq(tc.s).F0())
		for _, p := range []float64{0.5, 0.1, 0.05} {
			b := sample.NewBernoulli(p)
			r := rng.New(42)
			L := b.Apply(tc.s, r.Split())
			e := NewF0Estimator(F0Config{P: p}, r.Split())
			for _, it := range L {
				e.Observe(it)
			}
			got := e.Estimate()
			mult := math.Max(got/exact, exact/got)
			if mult > e.ErrorBound() {
				t.Fatalf("%s p=%v: estimate %v vs exact %v, mult error %v > bound %v",
					tc.name, p, got, exact, mult, e.ErrorBound())
			}
		}
	}
}

func TestF0HLLBackend(t *testing.T) {
	s := distinctStream(30000, 2)
	exact := float64(stream.NewFreq(s).F0())
	const p = 0.2
	b := sample.NewBernoulli(p)
	r := rng.New(2)
	L := b.Apply(s, r.Split())
	e := NewF0Estimator(F0Config{P: p, Backend: F0HLL}, r.Split())
	for _, it := range L {
		e.Observe(it)
	}
	got := e.Estimate()
	mult := math.Max(got/exact, exact/got)
	if mult > 4/math.Sqrt(p) {
		t.Fatalf("HLL backend mult error %v > %v", mult, 4/math.Sqrt(p))
	}
}

func TestF0SampledEstimateTracksF0L(t *testing.T) {
	s := distinctStream(10000, 1)
	const p = 0.3
	b := sample.NewBernoulli(p)
	r := rng.New(3)
	L := b.Apply(s, r.Split())
	e := NewF0Estimator(F0Config{P: p, KMVSize: 2048}, r.Split())
	for _, it := range L {
		e.Observe(it)
	}
	exactL := float64(stream.NewFreq(L).F0())
	got := e.SampledEstimate()
	if math.Abs(got-exactL)/exactL > 0.15 {
		t.Fatalf("sampled estimate %v, F0(L) = %v", got, exactL)
	}
}

func TestGEEMoreAccurateThanWorstCase(t *testing.T) {
	// On a repeat-heavy stream GEE sees every item ≥ twice in L with high
	// probability and is nearly exact — far better than 4/√p.
	s := distinctStream(3000, 50)
	const p = 0.1
	b := sample.NewBernoulli(p)
	r := rng.New(4)
	L := b.Apply(s, r.Split())
	gee := NewGEEF0Estimator(p)
	for _, it := range L {
		gee.Observe(it)
	}
	got := gee.Estimate()
	if math.Abs(got-3000)/3000 > 0.05 {
		t.Fatalf("GEE estimate %v, exact 3000", got)
	}
}

func TestGEEAllSingletons(t *testing.T) {
	// All-distinct stream: GEE = |L|/√p with E[|L|] = pn, so the estimate
	// concentrates around n√p — the √(1/p) error the lower bound allows.
	const n = 50000
	s := distinctStream(n, 1)
	const p = 0.25
	b := sample.NewBernoulli(p)
	r := rng.New(5)
	L := b.Apply(s, r.Split())
	gee := NewGEEF0Estimator(p)
	for _, it := range L {
		gee.Observe(it)
	}
	got := gee.Estimate()
	want := float64(n) * math.Sqrt(p) // n·p/√p
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("GEE singleton estimate %v, want ≈ %v", got, want)
	}
	// Its multiplicative error is ≈ 1/√p, within the Theorem 3/4 regime.
	mult := float64(n) / got
	if mult > 3/math.Sqrt(p) {
		t.Fatalf("GEE mult error %v too large", mult)
	}
}

func TestF0LowerBoundErrorCurve(t *testing.T) {
	// The bound grows as p shrinks and matches the closed form.
	prev := 0.0
	for _, p := range []float64{1.0 / 12, 0.01, 0.001} {
		got := F0LowerBoundError(p)
		want := math.Sqrt(math.Ln2 / (12 * p))
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("F0LowerBoundError(%v) = %v, want %v", p, got, want)
		}
		if got <= prev {
			t.Fatalf("bound not increasing as p shrinks")
		}
		prev = got
	}
}

func TestF0Panics(t *testing.T) {
	cases := []func(){
		func() { NewF0Estimator(F0Config{P: 0}, rng.New(1)) },
		func() { NewF0Estimator(F0Config{P: 2}, rng.New(1)) },
		func() { NewF0Estimator(F0Config{P: 0.5, Backend: F0Backend(99)}, rng.New(1)) },
		func() { NewGEEF0Estimator(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestF0SpaceAccounting(t *testing.T) {
	e := NewF0Estimator(F0Config{P: 0.5}, rng.New(6))
	if e.SpaceBytes() <= 0 {
		t.Fatal("F0 SpaceBytes not positive")
	}
	gee := NewGEEF0Estimator(0.5)
	gee.Observe(1)
	gee.Observe(2)
	if gee.SpaceBytes() != 32 {
		t.Fatalf("GEE SpaceBytes = %d, want 32", gee.SpaceBytes())
	}
}
