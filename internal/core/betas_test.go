package core

import (
	"math"
	"testing"
	"testing/quick"

	"substream/internal/stream"
)

func TestBetasKnownValues(t *testing.T) {
	// ℓ = 2: x(x−1) = x² − x → F2 = 2!C2 + F1, so β₁² = +1.
	b2 := Betas(2)
	if b2[1] != 1 {
		t.Fatalf("β₁² = %v, want 1", b2[1])
	}
	// ℓ = 3: x(x−1)(x−2) = x³ − 3x² + 2x → F3 = 3!C3 + 3F2 − 2F1.
	b3 := Betas(3)
	if b3[1] != -2 || b3[2] != 3 {
		t.Fatalf("β³ = %v, want [_, -2, 3]", b3)
	}
	// ℓ = 4: x⁽⁴⁾ = x⁴ − 6x³ + 11x² − 6x → β = [_, 6, −11, 6].
	b4 := Betas(4)
	if b4[1] != 6 || b4[2] != -11 || b4[3] != 6 {
		t.Fatalf("β⁴ = %v", b4)
	}
}

// elementarySymmetric computes e_k(1, 2, …, n) by dynamic programming.
func elementarySymmetric(n, k int) float64 {
	// e[j] after processing value v: e_j ← e_j + v·e_{j−1}.
	e := make([]float64, k+1)
	e[0] = 1
	for v := 1; v <= n; v++ {
		for j := k; j >= 1; j-- {
			e[j] += float64(v) * e[j-1]
		}
	}
	return e[k]
}

func TestBetasMatchElementarySymmetricDefinition(t *testing.T) {
	// Paper: β_l^ℓ = (−1)^(ℓ−l+1)·e_{ℓ−l}(1, …, ℓ−1).
	for l := 2; l <= maxMomentOrder; l++ {
		betas := Betas(l)
		for i := 1; i < l; i++ {
			sign := 1.0
			if (l-i+1)%2 == 1 {
				sign = -1
			}
			want := sign * elementarySymmetric(l-1, l-i)
			if betas[i] != want {
				t.Fatalf("β_%d^%d = %v, want %v", i, l, betas[i], want)
			}
		}
	}
}

func TestLemma1Identity(t *testing.T) {
	// F_ℓ(P) = ℓ!·C_ℓ(P) + Σ β_l^ℓ F_l(P) must hold exactly for any
	// frequency vector.
	f := func(counts [10]uint8) bool {
		var s stream.Slice
		for i, c := range counts {
			for j := 0; j < int(c%32); j++ {
				s = append(s, stream.Item(i+1))
			}
		}
		if len(s) == 0 {
			return true
		}
		fr := stream.NewFreq(s)
		for l := 2; l <= 6; l++ {
			rhs := Factorial(l) * fr.Collisions(l)
			for i, beta := range Betas(l) {
				if i == 0 {
					continue
				}
				rhs += beta * fr.Fk(i)
			}
			lhs := fr.Fk(l)
			if math.Abs(lhs-rhs) > 1e-6*math.Max(1, lhs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaAbsSum(t *testing.T) {
	if got := BetaAbsSum(2); got != 1 {
		t.Fatalf("A₂ = %v, want 1", got)
	}
	if got := BetaAbsSum(3); got != 5 {
		t.Fatalf("A₃ = %v, want 5", got)
	}
	if got := BetaAbsSum(4); got != 23 {
		t.Fatalf("A₄ = %v, want 23", got)
	}
}

func TestEpsilonScheduleShape(t *testing.T) {
	eps := EpsilonSchedule(4, 0.1)
	if eps[4] != 0.1 {
		t.Fatalf("ε₄ = %v", eps[4])
	}
	// ε₃ = ε₄/(A₄+1) = 0.1/24; ε₂ = ε₃/(A₃+1) = ε₃/6; ε₁ = ε₂/(A₂+1) = ε₂/2.
	if math.Abs(eps[3]-0.1/24) > 1e-15 {
		t.Fatalf("ε₃ = %v", eps[3])
	}
	if math.Abs(eps[2]-eps[3]/6) > 1e-15 {
		t.Fatalf("ε₂ = %v", eps[2])
	}
	if math.Abs(eps[1]-eps[2]/2) > 1e-15 {
		t.Fatalf("ε₁ = %v", eps[1])
	}
	// Monotone: ε_i ≤ ε_j for i ≤ j (used by Lemma 4's proof).
	for i := 1; i < 4; i++ {
		if eps[i] > eps[i+1] {
			t.Fatalf("schedule not monotone: %v", eps)
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720}
	for i, w := range want {
		if got := Factorial(i); got != w {
			t.Fatalf("%d! = %v, want %v", i, got, w)
		}
	}
}

func TestBetasPanics(t *testing.T) {
	for _, l := range []int{0, maxMomentOrder + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Betas(%d) did not panic", l)
				}
			}()
			Betas(l)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("EpsilonSchedule(2, 0) did not panic")
			}
		}()
		EpsilonSchedule(2, 0)
	}()
}

func TestStirlingRowSums(t *testing.T) {
	// Identity: Σ_k |s(n,k)| = n! and Σ_k s(n,k) = 0 for n ≥ 2.
	s := stirlingFirst(8)
	for n := 2; n <= 8; n++ {
		var absSum, sum float64
		for k := 0; k <= n; k++ {
			sum += s[n][k]
			absSum += math.Abs(s[n][k])
		}
		if sum != 0 {
			t.Fatalf("Σ s(%d,·) = %v, want 0", n, sum)
		}
		if absSum != Factorial(n) {
			t.Fatalf("Σ |s(%d,·)| = %v, want %d!", n, absSum, n)
		}
	}
}
