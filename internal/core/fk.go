package core

import (
	"fmt"
	"math"

	"substream/internal/levelset"
	"substream/internal/rng"
	"substream/internal/stream"
)

// FkEstimator is Algorithm 1: a one-pass estimator of the k-th frequency
// moment F_k(P) of the original stream, observing only the sampled stream
// L. It maintains F₁(L) exactly and a collision counter for C_ℓ(L),
// ℓ = 2…k, then unwinds the collision identity inductively:
//
//	φ̃₁ = F₁(L)/p
//	φ̃_ℓ = C̃_ℓ(L)·ℓ!/p^ℓ + Σ_{i<ℓ} β_i^ℓ·φ̃_i
//
// returning φ̃_k. With the level-set backend the space is the paper's
// Õ(p⁻¹·m^(1−2/k)) (the Budget knob); with the exact backend space is
// O(F₀(L)) and the only error is sampling noise — the form the accuracy
// experiments use to isolate effects.
type FkEstimator struct {
	k          int
	p          float64
	schedule   []float64
	collisions levelset.CollisionCounter
	nL         uint64
}

// FkConfig configures an FkEstimator.
type FkConfig struct {
	// K is the moment order, 2 ≤ K ≤ 12.
	K int
	// P is the Bernoulli sampling probability of the observed stream.
	P float64
	// Epsilon is the target relative error ε of the final estimate; it
	// drives the per-order schedule of Lemma 3 and the level-set band
	// width ε′ = ε_{k−1}/4. Default 0.2.
	Epsilon float64
	// Budget bounds the tracked items of the default level-set counter —
	// the paper's Õ(p⁻¹·m^(1−2/k)) knob. Ignored when Exact or
	// Collisions is set. Default 4096.
	Budget int
	// Exact selects the exact collision counter (space O(F₀(L))).
	Exact bool
	// Collisions overrides the collision counter entirely; the caller
	// keeps ownership of its configuration.
	Collisions levelset.CollisionCounter
}

// NewFkEstimator builds the estimator. It panics on an out-of-range K or
// P; the randomness source seeds the level-set backend.
func NewFkEstimator(cfg FkConfig, r *rng.Xoshiro256) *FkEstimator {
	if cfg.K < 2 || cfg.K > maxMomentOrder {
		panic(fmt.Sprintf("core: FkEstimator K must be in [2, %d]", maxMomentOrder))
	}
	if cfg.P <= 0 || cfg.P > 1 {
		panic("core: FkEstimator P must be in (0, 1]")
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.2
	}
	if eps < 0 {
		panic("core: FkEstimator Epsilon must be positive")
	}
	schedule := EpsilonSchedule(cfg.K, eps)

	counter := cfg.Collisions
	if counter == nil {
		if cfg.Exact {
			counter = levelset.NewExactCounter()
		} else {
			budget := cfg.Budget
			if budget == 0 {
				budget = 4096
			}
			counter = levelset.New(levelset.Config{
				EpsPrime: schedule[cfg.K-1] / 4, // ε′ = ε_{k−1}/4 (§3.1)
				Budget:   budget,
			}, r)
		}
	}
	return &FkEstimator{
		k:          cfg.K,
		p:          cfg.P,
		schedule:   schedule,
		collisions: counter,
	}
}

// Observe feeds one element of the sampled stream L.
func (e *FkEstimator) Observe(it stream.Item) {
	e.nL++
	e.collisions.Observe(it)
}

// Estimate returns φ̃_k, the estimate of F_k(P).
func (e *FkEstimator) Estimate() float64 {
	return e.Moments()[e.k]
}

// Moments returns all intermediate estimates φ̃_1 … φ̃_k (1-indexed;
// index 0 unused). φ̃_ℓ estimates F_ℓ(P), so callers needing several
// moments share one pass.
func (e *FkEstimator) Moments() []float64 {
	phi := make([]float64, e.k+1)
	phi[1] = float64(e.nL) / e.p
	for l := 2; l <= e.k; l++ {
		cl := e.collisions.EstimateCollisions(l)
		est := cl * Factorial(l) / math.Pow(e.p, float64(l))
		for i, beta := range Betas(l) {
			if i == 0 {
				continue
			}
			est += beta * phi[i]
		}
		// A frequency moment is at least F1 for any nonempty stream;
		// clamp pathological negatives from noisy collision estimates.
		if est < phi[1] {
			est = phi[1]
		}
		phi[l] = est
	}
	return phi
}

// StdErrEstimate returns a plug-in estimate of the standard error of
// φ̃_ℓ due to Bernoulli sampling, from Lemma 2's variance bound
// V[C_ℓ(L)] = O(p^(2ℓ−1)·F_ℓ^(2−1/ℓ)): the returned value is
// √(p^(2ℓ−1)·φ̃_ℓ^(2−1/ℓ))·ℓ!/p^ℓ, using the estimator's own moments as
// the plug-in for F_ℓ. It quantifies sampling noise only — collision-
// counter error (level-set banding) is separate — and is intended for
// error bars on reports, not as a proved confidence interval.
func (e *FkEstimator) StdErrEstimate(l int) float64 {
	if l < 2 || l > e.k {
		panic("core: StdErrEstimate order must be in [2, K]")
	}
	phi := e.Moments()
	fl := phi[l]
	if fl <= 0 {
		return 0
	}
	variance := math.Pow(e.p, float64(2*l-1)) * math.Pow(fl, 2-1/float64(l))
	return math.Sqrt(variance) * Factorial(l) / math.Pow(e.p, float64(l))
}

// SampledLength returns F₁(L), the number of observed elements.
func (e *FkEstimator) SampledLength() uint64 { return e.nL }

// K returns the configured moment order.
func (e *FkEstimator) K() int { return e.k }

// P returns the configured sampling probability.
func (e *FkEstimator) P() float64 { return e.p }

// Schedule exposes the per-order ε targets (Lemma 3), for diagnostics.
func (e *FkEstimator) Schedule() []float64 { return e.schedule }

// SpaceBytes returns the approximate memory footprint (the collision
// counter dominates).
func (e *FkEstimator) SpaceBytes() int { return e.collisions.SpaceBytes() + 64 }

// MinSamplingP returns the information-theoretic floor on p below which
// Theorem 1's guarantee is void: p = Ω̃(min(m, n)^(−1/k)) (see also
// Theorem 4.33 of Bar-Yossef). Constants are taken as 1.
func MinSamplingP(m, n uint64, k int) float64 {
	mn := m
	if n < mn {
		mn = n
	}
	if mn == 0 {
		return 1
	}
	return math.Pow(float64(mn), -1/float64(k))
}
