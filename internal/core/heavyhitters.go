package core

import (
	"math"
	"sort"

	"substream/internal/estimator"
	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// This file implements the heavy-hitter estimators of §6. Both follow the
// same shape the proofs use: run a standard heavy-hitters algorithm on
// the sampled stream with a threshold deflated to α′ = (1 − 2ε/5)·α
// (times √p in the F₂ case), then scale reported frequencies back by 1/p.

// ReportedHitter is one reported heavy hitter with its estimated original
// frequency f′_i (already scaled by 1/p). It aliases the estimator
// layer's Hitter so reports flow through the registry interface without
// conversion.
type ReportedHitter = estimator.Hitter

// F1Backend selects the sampled-stream heavy-hitter algorithm used by
// F1HeavyHitters.
type F1Backend int

// Supported F1 heavy-hitter backends.
const (
	// F1CountMin uses the CountMin sketch, as in Theorem 6's proof.
	F1CountMin F1Backend = iota
	// F1MisraGries uses the Misra–Gries summary, the insert-only
	// alternative the paper notes.
	F1MisraGries
)

// F1HeavyHitters implements Theorem 6: observing L, report every item
// with f_i ≥ α·F₁(P), no item with f_i < (1−ε)·α·F₁(P), and (1±ε)
// frequency estimates, provided F₁(P) ≥ C·p⁻¹α⁻¹ε⁻²·log(n/δ).
type F1HeavyHitters struct {
	p        float64
	alpha    float64
	eps      float64
	alphaPr  float64
	cm       *sketch.CountMin
	mg       *sketch.MisraGries
	tracker  *sketch.TopK
	observed uint64
}

// F1HHConfig configures F1HeavyHitters.
type F1HHConfig struct {
	// P is the Bernoulli sampling probability.
	P float64
	// Alpha is the heaviness threshold α (report f_i ≥ α·F₁).
	Alpha float64
	// Epsilon is the exclusion/estimation slack ε. Default 0.2.
	Epsilon float64
	// Delta is the failure probability budget. Default 0.05.
	Delta float64
	// Backend selects CountMin (default) or Misra–Gries.
	Backend F1Backend
}

// NewF1HeavyHitters builds the estimator.
func NewF1HeavyHitters(cfg F1HHConfig, r *rng.Xoshiro256) *F1HeavyHitters {
	if cfg.P <= 0 || cfg.P > 1 {
		panic("core: F1HeavyHitters P must be in (0, 1]")
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		panic("core: F1HeavyHitters Alpha must be in (0, 1)")
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.2
	}
	if eps < 0 || eps >= 1 {
		panic("core: F1HeavyHitters Epsilon must be in (0, 1)")
	}
	delta := cfg.Delta
	if delta == 0 {
		delta = 0.05
	}
	alphaPr := (1 - 2*eps/5) * cfg.Alpha
	h := &F1HeavyHitters{
		p:       cfg.P,
		alpha:   cfg.Alpha,
		eps:     eps,
		alphaPr: alphaPr,
		tracker: sketch.NewTopK(trackerCapacity(cfg.Alpha)),
	}
	switch cfg.Backend {
	case F1CountMin:
		// Point error ≤ (ε/20)·α′·F₁(L) so thresholding at α′·F₁(L)
		// separates the (1−ε/2) band, per Theorem 6's proof.
		h.cm = sketch.NewCountMinWithError(eps*alphaPr/20, delta/4, r)
	case F1MisraGries:
		k := int(math.Ceil(20 / (eps * alphaPr)))
		h.mg = sketch.NewMisraGries(k)
	default:
		panic("core: unknown F1 heavy-hitter backend")
	}
	return h
}

// trackerCapacity sizes the candidate set: O(1/α) items per Definition 4,
// with headroom for near-threshold churn.
func trackerCapacity(alpha float64) int {
	c := int(math.Ceil(4 / alpha))
	if c < 8 {
		c = 8
	}
	return c
}

// Observe feeds one element of the sampled stream L.
func (h *F1HeavyHitters) Observe(it stream.Item) {
	h.observed++
	if h.cm != nil {
		h.cm.Observe(it)
		h.tracker.Update(it, float64(h.cm.Estimate(it)))
	} else {
		h.mg.Observe(it)
		h.tracker.Update(it, float64(h.mg.Estimate(it)))
	}
}

// Report returns the detected heavy hitters of the original stream,
// sorted by decreasing estimated frequency.
func (h *F1HeavyHitters) Report() []ReportedHitter {
	nL := float64(h.observed)
	threshold := h.alphaPr * nL
	if h.mg != nil {
		// Misra–Gries undercounts by ≤ N/(k+1); admit candidates whose
		// upper bound clears the threshold.
		threshold -= h.mg.ErrorBound()
	}
	var out []ReportedHitter
	for _, e := range h.tracker.Items() {
		// Re-query the sketch for the freshest estimate.
		var est float64
		if h.cm != nil {
			est = float64(h.cm.Estimate(e.Item))
		} else {
			est = float64(h.mg.Estimate(e.Item))
		}
		if est >= threshold {
			out = append(out, ReportedHitter{Item: e.Item, Freq: est / h.p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// MinStreamLength returns Theorem 6's premise: the F₁(P) floor
// C·p⁻¹α⁻¹ε⁻²·log(n/δ) below which the guarantee is void (C taken as 1).
func (h *F1HeavyHitters) MinStreamLength(n uint64, delta float64) float64 {
	return math.Log(float64(n)/delta) / (h.p * h.alpha * h.eps * h.eps)
}

// SpaceBytes returns the approximate memory footprint.
func (h *F1HeavyHitters) SpaceBytes() int {
	s := 48 * h.tracker.Len()
	if h.cm != nil {
		s += h.cm.SpaceBytes()
	} else {
		s += h.mg.SpaceBytes()
	}
	return s
}

// F2HeavyHitters implements Theorem 7: observing L, report the
// (α, 1−p^(1/2)(1−ε)) F₂-heavy hitters of the original stream via a
// CountSketch on L with deflated threshold α′ = (1−2ε/5)·α·√p. Space is
// the paper's Õ(1/p): the sketch width scales as 1/(ε²α²p).
type F2HeavyHitters struct {
	p       float64
	alpha   float64
	eps     float64
	alphaPr float64
	cs      *sketch.CountSketch
	tracker *sketch.TopK
	nL      uint64
}

// F2HHConfig configures F2HeavyHitters.
type F2HHConfig struct {
	// P is the Bernoulli sampling probability.
	P float64
	// Alpha is the heaviness threshold α (report f_i ≥ α·√F₂).
	Alpha float64
	// Epsilon is the exclusion slack ε. Default 0.2.
	Epsilon float64
	// Depth is the CountSketch depth. Default 5.
	Depth int
	// MaxWidth caps the derived sketch width (0 = 1<<18), protecting
	// callers who pass extreme (ε, α, p) combinations.
	MaxWidth int
}

// NewF2HeavyHitters builds the estimator.
func NewF2HeavyHitters(cfg F2HHConfig, r *rng.Xoshiro256) *F2HeavyHitters {
	if cfg.P <= 0 || cfg.P > 1 {
		panic("core: F2HeavyHitters P must be in (0, 1]")
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		panic("core: F2HeavyHitters Alpha must be in (0, 1)")
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.2
	}
	if eps < 0 || eps >= 1 {
		panic("core: F2HeavyHitters Epsilon must be in (0, 1)")
	}
	depth := cfg.Depth
	if depth == 0 {
		depth = 5
	}
	alphaPr := (1 - 2*eps/5) * cfg.Alpha * math.Sqrt(cfg.P)
	// Additive point error ≈ √(F₂(L)/width) must be ≤ (ε/10)·α′·√F₂(L):
	// width ≥ 100/(ε·α′)² = Θ(1/(ε²α²p)) — the paper's Õ(1/p).
	width := int(math.Ceil(100 / (eps * alphaPr * eps * alphaPr)))
	maxWidth := cfg.MaxWidth
	if maxWidth == 0 {
		maxWidth = 1 << 18
	}
	if width > maxWidth {
		width = maxWidth
	}
	if width < 16 {
		width = 16
	}
	return &F2HeavyHitters{
		p:       cfg.P,
		alpha:   cfg.Alpha,
		eps:     eps,
		alphaPr: alphaPr,
		cs:      sketch.NewCountSketch(width, depth, r),
		tracker: sketch.NewTopK(trackerCapacity(cfg.Alpha)),
	}
}

// Observe feeds one element of the sampled stream L.
func (h *F2HeavyHitters) Observe(it stream.Item) {
	h.nL++
	h.cs.Observe(it)
	if est := h.cs.Estimate(it); est > 0 {
		h.tracker.Update(it, float64(est))
	}
}

// Report returns the detected F₂-heavy hitters of the original stream,
// sorted by decreasing estimated frequency.
func (h *F2HeavyHitters) Report() []ReportedHitter {
	f2L := h.cs.F2Estimate()
	threshold := h.alphaPr * math.Sqrt(f2L)
	var out []ReportedHitter
	for _, e := range h.tracker.Items() {
		est := float64(h.cs.Estimate(e.Item))
		if est >= threshold {
			out = append(out, ReportedHitter{Item: e.Item, Freq: est / h.p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// MinF2 returns Theorem 7's premise: √F₂ ≥ C·p^(−3/2)·α⁻¹ε⁻²·log(n/δ)
// (C taken as 1).
func (h *F2HeavyHitters) MinF2(n uint64, delta float64) float64 {
	return math.Log(float64(n)/delta) / (math.Pow(h.p, 1.5) * h.alpha * h.eps * h.eps)
}

// SpaceBytes returns the approximate memory footprint.
func (h *F2HeavyHitters) SpaceBytes() int {
	return h.cs.SpaceBytes() + 48*h.tracker.Len()
}
