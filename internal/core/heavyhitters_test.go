package core

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
)

// plantedStream builds a stream with `heavy` items of frequency heavyFreq
// each (ids 1..heavy) over a background of light items drawn uniformly
// from [heavy+1, heavy+lightUniverse], total length n.
func plantedStream(n, heavy int, heavyFreq int, lightUniverse int, seed uint64) stream.Slice {
	r := rng.New(seed)
	var s stream.Slice
	for h := 1; h <= heavy; h++ {
		for j := 0; j < heavyFreq; j++ {
			s = append(s, stream.Item(h))
		}
	}
	for len(s) < n {
		s = append(s, stream.Item(heavy+1+r.Intn(lightUniverse)))
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	return s
}

func reportedSet(hh []ReportedHitter) map[stream.Item]float64 {
	out := make(map[stream.Item]float64, len(hh))
	for _, h := range hh {
		out[h.Item] = h.Freq
	}
	return out
}

func TestF1HeavyHittersTheorem6(t *testing.T) {
	// 4 heavy items at 5% each over a light background; α = 0.04, ε = 0.2.
	const n = 200000
	s := plantedStream(n, 4, n/20, 50000, 1)
	f := stream.NewFreq(s)
	const alpha, eps = 0.04, 0.2
	for _, backend := range []F1Backend{F1CountMin, F1MisraGries} {
		for _, p := range []float64{0.5, 0.1} {
			b := sample.NewBernoulli(p)
			r := rng.New(2)
			L := b.Apply(s, r.Split())
			hh := NewF1HeavyHitters(F1HHConfig{P: p, Alpha: alpha, Epsilon: eps, Backend: backend}, r.Split())
			for _, it := range L {
				hh.Observe(it)
			}
			rep := reportedSet(hh.Report())
			// (1) every true heavy hitter reported with ±ε frequency.
			threshold := alpha * float64(f.F1())
			for it, c := range f {
				if float64(c) >= threshold {
					got, ok := rep[it]
					if !ok {
						t.Fatalf("backend=%d p=%v: heavy item %d (f=%d) missed", backend, p, it, c)
					}
					if math.Abs(got-float64(c))/float64(c) > eps {
						t.Fatalf("backend=%d p=%v: item %d freq %v, true %d", backend, p, it, got, c)
					}
				}
			}
			// (2) nothing below (1−ε)·α·F1 reported.
			exclude := (1 - eps) * threshold
			for it := range rep {
				if float64(f[it]) < exclude {
					t.Fatalf("backend=%d p=%v: light item %d (f=%d < %v) reported",
						backend, p, it, f[it], exclude)
				}
			}
		}
	}
}

func TestF1HeavyHittersPremiseHelper(t *testing.T) {
	hh := NewF1HeavyHitters(F1HHConfig{P: 0.1, Alpha: 0.01, Epsilon: 0.2}, rng.New(3))
	min := hh.MinStreamLength(1<<20, 0.05)
	want := math.Log(float64(uint64(1)<<20)/0.05) / (0.1 * 0.01 * 0.04)
	if math.Abs(min-want)/want > 1e-9 {
		t.Fatalf("MinStreamLength = %v, want %v", min, want)
	}
}

func TestF1HeavyHittersNoHeavyItems(t *testing.T) {
	// Uniform stream: nothing close to α·F1; report must be empty or
	// contain only items above the exclusion line (there are none).
	s := zipfStream(100000, 50000, 0.0, 4)
	const p, alpha = 0.3, 0.01
	b := sample.NewBernoulli(p)
	r := rng.New(5)
	L := b.Apply(s, r.Split())
	hh := NewF1HeavyHitters(F1HHConfig{P: p, Alpha: alpha}, r.Split())
	for _, it := range L {
		hh.Observe(it)
	}
	if rep := hh.Report(); len(rep) != 0 {
		t.Fatalf("uniform stream reported %d heavy hitters: %+v", len(rep), rep)
	}
}

func TestF1HeavyHittersPanics(t *testing.T) {
	cases := []F1HHConfig{
		{P: 0, Alpha: 0.1},
		{P: 0.5, Alpha: 0},
		{P: 0.5, Alpha: 1},
		{P: 0.5, Alpha: 0.1, Epsilon: -0.1},
		{P: 0.5, Alpha: 0.1, Backend: F1Backend(9)},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewF1HeavyHitters(cfg, rng.New(1))
		}()
	}
}

func TestF2HeavyHittersTheorem7(t *testing.T) {
	// F2-heavy items: a few very frequent ids dominate √F2.
	const n = 150000
	s := plantedStream(n, 3, n/15, 100000, 6)
	f := stream.NewFreq(s)
	sqrtF2 := math.Sqrt(f.Fk(2))
	const alpha, eps = 0.3, 0.2
	for _, p := range []float64{0.5, 0.2} {
		b := sample.NewBernoulli(p)
		r := rng.New(7)
		L := b.Apply(s, r.Split())
		hh := NewF2HeavyHitters(F2HHConfig{P: p, Alpha: alpha, Epsilon: eps}, r.Split())
		for _, it := range L {
			hh.Observe(it)
		}
		rep := reportedSet(hh.Report())
		// Every item with f ≥ α√F2 must be reported.
		for it, c := range f {
			if float64(c) >= alpha*sqrtF2 {
				if _, ok := rep[it]; !ok {
					t.Fatalf("p=%v: F2-heavy item %d (f=%d ≥ %v) missed", p, it, c, alpha*sqrtF2)
				}
			}
		}
		// Theorem 7's exclusion line: nothing below (1−ε)·√p·α·√F2.
		exclude := (1 - eps) * math.Sqrt(p) * alpha * sqrtF2
		for it := range rep {
			if float64(f[it]) < exclude {
				t.Fatalf("p=%v: item %d (f=%d < %v) reported", p, it, f[it], exclude)
			}
		}
		// Reported frequencies of true heavy hitters within 2ε.
		for it, c := range f {
			if float64(c) >= alpha*sqrtF2 {
				if got := rep[it]; math.Abs(got-float64(c))/float64(c) > 2*eps {
					t.Fatalf("p=%v: item %d freq estimate %v, true %d", p, it, got, c)
				}
			}
		}
	}
}

func TestF2HeavyHittersSpaceScalesWithInverseP(t *testing.T) {
	// Theorem 7: space Õ(1/p) — halving p should grow the sketch.
	mk := func(p float64) int {
		return NewF2HeavyHitters(F2HHConfig{P: p, Alpha: 0.2, MaxWidth: 1 << 24}, rng.New(8)).SpaceBytes()
	}
	s1, s2 := mk(0.4), mk(0.1)
	if s2 <= s1 {
		t.Fatalf("space did not grow as p shrank: p=0.4 → %d, p=0.1 → %d", s1, s2)
	}
	ratio := float64(s2) / float64(s1)
	if ratio < 2 || ratio > 8 {
		t.Fatalf("space ratio %v, want ≈ 4 (1/p scaling)", ratio)
	}
}

func TestF2HeavyHittersMinF2Helper(t *testing.T) {
	hh := NewF2HeavyHitters(F2HHConfig{P: 0.25, Alpha: 0.1}, rng.New(9))
	got := hh.MinF2(1<<20, 0.05)
	want := math.Log(float64(uint64(1)<<20)/0.05) / (math.Pow(0.25, 1.5) * 0.1 * 0.04)
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("MinF2 = %v, want %v", got, want)
	}
}

func TestF2HeavyHittersPanics(t *testing.T) {
	cases := []F2HHConfig{
		{P: 0, Alpha: 0.1},
		{P: 0.5, Alpha: 0},
		{P: 0.5, Alpha: 1},
		{P: 0.5, Alpha: 0.1, Epsilon: 2},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			NewF2HeavyHitters(cfg, rng.New(1))
		}()
	}
}
