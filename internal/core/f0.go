package core

import (
	"math"

	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// F0Estimator is Algorithm 2: estimate F₀(P) from the sampled stream by
// computing a constant-factor streaming estimate X of F₀(L) and returning
// X/√p. Lemma 8 bounds the multiplicative error by 4/√p with probability
// ≥ 1 − (δ + e^(−pF₀/8)); Theorem 4 shows Ω(1/√p) error is unavoidable
// for some streams, so this is tight up to constants.
type F0Estimator struct {
	p       float64
	backend distinctBackend
}

// distinctBackend is the streaming F₀(L) estimator Algorithm 2 consumes;
// KMV and HLL both satisfy it.
type distinctBackend interface {
	Observe(it stream.Item)
	Estimate() float64
	SpaceBytes() int
}

// F0Backend selects the streaming distinct-count estimator run on L.
type F0Backend int

// Supported F0 backends.
const (
	// F0KMV uses the k-minimum-values sketch (default; exact below k).
	F0KMV F0Backend = iota
	// F0HLL uses the stochastic-averaging (HyperLogLog-family) sketch.
	F0HLL
)

// F0Config configures an F0Estimator.
type F0Config struct {
	// P is the Bernoulli sampling probability.
	P float64
	// Backend selects the streaming F₀(L) estimator. Default F0KMV.
	Backend F0Backend
	// KMVSize is the k of the KMV backend. Default 1024.
	KMVSize int
	// HLLPrecision is the register exponent of the HLL backend.
	// Default 12 (4096 registers).
	HLLPrecision uint
}

// NewF0Estimator builds the estimator.
func NewF0Estimator(cfg F0Config, r *rng.Xoshiro256) *F0Estimator {
	if cfg.P <= 0 || cfg.P > 1 {
		panic("core: F0Estimator P must be in (0, 1]")
	}
	var backend distinctBackend
	switch cfg.Backend {
	case F0KMV:
		k := cfg.KMVSize
		if k == 0 {
			k = 1024
		}
		backend = sketch.NewKMV(k, r)
	case F0HLL:
		prec := cfg.HLLPrecision
		if prec == 0 {
			prec = 12
		}
		backend = sketch.NewHLL(prec, r)
	default:
		panic("core: unknown F0 backend")
	}
	return &F0Estimator{p: cfg.P, backend: backend}
}

// Observe feeds one element of the sampled stream L.
func (e *F0Estimator) Observe(it stream.Item) { e.backend.Observe(it) }

// Estimate returns the Algorithm 2 estimate X/√p of F₀(P).
func (e *F0Estimator) Estimate() float64 {
	return e.backend.Estimate() / math.Sqrt(e.p)
}

// SampledEstimate returns the backend's estimate of F₀(L) itself.
func (e *F0Estimator) SampledEstimate() float64 { return e.backend.Estimate() }

// ErrorBound returns Lemma 8's multiplicative error bound 4/√p.
func (e *F0Estimator) ErrorBound() float64 { return 4 / math.Sqrt(e.p) }

// SpaceBytes returns the approximate memory footprint.
func (e *F0Estimator) SpaceBytes() int { return e.backend.SpaceBytes() + 16 }

// F0LowerBoundError returns Theorem 4's error floor: for p ≤ 1/12 there
// are streams on which any estimator observing L errs by at least
// √(ln 2/(12p)) with probability ≥ (1−e^(−np))/2. The experiment harness
// plots this curve against measured errors.
func F0LowerBoundError(p float64) float64 {
	return math.Sqrt(math.Ln2 / (12 * p))
}

// GEEF0Estimator is the Guaranteed-Error Estimator of Charikar et al.
// adapted to Bernoulli samples — the "current best offline method"
// referenced in §1.2(2), implemented in streaming fashion. It maintains
// the exact frequency profile of L (space O(F₀(L))) and estimates
//
//	F̂₀ = √(1/p)·f₁(L) + Σ_{j≥2} f_j(L)
//
// where f_j(L) counts distinct items appearing exactly j times in L:
// items seen twice or more almost certainly exist in P regardless of p,
// while singletons are scaled by the GEE factor √(n/r) = √(1/p). Its
// worst-case error matches the Theorem 3 lower bound up to constants.
type GEEF0Estimator struct {
	p      float64
	counts stream.Freq
}

// NewGEEF0Estimator builds the estimator.
func NewGEEF0Estimator(p float64) *GEEF0Estimator {
	if p <= 0 || p > 1 {
		panic("core: GEEF0Estimator P must be in (0, 1]")
	}
	return &GEEF0Estimator{p: p, counts: make(stream.Freq)}
}

// Observe feeds one element of the sampled stream L.
func (e *GEEF0Estimator) Observe(it stream.Item) { e.counts[it]++ }

// Estimate returns the GEE estimate of F₀(P).
func (e *GEEF0Estimator) Estimate() float64 {
	var singletons, repeated float64
	for _, c := range e.counts {
		if c == 1 {
			singletons++
		} else {
			repeated++
		}
	}
	return singletons/math.Sqrt(e.p) + repeated
}

// SpaceBytes returns the approximate memory footprint (linear in F₀(L) —
// GEE trades space for its better constants).
func (e *GEEF0Estimator) SpaceBytes() int { return 16 * len(e.counts) }
