package core

import (
	"fmt"

	"substream/internal/estimator"
	"substream/internal/rng"
)

// This file plugs the paper's estimator wrappers into the
// internal/estimator registry (tag range 0x20–0x2f). These are the kinds
// that report about the ORIGINAL stream P: each wraps a sampled-stream
// summary and applies the paper's 1/p corrections, so their Estimates are
// directly comparable to exact statistics of the unsampled traffic.

func init() {
	estimator.Register(estimator.Kind{
		Tag: TagFkEstimator, Name: "fk",
		Doc: "Algorithm 1: k-th frequency moment Fk(P) (level-set or exact collisions)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewFkEstimator(FkConfig{
				K: s.K, P: s.P, Epsilon: s.Epsilon, Budget: s.Budget, Exact: s.Exact,
			}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalFkEstimator),
	})
	estimator.Register(estimator.Kind{
		Tag: TagF0Estimator, Name: "f0",
		Doc: "Algorithm 2: distinct count F0(P) with the Lemma 8 bound (KMV backend)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewF0Estimator(F0Config{P: s.P}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalF0Estimator),
	})
	estimator.Register(estimator.Kind{
		Tag: TagEntropy, Name: "entropy",
		Doc: "empirical entropy H(P) via the plugin backend (the mergeable one)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			// Plugin backend: the only entropy backend with a sound merge
			// and therefore a wire form (see marshal.go).
			return estimator.Adapt(NewEntropyEstimator(EntropyConfig{P: s.P}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalEntropyEstimator),
	})
	estimator.Register(estimator.Kind{
		Tag: TagF1HeavyHitters, Name: "hh1",
		Doc: "Theorem 6: alpha-heavy hitters of F1(P) with deflated threshold",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewF1HeavyHitters(F1HHConfig{
				P: s.P, Alpha: s.Alpha, Epsilon: s.Epsilon,
			}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalF1HeavyHitters),
	})
	estimator.Register(estimator.Kind{
		Tag: TagF2HeavyHitters, Name: "hh2",
		Doc: "Theorem 7: alpha-heavy hitters of F2(P) over a CountSketch",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewF2HeavyHitters(F2HHConfig{
				P: s.P, Alpha: s.Alpha, Epsilon: s.Epsilon,
			}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalF2HeavyHitters),
	})
	estimator.Register(estimator.Kind{
		Tag: TagMonitor, Name: "all",
		Doc: "every estimator behind one Observe loop (n, Fk, F0, entropy, hitters)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewMonitor(MonitorConfig{
				P: s.P, K: s.K, Epsilon: s.Epsilon, HHAlpha: s.Alpha,
			}, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalMonitor),
	})
	estimator.Register(estimator.Kind{
		Tag: TagGEEF0Estimator, Name: "gee",
		Doc: "Guaranteed-Error Estimator baseline for F0(P) (space O(F0 of L))",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(NewGEEF0Estimator(s.P)), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalGEEF0Estimator),
	})
}

// Estimates returns every moment estimate the single pass supports:
// phi_1 … phi_k as "f1" … "fk-th", plus the headline "fk" and the
// sampled length.
func (e *FkEstimator) Estimates() map[string]float64 {
	vals := map[string]float64{"sampled_length": float64(e.SampledLength())}
	for l, phi := range e.Moments() {
		if l >= 1 {
			vals[fmt.Sprintf("f%d", l)] = phi
		}
	}
	vals["fk"] = e.Estimate()
	return vals
}

// Estimates returns the F0(P) estimate, the backend's raw F0(L)
// estimate, and the Lemma 8 multiplicative bound.
func (e *F0Estimator) Estimates() map[string]float64 {
	return map[string]float64{
		"f0":          e.Estimate(),
		"f0_sampled":  e.SampledEstimate(),
		"error_bound": e.ErrorBound(),
	}
}

// Estimates returns the entropy estimate and the sampled length.
func (e *EntropyEstimator) Estimates() map[string]float64 {
	return map[string]float64{
		"entropy":        e.Estimate(),
		"sampled_length": float64(e.SampledLength()),
	}
}

// Estimates returns the GEE F0(P) estimate.
func (e *GEEF0Estimator) Estimates() map[string]float64 {
	return map[string]float64{"f0": e.Estimate()}
}

// Estimates returns the detected-hitter count; the hitters themselves
// are in EstimatorReport.
func (h *F1HeavyHitters) Estimates() map[string]float64 {
	return map[string]float64{"hitters": float64(len(h.Report()))}
}

// EstimatorReport returns the hitter count plus the hitter list.
func (h *F1HeavyHitters) EstimatorReport() estimator.Report {
	hitters := h.Report()
	return estimator.Report{
		Values:    map[string]float64{"hitters": float64(len(hitters))},
		F1Hitters: hitters,
	}
}

// Estimates returns the detected-hitter count; the hitters themselves
// are in EstimatorReport.
func (h *F2HeavyHitters) Estimates() map[string]float64 {
	return map[string]float64{"hitters": float64(len(h.Report()))}
}

// EstimatorReport returns the hitter count plus the hitter list.
func (h *F2HeavyHitters) EstimatorReport() estimator.Report {
	hitters := h.Report()
	return estimator.Report{
		Values:    map[string]float64{"hitters": float64(len(hitters))},
		F2Hitters: hitters,
	}
}

// Estimates returns the scalar estimates of every enabled estimator.
func (m *Monitor) Estimates() map[string]float64 {
	rep := m.Report()
	return map[string]float64{
		"n":       rep.EstimatedLength,
		"fk":      rep.Fk,
		"f0":      rep.F0,
		"entropy": rep.Entropy,
	}
}

// EstimatorReport returns the full monitor report including both hitter
// lists.
func (m *Monitor) EstimatorReport() estimator.Report {
	rep := m.Report()
	return estimator.Report{
		Values: map[string]float64{
			"n":       rep.EstimatedLength,
			"fk":      rep.Fk,
			"f0":      rep.F0,
			"entropy": rep.Entropy,
		},
		F1Hitters: rep.F1HeavyHitters,
		F2Hitters: rep.F2HeavyHitters,
	}
}
