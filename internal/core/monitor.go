package core

import (
	"substream/internal/rng"
	"substream/internal/stream"
)

// Monitor bundles the paper's estimators behind a single Observe loop —
// the shape a sampled-NetFlow collector actually takes: one pass over the
// exported (sampled) packet stream, every statistic of the original
// traffic available at the end. Individual estimators can be disabled to
// save their space.
type Monitor struct {
	p       float64
	fk      *FkEstimator
	f0      *F0Estimator
	entropy *EntropyEstimator
	hh1     *F1HeavyHitters
	hh2     *F2HeavyHitters
	nL      uint64
}

// MonitorConfig configures a Monitor. Zero-valued sections use defaults;
// setting a Disable flag drops that estimator entirely.
type MonitorConfig struct {
	// P is the Bernoulli sampling probability of the observed stream.
	P float64
	// K is the moment order tracked by the Fk estimator. Default 2.
	K int
	// Epsilon is the shared target relative error. Default 0.2.
	Epsilon float64
	// HHAlpha is the heavy-hitter threshold for both hitters. Default 0.01.
	HHAlpha float64
	// DisableFk, DisableF0, DisableEntropy, DisableHH1 and DisableHH2
	// turn individual estimators off.
	DisableFk      bool
	DisableF0      bool
	DisableEntropy bool
	DisableHH1     bool
	DisableHH2     bool
}

// NewMonitor builds a Monitor. It panics on an invalid P, like the
// individual constructors.
func NewMonitor(cfg MonitorConfig, r *rng.Xoshiro256) *Monitor {
	if cfg.P <= 0 || cfg.P > 1 {
		panic("core: Monitor P must be in (0, 1]")
	}
	k := cfg.K
	if k == 0 {
		k = 2
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 0.2
	}
	alpha := cfg.HHAlpha
	if alpha == 0 {
		alpha = 0.01
	}
	m := &Monitor{p: cfg.P}
	if !cfg.DisableFk {
		m.fk = NewFkEstimator(FkConfig{K: k, P: cfg.P, Epsilon: eps}, r.Split())
	}
	if !cfg.DisableF0 {
		m.f0 = NewF0Estimator(F0Config{P: cfg.P}, r.Split())
	}
	if !cfg.DisableEntropy {
		m.entropy = NewEntropyEstimator(EntropyConfig{P: cfg.P}, r.Split())
	}
	if !cfg.DisableHH1 {
		m.hh1 = NewF1HeavyHitters(F1HHConfig{P: cfg.P, Alpha: alpha, Epsilon: eps}, r.Split())
	}
	if !cfg.DisableHH2 {
		// F₂ heaviness is measured against √F₂ rather than F₁, so the
		// same intent needs a larger α; clamp the heuristic into range.
		alpha2 := alpha * 10
		if alpha2 > 0.9 {
			alpha2 = 0.9
		}
		m.hh2 = NewF2HeavyHitters(F2HHConfig{P: cfg.P, Alpha: alpha2, Epsilon: eps}, r.Split())
	}
	return m
}

// Observe feeds one element of the sampled stream to every enabled
// estimator.
func (m *Monitor) Observe(it stream.Item) {
	m.nL++
	if m.fk != nil {
		m.fk.Observe(it)
	}
	if m.f0 != nil {
		m.f0.Observe(it)
	}
	if m.entropy != nil {
		m.entropy.Observe(it)
	}
	if m.hh1 != nil {
		m.hh1.Observe(it)
	}
	if m.hh2 != nil {
		m.hh2.Observe(it)
	}
}

// Report summarizes every enabled estimator. Disabled estimators report
// zero values and nil slices.
type Report struct {
	// SampledLength is F1(L), the number of observed elements.
	SampledLength uint64
	// EstimatedLength is the estimate of n = F1(P).
	EstimatedLength float64
	// Fk is the estimate of the configured moment (0 when disabled).
	Fk float64
	// F0 is the distinct-count estimate (0 when disabled).
	F0 float64
	// Entropy is the entropy estimate in bits (0 when disabled).
	Entropy float64
	// F1HeavyHitters and F2HeavyHitters list detected hitters.
	F1HeavyHitters []ReportedHitter
	F2HeavyHitters []ReportedHitter
}

// Report produces the point-in-time summary.
func (m *Monitor) Report() Report {
	rep := Report{
		SampledLength:   m.nL,
		EstimatedLength: float64(m.nL) / m.p,
	}
	if m.fk != nil {
		rep.Fk = m.fk.Estimate()
	}
	if m.f0 != nil {
		rep.F0 = m.f0.Estimate()
	}
	if m.entropy != nil {
		rep.Entropy = m.entropy.Estimate()
	}
	if m.hh1 != nil {
		rep.F1HeavyHitters = m.hh1.Report()
	}
	if m.hh2 != nil {
		rep.F2HeavyHitters = m.hh2.Report()
	}
	return rep
}

// SpaceBytes returns the combined approximate footprint of the enabled
// estimators.
func (m *Monitor) SpaceBytes() int {
	total := 16
	if m.fk != nil {
		total += m.fk.SpaceBytes()
	}
	if m.f0 != nil {
		total += m.f0.SpaceBytes()
	}
	if m.entropy != nil {
		total += m.entropy.SpaceBytes()
	}
	if m.hh1 != nil {
		total += m.hh1.SpaceBytes()
	}
	if m.hh2 != nil {
		total += m.hh2.SpaceBytes()
	}
	return total
}
