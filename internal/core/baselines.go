package core

import (
	"math"

	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// This file implements the baselines the experiments compare against:
// the Rusu–Dobra-style scaled F₂ estimator (sketch the sampled stream,
// invert the sampling expectation) and naive normalization of sampled
// moments. The paper's §1.3 credits the scaling approach with Õ(1/p²)
// space at fixed accuracy versus Õ(1/p) for the collision method —
// experiment E9 measures exactly that.

// ScaledF2Estimator estimates F₂(P) by sketching F₂(L) and inverting
//
//	E[F₂(L)] = p²·F₂(P) + p(1−p)·F₁(P)
//
// giving F̂₂(P) = (F̂₂(L) − (1−p)·F₁(L)) / p². F₁(L) is counted exactly.
// The estimator is unbiased given an unbiased F̂₂(L), but dividing by p²
// amplifies the sketch's error by 1/p², which is why matching the
// collision method's accuracy needs quadratically more space.
type ScaledF2Estimator struct {
	p  float64
	cs *sketch.CountSketch
	nL uint64
}

// ScaledF2Config configures a ScaledF2Estimator.
type ScaledF2Config struct {
	// P is the Bernoulli sampling probability.
	P float64
	// Width and Depth shape the CountSketch used for F̂₂(L).
	// Defaults 4096 and 5.
	Width int
	Depth int
}

// NewScaledF2Estimator builds the estimator.
func NewScaledF2Estimator(cfg ScaledF2Config, r *rng.Xoshiro256) *ScaledF2Estimator {
	if cfg.P <= 0 || cfg.P > 1 {
		panic("core: ScaledF2Estimator P must be in (0, 1]")
	}
	width := cfg.Width
	if width == 0 {
		width = 4096
	}
	depth := cfg.Depth
	if depth == 0 {
		depth = 5
	}
	return &ScaledF2Estimator{p: cfg.P, cs: sketch.NewCountSketch(width, depth, r)}
}

// Observe feeds one element of the sampled stream L.
func (e *ScaledF2Estimator) Observe(it stream.Item) {
	e.nL++
	e.cs.Observe(it)
}

// Estimate returns the inverted estimate of F₂(P). Noise can push the
// raw inversion below the information floor F₁(P) ≈ F₁(L)/p; the result
// is clamped there.
func (e *ScaledF2Estimator) Estimate() float64 {
	f2L := e.cs.F2Estimate()
	f1L := float64(e.nL)
	est := (f2L - (1-e.p)*f1L) / (e.p * e.p)
	if floor := f1L / e.p; est < floor {
		return floor
	}
	return est
}

// SpaceBytes returns the approximate memory footprint.
func (e *ScaledF2Estimator) SpaceBytes() int { return e.cs.SpaceBytes() + 16 }

// NaiveFkEstimator is the strawman: compute F_k(L) exactly and return
// F_k(L)/p^k. The normalization is correct only for the pure power term
// Σ(p·f_i)^k; it ignores every lower-order binomial moment term, so it
// systematically underestimates skewed streams and overestimates nothing
// — the experiments use it to show why the collision correction matters.
type NaiveFkEstimator struct {
	k      int
	p      float64
	counts stream.Freq
}

// NewNaiveFkEstimator builds the strawman estimator for moment order k.
func NewNaiveFkEstimator(k int, p float64) *NaiveFkEstimator {
	if k < 1 || k > maxMomentOrder {
		panic("core: NaiveFkEstimator order out of range")
	}
	if p <= 0 || p > 1 {
		panic("core: NaiveFkEstimator P must be in (0, 1]")
	}
	return &NaiveFkEstimator{k: k, p: p, counts: make(stream.Freq)}
}

// Observe feeds one element of the sampled stream L.
func (e *NaiveFkEstimator) Observe(it stream.Item) { e.counts[it]++ }

// Estimate returns F_k(L)/p^k.
func (e *NaiveFkEstimator) Estimate() float64 {
	return e.counts.Fk(e.k) / math.Pow(e.p, float64(e.k))
}

// SpaceBytes returns the approximate memory footprint.
func (e *NaiveFkEstimator) SpaceBytes() int { return 16 * len(e.counts) }

// NaiveF0Estimator is the strawman distinct counter: F₀(L)/p. Charikar
// et al.'s lower bound (Theorem 3) manifests as this estimator collapsing
// on duplicate-free streams; E3 plots it against Algorithm 2.
type NaiveF0Estimator struct {
	p   float64
	kmv *sketch.KMV
}

// NewNaiveF0Estimator builds the strawman with a KMV backend of size k.
func NewNaiveF0Estimator(p float64, k int, r *rng.Xoshiro256) *NaiveF0Estimator {
	if p <= 0 || p > 1 {
		panic("core: NaiveF0Estimator P must be in (0, 1]")
	}
	return &NaiveF0Estimator{p: p, kmv: sketch.NewKMV(k, r)}
}

// Observe feeds one element of the sampled stream L.
func (e *NaiveF0Estimator) Observe(it stream.Item) { e.kmv.Observe(it) }

// Estimate returns F̂₀(L)/p.
func (e *NaiveF0Estimator) Estimate() float64 {
	return e.kmv.Estimate() / e.p
}

// SpaceBytes returns the approximate memory footprint.
func (e *NaiveF0Estimator) SpaceBytes() int { return e.kmv.SpaceBytes() + 16 }
