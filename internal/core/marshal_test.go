package core

import (
	"errors"
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
	"substream/internal/workload"
)

// nearlyEqual absorbs float summation-order noise: map-backed estimates
// (entropy) sum their frequency map in iteration order, which Go
// randomizes, so equality holds only up to accumulated rounding.
func nearlyEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// marshalSample returns a skewed sampled stream for round-trip tests.
func marshalSample(n int, seed uint64) stream.Slice {
	wl := workload.Zipf(n, 2000, 1.1, seed)
	return stream.Collect(wl.Stream)
}

func TestFkEstimatorMarshalRoundTrip(t *testing.T) {
	for name, cfg := range map[string]FkConfig{
		"levelset": {K: 3, P: 0.2, Budget: 256},
		"exact":    {K: 3, P: 0.2, Exact: true},
	} {
		t.Run(name, func(t *testing.T) {
			mk := func() *FkEstimator { return NewFkEstimator(cfg, rng.New(11)) }
			e := mk()
			for _, it := range marshalSample(20000, 1) {
				e.Observe(it)
			}
			data, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalFkEstimator(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Estimate() != e.Estimate() {
				t.Fatalf("estimate %v after round trip, want %v", back.Estimate(), e.Estimate())
			}
			if back.SampledLength() != e.SampledLength() || back.K() != e.K() || back.P() != e.P() {
				t.Fatal("metadata lost in round trip")
			}
			// Shipping must preserve mergeability with same-seed replicas.
			sib := mk()
			for _, it := range marshalSample(5000, 2) {
				sib.Observe(it)
			}
			if err := back.Merge(sib); err != nil {
				t.Fatalf("round-tripped estimator not mergeable: %v", err)
			}
		})
	}
}

func TestF0EstimatorMarshalRoundTrip(t *testing.T) {
	for name, cfg := range map[string]F0Config{
		"kmv": {P: 0.1, Backend: F0KMV, KMVSize: 128},
		"hll": {P: 0.1, Backend: F0HLL, HLLPrecision: 8},
	} {
		t.Run(name, func(t *testing.T) {
			mk := func() *F0Estimator { return NewF0Estimator(cfg, rng.New(13)) }
			e := mk()
			for _, it := range marshalSample(20000, 3) {
				e.Observe(it)
			}
			data, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalF0Estimator(data)
			if err != nil {
				t.Fatal(err)
			}
			if back.Estimate() != e.Estimate() {
				t.Fatal("estimate differs after round trip")
			}
			sib := mk()
			for _, it := range marshalSample(5000, 4) {
				sib.Observe(it)
			}
			if err := back.Merge(sib); err != nil {
				t.Fatalf("round-tripped estimator not mergeable: %v", err)
			}
		})
	}
}

func TestGEEF0EstimatorMarshalRoundTrip(t *testing.T) {
	e := NewGEEF0Estimator(0.25)
	for _, it := range marshalSample(10000, 5) {
		e.Observe(it)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGEEF0Estimator(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Estimate() != e.Estimate() {
		t.Fatal("estimate differs after round trip")
	}
}

func TestEntropyEstimatorMarshalRoundTrip(t *testing.T) {
	e := NewEntropyEstimator(EntropyConfig{P: 0.2}, rng.New(17))
	for _, it := range marshalSample(20000, 6) {
		e.Observe(it)
	}
	data, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalEntropyEstimator(data)
	if err != nil {
		t.Fatal(err)
	}
	if !nearlyEqual(back.Estimate(), e.Estimate()) {
		t.Fatal("estimate differs after round trip")
	}
	if back.SampledLength() != e.SampledLength() {
		t.Fatal("nL lost in round trip")
	}
	sib := NewEntropyEstimator(EntropyConfig{P: 0.2}, rng.New(17))
	sib.Observe(1)
	if err := back.Merge(sib); err != nil {
		t.Fatal(err)
	}
}

func TestEntropySketchBackendNotSerializable(t *testing.T) {
	e := NewEntropyEstimator(EntropyConfig{P: 0.2, Backend: EntropySketch}, rng.New(19))
	if _, err := e.MarshalBinary(); !errors.Is(err, ErrNotMergeable) {
		t.Fatalf("sketch backend marshaled (err=%v), want ErrNotMergeable", err)
	}
}

func TestHeavyHittersMarshalRoundTrip(t *testing.T) {
	s := marshalSample(40000, 7)
	t.Run("f1-countmin", func(t *testing.T) {
		mk := func() *F1HeavyHitters {
			return NewF1HeavyHitters(F1HHConfig{P: 0.2, Alpha: 0.05}, rng.New(23))
		}
		h := mk()
		for _, it := range s {
			h.Observe(it)
		}
		data, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalF1HeavyHitters(data)
		if err != nil {
			t.Fatal(err)
		}
		want, got := h.Report(), back.Report()
		if len(want) != len(got) {
			t.Fatalf("%d hitters after round trip, want %d", len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("hitter %d differs: %+v vs %+v", i, got[i], want[i])
			}
		}
		sib := mk()
		sib.Observe(1)
		if err := back.Merge(sib); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("f1-misragries", func(t *testing.T) {
		h := NewF1HeavyHitters(F1HHConfig{P: 0.2, Alpha: 0.05, Backend: F1MisraGries}, rng.New(23))
		for _, it := range s {
			h.Observe(it)
		}
		data, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalF1HeavyHitters(data)
		if err != nil {
			t.Fatal(err)
		}
		want, got := h.Report(), back.Report()
		if len(want) != len(got) {
			t.Fatalf("%d hitters after round trip, want %d", len(got), len(want))
		}
	})
	t.Run("f2", func(t *testing.T) {
		mk := func() *F2HeavyHitters {
			return NewF2HeavyHitters(F2HHConfig{P: 0.2, Alpha: 0.2}, rng.New(29))
		}
		h := mk()
		for _, it := range s {
			h.Observe(it)
		}
		data, err := h.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalF2HeavyHitters(data)
		if err != nil {
			t.Fatal(err)
		}
		want, got := h.Report(), back.Report()
		if len(want) != len(got) {
			t.Fatalf("%d hitters after round trip, want %d", len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("hitter %d differs: %+v vs %+v", i, got[i], want[i])
			}
		}
		sib := mk()
		sib.Observe(1)
		if err := back.Merge(sib); err != nil {
			t.Fatal(err)
		}
	})
}

func TestMonitorMarshalRoundTrip(t *testing.T) {
	mk := func() *Monitor {
		return NewMonitor(MonitorConfig{P: 0.2, K: 2, HHAlpha: 0.05}, rng.New(31))
	}
	m := mk()
	for _, it := range marshalSample(30000, 8) {
		m.Observe(it)
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMonitor(data)
	if err != nil {
		t.Fatal(err)
	}
	want, got := m.Report(), back.Report()
	if got.SampledLength != want.SampledLength || got.Fk != want.Fk ||
		got.F0 != want.F0 || !nearlyEqual(got.Entropy, want.Entropy) {
		t.Fatalf("report differs after round trip: %+v vs %+v", got, want)
	}
	if len(got.F1HeavyHitters) != len(want.F1HeavyHitters) {
		t.Fatal("F1 hitters differ after round trip")
	}
	sib := mk()
	sib.Observe(1)
	if err := back.Merge(sib); err != nil {
		t.Fatalf("round-tripped monitor not mergeable: %v", err)
	}
}

func TestMonitorMarshalDisabledEstimators(t *testing.T) {
	m := NewMonitor(MonitorConfig{P: 0.5, DisableFk: true, DisableHH2: true}, rng.New(37))
	for _, it := range marshalSample(5000, 9) {
		m.Observe(it)
	}
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMonitor(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Report().Fk != 0 {
		t.Fatal("disabled Fk came back enabled")
	}
	if back.Report().F0 != m.Report().F0 {
		t.Fatal("F0 differs after round trip")
	}
}

// TestCoreUnmarshalTruncatedAndBitFlipped mirrors the sketch package's
// corruption harness over the composite estimator payloads.
func TestCoreUnmarshalTruncatedAndBitFlipped(t *testing.T) {
	s := marshalSample(2000, 10)
	fk := NewFkEstimator(FkConfig{K: 2, P: 0.3, Budget: 16}, rng.New(1))
	f0 := NewF0Estimator(F0Config{P: 0.3, KMVSize: 16}, rng.New(2))
	ent := NewEntropyEstimator(EntropyConfig{P: 0.3}, rng.New(3))
	hh1 := NewF1HeavyHitters(F1HHConfig{P: 0.3, Alpha: 0.1, Backend: F1MisraGries}, rng.New(4))
	hh2 := NewF2HeavyHitters(F2HHConfig{P: 0.3, Alpha: 0.3, MaxWidth: 64}, rng.New(5))
	mon := NewMonitor(MonitorConfig{P: 0.3, HHAlpha: 0.1, DisableHH2: true, DisableFk: true}, rng.New(6))
	for _, it := range s {
		fk.Observe(it)
		f0.Observe(it)
		ent.Observe(it)
		hh1.Observe(it)
		hh2.Observe(it)
		mon.Observe(it)
	}
	type marshaler interface{ MarshalBinary() ([]byte, error) }
	sources := map[string]marshaler{
		"fk": fk, "f0": f0, "entropy": ent, "hh1": hh1, "hh2": hh2, "monitor": mon,
	}
	decoders := map[string]func([]byte) error{
		"fk":      func(d []byte) error { _, err := UnmarshalFkEstimator(d); return err },
		"f0":      func(d []byte) error { _, err := UnmarshalF0Estimator(d); return err },
		"gee":     func(d []byte) error { _, err := UnmarshalGEEF0Estimator(d); return err },
		"entropy": func(d []byte) error { _, err := UnmarshalEntropyEstimator(d); return err },
		"hh1":     func(d []byte) error { _, err := UnmarshalF1HeavyHitters(d); return err },
		"hh2":     func(d []byte) error { _, err := UnmarshalF2HeavyHitters(d); return err },
		"monitor": func(d []byte) error { _, err := UnmarshalMonitor(d); return err },
	}
	for src, m := range sources {
		payload, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		dec := decoders[src]
		// Sample corruption positions with a fixed per-payload budget so
		// the harness stays fast on multi-kilobyte composite payloads.
		cutStep := len(payload)/512 + 1
		for cut := 0; cut < len(payload); cut += cutStep {
			if dec(payload[:cut]) == nil {
				t.Fatalf("%s accepted a %d/%d-byte truncation", src, cut, len(payload))
			}
		}
		// Every decoder over every payload: cross-type confusion and
		// single-bit corruption must never panic.
		bitStep := 8*len(payload)/2048 + 1
		for name, d := range decoders {
			for bit := 0; bit < 8*len(payload); bit += bitStep {
				flipped := append([]byte{}, payload...)
				flipped[bit/8] ^= 1 << (bit % 8)
				_ = d(flipped)
			}
			if name != src {
				if err := d(payload); err == nil {
					t.Fatalf("%s decoder accepted %s payload", name, src)
				}
			}
		}
	}
}
