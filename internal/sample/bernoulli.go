// Package sample implements stream samplers. The Bernoulli sampler is the
// paper's model (§1.1, "randomly sampled NetFlow"): each element of the
// original stream P survives into the sampled stream L independently with
// probability p. The package also implements the related-work samplers
// the paper surveys (§1.3) — reservoir, weighted reservoir,
// sample-and-hold, priority sampling, deterministic 1-in-N — so the
// experiment harness can contrast Bernoulli sampling with the schemes it
// is most often compared against.
package sample

import (
	"math"

	"substream/internal/rng"
	"substream/internal/stream"
)

// Bernoulli subsamples a stream: each item is kept independently with
// probability P. It is the sampling process the paper's estimators assume,
// and the only one whose output the core estimators consume.
type Bernoulli struct {
	// P is the sampling probability, in (0, 1].
	P float64
}

// NewBernoulli returns a Bernoulli sampler with probability p. It panics
// unless 0 < p ≤ 1 — a zero-probability sampler produces no information
// and always indicates a configuration bug.
func NewBernoulli(p float64) Bernoulli {
	if p <= 0 || p > 1 {
		panic("sample: Bernoulli probability must be in (0, 1]")
	}
	return Bernoulli{P: p}
}

// Apply materializes the sampled stream L for original stream s, drawing
// the per-element coin flips from r. Repeated calls with independent
// generators yield independent samples, which is how the experiment
// harness runs multiple trials over one workload.
func (b Bernoulli) Apply(s stream.Stream, r *rng.Xoshiro256) stream.Slice {
	out := make(stream.Slice, 0, int(float64(s.Len())*b.P)+16)
	_ = s.ForEach(func(it stream.Item) error {
		if b.P >= 1 || r.Float64() < b.P {
			out = append(out, it)
		}
		return nil
	})
	return out
}

// Pipe streams the sampled elements of s into sink without materializing
// L, for workloads too large to hold in memory. The sink's error aborts
// the pass.
func (b Bernoulli) Pipe(s stream.Stream, r *rng.Xoshiro256, sink func(stream.Item) error) error {
	return s.ForEach(func(it stream.Item) error {
		if b.P >= 1 || r.Float64() < b.P {
			return sink(it)
		}
		return nil
	})
}

// SampleFreq draws the sampled frequency vector g directly from the exact
// frequency vector f, using g_i ~ Bin(f_i, p) — the distributional
// shortcut of §2 (the per-item counts are independent binomials). It is
// orders of magnitude faster than streaming when only g matters, and is
// cross-validated against Apply in the tests.
func (b Bernoulli) SampleFreq(f stream.Freq, r *rng.Xoshiro256) stream.Freq {
	g := make(stream.Freq, len(f))
	for it, c := range f {
		if s := rng.Binomial(r, c, b.P); s > 0 {
			g[it] = s
		}
	}
	return g
}

// ExpectedLen returns the expected length of L for an original stream of
// length n, i.e. p·n.
func (b Bernoulli) ExpectedLen(n int) float64 { return b.P * float64(n) }

// AdaptiveBernoulli is the extension the paper's conclusion poses as an
// open question: the sampling probability may be lowered as the stream
// progresses (e.g. when a monitor sheds load). Each phase i samples with
// probability p_i; the sampler records, for every sampled item, the phase
// it was sampled in, so estimators can apply per-phase corrections
// (Horvitz–Thompson weights 1/p_i).
type AdaptiveBernoulli struct {
	// Boundaries[i] is the first stream position (0-based) of phase i+1;
	// phase 0 starts at position 0. Must be strictly increasing.
	Boundaries []int
	// Probs[i] is the sampling probability of phase i;
	// len(Probs) == len(Boundaries)+1.
	Probs []float64
}

// NewAdaptiveBernoulli builds a phased sampler. It panics on malformed
// arguments: probabilities out of (0,1], a boundary list that is not
// strictly increasing, or a length mismatch.
func NewAdaptiveBernoulli(boundaries []int, probs []float64) AdaptiveBernoulli {
	if len(probs) != len(boundaries)+1 {
		panic("sample: AdaptiveBernoulli needs len(probs) == len(boundaries)+1")
	}
	for _, p := range probs {
		if p <= 0 || p > 1 {
			panic("sample: AdaptiveBernoulli probability must be in (0, 1]")
		}
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			panic("sample: AdaptiveBernoulli boundaries must be strictly increasing")
		}
	}
	return AdaptiveBernoulli{Boundaries: boundaries, Probs: probs}
}

// PhasedItem is a sampled item tagged with the phase it survived.
type PhasedItem struct {
	Item  stream.Item
	Phase int
}

// Apply materializes the phase-tagged sample of s.
func (a AdaptiveBernoulli) Apply(s stream.Stream, r *rng.Xoshiro256) []PhasedItem {
	var out []PhasedItem
	pos, phase := 0, 0
	_ = s.ForEach(func(it stream.Item) error {
		for phase < len(a.Boundaries) && pos >= a.Boundaries[phase] {
			phase++
		}
		if r.Float64() < a.Probs[phase] {
			out = append(out, PhasedItem{Item: it, Phase: phase})
		}
		pos++
		return nil
	})
	return out
}

// EstimateF1 returns the Horvitz–Thompson estimate of the original stream
// length from a phase-tagged sample: Σ 1/p_phase.
func (a AdaptiveBernoulli) EstimateF1(sampled []PhasedItem) float64 {
	var est float64
	for _, it := range sampled {
		est += 1 / a.Probs[it.Phase]
	}
	return est
}

// EstimateF2 returns an unbiased estimate of F2(P) from a phase-tagged
// sample, generalizing the collision inversion E[C2 within phase i] =
// p_i² C2 and cross-phase pair survival p_i·p_j. Concretely it computes,
// per item, the Horvitz–Thompson estimate of f_i² from the phase counts:
// f̂_i² = Σ_a c_a(c_a−1)/p_a² + Σ_{a≠b} c_a c_b/(p_a p_b) + Σ_a c_a/p_a,
// using pair-survival probabilities, then sums over items.
func (a AdaptiveBernoulli) EstimateF2(sampled []PhasedItem) float64 {
	// counts[item][phase]
	counts := make(map[stream.Item][]float64)
	nPhases := len(a.Probs)
	for _, it := range sampled {
		c := counts[it.Item]
		if c == nil {
			c = make([]float64, nPhases)
			counts[it.Item] = c
		}
		c[it.Phase]++
	}
	var est float64
	for _, c := range counts {
		// Unbiased f̂ = Σ c_a/p_a; unbiased f̂² uses pair terms.
		var linear, pairs float64
		for ph, ca := range c {
			pa := a.Probs[ph]
			linear += ca / pa
			pairs += ca * (ca - 1) / (pa * pa)
			for ph2 := ph + 1; ph2 < nPhases; ph2++ {
				pairs += 2 * ca * c[ph2] / (pa * a.Probs[ph2])
			}
		}
		est += pairs + linear
	}
	return est
}

// EffectiveRate returns the average sampling probability over a stream of
// length n, i.e. the expected |L|/n.
func (a AdaptiveBernoulli) EffectiveRate(n int) float64 {
	if n == 0 {
		return 0
	}
	var total float64
	prev := 0
	for i, b := range a.Boundaries {
		if b > n {
			b = n
		}
		total += float64(b-prev) * a.Probs[i]
		prev = b
	}
	if prev < n {
		total += float64(n-prev) * a.Probs[len(a.Probs)-1]
	}
	return total / float64(n)
}

// MinRecommendedP returns the paper's minimum sampling probability for
// estimating F_k (Theorem 1): p must be Ω̃(min(m, n)^(−1/k)). The constant
// is taken as 1; callers compare their p against this floor when deciding
// whether an Fk estimate is information-theoretically meaningful.
func MinRecommendedP(m, n uint64, k int) float64 {
	mn := m
	if n < mn {
		mn = n
	}
	if mn == 0 {
		return 1
	}
	return math.Pow(float64(mn), -1/float64(k))
}
