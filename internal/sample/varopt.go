package sample

import (
	"container/heap"
	"fmt"
	"math"

	"substream/internal/estimator"
	"substream/internal/rng"
	"substream/internal/sketch"
	"substream/internal/stream"
)

// This file implements VarOpt_k sampling (Cohen–Duffield–Kaplan–Lund–
// Thorup, "Stream sampling for variance-optimal estimation of subset
// sums"): a k-slot weighted reservoir whose subset-sum estimates are
// unbiased and variance-optimal among all off-line sampling schemes of
// size k. It is the library's weighted counterpart of the Bernoulli
// sampler — the summary behind "how many bytes did subnet X send".
//
// State: a threshold τ plus the sample split into LARGE items (weight
// > τ, kept with their exact weight, organized as a min-heap on weight)
// and SMALL items (kept with the shared adjusted weight τ; only their
// keys are stored). An item's adjusted weight max(w, τ) is the
// Horvitz–Thompson estimator of its true weight, so the estimate of any
// subset's total weight is the sum of adjusted weights over sampled
// members — and Σ adjusted weights equals the total stream weight
// exactly (up to float rounding).
//
// Inserting into a full reservoir considers the k+1 adjusted weights,
// grows the candidate small set S upward until τ' = W(S)/(|S|−1)
// separates it from the remaining large items, then drops exactly one
// member of S — item i with probability 1 − w_i/τ' (these sum to 1) —
// and the survivors of S become small at weight τ'. Until the reservoir
// first overflows, τ is 0 and the sample is the exact stream.
//
// Unlike Bernoulli sampling, VarOpt does NOT commute with partitioning
// the stream: the per-shard reservoirs of a pipeline are each a VarOpt
// sample of their shard, and Merge re-feeds one reservoir's sample into
// the other at its adjusted weights — unbiased by the tower property,
// and the shape the CDKLT merge procedure takes in this representation.

// TagVarOpt is the reservoir's wire tag, first of the sample package's
// 0x50–0x5f range.
const TagVarOpt byte = 0x50

// maxVarOptK bounds the reservoir size here and in the decoder, keeping
// corrupt payloads from provoking huge allocations.
const maxVarOptK = 1 << 24

// VarOpt is a VarOpt_k weighted reservoir. It implements
// estimator.Typed[*VarOpt] plus the estimator.Weighted and
// estimator.Summer capabilities; lift it with estimator.Adapt. Not safe
// for concurrent use.
type VarOpt struct {
	k      int
	n      uint64  // weighted items observed (merge-cumulative)
	totalW float64 // exact total weight observed
	tau    float64 // adjusted weight of small items; 0 until first drop
	large  voHeap  // min-heap on weight; every weight > tau
	small  []stream.Item
	r      *rng.Xoshiro256
	cand   []stream.WItem // insert scratch, reused across calls
}

// voHeap is the large-item min-heap, ordered by weight.
type voHeap []stream.WItem

func (h voHeap) Len() int            { return len(h) }
func (h voHeap) Less(i, j int) bool  { return h[i].Weight < h[j].Weight }
func (h voHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *voHeap) Push(x interface{}) { *h = append(*h, x.(stream.WItem)) }
func (h *voHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewVarOpt returns an empty reservoir of k slots drawing its drop coins
// from r. It panics if k < 1 or r is nil, like the other constructors.
func NewVarOpt(k int, r *rng.Xoshiro256) *VarOpt {
	if k < 1 {
		panic("sample: VarOpt requires k >= 1")
	}
	if r == nil {
		panic("sample: VarOpt requires a generator")
	}
	return &VarOpt{k: k, r: r}
}

// K returns the reservoir capacity.
func (v *VarOpt) K() int { return v.k }

// N returns the number of weighted items observed.
func (v *VarOpt) N() uint64 { return v.n }

// TotalWeight returns the exact total weight observed.
func (v *VarOpt) TotalWeight() float64 { return v.totalW }

// Tau returns the current small-item threshold (0 while the sample is
// still exact).
func (v *VarOpt) Tau() float64 { return v.tau }

// SampleSize returns the number of retained items.
func (v *VarOpt) SampleSize() int { return len(v.large) + len(v.small) }

// ObserveWeighted feeds one weighted item. Non-positive and non-finite
// weights carry no mass and are ignored.
func (v *VarOpt) ObserveWeighted(it stream.Item, weight float64) {
	if !(weight > 0) || math.IsInf(weight, 0) {
		return
	}
	v.n++
	v.totalW += weight
	v.insert(it, weight)
}

// UpdateWeightedBatch feeds a weighted batch, element-wise — the batch
// state is bit-identical to per-item ObserveWeighted by construction.
func (v *VarOpt) UpdateWeightedBatch(items []stream.WItem) {
	for _, it := range items {
		v.ObserveWeighted(it.Key, it.Weight)
	}
}

// Observe feeds one unweighted item at weight 1, the degenerate case
// under which VarOpt is a uniform (length-k) reservoir.
func (v *VarOpt) Observe(it stream.Item) { v.ObserveWeighted(it, 1) }

// UpdateBatch feeds an unweighted batch element-wise.
func (v *VarOpt) UpdateBatch(items []stream.Item) {
	for _, it := range items {
		v.ObserveWeighted(it, 1)
	}
}

// insert is the counter-free sampling core shared by Observe and Merge.
func (v *VarOpt) insert(it stream.Item, weight float64) {
	if len(v.large)+len(v.small) < v.k {
		// Not yet full: τ is 0 (see the merge argument below), so every
		// positive weight is "large" and the sample is exact.
		heap.Push(&v.large, stream.WItem{Key: it, Weight: weight})
		return
	}
	v.insertFull(it, weight)
}

// insertFull runs the CDKLT drop procedure on the k+1 candidates.
func (v *VarOpt) insertFull(it stream.Item, weight float64) {
	// S starts as the current small set (|small| items of adjusted weight
	// τ each); the new item joins S or the large heap by weight.
	cand := v.cand[:0] // members of S with explicit weights (beyond old small)
	t := len(v.small)
	W := v.tau * float64(t)
	if weight <= v.tau {
		cand = append(cand, stream.WItem{Key: it, Weight: weight})
		t++
		W += weight
	} else {
		heap.Push(&v.large, stream.WItem{Key: it, Weight: weight})
	}
	// Grow S until τ' = W/(t−1) separates it from the remaining large
	// items. The loop compares against the same division the final τ'
	// uses, so "every remaining large weight > τ'" holds exactly in
	// float arithmetic — the invariant the decoder re-checks.
	for len(v.large) > 0 {
		if t >= 2 && v.large[0].Weight > W/float64(t-1) {
			break
		}
		e := v.large[0]
		heap.Pop(&v.large)
		cand = append(cand, e)
		t++
		W += e.Weight
	}
	tauNew := W / float64(t-1)

	// Drop exactly one member of S: item i with probability 1 − w_i/τ'
	// (the probabilities sum to t − W/τ' = 1). Old small items share one
	// drop probability, so the walk treats them as a single block and
	// picks uniformly inside it — O(|cand|) instead of O(k).
	dropSmall, dropCand := -1, -1
	perOld := 0.0
	if len(v.small) > 0 {
		perOld = 1 - v.tau/tauNew
	}
	blockP := float64(len(v.small)) * perOld
	u := v.r.Float64()
	if u < blockP {
		i := int(u / perOld)
		if i >= len(v.small) {
			i = len(v.small) - 1
		}
		dropSmall = i
	} else {
		c := u - blockP
		for i := range cand {
			p := 1 - cand[i].Weight/tauNew
			if c < p {
				dropCand = i
				break
			}
			c -= p
		}
		if dropCand < 0 {
			// Float drift left the walk past the end; the total drop
			// probability is exactly 1, so assign the remainder to the
			// last member of S.
			if len(cand) > 0 {
				dropCand = len(cand) - 1
			} else {
				dropSmall = len(v.small) - 1
			}
		}
	}
	if dropSmall >= 0 {
		last := len(v.small) - 1
		v.small[dropSmall] = v.small[last]
		v.small = v.small[:last]
	}
	for i := range cand {
		if i != dropCand {
			v.small = append(v.small, cand[i].Key)
		}
	}
	v.tau = tauNew
	v.cand = cand[:0]
}

// Merge folds another reservoir of the same capacity into the receiver:
// the other's sample is re-fed at its adjusted weights (large items
// exact, small items at its τ), which preserves subset-sum unbiasedness
// by the tower property, and the observation counters add. The other
// side is not mutated.
func (v *VarOpt) Merge(o *VarOpt) error {
	if v.k != o.k {
		return fmt.Errorf("sample: cannot merge varopt k=%d into k=%d", o.k, v.k)
	}
	n := v.n + o.n
	totalW := v.totalW + o.totalW
	for _, e := range o.large {
		v.insert(e.Key, e.Weight)
	}
	for _, key := range o.small {
		v.insert(key, o.tau)
	}
	v.n = n
	v.totalW = totalW
	return nil
}

// SubsetSum returns the unbiased Horvitz–Thompson estimate of the total
// weight of stream elements whose key satisfies pred: each sampled item
// contributes its adjusted weight max(w, τ).
func (v *VarOpt) SubsetSum(pred func(stream.Item) bool) float64 {
	var sum float64
	for _, e := range v.large {
		if pred(e.Key) {
			sum += e.Weight
		}
	}
	for _, key := range v.small {
		if pred(key) {
			sum += v.tau
		}
	}
	return sum
}

// Sample returns the retained items with their adjusted weights, in no
// particular order — the raw material for ad-hoc subset queries.
func (v *VarOpt) Sample() []stream.WItem {
	out := make([]stream.WItem, 0, v.SampleSize())
	out = append(out, v.large...)
	for _, key := range v.small {
		out = append(out, stream.WItem{Key: key, Weight: v.tau})
	}
	return out
}

// Estimates reports the reservoir's named scalars: the observed item
// count and exact total weight, the retained sample size, and τ.
func (v *VarOpt) Estimates() map[string]float64 {
	return map[string]float64{
		"n":            float64(v.n),
		"total_weight": v.totalW,
		"sample_size":  float64(v.SampleSize()),
		"tau":          v.tau,
	}
}

// SpaceBytes returns the approximate memory footprint.
func (v *VarOpt) SpaceBytes() int {
	return cap(v.large)*16 + cap(v.small)*8 + cap(v.cand)*16 + 64
}

// Wire format (tag 0x50, sketch.WireVersion, little-endian):
//
//	u32 k, u64 n, f64 totalW, f64 τ
//	4 × u64 xoshiro256 generator state
//	u32 L, then L × (u64 key, f64 weight) — the large heap in array order
//	u32 T, then T × u64 key               — the small set in order
//
// Serializing the heap in array order makes marshaling deterministic and
// the round trip bit-identical: the decoder validates the min-heap
// property instead of rebuilding it. Structural invariants checked on
// decode: non-zero keys, finite positive weights strictly above τ, the
// heap ordering, L+T ≤ k with the fullness rule (τ = 0 means no item
// was ever dropped, so the small set is empty; τ > 0 means the sample
// is full and more than k items were inserted), and a non-degenerate
// generator state.

// MarshalBinary serializes the reservoir.
func (v *VarOpt) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(TagVarOpt)
	w.U32(uint32(v.k))
	w.U64(v.n)
	w.F64(v.totalW)
	w.F64(v.tau)
	for _, s := range v.r.State() {
		w.U64(s)
	}
	w.U32(uint32(len(v.large)))
	for _, e := range v.large {
		w.U64(uint64(e.Key))
		w.F64(e.Weight)
	}
	w.U32(uint32(len(v.small)))
	for _, key := range v.small {
		w.U64(uint64(key))
	}
	return w.Bytes(), nil
}

// UnmarshalVarOpt reconstructs a reservoir from MarshalBinary output.
func UnmarshalVarOpt(data []byte) (*VarOpt, error) {
	r := sketch.NewReader(data)
	r.Header(TagVarOpt)
	k := int(r.U32())
	n := r.U64()
	totalW := r.F64()
	tau := r.F64()
	var state [4]uint64
	for i := range state {
		state[i] = r.U64()
	}
	if r.Err() == nil && (k < 1 || k > maxVarOptK ||
		math.IsNaN(totalW) || math.IsInf(totalW, 0) || totalW < 0 ||
		math.IsNaN(tau) || math.IsInf(tau, 0) || tau < 0) {
		r.Fail()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	gen, err := rng.FromState(state)
	if err != nil {
		r.Failf("sample: varopt: %v", err)
		return nil, r.Err()
	}
	L := r.Count(k, 16)
	if r.Err() != nil {
		return nil, r.Err()
	}
	large := make(voHeap, L)
	for i := range large {
		e := stream.WItem{Key: stream.Item(r.U64()), Weight: r.F64()}
		if r.Err() != nil {
			return nil, r.Err()
		}
		if e.Key == 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= tau {
			r.Fail()
			return nil, r.Err()
		}
		if i > 0 && large[(i-1)/2].Weight > e.Weight {
			r.Failf("sample: varopt payload breaks the large-heap ordering")
			return nil, r.Err()
		}
		large[i] = e
	}
	T := r.Count(k, 8)
	if r.Err() == nil && L+T > k {
		r.Fail()
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	small := make([]stream.Item, T)
	for i := range small {
		key := stream.Item(r.U64())
		if r.Err() == nil && key == 0 {
			r.Fail()
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		small[i] = key
	}
	// Fullness rule: τ stays 0 exactly until the first drop, and a drop
	// both fills the sample and requires more than k insertions.
	switch {
	case n < uint64(L+T):
		r.Failf("sample: varopt payload claims n=%d below its %d retained items", n, L+T)
	case tau == 0 && T != 0:
		r.Failf("sample: varopt payload carries small items without a threshold")
	case tau > 0 && (L+T != k || n <= uint64(k)):
		r.Failf("sample: varopt payload has a threshold but not a full sample")
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &VarOpt{k: k, n: n, totalW: totalW, tau: tau, large: large, small: small, r: gen}, nil
}

func init() {
	estimator.Register(estimator.Kind{
		Tag: TagVarOpt, Name: "varopt",
		Doc: "VarOpt-k weighted reservoir (CDKLT) with unbiased subset-sum estimates (k = budget)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			// Spec.Seed is shared across replicas (the library's
			// mergeability rule), so shard reservoirs flip correlated —
			// but individually well-distributed — drop coins; per-shard
			// unbiasedness and the merge contract are unaffected.
			return estimator.Adapt(NewVarOpt(s.Budget, rng.New(s.Seed))), nil
		},
		Decode: estimator.DecodeTyped(UnmarshalVarOpt),
	})
}
