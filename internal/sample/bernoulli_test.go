package sample

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func makeStream(n int, m uint64, seed uint64) stream.Slice {
	r := rng.New(seed)
	s := make(stream.Slice, n)
	for i := range s {
		s[i] = stream.Item(r.Uint64n(m) + 1)
	}
	return s
}

func TestBernoulliRate(t *testing.T) {
	s := makeStream(200000, 1000, 1)
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
		b := NewBernoulli(p)
		L := b.Apply(s, rng.New(42))
		got := float64(len(L)) / float64(len(s))
		tol := 6 * math.Sqrt(p*(1-p)/float64(len(s)))
		if math.Abs(got-p) > tol {
			t.Fatalf("p=%v: sample rate %v, tolerance %v", p, got, tol)
		}
	}
}

func TestBernoulliPOne(t *testing.T) {
	s := makeStream(1000, 50, 2)
	L := NewBernoulli(1).Apply(s, rng.New(1))
	if len(L) != len(s) {
		t.Fatalf("p=1 dropped items: %d of %d", len(L), len(s))
	}
	for i := range s {
		if L[i] != s[i] {
			t.Fatalf("p=1 reordered items at %d", i)
		}
	}
}

func TestBernoulliPreservesOrder(t *testing.T) {
	// The sampled stream must be a subsequence of the original.
	s := stream.Slice{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	L := NewBernoulli(0.5).Apply(s, rng.New(3))
	j := 0
	for _, it := range L {
		for j < len(s) && s[j] != it {
			j++
		}
		if j == len(s) {
			t.Fatalf("sampled stream %v is not a subsequence of %v", L, s)
		}
		j++
	}
}

func TestBernoulliPanics(t *testing.T) {
	for _, p := range []float64{0, -0.1, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBernoulli(%v) did not panic", p)
				}
			}()
			NewBernoulli(p)
		}()
	}
}

func TestBernoulliPipeMatchesApply(t *testing.T) {
	s := makeStream(10000, 100, 4)
	b := NewBernoulli(0.3)
	viaApply := b.Apply(s, rng.New(77))
	var viaPipe stream.Slice
	if err := b.Pipe(s, rng.New(77), func(it stream.Item) error {
		viaPipe = append(viaPipe, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(viaApply) != len(viaPipe) {
		t.Fatalf("Pipe/Apply lengths differ: %d vs %d", len(viaPipe), len(viaApply))
	}
	for i := range viaApply {
		if viaApply[i] != viaPipe[i] {
			t.Fatalf("Pipe/Apply diverge at %d", i)
		}
	}
}

func TestSampleFreqMatchesApplyDistribution(t *testing.T) {
	// g from SampleFreq and g from streaming Apply must agree in mean and
	// spread for a fixed item.
	var s stream.Slice
	for i := 0; i < 1000; i++ {
		s = append(s, 7)
	}
	f := stream.NewFreq(s)
	b := NewBernoulli(0.2)
	const trials = 2000
	var sumA, sumF float64
	rA, rF := rng.New(5), rng.New(6)
	for i := 0; i < trials; i++ {
		sumA += float64(len(b.Apply(s, rA.Split())))
		sumF += float64(b.SampleFreq(f, rF.Split())[7])
	}
	meanA, meanF := sumA/trials, sumF/trials
	want := 200.0
	se := math.Sqrt(1000 * 0.2 * 0.8 / trials)
	if math.Abs(meanA-want) > 6*se {
		t.Fatalf("Apply mean %v, want %v", meanA, want)
	}
	if math.Abs(meanF-want) > 6*se {
		t.Fatalf("SampleFreq mean %v, want %v", meanF, want)
	}
}

func TestSampleFreqOmitsZeroCounts(t *testing.T) {
	f := stream.Freq{1: 1, 2: 1, 3: 1}
	b := NewBernoulli(0.5)
	g := b.SampleFreq(f, rng.New(9))
	for it, c := range g {
		if c == 0 {
			t.Fatalf("item %d stored with zero count", it)
		}
	}
}

func TestExpectedLen(t *testing.T) {
	if got := NewBernoulli(0.25).ExpectedLen(1000); got != 250 {
		t.Fatalf("ExpectedLen = %v, want 250", got)
	}
}

func TestAdaptiveBernoulliPhases(t *testing.T) {
	a := NewAdaptiveBernoulli([]int{100}, []float64{1, 0.5})
	s := make(stream.Slice, 200)
	for i := range s {
		s[i] = stream.Item(i + 1)
	}
	out := a.Apply(s, rng.New(10))
	// Phase 0 has p=1: all first 100 items present with phase tag 0.
	phase0 := 0
	for _, it := range out {
		if it.Phase == 0 {
			phase0++
			if uint64(it.Item) > 100 {
				t.Fatalf("item %d tagged phase 0", it.Item)
			}
		} else if uint64(it.Item) <= 100 {
			t.Fatalf("item %d tagged phase 1", it.Item)
		}
	}
	if phase0 != 100 {
		t.Fatalf("phase-0 count %d, want 100 (p=1)", phase0)
	}
}

func TestAdaptiveBernoulliF1Unbiased(t *testing.T) {
	a := NewAdaptiveBernoulli([]int{500}, []float64{0.8, 0.2})
	s := makeStream(1000, 100, 11)
	const trials = 1500
	var sum float64
	r := rng.New(12)
	for i := 0; i < trials; i++ {
		sum += a.EstimateF1(a.Apply(s, r.Split()))
	}
	mean := sum / trials
	if math.Abs(mean-1000) > 15 {
		t.Fatalf("adaptive F1 estimate mean %v, want 1000", mean)
	}
}

func TestAdaptiveBernoulliF2Unbiased(t *testing.T) {
	a := NewAdaptiveBernoulli([]int{300}, []float64{0.6, 0.3})
	s := makeStream(600, 20, 13) // small universe → real collisions
	exact := stream.NewFreq(s).Fk(2)
	const trials = 3000
	var sum float64
	r := rng.New(14)
	for i := 0; i < trials; i++ {
		sum += a.EstimateF2(a.Apply(s, r.Split()))
	}
	mean := sum / trials
	if math.Abs(mean-exact)/exact > 0.05 {
		t.Fatalf("adaptive F2 estimate mean %v, exact %v", mean, exact)
	}
}

func TestAdaptiveBernoulliPanics(t *testing.T) {
	cases := []struct {
		name  string
		bound []int
		probs []float64
	}{
		{"len mismatch", []int{10}, []float64{0.5}},
		{"bad prob", []int{10}, []float64{0.5, 0}},
		{"non increasing", []int{10, 10}, []float64{0.5, 0.5, 0.5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			NewAdaptiveBernoulli(c.bound, c.probs)
		})
	}
}

func TestEffectiveRate(t *testing.T) {
	a := NewAdaptiveBernoulli([]int{100}, []float64{1, 0.5})
	if got := a.EffectiveRate(200); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("EffectiveRate = %v, want 0.75", got)
	}
	if got := a.EffectiveRate(100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("EffectiveRate(100) = %v, want 1", got)
	}
	if got := a.EffectiveRate(0); got != 0 {
		t.Fatalf("EffectiveRate(0) = %v", got)
	}
}

func TestMinRecommendedP(t *testing.T) {
	// k=2, min(m,n)=10000 → 10000^(-1/2) = 0.01.
	if got := MinRecommendedP(10000, 1<<30, 2); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("MinRecommendedP = %v, want 0.01", got)
	}
	if got := MinRecommendedP(1<<30, 10000, 2); math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("MinRecommendedP (n smaller) = %v, want 0.01", got)
	}
	if got := MinRecommendedP(0, 0, 3); got != 1 {
		t.Fatalf("MinRecommendedP empty = %v, want 1", got)
	}
}
