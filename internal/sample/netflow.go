package sample

import (
	"container/heap"

	"substream/internal/rng"
	"substream/internal/stream"
)

// This file implements the NetFlow-adjacent samplers from the related
// work: deterministic 1-in-N sampling, sample-and-hold (Estan–Varghese),
// and priority sampling (Duffield–Lund–Thorup) with its unbiased
// subset-sum estimator.

// OneInN is deterministic systematic sampling: it keeps every N-th
// element, the non-random variant of sampled NetFlow.
type OneInN struct {
	N int
}

// NewOneInN returns a 1-in-N sampler; it panics if n < 1.
func NewOneInN(n int) OneInN {
	if n < 1 {
		panic("sample: OneInN requires n >= 1")
	}
	return OneInN{N: n}
}

// Apply materializes the systematic sample: positions N−1, 2N−1, …
func (o OneInN) Apply(s stream.Stream) stream.Slice {
	var out stream.Slice
	pos := 0
	_ = s.ForEach(func(it stream.Item) error {
		pos++
		if pos%o.N == 0 {
			out = append(out, it)
		}
		return nil
	})
	return out
}

// SampleAndHold implements Estan–Varghese sample-and-hold: once any packet
// of a flow is sampled (with probability p per packet), every subsequent
// packet of that flow is counted exactly. It reports, per held flow, the
// exact count observed after the flow entered the table. MaxFlows bounds
// memory; when the table is full, new flows are no longer admitted (the
// standard practical fallback).
type SampleAndHold struct {
	p        float64
	maxFlows int
	counts   map[stream.Item]uint64
	r        *rng.Xoshiro256
	dropped  uint64
}

// NewSampleAndHold returns a sample-and-hold monitor with per-packet
// admission probability p and a table capacity of maxFlows (0 means
// unbounded).
func NewSampleAndHold(p float64, maxFlows int, r *rng.Xoshiro256) *SampleAndHold {
	if p <= 0 || p > 1 {
		panic("sample: SampleAndHold probability must be in (0, 1]")
	}
	if maxFlows < 0 {
		panic("sample: SampleAndHold maxFlows must be >= 0")
	}
	return &SampleAndHold{p: p, maxFlows: maxFlows, counts: make(map[stream.Item]uint64), r: r}
}

// Observe feeds one packet.
func (sh *SampleAndHold) Observe(it stream.Item) {
	if c, held := sh.counts[it]; held {
		sh.counts[it] = c + 1
		return
	}
	if sh.r.Float64() < sh.p {
		if sh.maxFlows > 0 && len(sh.counts) >= sh.maxFlows {
			sh.dropped++
			return
		}
		sh.counts[it] = 1
	}
}

// Counts returns the held flows and their observed counts. The map is the
// monitor's own state; callers must not mutate it.
func (sh *SampleAndHold) Counts() map[stream.Item]uint64 { return sh.counts }

// EstimateFreq returns the standard sample-and-hold frequency estimate for
// a held flow: observed count plus the expected 1/p − 1 packets missed
// before admission. Returns 0 for flows not held.
func (sh *SampleAndHold) EstimateFreq(it stream.Item) float64 {
	c, held := sh.counts[it]
	if !held {
		return 0
	}
	return float64(c) + 1/sh.p - 1
}

// Dropped reports how many admissions were refused due to the table cap.
func (sh *SampleAndHold) Dropped() uint64 { return sh.dropped }

// PrioritySample implements priority sampling over a weighted stream:
// item i with weight w_i gets priority q_i = w_i/u_i, u_i ~ U(0,1]; the k
// highest-priority items are retained. Subset sums are estimated
// unbiasedly with the threshold τ = (k+1)-th largest priority:
// each retained item contributes max(w_i, τ).
type PrioritySample struct {
	k    int
	heap psHeap // min-heap of the k+1 highest priorities
	r    *rng.Xoshiro256
}

type psEntry struct {
	item     stream.Item
	weight   float64
	priority float64
}

type psHeap []psEntry

func (h psHeap) Len() int            { return len(h) }
func (h psHeap) Less(i, j int) bool  { return h[i].priority < h[j].priority }
func (h psHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *psHeap) Push(x interface{}) { *h = append(*h, x.(psEntry)) }
func (h *psHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewPrioritySample returns a priority sampler retaining k items (it
// internally tracks k+1 to know the threshold).
func NewPrioritySample(k int, r *rng.Xoshiro256) *PrioritySample {
	if k < 1 {
		panic("sample: PrioritySample requires k >= 1")
	}
	return &PrioritySample{k: k, r: r}
}

// Observe feeds one item with a positive weight; non-positive weights are
// ignored.
func (ps *PrioritySample) Observe(it stream.Item, weight float64) {
	if weight <= 0 {
		return
	}
	pri := weight / ps.r.Float64Open()
	if ps.heap.Len() < ps.k+1 {
		heap.Push(&ps.heap, psEntry{item: it, weight: weight, priority: pri})
		return
	}
	if pri > ps.heap[0].priority {
		ps.heap[0] = psEntry{item: it, weight: weight, priority: pri}
		heap.Fix(&ps.heap, 0)
	}
}

// Weighted is one retained item with its Horvitz–Thompson adjusted weight
// max(w, τ).
type Weighted struct {
	Item   stream.Item
	Weight float64
}

// Estimates returns the k retained items with adjusted weights. Summing
// Weight over any subset gives an unbiased estimate of that subset's true
// weight. If no more than k items were observed, the exact weights are
// returned.
func (ps *PrioritySample) Estimates() []Weighted {
	if ps.heap.Len() <= ps.k {
		out := make([]Weighted, 0, ps.heap.Len())
		for _, e := range ps.heap {
			out = append(out, Weighted{Item: e.item, Weight: e.weight})
		}
		return out
	}
	tau := ps.heap[0].priority // (k+1)-th largest priority
	out := make([]Weighted, 0, ps.k)
	for i, e := range ps.heap {
		if i == 0 {
			continue // threshold entry is excluded from the sample
		}
		w := e.weight
		if tau > w {
			w = tau
		}
		out = append(out, Weighted{Item: e.item, Weight: w})
	}
	return out
}

// EstimateTotal returns the unbiased estimate of the total stream weight.
func (ps *PrioritySample) EstimateTotal() float64 {
	var total float64
	for _, w := range ps.Estimates() {
		total += w.Weight
	}
	return total
}
