package sample

import (
	"container/heap"
	"math"

	"substream/internal/rng"
	"substream/internal/stream"
)

// This file implements the reservoir-family samplers from the paper's
// related-work section: Vitter's algorithm R, a skip-based variant in the
// spirit of algorithm Z, and the weighted reservoir sampler of
// Efraimidis–Spirakis. They are not inputs to the paper's estimators —
// those require Bernoulli samples — but serve as comparison substrates in
// the experiment harness.

// Reservoir maintains a uniform random sample of k items from a stream of
// unknown length (Vitter's algorithm R).
type Reservoir struct {
	k     int
	seen  int
	items []stream.Item
	r     *rng.Xoshiro256
}

// NewReservoir returns a k-item reservoir sampler drawing randomness from
// r. It panics if k < 1.
func NewReservoir(k int, r *rng.Xoshiro256) *Reservoir {
	if k < 1 {
		panic("sample: reservoir size must be >= 1")
	}
	return &Reservoir{k: k, items: make([]stream.Item, 0, k), r: r}
}

// Observe feeds one item.
func (rs *Reservoir) Observe(it stream.Item) {
	rs.seen++
	if len(rs.items) < rs.k {
		rs.items = append(rs.items, it)
		return
	}
	if j := rs.r.Intn(rs.seen); j < rs.k {
		rs.items[j] = it
	}
}

// Sample returns the current reservoir contents (at most k items). The
// returned slice is a copy.
func (rs *Reservoir) Sample() []stream.Item {
	out := make([]stream.Item, len(rs.items))
	copy(out, rs.items)
	return out
}

// Seen returns how many items have been observed.
func (rs *Reservoir) Seen() int { return rs.seen }

// SkipReservoir is a skip-based uniform reservoir sampler: instead of one
// coin flip per element it draws the number of elements to skip until the
// next replacement, so the per-element cost after the reservoir fills is
// O(1) amortized with O(k(1+log(n/k))) random draws total. The sampling
// distribution is identical to algorithm R.
type SkipReservoir struct {
	k     int
	seen  int
	skip  int // elements to pass over before the next replacement
	items []stream.Item
	r     *rng.Xoshiro256
	w     float64 // running weight, per Vitter's algorithm L
}

// NewSkipReservoir returns a skip-based k-item reservoir sampler.
func NewSkipReservoir(k int, r *rng.Xoshiro256) *SkipReservoir {
	if k < 1 {
		panic("sample: reservoir size must be >= 1")
	}
	return &SkipReservoir{k: k, items: make([]stream.Item, 0, k), r: r, w: 1}
}

// Observe feeds one item.
func (rs *SkipReservoir) Observe(it stream.Item) {
	rs.seen++
	if len(rs.items) < rs.k {
		rs.items = append(rs.items, it)
		if len(rs.items) == rs.k {
			rs.advance()
		}
		return
	}
	if rs.skip > 0 {
		rs.skip--
		return
	}
	rs.items[rs.r.Intn(rs.k)] = it
	rs.advance()
}

// advance draws the gap to the next accepted element (algorithm L).
func (rs *SkipReservoir) advance() {
	rs.w *= math.Exp(math.Log(rs.r.Float64Open()) / float64(rs.k))
	rs.skip = int(math.Floor(math.Log(rs.r.Float64Open())/math.Log1p(-rs.w))) + 1
	if rs.skip < 0 { // overflow guard for astronomically long skips
		rs.skip = math.MaxInt32
	}
	// skip counts elements passed over; the element after them replaces.
	rs.skip--
	if rs.skip < 0 {
		rs.skip = 0
	}
}

// Sample returns a copy of the current reservoir contents.
func (rs *SkipReservoir) Sample() []stream.Item {
	out := make([]stream.Item, len(rs.items))
	copy(out, rs.items)
	return out
}

// Seen returns how many items have been observed.
func (rs *SkipReservoir) Seen() int { return rs.seen }

// WeightedReservoir is the Efraimidis–Spirakis weighted sampler: each
// item with weight w receives key u^(1/w) for u ~ U(0,1], and the k
// largest keys are kept. Inclusion probabilities are proportional to
// weights in the without-replacement sense.
type WeightedReservoir struct {
	k    int
	heap wrHeap
	r    *rng.Xoshiro256
}

type wrEntry struct {
	item stream.Item
	key  float64
}

// wrHeap is a min-heap on key, so the root is the eviction candidate.
type wrHeap []wrEntry

func (h wrHeap) Len() int            { return len(h) }
func (h wrHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h wrHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wrHeap) Push(x interface{}) { *h = append(*h, x.(wrEntry)) }
func (h *wrHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewWeightedReservoir returns a k-item weighted reservoir sampler.
func NewWeightedReservoir(k int, r *rng.Xoshiro256) *WeightedReservoir {
	if k < 1 {
		panic("sample: reservoir size must be >= 1")
	}
	return &WeightedReservoir{k: k, r: r}
}

// Observe feeds one item with the given positive weight. Non-positive
// weights are ignored (they can never be sampled).
func (ws *WeightedReservoir) Observe(it stream.Item, weight float64) {
	if weight <= 0 {
		return
	}
	key := math.Pow(ws.r.Float64Open(), 1/weight)
	if ws.heap.Len() < ws.k {
		heap.Push(&ws.heap, wrEntry{item: it, key: key})
		return
	}
	if key > ws.heap[0].key {
		ws.heap[0] = wrEntry{item: it, key: key}
		heap.Fix(&ws.heap, 0)
	}
}

// Sample returns the sampled items (at most k), in no particular order.
func (ws *WeightedReservoir) Sample() []stream.Item {
	out := make([]stream.Item, 0, ws.heap.Len())
	for _, e := range ws.heap {
		out = append(out, e.item)
	}
	return out
}
