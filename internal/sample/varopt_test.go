package sample

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

// makeWeighted draws n weighted items: zipfian keys over [1,m] with
// Pareto(1, alpha) weights — the skew profile of netflow-style streams.
func makeWeighted(n int, m int, alpha float64, seed uint64) stream.WSlice {
	r := rng.New(seed)
	z := rng.NewZipf(m, 1.1)
	out := make(stream.WSlice, n)
	for i := range out {
		out[i] = stream.WItem{
			Key:    stream.Item(z.Draw(r) + 1),
			Weight: rng.Pareto(r, 1, alpha),
		}
	}
	return out
}

// exactSubset sums the true weight of items whose key satisfies pred.
func exactSubset(s stream.WSlice, pred func(stream.Item) bool) float64 {
	var sum float64
	for _, it := range s {
		if pred(it.Key) {
			sum += it.Weight
		}
	}
	return sum
}

// sampleSet returns the retained sample as a key->adjusted-weight map.
func sampleSet(v *VarOpt) map[stream.Item]float64 {
	out := make(map[stream.Item]float64, v.SampleSize())
	for _, it := range v.Sample() {
		out[it.Key] += it.Weight
	}
	return out
}

// TestVarOptExactBelowK pins the exact regime: while at most k items have
// been observed nothing is dropped, τ stays 0, and every subset sum is
// exact.
func TestVarOptExactBelowK(t *testing.T) {
	v := NewVarOpt(64, rng.New(1))
	s := makeWeighted(64, 1000, 1.5, 2)
	v.UpdateWeightedBatch(s)
	if v.Tau() != 0 {
		t.Fatalf("tau = %v before first drop", v.Tau())
	}
	if v.SampleSize() != len(s) {
		t.Fatalf("sample size %d, want %d", v.SampleSize(), len(s))
	}
	pred := func(it stream.Item) bool { return it%3 == 0 }
	got, want := v.SubsetSum(pred), exactSubset(s, pred)
	if math.Abs(got-want) > 1e-9*want+1e-12 {
		t.Fatalf("exact-regime subset sum %v, want %v", got, want)
	}
	if math.Abs(v.TotalWeight()-s.TotalWeight()) > 1e-9*s.TotalWeight() {
		t.Fatalf("total weight %v, want %v", v.TotalWeight(), s.TotalWeight())
	}
}

// TestVarOptInvariants pins the structural invariants the decoder
// re-validates: a full sample of exactly k items once τ > 0, every large
// weight strictly above τ, and Σ adjusted weights equal to the observed
// total (the defining VarOpt property) up to float rounding.
func TestVarOptInvariants(t *testing.T) {
	v := NewVarOpt(32, rng.New(7))
	s := makeWeighted(5000, 300, 1.2, 8)
	for i, it := range s {
		v.ObserveWeighted(it.Key, it.Weight)
		if i < 100 || i%997 == 0 {
			checkInvariants(t, v)
		}
	}
	checkInvariants(t, v)
	if v.SampleSize() != 32 {
		t.Fatalf("sample size %d after overflow, want k", v.SampleSize())
	}
	var adj float64
	for _, it := range v.Sample() {
		adj += it.Weight
	}
	if math.Abs(adj-v.TotalWeight()) > 1e-6*v.TotalWeight() {
		t.Fatalf("adjusted weights sum to %v, total weight %v", adj, v.TotalWeight())
	}
}

func checkInvariants(t *testing.T, v *VarOpt) {
	t.Helper()
	if v.Tau() == 0 {
		if len(v.small) != 0 {
			t.Fatalf("small items without a threshold")
		}
	} else if v.SampleSize() != v.k {
		t.Fatalf("tau=%v with sample size %d != k=%d", v.Tau(), v.SampleSize(), v.k)
	}
	for i, e := range v.large {
		if e.Weight <= v.Tau() {
			t.Fatalf("large[%d] weight %v <= tau %v", i, e.Weight, v.Tau())
		}
		if i > 0 && v.large[(i-1)/2].Weight > e.Weight {
			t.Fatalf("heap violation at %d", i)
		}
	}
}

// TestVarOptUnbiased checks the Horvitz–Thompson estimator: over many
// independent reservoirs the mean subset-sum estimate converges to the
// exact subset weight.
func TestVarOptUnbiased(t *testing.T) {
	s := makeWeighted(4000, 500, 1.3, 11)
	pred := func(it stream.Item) bool { return it <= 50 }
	exact := exactSubset(s, pred)
	const trials = 300
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		v := NewVarOpt(48, rng.New(1000+uint64(trial)))
		v.UpdateWeightedBatch(s)
		est := v.SubsetSum(pred)
		sum += est
		sumSq += est * est
	}
	mean := sum / trials
	std := math.Sqrt(sumSq/trials - mean*mean)
	tol := 4 * std / math.Sqrt(trials)
	if math.Abs(mean-exact) > tol+1e-9*exact {
		t.Fatalf("mean estimate %v, exact %v, tolerance %v (std %v)", mean, exact, tol, std)
	}
}

// TestVarOptMergeMatchesSequential is the merged-vs-sequential battery:
// for 1..8 shards over zipf-keyed streams with Pareto weights (two tail
// indices), the merged estimator must stay unbiased and its sampling
// error must stay within a small constant of the sequential reservoir's
// — the practical form of the CDKLT merge-equivalence guarantee (the
// merged sample is a VarOpt-quality sample of the union).
func TestVarOptMergeMatchesSequential(t *testing.T) {
	for _, alpha := range []float64{1.2, 2.5} {
		s := makeWeighted(3000, 400, alpha, 21)
		pred := func(it stream.Item) bool { return it <= 40 }
		exact := exactSubset(s, pred)
		const trials = 120
		const k = 48
		seqErr := rmse(t, trials, func(trial int) float64 {
			v := NewVarOpt(k, rng.New(5000+uint64(trial)))
			v.UpdateWeightedBatch(s)
			return v.SubsetSum(pred) - exact
		})
		for shards := 1; shards <= 8; shards++ {
			shards := shards
			var sum float64
			mergedErr := rmse(t, trials, func(trial int) float64 {
				base := rng.New(9000 + uint64(trial))
				parts := make([]*VarOpt, shards)
				for i := range parts {
					parts[i] = NewVarOpt(k, base.Split())
				}
				for i, it := range s {
					parts[i%shards].ObserveWeighted(it.Key, it.Weight)
				}
				acc := parts[0]
				for _, p := range parts[1:] {
					if err := acc.Merge(p); err != nil {
						t.Fatal(err)
					}
				}
				if acc.N() != uint64(len(s)) {
					t.Fatalf("merged n = %d, want %d", acc.N(), len(s))
				}
				est := acc.SubsetSum(pred)
				sum += est
				return est - exact
			})
			mean := sum / trials
			biasTol := 4*mergedErr/math.Sqrt(trials) + 1e-9*exact
			if math.Abs(mean-exact) > biasTol {
				t.Fatalf("alpha=%v shards=%d: merged mean %v, exact %v (tol %v)",
					alpha, shards, mean, exact, biasTol)
			}
			// Merging s shard samples discards information relative to one
			// sequential pass, but the error must stay the same order; 2.5x
			// in RMSE (6x in variance) is far above what CDKLT merging
			// costs and far below what a broken merge produces.
			if mergedErr > 2.5*seqErr+1e-9*exact {
				t.Fatalf("alpha=%v shards=%d: merged rmse %v vs sequential %v",
					alpha, shards, mergedErr, seqErr)
			}
		}
	}
}

func rmse(t *testing.T, trials int, f func(trial int) float64) float64 {
	t.Helper()
	var sumSq float64
	for i := 0; i < trials; i++ {
		d := f(i)
		sumSq += d * d
	}
	return math.Sqrt(sumSq / float64(trials))
}

// TestVarOptMergeExactBelowK checks that merging reservoirs whose union
// fits in k slots is lossless.
func TestVarOptMergeExactBelowK(t *testing.T) {
	a := NewVarOpt(64, rng.New(1))
	b := NewVarOpt(64, rng.New(2))
	sa := makeWeighted(20, 100, 1.5, 3)
	sb := makeWeighted(30, 100, 1.5, 4)
	a.UpdateWeightedBatch(sa)
	b.UpdateWeightedBatch(sb)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Tau() != 0 || a.SampleSize() != 50 {
		t.Fatalf("lossless merge dropped items: tau=%v size=%d", a.Tau(), a.SampleSize())
	}
	pred := func(stream.Item) bool { return true }
	want := sa.TotalWeight() + sb.TotalWeight()
	if got := a.SubsetSum(pred); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("merged subset sum %v, want %v", got, want)
	}
}

// TestVarOptMergeRejectsMismatchedK pins the merge-compatibility check.
func TestVarOptMergeRejectsMismatchedK(t *testing.T) {
	a := NewVarOpt(8, rng.New(1))
	b := NewVarOpt(16, rng.New(1))
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across capacities succeeded")
	}
}

// TestVarOptObserveIsWeightOne pins the degenerate projection: Observe
// must be ObserveWeighted at weight 1, bit for bit.
func TestVarOptObserveIsWeightOne(t *testing.T) {
	a := NewVarOpt(16, rng.New(3))
	b := NewVarOpt(16, rng.New(3))
	s := makeStream(500, 100, 4)
	for _, it := range s {
		a.Observe(it)
		b.ObserveWeighted(it, 1)
	}
	ab, _ := a.MarshalBinary()
	bb, _ := b.MarshalBinary()
	if !bytes.Equal(ab, bb) {
		t.Fatal("Observe and ObserveWeighted(·, 1) diverge")
	}
}

// TestVarOptIgnoresBadWeights pins that non-positive and non-finite
// weights carry no mass.
func TestVarOptIgnoresBadWeights(t *testing.T) {
	v := NewVarOpt(8, rng.New(1))
	for _, w := range []float64{0, -1, math.Inf(1), math.Inf(-1), math.NaN()} {
		v.ObserveWeighted(7, w)
	}
	if v.N() != 0 || v.TotalWeight() != 0 || v.SampleSize() != 0 {
		t.Fatalf("bad weights observed: n=%d total=%v size=%d", v.N(), v.TotalWeight(), v.SampleSize())
	}
}

// TestVarOptMarshalRoundTrip checks that decode reconstructs the exact
// state: re-marshal is byte-identical, and the decoded reservoir stays in
// lockstep with the original through further weighted observations (the
// serialized generator state continues the same coin stream).
func TestVarOptMarshalRoundTrip(t *testing.T) {
	v := NewVarOpt(24, rng.New(9))
	s := makeWeighted(2000, 200, 1.4, 10)
	v.UpdateWeightedBatch(s)
	data, err := v.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalVarOpt(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("re-marshal is not byte-identical")
	}
	more := makeWeighted(500, 200, 1.4, 12)
	v.UpdateWeightedBatch(more)
	got.UpdateWeightedBatch(more)
	va, _ := v.MarshalBinary()
	ga, _ := got.MarshalBinary()
	if !bytes.Equal(va, ga) {
		t.Fatal("decoded reservoir diverges from its source")
	}
}

// TestVarOptDecodeTruncation checks that every strict prefix of a valid
// payload is rejected.
func TestVarOptDecodeTruncation(t *testing.T) {
	v := NewVarOpt(8, rng.New(5))
	v.UpdateWeightedBatch(makeWeighted(100, 50, 1.5, 6))
	data, _ := v.MarshalBinary()
	for n := 0; n < len(data); n++ {
		if _, err := UnmarshalVarOpt(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if _, err := UnmarshalVarOpt(append(append([]byte{}, data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestVarOptDecodeRejectsCorrupt is the invalid-payload table: each case
// mutates one field of a valid payload into a state MarshalBinary can
// never produce.
func TestVarOptDecodeRejectsCorrupt(t *testing.T) {
	mk := func(mutate func(v *VarOpt)) []byte {
		v := NewVarOpt(8, rng.New(5))
		v.UpdateWeightedBatch(makeWeighted(100, 50, 1.5, 6))
		// Two far-above-threshold items guarantee the payload carries both
		// large and small entries, so every table row has a field to hit.
		v.ObserveWeighted(901, v.Tau()*100)
		v.ObserveWeighted(902, v.Tau()*50)
		if len(v.large) == 0 || len(v.small) == 0 {
			t.Fatal("corpus reservoir lost a section")
		}
		if mutate != nil {
			mutate(v)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if _, err := UnmarshalVarOpt(mk(nil)); err != nil {
		t.Fatalf("baseline payload rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(v *VarOpt)
	}{
		{"zero k", func(v *VarOpt) { v.k = 0 }},
		{"huge k", func(v *VarOpt) { v.k = maxVarOptK + 1 }},
		{"negative total", func(v *VarOpt) { v.totalW = -1 }},
		{"nan total", func(v *VarOpt) { v.totalW = math.NaN() }},
		{"inf tau", func(v *VarOpt) { v.tau = math.Inf(1) }},
		{"negative tau", func(v *VarOpt) { v.tau = -0.5 }},
		{"zero rng state", func(v *VarOpt) { v.r = &rng.Xoshiro256{} }},
		{"zero large key", func(v *VarOpt) { v.large[0].Key = 0 }},
		{"large weight below tau", func(v *VarOpt) { v.large[0].Weight = v.tau / 2 }},
		{"nan large weight", func(v *VarOpt) { v.large[0].Weight = math.NaN() }},
		{"heap violation", func(v *VarOpt) {
			sort.Slice(v.large, func(i, j int) bool { return v.large[i].Weight > v.large[j].Weight })
		}},
		{"zero small key", func(v *VarOpt) { v.small[0] = 0 }},
		{"n below sample", func(v *VarOpt) { v.n = 3 }},
		{"tau without full sample", func(v *VarOpt) { v.small = v.small[:len(v.small)-1] }},
		{"small items without tau", func(v *VarOpt) { v.tau = 0 }},
	}
	for _, tc := range cases {
		if _, err := UnmarshalVarOpt(mk(tc.mutate)); err == nil {
			t.Errorf("%s: corrupt payload decoded", tc.name)
		}
	}
}

// FuzzVarOptDecode drives arbitrary bytes through the decoder: it must
// never panic, and anything it accepts must re-marshal byte-identically
// and keep accepting observations.
func FuzzVarOptDecode(f *testing.F) {
	v := NewVarOpt(8, rng.New(5))
	v.UpdateWeightedBatch(makeWeighted(100, 50, 1.5, 6))
	full, _ := v.MarshalBinary()
	f.Add(full)
	small := NewVarOpt(4, rng.New(1))
	small.ObserveWeighted(3, 2.5)
	partial, _ := small.MarshalBinary()
	f.Add(partial)
	f.Add([]byte{TagVarOpt, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalVarOpt(data)
		if err != nil {
			return
		}
		out, err := got.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted payload failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("accepted payload does not round-trip byte-identically")
		}
		got.ObserveWeighted(1, 1)
		got.SubsetSum(func(stream.Item) bool { return true })
	})
}
