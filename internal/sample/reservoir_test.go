package sample

import (
	"math"
	"testing"

	"substream/internal/rng"
	"substream/internal/stream"
)

func TestReservoirFill(t *testing.T) {
	rs := NewReservoir(10, rng.New(1))
	for i := 1; i <= 5; i++ {
		rs.Observe(stream.Item(i))
	}
	got := rs.Sample()
	if len(got) != 5 {
		t.Fatalf("reservoir holds %d, want 5", len(got))
	}
	if rs.Seen() != 5 {
		t.Fatalf("Seen = %d", rs.Seen())
	}
}

func TestReservoirSize(t *testing.T) {
	rs := NewReservoir(10, rng.New(2))
	for i := 1; i <= 1000; i++ {
		rs.Observe(stream.Item(i))
	}
	if got := rs.Sample(); len(got) != 10 {
		t.Fatalf("reservoir holds %d, want 10", len(got))
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of n items must appear in the k-reservoir with probability k/n.
	const n, k, trials = 20, 5, 40000
	counts := make([]int, n+1)
	r := rng.New(3)
	for tr := 0; tr < trials; tr++ {
		rs := NewReservoir(k, r.Split())
		for i := 1; i <= n; i++ {
			rs.Observe(stream.Item(i))
		}
		for _, it := range rs.Sample() {
			counts[it]++
		}
	}
	want := float64(trials) * k / n
	tol := 6 * math.Sqrt(want)
	for i := 1; i <= n; i++ {
		if math.Abs(float64(counts[i])-want) > tol {
			t.Fatalf("item %d sampled %d times, want %v ± %v", i, counts[i], want, tol)
		}
	}
}

func TestReservoirPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReservoir(0) did not panic")
		}
	}()
	NewReservoir(0, rng.New(1))
}

func TestSkipReservoirUniformity(t *testing.T) {
	const n, k, trials = 30, 5, 40000
	counts := make([]int, n+1)
	r := rng.New(4)
	for tr := 0; tr < trials; tr++ {
		rs := NewSkipReservoir(k, r.Split())
		for i := 1; i <= n; i++ {
			rs.Observe(stream.Item(i))
		}
		sample := rs.Sample()
		if len(sample) != k {
			t.Fatalf("skip reservoir holds %d, want %d", len(sample), k)
		}
		for _, it := range sample {
			counts[it]++
		}
	}
	want := float64(trials) * k / n
	tol := 7 * math.Sqrt(want)
	for i := 1; i <= n; i++ {
		if math.Abs(float64(counts[i])-want) > tol {
			t.Fatalf("item %d sampled %d times, want %v ± %v", i, counts[i], want, tol)
		}
	}
}

func TestSkipReservoirShortStream(t *testing.T) {
	rs := NewSkipReservoir(10, rng.New(5))
	rs.Observe(1)
	rs.Observe(2)
	if got := rs.Sample(); len(got) != 2 {
		t.Fatalf("short stream sample size %d", len(got))
	}
}

func TestWeightedReservoirBias(t *testing.T) {
	// Item 1 has weight 9, items 2..10 weight 1 each; a 1-item sample
	// should pick item 1 with probability 9/18 = 1/2.
	const trials = 30000
	r := rng.New(6)
	hit := 0
	for tr := 0; tr < trials; tr++ {
		ws := NewWeightedReservoir(1, r.Split())
		ws.Observe(1, 9)
		for i := 2; i <= 10; i++ {
			ws.Observe(stream.Item(i), 1)
		}
		s := ws.Sample()
		if len(s) != 1 {
			t.Fatalf("sample size %d", len(s))
		}
		if s[0] == 1 {
			hit++
		}
	}
	got := float64(hit) / trials
	if math.Abs(got-0.5) > 0.02 {
		t.Fatalf("heavy item sampled at rate %v, want 0.5", got)
	}
}

func TestWeightedReservoirIgnoresNonPositive(t *testing.T) {
	ws := NewWeightedReservoir(5, rng.New(7))
	ws.Observe(1, 0)
	ws.Observe(2, -3)
	if got := ws.Sample(); len(got) != 0 {
		t.Fatalf("non-positive weights sampled: %v", got)
	}
}

func TestOneInN(t *testing.T) {
	s := make(stream.Slice, 10)
	for i := range s {
		s[i] = stream.Item(i + 1)
	}
	got := NewOneInN(3).Apply(s)
	want := stream.Slice{3, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("OneInN = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OneInN = %v, want %v", got, want)
		}
	}
	// N=1 keeps everything.
	if all := NewOneInN(1).Apply(s); len(all) != len(s) {
		t.Fatalf("OneInN(1) kept %d of %d", len(all), len(s))
	}
}

func TestOneInNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewOneInN(0) did not panic")
		}
	}()
	NewOneInN(0)
}

func TestSampleAndHoldCountsExactAfterAdmission(t *testing.T) {
	// With p=1 the first packet admits the flow, so counts are exact.
	sh := NewSampleAndHold(1, 0, rng.New(8))
	s := stream.Slice{1, 1, 2, 1, 2, 3}
	for _, it := range s {
		sh.Observe(it)
	}
	c := sh.Counts()
	if c[1] != 3 || c[2] != 2 || c[3] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if got := sh.EstimateFreq(1); got != 3 {
		t.Fatalf("EstimateFreq(1) with p=1 = %v, want 3", got)
	}
	if got := sh.EstimateFreq(99); got != 0 {
		t.Fatalf("EstimateFreq(absent) = %v, want 0", got)
	}
}

func TestSampleAndHoldEstimateUnbiasedForLargeFlows(t *testing.T) {
	// A flow of size 1000 under p=0.05: E[estimate] ≈ 1000 once admitted.
	const f, p, trials = 1000, 0.05, 3000
	var sum float64
	admitted := 0
	r := rng.New(9)
	for tr := 0; tr < trials; tr++ {
		sh := NewSampleAndHold(p, 0, r.Split())
		for i := 0; i < f; i++ {
			sh.Observe(42)
		}
		if est := sh.EstimateFreq(42); est > 0 {
			sum += est
			admitted++
		}
	}
	if admitted == 0 {
		t.Fatal("flow never admitted")
	}
	mean := sum / float64(admitted)
	if math.Abs(mean-f)/f > 0.03 {
		t.Fatalf("sample-and-hold estimate mean %v, want ≈ %v", mean, f)
	}
}

func TestSampleAndHoldCap(t *testing.T) {
	sh := NewSampleAndHold(1, 2, rng.New(10))
	for i := 1; i <= 5; i++ {
		sh.Observe(stream.Item(i))
	}
	if len(sh.Counts()) != 2 {
		t.Fatalf("table size %d, want 2", len(sh.Counts()))
	}
	if sh.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3", sh.Dropped())
	}
}

func TestSampleAndHoldPanics(t *testing.T) {
	for _, p := range []float64{0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewSampleAndHold(%v) did not panic", p)
				}
			}()
			NewSampleAndHold(p, 0, rng.New(1))
		}()
	}
}

func TestPrioritySampleExactWhenSmall(t *testing.T) {
	ps := NewPrioritySample(10, rng.New(11))
	ps.Observe(1, 5)
	ps.Observe(2, 7)
	est := ps.Estimates()
	if len(est) != 2 {
		t.Fatalf("estimates: %v", est)
	}
	total := ps.EstimateTotal()
	if total != 12 {
		t.Fatalf("total = %v, want 12 (exact)", total)
	}
}

func TestPrioritySampleUnbiasedTotal(t *testing.T) {
	// 100 items with weights 1..100; k=20. E[estimate] = 5050.
	const trials = 4000
	var sum float64
	r := rng.New(12)
	for tr := 0; tr < trials; tr++ {
		ps := NewPrioritySample(20, r.Split())
		for i := 1; i <= 100; i++ {
			ps.Observe(stream.Item(i), float64(i))
		}
		sum += ps.EstimateTotal()
	}
	mean := sum / trials
	if math.Abs(mean-5050)/5050 > 0.03 {
		t.Fatalf("priority sampling total mean %v, want 5050", mean)
	}
}

func TestPrioritySampleSubsetSum(t *testing.T) {
	// Estimate the weight of the even items: true 2+4+…+100 = 2550.
	const trials = 4000
	var sum float64
	r := rng.New(13)
	for tr := 0; tr < trials; tr++ {
		ps := NewPrioritySample(25, r.Split())
		for i := 1; i <= 100; i++ {
			ps.Observe(stream.Item(i), float64(i))
		}
		for _, w := range ps.Estimates() {
			if w.Item%2 == 0 {
				sum += w.Weight
			}
		}
	}
	mean := sum / trials
	if math.Abs(mean-2550)/2550 > 0.05 {
		t.Fatalf("subset-sum estimate mean %v, want 2550", mean)
	}
}

func TestPrioritySampleIgnoresNonPositive(t *testing.T) {
	ps := NewPrioritySample(3, rng.New(14))
	ps.Observe(1, 0)
	ps.Observe(2, -1)
	if got := ps.Estimates(); len(got) != 0 {
		t.Fatalf("non-positive weights retained: %v", got)
	}
}
