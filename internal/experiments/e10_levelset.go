package experiments

import (
	"substream/internal/levelset"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// e10LevelSetAblation validates the Theorem 2 machinery: the level-set
// collision estimator C̃_ℓ(L) against the exact C_ℓ(L), across collision
// orders and space budgets, plus the two design choices DESIGN.md calls
// out — banded (paper-faithful) vs direct (Horvitz–Thompson) estimation,
// and the no-gross-overestimate property on collision-free streams.
func e10LevelSetAblation() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "level-set collision estimator C̃_ℓ(L) vs exact (Theorem 2 machinery)",
		Claim: "Thm 2: (1±eps') contributing level sets, never gross overestimates",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(300000)
			trials := cfg.trials(7)
			wl := workload.Zipf(n, 32768, 1.2, r.Uint64())
			const p = 0.2

			// Materialize one sampled stream so every backend sees the
			// same L per trial.
			t1 := stats.NewTable("E10a: C̃_ℓ(L) accuracy vs budget — "+wl.Name+", p=0.2",
				"l", "budget", "banded relerr", "direct relerr", "IW relerr", "space KB", "IW space KB")
			for _, l := range []int{2, 3, 4} {
				for _, budget := range []int{512, 2048, 8192} {
					var banded, direct, iw stats.Summary
					var space, iwSpace int
					for tr := 0; tr < trials; tr++ {
						b := sample.NewBernoulli(p)
						L := b.Apply(wl.Stream, r.Split())
						exactC := stream.NewFreq(L).Collisions(l)
						if exactC == 0 {
							continue
						}
						est := levelset.New(levelset.Config{
							EpsPrime: 0.05, Budget: budget, Reps: 5,
						}, r.Split())
						iwEst := levelset.NewIW(levelset.IWConfig{
							EpsPrime: 0.05, Width: budget, Depth: 5,
						}, r.Split())
						for _, it := range L {
							est.Observe(it)
							iwEst.Observe(it)
						}
						banded.Add(stats.RelErr(est.EstimateCollisions(l), exactC))
						direct.Add(stats.RelErr(est.DirectEstimateCollisions(l), exactC))
						iw.Add(stats.RelErr(iwEst.EstimateCollisions(l), exactC))
						space = est.SpaceBytes()
						iwSpace = iwEst.SpaceBytes()
					}
					t1.AddRow(l, budget, banded.Mean(), direct.Mean(), iw.Mean(),
						float64(space)/1024, float64(iwSpace)/1024)
				}
			}
			t1.AddNote("banded = paper's Σ s̃ᵢ·C(η(1+ε')^i, ℓ); direct = Horvitz–Thompson ablation;")
			t1.AddNote("IW = literal per-level CountSketch construction (approximate recovery)")

			// No-gross-overestimate on a collision-free stream.
			t2 := stats.NewTable("E10b: collision-free stream (C₂ = 0)",
				"budget", "max C̃₂ over seeds", "no gross overestimate")
			distinct := workload.AllDistinct(cfg.scaledN(100000))
			for _, budget := range []int{256, 1024} {
				worst := 0.0
				for seed := uint64(1); seed <= uint64(trials); seed++ {
					est := levelset.New(levelset.Config{EpsPrime: 0.1, Budget: budget, Reps: 5}, rng.New(seed))
					b := sample.NewBernoulli(p)
					_ = b.Pipe(distinct.Stream, rng.New(seed+1000), func(it stream.Item) error {
						est.Observe(it)
						return nil
					})
					if v := est.EstimateCollisions(2); v > worst {
						worst = v
					}
				}
				t2.AddRow(budget, worst, verdict(worst == 0))
			}
			return []*stats.Table{t1, t2}
		},
	}
}
