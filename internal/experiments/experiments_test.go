package experiments

import (
	"strings"
	"testing"
)

// smallCfg runs every experiment at reduced scale so the whole registry
// stays test-suite fast while still exercising the full code path.
var smallCfg = Config{Scale: 0.05, Trials: 3, Seed: 77}

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(exps))
	}
	for i, e := range exps {
		wantID := "E" + itoa(i+1)
		if e.ID != wantID {
			t.Fatalf("experiment %d has ID %s, want %s", i, e.ID, wantID)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete: %+v", e.ID, e)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestByID(t *testing.T) {
	e, ok := ByID("E3")
	if !ok || e.ID != "E3" {
		t.Fatalf("ByID(E3) = %+v, %v", e, ok)
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) found something")
	}
}

// runOne runs a single experiment at small scale and returns the
// concatenated rendered tables.
func runOne(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables := e.Run(smallCfg)
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	var sb strings.Builder
	for _, tb := range tables {
		out := tb.RenderString()
		if !strings.Contains(out, id) {
			t.Fatalf("%s table title missing id:\n%s", id, out)
		}
		sb.WriteString(out)
	}
	return sb.String()
}

func TestE1SmallScale(t *testing.T) {
	out := runOne(t, "E1")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E1 claim violated at small scale:\n%s", out)
	}
}

func TestE2SmallScale(t *testing.T) {
	out := runOne(t, "E2")
	if !strings.Contains(out, "mult err") {
		t.Fatalf("E2 output malformed:\n%s", out)
	}
}

func TestE3SmallScale(t *testing.T) {
	out := runOne(t, "E3")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E3 claim violated:\n%s", out)
	}
}

func TestE4SmallScale(t *testing.T) {
	out := runOne(t, "E4")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E4 claim violated:\n%s", out)
	}
}

func TestE5SmallScale(t *testing.T) {
	out := runOne(t, "E5")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E5 claim violated:\n%s", out)
	}
}

func TestE6SmallScale(t *testing.T) {
	out := runOne(t, "E6")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E6 claim violated:\n%s", out)
	}
}

func TestE7SmallScale(t *testing.T) {
	out := runOne(t, "E7")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E7 claim violated:\n%s", out)
	}
}

func TestE8SmallScale(t *testing.T) {
	out := runOne(t, "E8")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E8 claim violated:\n%s", out)
	}
}

func TestE9SmallScale(t *testing.T) {
	out := runOne(t, "E9")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E9 claim violated:\n%s", out)
	}
}

func TestE10SmallScale(t *testing.T) {
	out := runOne(t, "E10")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E10 claim violated:\n%s", out)
	}
}

func TestE11SmallScale(t *testing.T) {
	out := runOne(t, "E11")
	if !strings.Contains(out, "sample&hold") {
		t.Fatalf("E11 output malformed:\n%s", out)
	}
}

func TestE12SmallScale(t *testing.T) {
	out := runOne(t, "E12")
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("E12 claim violated:\n%s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != 1 {
		t.Fatalf("default scale %v", c.scale())
	}
	if c.scaledN(100) != 2000 {
		t.Fatalf("floor not applied: %d", c.scaledN(100))
	}
	if c.trials(5) != 5 {
		t.Fatalf("default trials %d", c.trials(5))
	}
	c2 := Config{Scale: 0.5, Trials: 2}
	if c2.scaledN(100000) != 50000 {
		t.Fatalf("scaledN = %d", c2.scaledN(100000))
	}
	if c2.trials(5) != 2 {
		t.Fatalf("trials = %d", c2.trials(5))
	}
}

func TestExperimentsDeterministicBySeed(t *testing.T) {
	e, _ := ByID("E2")
	a := e.Run(Config{Scale: 0.02, Trials: 2, Seed: 5})
	b := e.Run(Config{Scale: 0.02, Trials: 2, Seed: 5})
	// Timing columns differ run to run; compare the stable columns via
	// the mult err column presence and row counts only.
	if len(a) != len(b) {
		t.Fatal("table count differs across identical runs")
	}
}
