package experiments

import (
	"math"

	"substream/internal/core"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// e5EntropyImpossibility validates Lemma 9: no multiplicative entropy
// approximation is possible from L in general. Scenario 1 makes the
// sampled entropy collapse to ≈ 0 while H(f) > 0; Scenario 2 exhibits a
// persistent additive gap ≈ |lg(2p)|.
func e5EntropyImpossibility() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "entropy impossibility instances (Lemma 9)",
		Claim: "Lemma 9: no multiplicative approximation; scenarios 1 and 2",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(100000)
			trials := cfg.trials(30)

			t1 := stats.NewTable("E5a: scenario 1 (f₁ = n−k, k = 1/(10p) singletons)",
				"p", "H(f)", "mean Ĥ", "collapse rate", "predicted ≥", "reproduced")
			for _, p := range []float64{0.05, 0.02, 0.01} {
				wl := workload.EntropyScenario1(n, p)
				exact := stream.NewFreq(wl.Stream).Entropy()
				collapsed := 0
				var est stats.Summary
				for tr := 0; tr < trials; tr++ {
					e := core.NewEntropyEstimator(core.EntropyConfig{P: p}, r.Split())
					runSampled(wl.Stream, p, r.Split(), e)
					v := e.Estimate()
					est.Add(v)
					if v < exact/100 {
						collapsed++
					}
				}
				k := float64(int(1/(10*p)) + 1)
				predicted := math.Pow(1-p, k) // Pr[no singleton sampled]
				rate := float64(collapsed) / float64(trials)
				t1.AddRow(p, exact, est.Mean(), rate, predicted*0.5,
					verdict(rate >= predicted*0.5))
			}
			t1.AddNote("collapse = estimate below H(f)/100; Lemma 9 predicts rate ≈ (1−p)^k ≈ 0.9")

			t2 := stats.NewTable("E5b: scenario 2 (all m items once): additive gap",
				"p", "H(f) = lg m", "mean Ĥ ≈ lg(pm)", "gap", "|lg 2p|", "gap ≥ |lg 2p|−1")
			m := cfg.scaledN(1 << 16)
			wl2 := workload.EntropyScenario2(m)
			exact2 := stream.NewFreq(wl2.Stream).Entropy()
			for _, p := range []float64{0.25, 0.1, 0.05} {
				var est stats.Summary
				for tr := 0; tr < trials/3+1; tr++ {
					e := core.NewEntropyEstimator(core.EntropyConfig{P: p}, r.Split())
					runSampled(wl2.Stream, p, r.Split(), e)
					est.Add(e.Estimate())
				}
				gap := exact2 - est.Mean()
				want := math.Abs(math.Log2(2 * p))
				t2.AddRow(p, exact2, est.Mean(), gap, want, verdict(gap >= want-1))
			}
			return []*stats.Table{t1, t2}
		},
	}
}

// e6EntropyRatio validates Proposition 1 + Lemma 10 + Theorem 5: when
// H(f) is well above the additive floor p^(−1/2)·n^(−1/6), the sampled
// entropy (and H_pn) is a constant-factor — in practice near-exact —
// approximation of H(f).
func e6EntropyRatio() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "entropy constant-factor approximation (Theorem 5)",
		Claim: "Thm 5 / Lemma 10: constant-factor when H(f) = omega(p^-1/2 n^-1/6)",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(300000)
			m := 8192
			trials := cfg.trials(7)
			var tables []*stats.Table
			for _, s := range []float64{0.8, 1.0, 1.2, 1.5} {
				wl := workload.Zipf(n, m, s, r.Uint64())
				exact := stream.NewFreq(wl.Stream).Entropy()
				t := stats.NewTable("E6: "+wl.Name,
					"p", "floor", "H(f)", "mean Ĥ/H", "mean Hpn/H", "sketch Ĥ/H", "in [1/2,2]")
				for _, p := range []float64{0.5, 0.1, 0.02} {
					var plugin, hpn, sk stats.Summary
					for tr := 0; tr < trials; tr++ {
						pe := core.NewEntropyEstimator(core.EntropyConfig{P: p}, r.Split())
						se := core.NewEntropyEstimator(core.EntropyConfig{P: p, Backend: core.EntropySketch}, r.Split())
						runSampled(wl.Stream, p, r.Split(), pe, se)
						plugin.Add(pe.Estimate() / exact)
						hpn.Add(pe.EstimateHpn(uint64(n)) / exact)
						sk.Add(se.Estimate() / exact)
					}
					floor := math.Pow(p, -0.5) * math.Pow(float64(n), -1.0/6)
					ok := plugin.Mean() >= 0.5 && plugin.Mean() <= 2 &&
						hpn.Mean() >= 0.5 && hpn.Mean() <= 2
					t.AddRow(p, floor, exact, plugin.Mean(), hpn.Mean(), sk.Mean(), verdict(ok))
				}
				tables = append(tables, t)
			}
			return tables
		},
	}
}
