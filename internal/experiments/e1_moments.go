package experiments

import (
	"substream/internal/core"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// e1MomentAccuracy validates Theorem 1: Algorithm 1 observing L is a
// (1+ε, δ)-estimator of F_k(P), with error shrinking as p grows, down to
// the information floor p = Ω̃(min(m,n)^(−1/k)).
func e1MomentAccuracy() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "F_k accuracy vs sampling probability (Algorithm 1)",
		Claim: "Theorem 1: (1+eps,delta)-estimation of F_k from L for k>=2",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(400000)
			m := 4096
			trials := cfg.trials(9)

			var tables []*stats.Table
			for _, wl := range []workload.Workload{
				workload.Zipf(n, m, 1.1, r.Uint64()),
				workload.Uniform(n, m, r.Uint64()),
			} {
				f := stream.NewFreq(wl.Stream)
				t := stats.NewTable("E1: "+wl.Name, "k", "p", "p_min(Thm1)", "mean relerr", "p95 relerr", "mult err", "within 1.25x")
				for _, k := range []int{2, 3, 4} {
					pMin := core.MinSamplingP(wl.Universe, uint64(n), k)
					exact := f.Fk(k)
					for _, p := range []float64{1, 0.5, 0.2, 0.1, 0.05} {
						var rel, mult stats.Summary
						for tr := 0; tr < trials; tr++ {
							e := core.NewFkEstimator(core.FkConfig{K: k, P: p, Exact: true}, r.Split())
							runSampled(wl.Stream, p, r.Split(), e)
							est := e.Estimate()
							rel.Add(stats.RelErr(est, exact))
							mult.Add(stats.MultErr(est, exact))
						}
						t.AddRow(k, p, pMin, rel.Mean(), rel.Quantile(0.95), mult.Mean(),
							verdict(mult.Quantile(0.95) <= 1.25 || p < 4*pMin))
					}
				}
				t.AddNote("exact-collision backend isolates sampling error; trials=%d", trials)
				tables = append(tables, t)
			}
			return tables
		},
	}
}
