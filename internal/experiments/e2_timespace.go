package experiments

import (
	"math"
	"time"

	"substream/internal/core"
	"substream/internal/sample"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// e2TimeSpace validates the §1.2 time–space tradeoff: for F₂ with
// n = Θ(m), setting p = Θ̃(1/√n) gives an estimator whose total work and
// workspace are both Õ(√n) — sublinear in the stream — while still
// achieving a constant-factor estimate.
func e2TimeSpace() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "time/space tradeoff at p = Θ(1/√n) for F₂",
		Claim: "Sec 1.2: O~(sqrt(n)) total processing time and workspace for F2",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			t := stats.NewTable("E2: F₂ with p = 4/√n on zipf(1.0), n = m",
				"n", "p", "|L|", "sample+process ms", "space KB", "space/√n", "mult err")
			for _, logN := range []int{14, 16, 18} {
				n := cfg.scaledN(1 << logN)
				wl := workload.Zipf(n, n, 1.0, r.Uint64())
				exact := stream.NewFreq(wl.Stream).Fk(2)
				p := 4 / math.Sqrt(float64(n))
				if p > 1 {
					p = 1
				}
				e := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Exact: true}, r.Split())
				b := sample.NewBernoulli(p)
				start := time.Now()
				nL := 0
				_ = b.Pipe(wl.Stream, r.Split(), func(it stream.Item) error {
					nL++
					e.Observe(it)
					return nil
				})
				elapsed := time.Since(start)
				est := e.Estimate()
				space := e.SpaceBytes()
				t.AddRow(n, p, nL,
					float64(elapsed.Microseconds())/1000,
					float64(space)/1024,
					float64(space)/math.Sqrt(float64(n)),
					stats.MultErr(est, exact))
			}
			t.AddNote("space/√n should stay roughly flat as n grows (Õ(√n) workspace)")
			return []*stats.Table{t}
		},
	}
}
