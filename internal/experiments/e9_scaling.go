package experiments

import (
	"strconv"

	"substream/internal/core"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// e9F2VsScaling validates the §1.3 comparison with Rusu–Dobra: the
// collision-based estimator needs Õ(1/p) space while sketch-and-rescale
// needs Õ(1/p²), because rescaling divides the sketch's error by p². The
// measurable shape: at equal space, the scaling method's error degrades
// faster than the collision method's as p shrinks.
func e9F2VsScaling() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "F₂: collision method vs Rusu–Dobra scaling",
		Claim: "Sec 1.3: collision method needs O~(1/p) space vs O~(1/p^2)",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(300000)
			m := n / 18 // keep collision density constant across scales
			if m < 256 {
				m = 256
			}
			trials := cfg.trials(9)
			wl := workload.Zipf(n, m, 1.1, r.Uint64())
			exact := stream.NewFreq(wl.Stream).Fk(2)

			// Equal-space comparison: give both estimators ≈ the same
			// number of bytes and sweep p. Per-row cells are
			// informational; the claim is the degradation trend.
			ps := []float64{0.5, 0.2, 0.1, 0.05, 0.02}
			collErr := make([]float64, len(ps))
			scalErr := make([]float64, len(ps))
			t1 := stats.NewTable("E9a: equal space (~64KB), error vs p — "+wl.Name,
				"p", "collision relerr", "scaling relerr")
			for pi, p := range ps {
				var coll, scal stats.Summary
				for tr := 0; tr < trials; tr++ {
					// ~64KB each: levelset budget 512 (≈ 512·(48+5·32)B)
					// vs CountSketch 1638 columns × 5 rows × 8B.
					ce := core.NewFkEstimator(core.FkConfig{
						K: 2, P: p, Epsilon: 0.2, Budget: 512,
					}, r.Split())
					se := core.NewScaledF2Estimator(core.ScaledF2Config{
						P: p, Width: 1638, Depth: 5,
					}, r.Split())
					runSampled(wl.Stream, p, r.Split(), ce, se)
					coll.Add(stats.RelErr(ce.Estimate(), exact))
					scal.Add(stats.RelErr(se.Estimate(), exact))
				}
				collErr[pi] = coll.Median()
				scalErr[pi] = scal.Median()
				t1.AddRow(p, collErr[pi], scalErr[pi])
			}
			// Trend verdict: scaling error grows faster from the largest
			// to the smallest p than collision error does (with slack for
			// trial noise).
			collRatio := degradation(collErr)
			scalRatio := degradation(scalErr)
			t1.AddNote("degradation p=%.2g→%.2g: collision ×%.2f, scaling ×%.2f — shape %s",
				ps[0], ps[len(ps)-1], collRatio, scalRatio,
				verdict(scalRatio >= 0.7*collRatio))
			t1.AddNote("claim: scaling error amplified by 1/p² rescaling; collision error grows only ~1/p")

			// Space-to-reach-accuracy at a fixed small p (informational):
			// the scaling method needs a much wider sketch to match.
			t2 := stats.NewTable("E9b: space vs error at p=0.05 — "+wl.Name,
				"method", "space bytes", "median relerr")
			const p = 0.05
			for _, budget := range []int{256, 1024} {
				var errs stats.Summary
				var space int
				for tr := 0; tr < trials; tr++ {
					ce := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Epsilon: 0.2, Budget: budget}, r.Split())
					runSampled(wl.Stream, p, r.Split(), ce)
					errs.Add(stats.RelErr(ce.Estimate(), exact))
					space = ce.SpaceBytes()
				}
				t2.AddRow("collision(budget="+strconv.Itoa(budget)+")", space, errs.Median())
			}
			for _, width := range []int{512, 4096, 32768} {
				var errs stats.Summary
				var space int
				for tr := 0; tr < trials; tr++ {
					se := core.NewScaledF2Estimator(core.ScaledF2Config{P: p, Width: width, Depth: 5}, r.Split())
					runSampled(wl.Stream, p, r.Split(), se)
					errs.Add(stats.RelErr(se.Estimate(), exact))
					space = se.SpaceBytes()
				}
				t2.AddRow("scaling(width="+strconv.Itoa(width)+")", space, errs.Median())
			}
			return []*stats.Table{t1, t2}
		},
	}
}

// degradation returns last/first with a floor on the denominator so a
// near-zero initial error does not blow the ratio up.
func degradation(errs []float64) float64 {
	first := errs[0]
	if first < 0.005 {
		first = 0.005
	}
	return errs[len(errs)-1] / first
}
