// Package experiments defines the reproduction harness: one registered
// experiment per quantitative claim of the paper (DESIGN.md §3 maps each
// to its theorem). Every experiment produces plain-text tables; the same
// runners back cmd/experiments and the repository-level benchmarks, so
// "the numbers in EXPERIMENTS.md" and "what the benches measure" cannot
// drift apart.
//
// The paper is a theory paper with no measured tables of its own; each
// experiment therefore states the theoretical prediction it validates and
// reports whether the measured shape matches.
package experiments

import (
	"fmt"
	"sort"

	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stats"
	"substream/internal/stream"
)

// Config controls experiment scale; the defaults reproduce the numbers in
// EXPERIMENTS.md in a few minutes on a laptop.
type Config struct {
	// Scale multiplies workload sizes; 1.0 is the full run, benches and
	// unit tests use smaller values. Values ≤ 0 mean 1.0.
	Scale float64
	// Trials is the number of independent sampling trials per cell;
	// 0 means the per-experiment default.
	Trials int
	// Seed is the master seed; all randomness derives from it.
	Seed uint64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// scaledN shrinks a full-scale workload size, keeping a floor so tiny
// scales still exercise the code meaningfully.
func (c Config) scaledN(full int) int {
	n := int(float64(full) * c.scale())
	if n < 2000 {
		n = 2000
	}
	return n
}

func (c Config) trials(def int) int {
	if c.Trials > 0 {
		return c.Trials
	}
	return def
}

func (c Config) rng() *rng.Xoshiro256 {
	seed := c.Seed
	if seed == 0 {
		seed = 0x5eed
	}
	return rng.New(seed)
}

// Experiment is one registered reproduction.
type Experiment struct {
	// ID is the experiment identifier (E1…E10).
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the theorem/lemma being validated.
	Claim string
	// Run executes the experiment and returns its tables.
	Run func(cfg Config) []*stats.Table
}

// All returns every registered experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		e1MomentAccuracy(),
		e2TimeSpace(),
		e3F0LowerBound(),
		e4F0UpperBound(),
		e5EntropyImpossibility(),
		e6EntropyRatio(),
		e7F1HeavyHitters(),
		e8F2HeavyHitters(),
		e9F2VsScaling(),
		e10LevelSetAblation(),
		e11SamplerAblation(),
		e12AdaptiveP(),
	}
	sort.Slice(exps, func(i, j int) bool { return idOrder(exps[i].ID) < idOrder(exps[j].ID) })
	return exps
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// observer is anything that consumes the sampled stream one item at a
// time — every estimator in internal/core satisfies it.
type observer interface {
	Observe(it stream.Item)
}

// runSampled Bernoulli-samples s with probability p and feeds the sampled
// stream to every observer in one pass.
func runSampled(s stream.Stream, p float64, r *rng.Xoshiro256, obs ...observer) int {
	b := sample.NewBernoulli(p)
	count := 0
	_ = b.Pipe(s, r, func(it stream.Item) error {
		count++
		for _, o := range obs {
			o.Observe(it)
		}
		return nil
	})
	return count
}

// verdict turns a pass/fail into the table cell used across experiments.
func verdict(ok bool) string {
	if ok {
		return "ok"
	}
	return "VIOLATED"
}
