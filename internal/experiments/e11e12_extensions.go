package experiments

import (
	"math"

	"substream/internal/core"
	"substream/internal/sample"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// e11SamplerAblation is an extension beyond the paper: compare Bernoulli
// sampling (the paper's model) against the related-work schemes it
// surveys in §1.3 — deterministic 1-in-N and sample-and-hold — at equal
// expected sample size, on the tasks each was designed for. The expected
// shape: sample-and-hold wins on heavy-flow frequency estimation (its
// design goal), Bernoulli and 1-in-N behave near-identically for
// aggregates on this traffic model, and Bernoulli is the only one with
// the paper's clean per-element independence guarantees.
func e11SamplerAblation() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "extension: Bernoulli vs 1-in-N vs sample-and-hold",
		Claim: "Sec 1.3 survey: scheme choice matters per task; Bernoulli is the general-purpose model",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(400000)
			trials := cfg.trials(7)
			wl, _ := workload.NetFlow(n, n/40, 1.05, 1.3, 4, r.Uint64())
			f := stream.NewFreq(wl.Stream)
			top := f.TopK(10)

			t := stats.NewTable("E11: heavy-flow frequency estimation, equal expected sample size — "+wl.Name,
				"p", "bernoulli relerr", "1-in-N relerr", "sample&hold relerr")
			for _, p := range []float64{0.1, 0.02} {
				var bErr, dErr, shErr stats.Summary
				for tr := 0; tr < trials; tr++ {
					// Bernoulli: scaled sampled counts.
					L := sample.NewBernoulli(p).Apply(wl.Stream, r.Split())
					g := stream.NewFreq(L)
					// Deterministic 1-in-N.
					D := sample.NewOneInN(int(1 / p)).Apply(wl.Stream)
					gd := stream.NewFreq(D)
					// Sample-and-hold at the same per-packet rate.
					sh := sample.NewSampleAndHold(p, 0, r.Split())
					_ = wl.Stream.ForEach(func(it stream.Item) error {
						sh.Observe(it)
						return nil
					})
					for _, hh := range top {
						truth := float64(hh.Freq)
						bErr.Add(stats.RelErr(float64(g[hh.Item])/p, truth))
						dErr.Add(stats.RelErr(float64(gd[hh.Item])/p, truth))
						shErr.Add(stats.RelErr(sh.EstimateFreq(hh.Item), truth))
					}
				}
				t.AddRow(p, bErr.Mean(), dErr.Mean(), shErr.Mean())
			}
			t.AddNote("top-10 flows; sample-and-hold counts exactly after admission, hence its edge")
			t.AddNote("informational ablation — no paper claim attached")
			return []*stats.Table{t}
		},
	}
}

// e12AdaptiveP probes the paper's concluding open question: if the
// algorithm may lower the sampling probability mid-stream (load
// shedding), do Horvitz–Thompson phase corrections preserve unbiased
// F₁/F₂ estimates at the same expected sample size as a fixed-p run?
func e12AdaptiveP() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "extension: adaptive sampling probability (open question 2)",
		Claim: "Conclusion: adaptivity with per-phase corrections keeps estimates unbiased",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(200000)
			// Bias detection needs samples regardless of the requested
			// speed; keep a floor under the trial count.
			trials := cfg.trials(60)
			if trials < 40 {
				trials = 40
			}
			wl := workload.Zipf(n, n/20, 1.0, r.Uint64())
			f := stream.NewFreq(wl.Stream)
			exactF1, exactF2 := float64(f.F1()), f.Fk(2)

			// Fixed p = 0.15 vs phased (0.25 then 0.05): equal expected
			// sample size when the boundary is mid-stream.
			const pFixed = 0.15
			adaptive := sample.NewAdaptiveBernoulli([]int{n / 2}, []float64{0.25, 0.05})

			t := stats.NewTable("E12: fixed p vs adaptive phases, equal expected |L| — "+wl.Name,
				"scheme", "eff. rate", "F1 bias", "F2 bias", "F2 relerr (mean)", "unbiased")
			var fixF1, fixF2, adF1, adF2, fixErr, adErr stats.Summary
			for tr := 0; tr < trials; tr++ {
				e := core.NewFkEstimator(core.FkConfig{K: 2, P: pFixed, Exact: true}, r.Split())
				runSampled(wl.Stream, pFixed, r.Split(), e)
				phi := e.Moments()
				fixF1.Add(phi[1])
				fixF2.Add(phi[2])
				fixErr.Add(stats.RelErr(phi[2], exactF2))

				tagged := adaptive.Apply(stream.Collect(wl.Stream), r.Split())
				adF1.Add(adaptive.EstimateF1(tagged))
				v2 := adaptive.EstimateF2(tagged)
				adF2.Add(v2)
				adErr.Add(stats.RelErr(v2, exactF2))
			}
			fixBias1 := (fixF1.Mean() - exactF1) / exactF1
			fixBias2 := (fixF2.Mean() - exactF2) / exactF2
			adBias1 := (adF1.Mean() - exactF1) / exactF1
			adBias2 := (adF2.Mean() - exactF2) / exactF2
			// An unbiased estimator's measured bias sits within a few
			// standard errors of zero; tolerate 4 (plus a small absolute
			// floor for float noise).
			tol := func(s *stats.Summary, exact float64) float64 {
				se := s.StdDev() / math.Sqrt(float64(s.N())) / exact
				return math.Max(0.005, 4*se)
			}
			t.AddRow("fixed p=0.15", pFixed, fixBias1, fixBias2, fixErr.Mean(),
				verdict(math.Abs(fixBias1) < tol(&fixF1, exactF1) && math.Abs(fixBias2) < tol(&fixF2, exactF2)))
			t.AddRow("adaptive 0.25→0.05", adaptive.EffectiveRate(n), adBias1, adBias2, adErr.Mean(),
				verdict(math.Abs(adBias1) < tol(&adF1, exactF1) && math.Abs(adBias2) < tol(&adF2, exactF2)))
			t.AddNote("bias = (mean estimate − exact)/exact over %d trials; both should be ≈ 0", trials)
			t.AddNote("the adaptive scheme trades higher late-stream variance for early coverage")
			return []*stats.Table{t}
		},
	}
}
