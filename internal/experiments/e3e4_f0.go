package experiments

import (
	"math"
	"strconv"

	"substream/internal/core"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// e3F0LowerBound validates Theorem 4 (via Charikar et al.'s Theorem 3):
// on the adversarial instance, every estimator observing L — including
// Algorithm 2 and GEE — suffers multiplicative error Ω(1/√p) on at least
// one branch of the instance.
func e3F0LowerBound() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "F₀ lower bound on the adversarial instance",
		Claim: "Theorem 4: multiplicative error Omega(1/sqrt(p)) is unavoidable",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(100000)
			d := int(math.Sqrt(float64(n))) // duplicated branch: d distinct values
			trials := cfg.trials(12)
			t := stats.NewTable("E3: adversarial F₀ (n vs d="+strconv.Itoa(d)+" distinct), worst branch",
				"p", "floor √(ln2/12p)", "Alg2 worst mult", "GEE worst mult", "naive worst mult", "floor respected")
			for _, p := range []float64{1.0 / 12, 0.05, 0.02, 0.01} {
				var algWorst, geeWorst, naiveWorst float64 = 1, 1, 1
				for tr := 0; tr < trials; tr++ {
					wl, _ := workload.F0Adversarial(n, d, r.Uint64())
					exact := float64(stream.NewFreq(wl.Stream).F0())
					alg := core.NewF0Estimator(core.F0Config{P: p}, r.Split())
					gee := core.NewGEEF0Estimator(p)
					naive := core.NewNaiveF0Estimator(p, 1024, r.Split())
					runSampled(wl.Stream, p, r.Split(), alg, gee, naive)
					algWorst = math.Max(algWorst, stats.MultErr(alg.Estimate(), exact))
					geeWorst = math.Max(geeWorst, stats.MultErr(gee.Estimate(), exact))
					naiveWorst = math.Max(naiveWorst, stats.MultErr(naive.Estimate(), exact))
				}
				floor := core.F0LowerBoundError(p)
				// The lower bound says SOME estimator input forces error
				// ≥ floor; our estimators' worst-case over the two
				// branches should sit at or above a constant fraction of
				// it (they cannot beat the bound).
				t.AddRow(p, floor, algWorst, geeWorst, naiveWorst,
					verdict(geeWorst >= floor/4))
			}
			t.AddNote("worst-case over both instance branches and %d trials; no estimator beats the floor", trials)
			return []*stats.Table{t}
		},
	}
}

// e4F0UpperBound validates Lemma 8 (Algorithm 2): the multiplicative
// error stays within 4/√p with high probability across workloads.
func e4F0UpperBound() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "F₀ upper bound: Algorithm 2 within 4/√p",
		Claim: "Lemma 8: multiplicative error <= 4/sqrt(p) w.h.p.",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(200000)
			trials := cfg.trials(9)
			var tables []*stats.Table
			for _, wl := range []workload.Workload{
				workload.AllDistinct(n),
				workload.Zipf(n, n/8, 1.0, r.Uint64()),
				workload.ConstantFreq(n/50, 50, r.Uint64()),
			} {
				exact := float64(stream.NewFreq(wl.Stream).F0())
				t := stats.NewTable("E4: "+wl.Name,
					"p", "bound 4/√p", "mean mult", "max mult", "GEE mean mult", "within bound")
				for _, p := range []float64{0.5, 0.2, 0.1, 0.05, 0.02} {
					var alg, gee stats.Summary
					for tr := 0; tr < trials; tr++ {
						a := core.NewF0Estimator(core.F0Config{P: p}, r.Split())
						g := core.NewGEEF0Estimator(p)
						runSampled(wl.Stream, p, r.Split(), a, g)
						alg.Add(stats.MultErr(a.Estimate(), exact))
						gee.Add(stats.MultErr(g.Estimate(), exact))
					}
					bound := 4 / math.Sqrt(p)
					t.AddRow(p, bound, alg.Mean(), alg.Max(), gee.Mean(), verdict(alg.Max() <= bound))
				}
				tables = append(tables, t)
			}
			return tables
		},
	}
}
