package experiments

import (
	"math"

	"substream/internal/core"
	"substream/internal/stats"
	"substream/internal/stream"
	"substream/internal/workload"
)

// hhTruth returns the ground-truth Fk-heavy-hitter id sets at the
// inclusion threshold α and the exclusion line (1−ε)·α.
func hhTruth(f stream.Freq, k int, alpha, eps float64) (include, grayzone map[uint64]bool) {
	include = make(map[uint64]bool)
	grayzone = make(map[uint64]bool)
	threshold := alpha * math.Pow(f.Fk(k), 1/float64(k))
	for it, c := range f {
		if float64(c) >= threshold {
			include[uint64(it)] = true
		} else if float64(c) >= (1-eps)*threshold {
			grayzone[uint64(it)] = true
		}
	}
	return include, grayzone
}

// hhScore runs one heavy-hitter trial and scores recall of the must-set,
// false positives below the exclusion line, and worst frequency error on
// the must-set.
func hhScore(rep []core.ReportedHitter, f stream.Freq, include, grayzone map[uint64]bool) (recall float64, falsePos int, worstFreqErr float64) {
	reported := make(map[uint64]float64, len(rep))
	for _, h := range rep {
		reported[uint64(h.Item)] = h.Freq
	}
	found := 0
	for it := range include {
		est, ok := reported[it]
		if !ok {
			continue
		}
		found++
		truth := float64(f[stream.Item(it)])
		if e := stats.RelErr(est, truth); e > worstFreqErr {
			worstFreqErr = e
		}
	}
	if len(include) > 0 {
		recall = float64(found) / float64(len(include))
	} else {
		recall = 1
	}
	for it := range reported {
		if !include[it] && !grayzone[it] {
			falsePos++
		}
	}
	return recall, falsePos, worstFreqErr
}

// e7F1HeavyHitters validates Theorem 6 for both backends.
func e7F1HeavyHitters() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "F₁ heavy hitters from L (Theorem 6)",
		Claim: "Thm 6: recall=1, no item below (1-eps)alpha*F1, (1±eps) freqs",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(300000)
			const alpha, eps = 0.02, 0.2
			wl := workload.PlantedHH(n, 6, int(alpha*float64(n)*1.5), n/4, r.Uint64())
			f := stream.NewFreq(wl.Stream)
			include, gray := hhTruth(f, 1, alpha, eps)
			trials := cfg.trials(7)

			var tables []*stats.Table
			for _, backend := range []struct {
				name string
				b    core.F1Backend
			}{{"CountMin", core.F1CountMin}, {"MisraGries", core.F1MisraGries}} {
				t := stats.NewTable("E7: "+wl.Name+" backend="+backend.name,
					"p", "premise F1≥", "recall", "false pos", "worst freq err", "thm holds")
				for _, p := range []float64{0.5, 0.2, 0.1, 0.05} {
					var rec, fe stats.Summary
					fp := 0
					var premise float64
					for tr := 0; tr < trials; tr++ {
						hh := core.NewF1HeavyHitters(core.F1HHConfig{
							P: p, Alpha: alpha, Epsilon: eps, Backend: backend.b,
						}, r.Split())
						runSampled(wl.Stream, p, r.Split(), hh)
						premise = hh.MinStreamLength(uint64(n), 0.05)
						recall, falsePos, freqErr := hhScore(hh.Report(), f, include, gray)
						rec.Add(recall)
						fe.Add(freqErr)
						fp += falsePos
					}
					ok := rec.Min() == 1 && fp == 0 && fe.Max() <= eps
					t.AddRow(p, premise, rec.Mean(), fp, fe.Max(),
						verdict(ok || float64(n) < premise))
				}
				t.AddNote("%d planted hitters at %.1f%% each; trials=%d", 6, alpha*150, trials)
				tables = append(tables, t)
			}
			return tables
		},
	}
}

// e8F2HeavyHitters validates Theorem 7.
func e8F2HeavyHitters() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "F₂ heavy hitters from L (Theorem 7)",
		Claim: "Thm 7: CountSketch on L with alpha' = (1-2eps/5)alpha*sqrt(p)",
		Run: func(cfg Config) []*stats.Table {
			r := cfg.rng()
			n := cfg.scaledN(200000)
			const alpha, eps = 0.25, 0.2
			wl := workload.PlantedHH(n, 3, n/15, n, r.Uint64())
			f := stream.NewFreq(wl.Stream)
			include, _ := hhTruth(f, 2, alpha, eps)
			trials := cfg.trials(7)

			t := stats.NewTable("E8: "+wl.Name,
				"p", "exclusion (1-ε)√p·α√F₂", "recall", "false pos", "worst freq err", "thm holds")
			sqrtF2 := math.Sqrt(f.Fk(2))
			for _, p := range []float64{0.5, 0.2, 0.1} {
				// Theorem 7's exclusion line scales with √p.
				exclusion := (1 - eps) * math.Sqrt(p) * alpha * sqrtF2
				gray := make(map[uint64]bool)
				for it, c := range f {
					if !include[uint64(it)] && float64(c) >= exclusion {
						gray[uint64(it)] = true
					}
				}
				var rec, fe stats.Summary
				fp := 0
				for tr := 0; tr < trials; tr++ {
					hh := core.NewF2HeavyHitters(core.F2HHConfig{P: p, Alpha: alpha, Epsilon: eps}, r.Split())
					runSampled(wl.Stream, p, r.Split(), hh)
					recall, falsePos, freqErr := hhScore(hh.Report(), f, include, gray)
					rec.Add(recall)
					fe.Add(freqErr)
					fp += falsePos
				}
				ok := rec.Min() == 1 && fp == 0
				t.AddRow(p, exclusion, rec.Mean(), fp, fe.Max(), verdict(ok))
			}
			t.AddNote("3 planted F₂-heavy items; trials=%d", trials)
			return []*stats.Table{t}
		},
	}
}
