package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Variance() != 2.5 {
		t.Fatalf("Variance = %v", s.Variance())
	}
	if math.Abs(s.StdDev()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("StdDev = %v", s.StdDev())
	}
	if s.Median() != 3 {
		t.Fatalf("Median = %v", s.Median())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Median() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary not all-zero")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(7)
	if s.Mean() != 7 || s.Variance() != 0 || s.Median() != 7 {
		t.Fatal("single-value summary wrong")
	}
}

// TestQuantileCacheInvalidation is the regression test for the sorted
// cache: quantiles after an interleaved Add must reflect the new value,
// exactly as if every call re-sorted from scratch, and the insertion
// order of the raw values must survive caching.
func TestQuantileCacheInvalidation(t *testing.T) {
	var s Summary
	for _, v := range []float64{30, 10, 20} {
		s.Add(v)
	}
	if got := s.Quantile(0.5); got != 20 {
		t.Fatalf("median of {30,10,20} = %v, want 20", got)
	}
	// Repeated queries hit the cache and must agree.
	if got := s.Quantile(0.5); got != 20 {
		t.Fatalf("cached median = %v, want 20", got)
	}
	if got := s.Quantile(1); got != 30 {
		t.Fatalf("cached max quantile = %v, want 30", got)
	}

	// Add must invalidate: a new maximum shifts every upper quantile.
	s.Add(40)
	if got := s.Quantile(1); got != 40 {
		t.Fatalf("q=1 after Add = %v, want 40 (stale cache?)", got)
	}
	if got := s.Quantile(0.5); got != 25 {
		t.Fatalf("median after Add = %v, want 25", got)
	}
	// And the raw sample must keep its insertion order: sorting works on
	// the cached copy, never the values themselves.
	if s.values[0] != 30 || s.values[3] != 40 {
		t.Fatalf("Add/Quantile reordered the raw sample: %v", s.values)
	}

	// Mixed Add/quantile churn matches a cache-free reference.
	var cached, reference Summary
	ref := func(q float64) float64 {
		// Reference path: force a fresh sort by rebuilding the summary.
		var fresh Summary
		for _, v := range reference.values {
			fresh.Add(v)
		}
		return fresh.Quantile(q)
	}
	for i := 0; i < 200; i++ {
		v := float64((i * 7919) % 101)
		cached.Add(v)
		reference.Add(v)
		if i%3 == 0 {
			for _, q := range []float64{0.5, 0.9, 0.99} {
				if got, want := cached.Quantile(q), ref(q); got != want {
					t.Fatalf("step %d q=%v: cached %v, reference %v", i, q, got, want)
				}
			}
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	var s Summary
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	if got := s.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 40 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.5); got != 25 {
		t.Fatalf("q.5 = %v", got)
	}
	// Out-of-range q clamps.
	if got := s.Quantile(-1); got != 10 {
		t.Fatalf("q-1 = %v", got)
	}
	if got := s.Quantile(2); got != 40 {
		t.Fatalf("q2 = %v", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var s Summary
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return s.Quantile(qa) <= s.Quantile(qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr = %v", got)
	}
	if got := RelErr(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RelErr = %v", got)
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) != 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr(1,0) not +Inf")
	}
}

func TestMultErr(t *testing.T) {
	if got := MultErr(200, 100); got != 2 {
		t.Fatalf("MultErr = %v", got)
	}
	if got := MultErr(50, 100); got != 2 {
		t.Fatalf("MultErr = %v", got)
	}
	if got := MultErr(100, 100); got != 1 {
		t.Fatalf("MultErr = %v", got)
	}
	if !math.IsInf(MultErr(0, 100), 1) {
		t.Fatal("MultErr(0, ·) not +Inf")
	}
	if !math.IsInf(MultErr(100, 0), 1) {
		t.Fatal("MultErr(·, 0) not +Inf")
	}
}

func TestMultErrSymmetryProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := float64(a)+1, float64(b)+1
		return math.Abs(MultErr(x, y)-MultErr(y, x)) < 1e-12 && MultErr(x, y) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionRecall(t *testing.T) {
	reported := map[uint64]bool{1: true, 2: true, 3: true}
	truth := map[uint64]bool{2: true, 3: true, 4: true}
	p, r := PrecisionRecall(reported, truth)
	if math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	// Empty conventions.
	p, r = PrecisionRecall(nil, truth)
	if p != 1 || r != 0 {
		t.Fatalf("empty reported: p=%v r=%v", p, r)
	}
	p, r = PrecisionRecall(reported, nil)
	if p != 0 || r != 1 {
		t.Fatalf("empty truth: p=%v r=%v", p, r)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "p", "error", "bound")
	tb.AddRow(0.5, 0.01234, "ok")
	tb.AddRow(0.1, 1234.5678, "ok")
	tb.AddNote("seeds: %d", 5)
	out := tb.RenderString()
	if !strings.Contains(out, "## Demo") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "0.01234") {
		t.Fatalf("missing cell:\n%s", out)
	}
	if !strings.Contains(out, "note: seeds: 5") {
		t.Fatalf("missing note:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header columns aligned: "p" column width fits "0.5".
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	tb := NewTable("", "a")
	out := tb.RenderString()
	if strings.Contains(out, "##") {
		t.Fatalf("untitled table rendered a title:\n%s", out)
	}
}

// TestQuantileEdges is the table-driven regression for the documented
// edge contract: q ≤ 0 (including NaN) answers Min, q ≥ 1 answers Max,
// empty summaries answer 0, single-element summaries answer the element
// for every q — and none of the out-of-range inputs may panic.
func TestQuantileEdges(t *testing.T) {
	multi := &Summary{}
	for _, v := range []float64{5, 1, 9, 3, 7} {
		multi.Add(v)
	}
	single := &Summary{}
	single.Add(42)
	empty := &Summary{}

	cases := []struct {
		name string
		s    *Summary
		q    float64
		want float64
	}{
		{"empty q=0.5", empty, 0.5, 0},
		{"empty q=0", empty, 0, 0},
		{"empty q=1", empty, 1, 0},
		{"empty NaN", empty, math.NaN(), 0},
		{"single q=0", single, 0, 42},
		{"single q=0.5", single, 0.5, 42},
		{"single q=1", single, 1, 42},
		{"single below range", single, -3, 42},
		{"single above range", single, 2, 42},
		{"single NaN", single, math.NaN(), 42},
		{"multi q=0 is min", multi, 0, 1},
		{"multi q=1 is max", multi, 1, 9},
		{"multi below range clamps to min", multi, -0.1, 1},
		{"multi above range clamps to max", multi, 1.5, 9},
		{"multi NaN clamps to min", multi, math.NaN(), 1},
		{"multi median", multi, 0.5, 5},
	}
	for _, tc := range cases {
		if got := tc.s.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
	if got, want := multi.Quantile(0), multi.Min(); got != want {
		t.Errorf("Quantile(0) = %v, Min() = %v — documented as equal", got, want)
	}
	if got, want := multi.Quantile(1), multi.Max(); got != want {
		t.Errorf("Quantile(1) = %v, Max() = %v — documented as equal", got, want)
	}
}
