package stats

import "testing"

// quantileSample builds a Summary of n pseudo-random measurements.
func quantileSample(n int) *Summary {
	s := &Summary{}
	x := uint64(88172645463325252)
	for i := 0; i < n; i++ {
		// xorshift64: cheap deterministic fill, no rng dependency.
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		s.Add(float64(x % 1_000_003))
	}
	return s
}

// BenchmarkQuantileTable renders the p50/p90/p99 row every experiment
// table prints. Before the sorted cache each quantile re-sorted the full
// sample (three O(n log n) sorts per row); with it the first call sorts
// and the rest interpolate, which is the win this benchmark pins.
func BenchmarkQuantileTable(b *testing.B) {
	s := quantileSample(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.5)
		_ = s.Quantile(0.9)
		_ = s.Quantile(0.99)
	}
}

// BenchmarkQuantileColdCache measures the worst case the cache cannot
// help: every iteration appends (invalidating) and queries once — the
// old behavior's cost, kept as the comparison baseline.
func BenchmarkQuantileColdCache(b *testing.B) {
	s := quantileSample(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i))
		_ = s.Quantile(0.99)
	}
}
