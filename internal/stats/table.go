package stats

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table renders experiment results as aligned plain text, the way the
// experiment binary reports each reproduced figure. Rows are added as
// formatted cells; Render pads every column to its widest cell.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are stringified with %v, floats with %.4g.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	var header strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			header.WriteString("  ")
		}
		header.WriteString(pad(c, widths[i]))
	}
	fmt.Fprintln(w, header.String())
	fmt.Fprintln(w, strings.Repeat("-", len(header.String())))
	for _, row := range t.rows {
		var line strings.Builder
		for i, cell := range row {
			if i > 0 {
				line.WriteString("  ")
			}
			width := utf8.RuneCountInString(cell)
			if i < len(widths) {
				width = widths[i]
			}
			line.WriteString(pad(cell, width))
		}
		fmt.Fprintln(w, line.String())
	}
	for _, n := range t.notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderString returns the rendered table as a string.
func (t *Table) RenderString() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, width int) string {
	n := utf8.RuneCountInString(s)
	if n >= width {
		return s
	}
	return s + strings.Repeat(" ", width-n)
}
