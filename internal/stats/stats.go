// Package stats provides the small numerical toolkit the experiment
// harness uses: summaries of repeated trials (mean, variance, quantiles),
// error metrics matching the paper's definitions, and plain-text table
// rendering for experiment output.
package stats

import (
	"math"
	"sort"
)

// Summary aggregates repeated scalar measurements. It is not safe for
// concurrent use: Quantile lazily builds the sorted cache, so even
// read-style queries mutate the receiver.
type Summary struct {
	values []float64
	// sorted caches the ascending copy Quantile works over, built on
	// first use and invalidated by Add. Rendering a p50/p90/p99 table
	// therefore sorts once, not once per quantile.
	sorted []float64
}

// Add appends one measurement.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = nil
}

// N returns the number of measurements.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the arithmetic mean, 0 for an empty summary.
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance, 0 with < 2 samples.
func (s *Summary) Variance() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var sum float64
	for _, v := range s.values {
		d := v - mean
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Quantile returns the q-quantile by linear interpolation over the
// sorted measurements. The edges are exact and total: q ≤ 0 (and NaN)
// returns Min, q ≥ 1 returns Max, an empty summary returns 0, and a
// single-element summary returns that element for every q.
//
// This is an exact, offline helper for experiment trials: it retains
// every measurement and its state never merges. For quantiles OVER THE
// OBSERVED STREAM — bounded space, mergeable across shards and agents,
// wire-serializable — use internal/quantile (the "quantile" registry
// kind), which answers targeted quantiles within ε·n ranks from a few
// hundred samples.
func (s *Summary) Quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	// NaN fails both clamp comparisons and would otherwise flow into the
	// index arithmetic, where int(NaN) is platform-defined — pin it to
	// the low edge alongside q < 0.
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	if s.sorted == nil {
		s.sorted = make([]float64, n)
		copy(s.sorted, s.values)
		sort.Float64s(s.sorted)
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.sorted[lo]
	}
	frac := pos - float64(lo)
	return s.sorted[lo]*(1-frac) + s.sorted[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// Max returns the largest measurement, 0 for an empty summary.
func (s *Summary) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	max := s.values[0]
	for _, v := range s.values[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Min returns the smallest measurement, 0 for an empty summary.
func (s *Summary) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	min := s.values[0]
	for _, v := range s.values[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// RelErr returns |est − truth|/truth, the relative error the paper's
// (1+ε)-style guarantees bound. It returns 0 when both are 0 and +Inf
// when only the truth is 0.
func RelErr(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// MultErr returns the multiplicative error max(est/truth, truth/est) — the
// α of Definition 1's (α, δ)-estimator, which Lemma 8 and Theorem 4 use.
// Non-positive inputs return +Inf (the estimator failed completely).
func MultErr(est, truth float64) float64 {
	if est <= 0 || truth <= 0 {
		return math.Inf(1)
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}

// PrecisionRecall compares a reported set against ground truth.
func PrecisionRecall(reported, truth map[uint64]bool) (precision, recall float64) {
	if len(reported) == 0 {
		precision = 1
	} else {
		tp := 0
		for it := range reported {
			if truth[it] {
				tp++
			}
		}
		precision = float64(tp) / float64(len(reported))
	}
	if len(truth) == 0 {
		recall = 1
	} else {
		found := 0
		for it := range truth {
			if reported[it] {
				found++
			}
		}
		recall = float64(found) / float64(len(truth))
	}
	return precision, recall
}
