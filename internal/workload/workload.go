// Package workload generates the synthetic input streams the experiments
// run on: Zipf and uniform frequency profiles, planted heavy-hitter
// streams, the adversarial instances behind the paper's lower bounds
// (Theorem 4's Charikar-style F₀ instance, Lemma 9's entropy scenarios),
// and a NetFlow-like packet trace.
//
// Real sampled-NetFlow traces are proprietary; the generator substitutes
// them (DESIGN.md §4.1) — the estimators' guarantees depend only on the
// frequency vector and the Bernoulli sampling process, both of which
// these generators control exactly.
package workload

import (
	"fmt"

	"substream/internal/rng"
	"substream/internal/stream"
)

// Workload couples a named, replayable stream with the parameters that
// generated it, so experiment tables can label rows.
type Workload struct {
	// Name identifies the workload in experiment output.
	Name string
	// Stream is the generated original stream P (replayable).
	Stream stream.Stream
	// Universe is the nominal universe size m.
	Universe uint64
}

// Zipf returns a length-n stream over [1, m] with Zipf(s) frequencies.
// The stream is materialized (replay returns identical items).
func Zipf(n, m int, s float64, seed uint64) Workload {
	r := rng.New(seed)
	z := rng.NewZipf(m, s)
	out := make(stream.Slice, n)
	for i := range out {
		out[i] = stream.Item(z.Draw(r))
	}
	return Workload{
		Name:     fmt.Sprintf("zipf(s=%.2f,n=%d,m=%d)", s, n, m),
		Stream:   out,
		Universe: uint64(m),
	}
}

// Uniform returns a length-n stream drawn uniformly from [1, m].
func Uniform(n, m int, seed uint64) Workload {
	r := rng.New(seed)
	out := make(stream.Slice, n)
	for i := range out {
		out[i] = stream.Item(r.Uint64n(uint64(m)) + 1)
	}
	return Workload{
		Name:     fmt.Sprintf("uniform(n=%d,m=%d)", n, m),
		Stream:   out,
		Universe: uint64(m),
	}
}

// AllDistinct returns the stream 1, 2, …, n — every item exactly once.
// It maximizes F₀ and entropy and has zero collisions.
func AllDistinct(n int) Workload {
	out := make(stream.Slice, n)
	for i := range out {
		out[i] = stream.Item(i + 1)
	}
	return Workload{
		Name:     fmt.Sprintf("distinct(n=%d)", n),
		Stream:   out,
		Universe: uint64(n),
	}
}

// ConstantFreq returns a stream of d distinct items, each appearing
// exactly `repeat` times, shuffled.
func ConstantFreq(d, repeat int, seed uint64) Workload {
	out := make(stream.Slice, 0, d*repeat)
	for i := 1; i <= d; i++ {
		for j := 0; j < repeat; j++ {
			out = append(out, stream.Item(i))
		}
	}
	r := rng.New(seed)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return Workload{
		Name:     fmt.Sprintf("constfreq(d=%d,f=%d)", d, repeat),
		Stream:   out,
		Universe: uint64(d),
	}
}

// PlantedHH returns a stream with `heavy` planted items of frequency
// heavyFreq each (ids 1…heavy) over a uniform light background filling
// the stream to length n, shuffled. It is the Theorem 6/7 evaluation
// input: ground-truth heavy hitters are known by construction.
func PlantedHH(n, heavy, heavyFreq, lightUniverse int, seed uint64) Workload {
	r := rng.New(seed)
	out := make(stream.Slice, 0, n)
	for h := 1; h <= heavy; h++ {
		for j := 0; j < heavyFreq; j++ {
			out = append(out, stream.Item(h))
		}
	}
	for len(out) < n {
		out = append(out, stream.Item(heavy+1+r.Intn(lightUniverse)))
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return Workload{
		Name:     fmt.Sprintf("planted(n=%d,hh=%d×%d)", n, heavy, heavyFreq),
		Stream:   out,
		Universe: uint64(heavy + lightUniverse),
	}
}

// F0Adversarial returns the Charikar-style hard instance behind
// Theorem 4: with probability 1/2 the stream is all-distinct (F₀ = n),
// otherwise it consists of d ≪ n values each repeated n/d times (F₀ = d).
// A sampler observing o(n) elements cannot tell the two apart well, so
// any estimator errs by Ω(√(n/d)) on one of them. Duplicated reports
// which case was drawn, so experiments can plot both branches.
func F0Adversarial(n, d int, seed uint64) (w Workload, duplicated bool) {
	r := rng.New(seed)
	duplicated = r.Bool()
	if !duplicated {
		w = AllDistinct(n)
		w.Name = fmt.Sprintf("f0adv-distinct(n=%d)", n)
		return w, false
	}
	w = ConstantFreq(d, n/d, r.Uint64())
	w.Name = fmt.Sprintf("f0adv-dup(n=%d,d=%d)", n, d)
	return w, true
}

// EntropyScenario1 is Lemma 9's first instance: item 1 appears n−k times
// and k = ⌈1/(10p)⌉ singleton items fill the rest. H(f) = Θ(k·log n/n) is
// positive, but with probability ≥ (1−p)^k ≈ 0.9 the sampled stream
// contains none of the singletons and every sampled-entropy estimate
// collapses to 0.
func EntropyScenario1(n int, p float64) Workload {
	k := int(1/(10*p)) + 1
	if k >= n {
		k = n / 2
	}
	out := make(stream.Slice, 0, n)
	for i := 0; i < n-k; i++ {
		out = append(out, 1)
	}
	for i := 0; i < k; i++ {
		out = append(out, stream.Item(i+2))
	}
	return Workload{
		Name:     fmt.Sprintf("entropy1(n=%d,k=%d)", n, k),
		Stream:   out,
		Universe: uint64(k + 1),
	}
}

// EntropyScenario2 is Lemma 9's second instance: all m items appear once
// (H(f) = lg m) while H(g) concentrates at lg(pm), a fixed additive gap
// of |lg p| ≈ |lg 2p| that no multiplicative estimator can close.
func EntropyScenario2(m int) Workload {
	w := AllDistinct(m)
	w.Name = fmt.Sprintf("entropy2(m=%d)", m)
	return w
}

// Flow is one synthetic NetFlow-style flow: an id and a packet count.
type Flow struct {
	ID      stream.Item
	Packets int
}

// NetFlow returns a packet stream over `flows` flows whose popularity is
// Zipf(skew) and whose sizes are Pareto(shape) with minimum size minPkts,
// interleaved by random arrival order, truncated/padded to n packets. It
// also returns the generated flow table for ground-truth checks.
func NetFlow(n, flows int, skew, shape float64, minPkts int, seed uint64) (Workload, []Flow) {
	r := rng.New(seed)
	z := rng.NewZipf(flows, skew)

	// Draw flow sizes: popularity decides how many "slots" a flow id
	// receives; Pareto scales burstiness of per-flow packet counts.
	table := make([]Flow, flows)
	for i := range table {
		pkts := int(rng.Pareto(r, float64(minPkts), shape))
		table[i] = Flow{ID: stream.Item(i + 1), Packets: pkts}
	}

	out := make(stream.Slice, 0, n)
	for len(out) < n {
		id := z.Draw(r)
		f := &table[id-1]
		// Emit a burst of up to 16 packets of this flow, matching the
		// clustered arrivals real traces show.
		burst := 1 + r.Intn(16)
		if burst > f.Packets {
			burst = f.Packets
		}
		if burst == 0 {
			burst = 1
		}
		for j := 0; j < burst && len(out) < n; j++ {
			out = append(out, f.ID)
		}
	}
	w := Workload{
		Name:     fmt.Sprintf("netflow(n=%d,flows=%d,skew=%.2f)", n, flows, skew),
		Stream:   out,
		Universe: uint64(flows),
	}
	return w, table
}
