package workload

import (
	"math"
	"strings"
	"testing"

	"substream/internal/stream"
)

func TestZipfWorkload(t *testing.T) {
	w := Zipf(50000, 1000, 1.1, 1)
	if w.Stream.Len() != 50000 {
		t.Fatalf("length %d", w.Stream.Len())
	}
	if err := stream.Validate(w.Stream, w.Universe); err != nil {
		t.Fatal(err)
	}
	f := stream.NewFreq(w.Stream)
	// Skewed: top item much heavier than median item.
	top := f.TopK(1)[0].Freq
	if top < 50000/100 {
		t.Fatalf("top frequency %d not skewed", top)
	}
	if !strings.Contains(w.Name, "zipf") {
		t.Fatalf("name %q", w.Name)
	}
}

func TestZipfDeterministicBySeed(t *testing.T) {
	a := Zipf(1000, 100, 1.0, 7)
	b := Zipf(1000, 100, 1.0, 7)
	sa, sb := stream.Collect(a.Stream), stream.Collect(b.Stream)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed produced different streams")
		}
	}
	c := Zipf(1000, 100, 1.0, 8)
	sc := stream.Collect(c.Stream)
	same := 0
	for i := range sa {
		if sa[i] == sc[i] {
			same++
		}
	}
	if same == len(sa) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestUniformWorkload(t *testing.T) {
	w := Uniform(100000, 500, 2)
	if err := stream.Validate(w.Stream, 500); err != nil {
		t.Fatal(err)
	}
	f := stream.NewFreq(w.Stream)
	if f.F0() != 500 {
		t.Fatalf("uniform stream covered %d of 500 items", f.F0())
	}
	// Max/min frequency ratio should be modest.
	min := uint64(math.MaxUint64)
	for _, c := range f {
		if c < min {
			min = c
		}
	}
	if float64(f.MaxFreq())/float64(min) > 2 {
		t.Fatalf("uniform stream too skewed: max %d min %d", f.MaxFreq(), min)
	}
}

func TestAllDistinct(t *testing.T) {
	w := AllDistinct(1000)
	f := stream.NewFreq(w.Stream)
	if f.F0() != 1000 || f.MaxFreq() != 1 {
		t.Fatalf("AllDistinct wrong: F0=%d max=%d", f.F0(), f.MaxFreq())
	}
	if f.Collisions(2) != 0 {
		t.Fatal("AllDistinct has collisions")
	}
}

func TestConstantFreq(t *testing.T) {
	w := ConstantFreq(100, 7, 3)
	f := stream.NewFreq(w.Stream)
	if f.F0() != 100 {
		t.Fatalf("F0 = %d", f.F0())
	}
	for it, c := range f {
		if c != 7 {
			t.Fatalf("item %d has frequency %d, want 7", it, c)
		}
	}
}

func TestPlantedHH(t *testing.T) {
	w := PlantedHH(100000, 5, 8000, 50000, 4)
	if w.Stream.Len() != 100000 {
		t.Fatalf("length %d", w.Stream.Len())
	}
	f := stream.NewFreq(w.Stream)
	for i := stream.Item(1); i <= 5; i++ {
		if f[i] != 8000 {
			t.Fatalf("planted item %d frequency %d, want 8000", i, f[i])
		}
	}
	// Background items must stay far below the planted frequency.
	for it, c := range f {
		if it > 5 && c > 800 {
			t.Fatalf("background item %d too heavy: %d", it, c)
		}
	}
}

func TestF0AdversarialBothBranches(t *testing.T) {
	sawDup, sawDistinct := false, false
	for seed := uint64(0); seed < 32 && !(sawDup && sawDistinct); seed++ {
		w, dup := F0Adversarial(10000, 100, seed)
		f := stream.NewFreq(w.Stream)
		if dup {
			sawDup = true
			if f.F0() != 100 {
				t.Fatalf("dup branch F0 = %d, want 100", f.F0())
			}
		} else {
			sawDistinct = true
			if f.F0() != 10000 {
				t.Fatalf("distinct branch F0 = %d, want 10000", f.F0())
			}
		}
		if w.Stream.Len() != 10000 {
			t.Fatalf("length %d", w.Stream.Len())
		}
	}
	if !sawDup || !sawDistinct {
		t.Fatal("32 seeds did not produce both branches")
	}
}

func TestEntropyScenario1Shape(t *testing.T) {
	const n, p = 10000, 0.01
	w := EntropyScenario1(n, p)
	f := stream.NewFreq(w.Stream)
	k := int(1/(10*p)) + 1
	if int(f.F0()) != k+1 {
		t.Fatalf("F0 = %d, want %d", f.F0(), k+1)
	}
	if f[1] != uint64(n-k) {
		t.Fatalf("dominant frequency %d, want %d", f[1], n-k)
	}
	h := f.Entropy()
	if h <= 0 {
		t.Fatal("scenario 1 entropy must be positive")
	}
	// H(f) = Θ(k·lg n/n): tiny.
	if h > 0.2 {
		t.Fatalf("scenario 1 entropy %v unexpectedly large", h)
	}
}

func TestEntropyScenario1DegenerateP(t *testing.T) {
	// Tiny p would make k ≥ n; the generator must clamp.
	w := EntropyScenario1(100, 1e-6)
	if w.Stream.Len() != 100 {
		t.Fatalf("length %d", w.Stream.Len())
	}
}

func TestEntropyScenario2Shape(t *testing.T) {
	w := EntropyScenario2(4096)
	f := stream.NewFreq(w.Stream)
	if got := f.Entropy(); math.Abs(got-12) > 1e-9 {
		t.Fatalf("scenario 2 entropy %v, want 12", got)
	}
}

func TestNetFlow(t *testing.T) {
	w, table := NetFlow(200000, 5000, 1.1, 1.3, 4, 5)
	if w.Stream.Len() != 200000 {
		t.Fatalf("length %d", w.Stream.Len())
	}
	if len(table) != 5000 {
		t.Fatalf("flow table size %d", len(table))
	}
	if err := stream.Validate(w.Stream, w.Universe); err != nil {
		t.Fatal(err)
	}
	f := stream.NewFreq(w.Stream)
	// Popular flows dominate: top flow should hold a few percent of
	// packets with skew 1.1.
	top := f.TopK(1)[0]
	if float64(top.Freq)/200000 < 0.01 {
		t.Fatalf("top flow only %d packets; no skew", top.Freq)
	}
	for _, fl := range table {
		if fl.Packets < 4 {
			t.Fatalf("flow %d smaller than minPkts: %d", fl.ID, fl.Packets)
		}
	}
}

func TestNetFlowDeterministic(t *testing.T) {
	a, _ := NetFlow(10000, 100, 1.0, 1.5, 2, 9)
	b, _ := NetFlow(10000, 100, 1.0, 1.5, 2, 9)
	sa, sb := stream.Collect(a.Stream), stream.Collect(b.Stream)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("NetFlow not deterministic by seed")
		}
	}
}
