package estimator

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// ErrDecodeOnly marks construction attempts against kinds that register
// no constructor: they have a wire form (that is what earns a tag) but
// exist only as components of composite payloads, revived through
// Decode. Callers distinguish "that kind cannot be built" from "no such
// kind" with errors.Is.
var ErrDecodeOnly = errors.New("kind is decode-only")

// Spec is the estimator-affecting configuration a registered kind builds
// fresh instances from. It is the registry-level rendering of the
// library's mergeability rule: all replicas of one logical stream — in
// one process or across agents — must be constructed from an identical
// Spec, Seed included, for their summaries to merge.
type Spec struct {
	// Stat names the kind to build (a registered Kind.Name).
	Stat string
	// P is the Bernoulli sampling probability of the original stream.
	P float64
	// K is the moment order for moment estimators. Default 2.
	K int
	// Epsilon is the target relative error.
	Epsilon float64
	// Alpha is the heaviness threshold for heavy-hitter kinds.
	Alpha float64
	// Budget bounds counter-based summaries (level-set budget, top-k…).
	Budget int
	// Exact selects an exact (unbounded-space) backend where one exists.
	Exact bool
	// Seed constructs the estimator; identical seeds make replicas
	// mergeable.
	Seed uint64
}

// Kind is one registered estimator kind: the binding between a wire tag,
// a stable name, a decoder, and a constructor. Decode is mandatory (every
// kind has a wire form — that is what earns it a tag); New may be nil for
// kinds that are only components of composite payloads.
type Kind struct {
	// Tag is the kind's wire tag byte. Tag ranges are partitioned by
	// package: internal/sketch owns 0x01–0x0f, internal/levelset owns
	// 0x10–0x1f, internal/core owns 0x20–0x2f.
	Tag byte
	// Name is the kind's stable, unique name — the value of a stream
	// config's "stat" field and of the CLIs' -stat flag.
	Name string
	// Doc is a one-line description for -list-estimators.
	Doc string
	// New builds a fresh estimator from a spec. Implementations may
	// panic on out-of-range numeric parameters exactly like the
	// underlying constructors; config-driven callers validate first.
	New func(Spec) (Estimator, error)
	// Decode reconstructs an estimator from MarshalBinary output
	// carrying this kind's tag.
	Decode func([]byte) (Estimator, error)
}

var (
	regMu  sync.RWMutex
	byTag  = map[byte]Kind{}
	byName = map[string]Kind{}
)

// Register adds a kind to the registry. It panics on a duplicate tag or
// name, a missing decoder, or an empty name — registration happens at
// init time, where a conflict is a programming error that must not ship.
func Register(k Kind) {
	if k.Name == "" || k.Decode == nil {
		panic(fmt.Sprintf("estimator: kind %#x must have a name and a decoder", k.Tag))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if dup, ok := byTag[k.Tag]; ok {
		panic(fmt.Sprintf("estimator: tag %#x registered twice (%q and %q)", k.Tag, dup.Name, k.Name))
	}
	if _, ok := byName[k.Name]; ok {
		panic(fmt.Sprintf("estimator: name %q registered twice", k.Name))
	}
	byTag[k.Tag] = k
	byName[k.Name] = k
}

// Kinds returns every registered kind, sorted by tag.
func Kinds() []Kind {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Kind, 0, len(byTag))
	for _, k := range byTag {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// Lookup returns the kind registered under name.
func Lookup(name string) (Kind, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	k, ok := byName[name]
	return k, ok
}

// Stats returns the names of every constructible kind in sorted order —
// the legal values of a stream config's "stat" field.
func Stats() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(byName))
	for name, k := range byName {
		if k.New != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// withDefaults fills unset numeric fields with the library-wide
// defaults. Applying them here, inside New, guarantees every entry path
// — daemon config, CLI, direct library use — builds structurally
// identical (and therefore mergeable) estimators from equal logical
// specs.
func (s Spec) withDefaults() Spec {
	if s.K == 0 {
		s.K = 2
	}
	if s.Epsilon == 0 {
		s.Epsilon = 0.2
	}
	if s.Alpha == 0 {
		s.Alpha = 0.05
	}
	if s.Budget == 0 {
		s.Budget = 4096
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// New builds a fresh estimator for spec.Stat through the registry,
// after filling unset spec fields with the library-wide defaults.
func New(spec Spec) (Estimator, error) {
	k, ok := Lookup(spec.Stat)
	if !ok {
		return nil, fmt.Errorf("estimator: unknown stat %q (want one of %s)",
			spec.Stat, strings.Join(Stats(), " | "))
	}
	if k.New == nil {
		return nil, fmt.Errorf(
			"estimator: %w: %q only rides inside other payloads and cannot back a stream (constructible kinds: %s)",
			ErrDecodeOnly, spec.Stat, strings.Join(Stats(), " | "))
	}
	return k.New(spec.withDefaults())
}

// Decode reconstructs whichever registered estimator the payload's tag
// byte names — the single entry point a collector needs to revive any
// shipped summary. Unknown tags, like every other corruption, fail
// cleanly.
func Decode(data []byte) (Estimator, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("estimator: empty payload")
	}
	regMu.RLock()
	k, ok := byTag[data[0]]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("estimator: unknown payload tag %#x", data[0])
	}
	return k.Decode(data)
}

// WriteKinds renders the registry as the table the CLIs print for
// -list-estimators: one row per kind with its wire tag, whether it can
// back a stream ("stat") or only ride inside payloads ("decode-only"),
// and its description.
func WriteKinds(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-5s %-12s %s\n", "NAME", "TAG", "MODE", "DESCRIPTION")
	for _, k := range Kinds() {
		mode := "stat"
		if k.New == nil {
			mode = "decode-only"
		}
		fmt.Fprintf(w, "%-14s 0x%02x  %-12s %s\n", k.Name, k.Tag, mode, k.Doc)
	}
}

// DecodeTyped lifts a package's typed unmarshal function into a registry
// Decode hook: decode with full type safety, then adapt to the interface.
func DecodeTyped[E Typed[E]](unmarshal func([]byte) (E, error)) func([]byte) (Estimator, error) {
	return func(data []byte) (Estimator, error) {
		e, err := unmarshal(data)
		if err != nil {
			return nil, err
		}
		return Adapt(e), nil
	}
}
