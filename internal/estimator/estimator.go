// Package estimator is the single abstraction layer every statistic in
// this repository plugs into. It defines the uniform summary contract
// (Estimator) and a wire-tag registry (Register/Kinds/New/Decode) that
// maps each serialized payload tag to a name, a decoder, and a
// config-driven constructor.
//
// The concrete summaries live in internal/sketch, internal/levelset and
// internal/core; each package registers its serializable types from an
// init function, so importing any of them populates the registry. Every
// consumer — the daemon's stream builder, the collector's decode path,
// the CLIs' -list-estimators — works against this package alone, which is
// what makes a new statistic a single-package change: implement the Typed
// contract, pick a free tag, call Register.
package estimator

import (
	"fmt"

	"substream/internal/stream"
)

// Estimator is the uniform contract of one mergeable stream summary. It
// deliberately matches internal/pipeline's replica expectations: the
// pipeline's batched workers use UpdateBatch, and because Merge takes the
// interface itself, Estimator satisfies pipeline.Mergeable[Estimator] and
// flows through MergeAll unchanged.
type Estimator interface {
	// Observe feeds one element of the observed (sampled) stream.
	Observe(it stream.Item)
	// UpdateBatch feeds a batch of elements — the amortized fast path.
	UpdateBatch(items []stream.Item)
	// Merge folds another estimator of the same kind into the receiver.
	// Both sides must have been built from an identical Spec (same seed);
	// anything else returns an error, never corrupts state.
	Merge(other Estimator) error
	// MarshalBinary serializes the cumulative state in the tagged wire
	// format (see internal/server/doc.go for the format rules).
	MarshalBinary() ([]byte, error)
	// SpaceBytes returns the approximate memory footprint.
	SpaceBytes() int
	// Estimates returns the named scalar estimates this summary answers,
	// e.g. {"f0": …} or {"fk": …, "f2": …, "sampled_length": …}.
	Estimates() map[string]float64
}

// Hitter is one detected heavy hitter with its estimated original-stream
// frequency. internal/core's ReportedHitter is an alias of this type, so
// hitter lists flow between layers without conversion.
type Hitter struct {
	Item stream.Item
	Freq float64
}

// Report is a full named-estimate report: the scalar values plus any
// detected heavy hitters. It is the JSON shape the daemon serves for both
// local and global estimate queries.
type Report struct {
	// Values holds scalar estimates keyed by statistic name.
	Values map[string]float64 `json:"values"`
	// F1Hitters and F2Hitters list detected heavy hitters.
	F1Hitters []Hitter `json:"f1_hitters,omitempty"`
	F2Hitters []Hitter `json:"f2_hitters,omitempty"`
}

// Reporter is an optional extension implemented by estimators whose full
// report carries more than scalar values (heavy-hitter lists).
type Reporter interface {
	EstimatorReport() Report
}

// ReportOf returns the full report of any estimator: its EstimatorReport
// when it implements Reporter, otherwise just its scalar Estimates.
func ReportOf(e Estimator) Report {
	if r, ok := e.(Reporter); ok {
		return r.EstimatorReport()
	}
	return Report{Values: e.Estimates()}
}

// Weighted is an optional extension implemented by estimators that
// consume (key, weight) items natively — today the VarOpt reservoir in
// internal/sample and the window wrapper around it. Estimators without
// it still accept weighted streams through the degenerate projection
// (each weighted item observed once as its bare key); WeightedOf is the
// single probe ingestion layers use to pick the path.
type Weighted interface {
	// ObserveWeighted feeds one weighted element of the observed stream.
	ObserveWeighted(it stream.Item, weight float64)
	// UpdateWeightedBatch feeds a weighted batch — the amortized fast
	// path, required to be state-equivalent to element-wise
	// ObserveWeighted like UpdateBatch is to Observe.
	UpdateWeightedBatch(items []stream.WItem)
}

// WeightedOf returns the weighted-ingest surface of an estimator: the
// estimator itself when it implements Weighted, the concrete value
// behind an adapter when that does, and false otherwise.
func WeightedOf(e Estimator) (Weighted, bool) {
	if w, ok := e.(Weighted); ok {
		return w, true
	}
	w, ok := Unwrap(e).(Weighted)
	return w, ok
}

// Summer is an optional extension implemented by estimators that answer
// subset-sum queries: an unbiased estimate of the total weight of the
// stream elements whose key satisfies pred (Horvitz–Thompson over the
// retained sample, for the VarOpt reservoir).
type Summer interface {
	SubsetSum(pred func(stream.Item) bool) float64
}

// SummerOf returns the subset-sum surface of an estimator, unwrapping
// adapters like WeightedOf does; false when the kind does not answer
// subset sums.
func SummerOf(e Estimator) (Summer, bool) {
	if s, ok := e.(Summer); ok {
		return s, true
	}
	s, ok := Unwrap(e).(Summer)
	return s, ok
}

// Typed is the contract a concrete estimator implements in its own
// package: the Estimator methods with a type-safe Merge. Adapt lifts a
// Typed implementation to the interface, so concrete types never deal in
// interface values and keep their compile-time merge safety.
type Typed[E any] interface {
	Observe(it stream.Item)
	UpdateBatch(items []stream.Item)
	Merge(other E) error
	MarshalBinary() ([]byte, error)
	SpaceBytes() int
	Estimates() map[string]float64
}

// adapter lifts a Typed estimator to the Estimator interface. It is a
// thin shim: every method is one static call, so the only per-batch cost
// on the ingest hot path is a single extra indirect call.
type adapter[E Typed[E]] struct{ e E }

// Adapt wraps a concrete estimator in the Estimator interface. Two
// adapted values merge iff they wrap the same concrete type; the wrapped
// value stays reachable through Unwrap.
func Adapt[E Typed[E]](e E) Estimator { return adapter[E]{e: e} }

func (a adapter[E]) Observe(it stream.Item)          { a.e.Observe(it) }
func (a adapter[E]) UpdateBatch(items []stream.Item) { a.e.UpdateBatch(items) }
func (a adapter[E]) MarshalBinary() ([]byte, error)  { return a.e.MarshalBinary() }
func (a adapter[E]) SpaceBytes() int                 { return a.e.SpaceBytes() }
func (a adapter[E]) Estimates() map[string]float64   { return a.e.Estimates() }

func (a adapter[E]) Merge(other Estimator) error {
	o, ok := other.(adapter[E])
	if !ok {
		return fmt.Errorf("estimator: cannot merge %T into %T", Unwrap(other), a.e)
	}
	return a.e.Merge(o.e)
}

func (a adapter[E]) EstimatorReport() Report {
	if r, ok := any(a.e).(Reporter); ok {
		return r.EstimatorReport()
	}
	return Report{Values: a.e.Estimates()}
}

func (a adapter[E]) Unwrap() any { return a.e }

// Unwrap returns the concrete estimator behind an interface value, for
// callers that need type-specific extras (error bounds, hitter reports).
// Non-adapted values are returned as-is.
func Unwrap(e Estimator) any {
	if u, ok := e.(interface{ Unwrap() any }); ok {
		return u.Unwrap()
	}
	return e
}
