package estimator_test

import (
	"bytes"
	"encoding/binary"
	"testing"

	"substream/internal/estimator"
	"substream/internal/stream"
	"substream/internal/workload"

	// Register every standard kind, including the quantile summary, so
	// the registry-driven suites below cover them all.
	_ "substream/internal/core"
	_ "substream/internal/quantile"
	_ "substream/internal/sample"
)

// This file pins the library-wide batching contract: for EVERY
// constructible registry kind, UpdateBatch over any partition of a
// stream produces serialized state bit-identical to item-by-item
// Observe. The batch kernels in sketch/levelset/core are free to
// reorganize work (row-major loops, run-length map amortization, KMV
// threshold prefilters) but never to change state — a regression here
// means shards, agents, and replayed streams silently diverge.

// equivSpec sizes every kind small enough that counter-based summaries
// overflow their budgets (exercising eviction, decrement-all, and
// replace-min paths) while table-based sketches stay test-fast.
func equivSpec(stat string) estimator.Spec {
	return estimator.Spec{
		Stat: stat, P: 0.3, K: 3, Epsilon: 0.25, Alpha: 0.1, Budget: 96, Seed: 99,
	}
}

// equivStream is a skewed stream over a small universe: heavy items form
// long presence (exercising the run-length fast paths), the tail churns
// the eviction paths.
func equivStream(n int, seed uint64) stream.Slice {
	return stream.Collect(workload.Zipf(n, 2048, 1.2, seed).Stream)
}

// feedBatches partitions items into consecutive batches of the given
// sizes, cycling through sizes until the stream is consumed.
func feedBatches(e estimator.Estimator, items stream.Slice, sizes []int) {
	si := 0
	for off := 0; off < len(items); {
		size := sizes[si%len(sizes)]
		si++
		end := off + size
		if end > len(items) {
			end = len(items)
		}
		e.UpdateBatch(items[off:end])
		off = end
	}
}

func TestBatchObserveBitEquivalence(t *testing.T) {
	items := equivStream(12_000, 1)
	splits := [][]int{
		{1},                  // batch path driven one item at a time
		{64},                 // chunk-sized batches
		{1024},               // pipeline-sized batches
		{7},                  // batches straddling run boundaries
		{1, 64, 1024, 3, 37}, // mixed partition
	}
	for _, stat := range estimator.Stats() {
		t.Run(stat, func(t *testing.T) {
			spec := equivSpec(stat)
			ref, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range items {
				ref.Observe(it)
			}
			want, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			for _, sizes := range splits {
				e, err := estimator.New(spec)
				if err != nil {
					t.Fatal(err)
				}
				feedBatches(e, items, sizes)
				got, err := e.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("splits %v: batched state diverges from Observe state (%d vs %d bytes)",
						sizes, len(got), len(want))
				}
			}
			// An empty batch must be a no-op, not a state change.
			e, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range items {
				e.Observe(it)
			}
			e.UpdateBatch(nil)
			got, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("UpdateBatch(nil) changed serialized state")
			}
		})
	}
}

// FuzzBatchSplit fuzzes the same invariant over arbitrary streams and
// arbitrary split points: however a stream is cut into batches, the
// serialized state must match per-item observation for every
// constructible kind.
func FuzzBatchSplit(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0}, uint64(1))
	f.Add(bytes.Repeat([]byte{9}, 64), uint64(7))
	seed := equivStream(96, 3)
	buf := make([]byte, 0, 8*len(seed))
	for _, it := range seed {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(it))
	}
	f.Add(buf, uint64(5))
	f.Fuzz(func(t *testing.T, data []byte, splitSeed uint64) {
		items := make(stream.Slice, 0, len(data)/8)
		for off := 0; off+8 <= len(data) && len(items) < 128; off += 8 {
			v := binary.LittleEndian.Uint64(data[off:])
			if v == 0 {
				v = 1 // items are 1-based
			}
			items = append(items, stream.Item(v))
		}
		if len(items) == 0 {
			return
		}
		// Derive a deterministic split pattern from splitSeed: sizes in
		// [1, 17], enough to land splits inside and across runs.
		sizes := make([]int, 4)
		s := splitSeed
		for i := range sizes {
			s = s*6364136223846793005 + 1442695040888963407
			sizes[i] = int(s>>33)%17 + 1
		}
		for _, stat := range estimator.Stats() {
			spec := equivSpec(stat)
			ref, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, it := range items {
				ref.Observe(it)
			}
			want, err := ref.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			e, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			feedBatches(e, items, sizes)
			got, err := e.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("kind %s, splits %v: batched state diverges from Observe state", stat, sizes)
			}
		}
	})
}

// TestBatchEquivalenceCoversRegistry fails when a newly registered
// constructible kind would silently skip the equivalence suite — the
// test above iterates Stats() live, so this is a tripwire against the
// registry and the suite drifting apart (e.g. a kind registered under a
// name the spec defaults cannot construct).
func TestBatchEquivalenceCoversRegistry(t *testing.T) {
	for _, stat := range estimator.Stats() {
		if _, err := estimator.New(equivSpec(stat)); err != nil {
			t.Errorf("constructible kind %q cannot be built with the equivalence spec: %v", stat, err)
		}
	}
	if len(estimator.Stats()) < 10 {
		t.Fatalf("registry lists only %d constructible kinds — registration imports missing?", len(estimator.Stats()))
	}
}
