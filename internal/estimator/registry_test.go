package estimator_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"substream/internal/estimator"
	"substream/internal/sketch"
	"substream/internal/stream"

	// Populate the registry with every standard kind; core pulls
	// levelset and sketch transitively.
	_ "substream/internal/core"
)

// --- a new estimator kind, registered from a single package ---
//
// demoF1 demonstrates the registry's extension contract: a complete new
// statistic — constructor, wire form, merge, reporting — defined entirely
// in this (test) package. Nothing in sketch, levelset, core, server, or
// the CLIs knows it exists, yet it constructs from a Spec, ships through
// Decode, and merges like every built-in kind. It estimates F1(P) = nL/p,
// the simplest statistic of a sub-sampled stream.

const demoTag byte = 0x70 // outside every package-owned range

type demoF1 struct {
	p  float64
	nL uint64
}

func (d *demoF1) Observe(stream.Item) { d.nL++ }

func (d *demoF1) UpdateBatch(items []stream.Item) { d.nL += uint64(len(items)) }

func (d *demoF1) Merge(other *demoF1) error { d.nL += other.nL; return nil }

func (d *demoF1) SpaceBytes() int { return 16 }

func (d *demoF1) Estimates() map[string]float64 {
	return map[string]float64{"f1": float64(d.nL) / d.p}
}

func (d *demoF1) MarshalBinary() ([]byte, error) {
	w := &sketch.Writer{}
	w.Header(demoTag)
	w.F64(d.p)
	w.U64(d.nL)
	return w.Bytes(), nil
}

func unmarshalDemoF1(data []byte) (*demoF1, error) {
	r := sketch.NewReader(data)
	r.Header(demoTag)
	p := r.F64()
	nL := r.U64()
	if r.Err() == nil && !(p > 0 && p <= 1) {
		r.Fail()
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return &demoF1{p: p, nL: nL}, nil
}

func init() {
	estimator.Register(estimator.Kind{
		Tag: demoTag, Name: "demo-f1",
		Doc: "demo kind: exact F1(P) from the sampled length (test-only)",
		New: func(s estimator.Spec) (estimator.Estimator, error) {
			return estimator.Adapt(&demoF1{p: s.P}), nil
		},
		Decode: estimator.DecodeTyped(unmarshalDemoF1),
	})
}

// demoSpec returns a spec usable by every registered kind.
func demoSpec(stat string) estimator.Spec {
	return estimator.Spec{
		Stat: stat, P: 0.5, K: 2, Epsilon: 0.2, Alpha: 0.05, Budget: 64, Seed: 7,
	}
}

// TestNewKindFromSinglePackage is the extension-story acceptance test:
// the kind registered above, with no edits anywhere else, runs the full
// agent/collector life cycle through registry entry points alone.
func TestNewKindFromSinglePackage(t *testing.T) {
	// Construct via the registry, as the daemon's stream builder would.
	a, err := estimator.New(demoSpec("demo-f1"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := estimator.New(demoSpec("demo-f1"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		a.Observe(stream.Item(i))
	}
	b.UpdateBatch(make([]stream.Item, 20))

	// Ship: encode on the agent, decode on the collector, merge.
	payload, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := estimator.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Merge(decoded); err != nil {
		t.Fatal(err)
	}
	if got := b.Estimates()["f1"]; got != 50/0.5 {
		t.Fatalf("merged f1 estimate = %v, want %v", got, 50/0.5)
	}
	// And it must refuse foreign kinds like every other estimator.
	foreign, err := estimator.New(demoSpec("f0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Merge(foreign); err == nil {
		t.Fatal("merging a foreign kind did not fail")
	}
}

// TestRegistryInvariants checks the global registry shape: unique tags
// and names (Register enforces this — the test documents it against the
// live set), package-owned tag ranges, and mandatory decoders.
func TestRegistryInvariants(t *testing.T) {
	kinds := estimator.Kinds()
	if len(kinds) < 17 {
		t.Fatalf("registry holds %d kinds, want at least the 17 standard ones", len(kinds))
	}
	tags := map[byte]string{}
	names := map[string]byte{}
	for _, k := range kinds {
		if prev, dup := tags[k.Tag]; dup {
			t.Errorf("tag %#x registered twice (%q and %q)", k.Tag, prev, k.Name)
		}
		if _, dup := names[k.Name]; dup {
			t.Errorf("name %q registered twice", k.Name)
		}
		tags[k.Tag] = k.Name
		names[k.Name] = k.Tag
		if k.Decode == nil {
			t.Errorf("kind %q has no decoder", k.Name)
		}
		if k.Doc == "" {
			t.Errorf("kind %q has no doc line", k.Name)
		}
	}
	for _, k := range kinds {
		if k.Tag >= 0x40 {
			continue // test-only kinds live outside the owned ranges
		}
		if k.Tag == 0 {
			t.Errorf("kind %q uses reserved tag 0x00", k.Name)
		}
	}
	stats := estimator.Stats()
	for i := 1; i < len(stats); i++ {
		if stats[i-1] >= stats[i] {
			t.Fatalf("Stats() not sorted/unique: %v", stats)
		}
	}
}

// TestRegisterRejectsConflicts proves duplicate registration is an init
// failure, not a silent overwrite.
func TestRegisterRejectsConflicts(t *testing.T) {
	for name, kind := range map[string]estimator.Kind{
		"duplicate tag":  {Tag: demoTag, Name: "demo-f1-copy", Decode: estimator.DecodeTyped(unmarshalDemoF1)},
		"duplicate name": {Tag: 0x71, Name: "demo-f1", Decode: estimator.DecodeTyped(unmarshalDemoF1)},
		"missing decode": {Tag: 0x72, Name: "demo-undecodable"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", name)
				}
			}()
			estimator.Register(kind)
		}()
	}
}

// TestEveryKindRoundTripsEncodeDecodeMerge drives every constructible
// kind through the life cycle the daemon relies on: build two replicas
// from one spec, feed both, encode one, decode it through the registry,
// merge it into the other, and re-encode the result. Estimates of a
// decoded summary must equal its source's — the wire form is the state.
func TestEveryKindRoundTripsEncodeDecodeMerge(t *testing.T) {
	for _, k := range estimator.Kinds() {
		if k.New == nil {
			continue
		}
		t.Run(k.Name, func(t *testing.T) {
			spec := demoSpec(k.Name)
			a, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := estimator.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			batch := make([]stream.Item, 512)
			for i := range batch {
				batch[i] = stream.Item(i%97 + 1)
			}
			a.UpdateBatch(batch)
			for i := 0; i < 256; i++ {
				b.Observe(stream.Item(i%31 + 1))
			}

			payload, err := a.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := estimator.Decode(payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			want := a.Estimates()
			got := decoded.Estimates()
			for name, v := range want {
				// Tolerate last-ulp drift: estimates that sum over maps
				// (entropy) accumulate in iteration order.
				if diff := math.Abs(got[name] - v); diff > 1e-9*math.Max(1, math.Abs(v)) {
					t.Errorf("decoded estimate %q = %v, want %v", name, got[name], v)
				}
			}
			if err := b.Merge(decoded); err != nil {
				t.Fatalf("merge decoded: %v", err)
			}
			if _, err := b.MarshalBinary(); err != nil {
				t.Fatalf("re-encode merged: %v", err)
			}
			if b.SpaceBytes() <= 0 {
				t.Fatal("merged summary reports non-positive space")
			}
		})
	}
}

// TestDecodeRejectsUnknownAndEmpty pins the single-entry-point decode
// behavior consumers depend on.
func TestDecodeRejectsUnknownAndEmpty(t *testing.T) {
	if _, err := estimator.Decode(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := estimator.Decode([]byte{0x6f, 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown payload tag") {
		t.Fatalf("unknown tag error = %v", err)
	}
	if _, err := estimator.New(estimator.Spec{Stat: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown stat") {
		t.Fatalf("unknown stat error = %v", err)
	}
}

// TestNewDecodeOnlyKind pins the distinct decode-only error: building a
// spec for a kind that only rides inside other payloads (TopK) must
// fail with ErrDecodeOnly, while unknown kinds must not.
func TestNewDecodeOnlyKind(t *testing.T) {
	_, err := estimator.New(demoSpec("topk"))
	if err == nil {
		t.Fatal("decode-only kind constructed")
	}
	if !errors.Is(err, estimator.ErrDecodeOnly) {
		t.Fatalf("topk construction error = %v, want errors.Is(_, ErrDecodeOnly)", err)
	}
	if !strings.Contains(err.Error(), "topk") {
		t.Fatalf("decode-only error does not name the kind: %v", err)
	}
	_, err = estimator.New(estimator.Spec{Stat: "nope"})
	if errors.Is(err, estimator.ErrDecodeOnly) {
		t.Fatalf("unknown kind mislabeled decode-only: %v", err)
	}

	// The table the CLIs print marks the same distinction.
	var out strings.Builder
	estimator.WriteKinds(&out)
	for _, line := range strings.Split(out.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "topk"):
			if !strings.Contains(line, "decode-only") {
				t.Errorf("topk row unmarked: %q", line)
			}
		case strings.HasPrefix(line, "f0"):
			if !strings.Contains(line, "stat") {
				t.Errorf("f0 row unmarked: %q", line)
			}
		}
	}
}
