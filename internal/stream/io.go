package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file provides the codecs the command-line tools use to move streams
// between processes: a human-readable text form (one decimal item per
// line) and a compact binary form (varint-encoded).

// WriteText writes s to w as one decimal item per line.
func WriteText(w io.Writer, s Stream) error {
	bw := bufio.NewWriter(w)
	err := s.ForEach(func(it Item) error {
		if _, err := bw.WriteString(strconv.FormatUint(uint64(it), 10)); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses a one-item-per-line text stream. Blank lines are
// skipped; any other parse failure is an error.
func ReadText(r io.Reader) (Slice, error) {
	var out Slice
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		v, err := strconv.ParseUint(txt, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("stream: line %d: item 0 is outside the 1-based universe", line)
		}
		out = append(out, Item(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteWeightedText writes s as one "key weight" pair per line, the
// weighted extension of the text form. The weight column is always
// present on output; ReadWeightedText also accepts weightless lines
// (implying weight 1), so unweighted files remain valid weighted input.
func WriteWeightedText(w io.Writer, s WSlice) error {
	bw := bufio.NewWriter(w)
	for _, it := range s {
		if _, err := bw.WriteString(strconv.FormatUint(uint64(it.Key), 10)); err != nil {
			return err
		}
		if err := bw.WriteByte(' '); err != nil {
			return err
		}
		if _, err := bw.WriteString(strconv.FormatFloat(it.Weight, 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWeightedText parses the weighted text form: one "key weight" pair
// per line, the weight column optional (default 1) so plain unweighted
// files parse too. Blank lines are skipped; zero keys and non-positive
// or non-finite weights are errors.
func ReadWeightedText(r io.Reader) (WSlice, error) {
	var out WSlice
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		keyTxt, wTxt := txt, ""
		if i := strings.IndexByte(txt, ' '); i >= 0 {
			keyTxt, wTxt = txt[:i], txt[i+1:]
		}
		v, err := strconv.ParseUint(keyTxt, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("stream: line %d: key 0 is outside the 1-based universe", line)
		}
		weight := 1.0
		if wTxt != "" {
			weight, err = strconv.ParseFloat(wTxt, 64)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d: bad weight: %w", line, err)
			}
			if !(weight > 0) || math.IsInf(weight, 0) {
				return nil, fmt.Errorf("stream: line %d: weight %v is not positive and finite", line, weight)
			}
		}
		out = append(out, WItem{Key: Item(v), Weight: weight})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// binaryMagic identifies the binary stream format; bumping the version
// byte invalidates old files loudly instead of misparsing them.
var binaryMagic = [4]byte{'s', 'u', 'b', '1'}

// WriteBinary writes s to w in the compact binary format: a 4-byte magic,
// a varint length, then varint items.
func WriteBinary(w io.Writer, s Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(s.Len()))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	err := s.ForEach(func(it Item) error {
		n := binary.PutUvarint(buf[:], uint64(it))
		_, err := bw.Write(buf[:n])
		return err
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the binary stream format produced by WriteBinary.
func ReadBinary(r io.Reader) (Slice, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("stream: bad magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading length: %w", err)
	}
	const maxReasonable = 1 << 34
	if count > maxReasonable {
		return nil, fmt.Errorf("stream: declared length %d exceeds limit", count)
	}
	out := make(Slice, 0, count)
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: reading item %d: %w", i, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("stream: item %d is 0, outside the 1-based universe", i)
		}
		out = append(out, Item(v))
	}
	return out, nil
}

// weightedMagic identifies the weighted binary stream format: the "sub1"
// varint format plus a fixed 8-byte IEEE-754 weight after each key. A
// distinct magic keeps old readers failing loudly on weighted files (and
// vice versa) instead of misparsing the weight bytes as items.
var weightedMagic = [4]byte{'s', 'u', 'b', 'w'}

// WriteWeightedBinary writes s in the weighted binary format: magic,
// varint count, then per item a varint key and a fixed little-endian
// float64 weight.
func WriteWeightedBinary(w io.Writer, s WSlice) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(weightedMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	var wbuf [8]byte
	for _, it := range s {
		n := binary.PutUvarint(buf[:], uint64(it.Key))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(wbuf[:], math.Float64bits(it.Weight))
		if _, err := bw.Write(wbuf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWeightedBinary parses the weighted binary format produced by
// WriteWeightedBinary.
func ReadWeightedBinary(r io.Reader) (WSlice, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if magic != weightedMagic {
		return nil, fmt.Errorf("stream: bad weighted magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading length: %w", err)
	}
	const maxReasonable = 1 << 34
	if count > maxReasonable {
		return nil, fmt.Errorf("stream: declared length %d exceeds limit", count)
	}
	out := make(WSlice, 0, count)
	var wbuf [8]byte
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: reading key %d: %w", i, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("stream: key %d is 0, outside the 1-based universe", i)
		}
		if _, err := io.ReadFull(br, wbuf[:]); err != nil {
			return nil, fmt.Errorf("stream: reading weight %d: %w", i, err)
		}
		weight := math.Float64frombits(binary.LittleEndian.Uint64(wbuf[:]))
		if !(weight > 0) || math.IsInf(weight, 0) {
			return nil, fmt.Errorf("stream: weight %d (%v) is not positive and finite", i, weight)
		}
		out = append(out, WItem{Key: Item(v), Weight: weight})
	}
	return out, nil
}
