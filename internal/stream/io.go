package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
)

// This file provides the codecs the command-line tools use to move streams
// between processes: a human-readable text form (one decimal item per
// line) and a compact binary form (varint-encoded).

// WriteText writes s to w as one decimal item per line.
func WriteText(w io.Writer, s Stream) error {
	bw := bufio.NewWriter(w)
	err := s.ForEach(func(it Item) error {
		if _, err := bw.WriteString(strconv.FormatUint(uint64(it), 10)); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses a one-item-per-line text stream. Blank lines are
// skipped; any other parse failure is an error.
func ReadText(r io.Reader) (Slice, error) {
	var out Slice
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		v, err := strconv.ParseUint(txt, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("stream: line %d: item 0 is outside the 1-based universe", line)
		}
		out = append(out, Item(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// binaryMagic identifies the binary stream format; bumping the version
// byte invalidates old files loudly instead of misparsing them.
var binaryMagic = [4]byte{'s', 'u', 'b', '1'}

// WriteBinary writes s to w in the compact binary format: a 4-byte magic,
// a varint length, then varint items.
func WriteBinary(w io.Writer, s Stream) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(s.Len()))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	err := s.ForEach(func(it Item) error {
		n := binary.PutUvarint(buf[:], uint64(it))
		_, err := bw.Write(buf[:n])
		return err
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the binary stream format produced by WriteBinary.
func ReadBinary(r io.Reader) (Slice, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("stream: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("stream: bad magic %q", magic[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("stream: reading length: %w", err)
	}
	const maxReasonable = 1 << 34
	if count > maxReasonable {
		return nil, fmt.Errorf("stream: declared length %d exceeds limit", count)
	}
	out := make(Slice, 0, count)
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("stream: reading item %d: %w", i, err)
		}
		if v == 0 {
			return nil, fmt.Errorf("stream: item %d is 0, outside the 1-based universe", i)
		}
		out = append(out, Item(v))
	}
	return out, nil
}
