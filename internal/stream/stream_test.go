package stream

import (
	"errors"
	"testing"
)

func TestSliceStream(t *testing.T) {
	s := Slice{1, 2, 2, 3}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	var got []Item
	if err := s.ForEach(func(it Item) error {
		got = append(got, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 1 || got[3] != 3 {
		t.Fatalf("ForEach order wrong: %v", got)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	s := Slice{1, 2, 3}
	sentinel := errors.New("boom")
	count := 0
	err := s.ForEach(func(it Item) error {
		count++
		if it == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error not propagated: %v", err)
	}
	if count != 2 {
		t.Fatalf("iteration did not stop early: %d calls", count)
	}
}

func TestFuncStream(t *testing.T) {
	f := Func{
		N: 3,
		Gen: func(emit func(Item) error) error {
			for i := Item(1); i <= 3; i++ {
				if err := emit(i); err != nil {
					return err
				}
			}
			return nil
		},
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	got := Collect(f)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("Collect = %v", got)
	}
	// Replayable: a second pass sees the same items.
	again := Collect(f)
	if len(again) != 3 || again[0] != got[0] {
		t.Fatalf("Func stream not replayable: %v vs %v", again, got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Slice{1, 5, 10}, 10); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
	if err := Validate(Slice{1, 11}, 10); err == nil {
		t.Fatal("item above universe accepted")
	}
	if err := Validate(Slice{0}, 10); err == nil {
		t.Fatal("item 0 accepted")
	}
	if err := Validate(Slice{}, 10); err != nil {
		t.Fatalf("empty stream rejected: %v", err)
	}
}

func TestCollectEmpty(t *testing.T) {
	got := Collect(Slice{})
	if len(got) != 0 {
		t.Fatalf("Collect(empty) = %v", got)
	}
}
