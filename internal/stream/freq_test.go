package stream

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestFreqBasic(t *testing.T) {
	f := NewFreq(Slice{1, 2, 2, 3, 3, 3})
	if f.F0() != 3 {
		t.Fatalf("F0 = %d, want 3", f.F0())
	}
	if f.F1() != 6 {
		t.Fatalf("F1 = %d, want 6", f.F1())
	}
	if got := f.Fk(2); got != 1+4+9 {
		t.Fatalf("F2 = %v, want 14", got)
	}
	if got := f.Fk(3); got != 1+8+27 {
		t.Fatalf("F3 = %v, want 36", got)
	}
}

func TestFreqEmpty(t *testing.T) {
	f := NewFreq(Slice{})
	if f.F0() != 0 || f.F1() != 0 || f.Fk(2) != 0 || f.Entropy() != 0 {
		t.Fatalf("empty stream stats nonzero: %+v", f)
	}
}

func TestEntropyUniform(t *testing.T) {
	// 8 items once each: entropy = 3 bits.
	s := Slice{1, 2, 3, 4, 5, 6, 7, 8}
	if got := NewFreq(s).Entropy(); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("uniform entropy = %v, want 3", got)
	}
}

func TestEntropyConstant(t *testing.T) {
	s := Slice{5, 5, 5, 5}
	if got := NewFreq(s).Entropy(); got != 0 {
		t.Fatalf("constant-stream entropy = %v, want 0", got)
	}
}

func TestEntropyTwoPoint(t *testing.T) {
	// Frequencies (3, 1): H = 3/4·lg(4/3) + 1/4·lg 4.
	s := Slice{1, 1, 1, 2}
	want := 0.75*math.Log2(4.0/3) + 0.25*2
	if got := NewFreq(s).Entropy(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("entropy = %v, want %v", got, want)
	}
}

func TestEntropyMaximalForUniform(t *testing.T) {
	// Property: for any frequency vector on d items, H ≤ lg d.
	f := func(counts [6]uint8) bool {
		s := Slice{}
		d := 0
		for i, c := range counts {
			if c == 0 {
				continue
			}
			d++
			for j := 0; j < int(c); j++ {
				s = append(s, Item(i+1))
			}
		}
		if d == 0 {
			return true
		}
		h := NewFreq(s).Entropy()
		return h <= math.Log2(float64(d))+1e-9 && h >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCollisions(t *testing.T) {
	// Frequencies: 4, 2, 1. C2 = 6+1+0 = 7; C3 = 4; C4 = 1; C5 = 0.
	s := Slice{1, 1, 1, 1, 2, 2, 3}
	f := NewFreq(s)
	for _, c := range []struct {
		l    int
		want float64
	}{{1, 7}, {2, 7}, {3, 4}, {4, 1}, {5, 0}} {
		if got := f.Collisions(c.l); got != c.want {
			t.Fatalf("C%d = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestCollisionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Collisions(0) did not panic")
		}
	}()
	NewFreq(Slice{1}).Collisions(0)
}

func TestBinomialCoeff(t *testing.T) {
	cases := []struct {
		n    uint64
		k    int
		want float64
	}{
		{5, 2, 10}, {5, 0, 1}, {5, 5, 1}, {4, 5, 0}, {0, 0, 1},
		{10, 3, 120}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := BinomialCoeff(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialCoeffPascal(t *testing.T) {
	// Property: Pascal's identity C(n,k) = C(n−1,k−1) + C(n−1,k).
	f := func(nRaw, kRaw uint8) bool {
		n := uint64(nRaw%40) + 1
		k := int(kRaw%10) + 1
		lhs := BinomialCoeff(n, k)
		rhs := BinomialCoeff(n-1, k-1) + BinomialCoeff(n-1, k)
		return almostEqual(lhs, rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialCoeffFloatMatchesInteger(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := uint64(nRaw % 50)
		k := int(kRaw % 8)
		return almostEqual(BinomialCoeffFloat(float64(n), k), BinomialCoeff(n, k), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialCoeffFloatClamp(t *testing.T) {
	// Below k−1 the value clamps to 0 (no k-collisions possible there);
	// between k−1 and k the generalized coefficient is fractional — this
	// is what keeps the banded collision estimate from dropping whole
	// bands whose representative sits just under an integer frequency.
	if got := BinomialCoeffFloat(0.9, 2); got != 0 {
		t.Fatalf("C(0.9, 2) = %v, want 0 (clamped)", got)
	}
	if got := BinomialCoeffFloat(1.0, 2); got != 0 {
		t.Fatalf("C(1.0, 2) = %v, want 0", got)
	}
	if got := BinomialCoeffFloat(1.96, 2); !almostEqual(got, 1.96*0.96/2, 1e-12) {
		t.Fatalf("C(1.96, 2) = %v, want %v", got, 1.96*0.96/2)
	}
	if got := BinomialCoeffFloat(2.5, 2); !almostEqual(got, 2.5*1.5/2, 1e-12) {
		t.Fatalf("C(2.5, 2) = %v", got)
	}
}

func TestFkHeavyHitters(t *testing.T) {
	// Frequencies: item 1 → 50, item 2 → 30, items 3..22 → 1 each.
	var s Slice
	for i := 0; i < 50; i++ {
		s = append(s, 1)
	}
	for i := 0; i < 30; i++ {
		s = append(s, 2)
	}
	for i := Item(3); i <= 22; i++ {
		s = append(s, i)
	}
	f := NewFreq(s)
	n := float64(f.F1()) // 100
	// α = 0.3: threshold 30 → items 1 and 2.
	hh := f.FkHeavyHitters(1, 0.3)
	if len(hh) != 2 || hh[0].Item != 1 || hh[1].Item != 2 {
		t.Fatalf("F1 HH = %+v", hh)
	}
	// α = 0.4: threshold 40 → only item 1.
	hh = f.FkHeavyHitters(1, 0.4)
	if len(hh) != 1 || hh[0].Item != 1 || hh[0].Freq != 50 {
		t.Fatalf("F1 HH = %+v", hh)
	}
	// F2 threshold: sqrt(F2) = sqrt(2500+900+20).
	sqrtF2 := math.Sqrt(f.Fk(2))
	alpha := 29.9 / sqrtF2
	hh = f.FkHeavyHitters(2, alpha)
	if len(hh) != 2 {
		t.Fatalf("F2 HH with α=%v: %+v (sqrtF2=%v, n=%v)", alpha, hh, sqrtF2, n)
	}
}

func TestTopK(t *testing.T) {
	f := NewFreq(Slice{1, 1, 1, 2, 2, 3, 4, 4})
	top := f.TopK(2)
	if len(top) != 2 || top[0].Item != 1 || top[0].Freq != 3 {
		t.Fatalf("TopK = %+v", top)
	}
	// Tie between 2 and 4 (freq 2): lower item id first.
	if top[1].Item != 2 {
		t.Fatalf("TopK tie-break wrong: %+v", top)
	}
	if got := f.TopK(100); len(got) != 4 {
		t.Fatalf("TopK over-size = %+v", got)
	}
}

func TestProfile(t *testing.T) {
	f := NewFreq(Slice{1, 1, 1, 2, 2, 3, 4})
	prof := f.Profile()
	if prof[1] != 2 || prof[2] != 1 || prof[3] != 1 {
		t.Fatalf("Profile = %v", prof)
	}
	// Identity: Σ j·profile[j] = n and Σ profile[j] = F0.
	var n, d uint64
	for j, c := range prof {
		n += j * c
		d += c
	}
	if n != f.F1() || d != f.F0() {
		t.Fatalf("profile identities violated: n=%d F1=%d d=%d F0=%d", n, f.F1(), d, f.F0())
	}
}

func TestMaxFreqAndResidual(t *testing.T) {
	f := NewFreq(Slice{1, 1, 1, 2, 2, 3})
	if f.MaxFreq() != 3 {
		t.Fatalf("MaxFreq = %d", f.MaxFreq())
	}
	if got := f.Residual(1); got != 3 {
		t.Fatalf("Residual(1) = %d, want 3", got)
	}
	if got := f.Residual(0); got != 6 {
		t.Fatalf("Residual(0) = %d, want 6", got)
	}
	if got := f.Residual(10); got != 0 {
		t.Fatalf("Residual(10) = %d, want 0", got)
	}
}

func TestComputeExact(t *testing.T) {
	s := Slice{1, 2, 2, 3, 3, 3}
	ex := ComputeExact(s)
	if ex.N != 6 || ex.F0 != 3 || ex.F2 != 14 || ex.F3 != 36 || ex.F4 != 1+16+81 {
		t.Fatalf("ComputeExact = %+v", ex)
	}
	want := NewFreq(s).Entropy()
	if !almostEqual(ex.Entropy, want, 1e-12) {
		t.Fatalf("entropy %v, want %v", ex.Entropy, want)
	}
}

// TestMomentMonotonicity checks F_i ≤ F_j for i ≤ j (used by Lemma 4's
// proof), which holds for any frequency vector with integer frequencies
// ≥ 1... specifically F_i(P) ≤ F_j(P) when i ≤ j since f ≥ 1 termwise.
func TestMomentMonotonicity(t *testing.T) {
	f := func(counts [8]uint8) bool {
		s := Slice{}
		for i, c := range counts {
			for j := 0; j < int(c%20); j++ {
				s = append(s, Item(i+1))
			}
		}
		fr := NewFreq(s)
		prev := fr.Fk(1)
		for k := 2; k <= 5; k++ {
			cur := fr.Fk(k)
			if cur+1e-9 < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
