package stream

import (
	"bytes"
	"testing"
)

// Native fuzz targets: under plain `go test` these run their seed corpus;
// under `go test -fuzz` they explore. Parsers must never panic and
// accepted inputs must round-trip.

func FuzzReadText(f *testing.F) {
	f.Add([]byte("1\n2\n3\n"))
	f.Add([]byte(""))
	f.Add([]byte("999999999999999999\n"))
	f.Add([]byte("0\n"))
	f.Add([]byte("-1\n"))
	f.Add([]byte("abc\n1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted stream: every item valid and re-encodable.
		var buf bytes.Buffer
		if err := WriteText(&buf, s); err != nil {
			t.Fatalf("accepted stream failed to encode: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(s) {
			t.Fatalf("round trip length %d != %d", len(back), len(s))
		}
		for i := range s {
			if s[i] == 0 {
				t.Fatal("parser accepted item 0")
			}
			if back[i] != s[i] {
				t.Fatalf("round trip changed item %d", i)
			}
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, Slice{1, 2, 3, 1 << 40})
	f.Add(seed.Bytes())
	f.Add([]byte("sub1"))
	f.Add([]byte(""))
	f.Add([]byte("nope1234"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, s); err != nil {
			t.Fatalf("accepted stream failed to encode: %v", err)
		}
		back, err := ReadBinary(&buf)
		if err != nil || len(back) != len(s) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(back), len(s))
		}
	})
}
