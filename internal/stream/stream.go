// Package stream defines the data model of the library — streams of items
// over the universe [m] — together with exact reference computations of
// every statistic the paper studies (frequency moments, distinct count,
// entropy, collisions, heavy hitters).
//
// Terminology follows the paper: the original stream is P = <a_1 … a_n>
// with a_i ∈ {1, …, m}; the sampled stream L contains each a_i
// independently with probability p. Exact statistics computed here are the
// ground truth every estimator is judged against.
package stream

import (
	"errors"
	"fmt"
)

// Item is a stream element: an identifier in the universe {1, …, m}.
// The zero value is reserved (identifiers are 1-based, as in the paper),
// which lets maps and codecs use 0 as a sentinel.
type Item uint64

// Stream is a finite sequence of items that can be replayed from the
// start. Replayability is what lets the experiment harness compute exact
// ground truth on P and then feed the same P through a sampler.
type Stream interface {
	// Len returns the number of items (the paper's n).
	Len() int
	// ForEach calls fn on every item in order. It stops early and
	// returns the callback's error if fn returns non-nil.
	ForEach(fn func(Item) error) error
}

// Slice is an in-memory Stream backed by a slice.
type Slice []Item

// Len returns the number of items.
func (s Slice) Len() int { return len(s) }

// ForEach calls fn on each item in order.
func (s Slice) ForEach(fn func(Item) error) error {
	for _, it := range s {
		if err := fn(it); err != nil {
			return err
		}
	}
	return nil
}

// Func adapts a generator function into a Stream. The generator is invoked
// once per ForEach call with an emit callback; n is the declared length.
// It is how workload generators expose unbounded-size streams without
// materializing them.
type Func struct {
	N   int
	Gen func(emit func(Item) error) error
}

// Len returns the declared stream length.
func (f Func) Len() int { return f.N }

// ForEach runs the generator, forwarding each emitted item to fn.
func (f Func) ForEach(fn func(Item) error) error {
	return f.Gen(fn)
}

// ErrStop is a sentinel a ForEach callback can return to stop iteration
// early without reporting a failure. Consumers that stop early should
// translate ErrStop to nil.
var ErrStop = errors.New("stream: stop iteration")

// Collect materializes a stream into a Slice.
func Collect(s Stream) Slice {
	out := make(Slice, 0, s.Len())
	_ = s.ForEach(func(it Item) error {
		out = append(out, it)
		return nil
	})
	return out
}

// Validate checks that every item of s lies in {1, …, m}; it returns a
// descriptive error for the first violation.
func Validate(s Stream, m uint64) error {
	idx := 0
	err := s.ForEach(func(it Item) error {
		if it == 0 || uint64(it) > m {
			return fmt.Errorf("stream: item %d at position %d outside universe [1,%d]", it, idx, m)
		}
		idx++
		return nil
	})
	return err
}
