// Package stream defines the data model of the library — streams of items
// over the universe [m] — together with exact reference computations of
// every statistic the paper studies (frequency moments, distinct count,
// entropy, collisions, heavy hitters).
//
// Terminology follows the paper: the original stream is P = <a_1 … a_n>
// with a_i ∈ {1, …, m}; the sampled stream L contains each a_i
// independently with probability p. Exact statistics computed here are the
// ground truth every estimator is judged against.
package stream

import (
	"errors"
	"fmt"
	"math"
)

// Item is a stream element: an identifier in the universe {1, …, m}.
// The zero value is reserved (identifiers are 1-based, as in the paper),
// which lets maps and codecs use 0 as a sentinel.
type Item uint64

// WItem is one element of a weighted stream: a key in the universe
// {1, …, m} carrying a positive weight (bytes per packet, dollars per
// event). A weight of 1 on every item recovers the unweighted model
// exactly, which is the compatibility contract every weighted code path
// in the library preserves.
type WItem struct {
	Key    Item
	Weight float64
}

// WSlice is an in-memory weighted stream backed by a slice.
type WSlice []WItem

// Len returns the number of weighted items.
func (s WSlice) Len() int { return len(s) }

// TotalWeight returns the sum of the weights — the weighted stream's
// analogue of the length n.
func (s WSlice) TotalWeight() float64 {
	var total float64
	for _, it := range s {
		total += it.Weight
	}
	return total
}

// Keys projects the weighted stream onto its key sequence, dropping the
// weights.
func (s WSlice) Keys() Slice {
	out := make(Slice, len(s))
	for i, it := range s {
		out[i] = it.Key
	}
	return out
}

// Lift turns an unweighted stream into the equivalent weighted one:
// every item carries weight 1.
func Lift(items Slice) WSlice {
	out := make(WSlice, len(items))
	for i, it := range items {
		out[i] = WItem{Key: it, Weight: 1}
	}
	return out
}

// ValidateWeighted checks that every key of s lies in {1, …, m} and every
// weight is positive and finite.
func ValidateWeighted(s WSlice, m uint64) error {
	for i, it := range s {
		if it.Key == 0 || uint64(it.Key) > m {
			return fmt.Errorf("stream: key %d at position %d outside universe [1,%d]", it.Key, i, m)
		}
		if !(it.Weight > 0) || math.IsInf(it.Weight, 0) {
			return fmt.Errorf("stream: weight %v at position %d is not positive and finite", it.Weight, i)
		}
	}
	return nil
}

// Stream is a finite sequence of items that can be replayed from the
// start. Replayability is what lets the experiment harness compute exact
// ground truth on P and then feed the same P through a sampler.
type Stream interface {
	// Len returns the number of items (the paper's n).
	Len() int
	// ForEach calls fn on every item in order. It stops early and
	// returns the callback's error if fn returns non-nil.
	ForEach(fn func(Item) error) error
}

// Slice is an in-memory Stream backed by a slice.
type Slice []Item

// Len returns the number of items.
func (s Slice) Len() int { return len(s) }

// ForEach calls fn on each item in order.
func (s Slice) ForEach(fn func(Item) error) error {
	for _, it := range s {
		if err := fn(it); err != nil {
			return err
		}
	}
	return nil
}

// Func adapts a generator function into a Stream. The generator is invoked
// once per ForEach call with an emit callback; n is the declared length.
// It is how workload generators expose unbounded-size streams without
// materializing them.
type Func struct {
	N   int
	Gen func(emit func(Item) error) error
}

// Len returns the declared stream length.
func (f Func) Len() int { return f.N }

// ForEach runs the generator, forwarding each emitted item to fn.
func (f Func) ForEach(fn func(Item) error) error {
	return f.Gen(fn)
}

// ErrStop is a sentinel a ForEach callback can return to stop iteration
// early without reporting a failure. Consumers that stop early should
// translate ErrStop to nil.
var ErrStop = errors.New("stream: stop iteration")

// Collect materializes a stream into a Slice.
func Collect(s Stream) Slice {
	out := make(Slice, 0, s.Len())
	_ = s.ForEach(func(it Item) error {
		out = append(out, it)
		return nil
	})
	return out
}

// Validate checks that every item of s lies in {1, …, m}; it returns a
// descriptive error for the first violation.
func Validate(s Stream, m uint64) error {
	idx := 0
	err := s.ForEach(func(it Item) error {
		if it == 0 || uint64(it) > m {
			return fmt.Errorf("stream: item %d at position %d outside universe [1,%d]", it, idx, m)
		}
		idx++
		return nil
	})
	return err
}
