package stream

import (
	"math"
	"sort"
)

// Freq is an exact frequency vector: item → number of occurrences.
// It is the ground-truth representation; estimators never get to see it.
type Freq map[Item]uint64

// NewFreq computes the exact frequency vector of a stream.
func NewFreq(s Stream) Freq {
	f := make(Freq)
	_ = s.ForEach(func(it Item) error {
		f[it]++
		return nil
	})
	return f
}

// F0 returns the number of distinct items (the support size).
func (f Freq) F0() uint64 { return uint64(len(f)) }

// F1 returns the stream length n = Σ f_i.
func (f Freq) F1() uint64 {
	var n uint64
	for _, c := range f {
		n += c
	}
	return n
}

// Fk returns the k-th frequency moment Σ f_i^k as a float64. k must be
// ≥ 0; F(0) counts distinct items with the convention 0^0 = 0 (absent
// items contribute nothing since they are not stored).
func (f Freq) Fk(k int) float64 {
	if k < 0 {
		panic("stream: Fk with negative k")
	}
	var total float64
	for _, c := range f {
		total += math.Pow(float64(c), float64(k))
	}
	return total
}

// Entropy returns the empirical Shannon entropy of the frequency
// distribution in bits: H(f) = Σ (f_i/n)·lg(n/f_i). An empty vector has
// entropy 0.
func (f Freq) Entropy() float64 {
	n := float64(f.F1())
	if n == 0 {
		return 0
	}
	var h float64
	for _, c := range f {
		q := float64(c) / n
		h -= q * math.Log2(q)
	}
	// Guard against -0 from a single-item stream.
	if h <= 0 {
		return 0
	}
	return h
}

// Collisions returns C_ℓ = Σ_i C(f_i, ℓ), the number of ℓ-wise collisions
// (Definition 2 of the paper), as a float64. It panics if ℓ < 1.
func (f Freq) Collisions(l int) float64 {
	if l < 1 {
		panic("stream: Collisions with l < 1")
	}
	var total float64
	for _, c := range f {
		total += BinomialCoeff(c, l)
	}
	return total
}

// BinomialCoeff returns C(n, k) as a float64, 0 when n < k.
func BinomialCoeff(n uint64, k int) float64 {
	if uint64(k) > n {
		return 0
	}
	// Multiply incrementally to stay in range: C(n,k) = Π (n-k+i)/i.
	result := 1.0
	for i := 1; i <= k; i++ {
		result = result * float64(n-uint64(k)+uint64(i)) / float64(i)
	}
	return result
}

// BinomialCoeffFloat returns the generalized binomial coefficient
// C(x, k) = x(x−1)…(x−k+1)/k! for real x, which the level-set collision
// estimator evaluates at non-integer band representatives η(1+ε')^i.
// For x ≤ k−1 it returns 0: a band whose representative is that low
// holds frequencies contributing no k-collisions (and the raw product
// would be negative or oscillating there).
func BinomialCoeffFloat(x float64, k int) float64 {
	if x <= float64(k-1) {
		return 0
	}
	result := 1.0
	for i := 0; i < k; i++ {
		result *= (x - float64(i)) / float64(i+1)
	}
	return result
}

// HeavyHitter describes a ground-truth heavy hitter: an item and its exact
// frequency.
type HeavyHitter struct {
	Item Item
	Freq uint64
}

// FkHeavyHitters returns all items with f_i ≥ α·F_k^(1/k), sorted by
// decreasing frequency (ties by increasing item). k ∈ {1, 2} are the cases
// the paper studies, but any k ≥ 1 works.
func (f Freq) FkHeavyHitters(k int, alpha float64) []HeavyHitter {
	threshold := alpha * math.Pow(f.Fk(k), 1/float64(k))
	var out []HeavyHitter
	for it, c := range f {
		if float64(c) >= threshold {
			out = append(out, HeavyHitter{Item: it, Freq: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// TopK returns the k most frequent items (all items if fewer), sorted by
// decreasing frequency, ties by increasing item.
func (f Freq) TopK(k int) []HeavyHitter {
	all := make([]HeavyHitter, 0, len(f))
	for it, c := range f {
		all = append(all, HeavyHitter{Item: it, Freq: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Freq != all[j].Freq {
			return all[i].Freq > all[j].Freq
		}
		return all[i].Item < all[j].Item
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Profile returns the frequency-of-frequencies profile: profile[j] is the
// number of distinct items occurring exactly j times, for j ≥ 1. It is
// the sufficient statistic for sample-based F0 estimators such as GEE.
func (f Freq) Profile() map[uint64]uint64 {
	prof := make(map[uint64]uint64)
	for _, c := range f {
		prof[c]++
	}
	return prof
}

// MaxFreq returns the largest frequency, 0 for an empty vector.
func (f Freq) MaxFreq() uint64 {
	var max uint64
	for _, c := range f {
		if c > max {
			max = c
		}
	}
	return max
}

// Residual returns F1 minus the total frequency of the top-k items, the
// "tail mass" used when reasoning about heavy-hitter error bounds.
func (f Freq) Residual(k int) uint64 {
	top := f.TopK(k)
	total := f.F1()
	for _, hh := range top {
		total -= hh.Freq
	}
	return total
}

// ExactStats bundles the statistics of one stream so experiments compute
// ground truth once per workload.
type ExactStats struct {
	N       uint64  // F1: stream length
	F0      uint64  // distinct items
	F2      float64 // second moment
	F3      float64
	F4      float64
	Entropy float64 // bits
}

// ComputeExact materializes the frequency vector of s and summarizes it.
func ComputeExact(s Stream) ExactStats {
	f := NewFreq(s)
	return ExactStats{
		N:       f.F1(),
		F0:      f.F0(),
		F2:      f.Fk(2),
		F3:      f.Fk(3),
		F4:      f.Fk(4),
		Entropy: f.Entropy(),
	}
}
