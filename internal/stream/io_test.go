package stream

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	s := Slice{1, 42, 7, 1 << 40}
	var buf bytes.Buffer
	if err := WriteText(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("round trip length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("item %d: %d != %d", i, got[i], s[i])
		}
	}
}

func TestReadTextSkipsBlankLines(t *testing.T) {
	got, err := ReadText(strings.NewReader("1\n\n2\n\n\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("1\nxyz\n")); err == nil {
		t.Fatal("non-numeric line accepted")
	}
	if _, err := ReadText(strings.NewReader("0\n")); err == nil {
		t.Fatal("item 0 accepted")
	}
	if _, err := ReadText(strings.NewReader("-5\n")); err == nil {
		t.Fatal("negative item accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := Slice{1, 2, 3, 1 << 50, 9999999}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("item %d mismatch", i)
		}
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Slice{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("nope....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	s := Slice{1, 2, 3}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func TestBinaryRejectsZeroItem(t *testing.T) {
	// Hand-build a stream containing item 0.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.WriteByte(1) // count = 1
	buf.WriteByte(0) // item = 0
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("item 0 accepted")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		s := make(Slice, 0, len(raw))
		for _, v := range raw {
			s = append(s, Item(uint64(v)+1)) // keep 1-based
		}
		var tb, bb bytes.Buffer
		if err := WriteText(&tb, s); err != nil {
			return false
		}
		if err := WriteBinary(&bb, s); err != nil {
			return false
		}
		t1, err := ReadText(&tb)
		if err != nil {
			return false
		}
		t2, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		if len(t1) != len(s) || len(t2) != len(s) {
			return false
		}
		for i := range s {
			if t1[i] != s[i] || t2[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
