package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"mime"
	"strings"
	"sync"

	"substream/internal/stream"
)

// Ingest body formats. Text is one decimal item per line (blank lines
// skipped); binary is fixed 8-byte little-endian items, the
// length-delimited fast path a forwarding monitor would use.
const (
	ContentTypeText   = "text/plain"
	ContentTypeBinary = "application/octet-stream"
)

// binaryChunkItems is the number of items decoded per pooled chunk: a
// 64 KiB read buffer's worth, matching the old one-shot scratch size
// while bounding per-request memory to one chunk regardless of body
// size.
const binaryChunkItems = 8192

// The binary ingest path recycles its working memory across requests:
// one read scratch buffer and one decoded-items buffer per in-flight
// request, drawn from pools so steady-state decoding allocates nothing.
// Both pools hold pointers (not slices) so Get/Put round trips stay
// allocation-free.
var (
	scratchPool = sync.Pool{New: func() any {
		b := make([]byte, 8*binaryChunkItems)
		return &b
	}}
	itemsPool = sync.Pool{New: func() any {
		s := make(stream.Slice, 0, binaryChunkItems)
		return &s
	}}
)

// parseIngestType normalizes an ingest request's Content-Type: empty and
// text/* select the text format, ContentTypeBinary the binary one.
func parseIngestType(contentType string) (binary bool, err error) {
	ct := contentType
	if ct != "" {
		if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
			ct = parsed
		}
	}
	switch {
	case ct == "" || strings.HasPrefix(ct, "text/"):
		return false, nil
	case ct == ContentTypeBinary:
		return true, nil
	default:
		return false, fmt.Errorf("unsupported content type %q (want %s or %s)",
			contentType, ContentTypeText, ContentTypeBinary)
	}
}

// decodeTextItems parses a text ingest body into a materialized slice.
// The line-oriented format is the debugging convenience path; the binary
// format is the throughput path and streams instead.
func decodeTextItems(body io.Reader) (stream.Slice, error) {
	return stream.ReadText(body)
}

// decodeBinaryStream reads fixed 8-byte little-endian items and hands
// them to sink in chunks of at most binaryChunkItems, without ever
// materializing the request: working memory is one pooled scratch buffer
// plus one pooled item buffer, both recycled afterwards, so the steady
// state allocates nothing. sink owns its argument only for the duration
// of the call (the buffer is reused for the next chunk). Returns how
// many items reached the sink; on a mid-body error (zero item,
// truncated record, read failure) chunks already handed to sink stay
// consumed — HTTP cannot roll them back — and the count says how many.
func decodeBinaryStream(body io.Reader, sink func(stream.Slice)) (int, error) {
	bufp := scratchPool.Get().(*[]byte)
	itemsp := itemsPool.Get().(*stream.Slice)
	total, err := decodeBinaryChunks(body, *bufp, (*itemsp)[:0], sink)
	scratchPool.Put(bufp)
	itemsPool.Put(itemsp)
	return total, err
}

func decodeBinaryChunks(body io.Reader, buf []byte, items stream.Slice, sink func(stream.Slice)) (int, error) {
	total := 0
	fill := 0 // bytes of a partial trailing record carried between reads
	for {
		n, err := io.ReadFull(body, buf[fill:])
		n += fill
		complete := n - n%8
		items = items[:0]
		for off := 0; off < complete; off += 8 {
			v := binary.LittleEndian.Uint64(buf[off:])
			if v == 0 {
				return total, fmt.Errorf("item 0 is outside the 1-based universe")
			}
			items = append(items, stream.Item(v))
		}
		if len(items) > 0 {
			sink(items)
			total += len(items)
		}
		fill = copy(buf, buf[complete:n])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if fill != 0 {
				return total, fmt.Errorf("binary item stream truncated mid-item (%d trailing bytes)", fill)
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}
