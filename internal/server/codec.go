package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"strconv"
	"strings"
	"sync"

	"substream/internal/stream"
)

// Ingest body formats. Text is one decimal item per line (blank lines
// skipped); binary is fixed 8-byte little-endian items, the
// length-delimited fast path a forwarding monitor would use. The
// weighted variants carry (item, weight) pairs: text as an optional
// second column per line (weight 1 when absent), binary as fixed
// 16-byte records — 8-byte little-endian key followed by the weight's
// float64 bits, little-endian. Unweighted requests never pay for the
// weight column: they keep their own content types, decoders, and
// pools, byte-identical to the pre-weighted wire.
const (
	ContentTypeText           = "text/plain"
	ContentTypeBinary         = "application/octet-stream"
	ContentTypeTextWeighted   = "text/vnd.substream.weighted"
	ContentTypeBinaryWeighted = "application/vnd.substream.witem"
)

// ingestFormat is the decoded Content-Type of an ingest request.
type ingestFormat int

const (
	formatText ingestFormat = iota
	formatBinary
	formatTextWeighted
	formatBinaryWeighted
)

// errBadWeight marks a weighted record whose weight is unusable; the
// ingest handler maps it to its own error cause (bad_weight) so a
// misbehaving exporter is distinguishable from garbled framing.
var errBadWeight = errors.New("weight is not positive and finite")

// binaryChunkItems is the number of items decoded per pooled chunk: a
// 64 KiB read buffer's worth, matching the old one-shot scratch size
// while bounding per-request memory to one chunk regardless of body
// size.
const binaryChunkItems = 8192

// The binary ingest path recycles its working memory across requests:
// one read scratch buffer and one decoded-items buffer per in-flight
// request, drawn from pools so steady-state decoding allocates nothing.
// Both pools hold pointers (not slices) so Get/Put round trips stay
// allocation-free.
var (
	scratchPool = sync.Pool{New: func() any {
		b := make([]byte, 8*binaryChunkItems)
		return &b
	}}
	itemsPool = sync.Pool{New: func() any {
		s := make(stream.Slice, 0, binaryChunkItems)
		return &s
	}}
	witemsPool = sync.Pool{New: func() any {
		s := make(stream.WSlice, 0, weightedChunkItems)
		return &s
	}}
)

// weightedChunkItems is the weighted decode chunk size: records are 16
// bytes, so half the unweighted count fills the same 64 KiB scratch
// buffer — per-request memory stays one chunk in both formats.
const weightedChunkItems = binaryChunkItems / 2

// parseIngestType normalizes an ingest request's Content-Type: empty and
// text/* select the text format, ContentTypeBinary the binary one, and
// the two weighted types their weighted counterparts. The weighted text
// type is matched before the text/* prefix rule it would otherwise fall
// into.
func parseIngestType(contentType string) (ingestFormat, error) {
	ct := contentType
	if ct != "" {
		if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
			ct = parsed
		}
	}
	switch {
	case ct == ContentTypeTextWeighted:
		return formatTextWeighted, nil
	case ct == ContentTypeBinaryWeighted:
		return formatBinaryWeighted, nil
	case ct == "" || strings.HasPrefix(ct, "text/"):
		return formatText, nil
	case ct == ContentTypeBinary:
		return formatBinary, nil
	default:
		return formatText, fmt.Errorf("unsupported content type %q (want %s, %s, %s or %s)",
			contentType, ContentTypeText, ContentTypeBinary,
			ContentTypeTextWeighted, ContentTypeBinaryWeighted)
	}
}

// ownedChunk is one pooled unit of the ownership-transfer decode path:
// a decoded item buffer plus its hand-back closure, built once at pool
// construction so the hot loop never allocates a closure. The chunk is
// out of the pool from the moment decode fills it until the consuming
// shard worker invokes release — so two chunks in flight never alias,
// which is what lets the decoder run ahead of the pipeline without a
// copy.
type ownedChunk struct {
	items   stream.Slice
	release func()
}

// ownedWChunk is ownedChunk's weighted twin, backing the zero-copy
// weighted binary ingest path with the same aliasing guarantee.
type ownedWChunk struct {
	items   stream.WSlice
	release func()
}

var (
	chunkPool  sync.Pool
	wchunkPool sync.Pool
)

func init() {
	// Assigned in init: the release closures mention their pools, which a
	// composite-literal initializer would report as an initialization
	// cycle.
	chunkPool.New = func() any {
		c := &ownedChunk{items: make(stream.Slice, 0, binaryChunkItems)}
		c.release = func() { chunkPool.Put(c) }
		return c
	}
	wchunkPool.New = func() any {
		c := &ownedWChunk{items: make(stream.WSlice, 0, weightedChunkItems)}
		c.release = func() { wchunkPool.Put(c) }
		return c
	}
}

// decodeTextStream reads a one-decimal-item-per-line text body and hands
// the items to sink in pooled chunks of at most binaryChunkItems,
// mirroring decodeBinaryStream's shape: working memory is one pooled
// read buffer plus one pooled item buffer, recycled afterwards, so the
// body is never materialized. Blank lines are skipped; a trailing \r is
// tolerated (CRLF bodies); the final line may omit its newline. sink
// owns its argument only for the duration of the call. Returns how many
// items reached the sink; on a parse error, chunks already handed to
// sink stay consumed.
func decodeTextStream(body io.Reader, sink func(stream.Slice)) (int, error) {
	bufp := scratchPool.Get().(*[]byte)
	itemsp := itemsPool.Get().(*stream.Slice)
	total, err := decodeTextChunks(body, *bufp, (*itemsp)[:0], sink)
	scratchPool.Put(bufp)
	itemsPool.Put(itemsp)
	return total, err
}

func decodeTextChunks(body io.Reader, buf []byte, items stream.Slice, sink func(stream.Slice)) (int, error) {
	total, line, fill := 0, 0, 0
	flush := func() {
		if len(items) > 0 {
			sink(items)
			total += len(items)
			items = items[:0]
		}
	}
	for {
		n, rerr := body.Read(buf[fill:])
		end := fill + n
		pos := 0
		for {
			idx := bytes.IndexByte(buf[pos:end], '\n')
			if idx < 0 {
				break
			}
			line++
			v, ok, err := parseTextLine(buf[pos:pos+idx], line)
			pos += idx + 1
			if err != nil {
				flush()
				return total, err
			}
			if !ok {
				continue
			}
			items = append(items, stream.Item(v))
			if len(items) == cap(items) {
				flush()
			}
		}
		fill = copy(buf, buf[pos:end])
		switch {
		case rerr == io.EOF:
			if fill > 0 { // final line without a newline
				line++
				v, ok, err := parseTextLine(buf[:fill], line)
				if err != nil {
					flush()
					return total, err
				}
				if ok {
					items = append(items, stream.Item(v))
				}
			}
			flush()
			return total, nil
		case rerr != nil:
			flush()
			return total, rerr
		case fill == len(buf):
			flush()
			return total, fmt.Errorf("line %d exceeds the %d-byte line limit", line+1, len(buf))
		}
		// Hand off what this read produced before the buffer is reused.
		flush()
	}
}

// parseTextLine parses one line: a decimal item, a blank (ok == false),
// or an error. A trailing \r is stripped so CRLF bodies parse.
func parseTextLine(b []byte, line int) (v uint64, ok bool, err error) {
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	if len(b) == 0 {
		return 0, false, nil
	}
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false, fmt.Errorf("line %d: invalid decimal item %q", line, b)
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false, fmt.Errorf("line %d: item %q overflows uint64", line, b)
		}
		v = v*10 + d
	}
	if v == 0 {
		return 0, false, fmt.Errorf("line %d: item 0 is outside the 1-based universe", line)
	}
	return v, true, nil
}

// decodeBinaryStream reads fixed 8-byte little-endian items and hands
// them to sink in chunks of at most binaryChunkItems, without ever
// materializing the request: working memory is one pooled scratch buffer
// plus one pooled item buffer, both recycled afterwards, so the steady
// state allocates nothing. sink owns its argument only for the duration
// of the call (the buffer is reused for the next chunk). Returns how
// many items reached the sink; on a mid-body error (zero item,
// truncated record, read failure) chunks already handed to sink stay
// consumed — HTTP cannot roll them back — and the count says how many.
func decodeBinaryStream(body io.Reader, sink func(stream.Slice)) (int, error) {
	bufp := scratchPool.Get().(*[]byte)
	itemsp := itemsPool.Get().(*stream.Slice)
	total, err := decodeBinaryChunks(body, *bufp, (*itemsp)[:0], sink)
	scratchPool.Put(bufp)
	itemsPool.Put(itemsp)
	return total, err
}

func decodeBinaryChunks(body io.Reader, buf []byte, items stream.Slice, sink func(stream.Slice)) (int, error) {
	total := 0
	fill := 0 // bytes of a partial trailing record carried between reads
	for {
		n, err := io.ReadFull(body, buf[fill:])
		n += fill
		complete := n - n%8
		var perr error
		items, perr = parseBinaryItems(buf[:complete], items[:0])
		if perr != nil {
			return total, perr
		}
		if len(items) > 0 {
			sink(items)
			total += len(items)
		}
		fill = copy(buf, buf[complete:n])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if fill != 0 {
				return total, fmt.Errorf("binary item stream truncated mid-item (%d trailing bytes)", fill)
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// decodeBinaryStreamOwned is the ownership-transfer variant of
// decodeBinaryStream: each chunk of decoded items comes from the chunk
// pool and is handed to sink TOGETHER with its release closure, so sink
// may pass the slice downstream zero-copy (pipeline.FeedOwned) and the
// buffer returns to the pool only when the eventual consumer releases
// it. Chunks in flight never alias — the pool hands each Get a chunk no
// worker still holds. sink must guarantee release is eventually called
// exactly once per chunk, on any path.
func decodeBinaryStreamOwned(body io.Reader, sink func(items stream.Slice, release func())) (int, error) {
	bufp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(bufp)
	buf := *bufp
	total := 0
	fill := 0
	for {
		n, err := io.ReadFull(body, buf[fill:])
		n += fill
		complete := n - n%8
		c := chunkPool.Get().(*ownedChunk)
		items, perr := parseBinaryItems(buf[:complete], c.items[:0])
		c.items = items[:0]
		if perr != nil {
			c.release()
			return total, perr
		}
		if len(items) > 0 {
			total += len(items)
			sink(items, c.release)
		} else {
			c.release()
		}
		fill = copy(buf, buf[complete:n])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if fill != 0 {
				return total, fmt.Errorf("binary item stream truncated mid-item (%d trailing bytes)", fill)
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// parseBinaryItems appends the 8-byte little-endian records of buf
// (whose length must be a multiple of 8) to items. The main loop
// decodes four records per iteration from one re-sliced window — four
// independent loads the CPU overlaps, with one bounds check instead of
// four — matching the 4-lane shape of the hash kernels downstream.
func parseBinaryItems(buf []byte, items stream.Slice) (stream.Slice, error) {
	off := 0
	for ; off+32 <= len(buf); off += 32 {
		b := buf[off : off+32 : off+32]
		v0 := binary.LittleEndian.Uint64(b[0:8])
		v1 := binary.LittleEndian.Uint64(b[8:16])
		v2 := binary.LittleEndian.Uint64(b[16:24])
		v3 := binary.LittleEndian.Uint64(b[24:32])
		if v0 == 0 || v1 == 0 || v2 == 0 || v3 == 0 {
			return items, fmt.Errorf("item 0 is outside the 1-based universe")
		}
		items = append(items, stream.Item(v0), stream.Item(v1), stream.Item(v2), stream.Item(v3))
	}
	for ; off < len(buf); off += 8 {
		v := binary.LittleEndian.Uint64(buf[off:])
		if v == 0 {
			return items, fmt.Errorf("item 0 is outside the 1-based universe")
		}
		items = append(items, stream.Item(v))
	}
	return items, nil
}

// decodeWeightedTextStream reads a "key weight"-per-line text body (the
// weight column optional, defaulting to 1, so unweighted files parse
// too) and hands the pairs to sink in pooled chunks, mirroring
// decodeTextStream's shape and contracts: sink owns its argument only
// for the duration of the call, chunks already handed to sink stay
// consumed on a mid-body error.
func decodeWeightedTextStream(body io.Reader, sink func(stream.WSlice)) (int, error) {
	bufp := scratchPool.Get().(*[]byte)
	itemsp := witemsPool.Get().(*stream.WSlice)
	total, err := decodeWeightedTextChunks(body, *bufp, (*itemsp)[:0], sink)
	scratchPool.Put(bufp)
	witemsPool.Put(itemsp)
	return total, err
}

func decodeWeightedTextChunks(body io.Reader, buf []byte, items stream.WSlice, sink func(stream.WSlice)) (int, error) {
	total, line, fill := 0, 0, 0
	flush := func() {
		if len(items) > 0 {
			sink(items)
			total += len(items)
			items = items[:0]
		}
	}
	for {
		n, rerr := body.Read(buf[fill:])
		end := fill + n
		pos := 0
		for {
			idx := bytes.IndexByte(buf[pos:end], '\n')
			if idx < 0 {
				break
			}
			line++
			it, ok, err := parseWeightedTextLine(buf[pos:pos+idx], line)
			pos += idx + 1
			if err != nil {
				flush()
				return total, err
			}
			if !ok {
				continue
			}
			items = append(items, it)
			if len(items) == cap(items) {
				flush()
			}
		}
		fill = copy(buf, buf[pos:end])
		switch {
		case rerr == io.EOF:
			if fill > 0 { // final line without a newline
				line++
				it, ok, err := parseWeightedTextLine(buf[:fill], line)
				if err != nil {
					flush()
					return total, err
				}
				if ok {
					items = append(items, it)
				}
			}
			flush()
			return total, nil
		case rerr != nil:
			flush()
			return total, rerr
		case fill == len(buf):
			flush()
			return total, fmt.Errorf("line %d exceeds the %d-byte line limit", line+1, len(buf))
		}
		flush()
	}
}

// parseWeightedTextLine parses one weighted line: "key weight", "key"
// (weight 1), a blank (ok == false), or an error. The key column reuses
// the unweighted parser, so key diagnostics match the plain text path.
func parseWeightedTextLine(b []byte, line int) (it stream.WItem, ok bool, err error) {
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	keyPart, weightPart := b, []byte(nil)
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		keyPart, weightPart = b[:i], b[i+1:]
	}
	v, ok, err := parseTextLine(keyPart, line)
	if err != nil || !ok {
		return stream.WItem{}, ok, err
	}
	weight := 1.0
	if len(weightPart) > 0 {
		weight, err = strconv.ParseFloat(string(weightPart), 64)
		if err != nil {
			return stream.WItem{}, false, fmt.Errorf("line %d: %w: %q", line, errBadWeight, weightPart)
		}
		if !(weight > 0) || math.IsInf(weight, 0) {
			return stream.WItem{}, false, fmt.Errorf("line %d: %w: %v", line, errBadWeight, weight)
		}
	}
	return stream.WItem{Key: stream.Item(v), Weight: weight}, true, nil
}

// decodeWeightedBinaryStream reads fixed 16-byte little-endian (key,
// weight) records and hands them to sink in chunks of at most
// weightedChunkItems, with decodeBinaryStream's pooling and error
// contracts.
func decodeWeightedBinaryStream(body io.Reader, sink func(stream.WSlice)) (int, error) {
	bufp := scratchPool.Get().(*[]byte)
	itemsp := witemsPool.Get().(*stream.WSlice)
	total, err := decodeWeightedBinaryChunks(body, *bufp, (*itemsp)[:0], sink)
	scratchPool.Put(bufp)
	witemsPool.Put(itemsp)
	return total, err
}

func decodeWeightedBinaryChunks(body io.Reader, buf []byte, items stream.WSlice, sink func(stream.WSlice)) (int, error) {
	total := 0
	fill := 0 // bytes of a partial trailing record carried between reads
	for {
		n, err := io.ReadFull(body, buf[fill:])
		n += fill
		complete := n - n%16
		var perr error
		items, perr = parseBinaryWItems(buf[:complete], items[:0])
		if perr != nil {
			return total, perr
		}
		if len(items) > 0 {
			sink(items)
			total += len(items)
		}
		fill = copy(buf, buf[complete:n])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if fill != 0 {
				return total, fmt.Errorf("weighted item stream truncated mid-record (%d trailing bytes)", fill)
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// decodeWeightedBinaryStreamOwned is the ownership-transfer variant of
// decodeWeightedBinaryStream, with decodeBinaryStreamOwned's contract:
// sink must guarantee release is eventually called exactly once per
// chunk, on any path.
func decodeWeightedBinaryStreamOwned(body io.Reader, sink func(items stream.WSlice, release func())) (int, error) {
	bufp := scratchPool.Get().(*[]byte)
	defer scratchPool.Put(bufp)
	buf := *bufp
	total := 0
	fill := 0
	for {
		n, err := io.ReadFull(body, buf[fill:])
		n += fill
		complete := n - n%16
		c := wchunkPool.Get().(*ownedWChunk)
		items, perr := parseBinaryWItems(buf[:complete], c.items[:0])
		c.items = items[:0]
		if perr != nil {
			c.release()
			return total, perr
		}
		if len(items) > 0 {
			total += len(items)
			sink(items, c.release)
		} else {
			c.release()
		}
		fill = copy(buf, buf[complete:n])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if fill != 0 {
				return total, fmt.Errorf("weighted item stream truncated mid-record (%d trailing bytes)", fill)
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// parseBinaryWItems appends the 16-byte records of buf (whose length
// must be a multiple of 16) to items: an 8-byte little-endian key
// followed by the weight's float64 bits. Zero keys and weights that are
// not positive and finite are rejected.
func parseBinaryWItems(buf []byte, items stream.WSlice) (stream.WSlice, error) {
	for off := 0; off+16 <= len(buf); off += 16 {
		b := buf[off : off+16 : off+16]
		k := binary.LittleEndian.Uint64(b[0:8])
		w := math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
		if k == 0 {
			return items, fmt.Errorf("item 0 is outside the 1-based universe")
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return items, fmt.Errorf("record %d: %w: %v", off/16, errBadWeight, w)
		}
		items = append(items, stream.WItem{Key: stream.Item(k), Weight: w})
	}
	return items, nil
}
