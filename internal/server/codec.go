package server

import (
	"encoding/binary"
	"fmt"
	"io"
	"mime"
	"strings"

	"substream/internal/stream"
)

// Ingest body formats. Text is one decimal item per line (blank lines
// skipped); binary is fixed 8-byte little-endian items, the
// length-delimited fast path a forwarding monitor would use.
const (
	ContentTypeText   = "text/plain"
	ContentTypeBinary = "application/octet-stream"
)

// decodeItems parses an ingest request body according to its content
// type. An empty content type defaults to text. sizeBytes, when known
// (Content-Length), pre-sizes the binary decode so a maximum-size batch
// does not pay repeated slice growth on the hot path; pass -1 if
// unknown.
func decodeItems(contentType string, body io.Reader, sizeBytes int64) (stream.Slice, error) {
	ct := contentType
	if ct != "" {
		if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
			ct = parsed
		}
	}
	switch {
	case ct == "" || strings.HasPrefix(ct, "text/"):
		return stream.ReadText(body)
	case ct == ContentTypeBinary:
		return decodeBinaryItems(body, sizeBytes)
	default:
		return nil, fmt.Errorf("unsupported content type %q (want %s or %s)",
			contentType, ContentTypeText, ContentTypeBinary)
	}
}

// decodeBinaryItems reads fixed 8-byte little-endian items until EOF,
// in 64 KiB chunks.
func decodeBinaryItems(body io.Reader, sizeBytes int64) (stream.Slice, error) {
	var out stream.Slice
	if sizeBytes > 0 && sizeBytes <= maxIngestBytes {
		out = make(stream.Slice, 0, sizeBytes/8)
	}
	buf := make([]byte, 64*1024)
	fill := 0 // bytes of a partial trailing record carried between reads
	for {
		n, err := io.ReadFull(body, buf[fill:])
		n += fill
		complete := n - n%8
		for off := 0; off < complete; off += 8 {
			v := binary.LittleEndian.Uint64(buf[off:])
			if v == 0 {
				return nil, fmt.Errorf("item 0 is outside the 1-based universe")
			}
			out = append(out, stream.Item(v))
		}
		fill = copy(buf, buf[complete:n])
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if fill != 0 {
				return nil, fmt.Errorf("binary item stream truncated mid-item (%d trailing bytes)", fill)
			}
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
