package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"substream/internal/estimator"
	"substream/internal/sketch"
)

// Collector durability snapshots: a periodic atomic checkpoint of the
// per-(stream, agent) summary table, restored on startup so a collector
// restart does not forget the fleet's last shipped state. The format
// rides the repository's wire conventions (internal/server/doc.go):
//
//	'C' 'S'            magic
//	u8  version        snapshotVersion
//	i64 savedAt        unix-nanos of the checkpoint (diagnostic)
//	u32 count          number of (stream, agent) entries
//	count times:
//	  nested summaryJSON   the retained Summary, Payload re-encoded from
//	                       the decoded estimator (tagged estimator wire
//	                       format, decodable by estimator.Decode)
//	  i64 lastSeen         unix-nanos of the entry's acceptance (diagnostic)
//	u32 crc            IEEE CRC-32 of every preceding byte, little-endian
//
// The CRC trailer is verified BEFORE any parsing, so truncations and bit
// flips — including content-preserving ones structural validation cannot
// see — always fail cleanly into the "start empty + warn" path; a
// snapshot is restored whole or not at all, never as a partial table.
const (
	snapshotMagic0  byte = 'C'
	snapshotMagic1  byte = 'S'
	snapshotVersion byte = 1
	// snapshotFile is the checkpoint's name inside SnapshotDir.
	snapshotFile = "collector.snap"
	// maxSnapshotEntries bounds the entry count read from the wire.
	maxSnapshotEntries = 1 << 20
)

// snapshotPath returns the checkpoint's location for the configured dir.
func (c *Collector) snapshotPath() string {
	return filepath.Join(c.cfg.SnapshotDir, snapshotFile)
}

// snapEntry is one decoded snapshot row.
type snapEntry struct {
	sum      Summary
	lastSeen time.Time
}

// encodeSnapshot serializes the retained table under the read lock, in
// sorted (stream, agent) order so identical tables encode identically.
func (c *Collector) encodeSnapshot(now time.Time) ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w := &sketch.Writer{}
	w.U8(snapshotMagic0)
	w.U8(snapshotMagic1)
	w.U8(snapshotVersion)
	w.I64(now.UnixNano())
	entries := 0
	for _, st := range c.streams {
		entries += len(st.agents)
	}
	w.U32(uint32(entries))
	for _, name := range sortedKeys(c.streams) {
		st := c.streams[name]
		for _, id := range sortedKeys(st.agents) {
			state := st.agents[id]
			payload, err := state.decoded.MarshalBinary()
			if err != nil {
				return nil, fmt.Errorf("stream %q agent %q: %w", name, id, err)
			}
			sum := state.sum
			sum.Payload = payload
			js, err := json.Marshal(sum)
			if err != nil {
				return nil, fmt.Errorf("stream %q agent %q: %w", name, id, err)
			}
			w.Nested(js)
			w.I64(state.lastSeen.UnixNano())
		}
	}
	buf := w.Bytes()
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf)), nil
}

// decodeSnapshot verifies the CRC trailer and parses the entry list.
func decodeSnapshot(data []byte) ([]snapEntry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("snapshot: %d bytes is shorter than the CRC trailer", len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("snapshot: CRC mismatch (file %#x, computed %#x)", want, got)
	}
	r := sketch.NewReader(body)
	if m0, m1 := r.U8(), r.U8(); r.Err() == nil && (m0 != snapshotMagic0 || m1 != snapshotMagic1) {
		return nil, fmt.Errorf("snapshot: bad magic %#x %#x", m0, m1)
	}
	if v := r.U8(); r.Err() == nil && v != snapshotVersion {
		return nil, fmt.Errorf("snapshot: unsupported version %d", v)
	}
	r.I64() // savedAt: diagnostic only
	count := r.Count(maxSnapshotEntries, 4)
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]snapEntry, 0, count)
	for i := 0; i < count; i++ {
		js := r.Nested()
		lastSeen := r.I64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var sum Summary
		if err := json.Unmarshal(js, &sum); err != nil {
			return nil, fmt.Errorf("snapshot entry %d: %w", i, err)
		}
		out = append(out, snapEntry{sum: sum, lastSeen: time.Unix(0, lastSeen)})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// SaveSnapshot atomically checkpoints the retained table to SnapshotDir:
// encode, write to a temp file, fsync, rename. A crash at any point
// leaves either the previous complete snapshot or the new one, never a
// torn file. Failures bump snapshot_errors{cause="snapshot_write"}.
func (c *Collector) SaveSnapshot() error {
	if c.cfg.SnapshotDir == "" {
		return fmt.Errorf("snapshot: no snapshot dir configured")
	}
	start := time.Now()
	err := func() error {
		data, err := c.encodeSnapshot(start)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(c.cfg.SnapshotDir, 0o755); err != nil {
			return err
		}
		path := c.snapshotPath()
		tmp, err := os.CreateTemp(c.cfg.SnapshotDir, snapshotFile+".tmp-*")
		if err != nil {
			return err
		}
		defer os.Remove(tmp.Name()) // no-op after a successful rename
		if _, err := tmp.Write(data); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp.Name(), path); err != nil {
			return err
		}
		c.metrics.SnapshotBytes.Set(float64(len(data)))
		return nil
	}()
	if err != nil {
		c.metrics.SnapshotErrors.With(causeSnapshotWrite).Inc()
		return err
	}
	c.metrics.SnapshotWrite.Since(start)
	return nil
}

// RestoreSnapshot loads the checkpoint from SnapshotDir and replaces the
// retained table with it, all-or-nothing: every entry is re-validated
// through the same decode + trial-fold gauntlet live shipments pass, and
// ANY failure abandons the whole restore with the table untouched (the
// collector starts empty and the agents' cumulative reships rebuild it).
// A missing file is a clean first boot, not an error. Restored entries'
// staleness clocks restart at the restore: the restore counts as a
// sighting, so a collector that was down longer than -max-summary-age
// answers queries from the restored state while the fleet re-converges,
// instead of declaring everything stale at once.
func (c *Collector) RestoreSnapshot() (int, error) {
	if c.cfg.SnapshotDir == "" {
		return 0, fmt.Errorf("snapshot: no snapshot dir configured")
	}
	data, err := os.ReadFile(c.snapshotPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	start := time.Now()
	n, err := func() (int, error) {
		if err != nil {
			return 0, err
		}
		entries, err := decodeSnapshot(data)
		if err != nil {
			return 0, err
		}
		now := c.cfg.Now()
		staging := make(map[string]*collectorStream)
		for i, e := range entries {
			if err := stageSummary(staging, e.sum, now); err != nil {
				return 0, fmt.Errorf("snapshot entry %d: %w", i, err)
			}
		}
		c.mu.Lock()
		c.streams = staging
		c.mu.Unlock()
		return len(entries), nil
	}()
	if err != nil {
		c.metrics.SnapshotErrors.With(causeSnapshotRestore).Inc()
		return 0, err
	}
	c.metrics.SnapshotRestore.Since(start)
	return n, nil
}

// stageSummary validates one snapshot entry exactly as the collect path
// would (config validation, registry decode, trial fold, per-stream
// config pinning) and folds it into the staging table. Duplicate
// (stream, agent) rows are corruption: the encoder never writes them.
func stageSummary(staging map[string]*collectorStream, sum Summary, lastSeen time.Time) error {
	if sum.Stream == "" || sum.Agent == "" {
		return fmt.Errorf("summary must name a stream and an agent")
	}
	cfg := sum.Config.withDefaults()
	if err := cfg.validate(); err != nil {
		return fmt.Errorf("summary config: %w", err)
	}
	fold := buildFolder(cfg)
	decoded, err := estimator.Decode(sum.Payload)
	if err != nil {
		return fmt.Errorf("summary payload: %w", err)
	}
	if _, err := fold.foldDecoded([]estimator.Estimator{decoded}); err != nil {
		return fmt.Errorf("summary payload does not match its declared config: %w", err)
	}
	sum.Payload = nil
	st, ok := staging[sum.Stream]
	if !ok {
		st = &collectorStream{cfg: cfg, fold: fold, agents: make(map[string]agentState)}
		staging[sum.Stream] = st
	} else if !st.cfg.sharedEquals(cfg) {
		return fmt.Errorf("stream %q: conflicting configs across entries", sum.Stream)
	}
	if _, dup := st.agents[sum.Agent]; dup {
		return fmt.Errorf("stream %q: duplicate agent %q", sum.Stream, sum.Agent)
	}
	st.agents[sum.Agent] = agentState{sum: sum, decoded: decoded, lastSeen: lastSeen}
	return nil
}

// Run drives the collector's periodic durability checkpoints until ctx
// is canceled, then writes one final snapshot — the graceful-shutdown
// path that makes a planned restart lossless even mid-interval. Without
// a snapshot dir it just blocks until cancellation.
func (c *Collector) Run(ctx context.Context) error {
	if c.cfg.SnapshotDir == "" {
		<-ctx.Done()
		return nil
	}
	ticker := time.NewTicker(c.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if err := c.SaveSnapshot(); err != nil {
				c.logger.Warn("snapshot write failed", "err", err)
			}
		case <-ctx.Done():
			return c.SaveSnapshot()
		}
	}
}
