package server

import (
	"bytes"
	"strings"
	"testing"

	"substream/internal/stream"
)

func TestDecodeBinaryStreamOwnedRoundTrip(t *testing.T) {
	items := make([]uint64, 3*binaryChunkItems+1234)
	for i := range items {
		items[i] = uint64(i + 1)
	}
	var got stream.Slice
	releases := 0
	n, err := decodeBinaryStreamOwned(bytes.NewReader(encodeBinary(items)),
		func(chunk stream.Slice, release func()) {
			got = append(got, chunk...)
			release()
			releases++
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(items) || len(got) != len(items) {
		t.Fatalf("decoded %d items (sink saw %d), want %d", n, len(got), len(items))
	}
	for i, v := range items {
		if got[i] != stream.Item(v) {
			t.Fatalf("item %d decoded as %d, want %d", i, got[i], v)
		}
	}
	if releases != 4 {
		t.Fatalf("sink received %d chunks, want 4", releases)
	}
}

// TestDecodeBinaryStreamOwnedChunksDoNotAlias pins the non-aliasing
// guarantee the ownership hand-off rests on: while a chunk is
// unreleased, no later chunk may share its backing array, and its
// contents must stay exactly what the decoder produced — even after the
// decode call has returned and its scratch buffer has gone back to the
// pool.
func TestDecodeBinaryStreamOwnedChunksDoNotAlias(t *testing.T) {
	const chunks = 4
	items := make([]uint64, chunks*binaryChunkItems)
	for i := range items {
		items[i] = uint64(i + 1)
	}
	var held []stream.Slice
	var releases []func()
	n, err := decodeBinaryStreamOwned(bytes.NewReader(encodeBinary(items)),
		func(chunk stream.Slice, release func()) {
			held = append(held, chunk)
			releases = append(releases, release)
		})
	if err != nil || n != len(items) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if len(held) != chunks {
		t.Fatalf("decoder produced %d chunks, want %d", len(held), chunks)
	}
	for i, a := range held {
		for j, b := range held[i+1:] {
			if &a[0] == &b[0] {
				t.Fatalf("chunks %d and %d share a backing array while both are unreleased", i, i+1+j)
			}
		}
	}
	// Contents survive the decoder finishing: a decoder that recycled an
	// unreleased buffer would have overwritten the earlier chunks.
	for c, chunk := range held {
		for i, v := range chunk {
			if want := stream.Item(c*binaryChunkItems + i + 1); v != want {
				t.Fatalf("chunk %d item %d mutated to %d while unreleased, want %d", c, i, v, want)
			}
		}
	}
	for _, r := range releases {
		r()
	}
}

func TestDecodeBinaryStreamOwnedConsumedPrefix(t *testing.T) {
	items := make([]uint64, binaryChunkItems+4)
	for i := range items {
		items[i] = uint64(i + 1)
	}
	items[len(items)-1] = 0
	var got stream.Slice
	n, err := decodeBinaryStreamOwned(bytes.NewReader(encodeBinary(items)),
		func(chunk stream.Slice, release func()) {
			got = append(got, chunk...)
			release()
		})
	if err == nil || !strings.Contains(err.Error(), "1-based universe") {
		t.Fatalf("zero-item error = %v", err)
	}
	if n != binaryChunkItems || len(got) != binaryChunkItems {
		t.Fatalf("consumed-prefix count = %d (sink %d), want %d", n, len(got), binaryChunkItems)
	}
	if _, err := decodeBinaryStreamOwned(bytes.NewReader([]byte{1, 2, 3}),
		func(stream.Slice, func()) {}); err == nil || !strings.Contains(err.Error(), "truncated mid-item") {
		t.Fatalf("truncated body error = %v", err)
	}
}

// TestDecodeBinaryStreamOwnedAllocFree is the owned twin of
// TestDecodeBinaryStreamAllocFree: with chunks released promptly,
// steady-state decoding — including the per-chunk pool round trip and
// the release hand-off — allocates nothing.
func TestDecodeBinaryStreamOwnedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the strict bound")
	}
	items := make([]uint64, 2*binaryChunkItems+100)
	for i := range items {
		items[i] = uint64(i + 1)
	}
	body := encodeBinary(items)
	rd := bytes.NewReader(body)
	sink := func(_ stream.Slice, release func()) { release() }
	if _, err := decodeBinaryStreamOwned(rd, sink); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		if _, err := decodeBinaryStreamOwned(rd, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decodeBinaryStreamOwned allocates %v objects per request in steady state, want 0", allocs)
	}
}

func TestDecodeTextStreamMatchesReadText(t *testing.T) {
	bodies := []string{
		"",
		"1\n",
		"1\n2\n3\n",
		"1\n\n2\n\n\n3\n",
		"7",                         // final line without newline
		"1\r\n2\r\n3\r",             // CRLF line endings, trailing CR on last line
		"18446744073709551615\n1\n", // max uint64
	}
	// A multi-chunk body: enough lines to overflow one pooled item chunk
	// and one 64 KiB read buffer several times.
	var big strings.Builder
	for i := 1; i <= 3*binaryChunkItems; i++ {
		big.WriteString(strings.Repeat("9", 1+i%3))
		big.WriteByte('\n')
	}
	bodies = append(bodies, big.String())

	for i, body := range bodies {
		want, err := stream.ReadText(strings.NewReader(body))
		if err != nil {
			t.Fatalf("body %d: ReadText: %v", i, err)
		}
		var got stream.Slice
		n, err := decodeTextStream(strings.NewReader(body), collectSink(&got))
		if err != nil {
			t.Fatalf("body %d: decodeTextStream: %v", i, err)
		}
		if n != len(want) || len(got) != len(want) {
			t.Fatalf("body %d: decoded %d items (sink %d), want %d", i, n, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("body %d item %d: got %d, want %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestDecodeTextStreamErrors(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{"1\nxyz\n", "invalid decimal item"},
		{"1\n-2\n", "invalid decimal item"},
		{"1\n0\n2\n", "1-based universe"},
		{"99999999999999999999999\n", "overflows"},
		{"1\n" + strings.Repeat("9", 9*binaryChunkItems) + "\n", "line limit"},
	}
	for _, c := range cases {
		_, err := decodeTextStream(strings.NewReader(c.body), func(stream.Slice) {})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("body %.20q: err = %v, want substring %q", c.body, err, c.want)
		}
	}
}

// TestDecodeTextStreamAllocFree pins the text-path fix: chunked decoding
// through the pooled buffers allocates nothing per request in steady
// state, where the old materialize-the-body path allocated the whole
// item slice and a line scanner every call.
func TestDecodeTextStreamAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the strict bound")
	}
	var body bytes.Buffer
	for i := 1; i <= binaryChunkItems+500; i++ {
		body.WriteString("123456789\n")
	}
	raw := body.Bytes()
	rd := bytes.NewReader(raw)
	sink := func(stream.Slice) {}
	if _, err := decodeTextStream(rd, sink); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(raw)
		if _, err := decodeTextStream(rd, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decodeTextStream allocates %v objects per request in steady state, want 0", allocs)
	}
}
