package server

import (
	"sync"
	"time"
)

// Breaker states, in escalation order. The numeric values are the
// agent_breaker_state gauge's vocabulary: 0 closed (shipping normally),
// 1 half-open (one probe in flight), 2 open (failing fast).
const (
	breakerClosed int = iota
	breakerHalfOpen
	breakerOpen
)

// breaker is the per-upstream circuit breaker of the shipping path: it
// turns a dead collector from "every stream of every flush tick runs
// its full retry schedule against a black hole" into one cheap fast-fail
// per ship, with a single probe per cooldown window testing for revival.
//
// The classic three states: CLOSED counts consecutive failures and
// trips to OPEN at the threshold; OPEN fails fast until the cooldown
// elapses, then admits exactly one probe (HALF-OPEN); the probe's
// success closes the breaker, its failure re-opens it for another
// cooldown. Because shipped summaries are cumulative and the collector
// keeps the newest per agent, nothing is queued while open — the next
// allowed ship carries the newest snapshot, which supersedes everything
// the breaker refused.
type breaker struct {
	threshold int           // consecutive failures that trip the breaker; <= 0 disables it
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time

	mu       sync.Mutex
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

// newBreaker builds a breaker; threshold <= 0 builds a disabled one
// that always allows.
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a ship may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed, admitting the
// caller as the probe; while a probe is in flight every other caller is
// refused, so a revived collector sees one request, not a stampede.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// release abandons an admission without judging the upstream: the
// caller failed locally (snapshot, marshal, request build) before the
// collector was ever contacted. A half-open probe slot it may have held
// reopens for the next caller; state and failure count are untouched.
func (b *breaker) release() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// onSuccess records a successful ship: any state collapses back to
// closed with the failure count reset.
func (b *breaker) onSuccess() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// onFailure records a failed ship (after its retries, if any): a failed
// half-open probe re-opens immediately, and the threshold'th
// consecutive closed-state failure trips the breaker.
func (b *breaker) onFailure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.failures = 0
		}
	}
	// Already open: concurrent ships that were in flight when the
	// breaker tripped report their failures into a trap that is
	// already sprung; nothing to escalate.
}

// snapshot returns the current state for the breaker gauge.
func (b *breaker) snapshot() int {
	if b.threshold <= 0 {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
