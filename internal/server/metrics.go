package server

import (
	"net/http"
	"net/http/pprof"
	"time"

	"substream/internal/obs"
)

// Error/reject causes. Every early return of the ingest, ship, and
// collect paths bumps exactly one cause-labeled counter — the audit
// table test pins the mapping — while the family sums keep the old flat
// panel keys (ingest_errors, ship_errors, summaries_rejected) alive.
const (
	// ingest_errors causes
	causeUnknownStream = "unknown_stream"
	causeContentType   = "content_type"
	causeTooLarge      = "too_large"
	causeDecode        = "decode"
	// bad_weight splits weighted-record weight failures (zero, negative,
	// NaN, infinite) out of the generic decode cause: a misconfigured
	// exporter emitting unusable weights is a different operational
	// problem than garbled framing.
	causeBadWeight = "bad_weight"

	// ship_errors causes
	causeNoUpstream = "no_upstream"
	causeSnapshot   = "snapshot"
	causeMarshal    = "marshal"
	causeRequest    = "request"
	causeNetwork    = "network"
	causeStatus     = "status"
	// The resilient-shipping causes: retry counts every scheduled
	// re-attempt (the per-attempt network/status causes still fire, so
	// retry measures backoff pressure, not a new failure class),
	// breaker_open counts ships refused fast while the upstream's
	// circuit breaker is open, and gave_up counts ships that exhausted
	// their retry budget — the number a converging fleet drives to zero.
	causeRetry       = "retry"
	causeBreakerOpen = "breaker_open"
	causeGaveUp      = "gave_up"

	// summaries_rejected causes
	causeEnvelope = "envelope"
	causeConfig   = "config"
	causePayload  = "payload"
	causeConflict = "config_conflict"

	// snapshot_errors causes (collector durability): a failed periodic
	// checkpoint write, and a startup restore abandoned because the
	// snapshot file was missing its integrity or failed validation.
	causeSnapshotWrite   = "snapshot_write"
	causeSnapshotRestore = "snapshot_restore"
)

// Metrics is the daemon's instrument panel, rebuilt on internal/obs:
// sharded-cell counters for the hot paths, cause-labeled error
// families, per-stream ingest accounting, and CKMS-quantile-backed
// latency histograms. The registry is per-instance (an agent fleet in
// one test binary never collides), served by /metricsz as the flat JSON
// panel the daemon has always exposed or, with ?format=prom, in the
// Prometheus text format.
type Metrics struct {
	reg *obs.Registry

	IngestRequests  *obs.Counter
	IngestItems     *obs.CounterVec // by stream
	IngestBytes     *obs.CounterVec // by stream
	IngestErrors    *obs.CounterVec // by cause
	EstimateQueries *obs.Counter

	SummariesOut    *obs.Counter
	SummaryBytesOut *obs.Counter
	ShipErrors      *obs.CounterVec // by cause

	SummariesIn    *obs.Counter
	SummaryBytesIn *obs.Counter
	CollectRejects *obs.CounterVec // by cause
	SnapshotErrors *obs.CounterVec // by cause

	// Latency histograms (seconds), one per instrumented path.
	IngestDecode    *obs.Histogram
	ShardFeed       *obs.Histogram
	AgentFlush      *obs.Histogram
	CollectDecode   *obs.Histogram
	CollectFold     *obs.Histogram
	SnapshotWrite   *obs.Histogram
	SnapshotRestore *obs.Histogram

	// SnapshotBytes is the size of the collector's last written
	// durability checkpoint (0 until the first write).
	SnapshotBytes *obs.Gauge

	// Trace is the flush→fold span ring served at /debug/tracez.
	Trace *obs.TraceRing
}

// newMetrics builds an instrument panel.
func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	m := &Metrics{
		reg: reg,

		IngestRequests:  reg.Counter("ingest_requests", "ingest HTTP requests accepted for processing"),
		IngestItems:     reg.CounterVec("ingest_items", "items ingested, by stream", "stream"),
		IngestBytes:     reg.CounterVec("ingest_bytes", "ingest request body bytes consumed, by stream", "stream"),
		IngestErrors:    reg.CounterVec("ingest_errors", "ingest requests rejected, by cause", "cause"),
		EstimateQueries: reg.Counter("estimate_queries", "estimate queries served"),

		SummariesOut:    reg.Counter("summaries_shipped", "summaries shipped upstream"),
		SummaryBytesOut: reg.Counter("summary_bytes_shipped", "serialized summary bytes shipped upstream"),
		ShipErrors:      reg.CounterVec("ship_errors", "summary shipments failed, by cause", "cause"),

		SummariesIn:    reg.Counter("summaries_received", "summaries accepted from agents"),
		SummaryBytesIn: reg.Counter("summary_bytes_received", "summary envelope bytes received from agents"),
		CollectRejects: reg.CounterVec("summaries_rejected", "summaries rejected, by cause", "cause"),
		SnapshotErrors: reg.CounterVec("snapshot_errors", "collector durability snapshot failures, by cause", "cause"),

		IngestDecode:    reg.Histogram("ingest_decode_seconds", "per-request ingest body decode latency (excludes pipeline feed)"),
		ShardFeed:       reg.Histogram("shard_feed_seconds", "per-request pipeline feed latency (includes backpressure stalls)"),
		AgentFlush:      reg.Histogram("agent_flush_seconds", "per-summary flush latency: snapshot, marshal, upstream POST"),
		CollectDecode:   reg.Histogram("collect_decode_seconds", "per-summary payload decode latency at the collector"),
		CollectFold:     reg.Histogram("collect_fold_seconds", "per-summary trial-fold latency at the collector"),
		SnapshotWrite:   reg.Histogram("snapshot_write_seconds", "per-checkpoint collector snapshot encode+write+rename latency"),
		SnapshotRestore: reg.Histogram("snapshot_restore_seconds", "collector snapshot restore latency at startup"),

		SnapshotBytes: reg.Gauge("collector_snapshot_bytes", "size of the collector's last written durability snapshot"),

		Trace: obs.NewTraceRing(obs.DefaultTraceCap),
	}
	return m
}

// Registry exposes the underlying metric registry (for embedders that
// want to add their own instruments to the same /metricsz panel).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// handler serves the panel: the flat JSON view by default (expvar-style
// compatibility), the Prometheus text exposition with ?format=prom.
func (m *Metrics) handler(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = m.reg.WriteJSON(w)
}

// addOps registers the operational endpoints shared by both roles:
// health, metrics, the flush→fold trace ring, and the pprof suite.
func addOps(mux *http.ServeMux, role string, m *Metrics) {
	start := time.Now()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"role":   role,
			"uptime": time.Since(start).Round(time.Millisecond).String(),
		})
	})
	mux.HandleFunc("GET /metricsz", m.handler)
	mux.Handle("GET /debug/tracez", m.Trace)
	// The standard pprof suite, on the daemon's own mux rather than
	// http.DefaultServeMux: profiles never leak onto a mux the daemon
	// does not serve, and every daemon instance (agent and collector
	// alike) gets /debug/pprof/{profile,heap,goroutine,trace,...}.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
