package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/sample"
	"substream/internal/stream"
	"substream/internal/workload"
)

// binBody encodes items in the binary ingest format.
func binBody(items stream.Slice) []byte {
	buf := make([]byte, 8*len(items))
	for i, it := range items {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(it))
	}
	return buf
}

// do issues a request and decodes the JSON response into out (if
// non-nil), failing the test on transport errors.
func do(t *testing.T, method, url, contentType string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp
}

// estimateResp mirrors the estimate endpoints' JSON shape.
type estimateResp struct {
	Stream    string    `json:"stream"`
	Agents    int       `json:"agents"`
	Fed       uint64    `json:"fed"`
	Kept      uint64    `json:"kept"`
	Estimates Estimates `json:"estimates"`
}

// sampledZipf returns a Bernoulli-p sample of a Zipf original stream.
func sampledZipf(n int, p float64, seed uint64) stream.Slice {
	wl := workload.Zipf(n, 8192, 1.15, seed)
	return sample.NewBernoulli(p).Apply(wl.Stream, rng.New(seed+100))
}

// agentFleet spins up a collector and nAgents agents registered for one
// stream, ingests each agent's chunk, and flushes everything to the
// collector. It returns the collector's base URL and a cleanup-managed
// list of test servers.
func agentFleet(t *testing.T, cfg StreamConfig, name string, chunks []stream.Slice) string {
	t.Helper()
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	t.Cleanup(cts.Close)

	cfgBody, _ := json.Marshal(cfg)
	for i, chunk := range chunks {
		agent := NewAgent(AgentConfig{ID: fmt.Sprintf("agent-%d", i), Upstream: cts.URL})
		ats := httptest.NewServer(agent.Handler())
		t.Cleanup(ats.Close)
		t.Cleanup(agent.Close)

		if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/"+name, "application/json", cfgBody, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create stream: status %d", resp.StatusCode)
		}
		if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/"+name+"/ingest", ContentTypeBinary, binBody(chunk), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: status %d", resp.StatusCode)
		}
		if resp := do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("flush: status %d", resp.StatusCode)
		}
	}
	return cts.URL
}

// splitChunks cuts s into n contiguous chunks.
func splitChunks(s stream.Slice, n int) []stream.Slice {
	out := make([]stream.Slice, n)
	per := len(s) / n
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if i == n-1 {
			hi = len(s)
		}
		out[i] = s[lo:hi]
	}
	return out
}

// TestAgentCollectorMatchesSequential is the topology-equivalence
// acceptance test: N agent processes ingesting disjoint pre-sampled
// substreams, shipped over HTTP to a collector, must reproduce the
// estimate of one sequential estimator that observed the concatenated
// stream — exactly for the order-insensitive backends, up to float
// summation order for the map-backed entropy estimate.
func TestAgentCollectorMatchesSequential(t *testing.T) {
	const agents = 3
	const p = 0.25
	L := sampledZipf(60000, p, 7)
	chunks := splitChunks(L, agents)

	near := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}

	t.Run("f0", func(t *testing.T) {
		cfg := StreamConfig{Stat: "f0", P: p, Seed: 42, Shards: 2, Batch: 256, Presampled: true}
		url := agentFleet(t, cfg, "flows", chunks)

		seq := core.NewF0Estimator(core.F0Config{P: p}, rng.New(42))
		for _, it := range L {
			seq.Observe(it)
		}
		var got estimateResp
		do(t, http.MethodGet, url+"/v1/streams/flows/estimate", "", nil, &got)
		if got.Agents != agents {
			t.Fatalf("collector folded %d agents, want %d", got.Agents, agents)
		}
		if got.Kept != uint64(len(L)) {
			t.Fatalf("collector kept %d items, want %d", got.Kept, len(L))
		}
		if got.Estimates.Values["f0"] != seq.Estimate() {
			t.Fatalf("merged F0 %v, sequential %v", got.Estimates.Values["f0"], seq.Estimate())
		}
	})

	t.Run("fk-exact", func(t *testing.T) {
		cfg := StreamConfig{Stat: "fk", K: 3, P: p, Seed: 42, Shards: 2, Batch: 256, Presampled: true, Exact: true}
		url := agentFleet(t, cfg, "skew", chunks)

		seq := core.NewFkEstimator(core.FkConfig{K: 3, P: p, Exact: true}, rng.New(42))
		for _, it := range L {
			seq.Observe(it)
		}
		var got estimateResp
		do(t, http.MethodGet, url+"/v1/streams/skew/estimate", "", nil, &got)
		if got.Estimates.Values["fk"] != seq.Estimate() {
			t.Fatalf("merged F3 %v, sequential %v", got.Estimates.Values["fk"], seq.Estimate())
		}
		moments := seq.Moments()
		for l := 2; l <= 3; l++ {
			if got.Estimates.Values[fmt.Sprintf("f%d", l)] != moments[l] {
				t.Fatalf("merged F%d differs from sequential", l)
			}
		}
	})

	t.Run("fk-levelset", func(t *testing.T) {
		cfg := StreamConfig{Stat: "fk", K: 2, P: p, Seed: 42, Budget: 512, Shards: 2, Batch: 256, Presampled: true}
		url := agentFleet(t, cfg, "skew-ls", chunks)

		// The level-set backend merges with bounded (not zero) error:
		// check agreement within the configured band width rather than
		// exact equality, and against the true moment for sanity.
		seq := core.NewFkEstimator(core.FkConfig{K: 2, P: p, Budget: 512}, rng.New(42))
		for _, it := range L {
			seq.Observe(it)
		}
		var got estimateResp
		do(t, http.MethodGet, url+"/v1/streams/skew-ls/estimate", "", nil, &got)
		merged, sequential := got.Estimates.Values["fk"], seq.Estimate()
		if rel := math.Abs(merged-sequential) / sequential; rel > 0.15 {
			t.Fatalf("merged level-set F2 %v vs sequential %v (rel %.3f)", merged, sequential, rel)
		}
	})

	t.Run("entropy", func(t *testing.T) {
		cfg := StreamConfig{Stat: "entropy", P: p, Seed: 42, Shards: 2, Batch: 256, Presampled: true}
		url := agentFleet(t, cfg, "ent", chunks)

		seq := core.NewEntropyEstimator(core.EntropyConfig{P: p}, rng.New(42))
		for _, it := range L {
			seq.Observe(it)
		}
		var got estimateResp
		do(t, http.MethodGet, url+"/v1/streams/ent/estimate", "", nil, &got)
		if !near(got.Estimates.Values["entropy"], seq.Estimate()) {
			t.Fatalf("merged entropy %v, sequential %v", got.Estimates.Values["entropy"], seq.Estimate())
		}
	})

	t.Run("hh1", func(t *testing.T) {
		cfg := StreamConfig{Stat: "hh1", P: p, Alpha: 0.05, Seed: 42, Shards: 2, Batch: 256, Presampled: true}
		url := agentFleet(t, cfg, "hitters", chunks)

		seq := core.NewF1HeavyHitters(core.F1HHConfig{P: p, Alpha: 0.05}, rng.New(42))
		for _, it := range L {
			seq.Observe(it)
		}
		var got estimateResp
		do(t, http.MethodGet, url+"/v1/streams/hitters/estimate", "", nil, &got)
		want := seq.Report()
		if len(got.Estimates.F1Hitters) == 0 {
			t.Fatal("no heavy hitters from the fleet")
		}
		// The CountMin merges exactly, so every sequentially-reported
		// hitter must appear with an identical frequency estimate.
		merged := make(map[stream.Item]float64, len(got.Estimates.F1Hitters))
		for _, h := range got.Estimates.F1Hitters {
			merged[h.Item] = h.Freq
		}
		for _, h := range want {
			if f, ok := merged[h.Item]; !ok || f != h.Freq {
				t.Fatalf("hitter %d: merged %v, sequential %v", h.Item, f, h.Freq)
			}
		}
	})

	t.Run("all", func(t *testing.T) {
		cfg := StreamConfig{Stat: "all", P: p, Alpha: 0.05, Seed: 42, Shards: 2, Batch: 256, Presampled: true}
		url := agentFleet(t, cfg, "everything", chunks)

		seq := core.NewMonitor(core.MonitorConfig{P: p, HHAlpha: 0.05}, rng.New(42))
		for _, it := range L {
			seq.Observe(it)
		}
		rep := seq.Report()
		var got estimateResp
		do(t, http.MethodGet, url+"/v1/streams/everything/estimate", "", nil, &got)
		if got.Estimates.Values["f0"] != rep.F0 {
			t.Fatalf("merged monitor F0 %v, sequential %v", got.Estimates.Values["f0"], rep.F0)
		}
		if got.Estimates.Values["n"] != rep.EstimatedLength {
			t.Fatalf("merged monitor n %v, sequential %v", got.Estimates.Values["n"], rep.EstimatedLength)
		}
		if !near(got.Estimates.Values["entropy"], rep.Entropy) {
			t.Fatalf("merged monitor entropy %v, sequential %v", got.Estimates.Values["entropy"], rep.Entropy)
		}
	})
}

// TestAgentSamplesInProcess exercises the sampled-NetFlow mode: agents
// receive ORIGINAL traffic and Bernoulli-sample it in their pipeline
// workers before the estimators see it.
func TestAgentSamplesInProcess(t *testing.T) {
	const n = 80000
	wl := workload.Zipf(n, 4096, 1.1, 21)
	original := stream.Collect(wl.Stream)
	truth := stream.NewFreq(original)
	chunks := splitChunks(original, 2)

	// SampleSeed fixed for determinism (0 would derive time-based coins).
	cfg := StreamConfig{Stat: "f0", P: 0.2, Seed: 5, Shards: 2, Batch: 512, SampleSeed: 77}
	url := agentFleet(t, cfg, "raw", chunks)

	var got estimateResp
	do(t, http.MethodGet, url+"/v1/streams/raw/estimate", "", nil, &got)
	if got.Fed != n {
		t.Fatalf("fleet fed %d items, want %d", got.Fed, n)
	}
	keptFrac := float64(got.Kept) / float64(n)
	if keptFrac < 0.15 || keptFrac > 0.25 {
		t.Fatalf("kept fraction %.3f far from p=0.2", keptFrac)
	}
	// Lemma 8 guarantees only a 4/√p multiplicative factor; the band
	// here is a sanity check on the plumbing, not the analysis.
	est := got.Estimates.Values["f0"]
	trueF0 := float64(truth.F0())
	if est < trueF0/4 || est > trueF0*4 {
		t.Fatalf("F0 estimate %v vs true %v outside the 4x sanity band", est, trueF0)
	}
}

// TestShippingIsIdempotent re-ships cumulative state and checks the
// collector never double-counts: the estimate after three flushes equals
// the estimate after one.
func TestShippingIsIdempotent(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()

	agent := NewAgent(AgentConfig{ID: "solo", Upstream: cts.URL})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()

	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 3, Presampled: true, Shards: 1}
	cfgBody, _ := json.Marshal(cfg)
	do(t, http.MethodPut, ats.URL+"/v1/streams/s", "application/json", cfgBody, nil)
	do(t, http.MethodPost, ats.URL+"/v1/streams/s/ingest", ContentTypeBinary, binBody(sampledZipf(5000, 0.5, 31)), nil)

	var first estimateResp
	do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil)
	do(t, http.MethodGet, cts.URL+"/v1/streams/s/estimate", "", nil, &first)

	do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil)
	do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil)
	var after estimateResp
	do(t, http.MethodGet, cts.URL+"/v1/streams/s/estimate", "", nil, &after)

	if after.Agents != 1 {
		t.Fatalf("collector tracks %d agents, want 1", after.Agents)
	}
	if after.Estimates.Values["f0"] != first.Estimates.Values["f0"] || after.Kept != first.Kept {
		t.Fatal("re-shipping cumulative state changed the global estimate")
	}
}

// TestAgentRestartReplacesState simulates an agent crash/restart: the
// new incarnation's Seq restarts at 1, and its (fresh, smaller) state
// must REPLACE the old incarnation's at the collector instead of being
// discarded as a stale replay.
func TestAgentRestartReplacesState(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()

	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 3, Presampled: true, Shards: 1}
	cfgBody, _ := json.Marshal(cfg)

	runIncarnation := func(items stream.Slice, flushes int) {
		agent := NewAgent(AgentConfig{ID: "phoenix", Upstream: cts.URL})
		defer agent.Close()
		ats := httptest.NewServer(agent.Handler())
		defer ats.Close()
		do(t, http.MethodPut, ats.URL+"/v1/streams/s", "application/json", cfgBody, nil)
		do(t, http.MethodPost, ats.URL+"/v1/streams/s/ingest", ContentTypeBinary, binBody(items), nil)
		for i := 0; i < flushes; i++ {
			if resp := do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("flush: status %d", resp.StatusCode)
			}
		}
	}

	// First incarnation ships several times (Seq climbs), then "dies".
	runIncarnation(stream.Slice{1, 2, 3, 4, 5}, 4)
	var before estimateResp
	do(t, http.MethodGet, cts.URL+"/v1/streams/s/estimate", "", nil, &before)
	if before.Estimates.Values["f0_sampled"] != 5 {
		t.Fatalf("first incarnation: f0_sampled %v, want 5", before.Estimates.Values["f0_sampled"])
	}

	// Restarted process, same ID, Seq back at 1, different (smaller) data.
	runIncarnation(stream.Slice{7, 8}, 1)
	var after estimateResp
	do(t, http.MethodGet, cts.URL+"/v1/streams/s/estimate", "", nil, &after)
	if after.Agents != 1 {
		t.Fatalf("collector tracks %d agents after restart, want 1", after.Agents)
	}
	if after.Estimates.Values["f0_sampled"] != 2 {
		t.Fatalf("restarted agent's state not adopted: f0_sampled %v, want 2",
			after.Estimates.Values["f0_sampled"])
	}
}

// TestIngestRacingDelete hammers ingest while the stream is deleted;
// the race must drop requests cleanly, never panic a closed pipeline.
func TestIngestRacingDelete(t *testing.T) {
	agent := NewAgent(AgentConfig{ID: "racer"})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()

	cfgBody, _ := json.Marshal(StreamConfig{Stat: "f0", P: 0.5, Seed: 1, Presampled: true, Shards: 2})
	do(t, http.MethodPut, ats.URL+"/v1/streams/doomed", "application/json", cfgBody, nil)

	var wg sync.WaitGroup
	body := binBody(sampledZipf(2000, 0.5, 1))
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Post(ats.URL+"/v1/streams/doomed/ingest", ContentTypeBinary, bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	req, _ := http.NewRequest(http.MethodDelete, ats.URL+"/v1/streams/doomed", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wg.Wait()
}

// TestCollectorRejections covers the collector's input validation.
func TestCollectorRejections(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()

	post := func(body []byte) int {
		resp := do(t, http.MethodPost, cts.URL+"/v1/collect", "application/json", body, nil)
		return resp.StatusCode
	}

	if post([]byte("not json")) != http.StatusBadRequest {
		t.Fatal("garbage JSON accepted")
	}
	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 1}
	bad, _ := json.Marshal(Summary{Agent: "a", Stream: "s", Seq: 1, Config: cfg, Payload: []byte{0xff, 0x01}})
	if post(bad) != http.StatusBadRequest {
		t.Fatal("corrupt payload accepted")
	}

	// A valid summary, then a config-mismatched one for the same stream.
	e := core.NewF0Estimator(core.F0Config{P: 0.5}, rng.New(1))
	e.Observe(1)
	payload, _ := e.MarshalBinary()
	good, _ := json.Marshal(Summary{Agent: "a", Stream: "s", Seq: 1, Config: cfg, Fed: 1, Kept: 1, Payload: payload})
	if post(good) != http.StatusAccepted {
		t.Fatal("valid summary rejected")
	}
	otherCfg := cfg
	otherCfg.Seed = 2
	e2 := core.NewF0Estimator(core.F0Config{P: 0.5}, rng.New(2))
	e2.Observe(1)
	payload2, _ := e2.MarshalBinary()
	clash, _ := json.Marshal(Summary{Agent: "b", Stream: "s", Seq: 1, Config: otherCfg, Payload: payload2})
	if post(clash) != http.StatusBadRequest {
		t.Fatal("config-mismatched summary accepted")
	}

	// A payload whose estimator disagrees with its own declared config
	// (here: different p than the config claims) must be rejected at
	// Accept time, not poison later estimate queries.
	eBad := core.NewF0Estimator(core.F0Config{P: 0.9}, rng.New(1))
	eBad.Observe(1)
	payloadBad, _ := eBad.MarshalBinary()
	inconsistent, _ := json.Marshal(Summary{Agent: "c", Stream: "s2", Seq: 1, Config: cfg, Payload: payloadBad})
	if post(inconsistent) != http.StatusBadRequest {
		t.Fatal("payload inconsistent with its declared config accepted")
	}

	// Unknown stream estimates are 404.
	resp := do(t, http.MethodGet, cts.URL+"/v1/streams/nope/estimate", "", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream estimate: status %d", resp.StatusCode)
	}

	// DELETE is the recovery path after a coordinated config change: drop
	// the stream, and a shipment under a NEW config is then adopted.
	if resp := do(t, http.MethodDelete, cts.URL+"/v1/streams/s", "", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("collector delete: status %d", resp.StatusCode)
	}
	// clash's payload is self-consistent with otherCfg (it was built from
	// it); it was only rejected against the stream's pinned config, so
	// after deletion it must be adopted as the stream's new config.
	if post(clash) != http.StatusAccepted {
		t.Fatal("self-consistent summary rejected after stream deletion")
	}
}

// TestAgentAPIValidation covers the agent's handler edge cases.
func TestAgentAPIValidation(t *testing.T) {
	agent := NewAgent(AgentConfig{ID: "a1"})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()

	// Bad config: p out of range.
	bad, _ := json.Marshal(StreamConfig{Stat: "f0", P: 1.5})
	if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/x", "application/json", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad config: status %d", resp.StatusCode)
	}
	// Unknown stat.
	bad2, _ := json.Marshal(StreamConfig{Stat: "median", P: 0.5})
	if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/x", "application/json", bad2, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown stat: status %d", resp.StatusCode)
	}

	good, _ := json.Marshal(StreamConfig{Stat: "f0", P: 0.5, Seed: 9, Presampled: true})
	if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/x", "application/json", good, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	// Idempotent re-create with identical config.
	if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/x", "application/json", good, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("idempotent re-create: status %d", resp.StatusCode)
	}
	// Conflicting re-create.
	clash, _ := json.Marshal(StreamConfig{Stat: "f0", P: 0.25, Seed: 9, Presampled: true})
	if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/x", "application/json", clash, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting re-create: status %d", resp.StatusCode)
	}
	// A validation error on an existing name is still a 400, not a 409.
	invalid, _ := json.Marshal(StreamConfig{Stat: "f0", P: 1.5})
	if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/x", "application/json", invalid, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid config on existing name: status %d, want 400", resp.StatusCode)
	}

	// Text ingest.
	if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/x/ingest", ContentTypeText, []byte("1\n2\n3\n"), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("text ingest: status %d", resp.StatusCode)
	}
	// Item 0 rejected.
	if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/x/ingest", ContentTypeText, []byte("0\n"), nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("item 0 accepted")
	}
	// Truncated binary rejected.
	if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/x/ingest", ContentTypeBinary, []byte{1, 2, 3}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("truncated binary accepted")
	}
	// Unknown stream.
	if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/nope/ingest", ContentTypeText, []byte("1\n"), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatal("unknown stream ingest accepted")
	}
	// Flush without an upstream is a bad-gateway error.
	if resp := do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil); resp.StatusCode != http.StatusBadGateway {
		t.Fatal("flush without upstream succeeded")
	}

	// Local estimate works and reflects the three ingested items.
	var est estimateResp
	do(t, http.MethodGet, ats.URL+"/v1/streams/x/estimate", "", nil, &est)
	if est.Fed != 3 || est.Estimates.Values["f0_sampled"] != 3 {
		t.Fatalf("local estimate: fed=%d f0_sampled=%v", est.Fed, est.Estimates.Values["f0_sampled"])
	}

	// Ops endpoints.
	var health map[string]any
	do(t, http.MethodGet, ats.URL+"/healthz", "", nil, &health)
	if health["status"] != "ok" || health["role"] != "agent" {
		t.Fatalf("healthz: %v", health)
	}
	var metrics map[string]any
	do(t, http.MethodGet, ats.URL+"/metricsz", "", nil, &metrics)
	if _, ok := metrics["ingest_items"]; !ok {
		t.Fatalf("metricsz missing ingest_items: %v", metrics)
	}

	// Delete, then the stream is gone.
	if resp := do(t, http.MethodDelete, ats.URL+"/v1/streams/x", "", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatal("delete failed")
	}
	if resp := do(t, http.MethodGet, ats.URL+"/v1/streams/x/estimate", "", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatal("deleted stream still answers")
	}
}

// TestConcurrentIngestEstimateFlush hammers one agent stream from many
// goroutines — ingests racing local estimates racing flushes — and is
// the test the race detector patrols (Sync-based snapshots must never
// tear).
func TestConcurrentIngestEstimateFlush(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()
	agent := NewAgent(AgentConfig{ID: "busy", Upstream: cts.URL})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()

	cfg, _ := json.Marshal(StreamConfig{Stat: "all", P: 0.5, Seed: 11, Presampled: true, Shards: 2, Batch: 64, Alpha: 0.1})
	do(t, http.MethodPut, ats.URL+"/v1/streams/hot", "application/json", cfg, nil)

	const workers, perWorker = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				chunk := sampledZipf(500, 0.5, uint64(w*1000+i))
				resp, err := http.Post(ats.URL+"/v1/streams/hot/ingest", ContentTypeBinary, bytes.NewReader(binBody(chunk)))
				if err == nil {
					resp.Body.Close()
				}
				switch i % 5 {
				case 0:
					if resp, err := http.Get(ats.URL + "/v1/streams/hot/estimate"); err == nil {
						resp.Body.Close()
					}
				case 1:
					if resp, err := http.Post(ats.URL+"/flush", "", nil); err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil)
	var got estimateResp
	do(t, http.MethodGet, cts.URL+"/v1/streams/hot/estimate", "", nil, &got)
	if got.Estimates.Values["f0"] <= 0 {
		t.Fatal("degenerate estimate after concurrent load")
	}
}

// TestServerLifecycle exercises the Start/Shutdown skeleton end to end.
func TestServerLifecycle(t *testing.T) {
	agent := NewAgent(AgentConfig{ID: "lc"})
	defer agent.Close()
	srv, err := Start("127.0.0.1:0", agent.Handler())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(srv.URL(), "127.0.0.1") {
		t.Fatalf("unexpected URL %s", srv.URL())
	}
	resp, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5e9)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}
