// Package server implements the paper's deployment topology as a real
// service: a sampled-NetFlow-style monitoring daemon (cmd/substreamd)
// that runs in one of two roles.
//
// An AGENT owns a registry of named streams, each backed by a sharded
// ingestion pipeline (internal/pipeline) of mergeable estimator replicas.
// It ingests item batches over HTTP, answers local estimate queries, and
// periodically — or on demand — ships its serialized cumulative estimator
// state upstream.
//
// A COLLECTOR accepts shipped summaries, keeps the latest summary per
// (stream, agent) pair, and answers global estimate queries by folding
// the retained summaries with the estimators' Merge paths. Because each
// agent ships its full cumulative state ("latest wins": within one Boot
// incarnation summaries are ordered by Seq, and any Boot change is
// adopted as a new incarnation), shipping is idempotent: a lost or
// repeated shipment is repaired by the next one, and no state is ever
// counted twice. A restarted agent begins a new incarnation whose state
// replaces the dead one's; observations the old process had not shipped
// die with it, the inherent cost of in-memory cumulative shipping. K agent processes each observing an independently sub-sampled
// substream therefore reproduce the single-monitor estimate of the union
// stream — the scenario the paper's Section 1 opens with.
//
// # Fault tolerance
//
// Because summaries are cumulative and folding is latest-wins, the ship
// path recovers from any loss without queues or replay: a failed ship
// marks the stream dirty and the next flush ships the NEWEST snapshot,
// which supersedes everything that was lost. The hardening around that
// loop:
//
//   - Agents retry transient ship failures (connection errors, 5xx)
//     inside the flush with capped exponential backoff and equal jitter
//     (AgentConfig.ShipRetries, default 2; AgentConfig.ShipBackoff,
//     default 100ms base, doubled per attempt, capped at 16x; the
//     daemon flags are -ship-retries/-ship-backoff). 4xx responses are
//     never retried — the collector answered; repeating the question
//     will not change its mind.
//
//   - A per-upstream circuit breaker (AgentConfig.BreakerThreshold,
//     default 5 consecutive failures; -breaker-threshold) fails flushes
//     fast while open — before the pipeline is even quiesced for a
//     snapshot — then admits a single probe per cooldown
//     (AgentConfig.BreakerCooldown, default the flush interval) whose
//     outcome closes or re-opens it. Ship attempts are accounted by
//     cause in ship_errors (retry, breaker_open, gave_up alongside the
//     transport causes), and the gauges agent_breaker_state,
//     agent_ship_success_age_seconds, and agent_stream_dirty expose the
//     loop's health; POST /v1/flush attempts every stream and reports
//     {"shipped": n, "failed": m}.
//
//   - Collectors configured with CollectorConfig.SnapshotDir
//     (-snapshot-dir) checkpoint the retained summary table atomically
//     (write-temp, fsync, rename) every SnapshotInterval
//     (-snapshot-interval, default 30s) plus once on shutdown, and
//     restore it on startup. The snapshot wire format:
//
//     'C' 'S'            magic
//     u8  version        currently 1
//     i64 savedAt        unix-nanos of the checkpoint (diagnostic)
//     u32 count          number of (stream, agent) entries
//     count times:
//     nested summaryJSON   the retained Summary with its Payload
//     re-encoded in the estimator wire format below
//     i64 lastSeen         unix-nanos of the entry's acceptance
//     u32 crc            IEEE CRC-32 of every preceding byte, little-endian
//
// The CRC trailer is verified before any parsing and every entry
// re-passes the live collect path's validation (config validate,
// registry decode, trial fold, config pinning), so a torn, truncated,
// or bit-flipped snapshot fails whole into "start empty + warn" — never
// a panic, never a partial table. Restored entries count as sightings
// for -max-summary-age staleness, letting a long-dead collector answer
// from the checkpoint while the fleet re-converges. internal/faults
// provides the deterministic fault-injecting RoundTripper/proxy that
// drives the race-gated chaos e2e suite over all of this.
//
// # Wire format
//
// Summaries travel as a JSON envelope (Summary) whose Payload field is
// the binary serialization of one estimator, built from the primitives
// in internal/sketch (little-endian fields, length-prefixed nesting).
// The rules:
//
//   - Every payload starts with a one-byte TYPE TAG and a one-byte
//     FORMAT VERSION (sketch.WireVersion, currently 2 — bumped when the
//     table sketches moved to divide-free fastrange bucket mapping,
//     which changes where version-1 tables placed their counts).
//   - Tag assignments are owned by the internal/estimator registry: each
//     serializable type Registers its tag, name, decoder, and constructor
//     from its own package, and estimator.Kinds() (surfaced as
//     `substreamd -list-estimators`) is the authoritative list. The
//     table below mirrors the registry for operator reference and is
//     pinned to it by TestRegistryMatchesWireTable.
//   - Tag ranges are partitioned by package: internal/sketch owns
//     0x01–0x0f (countmin 0x01, countsketch 0x02, kmv 0x03, hll 0x04,
//     spacesaving 0x05, misragries 0x06, topk 0x07), internal/levelset
//     owns 0x10–0x1f (exactcounter 0x10, levelset 0x11, iw 0x12),
//     internal/core owns 0x20–0x2f (fk 0x20, f0 0x21, entropy 0x22,
//     hh1 0x23, hh2 0x24, all 0x25, gee 0x26), internal/window owns
//     0x30–0x3f (window 0x30, the epoch-ring wrapper whose payload
//     nests one pristine, one cumulative, and W generation payloads
//     from the concrete ranges around it), and internal/quantile owns
//     0x40–0x4f (quantile 0x40, CKMS targeted streaming quantiles —
//     a concrete kind, so it nests inside window payloads like the
//     ranges below 0x30), and internal/sample owns 0x50–0x5f (varopt
//     0x50, the VarOpt-k weighted reservoir behind subset-sum queries;
//     concrete, so it too nests inside window payloads).
//   - Decoders reject unknown tags, unknown versions, truncated input,
//     trailing bytes, and any length field larger than the remaining
//     buffer could hold — corrupt input must fail cleanly, never panic
//     or over-allocate. Composite payloads gate nested tags to the
//     range the component may come from before decoding, so crafted
//     input cannot recurse the decoder.
//   - Hash functions serialize as their polynomial coefficients, so a
//     decoded summary is bit-identical to its source and remains
//     mergeable with summaries from identically-seeded replicas; merge
//     compatibility is verified with probe keys, not trusted.
//   - Any incompatible change to a payload layout must bump
//     sketch.WireVersion; agents and collectors on different versions
//     refuse each other's payloads rather than misinterpreting them.
//
// Mergeability across processes requires all agents of a stream to build
// their estimators from identical configuration, including the Seed
// field of StreamConfig — the daemon-level rendering of the library rule
// that replicas must be constructed from generators at identical state.
// Windowed streams (StreamConfig.Window > 0) additionally share Window
// and Epoch: epoch boundaries derive from Unix time, so identically
// configured agents on synchronized clocks rotate together, Summary
// carries the ring's epoch index, and the collector's fold realigns
// whatever flush-schedule skew remains (see internal/window).
//
// # Ingest path
//
// POST /v1/streams/{name}/ingest accepts four body formats (codec.go):
// text/plain, one decimal item per line; application/octet-stream,
// fixed 8-byte little-endian items; and their weighted counterparts —
// text/vnd.substream.weighted, "key weight" per line with the weight
// column optional (default 1), and application/vnd.substream.witem,
// fixed 16-byte records of an 8-byte little-endian key followed by the
// weight's float64 bits. Weights must be positive and finite; a bad
// weight is its own error cause (bad_weight), distinct from garbled
// framing. All four decode incrementally through pooled 64 KiB
// buffers — a request body is never materialized, so per-request
// memory is bounded by one chunk regardless of body size, and
// steady-state decoding allocates nothing. The weighted formats have
// their own content types, decoders, and pools precisely so the
// unweighted hot path stays byte-identical to the pre-weighted wire.
//
// The binary paths go further and never copy: each decoded chunk is
// a pooled buffer handed to the stream's pipeline via
// pipeline.FeedOwned (FeedWeightedOwned for weighted records) together
// with a release closure, and the shard worker returns the buffer to
// the pool after applying it. Chunks in flight never alias — a buffer
// leaves the pool when the decoder fills it and re-enters only when
// its consumer releases it. The text paths use the copying feed (their
// bytes must be parsed anyway, so the copy is free relative to
// parsing).
//
// On a mid-body error (zero item, malformed line, truncated record,
// unusable weight) chunks already fed stay consumed — HTTP cannot roll
// them back — and the 400 response reports how many items were applied
// before the fault.
//
// Weighted streams are queried through the subset-sum endpoints
// (subsetsum.go): GET /v1/streams/{name}/subsetsum on an agent and
// GET /v1/subsetsum?stream=... on a collector, both taking an IPv4
// CIDR prefix (the address in the key's low 32 bits) and an optional
// scope=window parameter. The answer is the Horvitz–Thompson subset
// sum of the stream's VarOpt reservoir — or, at the collector, of the
// CDKLT merge of every fresh agent's reservoir. Stats without the
// subset-sum capability answer 400, never a silent zero.
//
// Ingest instrumentation is sampled: the decode/feed latency
// histograms observe one request in AgentConfig.ObsSampleEvery
// (default 64) so the hot path skips its clock reads on unsampled
// requests; request/item/byte/error counters stay exact.
//
// # Ops endpoints
//
// Both roles expose the same operational surface alongside their data
// APIs (all instrumentation lives in internal/obs; see the README's
// Observability section for the metric catalog):
//
//	GET /healthz                 liveness: {"status": "ok", "role": ...}
//	GET /metricsz                metrics as flat JSON (expvar-style);
//	                             labeled families also emit a bare-name
//	                             sum for dashboard compatibility
//	GET /metricsz?format=prom    Prometheus text format 0.0.4: counters,
//	                             gauges, and CKMS-quantile histogram
//	                             summaries (p50/p99/p999 + _sum/_count)
//	GET /debug/tracez            newest-first ring of flush→fold spans:
//	                             agents record "ship" spans (snapshot,
//	                             marshal, POST timings per summary),
//	                             collectors record "fold" spans (decode,
//	                             trial-fold, end-to-end latency) joined
//	                             by the TraceID stamped on each Summary
//	GET /debug/pprof/...         standard net/http/pprof profiles
//
// Every response carries an X-Request-Id header echoing the process-wide
// request sequence number; at -log-level debug each request is also
// logged with that id, method, path, status, and duration.
//
// Data-plane routes, for completeness — agent: PUT/DELETE
// /v1/streams/{name}, GET /v1/streams, POST /v1/streams/{name}/ingest,
// GET /v1/streams/{name}/estimate, GET /v1/streams/{name}/subsetsum,
// POST /v1/streams/{name}/flush, POST /v1/flush (alias /flush);
// collector: POST /v1/collect, GET /v1/streams,
// GET /v1/streams/{name}/estimate, GET /v1/subsetsum, DELETE
// /v1/streams/{name}.
package server

// The daemon speaks whatever the estimator registry holds; linking
// internal/core (which pulls internal/levelset and internal/sketch) and
// internal/quantile is what populates it with the standard kinds.
// Embedders adding their own kinds just import the registering package
// before starting the daemon.
import (
	_ "substream/internal/core"
	_ "substream/internal/quantile"
	_ "substream/internal/sample"
)
