package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"substream/internal/faults"
)

// chaosCollectorFront is a swappable reverse-front for a collector: the
// URL agents ship to stays fixed while the collector behind it is
// killed and replaced — the e2e shape of a collector restart.
type chaosCollectorFront struct {
	handler atomic.Pointer[http.Handler]
	ts      *httptest.Server
}

func newChaosFront(t *testing.T, c *Collector) *chaosCollectorFront {
	t.Helper()
	f := &chaosCollectorFront{}
	f.swap(c)
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*f.handler.Load()).ServeHTTP(w, r)
	}))
	t.Cleanup(f.ts.Close)
	return f
}

func (f *chaosCollectorFront) swap(c *Collector) {
	h := c.Handler()
	f.handler.Store(&h)
}

// chaosEstimates reads both streams' global estimates, reporting ok =
// false while the collector cannot answer yet.
func chaosEstimates(c *Collector) (map[string]GlobalEstimate, bool) {
	out := make(map[string]GlobalEstimate, 2)
	for _, name := range []string{"cum", "win"} {
		est, err := c.Estimate(name)
		if err != nil {
			return nil, false
		}
		out[name] = est
	}
	return out, true
}

// TestChaosConvergenceWithCollectorRestart is the fault-tolerance
// layer's end-to-end acceptance: two agents ship a cumulative AND a
// windowed stream through a seeded 30%-drop + delay fault plan, the
// collector is killed mid-run and revived from its durability snapshot,
// and the revived collector's estimates must converge EXACTLY to the
// no-fault truth within a bounded number of flush ticks — no queues, no
// replay, just cumulative reshipping doing its job.
func TestChaosConvergenceWithCollectorRestart(t *testing.T) {
	clock := withManualEpochs(t)
	dir := t.TempDir()

	collector := NewCollector(CollectorConfig{SnapshotDir: dir})
	front := newChaosFront(t, collector)

	cumCfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 11, Presampled: true, Shards: 2, Batch: 64}
	winCfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 12, Presampled: true, Shards: 2, Batch: 64,
		Window: 2, Epoch: Duration(time.Second)}

	const nAgents = 2
	agents := make([]*Agent, nAgents)
	for i := range agents {
		// Per-agent seeds draw distinct fault sequences from one plan.
		tr := faults.NewTransport(faults.Plan{
			Seed: uint64(100 + i), Drop: 0.3, Delay: 0.2, MaxDelay: 2 * time.Millisecond,
		}, nil)
		a := NewAgent(AgentConfig{
			ID:       fmt.Sprintf("chaos-%d", i),
			Upstream: front.ts.URL,
			Client:   &http.Client{Transport: tr, Timeout: 5 * time.Second},
			// Tight schedule so the bounded-tick budget is wall-clock
			// cheap: one retry, 1ms backoff, breaker probing every tick.
			ShipRetries: 1, ShipBackoff: time.Millisecond,
			BreakerThreshold: 3, BreakerCooldown: time.Millisecond,
		})
		t.Cleanup(a.Close)
		for name, cfg := range map[string]StreamConfig{"cum": cumCfg, "win": winCfg} {
			if err := a.CreateStream(name, cfg); err != nil {
				t.Fatal(err)
			}
		}
		agents[i] = a
	}

	// Phase 1: epochs of ingest with lossy flushes between them, and a
	// collector kill + snapshot-restore midway. Flush errors are the
	// chaos doing its job — ignored.
	const epochs = 4
	chunks := epochChunks(epochs, nAgents, 500)
	ctx := context.Background()
	for e := 0; e < epochs; e++ {
		clock.Set(uint64(e))
		for i, a := range agents {
			for _, name := range []string{"cum", "win"} {
				st, ok := a.lookup(name)
				if !ok {
					t.Fatalf("agent %d lost stream %q", i, name)
				}
				st.run.ingestCopy(chunks[e][i])
			}
		}
		for _, a := range agents {
			_, _ = a.FlushAll(ctx)
		}
		if e == 1 {
			// Kill the collector after checkpointing (a planned restart;
			// Run's shutdown write does the same). Everything shipped
			// after this checkpoint is lost with the process and must be
			// re-converged by the agents' cumulative reships.
			if err := collector.SaveSnapshot(); err != nil {
				t.Fatal(err)
			}
			collector = NewCollector(CollectorConfig{SnapshotDir: dir})
			front.swap(collector)
		}
	}

	// No-fault truth: each agent's final cumulative state folded into a
	// clean collector directly, bypassing the chaotic network entirely.
	truth := NewCollector(CollectorConfig{})
	for _, a := range agents {
		for _, name := range []string{"cum", "win"} {
			st, _ := a.lookup(name)
			payload, epoch, fed, kept, err := st.run.snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if err := truth.Accept(Summary{
				Agent: a.cfg.ID, Stream: name, Boot: a.boot, Seq: 1 << 62,
				Config: st.cfg, Fed: fed, Kept: kept, Epoch: epoch, Payload: payload,
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want, ok := chaosEstimates(truth)
	if !ok {
		t.Fatal("truth collector cannot estimate")
	}

	// Phase 2: bounded-tick convergence. Each tick is one flush round
	// through the same seeded chaos; the revived collector must reach
	// the exact no-fault estimates within the budget.
	const tickBudget = 30
	converged := -1
	for tick := 0; tick < tickBudget; tick++ {
		for _, a := range agents {
			_, _ = a.FlushAll(ctx)
		}
		if got, ok := chaosEstimates(collector); ok && reflect.DeepEqual(got, want) {
			converged = tick
			break
		}
	}
	if converged < 0 {
		got, _ := chaosEstimates(collector)
		t.Fatalf("no convergence within %d ticks:\n got %+v\nwant %+v", tickBudget, got, want)
	}
	t.Logf("converged after %d post-restart flush ticks", converged+1)

	// The fault plans actually did damage (the run was not a free ride),
	// yet the estimates converged anyway.
	var dropped, forwarded uint64
	for _, a := range agents {
		s := a.cfg.Client.Transport.(*faults.Transport).Stats()
		dropped += s.Dropped
		forwarded += s.Forwarded
	}
	if dropped == 0 {
		t.Fatal("fault plan dropped nothing; the test exercised no chaos")
	}
	if forwarded == 0 {
		t.Fatal("no request survived the fault plan")
	}
}

// TestChaosOutageRevival covers the dead-collector scenario: the
// upstream is fully down for several flush ticks (every ship fails, the
// breaker trips), then revives — and the next successful flush round
// restores exact convergence because summaries are cumulative.
func TestChaosOutageRevival(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	front := newChaosFront(t, collector)

	tr := faults.NewTransport(faults.Plan{Seed: 1}, nil) // no random faults; outage only
	agent := NewAgent(AgentConfig{
		ID: "o", Upstream: front.ts.URL,
		Client:      &http.Client{Transport: tr, Timeout: 5 * time.Second},
		ShipRetries: -1, ShipBackoff: time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Millisecond,
	})
	t.Cleanup(agent.Close)
	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 3, Presampled: true}
	if err := agent.CreateStream("cum", cfg); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	st, _ := agent.lookup("cum")
	chunks := epochChunks(1, 1, 2000)
	st.run.ingestCopy(chunks[0][0][:1000])
	if _, err := agent.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}

	// Outage: k ticks of total loss while ingest continues.
	tr.SetDown(true)
	st.run.ingestCopy(chunks[0][0][1000:])
	for k := 0; k < 5; k++ {
		if _, err := agent.FlushAll(ctx); err == nil {
			t.Fatal("flush succeeded during the outage")
		}
	}
	if !agent.streamDirty("cum") {
		t.Fatal("outage did not mark the stream dirty")
	}

	// Revival: convergence within a couple of ticks (the first may be
	// eaten by a still-open breaker window).
	tr.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _ = agent.FlushAll(ctx)
		payload, epoch, fed, kept, err := st.run.snapshot()
		if err != nil {
			t.Fatal(err)
		}
		truth := NewCollector(CollectorConfig{})
		if err := truth.Accept(Summary{Agent: "o", Stream: "cum", Boot: 1, Seq: 1,
			Config: st.cfg, Fed: fed, Kept: kept, Epoch: epoch, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		wantEst, err1 := truth.Estimate("cum")
		gotEst, err2 := collector.Estimate("cum")
		if err1 == nil && err2 == nil && reflect.DeepEqual(gotEst, wantEst) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no convergence after revival: got %+v want %+v (%v/%v)", gotEst, wantEst, err2, err1)
		}
	}
	if agent.streamDirty("cum") {
		t.Fatal("stream still dirty after convergence")
	}
}
