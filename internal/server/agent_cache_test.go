package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestSnapshotStreamsCacheInvalidation drives the sorted-registry cache
// through create/read/delete cycles: snapshots must stay name-sorted and
// current after every mutation, and an unchanged registry must hand back
// the identical cached slice instead of re-sorting.
func TestSnapshotStreamsCacheInvalidation(t *testing.T) {
	a := NewAgent(AgentConfig{ID: "cache-test"})
	defer a.Close()
	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 3, Presampled: true, Shards: 1}
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if err := a.CreateStream(name, cfg); err != nil {
			t.Fatal(err)
		}
	}
	names := func() []string {
		var out []string
		for _, st := range a.snapshotStreams() {
			out = append(out, st.name)
		}
		return out
	}
	first := a.snapshotStreams()
	if got := names(); len(got) != 3 || got[0] != "alpha" || got[1] != "mid" || got[2] != "zeta" {
		t.Fatalf("snapshot not sorted: %v", got)
	}
	if second := a.snapshotStreams(); &second[0] != &first[0] {
		t.Fatal("unchanged registry rebuilt its snapshot instead of reusing the cache")
	}
	if err := a.CreateStream("beta", cfg); err != nil {
		t.Fatal(err)
	}
	if got := names(); len(got) != 4 || got[1] != "beta" {
		t.Fatalf("snapshot stale after create: %v", got)
	}
	ts := httptest.NewServer(a.Handler())
	defer ts.Close()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/mid", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete returned %s", resp.Status)
	}
	if got := names(); len(got) != 3 || got[0] != "alpha" || got[1] != "beta" || got[2] != "zeta" {
		t.Fatalf("snapshot stale after delete: %v", got)
	}
}
