package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"substream/internal/core"
	"substream/internal/obs"
	"substream/internal/rng"
)

// ingestCauses and collectCauses enumerate every cause label the audit
// tests below sweep, so a counter bumped under an unexpected cause fails
// the "all others unchanged" check instead of hiding.
var ingestCauses = []string{causeUnknownStream, causeContentType, causeTooLarge, causeDecode, causeBadWeight}
var collectCauses = []string{causeEnvelope, causeConfig, causePayload, causeConflict}

// causeValues captures every cause child of a vec.
func causeValues(v *obs.CounterVec, causes []string) map[string]uint64 {
	out := make(map[string]uint64, len(causes))
	for _, c := range causes {
		out[c] = v.With(c).Value()
	}
	return out
}

// assertCauseDelta checks exactly one cause moved, by exactly one.
func assertCauseDelta(t *testing.T, before, after map[string]uint64, want string) {
	t.Helper()
	deltas := map[string]uint64{}
	if want != "" {
		deltas[want] = 1
	}
	assertCauseDeltas(t, before, after, deltas)
}

// assertCauseDeltas checks every cause moved by exactly its expected
// delta (0 if absent from want) — the retry-aware form: one logical ship
// failure under a retry budget legitimately bumps several causes
// (per-attempt network/status, per-reattempt retry, one gave_up).
func assertCauseDeltas(t *testing.T, before, after map[string]uint64, want map[string]uint64) {
	t.Helper()
	for cause, b := range before {
		if got := after[cause] - b; got != want[cause] {
			t.Errorf("cause %q: delta %d, want %d", cause, got, want[cause])
		}
	}
}

// TestIngestErrorCausesAudit drives every early return of handleIngest
// and asserts each bumps exactly its own ingest_errors cause — the audit
// that no failure path is silently uncounted or double-counted.
func TestIngestErrorCausesAudit(t *testing.T) {
	agent := NewAgent(AgentConfig{ID: "audit"})
	defer agent.Close()
	if err := agent.CreateStream("s", StreamConfig{Stat: "f0", P: 0.5, Presampled: true}); err != nil {
		t.Fatal(err)
	}
	h := agent.Handler()
	errs := agent.Metrics().IngestErrors

	cases := []struct {
		name        string
		path        string
		contentType string
		body        []byte
		contentLen  int64 // overrides the request's declared length when > 0
		status      int
		cause       string
	}{
		{"unknown stream", "/v1/streams/nope/ingest", "text/plain", []byte("1\n"), 0,
			http.StatusNotFound, causeUnknownStream},
		{"bad content type", "/v1/streams/s/ingest", "application/json", []byte("[1]"), 0,
			http.StatusBadRequest, causeContentType},
		{"declared oversize", "/v1/streams/s/ingest", ContentTypeBinary, []byte{1}, maxIngestBytes + 1,
			http.StatusRequestEntityTooLarge, causeTooLarge},
		{"binary decode", "/v1/streams/s/ingest", ContentTypeBinary, []byte{1, 2, 3}, 0,
			http.StatusBadRequest, causeDecode},
		{"text decode", "/v1/streams/s/ingest", "text/plain", []byte("not-a-number\n"), 0,
			http.StatusBadRequest, causeDecode},
		{"weighted binary truncated", "/v1/streams/s/ingest", ContentTypeBinaryWeighted, []byte{1, 2, 3}, 0,
			http.StatusBadRequest, causeDecode},
		{"weighted binary bad weight", "/v1/streams/s/ingest", ContentTypeBinaryWeighted,
			encodeWeightedBinary([]uint64{7}, []float64{-2}), 0,
			http.StatusBadRequest, causeBadWeight},
		{"weighted text bad weight", "/v1/streams/s/ingest", ContentTypeTextWeighted, []byte("5 0\n"), 0,
			http.StatusBadRequest, causeBadWeight},
		{"weighted text unparseable weight", "/v1/streams/s/ingest", ContentTypeTextWeighted, []byte("5 heavy\n"), 0,
			http.StatusBadRequest, causeBadWeight},
		{"weighted text key decode", "/v1/streams/s/ingest", ContentTypeTextWeighted, []byte("x 2\n"), 0,
			http.StatusBadRequest, causeDecode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := causeValues(errs, ingestCauses)
			req := httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(string(tc.body)))
			req.Header.Set("Content-Type", tc.contentType)
			if tc.contentLen > 0 {
				req.ContentLength = tc.contentLen
			}
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code != tc.status {
				t.Fatalf("status %d, want %d (%s)", rr.Code, tc.status, rr.Body.String())
			}
			assertCauseDelta(t, before, causeValues(errs, ingestCauses), tc.cause)
		})
	}

	// A successful ingest moves no error cause and counts per stream.
	before := causeValues(errs, ingestCauses)
	itemsBefore := agent.Metrics().IngestItems.With("s").Value()
	req := httptest.NewRequest(http.MethodPost, "/v1/streams/s/ingest", strings.NewReader("1\n2\n3\n"))
	req.Header.Set("Content-Type", "text/plain")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest status %d", rr.Code)
	}
	assertCauseDelta(t, before, causeValues(errs, ingestCauses), "")
	if got := agent.Metrics().IngestItems.With("s").Value() - itemsBefore; got != 3 {
		t.Fatalf("ingest_items{stream=s} delta %d, want 3", got)
	}
}

// shipCauses enumerates every ship_errors cause, including the
// resilient-shipping additions.
var shipCauses = []string{causeNoUpstream, causeSnapshot, causeMarshal, causeRequest,
	causeNetwork, causeStatus, causeRetry, causeBreakerOpen, causeGaveUp}

// TestShipErrorCausesAudit drives the shipping failure modes an agent
// can hit without a cooperating collector: no upstream, connection
// refused (with and without a retry budget), a deterministic 4xx, a
// retried 5xx, and a tripped breaker — pinning the exact cause deltas
// each produces.
func TestShipErrorCausesAudit(t *testing.T) {
	newShipper := func(cfg AgentConfig) *Agent {
		cfg.ID = "shipper"
		if cfg.ShipBackoff == 0 {
			cfg.ShipBackoff = time.Millisecond
		}
		a := NewAgent(cfg)
		t.Cleanup(a.Close)
		if err := a.CreateStream("s", StreamConfig{Stat: "f0", P: 0.5, Presampled: true}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	deadUpstream := func() string {
		// A listener that is immediately closed: connection refused.
		dead := httptest.NewServer(http.NotFoundHandler())
		deadURL := dead.URL
		dead.Close()
		return deadURL
	}

	t.Run("no upstream", func(t *testing.T) {
		a := newShipper(AgentConfig{})
		before := causeValues(a.Metrics().ShipErrors, shipCauses)
		if _, err := a.FlushAll(context.Background()); err == nil {
			t.Fatal("flush without upstream succeeded")
		}
		assertCauseDelta(t, before, causeValues(a.Metrics().ShipErrors, shipCauses), causeNoUpstream)
	})

	t.Run("network no retries", func(t *testing.T) {
		a := newShipper(AgentConfig{Upstream: deadUpstream(), ShipRetries: -1})
		before := causeValues(a.Metrics().ShipErrors, shipCauses)
		if _, err := a.FlushAll(context.Background()); err == nil {
			t.Fatal("flush to dead upstream succeeded")
		}
		assertCauseDeltas(t, before, causeValues(a.Metrics().ShipErrors, shipCauses),
			map[string]uint64{causeNetwork: 1, causeGaveUp: 1})
	})

	t.Run("network with retries", func(t *testing.T) {
		a := newShipper(AgentConfig{Upstream: deadUpstream(), ShipRetries: 2})
		before := causeValues(a.Metrics().ShipErrors, shipCauses)
		if _, err := a.FlushAll(context.Background()); err == nil {
			t.Fatal("flush to dead upstream succeeded")
		}
		// 3 attempts, 2 scheduled re-attempts, 1 exhausted budget.
		assertCauseDeltas(t, before, causeValues(a.Metrics().ShipErrors, shipCauses),
			map[string]uint64{causeNetwork: 3, causeRetry: 2, causeGaveUp: 1})
		if !a.streamDirty("s") {
			t.Fatal("failed ship did not mark the stream dirty")
		}
	})

	t.Run("status 4xx is not retried", func(t *testing.T) {
		var hits atomic.Uint64
		up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			hits.Add(1)
			http.Error(w, "teapot", http.StatusTeapot)
		}))
		t.Cleanup(up.Close)
		a := newShipper(AgentConfig{Upstream: up.URL, ShipRetries: 2})
		before := causeValues(a.Metrics().ShipErrors, shipCauses)
		if _, err := a.FlushAll(context.Background()); err == nil {
			t.Fatal("flush to erroring upstream succeeded")
		}
		after := causeValues(a.Metrics().ShipErrors, shipCauses)
		// A deterministic rejection: one attempt, no retry, no gave_up.
		assertCauseDeltas(t, before, after, map[string]uint64{causeStatus: 1})
		if got := hits.Load(); got != 1 {
			t.Fatalf("4xx upstream hit %d times, want 1", got)
		}
		// The failed shipment still left a ship span, with the error.
		spans := a.Metrics().Trace.Snapshot()
		if len(spans) == 0 || spans[0].Err == "" || spans[0].Stage != "ship" {
			t.Fatalf("failed ship left no errored span: %+v", spans)
		}
	})

	t.Run("status 5xx is retried", func(t *testing.T) {
		var hits atomic.Uint64
		up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			hits.Add(1)
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		}))
		t.Cleanup(up.Close)
		a := newShipper(AgentConfig{Upstream: up.URL, ShipRetries: 1})
		before := causeValues(a.Metrics().ShipErrors, shipCauses)
		if _, err := a.FlushAll(context.Background()); err == nil {
			t.Fatal("flush to erroring upstream succeeded")
		}
		assertCauseDeltas(t, before, causeValues(a.Metrics().ShipErrors, shipCauses),
			map[string]uint64{causeStatus: 2, causeRetry: 1, causeGaveUp: 1})
		if got := hits.Load(); got != 2 {
			t.Fatalf("5xx upstream hit %d times, want 2", got)
		}
	})

	t.Run("breaker open fails fast", func(t *testing.T) {
		a := newShipper(AgentConfig{Upstream: deadUpstream(), ShipRetries: -1,
			BreakerThreshold: 1, BreakerCooldown: time.Hour})
		// First flush trips the one-failure breaker...
		if _, err := a.FlushAll(context.Background()); err == nil {
			t.Fatal("flush to dead upstream succeeded")
		}
		before := causeValues(a.Metrics().ShipErrors, shipCauses)
		// ...so the second fails fast without touching the network.
		if _, err := a.FlushAll(context.Background()); err == nil {
			t.Fatal("flush with open breaker succeeded")
		}
		assertCauseDeltas(t, before, causeValues(a.Metrics().ShipErrors, shipCauses),
			map[string]uint64{causeBreakerOpen: 1})
	})
}

// streamDirty reports stream name's dirty flag (test helper).
func (a *Agent) streamDirty(name string) bool {
	st, ok := a.lookup(name)
	return ok && st.dirty.Load()
}

// f0Summary builds a self-consistent shippable summary for tests.
func f0Summary(agentID, stream string, cfg StreamConfig, seq uint64) Summary {
	e := core.NewF0Estimator(core.F0Config{P: cfg.P}, rng.New(cfg.Seed))
	e.Observe(1)
	payload, _ := e.MarshalBinary()
	return Summary{Agent: agentID, Stream: stream, Seq: seq, Config: cfg, Fed: 1, Kept: 1, Payload: payload}
}

// TestCollectErrorCausesAudit drives every reject path of handleCollect
// and asserts the matching summaries_rejected cause.
func TestCollectErrorCausesAudit(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()
	rejects := collector.Metrics().CollectRejects
	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 1}

	post := func(body []byte) int {
		resp, err := http.Post(cts.URL+"/v1/collect", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Pin the stream's config with one good summary first.
	if post(mustJSON(f0Summary("a", "s", cfg, 1))) != http.StatusAccepted {
		t.Fatal("seed summary rejected")
	}

	otherCfg := cfg
	otherCfg.Seed = 2
	cases := []struct {
		name  string
		body  []byte
		cause string
	}{
		{"garbage JSON", []byte("{nope"), causeEnvelope},
		{"missing identity", mustJSON(Summary{Config: cfg, Payload: []byte{1}}), causeConfig},
		{"invalid config", mustJSON(Summary{Agent: "a", Stream: "s2", Seq: 1,
			Config: StreamConfig{Stat: "f0", P: 42}, Payload: []byte{1}}), causeConfig},
		{"corrupt payload", mustJSON(Summary{Agent: "a", Stream: "s2", Seq: 1,
			Config: cfg, Payload: []byte{0xff, 0x01}}), causePayload},
		// Self-consistent under its own config, but the stream is pinned
		// to a different seed.
		{"config conflict", mustJSON(f0Summary("b", "s", otherCfg, 1)), causeConflict},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := causeValues(rejects, collectCauses)
			if code := post(tc.body); code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			assertCauseDelta(t, before, causeValues(rejects, collectCauses), tc.cause)
		})
	}
}

// TestMetricszPromFormat checks the Prometheus exposition endpoint over
// live agent HTTP: content type, HELP/TYPE metadata, per-stream labeled
// series, quantile-backed summaries, and the dynamic pipeline gauges —
// while the default JSON view keeps its flat panel keys.
func TestMetricszPromFormat(t *testing.T) {
	agent := NewAgent(AgentConfig{ID: "prom"})
	defer agent.Close()
	if err := agent.CreateStream("flows", StreamConfig{Stat: "f0", P: 0.5, Presampled: true, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(agent.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/streams/flows/ingest", "text/plain", strings.NewReader("1\n2\n3\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metricsz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# HELP ingest_items items ingested, by stream\n",
		"# TYPE ingest_items counter\n",
		`ingest_items{stream="flows"} 3` + "\n",
		"# TYPE ingest_decode_seconds summary\n",
		`ingest_decode_seconds{quantile="0.99"}`,
		"ingest_decode_seconds_count 1\n",
		`agent_pipeline_queue_cap{stream="flows"}`,
		`agent_stream_fed{stream="flows"} 3` + "\n",
		"# TYPE agent_pipeline_queue_len gauge\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %q:\n%s", want, body)
		}
	}

	// The default JSON view keeps the flat expvar-era keys.
	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var panel map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&panel); err != nil {
		t.Fatal(err)
	}
	if panel["ingest_items"] != 3.0 || panel["ingest_requests"] != 1.0 {
		t.Fatalf("flat JSON keys missing: ingest_items=%v ingest_requests=%v",
			panel["ingest_items"], panel["ingest_requests"])
	}

	// The pprof suite is mounted on the daemon's own mux.
	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: status %d", resp.StatusCode)
	}
}

// TestCollectorStalenessGauges drives the fake clock past the max age
// for one of two agents and checks the per-agent and per-stream gauges.
func TestCollectorStalenessGauges(t *testing.T) {
	now := time.Unix(1000, 0)
	collector := NewCollector(CollectorConfig{
		MaxSummaryAge: 40 * time.Second,
		Now:           func() time.Time { return now },
	})
	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 1}
	if err := collector.Accept(f0Summary("a", "flows", cfg, 1)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if err := collector.Accept(f0Summary("b", "flows", cfg, 1)); err != nil {
		t.Fatal(err)
	}
	now = now.Add(20 * time.Second) // a: 50s old (stale), b: 20s old (fresh)

	ts := httptest.NewServer(collector.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var panel map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&panel); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		`collector_agent_last_seen_age_seconds{agent="a",stream="flows"}`: 50,
		`collector_agent_last_seen_age_seconds{agent="b",stream="flows"}`: 20,
		`collector_agent_stale{agent="a",stream="flows"}`:                 1,
		`collector_agent_stale{agent="b",stream="flows"}`:                 0,
		`collector_agents{stream="flows"}`:                                2,
		`collector_stale_agents{stream="flows"}`:                          1,
	}
	for key, v := range want {
		if got := panel[key]; got != v {
			t.Errorf("%s = %v, want %v", key, got, v)
		}
	}
}

// TestFlushFoldTrace is the tentpole's end-to-end check: two agents
// flush to one collector, and the shipment appears as a "ship" span in
// each agent's tracez ring and a matching "fold" span (same trace ID) in
// the collector's, carrying the decode/fold timings and a non-negative
// end-to-end latency.
func TestFlushFoldTrace(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()

	cfg := StreamConfig{Stat: "f0", P: 0.5, Presampled: true, Shards: 2}
	shipped := make(map[uint64]string) // trace id -> agent
	for _, id := range []string{"a1", "a2"} {
		agent := NewAgent(AgentConfig{ID: id, Upstream: cts.URL})
		defer agent.Close()
		if err := agent.CreateStream("flows", cfg); err != nil {
			t.Fatal(err)
		}
		ats := httptest.NewServer(agent.Handler())
		defer ats.Close()
		resp, err := http.Post(ats.URL+"/v1/streams/flows/ingest", "text/plain", strings.NewReader("1\n2\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if _, err := agent.FlushAll(context.Background()); err != nil {
			t.Fatal(err)
		}

		// The agent's own ring has the ship leg.
		resp, err = http.Get(ats.URL + "/debug/tracez")
		if err != nil {
			t.Fatal(err)
		}
		var ring struct {
			Total int        `json:"total"`
			Spans []obs.Span `json:"spans"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(ring.Spans) != 1 {
			t.Fatalf("agent %s: %d ship spans, want 1", id, len(ring.Spans))
		}
		s := ring.Spans[0]
		if s.Stage != "ship" || s.Agent != id || s.Stream != "flows" || s.TraceID == 0 ||
			s.Err != "" || s.Bytes <= 0 || s.SnapshotNs < 0 || s.PostNs <= 0 {
			t.Fatalf("agent %s ship span: %+v", id, s)
		}
		if _, dup := shipped[s.TraceID]; dup {
			t.Fatalf("trace id %d reused across agents", s.TraceID)
		}
		shipped[s.TraceID] = id
	}

	// The collector's ring has a matching fold leg per shipment.
	resp, err := http.Get(cts.URL + "/debug/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ring struct {
		Total int        `json:"total"`
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Spans) != 2 {
		t.Fatalf("collector: %d fold spans, want 2: %+v", len(ring.Spans), ring.Spans)
	}
	for _, s := range ring.Spans {
		agentID, ok := shipped[s.TraceID]
		if !ok {
			t.Fatalf("fold span with unknown trace id: %+v", s)
		}
		if s.Stage != "fold" || s.Agent != agentID || s.Stream != "flows" ||
			s.Err != "" || s.Bytes <= 0 || s.DecodeNs < 0 || s.FoldNs < 0 || s.E2ENs < 0 {
			t.Fatalf("fold span: %+v", s)
		}
	}
	if collector.Metrics().CollectFold.Count() != 2 || collector.Metrics().CollectDecode.Count() != 2 {
		t.Fatalf("fold/decode histograms: %d/%d observations, want 2/2",
			collector.Metrics().CollectFold.Count(), collector.Metrics().CollectDecode.Count())
	}
}
