package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerLifecycle walks the full state machine with a fake clock:
// closed → (threshold failures) → open → (cooldown) → half-open single
// probe → closed on success / re-open on failure.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Minute, func() time.Time { return now })

	if got := b.snapshot(); got != breakerClosed {
		t.Fatalf("initial state %d, want closed", got)
	}
	// Two failures: still closed.
	b.onFailure()
	b.onFailure()
	if !b.allow() || b.snapshot() != breakerClosed {
		t.Fatal("breaker tripped below threshold")
	}
	// Third consecutive failure trips it.
	b.onFailure()
	if b.snapshot() != breakerOpen {
		t.Fatal("breaker did not trip at threshold")
	}
	if b.allow() {
		t.Fatal("open breaker allowed a ship inside the cooldown")
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state %d after probe admission, want half-open", b.snapshot())
	}
	if b.allow() {
		t.Fatal("second caller admitted while a probe is in flight")
	}

	// Probe fails: re-open for another full cooldown.
	b.onFailure()
	if b.snapshot() != breakerOpen || b.allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("second probe refused after the re-open cooldown")
	}

	// Probe succeeds: closed, and consecutive counting starts afresh.
	b.onSuccess()
	if b.snapshot() != breakerClosed || !b.allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	b.onFailure()
	b.onFailure()
	if b.snapshot() != breakerClosed {
		t.Fatal("failure count survived the close")
	}
}

// TestBreakerRelease checks a local failure releases the probe slot
// without judging the upstream.
func TestBreakerRelease(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Minute, func() time.Time { return now })
	b.onFailure() // trip
	now = now.Add(time.Minute)
	if !b.allow() {
		t.Fatal("probe refused")
	}
	b.release()
	// The slot reopened: the next caller becomes the probe instead of
	// waiting out another cooldown.
	if !b.allow() {
		t.Fatal("released probe slot not reusable")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state %d after release, want half-open", b.snapshot())
	}
}

// TestBreakerDisabled checks a non-positive threshold turns every
// method into a no-op that always allows.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Minute, nil)
	for i := 0; i < 10; i++ {
		b.onFailure()
	}
	if !b.allow() || b.snapshot() != breakerClosed {
		t.Fatal("disabled breaker tripped")
	}
}

// TestFlushAllPartialFailure is the POST /v1/flush contract under
// partial failure: the response carries both counts, every stream is
// attempted (one dead stream never starves the rest), and the status
// distinguishes clean from degraded flushes.
func TestFlushAllPartialFailure(t *testing.T) {
	// An upstream that rejects exactly the summaries of stream "bad".
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var sum Summary
		if err := json.NewDecoder(r.Body).Decode(&sum); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if sum.Stream == "bad" {
			http.Error(w, "not today", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer up.Close()

	cases := []struct {
		name       string
		streams    []string
		wantStatus int
		wantShip   float64
		wantFail   float64
	}{
		{"all clean", []string{"a", "b"}, http.StatusOK, 2, 0},
		{"partial", []string{"a", "bad", "z"}, http.StatusBadGateway, 2, 1},
		{"total", []string{"bad"}, http.StatusBadGateway, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			agent := NewAgent(AgentConfig{ID: "pf", Upstream: up.URL, ShipRetries: -1})
			defer agent.Close()
			for _, name := range tc.streams {
				if err := agent.CreateStream(name, StreamConfig{Stat: "f0", P: 0.5, Presampled: true}); err != nil {
					t.Fatal(err)
				}
			}
			ats := httptest.NewServer(agent.Handler())
			defer ats.Close()

			resp, err := http.Post(ats.URL+"/v1/flush", "", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body["shipped"] != tc.wantShip || body["failed"] != tc.wantFail {
				t.Fatalf("response %v, want shipped=%v failed=%v", body, tc.wantShip, tc.wantFail)
			}
			if tc.wantFail > 0 {
				msg, _ := body["error"].(string)
				if !strings.Contains(msg, `stream "bad"`) {
					t.Fatalf("error %q does not name the failed stream", msg)
				}
			} else if _, present := body["error"]; present {
				t.Fatalf("clean flush carried an error field: %v", body)
			}
		})
	}
}

// TestShipSuccessClearsDirty pins the dirty/lastShipOK bookkeeping and
// the ship gauges end to end: a failed ship marks the stream dirty with
// the breaker counting, the upstream's revival clears it on the next
// flush without any replay queue.
func TestShipSuccessClearsDirty(t *testing.T) {
	var down atomic.Bool
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	}))
	defer up.Close()
	agent := NewAgent(AgentConfig{ID: "d", Upstream: up.URL, ShipRetries: -1})
	defer agent.Close()
	if err := agent.CreateStream("s", StreamConfig{Stat: "f0", P: 0.5, Presampled: true}); err != nil {
		t.Fatal(err)
	}

	down.Store(true)
	if _, err := agent.FlushAll(context.Background()); err == nil {
		t.Fatal("flush to downed upstream succeeded")
	}
	if !agent.streamDirty("s") {
		t.Fatal("failed ship left the stream clean")
	}

	down.Store(false)
	if _, err := agent.FlushAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if agent.streamDirty("s") {
		t.Fatal("successful ship left the stream dirty")
	}
	st, _ := agent.lookup("s")
	if st.lastShipOK.Load() == 0 {
		t.Fatal("successful ship did not stamp lastShipOK")
	}
}
