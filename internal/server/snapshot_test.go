package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"substream/internal/sketch"
)

// acceptWorkload ships a small deterministic fleet state into c: two
// streams, two agents each, with distinct payload contents.
func acceptWorkload(t *testing.T, c *Collector) {
	t.Helper()
	for _, stream := range []string{"flows", "bytes"} {
		cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 7}
		for i, agentID := range []string{"a", "b"} {
			sum := f0Summary(agentID, stream, cfg, uint64(i+1))
			if err := c.Accept(sum); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// estimateAll snapshots every stream's global estimate for comparison.
func estimateAll(t *testing.T, c *Collector, streams ...string) map[string]GlobalEstimate {
	t.Helper()
	out := make(map[string]GlobalEstimate, len(streams))
	for _, name := range streams {
		est, err := c.Estimate(name)
		if err != nil {
			t.Fatalf("estimate %q: %v", name, err)
		}
		out[name] = est
	}
	return out
}

// TestSnapshotRoundTrip pins the durability loop: save a populated
// collector, restore it in a fresh one, and the restored estimates,
// agent counts, and ingest totals are identical.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1 := NewCollector(CollectorConfig{SnapshotDir: dir})
	acceptWorkload(t, c1)
	if err := c1.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	if n := c1.Metrics().SnapshotWrite.Count(); n != 1 {
		t.Fatalf("snapshot_write_seconds observations: %d, want 1", n)
	}
	if c1.Metrics().SnapshotBytes.Value() <= 0 {
		t.Fatal("collector_snapshot_bytes not set")
	}

	c2 := NewCollector(CollectorConfig{SnapshotDir: dir})
	want := estimateAll(t, c1, "flows", "bytes")
	got := estimateAll(t, c2, "flows", "bytes")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored estimates diverge:\n got %+v\nwant %+v", got, want)
	}
	if n := c2.Metrics().SnapshotRestore.Count(); n != 1 {
		t.Fatalf("snapshot_restore_seconds observations: %d, want 1", n)
	}

	// The restored collector keeps working: newer summaries still fold.
	sum := f0Summary("a", "flows", StreamConfig{Stat: "f0", P: 0.5, Seed: 7}, 9)
	if err := c2.Accept(sum); err != nil {
		t.Fatalf("restored collector rejected a live summary: %v", err)
	}
}

// TestSnapshotRestoreCountsAsSighting pins the staleness decision: a
// collector that was down longer than -max-summary-age answers from the
// restored state (the restore resets the staleness clocks) instead of
// declaring the whole fleet stale at startup.
func TestSnapshotRestoreCountsAsSighting(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c1 := NewCollector(CollectorConfig{SnapshotDir: dir, MaxSummaryAge: time.Minute, Now: clock})
	if err := c1.Accept(f0Summary("a", "flows", StreamConfig{Stat: "f0", P: 0.5, Seed: 7}, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c1.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}

	// Two hours of downtime later...
	now = now.Add(2 * time.Hour)
	c2 := NewCollector(CollectorConfig{SnapshotDir: dir, MaxSummaryAge: time.Minute, Now: clock})
	est, err := c2.Estimate("flows")
	if err != nil {
		t.Fatalf("restored collector refused to answer: %v", err)
	}
	if est.Agents != 1 || est.Skipped != 0 {
		t.Fatalf("restored estimate: %d agents, %d skipped; want 1, 0", est.Agents, est.Skipped)
	}
	// The clock still runs from the restore onward.
	now = now.Add(2 * time.Minute)
	if _, err := c2.Estimate("flows"); err == nil {
		t.Fatal("staleness clock did not run after the restore")
	}
}

// TestSnapshotMissingFileIsCleanStart pins that a collector pointed at
// an empty snapshot dir boots empty without errors.
func TestSnapshotMissingFileIsCleanStart(t *testing.T) {
	c := NewCollector(CollectorConfig{SnapshotDir: t.TempDir()})
	if n := c.Metrics().SnapshotErrors.With(causeSnapshotRestore).Value(); n != 0 {
		t.Fatalf("fresh boot bumped snapshot_errors: %d", n)
	}
	if _, err := c.Estimate("flows"); err == nil {
		t.Fatal("empty collector answered for an unknown stream")
	}
}

// assertEmptyRestore builds a collector over the (corrupt) snapshot in
// dir and checks the contract: no panic, a bumped restore-error cause,
// and a fully empty table — never a partial one.
func assertEmptyRestore(t *testing.T, dir string) {
	t.Helper()
	c := NewCollector(CollectorConfig{SnapshotDir: dir})
	if n := c.Metrics().SnapshotErrors.With(causeSnapshotRestore).Value(); n != 1 {
		t.Fatalf("snapshot_errors{snapshot_restore} = %d, want 1", n)
	}
	c.mu.RLock()
	streams := len(c.streams)
	c.mu.RUnlock()
	if streams != 0 {
		t.Fatalf("corrupt restore left %d streams retained, want 0 (all-or-nothing)", streams)
	}
}

// TestSnapshotCorruptionBattery sweeps every truncation length and a
// bit flip in every byte of a valid snapshot through the full restore
// path: each must fail cleanly into "start empty + warn" — no panic, no
// partial table. The CRC trailer is what makes the flip sweep total:
// structural validation alone cannot see a content-preserving flip, the
// checksum catches them all.
func TestSnapshotCorruptionBattery(t *testing.T) {
	srcDir := t.TempDir()
	c := NewCollector(CollectorConfig{SnapshotDir: srcDir})
	acceptWorkload(t, c)
	if err := c.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(filepath.Join(srcDir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}

	// Every prefix truncation must fail the decode (the trailer no
	// longer matches the shortened body).
	for n := 0; n < len(good); n++ {
		if _, err := decodeSnapshot(good[:n]); err == nil {
			t.Fatalf("decode accepted %d-byte truncation of a %d-byte snapshot", n, len(good))
		}
	}
	// Every single-bit flip is caught — CRC-32 detects all 1-bit errors.
	for i := range good {
		mut := append([]byte{}, good...)
		mut[i] ^= 1 << (i % 8)
		if _, err := decodeSnapshot(mut); err == nil {
			t.Fatalf("decode accepted a bit flip at byte %d", i)
		}
	}

	// The same classes through the full NewCollector restore path, on a
	// sample (a fresh collector per case keeps the sweep affordable).
	dir := t.TempDir()
	path := filepath.Join(dir, snapshotFile)
	writeCase := func(data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{0, 1, 3, len(good) / 2, len(good) - 5, len(good) - 1} {
		writeCase(good[:n])
		assertEmptyRestore(t, dir)
	}
	for _, i := range []int{0, 2, 7, len(good) / 3, len(good) / 2, len(good) - 1} {
		mut := append([]byte{}, good...)
		mut[i] ^= 0x10
		writeCase(mut)
		assertEmptyRestore(t, dir)
	}

	// A snapshot whose CRC is VALID but whose last entry fails
	// re-validation must also be abandoned whole: the all-or-nothing
	// staging, not just the checksum, guards the table. Built by hand —
	// one good entry followed by one with an undecodable payload, CRC
	// recomputed over the forged body.
	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 7}
	goodEntry, err := json.Marshal(f0Summary("a", "flows", cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	badEntry, err := json.Marshal(Summary{Agent: "b", Stream: "flows", Seq: 1,
		Config: cfg, Payload: []byte{0xff, 0x01}})
	if err != nil {
		t.Fatal(err)
	}
	w := &sketch.Writer{}
	w.U8(snapshotMagic0)
	w.U8(snapshotMagic1)
	w.U8(snapshotVersion)
	w.I64(time.Now().UnixNano())
	w.U32(2)
	w.Nested(goodEntry)
	w.I64(time.Now().UnixNano())
	w.Nested(badEntry)
	w.I64(time.Now().UnixNano())
	forged := w.Bytes()
	forged = binary.LittleEndian.AppendUint32(forged, crc32.ChecksumIEEE(forged))
	writeCase(forged)
	assertEmptyRestore(t, dir)
}

// TestSnapshotRunWritesPeriodically drives Collector.Run with a short
// interval and checks checkpoints land, including the final shutdown
// write.
func TestSnapshotRunWritesPeriodically(t *testing.T) {
	dir := t.TempDir()
	c := NewCollector(CollectorConfig{SnapshotDir: dir, SnapshotInterval: 5 * time.Millisecond})
	acceptWorkload(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	path := filepath.Join(dir, snapshotFile)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no periodic snapshot appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("final shutdown snapshot: %v", err)
	}
	// The shutdown write left a restorable checkpoint.
	c2 := NewCollector(CollectorConfig{SnapshotDir: dir})
	if !reflect.DeepEqual(estimateAll(t, c2, "flows", "bytes"), estimateAll(t, c, "flows", "bytes")) {
		t.Fatal("restored estimates diverge from the live collector's")
	}
}
