package server

import (
	"testing"

	"substream/internal/estimator"
)

// TestRegistryMatchesWireTable pins the estimator registry — the single
// source of tag assignments — to the wire-format table documented in
// doc.go. Editing either side without the other fails here, keeping the
// operator documentation honest.
func TestRegistryMatchesWireTable(t *testing.T) {
	want := []struct {
		tag  byte
		name string
	}{
		// internal/sketch: 0x01–0x0f
		{0x01, "countmin"}, {0x02, "countsketch"}, {0x03, "kmv"}, {0x04, "hll"},
		{0x05, "spacesaving"}, {0x06, "misragries"}, {0x07, "topk"},
		// internal/levelset: 0x10–0x1f
		{0x10, "exactcounter"}, {0x11, "levelset"}, {0x12, "iw"},
		// internal/core: 0x20–0x2f
		{0x20, "fk"}, {0x21, "f0"}, {0x22, "entropy"}, {0x23, "hh1"},
		{0x24, "hh2"}, {0x25, "all"}, {0x26, "gee"},
		// internal/window: 0x30–0x3f
		{0x30, "window"},
		// internal/quantile: 0x40–0x4f
		{0x40, "quantile"},
		// internal/sample: 0x50–0x5f
		{0x50, "varopt"},
	}
	kinds := estimator.Kinds()
	if len(kinds) != len(want) {
		t.Fatalf("registry holds %d kinds, doc.go table lists %d", len(kinds), len(want))
	}
	for i, w := range want {
		if kinds[i].Tag != w.tag || kinds[i].Name != w.name {
			t.Errorf("registry[%d] = (%#x, %q), doc.go table says (%#x, %q)",
				i, kinds[i].Tag, kinds[i].Name, w.tag, w.name)
		}
	}
	// Package range ownership from doc.go.
	for _, k := range kinds {
		var lo, hi byte
		switch {
		case k.Tag <= 0x0f:
			lo, hi = 0x01, 0x0f
		case k.Tag <= 0x1f:
			lo, hi = 0x10, 0x1f
		case k.Tag <= 0x2f:
			lo, hi = 0x20, 0x2f
		case k.Tag <= 0x3f:
			lo, hi = 0x30, 0x3f
		case k.Tag <= 0x4f:
			lo, hi = 0x40, 0x4f
		default:
			lo, hi = 0x50, 0x5f
		}
		if k.Tag < lo || k.Tag > hi {
			t.Errorf("kind %q tag %#x escapes its package range [%#x, %#x]", k.Name, k.Tag, lo, hi)
		}
	}
}

// TestValidateAcceptsEveryRegisteredStat proves stream configuration is
// registry-driven: every constructible kind is a legal stat with the
// stock defaults, with no server-side enumeration to update.
func TestValidateAcceptsEveryRegisteredStat(t *testing.T) {
	for _, stat := range estimator.Stats() {
		cfg := StreamConfig{Stat: stat, P: 0.5}.withDefaults()
		if err := cfg.validate(); err != nil {
			t.Errorf("stat %q rejected: %v", stat, err)
		}
		run, err := buildRunner(cfg)
		if err != nil {
			t.Errorf("stat %q: buildRunner: %v", stat, err)
			continue
		}
		run.close()
	}
	if err := (StreamConfig{Stat: "bogus", P: 0.5}.withDefaults()).validate(); err == nil {
		t.Error("unregistered stat accepted")
	}
}
