package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	rand "math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"substream/internal/obs"
	"substream/internal/pipeline"
	"substream/internal/stream"
)

// AgentConfig configures an agent daemon.
type AgentConfig struct {
	// ID identifies this agent to the collector; summaries are keyed by
	// (stream, agent), so every agent process must use a distinct ID.
	ID string
	// Upstream is the collector's base URL. Empty disables shipping.
	Upstream string
	// FlushInterval is the period of Run's background shipping.
	// Default 10s.
	FlushInterval time.Duration
	// ShutdownFlushTimeout bounds the final flush Run performs on
	// graceful shutdown: a slow or hung collector cannot delay process
	// exit past it. Default 5s.
	ShutdownFlushTimeout time.Duration
	// Client performs upstream requests. Default: 10s-timeout client.
	Client *http.Client
	// ShipRetries is how many times a failed ship POST is re-attempted
	// within one shipStream call before giving up (the summary is
	// cumulative, so the same snapshot is simply re-sent). Only
	// transient failures are retried: connection errors and 5xx
	// responses; a 4xx is a deterministic rejection that retrying
	// cannot fix. 0 means the default of 2; negative disables retries.
	ShipRetries int
	// ShipBackoff is the base delay of the capped exponential backoff
	// between retry attempts (base, 2x, 4x, ... capped at 16x, each
	// equal-jittered to [d/2, d)). Default 100ms.
	ShipBackoff time.Duration
	// BreakerThreshold is the number of CONSECUTIVE failed ships (each
	// counted after its retries) that trips the upstream circuit
	// breaker from closed to open. While open, ships fail fast with
	// the breaker_open cause instead of burning their retry schedule
	// against a dead collector. 0 means the default of 5; negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before
	// admitting a single half-open probe ship; the probe's success
	// closes the breaker, its failure re-opens it. 0 means the flush
	// interval — the natural "probe on the next tick" cadence.
	BreakerCooldown time.Duration
	// Logger receives structured operational logs (stream lifecycle at
	// Info, flush failures at Warn, per-request lines at Debug). Nil
	// discards them.
	Logger *slog.Logger
	// ObsSampleEvery samples the per-request ingest timing histograms
	// (ingest_decode, shard_feed) one request in N: unsampled requests
	// skip the clock reads and the histogram inserts entirely, keeping
	// the mutex-plus-quantile cost off the hot path. Uniform sampling
	// leaves the quantiles unbiased; the exact counters
	// (requests, items, bytes, errors) are never sampled. 1 observes
	// every request; 0 means the default of 64.
	ObsSampleEvery int
}

// Agent is the monitoring daemon's ingest role: a registry of named
// streams, each a sharded pipeline of mergeable estimator replicas, plus
// the shipping path that exports cumulative summaries upstream.
type Agent struct {
	cfg      AgentConfig
	logger   *slog.Logger
	boot     uint64 // process-incarnation marker carried by every Summary
	metrics  *Metrics
	breaker  *breaker      // per-upstream circuit breaker on the shipping path
	traceSeq atomic.Uint64 // per-process flush counter feeding trace IDs
	obsTick  atomic.Uint64 // ingest-request counter driving timing-sample selection

	mu      sync.RWMutex
	streams map[string]*agentStream
	// sorted caches the name-sorted registry for snapshotStreams;
	// invalidated (nil) by create/delete so the periodic FlushAll tick
	// stops re-sorting an unchanged fleet. Guarded by mu; the published
	// slice is never mutated, only replaced.
	sorted []*agentStream
}

// agentStream is one registered stream. shipMu binds the snapshot to its
// sequence number: without it, two concurrent flushes could assign a
// newer Seq to an older snapshot and the collector would keep the wrong
// one.
type agentStream struct {
	name   string
	cfg    StreamConfig
	run    streamRunner
	shipMu sync.Mutex
	seq    uint64
	// items and bytes are this stream's children of the ingest_items /
	// ingest_bytes families, resolved once at registration: the ingest
	// hot path must be a plain atomic add, not a per-request label
	// lookup.
	items *obs.Counter
	bytes *obs.Counter
	// lastShipOK is the unix-nano time of this stream's last successful
	// ship (0 = never) — the ship-success-age gauge's source, and the
	// operator's per-stream answer to "how stale is the collector's
	// view of me".
	lastShipOK atomic.Int64
	// dirty is set when a ship fails and cleared by the next success.
	// Nothing is queued while dirty: summaries are cumulative and the
	// collector folds latest-wins, so the next tick (or breaker probe)
	// reships the newest snapshot and recovery converges by
	// construction.
	dirty atomic.Bool
}

// NewAgent builds an agent.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.ID == "" {
		cfg.ID = "agent"
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 10 * time.Second
	}
	if cfg.ShutdownFlushTimeout <= 0 {
		cfg.ShutdownFlushTimeout = 5 * time.Second
	}
	if cfg.ObsSampleEvery <= 0 {
		cfg.ObsSampleEvery = 64
	}
	switch {
	case cfg.ShipRetries == 0:
		cfg.ShipRetries = 2
	case cfg.ShipRetries < 0:
		cfg.ShipRetries = 0
	}
	if cfg.ShipBackoff <= 0 {
		cfg.ShipBackoff = 100 * time.Millisecond
	}
	switch {
	case cfg.BreakerThreshold == 0:
		cfg.BreakerThreshold = 5
	case cfg.BreakerThreshold < 0:
		cfg.BreakerThreshold = 0 // disabled (breaker treats <= 0 as off)
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = cfg.FlushInterval
	}
	if cfg.Client == nil {
		// The default client's timeout must not silently cap an
		// explicitly longer shutdown-flush bound; callers supplying
		// their own Client own that reconciliation.
		timeout := 10 * time.Second
		if cfg.ShutdownFlushTimeout > timeout {
			timeout = cfg.ShutdownFlushTimeout
		}
		cfg.Client = &http.Client{Timeout: timeout}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = discardLogger()
	}
	a := &Agent{
		cfg:     cfg,
		logger:  logger.With("role", "agent", "agent", cfg.ID),
		boot:    uint64(time.Now().UnixNano()),
		metrics: newMetrics(),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil),
		streams: make(map[string]*agentStream),
	}
	a.registerPipelineMetrics()
	a.registerShipMetrics()
	return a
}

// registerPipelineMetrics surfaces every stream's pipeline state as
// dynamic gauge/counter families: series appear and disappear with the
// stream registry, values are read at scrape time from each runner's
// Stats snapshot. Occupancy (queue_len against queue_cap) is pipeline
// depth; sync_wait is the cumulative time snapshots stalled waiting for
// shard workers; kept/fed is the sampler acceptance rate.
func (a *Agent) registerPipelineMetrics() {
	reg := a.metrics.reg
	families := []struct {
		name string
		help string
		kind string
		read func(s pipeline.Stats) float64
	}{
		{"agent_pipeline_queue_len", "batches currently buffered in shard channels, by stream", obs.KindGauge,
			func(s pipeline.Stats) float64 { return float64(s.Queued) }},
		{"agent_pipeline_queue_cap", "total shard channel capacity in batches, by stream", obs.KindGauge,
			func(s pipeline.Stats) float64 { return float64(s.QueueCap * s.Shards) }},
		{"agent_pipeline_batches", "batches dispatched to shard workers, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Batches) }},
		{"agent_pipeline_syncs", "pipeline quiesce (Sync) rounds, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Syncs) }},
		{"agent_pipeline_sync_wait_seconds", "cumulative time snapshots waited for shard acks, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return s.SyncWait.Seconds() }},
		{"agent_stream_fed", "items fed to the pipeline, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Fed) }},
		{"agent_stream_kept", "items kept after in-shard sampling, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Kept) }},
		// The weight families count WEIGHT, not items: unweighted items
		// contribute 1 each, so on a purely unweighted stream they shadow
		// agent_stream_fed / agent_stream_kept.
		{"agent_stream_fed_weight", "total weight fed to the pipeline, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return s.FedWeight }},
		{"agent_stream_kept_weight", "total weight kept after in-shard sampling, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return s.KeptWeight }},
	}
	for _, fam := range families {
		read := fam.read
		reg.SetFunc(fam.name, fam.help, fam.kind, func(emit func(v float64, labels ...obs.Label)) {
			for _, st := range a.snapshotStreams() {
				emit(read(st.run.stats()), obs.Label{Key: "stream", Value: st.name})
			}
		})
	}
}

// registerShipMetrics surfaces the resilient-shipping state: the
// upstream breaker's position, each stream's time-since-last-successful
// ship (the operator's per-stream answer to "how stale is the
// collector's view of me"), and the dirty flag marking streams whose
// newest summary has not landed upstream. All are read at scrape time;
// the shipping path only touches atomics.
func (a *Agent) registerShipMetrics() {
	reg := a.metrics.reg
	reg.GaugeFunc("agent_breaker_state", "upstream circuit breaker state (0 closed, 1 half-open, 2 open)",
		func() float64 { return float64(a.breaker.snapshot()) })
	reg.SetFunc("agent_ship_success_age_seconds", "seconds since the last successful ship (-1 before the first), by stream", obs.KindGauge,
		func(emit func(v float64, labels ...obs.Label)) {
			now := time.Now()
			for _, st := range a.snapshotStreams() {
				age := -1.0
				if last := st.lastShipOK.Load(); last != 0 {
					age = now.Sub(time.Unix(0, last)).Seconds()
				}
				emit(age, obs.Label{Key: "stream", Value: st.name})
			}
		})
	reg.SetFunc("agent_stream_dirty", "1 when the stream's newest summary has not been shipped, by stream", obs.KindGauge,
		func(emit func(v float64, labels ...obs.Label)) {
			for _, st := range a.snapshotStreams() {
				v := 0.0
				if st.dirty.Load() {
					v = 1.0
				}
				emit(v, obs.Label{Key: "stream", Value: st.name})
			}
		})
}

// Metrics exposes the agent's instrument panel (for tests and embedding).
func (a *Agent) Metrics() *Metrics { return a.metrics }

// Handler returns the agent's HTTP API.
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/streams/{name}", a.handleCreate)
	mux.HandleFunc("GET /v1/streams", a.handleList)
	mux.HandleFunc("DELETE /v1/streams/{name}", a.handleDelete)
	mux.HandleFunc("POST /v1/streams/{name}/ingest", a.handleIngest)
	mux.HandleFunc("GET /v1/streams/{name}/estimate", a.handleEstimate)
	mux.HandleFunc("GET /v1/streams/{name}/subsetsum", a.handleSubsetSum)
	mux.HandleFunc("POST /v1/streams/{name}/flush", a.handleFlushOne)
	mux.HandleFunc("POST /v1/flush", a.handleFlushAll)
	mux.HandleFunc("POST /flush", a.handleFlushAll)
	addOps(mux, "agent", a.metrics)
	return withRequestLog(a.logger, mux)
}

// errStreamExists marks a re-registration with a conflicting
// configuration, distinguishing it from plain validation failures.
var errStreamExists = errors.New("stream already exists with a different configuration")

// CreateStream registers a named stream. Re-registering with an
// identical shared configuration is idempotent; a conflicting one
// returns an error wrapping errStreamExists.
func (a *Agent) CreateStream(name string, cfg StreamConfig) error {
	if name == "" {
		return fmt.Errorf("stream name must be non-empty")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.SampleSeed == 0 && !cfg.Presampled {
		// Sampling coins should differ across agents and restarts; the
		// estimator Seed, by contrast, must be shared (see StreamConfig).
		h := fnv.New64a()
		io.WriteString(h, a.cfg.ID)
		io.WriteString(h, name)
		cfg.SampleSeed = h.Sum64() ^ uint64(time.Now().UnixNano())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if existing, ok := a.streams[name]; ok {
		if existing.cfg.sharedEquals(cfg) {
			return nil
		}
		return fmt.Errorf("stream %q: %w", name, errStreamExists)
	}
	run, err := buildRunner(cfg)
	if err != nil {
		return err
	}
	a.streams[name] = &agentStream{
		name:  name,
		cfg:   cfg,
		run:   run,
		items: a.metrics.IngestItems.With(name),
		bytes: a.metrics.IngestBytes.With(name),
	}
	a.sorted = nil
	a.logger.Info("stream registered",
		"stream", name, "stat", cfg.Stat, "p", cfg.P, "shards", cfg.Shards)
	return nil
}

// lookup returns a registered stream.
func (a *Agent) lookup(name string) (*agentStream, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st, ok := a.streams[name]
	return st, ok
}

// snapshotStreams returns the current registry, sorted by name. The
// sorted slice is cached between create/delete events, so the periodic
// FlushAll tick and every list/estimate query share one sort instead of
// re-sorting an unchanged registry each time.
func (a *Agent) snapshotStreams() []*agentStream {
	a.mu.RLock()
	out := a.sorted
	a.mu.RUnlock()
	if out != nil {
		return out
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sorted == nil {
		out = make([]*agentStream, 0, len(a.streams))
		for _, st := range a.streams {
			out = append(out, st)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
		a.sorted = out
	}
	return a.sorted
}

func (a *Agent) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var cfg StreamConfig
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, "bad stream config: %v", err)
		return
	}
	if err := a.CreateStream(name, cfg); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errStreamExists) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"stream": name, "status": "registered"})
}

// streamInfo is one row of the list response.
type streamInfo struct {
	Name   string       `json:"name"`
	Config StreamConfig `json:"config"`
	Fed    uint64       `json:"fed"`
	Kept   uint64       `json:"kept"`
}

func (a *Agent) handleList(w http.ResponseWriter, _ *http.Request) {
	var out []streamInfo
	for _, st := range a.snapshotStreams() {
		fed, kept := st.run.counts()
		out = append(out, streamInfo{Name: st.name, Config: st.cfg, Fed: fed, Kept: kept})
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

func (a *Agent) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	a.mu.Lock()
	st, ok := a.streams[name]
	delete(a.streams, name)
	a.sorted = nil
	a.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", name)
		return
	}
	st.run.close()
	a.logger.Info("stream deleted", "stream", name)
	writeJSON(w, http.StatusOK, map[string]string{"stream": name, "status": "deleted"})
}

func (a *Agent) handleIngest(w http.ResponseWriter, r *http.Request) {
	a.metrics.IngestRequests.Inc()
	st, ok := a.lookup(r.PathValue("name"))
	if !ok {
		a.metrics.IngestErrors.With(causeUnknownStream).Inc()
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("name"))
		return
	}
	format, err := parseIngestType(r.Header.Get("Content-Type"))
	if err != nil {
		a.metrics.IngestErrors.With(causeContentType).Inc()
		writeError(w, http.StatusBadRequest, "bad ingest body: %v", err)
		return
	}
	// A declared length over the limit is doomed before the first byte:
	// reject it here so the streaming binary path never ingests a
	// prefix of a request MaxBytesReader would kill partway through.
	if r.ContentLength > maxIngestBytes {
		a.metrics.IngestErrors.With(causeTooLarge).Inc()
		writeError(w, http.StatusRequestEntityTooLarge,
			"ingest body %d bytes exceeds the %d-byte limit", r.ContentLength, int64(maxIngestBytes))
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, maxIngestBytes)}
	// One timing coin per request covers both histograms: unsampled
	// requests skip every clock read as well as the mutex-guarded
	// quantile inserts. The exact counters below are never sampled.
	sampled := (a.obsTick.Add(1)-1)%uint64(a.cfg.ObsSampleEvery) == 0
	var start time.Time
	var feed time.Duration
	if sampled {
		start = time.Now()
	}
	var n int
	switch format {
	case formatBinary:
		// Binary bodies stream through pooled chunk buffers that are
		// handed to the pipeline with ownership — no per-request
		// allocation, no materialized request, and no copy between the
		// decoder and the shard queues; each chunk buffer returns to the
		// decode pool when its shard worker has applied it. A mid-body
		// error cannot un-ingest earlier chunks, so the error reports how
		// many items were already consumed. Feed time is accumulated
		// inside the sink so the decode histogram isolates parsing from
		// pipeline backpressure.
		sink := func(chunk stream.Slice, release func()) {
			st.run.ingestOwned(chunk, release)
		}
		if sampled {
			sink = func(chunk stream.Slice, release func()) {
				t0 := time.Now()
				st.run.ingestOwned(chunk, release)
				feed += time.Since(t0)
			}
		}
		n, err = decodeBinaryStreamOwned(body, sink)
	case formatBinaryWeighted:
		// Weighted binary bodies ride the same ownership-transfer shape
		// through their own chunk pool (16-byte records halve the items
		// per chunk, not the bytes).
		sink := func(chunk stream.WSlice, release func()) {
			st.run.ingestWeightedOwned(chunk, release)
		}
		if sampled {
			sink = func(chunk stream.WSlice, release func()) {
				t0 := time.Now()
				st.run.ingestWeightedOwned(chunk, release)
				feed += time.Since(t0)
			}
		}
		n, err = decodeWeightedBinaryStreamOwned(body, sink)
	case formatTextWeighted:
		sink := func(chunk stream.WSlice) {
			st.run.ingestWeightedCopy(chunk)
		}
		if sampled {
			sink = func(chunk stream.WSlice) {
				t0 := time.Now()
				st.run.ingestWeightedCopy(chunk)
				feed += time.Since(t0)
			}
		}
		n, err = decodeWeightedTextStream(body, sink)
	default:
		// Text bodies stream through the same pooled chunk shape as
		// binary ones (the whole-body materialization this path once did
		// made text ingest allocation-bound); chunks are copied into the
		// pipeline's batch buffers, so the decode buffers recycle per
		// call.
		sink := func(chunk stream.Slice) {
			st.run.ingestCopy(chunk)
		}
		if sampled {
			sink = func(chunk stream.Slice) {
				t0 := time.Now()
				st.run.ingestCopy(chunk)
				feed += time.Since(t0)
			}
		}
		n, err = decodeTextStream(body, sink)
	}
	if sampled {
		a.metrics.IngestDecode.Observe((time.Since(start) - feed).Seconds())
		a.metrics.ShardFeed.Observe(feed.Seconds())
	}
	st.items.Add(uint64(n))
	st.bytes.Add(uint64(body.n))
	if err != nil {
		cause := causeDecode
		if errors.Is(err, errBadWeight) {
			cause = causeBadWeight
		}
		a.metrics.IngestErrors.With(cause).Inc()
		writeError(w, http.StatusBadRequest, "bad ingest body after %d items: %v", n, err)
		return
	}
	writeIngested(w, n)
}

// countingReader counts bytes consumed from the wrapped reader — the
// ingest_bytes / summary_bytes_received accounting tap.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// writeIngested renders the ingest success envelope without the generic
// JSON encoder: the one response on the daemon's hottest endpoint is
// worth formatting into a stack buffer.
func writeIngested(w http.ResponseWriter, n int) {
	var buf [40]byte
	b := append(buf[:0], `{"ingested":`...)
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (a *Agent) handleEstimate(w http.ResponseWriter, r *http.Request) {
	a.metrics.EstimateQueries.Inc()
	st, ok := a.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("name"))
		return
	}
	est, err := st.run.estimates()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "estimate failed: %v", err)
		return
	}
	fed, kept := st.run.counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": st.name, "fed": fed, "kept": kept, "estimates": est,
	})
}

func (a *Agent) handleFlushOne(w http.ResponseWriter, r *http.Request) {
	st, ok := a.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("name"))
		return
	}
	if err := a.shipStream(r.Context(), st); err != nil {
		writeError(w, http.StatusBadGateway, "ship failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shipped": 1})
}

func (a *Agent) handleFlushAll(w http.ResponseWriter, r *http.Request) {
	shipped, failed, err := a.flushAll(r.Context())
	if err != nil {
		// A partial flush is still useful information: the response
		// carries both counts so an operator (or test) can tell "the
		// collector is down" from "one stream's snapshot failed".
		writeJSON(w, http.StatusBadGateway, map[string]any{
			"shipped": shipped, "failed": failed, "error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shipped": shipped, "failed": 0})
}

// FlushAll ships every stream's cumulative summary upstream, returning
// how many shipped.
func (a *Agent) FlushAll(ctx context.Context) (int, error) {
	shipped, _, err := a.flushAll(ctx)
	return shipped, err
}

// flushAll ships every stream, continuing past failures so one dead
// stream (or an open breaker) never starves the rest, and reports both
// counts. The joined error preserves every per-stream failure.
func (a *Agent) flushAll(ctx context.Context) (shipped, failed int, err error) {
	var errs []error
	for _, st := range a.snapshotStreams() {
		if err := a.shipStream(ctx, st); err != nil {
			errs = append(errs, fmt.Errorf("stream %q: %w", st.name, err))
			failed++
			continue
		}
		shipped++
	}
	return shipped, failed, errors.Join(errs...)
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// turns (boot, flush counter) into well-spread trace IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// errBreakerOpen marks a ship refused fast because the upstream circuit
// breaker is open; the next allowed ship (a half-open probe after the
// cooldown) carries the newest snapshot, so nothing is queued behind it.
var errBreakerOpen = errors.New("upstream circuit breaker open")

// shipStream serializes one stream's cumulative state and POSTs it to
// the collector, retrying transient failures with capped, jittered
// exponential backoff behind the agent's per-upstream circuit breaker.
// Because the payload is cumulative and ordered by Seq, a lost or
// duplicated shipment is harmless — the collector keeps the newest state
// per agent — so a ship that exhausts its retries just marks the stream
// dirty; the next flush tick (or breaker probe) ships a NEWER snapshot
// that supersedes everything that was lost. Every shipment carries a
// trace ID and the flush wall time, and lands in the agent's
// /debug/tracez ring as a "ship" span; the collector records the
// matching "fold" span.
func (a *Agent) shipStream(ctx context.Context, st *agentStream) error {
	if a.cfg.Upstream == "" {
		a.metrics.ShipErrors.With(causeNoUpstream).Inc()
		return fmt.Errorf("no upstream configured")
	}
	if !a.breaker.allow() {
		// Fast-fail before the snapshot: an open breaker skips the
		// pipeline quiesce as well as the doomed retry schedule.
		a.metrics.ShipErrors.With(causeBreakerOpen).Inc()
		st.dirty.Store(true)
		return errBreakerOpen
	}
	start := time.Now()
	// Snapshot and sequence number are taken under one lock so Seq order
	// equals snapshot order; sends may still arrive out of order, which
	// the collector's (Boot, Seq) check absorbs.
	st.shipMu.Lock()
	payload, epoch, fed, kept, err := st.run.snapshot()
	if err != nil {
		st.shipMu.Unlock()
		a.metrics.ShipErrors.With(causeSnapshot).Inc()
		// A local snapshot failure says nothing about upstream health:
		// release the (possible) half-open probe slot unjudged.
		a.breaker.release()
		st.dirty.Store(true)
		return err
	}
	st.seq++
	sum := Summary{
		Agent:     a.cfg.ID,
		Stream:    st.name,
		Boot:      a.boot,
		Seq:       st.seq,
		Config:    st.cfg,
		Fed:       fed,
		Kept:      kept,
		Epoch:     epoch,
		TraceID:   mix64(a.boot ^ (a.traceSeq.Add(1) * 0x9E3779B97F4A7C15)),
		FlushedAt: start,
		Payload:   payload,
	}
	st.shipMu.Unlock()
	span := obs.Span{
		TraceID: sum.TraceID, Stage: "ship", Stream: st.name, Agent: a.cfg.ID, Start: start,
	}
	fail := func(cause string, err error) error {
		a.metrics.ShipErrors.With(cause).Inc()
		span.Err = err.Error()
		a.metrics.Trace.Record(span)
		st.dirty.Store(true)
		return err
	}
	body, err := json.Marshal(sum)
	if err != nil {
		a.breaker.release()
		return fail(causeMarshal, err)
	}
	span.SnapshotNs = time.Since(start).Nanoseconds()
	span.Bytes = len(body)

	// The POST attempt loop: the first attempt plus up to ShipRetries
	// re-sends of the SAME marshaled snapshot (it is cumulative; there is
	// nothing fresher to fetch mid-ship). Each attempt's failure bumps
	// its own cause (network/status) and each scheduled re-attempt bumps
	// retry, so the audit counters read: attempts = network + status,
	// backoff pressure = retry, logical ship failures = gave_up. Only
	// transient failures — connection errors and 5xx responses — are
	// retried; a 4xx is a deterministic rejection that retrying cannot
	// fix, and it proves the collector is alive, so it settles the
	// breaker as a success.
	var lastErr error
	for attempt := 0; ; attempt++ {
		cause, transient, err := a.postSummary(ctx, &span, body)
		if err == nil {
			a.breaker.onSuccess()
			st.dirty.Store(false)
			st.lastShipOK.Store(time.Now().UnixNano())
			a.metrics.SummariesOut.Inc()
			a.metrics.SummaryBytesOut.Add(uint64(len(body)))
			a.metrics.AgentFlush.Since(start)
			a.metrics.Trace.Record(span)
			return nil
		}
		lastErr = err
		if !transient {
			if cause == causeRequest {
				// Building the request failed locally; upstream health
				// was never tested. Leave the breaker unjudged.
				a.breaker.release()
			} else {
				a.breaker.onSuccess()
			}
			return fail(cause, err)
		}
		a.metrics.ShipErrors.With(cause).Inc()
		if attempt >= a.cfg.ShipRetries || ctx.Err() != nil {
			break
		}
		a.metrics.ShipErrors.With(causeRetry).Inc()
		if !sleepCtx(ctx, shipBackoff(a.cfg.ShipBackoff, attempt)) {
			break
		}
	}
	a.breaker.onFailure()
	return fail(causeGaveUp, lastErr)
}

// postSummary performs one upstream POST attempt, classifying a failure
// by cause and by whether it is transient (worth retrying: connection
// errors and 5xx). It updates the span's post timing so the recorded
// span reflects the final attempt.
func (a *Agent) postSummary(ctx context.Context, span *obs.Span, body []byte) (cause string, transient bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.Upstream+"/v1/collect", bytes.NewReader(body))
	if err != nil {
		return causeRequest, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	postStart := time.Now()
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		span.PostNs = time.Since(postStart).Nanoseconds()
		return causeNetwork, true, err
	}
	defer resp.Body.Close()
	span.PostNs = time.Since(postStart).Nanoseconds()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("collector returned %s: %s", resp.Status, bytes.TrimSpace(msg))
		return causeStatus, resp.StatusCode >= 500, err
	}
	return "", false, nil
}

// shipBackoff returns the delay before retry `attempt` (0-based): the
// base doubling per attempt, capped at 16x base, equal-jittered into
// [d/2, d) so a fleet of agents tripped by the same outage does not
// reconverge on the collector in lockstep.
func shipBackoff(base time.Duration, attempt int) time.Duration {
	d := base << min(attempt, 4)
	if d < 2 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d/2)))
}

// sleepCtx waits for d or the context, reporting whether the full wait
// elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// Run drives periodic shipping until ctx is canceled, then performs a
// final flush and closes every stream — the agent's graceful-shutdown
// path. It returns the final flush's error, if any.
func (a *Agent) Run(ctx context.Context) error {
	ticker := time.NewTicker(a.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if a.cfg.Upstream == "" {
				continue
			}
			if _, err := a.FlushAll(ctx); err != nil {
				a.logger.Warn("periodic flush failed", "err", err)
			}
		case <-ctx.Done():
			var err error
			if a.cfg.Upstream != "" {
				// Final flush with a fresh deadline: ctx is already dead.
				flushCtx, cancel := context.WithTimeout(context.Background(), a.cfg.ShutdownFlushTimeout)
				_, err = a.FlushAll(flushCtx)
				cancel()
			}
			a.Close()
			return err
		}
	}
}

// Close stops every stream pipeline. It does not flush; use Run or
// FlushAll for that.
func (a *Agent) Close() {
	for _, st := range a.snapshotStreams() {
		st.run.close()
	}
}
