package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"substream/internal/obs"
	"substream/internal/pipeline"
	"substream/internal/stream"
)

// AgentConfig configures an agent daemon.
type AgentConfig struct {
	// ID identifies this agent to the collector; summaries are keyed by
	// (stream, agent), so every agent process must use a distinct ID.
	ID string
	// Upstream is the collector's base URL. Empty disables shipping.
	Upstream string
	// FlushInterval is the period of Run's background shipping.
	// Default 10s.
	FlushInterval time.Duration
	// ShutdownFlushTimeout bounds the final flush Run performs on
	// graceful shutdown: a slow or hung collector cannot delay process
	// exit past it. Default 5s.
	ShutdownFlushTimeout time.Duration
	// Client performs upstream requests. Default: 10s-timeout client.
	Client *http.Client
	// Logger receives structured operational logs (stream lifecycle at
	// Info, flush failures at Warn, per-request lines at Debug). Nil
	// discards them.
	Logger *slog.Logger
	// ObsSampleEvery samples the per-request ingest timing histograms
	// (ingest_decode, shard_feed) one request in N: unsampled requests
	// skip the clock reads and the histogram inserts entirely, keeping
	// the mutex-plus-quantile cost off the hot path. Uniform sampling
	// leaves the quantiles unbiased; the exact counters
	// (requests, items, bytes, errors) are never sampled. 1 observes
	// every request; 0 means the default of 64.
	ObsSampleEvery int
}

// Agent is the monitoring daemon's ingest role: a registry of named
// streams, each a sharded pipeline of mergeable estimator replicas, plus
// the shipping path that exports cumulative summaries upstream.
type Agent struct {
	cfg      AgentConfig
	logger   *slog.Logger
	boot     uint64 // process-incarnation marker carried by every Summary
	metrics  *Metrics
	traceSeq atomic.Uint64 // per-process flush counter feeding trace IDs
	obsTick  atomic.Uint64 // ingest-request counter driving timing-sample selection

	mu      sync.RWMutex
	streams map[string]*agentStream
	// sorted caches the name-sorted registry for snapshotStreams;
	// invalidated (nil) by create/delete so the periodic FlushAll tick
	// stops re-sorting an unchanged fleet. Guarded by mu; the published
	// slice is never mutated, only replaced.
	sorted []*agentStream
}

// agentStream is one registered stream. shipMu binds the snapshot to its
// sequence number: without it, two concurrent flushes could assign a
// newer Seq to an older snapshot and the collector would keep the wrong
// one.
type agentStream struct {
	name   string
	cfg    StreamConfig
	run    streamRunner
	shipMu sync.Mutex
	seq    uint64
	// items and bytes are this stream's children of the ingest_items /
	// ingest_bytes families, resolved once at registration: the ingest
	// hot path must be a plain atomic add, not a per-request label
	// lookup.
	items *obs.Counter
	bytes *obs.Counter
}

// NewAgent builds an agent.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.ID == "" {
		cfg.ID = "agent"
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 10 * time.Second
	}
	if cfg.ShutdownFlushTimeout <= 0 {
		cfg.ShutdownFlushTimeout = 5 * time.Second
	}
	if cfg.ObsSampleEvery <= 0 {
		cfg.ObsSampleEvery = 64
	}
	if cfg.Client == nil {
		// The default client's timeout must not silently cap an
		// explicitly longer shutdown-flush bound; callers supplying
		// their own Client own that reconciliation.
		timeout := 10 * time.Second
		if cfg.ShutdownFlushTimeout > timeout {
			timeout = cfg.ShutdownFlushTimeout
		}
		cfg.Client = &http.Client{Timeout: timeout}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = discardLogger()
	}
	a := &Agent{
		cfg:     cfg,
		logger:  logger.With("role", "agent", "agent", cfg.ID),
		boot:    uint64(time.Now().UnixNano()),
		metrics: newMetrics(),
		streams: make(map[string]*agentStream),
	}
	a.registerPipelineMetrics()
	return a
}

// registerPipelineMetrics surfaces every stream's pipeline state as
// dynamic gauge/counter families: series appear and disappear with the
// stream registry, values are read at scrape time from each runner's
// Stats snapshot. Occupancy (queue_len against queue_cap) is pipeline
// depth; sync_wait is the cumulative time snapshots stalled waiting for
// shard workers; kept/fed is the sampler acceptance rate.
func (a *Agent) registerPipelineMetrics() {
	reg := a.metrics.reg
	families := []struct {
		name string
		help string
		kind string
		read func(s pipeline.Stats) float64
	}{
		{"agent_pipeline_queue_len", "batches currently buffered in shard channels, by stream", obs.KindGauge,
			func(s pipeline.Stats) float64 { return float64(s.Queued) }},
		{"agent_pipeline_queue_cap", "total shard channel capacity in batches, by stream", obs.KindGauge,
			func(s pipeline.Stats) float64 { return float64(s.QueueCap * s.Shards) }},
		{"agent_pipeline_batches", "batches dispatched to shard workers, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Batches) }},
		{"agent_pipeline_syncs", "pipeline quiesce (Sync) rounds, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Syncs) }},
		{"agent_pipeline_sync_wait_seconds", "cumulative time snapshots waited for shard acks, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return s.SyncWait.Seconds() }},
		{"agent_stream_fed", "items fed to the pipeline, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Fed) }},
		{"agent_stream_kept", "items kept after in-shard sampling, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return float64(s.Kept) }},
		// The weight families count WEIGHT, not items: unweighted items
		// contribute 1 each, so on a purely unweighted stream they shadow
		// agent_stream_fed / agent_stream_kept.
		{"agent_stream_fed_weight", "total weight fed to the pipeline, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return s.FedWeight }},
		{"agent_stream_kept_weight", "total weight kept after in-shard sampling, by stream", obs.KindCounter,
			func(s pipeline.Stats) float64 { return s.KeptWeight }},
	}
	for _, fam := range families {
		read := fam.read
		reg.SetFunc(fam.name, fam.help, fam.kind, func(emit func(v float64, labels ...obs.Label)) {
			for _, st := range a.snapshotStreams() {
				emit(read(st.run.stats()), obs.Label{Key: "stream", Value: st.name})
			}
		})
	}
}

// Metrics exposes the agent's instrument panel (for tests and embedding).
func (a *Agent) Metrics() *Metrics { return a.metrics }

// Handler returns the agent's HTTP API.
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/streams/{name}", a.handleCreate)
	mux.HandleFunc("GET /v1/streams", a.handleList)
	mux.HandleFunc("DELETE /v1/streams/{name}", a.handleDelete)
	mux.HandleFunc("POST /v1/streams/{name}/ingest", a.handleIngest)
	mux.HandleFunc("GET /v1/streams/{name}/estimate", a.handleEstimate)
	mux.HandleFunc("GET /v1/streams/{name}/subsetsum", a.handleSubsetSum)
	mux.HandleFunc("POST /v1/streams/{name}/flush", a.handleFlushOne)
	mux.HandleFunc("POST /v1/flush", a.handleFlushAll)
	mux.HandleFunc("POST /flush", a.handleFlushAll)
	addOps(mux, "agent", a.metrics)
	return withRequestLog(a.logger, mux)
}

// errStreamExists marks a re-registration with a conflicting
// configuration, distinguishing it from plain validation failures.
var errStreamExists = errors.New("stream already exists with a different configuration")

// CreateStream registers a named stream. Re-registering with an
// identical shared configuration is idempotent; a conflicting one
// returns an error wrapping errStreamExists.
func (a *Agent) CreateStream(name string, cfg StreamConfig) error {
	if name == "" {
		return fmt.Errorf("stream name must be non-empty")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.SampleSeed == 0 && !cfg.Presampled {
		// Sampling coins should differ across agents and restarts; the
		// estimator Seed, by contrast, must be shared (see StreamConfig).
		h := fnv.New64a()
		io.WriteString(h, a.cfg.ID)
		io.WriteString(h, name)
		cfg.SampleSeed = h.Sum64() ^ uint64(time.Now().UnixNano())
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if existing, ok := a.streams[name]; ok {
		if existing.cfg.sharedEquals(cfg) {
			return nil
		}
		return fmt.Errorf("stream %q: %w", name, errStreamExists)
	}
	run, err := buildRunner(cfg)
	if err != nil {
		return err
	}
	a.streams[name] = &agentStream{
		name:  name,
		cfg:   cfg,
		run:   run,
		items: a.metrics.IngestItems.With(name),
		bytes: a.metrics.IngestBytes.With(name),
	}
	a.sorted = nil
	a.logger.Info("stream registered",
		"stream", name, "stat", cfg.Stat, "p", cfg.P, "shards", cfg.Shards)
	return nil
}

// lookup returns a registered stream.
func (a *Agent) lookup(name string) (*agentStream, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	st, ok := a.streams[name]
	return st, ok
}

// snapshotStreams returns the current registry, sorted by name. The
// sorted slice is cached between create/delete events, so the periodic
// FlushAll tick and every list/estimate query share one sort instead of
// re-sorting an unchanged registry each time.
func (a *Agent) snapshotStreams() []*agentStream {
	a.mu.RLock()
	out := a.sorted
	a.mu.RUnlock()
	if out != nil {
		return out
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sorted == nil {
		out = make([]*agentStream, 0, len(a.streams))
		for _, st := range a.streams {
			out = append(out, st)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
		a.sorted = out
	}
	return a.sorted
}

func (a *Agent) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var cfg StreamConfig
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&cfg); err != nil {
		writeError(w, http.StatusBadRequest, "bad stream config: %v", err)
		return
	}
	if err := a.CreateStream(name, cfg); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errStreamExists) {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"stream": name, "status": "registered"})
}

// streamInfo is one row of the list response.
type streamInfo struct {
	Name   string       `json:"name"`
	Config StreamConfig `json:"config"`
	Fed    uint64       `json:"fed"`
	Kept   uint64       `json:"kept"`
}

func (a *Agent) handleList(w http.ResponseWriter, _ *http.Request) {
	var out []streamInfo
	for _, st := range a.snapshotStreams() {
		fed, kept := st.run.counts()
		out = append(out, streamInfo{Name: st.name, Config: st.cfg, Fed: fed, Kept: kept})
	}
	writeJSON(w, http.StatusOK, map[string]any{"streams": out})
}

func (a *Agent) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	a.mu.Lock()
	st, ok := a.streams[name]
	delete(a.streams, name)
	a.sorted = nil
	a.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", name)
		return
	}
	st.run.close()
	a.logger.Info("stream deleted", "stream", name)
	writeJSON(w, http.StatusOK, map[string]string{"stream": name, "status": "deleted"})
}

func (a *Agent) handleIngest(w http.ResponseWriter, r *http.Request) {
	a.metrics.IngestRequests.Inc()
	st, ok := a.lookup(r.PathValue("name"))
	if !ok {
		a.metrics.IngestErrors.With(causeUnknownStream).Inc()
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("name"))
		return
	}
	format, err := parseIngestType(r.Header.Get("Content-Type"))
	if err != nil {
		a.metrics.IngestErrors.With(causeContentType).Inc()
		writeError(w, http.StatusBadRequest, "bad ingest body: %v", err)
		return
	}
	// A declared length over the limit is doomed before the first byte:
	// reject it here so the streaming binary path never ingests a
	// prefix of a request MaxBytesReader would kill partway through.
	if r.ContentLength > maxIngestBytes {
		a.metrics.IngestErrors.With(causeTooLarge).Inc()
		writeError(w, http.StatusRequestEntityTooLarge,
			"ingest body %d bytes exceeds the %d-byte limit", r.ContentLength, int64(maxIngestBytes))
		return
	}
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, maxIngestBytes)}
	// One timing coin per request covers both histograms: unsampled
	// requests skip every clock read as well as the mutex-guarded
	// quantile inserts. The exact counters below are never sampled.
	sampled := (a.obsTick.Add(1)-1)%uint64(a.cfg.ObsSampleEvery) == 0
	var start time.Time
	var feed time.Duration
	if sampled {
		start = time.Now()
	}
	var n int
	switch format {
	case formatBinary:
		// Binary bodies stream through pooled chunk buffers that are
		// handed to the pipeline with ownership — no per-request
		// allocation, no materialized request, and no copy between the
		// decoder and the shard queues; each chunk buffer returns to the
		// decode pool when its shard worker has applied it. A mid-body
		// error cannot un-ingest earlier chunks, so the error reports how
		// many items were already consumed. Feed time is accumulated
		// inside the sink so the decode histogram isolates parsing from
		// pipeline backpressure.
		sink := func(chunk stream.Slice, release func()) {
			st.run.ingestOwned(chunk, release)
		}
		if sampled {
			sink = func(chunk stream.Slice, release func()) {
				t0 := time.Now()
				st.run.ingestOwned(chunk, release)
				feed += time.Since(t0)
			}
		}
		n, err = decodeBinaryStreamOwned(body, sink)
	case formatBinaryWeighted:
		// Weighted binary bodies ride the same ownership-transfer shape
		// through their own chunk pool (16-byte records halve the items
		// per chunk, not the bytes).
		sink := func(chunk stream.WSlice, release func()) {
			st.run.ingestWeightedOwned(chunk, release)
		}
		if sampled {
			sink = func(chunk stream.WSlice, release func()) {
				t0 := time.Now()
				st.run.ingestWeightedOwned(chunk, release)
				feed += time.Since(t0)
			}
		}
		n, err = decodeWeightedBinaryStreamOwned(body, sink)
	case formatTextWeighted:
		sink := func(chunk stream.WSlice) {
			st.run.ingestWeightedCopy(chunk)
		}
		if sampled {
			sink = func(chunk stream.WSlice) {
				t0 := time.Now()
				st.run.ingestWeightedCopy(chunk)
				feed += time.Since(t0)
			}
		}
		n, err = decodeWeightedTextStream(body, sink)
	default:
		// Text bodies stream through the same pooled chunk shape as
		// binary ones (the whole-body materialization this path once did
		// made text ingest allocation-bound); chunks are copied into the
		// pipeline's batch buffers, so the decode buffers recycle per
		// call.
		sink := func(chunk stream.Slice) {
			st.run.ingestCopy(chunk)
		}
		if sampled {
			sink = func(chunk stream.Slice) {
				t0 := time.Now()
				st.run.ingestCopy(chunk)
				feed += time.Since(t0)
			}
		}
		n, err = decodeTextStream(body, sink)
	}
	if sampled {
		a.metrics.IngestDecode.Observe((time.Since(start) - feed).Seconds())
		a.metrics.ShardFeed.Observe(feed.Seconds())
	}
	st.items.Add(uint64(n))
	st.bytes.Add(uint64(body.n))
	if err != nil {
		cause := causeDecode
		if errors.Is(err, errBadWeight) {
			cause = causeBadWeight
		}
		a.metrics.IngestErrors.With(cause).Inc()
		writeError(w, http.StatusBadRequest, "bad ingest body after %d items: %v", n, err)
		return
	}
	writeIngested(w, n)
}

// countingReader counts bytes consumed from the wrapped reader — the
// ingest_bytes / summary_bytes_received accounting tap.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// writeIngested renders the ingest success envelope without the generic
// JSON encoder: the one response on the daemon's hottest endpoint is
// worth formatting into a stack buffer.
func writeIngested(w http.ResponseWriter, n int) {
	var buf [40]byte
	b := append(buf[:0], `{"ingested":`...)
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

func (a *Agent) handleEstimate(w http.ResponseWriter, r *http.Request) {
	a.metrics.EstimateQueries.Inc()
	st, ok := a.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("name"))
		return
	}
	est, err := st.run.estimates()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "estimate failed: %v", err)
		return
	}
	fed, kept := st.run.counts()
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": st.name, "fed": fed, "kept": kept, "estimates": est,
	})
}

func (a *Agent) handleFlushOne(w http.ResponseWriter, r *http.Request) {
	st, ok := a.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("name"))
		return
	}
	if err := a.shipStream(r.Context(), st); err != nil {
		writeError(w, http.StatusBadGateway, "ship failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shipped": 1})
}

func (a *Agent) handleFlushAll(w http.ResponseWriter, r *http.Request) {
	n, err := a.FlushAll(r.Context())
	if err != nil {
		writeError(w, http.StatusBadGateway, "ship failed after %d streams: %v", n, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shipped": n})
}

// FlushAll ships every stream's cumulative summary upstream, returning
// how many shipped.
func (a *Agent) FlushAll(ctx context.Context) (int, error) {
	var errs []error
	n := 0
	for _, st := range a.snapshotStreams() {
		if err := a.shipStream(ctx, st); err != nil {
			errs = append(errs, fmt.Errorf("stream %q: %w", st.name, err))
			continue
		}
		n++
	}
	return n, errors.Join(errs...)
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler that
// turns (boot, flush counter) into well-spread trace IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// shipStream serializes one stream's cumulative state and POSTs it to
// the collector. Because the payload is cumulative and ordered by Seq, a
// lost or duplicated shipment is harmless — the collector keeps the
// newest state per agent. Every shipment carries a trace ID and the
// flush wall time, and lands in the agent's /debug/tracez ring as a
// "ship" span; the collector records the matching "fold" span.
func (a *Agent) shipStream(ctx context.Context, st *agentStream) error {
	if a.cfg.Upstream == "" {
		a.metrics.ShipErrors.With(causeNoUpstream).Inc()
		return fmt.Errorf("no upstream configured")
	}
	start := time.Now()
	// Snapshot and sequence number are taken under one lock so Seq order
	// equals snapshot order; sends may still arrive out of order, which
	// the collector's (Boot, Seq) check absorbs.
	st.shipMu.Lock()
	payload, epoch, fed, kept, err := st.run.snapshot()
	if err != nil {
		st.shipMu.Unlock()
		a.metrics.ShipErrors.With(causeSnapshot).Inc()
		return err
	}
	st.seq++
	sum := Summary{
		Agent:     a.cfg.ID,
		Stream:    st.name,
		Boot:      a.boot,
		Seq:       st.seq,
		Config:    st.cfg,
		Fed:       fed,
		Kept:      kept,
		Epoch:     epoch,
		TraceID:   mix64(a.boot ^ (a.traceSeq.Add(1) * 0x9E3779B97F4A7C15)),
		FlushedAt: start,
		Payload:   payload,
	}
	st.shipMu.Unlock()
	span := obs.Span{
		TraceID: sum.TraceID, Stage: "ship", Stream: st.name, Agent: a.cfg.ID, Start: start,
	}
	fail := func(cause string, err error) error {
		a.metrics.ShipErrors.With(cause).Inc()
		span.Err = err.Error()
		a.metrics.Trace.Record(span)
		return err
	}
	body, err := json.Marshal(sum)
	if err != nil {
		return fail(causeMarshal, err)
	}
	span.SnapshotNs = time.Since(start).Nanoseconds()
	span.Bytes = len(body)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.Upstream+"/v1/collect", bytes.NewReader(body))
	if err != nil {
		return fail(causeRequest, err)
	}
	req.Header.Set("Content-Type", "application/json")
	postStart := time.Now()
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return fail(causeNetwork, err)
	}
	defer resp.Body.Close()
	span.PostNs = time.Since(postStart).Nanoseconds()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fail(causeStatus, fmt.Errorf("collector returned %s: %s", resp.Status, bytes.TrimSpace(msg)))
	}
	a.metrics.SummariesOut.Inc()
	a.metrics.SummaryBytesOut.Add(uint64(len(body)))
	a.metrics.AgentFlush.Since(start)
	a.metrics.Trace.Record(span)
	return nil
}

// Run drives periodic shipping until ctx is canceled, then performs a
// final flush and closes every stream — the agent's graceful-shutdown
// path. It returns the final flush's error, if any.
func (a *Agent) Run(ctx context.Context) error {
	ticker := time.NewTicker(a.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if a.cfg.Upstream == "" {
				continue
			}
			if _, err := a.FlushAll(ctx); err != nil {
				a.logger.Warn("periodic flush failed", "err", err)
			}
		case <-ctx.Done():
			var err error
			if a.cfg.Upstream != "" {
				// Final flush with a fresh deadline: ctx is already dead.
				flushCtx, cancel := context.WithTimeout(context.Background(), a.cfg.ShutdownFlushTimeout)
				_, err = a.FlushAll(flushCtx)
				cancel()
			}
			a.Close()
			return err
		}
	}
}

// Close stops every stream pipeline. It does not flush; use Run or
// FlushAll for that.
func (a *Agent) Close() {
	for _, st := range a.snapshotStreams() {
		st.run.close()
	}
}
