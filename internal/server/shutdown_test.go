package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestShutdownFlushTimeoutBoundsSlowCollector proves a hung collector
// cannot stall an agent's graceful shutdown past the configured bound:
// the final flush is abandoned (with an error) once
// ShutdownFlushTimeout elapses.
func TestShutdownFlushTimeoutBoundsSlowCollector(t *testing.T) {
	// A collector that never answers: it parks every /v1/collect until
	// the client gives up (or the test ends — Close waits for handlers,
	// so release before it runs).
	release := make(chan struct{})
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
	}))
	defer stuck.Close()
	defer close(release)

	agent := NewAgent(AgentConfig{
		ID:                   "doomed",
		Upstream:             stuck.URL,
		FlushInterval:        time.Hour, // only the shutdown flush fires
		ShutdownFlushTimeout: 100 * time.Millisecond,
	})
	if err := agent.CreateStream("s", StreamConfig{Stat: "f0", P: 0.5, Seed: 1, Presampled: true, Shards: 1}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- agent.Run(ctx) }()
	cancel()

	start := time.Now()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("final flush against a hung collector reported success")
		}
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("shutdown took %v despite a 100ms flush bound", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on the stuck collector")
	}
}

// TestShutdownFlushTimeoutDefault pins the default so the config change
// stays behavior-compatible.
func TestShutdownFlushTimeoutDefault(t *testing.T) {
	a := NewAgent(AgentConfig{ID: "d"})
	defer a.Close()
	if a.cfg.ShutdownFlushTimeout != 5*time.Second {
		t.Fatalf("default ShutdownFlushTimeout = %v, want 5s", a.cfg.ShutdownFlushTimeout)
	}
}
