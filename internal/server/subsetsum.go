package server

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/http"
	"sort"

	"substream/internal/estimator"
	"substream/internal/stream"
)

// Subset-sum queries are the daemon-level rendering of the weighted
// item model's Horvitz–Thompson estimator: "how much weight (bytes,
// cost, latency budget) did keys matching a predicate carry?" The HTTP
// surface expresses the predicate as an IPv4 CIDR prefix under the
// netflow key convention — the address in the key's low 32 bits — so a
// collector can be asked for "bytes from 10.0.0.0/8 across the fleet"
// without shipping code.

// subsetPred compiles an IPv4 CIDR prefix into the item predicate of a
// subset-sum query. Keys carry the IPv4 address in their low 32 bits
// (higher bits are free for ports or protocol tags and are masked off),
// so a prefix matches the contiguous key range [network, broadcast].
func subsetPred(prefix string) (func(stream.Item) bool, error) {
	_, ipnet, err := net.ParseCIDR(prefix)
	if err != nil {
		return nil, fmt.Errorf("bad prefix: %v", err)
	}
	ip4 := ipnet.IP.To4()
	ones, bits := ipnet.Mask.Size()
	if ip4 == nil || bits != 32 {
		return nil, fmt.Errorf("prefix %q is not IPv4", prefix)
	}
	base := uint64(binary.BigEndian.Uint32(ip4))
	hi := base | (uint64(1)<<uint(32-ones) - 1)
	return func(it stream.Item) bool {
		v := uint64(it) & 0xffff_ffff
		return v >= base && v <= hi
	}, nil
}

// subsetQuery parses the shared query parameters of the subset-sum
// endpoints: prefix (required, IPv4 CIDR) and scope (cumulative —
// the default — or window).
func subsetQuery(r *http.Request) (pred func(stream.Item) bool, windowScope bool, prefix, scope string, err error) {
	q := r.URL.Query()
	prefix = q.Get("prefix")
	if prefix == "" {
		return nil, false, "", "", fmt.Errorf("subsetsum needs a prefix parameter (IPv4 CIDR, e.g. 10.0.0.0/8)")
	}
	pred, err = subsetPred(prefix)
	if err != nil {
		return nil, false, "", "", err
	}
	scope = q.Get("scope")
	switch scope {
	case "":
		scope = "cumulative"
	case "cumulative":
	case "window":
		windowScope = true
	default:
		return nil, false, "", "", fmt.Errorf("unknown scope %q (want cumulative or window)", scope)
	}
	return pred, windowScope, prefix, scope, nil
}

// handleSubsetSum answers a subset-sum query from the agent's local
// shard replicas — the single-monitor view of the weight matching the
// prefix.
func (a *Agent) handleSubsetSum(w http.ResponseWriter, r *http.Request) {
	a.metrics.EstimateQueries.Inc()
	st, ok := a.lookup(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown stream %q", r.PathValue("name"))
		return
	}
	pred, windowScope, prefix, scope, err := subsetQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v, ok, err := st.run.subsetSum(pred, windowScope)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "subset sum failed: %v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusBadRequest,
			"stream %q (stat %q) answers no subset sums in scope %q", st.name, st.cfg.Stat, scope)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": st.name, "prefix": prefix, "scope": scope, "subset_sum": v,
	})
}

// SubsetSumResult is the collector's answer to one subset-sum query.
type SubsetSumResult struct {
	Value float64
	// OK is false when the stream's stat (or the requested scope) has no
	// subset-sum capability.
	OK      bool
	Agents  int
	Skipped int
}

// SubsetSum folds the latest summary of every fresh agent of the stream
// and answers the subset-sum query against the fold — the fleet-wide
// weight matching the predicate, with Estimate's staleness rules.
func (c *Collector) SubsetSum(name string, pred func(stream.Item) bool, windowScope bool) (SubsetSumResult, error) {
	c.mu.RLock()
	st, ok := c.streams[name]
	if !ok {
		c.mu.RUnlock()
		return SubsetSumResult{}, fmt.Errorf("unknown stream %q", name)
	}
	now := c.cfg.Now()
	var out SubsetSumResult
	ids := make([]string, 0, len(st.agents))
	for id, state := range st.agents {
		if c.stale(state, now) {
			out.Skipped++
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out.Agents = len(ids)
	states := make([]estimator.Estimator, len(ids))
	for i, id := range ids {
		states[i] = st.agents[id].decoded
	}
	fold := st.fold
	c.mu.RUnlock()

	if len(states) == 0 && out.Skipped > 0 {
		return out, fmt.Errorf("stream %q: all %d retained summaries are older than the max age",
			name, out.Skipped)
	}
	acc, err := fold.foldStates(states)
	if err != nil {
		return out, err
	}
	out.Value, out.OK, err = subsetSumOf(acc, pred, windowScope)
	return out, err
}

// handleSubsetSum answers GET /v1/subsetsum?stream=...&prefix=... at
// the collector.
func (c *Collector) handleSubsetSum(w http.ResponseWriter, r *http.Request) {
	c.metrics.EstimateQueries.Inc()
	name := r.URL.Query().Get("stream")
	if name == "" {
		writeError(w, http.StatusBadRequest, "subsetsum needs a stream parameter")
		return
	}
	pred, windowScope, prefix, scope, err := subsetQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := c.SubsetSum(name, pred, windowScope)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case res.Skipped > 0 && res.Agents == 0:
			status = http.StatusServiceUnavailable
		case res.Agents == 0:
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	if !res.OK {
		writeError(w, http.StatusBadRequest,
			"stream %q answers no subset sums in scope %q", name, scope)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stream": name, "prefix": prefix, "scope": scope,
		"agents": res.Agents, "skipped_stale": res.Skipped, "subset_sum": res.Value,
	})
}
