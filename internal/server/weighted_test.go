package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"substream/internal/rng"
	"substream/internal/stream"
)

// encodeWeightedBinary encodes parallel key/weight slices in the
// weighted binary ingest format (16-byte records).
func encodeWeightedBinary(keys []uint64, weights []float64) []byte {
	buf := make([]byte, 16*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[i*16:], k)
		binary.LittleEndian.PutUint64(buf[i*16+8:], math.Float64bits(weights[i]))
	}
	return buf
}

func wbinBody(s stream.WSlice) []byte {
	keys := make([]uint64, len(s))
	weights := make([]float64, len(s))
	for i, it := range s {
		keys[i] = uint64(it.Key)
		weights[i] = it.Weight
	}
	return encodeWeightedBinary(keys, weights)
}

func collectWSink(dst *stream.WSlice) func(stream.WSlice) {
	return func(chunk stream.WSlice) { *dst = append(*dst, chunk...) }
}

func TestDecodeWeightedBinaryStreamRoundTrip(t *testing.T) {
	// Spans several pooled chunks and ends off a chunk boundary, so the
	// carry-between-reads path runs.
	items := make(stream.WSlice, 3*weightedChunkItems+617)
	for i := range items {
		items[i] = stream.WItem{Key: stream.Item(i + 1), Weight: float64(i%97) + 0.5}
	}
	var got stream.WSlice
	n, err := decodeWeightedBinaryStream(bytes.NewReader(wbinBody(items)), collectWSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(items) || len(got) != len(items) {
		t.Fatalf("decoded %d records (sink saw %d), want %d", n, len(got), len(items))
	}
	for i, it := range items {
		if got[i] != it {
			t.Fatalf("record %d decoded as %+v, want %+v", i, got[i], it)
		}
	}
}

func TestDecodeWeightedBinaryStreamRejectsCorruption(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		var got stream.WSlice
		_, err := decodeWeightedBinaryStream(bytes.NewReader([]byte{1, 2, 3}), collectWSink(&got))
		if err == nil || !strings.Contains(err.Error(), "truncated mid-record") {
			t.Fatalf("truncated body error = %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("sink saw %d records from a truncated 3-byte body", len(got))
		}
	})
	t.Run("half-record", func(t *testing.T) {
		// A full key with its weight cut off is still a truncation.
		var got stream.WSlice
		body := encodeWeightedBinary([]uint64{5}, []float64{2})[:12]
		_, err := decodeWeightedBinaryStream(bytes.NewReader(body), collectWSink(&got))
		if err == nil || !strings.Contains(err.Error(), "truncated mid-record") {
			t.Fatalf("half-record error = %v", err)
		}
	})
	t.Run("zero-key", func(t *testing.T) {
		var got stream.WSlice
		body := encodeWeightedBinary([]uint64{5, 0, 7}, []float64{1, 1, 1})
		n, err := decodeWeightedBinaryStream(bytes.NewReader(body), collectWSink(&got))
		if err == nil || !strings.Contains(err.Error(), "1-based universe") {
			t.Fatalf("zero-key error = %v", err)
		}
		if n != len(got) {
			t.Fatalf("reported %d ingested records but sink saw %d", n, len(got))
		}
	})
	for _, bad := range []float64{0, -1.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		t.Run(fmt.Sprintf("weight-%v", bad), func(t *testing.T) {
			var got stream.WSlice
			body := encodeWeightedBinary([]uint64{5, 6}, []float64{1, bad})
			_, err := decodeWeightedBinaryStream(bytes.NewReader(body), collectWSink(&got))
			if err == nil || !strings.Contains(err.Error(), errBadWeight.Error()) {
				t.Fatalf("weight %v error = %v", bad, err)
			}
		})
	}
}

func TestDecodeWeightedTextStream(t *testing.T) {
	// Weight column present, absent (default 1), CRLF line, blank line,
	// and a final line without its newline.
	body := "7 2.5\n8\r\n\n9 1e3\n10"
	var got stream.WSlice
	n, err := decodeWeightedTextStream(strings.NewReader(body), collectWSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	want := stream.WSlice{{Key: 7, Weight: 2.5}, {Key: 8, Weight: 1}, {Key: 9, Weight: 1000}, {Key: 10, Weight: 1}}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", n, len(want))
	}
	for i, it := range want {
		if got[i] != it {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], it)
		}
	}

	for _, bad := range []string{"5 -1\n", "5 nan\n", "5 +Inf\n", "5 heavy\n"} {
		if _, err := decodeWeightedTextStream(strings.NewReader(bad), func(stream.WSlice) {}); err == nil ||
			!strings.Contains(err.Error(), errBadWeight.Error()) {
			t.Fatalf("line %q error = %v, want bad weight", bad, err)
		}
	}
	if _, err := decodeWeightedTextStream(strings.NewReader("0 2\n"), func(stream.WSlice) {}); err == nil ||
		!strings.Contains(err.Error(), "1-based universe") {
		t.Fatalf("zero key error = %v", err)
	}
}

// TestDecodeWeightedBinaryStreamAllocFree extends the steady-state
// zero-allocation guarantee to the weighted decode path.
func TestDecodeWeightedBinaryStreamAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race for the strict bound")
	}
	items := make(stream.WSlice, 2*weightedChunkItems+100)
	for i := range items {
		items[i] = stream.WItem{Key: stream.Item(i + 1), Weight: 2}
	}
	body := wbinBody(items)
	rd := bytes.NewReader(body)
	sink := func(stream.WSlice) {}
	if _, err := decodeWeightedBinaryStream(rd, sink); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(body)
		if _, err := decodeWeightedBinaryStream(rd, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decodeWeightedBinaryStream allocates %v objects per request in steady state, want 0", allocs)
	}
}

// ipKey packs an IPv4 address (given as a.b.c.d octets) into the low 32
// bits of an item key — the netflow convention the subset-sum endpoints
// assume.
func ipKey(a, b, c, d uint64) stream.Item {
	return stream.Item(a<<24 | b<<16 | c<<8 | d)
}

// weightedFlows builds a deterministic weighted stream whose keys are
// IPv4 addresses, a pre-computable fraction of them inside 10.0.0.0/8.
func weightedFlows(n int, seed uint64) (s stream.WSlice, insideBytes float64) {
	r := rng.New(seed)
	s = make(stream.WSlice, n)
	for i := range s {
		var key stream.Item
		if r.Uint64n(8) < 3 { // ~3/8 of flows from 10.0.0.0/8
			key = ipKey(10, r.Uint64n(256), r.Uint64n(256), r.Uint64n(255)+1)
		} else {
			key = ipKey(192, 168, r.Uint64n(256), r.Uint64n(255)+1)
		}
		bytes := float64(100 + r.Uint64n(1400))
		s[i] = stream.WItem{Key: key, Weight: bytes}
		if uint64(key)>>24 == 10 {
			insideBytes += bytes
		}
	}
	return s, insideBytes
}

// subsetResp mirrors the subset-sum endpoints' JSON shape.
type subsetResp struct {
	Stream    string  `json:"stream"`
	Prefix    string  `json:"prefix"`
	Scope     string  `json:"scope"`
	Agents    int     `json:"agents"`
	SubsetSum float64 `json:"subset_sum"`
}

// TestSubsetSumEndToEnd is the weighted model's acceptance test at the
// service layer: two agents ingest disjoint weighted binary streams
// into VarOpt reservoirs, ship their summaries, and the collector's
// CDKLT fold must answer "bytes from 10.0.0.0/8" within tolerance of
// an exact weighted counter over the union — while each agent's local
// endpoint answers for its own substream.
func TestSubsetSumEndToEnd(t *testing.T) {
	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()

	cfg := StreamConfig{Stat: "varopt", P: 1, Seed: 42, Budget: 512, Presampled: true, Shards: 2, Batch: 256}
	cfgBody, _ := json.Marshal(cfg)

	const perAgent = 20000
	var exactTotal float64
	for i := 0; i < 2; i++ {
		flows, inside := weightedFlows(perAgent, uint64(100+i))
		exactTotal += inside
		agent := NewAgent(AgentConfig{ID: fmt.Sprintf("edge-%d", i), Upstream: cts.URL})
		ats := httptest.NewServer(agent.Handler())
		t.Cleanup(ats.Close)
		t.Cleanup(agent.Close)
		if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/flows", "application/json", cfgBody, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: status %d", resp.StatusCode)
		}
		if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/flows/ingest", ContentTypeBinaryWeighted, wbinBody(flows), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("weighted ingest: status %d", resp.StatusCode)
		}

		// The agent-local endpoint answers for this agent's substream.
		var local subsetResp
		if resp := do(t, http.MethodGet, ats.URL+"/v1/streams/flows/subsetsum?prefix=10.0.0.0/8", "", nil, &local); resp.StatusCode != http.StatusOK {
			t.Fatalf("agent subsetsum: status %d", resp.StatusCode)
		}
		if local.Scope != "cumulative" {
			t.Fatalf("agent subsetsum scope %q", local.Scope)
		}
		if math.Abs(local.SubsetSum-inside) > 0.15*inside {
			t.Fatalf("agent %d subset sum %v, want ~%v", i, local.SubsetSum, inside)
		}

		if resp := do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("flush: status %d", resp.StatusCode)
		}
	}

	var got subsetResp
	if resp := do(t, http.MethodGet, cts.URL+"/v1/subsetsum?stream=flows&prefix=10.0.0.0/8", "", nil, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("collector subsetsum: status %d", resp.StatusCode)
	}
	if got.Agents != 2 {
		t.Fatalf("collector folded %d agents, want 2", got.Agents)
	}
	if math.Abs(got.SubsetSum-exactTotal) > 0.15*exactTotal {
		t.Fatalf("fleet subset sum %v, want ~%v (exact weighted counter)", got.SubsetSum, exactTotal)
	}
	// A disjoint prefix carries none of the weight.
	var none subsetResp
	do(t, http.MethodGet, cts.URL+"/v1/subsetsum?stream=flows&prefix=172.16.0.0/12", "", nil, &none)
	if none.SubsetSum != 0 {
		t.Fatalf("172.16.0.0/12 subset sum %v, want 0", none.SubsetSum)
	}

	// Query validation: missing stream, bad prefix, bad scope, window
	// scope on an unwindowed stream, unknown stream.
	for _, q := range []struct {
		url    string
		status int
	}{
		{"/v1/subsetsum?prefix=10.0.0.0/8", http.StatusBadRequest},
		{"/v1/subsetsum?stream=flows&prefix=bogus", http.StatusBadRequest},
		{"/v1/subsetsum?stream=flows&prefix=10.0.0.0/8&scope=sideways", http.StatusBadRequest},
		{"/v1/subsetsum?stream=flows&prefix=10.0.0.0/8&scope=window", http.StatusBadRequest},
		{"/v1/subsetsum?stream=nope&prefix=10.0.0.0/8", http.StatusNotFound},
	} {
		if resp := do(t, http.MethodGet, cts.URL+q.url, "", nil, nil); resp.StatusCode != q.status {
			t.Fatalf("GET %s: status %d, want %d", q.url, resp.StatusCode, q.status)
		}
	}
}

// TestWindowedSubsetSumOverHTTP drives the "bytes from subnet X in the
// last W epochs" scenario through the daemon: a windowed varopt stream
// fed weighted flows across manual epochs must answer scope=window from
// only the retained epochs, at the agent and — after shipping — at the
// collector.
func TestWindowedSubsetSumOverHTTP(t *testing.T) {
	const (
		W        = 2
		epochs   = 4
		perEpoch = 1500
	)
	clock := withManualEpochs(t)

	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	defer cts.Close()
	agent := NewAgent(AgentConfig{ID: "edge", Upstream: cts.URL})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()

	cfg, _ := json.Marshal(StreamConfig{
		Stat: "varopt", P: 1, Seed: 9, Budget: 512, Presampled: true, Shards: 2, Batch: 128,
		Window: W, Epoch: Duration(time.Second),
	})
	do(t, http.MethodPut, ats.URL+"/v1/streams/w", "application/json", cfg, nil)

	inside := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		clock.Set(uint64(e))
		flows, in := weightedFlows(perEpoch, uint64(300+e))
		inside[e] = in
		if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/w/ingest", ContentTypeBinaryWeighted, wbinBody(flows), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("epoch %d ingest: status %d", e, resp.StatusCode)
		}
		// Quiesce before the next boundary so every batch lands in the
		// epoch that fed it (the estimate path Syncs the pipeline).
		do(t, http.MethodGet, ats.URL+"/v1/streams/w/estimate", "", nil, nil)
	}

	var wantWindow, wantCum float64
	for e, in := range inside {
		wantCum += in
		if e >= epochs-W {
			wantWindow += in
		}
	}
	check := func(host, label string, urlPath string) {
		var win, cum subsetResp
		if resp := do(t, http.MethodGet, host+urlPath+"&scope=window", "", nil, &win); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s window subsetsum: status %d", label, resp.StatusCode)
		}
		do(t, http.MethodGet, host+urlPath, "", nil, &cum)
		if math.Abs(win.SubsetSum-wantWindow) > 0.3*wantWindow {
			t.Fatalf("%s window subset sum %v, want ~%v", label, win.SubsetSum, wantWindow)
		}
		if math.Abs(cum.SubsetSum-wantCum) > 0.3*wantCum {
			t.Fatalf("%s cumulative subset sum %v, want ~%v", label, cum.SubsetSum, wantCum)
		}
		// The scopes genuinely differ (cumulative holds ~2x the window).
		if math.Abs(win.SubsetSum-wantCum) < math.Abs(wantCum-wantWindow)/2 {
			t.Fatalf("%s window answer %v tracks the cumulative scope %v", label, win.SubsetSum, wantCum)
		}
	}
	check(ats.URL, "agent", "/v1/streams/w/subsetsum?prefix=10.0.0.0/8")

	if resp := do(t, http.MethodPost, ats.URL+"/flush", "", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatal("flush failed")
	}
	check(cts.URL, "collector", "/v1/subsetsum?stream=w&prefix=10.0.0.0/8")
}

// TestSubsetSumRequiresSummer pins the no-silent-zero contract: a stat
// without the subset-sum capability answers 400, not 0.
func TestSubsetSumRequiresSummer(t *testing.T) {
	agent := NewAgent(AgentConfig{ID: "nosummer"})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()
	cfgBody, _ := json.Marshal(StreamConfig{Stat: "f0", P: 0.5, Seed: 1, Presampled: true})
	do(t, http.MethodPut, ats.URL+"/v1/streams/s", "application/json", cfgBody, nil)
	do(t, http.MethodPost, ats.URL+"/v1/streams/s/ingest", ContentTypeText, []byte("1\n2\n"), nil)
	resp := do(t, http.MethodGet, ats.URL+"/v1/streams/s/subsetsum?prefix=10.0.0.0/8", "", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("f0 subsetsum: status %d, want 400", resp.StatusCode)
	}
}

// TestWeightedTextIngest drives the weighted text content type through
// the HTTP handler onto a varopt stream: explicit weights and the
// default weight-1 column must both land.
func TestWeightedTextIngest(t *testing.T) {
	agent := NewAgent(AgentConfig{ID: "wtext"})
	defer agent.Close()
	ats := httptest.NewServer(agent.Handler())
	defer ats.Close()
	cfgBody, _ := json.Marshal(StreamConfig{Stat: "varopt", P: 1, Seed: 3, Budget: 64, Presampled: true, Shards: 1})
	do(t, http.MethodPut, ats.URL+"/v1/streams/s", "application/json", cfgBody, nil)

	key := uint64(ipKey(10, 1, 2, 3))
	body := fmt.Sprintf("%d 500\n%d\n", key, key) // 500 bytes + default weight 1
	if resp := do(t, http.MethodPost, ats.URL+"/v1/streams/s/ingest", ContentTypeTextWeighted, []byte(body), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("weighted text ingest: status %d", resp.StatusCode)
	}
	var got subsetResp
	do(t, http.MethodGet, ats.URL+"/v1/streams/s/subsetsum?prefix=10.0.0.0/8", "", nil, &got)
	// Two items in a budget-64 reservoir: the sample is exact.
	if got.SubsetSum != 501 {
		t.Fatalf("subset sum %v, want exactly 501", got.SubsetSum)
	}
}

// TestSubsetPred pins the CIDR-to-key-range compilation.
func TestSubsetPred(t *testing.T) {
	pred, err := subsetPred("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		it   stream.Item
		want bool
	}{
		{ipKey(10, 0, 0, 1), true},
		{ipKey(10, 255, 255, 255), true},
		{ipKey(9, 255, 255, 255), false},
		{ipKey(11, 0, 0, 0), false},
		// High bits beyond the IPv4 range are masked off.
		{ipKey(10, 1, 2, 3) | 1<<40, true},
		{ipKey(192, 168, 0, 1), false},
	}
	for _, c := range cases {
		if pred(c.it) != c.want {
			t.Fatalf("pred(%d) = %v, want %v", c.it, !c.want, c.want)
		}
	}
	if p32, err := subsetPred("192.168.1.7/32"); err != nil || !p32(ipKey(192, 168, 1, 7)) || p32(ipKey(192, 168, 1, 8)) {
		t.Fatalf("/32 prefix mismatch (err=%v)", err)
	}
	for _, bad := range []string{"10.0.0.0", "2001:db8::/32", "10.0.0.0/33", ""} {
		if _, err := subsetPred(bad); err == nil {
			t.Fatalf("prefix %q accepted", bad)
		}
	}
}
