package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"substream/internal/quantile"
	"substream/internal/stream"
)

// quantileRankError measures how many ranks the estimate is from the
// φ-quantile of the reference items; 0 when the estimate's tie range
// covers the target rank.
func quantileRankError(items stream.Slice, got, phi float64) float64 {
	vals := make([]float64, len(items))
	for i, it := range items {
		vals[i] = float64(it)
	}
	sort.Float64s(vals)
	target := phi * float64(len(vals))
	lo := sort.SearchFloat64s(vals, got)
	hi := sort.Search(len(vals), func(i int) bool { return vals[i] > got })
	switch {
	case float64(hi) < target:
		return target - float64(hi)
	case float64(lo) > target:
		return float64(lo) - target
	}
	return 0
}

// TestQuantileFleetWithinTwiceEpsilon is the issue's end-to-end
// acceptance test: two agents on MISALIGNED flush schedules ingest
// windowed quantile streams and ship summaries over HTTP; the
// collector's folded answer must agree with one sequential estimator —
// i.e. with the exact stream quantile — within 2ε·n ranks, for both the
// cumulative scope and the last-W-epochs window scope. CKMS folds are
// not bit-identical (unlike the kmv/exactcounter/f0 fleet test, which
// asserts equality), so this battery asserts rank error against the
// exact data, the bound the merge property tests pin shard-by-shard.
func TestQuantileFleetWithinTwiceEpsilon(t *testing.T) {
	const (
		epochs   = 5
		W        = 3
		perChunk = 2500
	)
	chunks := epochChunks(epochs, 2, perChunk)
	clock := withManualEpochs(t)

	collector := NewCollector(CollectorConfig{})
	cts := httptest.NewServer(collector.Handler())
	t.Cleanup(cts.Close)

	cfg := StreamConfig{
		Stat: "quantile", P: 0.5, Seed: 21, Shards: 2, Batch: 128,
		Presampled: true, Window: W, Epoch: Duration(time.Second),
	}
	cfgBody, _ := json.Marshal(cfg)
	var agents []string
	for i := 0; i < 2; i++ {
		agent := NewAgent(AgentConfig{ID: fmt.Sprintf("agent-%d", i), Upstream: cts.URL})
		ats := httptest.NewServer(agent.Handler())
		t.Cleanup(ats.Close)
		t.Cleanup(agent.Close)
		if resp := do(t, http.MethodPut, ats.URL+"/v1/streams/q", "application/json", cfgBody, nil); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create stream: status %d", resp.StatusCode)
		}
		agents = append(agents, ats.URL)
	}

	flush := func(i int) {
		if resp := do(t, http.MethodPost, agents[i]+"/flush", "", nil, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("flush agent %d: status %d", i, resp.StatusCode)
		}
	}
	for e := 0; e < epochs; e++ {
		clock.Set(uint64(e))
		for i, url := range agents {
			if resp := do(t, http.MethodPost, url+"/v1/streams/q/ingest", ContentTypeBinary, binBody(chunks[e][i]), nil); resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest agent %d: status %d", i, resp.StatusCode)
			}
		}
		// Quiesce both pipelines before the next epoch boundary.
		for _, url := range agents {
			do(t, http.MethodGet, url+"/v1/streams/q/estimate", "", nil, nil)
		}
		// Misaligned schedules: agent 0 ships every epoch, agent 1 only
		// mid-run and at the end.
		flush(0)
		if e == 1 || e == epochs-1 {
			flush(1)
		}
	}

	// Exact references: all items, and the last W epochs' items.
	var all, last stream.Slice
	for e := 0; e < epochs; e++ {
		for i := range agents {
			all = append(all, chunks[e][i]...)
			if e >= epochs-W {
				last = append(last, chunks[e][i]...)
			}
		}
	}

	var got estimateResp
	do(t, http.MethodGet, cts.URL+"/v1/streams/q/estimate", "", nil, &got)
	if got.Agents != 2 {
		t.Fatalf("collector folded %d agents, want 2", got.Agents)
	}
	if n := got.Estimates.Values["n"]; n != float64(len(all)) {
		t.Fatalf("cumulative n = %v, want %d", n, len(all))
	}
	if n := got.Estimates.Values["window_n"]; n != float64(len(last)) {
		t.Fatalf("window_n = %v, want %d", n, len(last))
	}
	for _, tg := range quantile.DefaultTargets() {
		key := quantile.QuantileKey(tg.Quantile)
		if err := quantileRankError(all, got.Estimates.Values[key], tg.Quantile); err > 2*tg.Epsilon*float64(len(all)) {
			t.Errorf("global %s: rank error %.0f > 2ε·n = %.0f",
				key, err, 2*tg.Epsilon*float64(len(all)))
		}
		werr := quantileRankError(last, got.Estimates.Values["window_"+key], tg.Quantile)
		if bound := 2 * tg.Epsilon * float64(len(last)); werr > bound {
			t.Errorf("global window_%s: rank error %.0f > 2ε·n = %.0f", key, werr, bound)
		}
	}

	// /v1/streams round-trip: the retained per-agent summaries carry the
	// shipped epochs, and the stream row reports the quantile config.
	var list struct {
		Streams []struct {
			Name   string       `json:"name"`
			Config StreamConfig `json:"config"`
			Agents int          `json:"agents"`
			Detail []struct {
				Agent string `json:"agent"`
				Epoch uint64 `json:"epoch"`
			} `json:"agent_detail"`
		} `json:"streams"`
	}
	do(t, http.MethodGet, cts.URL+"/v1/streams", "", nil, &list)
	if len(list.Streams) != 1 || list.Streams[0].Name != "q" {
		t.Fatalf("list response: %+v", list)
	}
	if got := list.Streams[0].Config.Stat; got != "quantile" {
		t.Errorf("listed stat = %q, want quantile", got)
	}
	if list.Streams[0].Agents != 2 || len(list.Streams[0].Detail) != 2 {
		t.Fatalf("listed %d agents (%d detail rows), want 2", list.Streams[0].Agents, len(list.Streams[0].Detail))
	}
	for _, d := range list.Streams[0].Detail {
		if d.Epoch != epochs-1 {
			t.Errorf("agent %s shipped epoch %d, want %d", d.Agent, d.Epoch, epochs-1)
		}
	}
}
