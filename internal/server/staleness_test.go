package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"substream/internal/core"
	"substream/internal/rng"
	"substream/internal/stream"
)

// fakeNow is a settable time source for staleness tests.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeNow) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// shipF0 builds a self-consistent f0 summary for the staleness tests.
func shipF0(agent string, seq uint64, items []stream.Item) Summary {
	cfg := StreamConfig{Stat: "f0", P: 0.5, Seed: 1, Presampled: true}
	e := core.NewF0Estimator(core.F0Config{P: 0.5}, rng.New(1))
	for _, it := range items {
		e.Observe(it)
	}
	payload, _ := e.MarshalBinary()
	return Summary{
		Agent: agent, Stream: "s", Seq: seq, Config: cfg,
		Fed: uint64(len(items)), Kept: uint64(len(items)), Payload: payload,
	}
}

// TestCollectorSkipsStaleAgents proves a dead agent's retained summary
// ages out of the global estimate — and that MaxSummaryAge 0 keeps the
// old fold-forever behavior.
func TestCollectorSkipsStaleAgents(t *testing.T) {
	clock := &fakeNow{t: time.Unix(1_000_000, 0)}
	c := NewCollector(CollectorConfig{MaxSummaryAge: time.Minute, Now: clock.now})

	if err := c.Accept(shipF0("dead", 1, []stream.Item{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	clock.advance(45 * time.Second)
	if err := c.Accept(shipF0("alive", 1, []stream.Item{4, 5})); err != nil {
		t.Fatal(err)
	}

	// Both fresh: both fold.
	got, err := c.Estimate("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Agents != 2 || got.Skipped != 0 {
		t.Fatalf("fresh fold: agents=%d skipped=%d", got.Agents, got.Skipped)
	}
	if got.Estimates.Values["f0_sampled"] != 5 {
		t.Fatalf("fresh f0_sampled = %v, want 5", got.Estimates.Values["f0_sampled"])
	}

	// 30s later "dead" is 75s old (expired), "alive" 30s (fresh).
	clock.advance(30 * time.Second)
	got, err = c.Estimate("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Agents != 1 || got.Skipped != 1 {
		t.Fatalf("aged fold: agents=%d skipped=%d", got.Agents, got.Skipped)
	}
	if got.Estimates.Values["f0_sampled"] != 2 {
		t.Fatalf("aged f0_sampled = %v, want 2 (alive agent only)", got.Estimates.Values["f0_sampled"])
	}
	if got.Fed != 2 {
		t.Fatalf("aged fed = %d, want the alive agent's 2", got.Fed)
	}

	// A re-shipment refreshes lastSeen and revives the agent.
	if err := c.Accept(shipF0("dead", 2, []stream.Item{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	got, err = c.Estimate("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Agents != 2 || got.Skipped != 0 {
		t.Fatalf("revived fold: agents=%d skipped=%d", got.Agents, got.Skipped)
	}

	// Everyone expired: the estimate fails rather than answering from
	// the void, naming how many were skipped.
	clock.advance(time.Hour)
	if _, err := c.Estimate("s"); err == nil || !strings.Contains(err.Error(), "older than the max age") {
		t.Fatalf("all-stale estimate: %v", err)
	}

	// MaxSummaryAge 0 never expires anything.
	forever := NewCollector(CollectorConfig{Now: clock.now})
	if err := forever.Accept(shipF0("dead", 1, []stream.Item{9})); err != nil {
		t.Fatal(err)
	}
	clock.advance(1000 * time.Hour)
	got, err = forever.Estimate("s")
	if err != nil {
		t.Fatal(err)
	}
	if got.Agents != 1 || got.Skipped != 0 {
		t.Fatalf("age-disabled fold: agents=%d skipped=%d", got.Agents, got.Skipped)
	}
}

// TestListExposesLastSeen checks /v1/streams carries per-agent
// last_seen and the stale flag, and the estimate response the skipped
// count.
func TestListExposesLastSeen(t *testing.T) {
	clock := &fakeNow{t: time.Unix(2_000_000, 0)}
	c := NewCollector(CollectorConfig{MaxSummaryAge: time.Minute, Now: clock.now})
	cts := httptest.NewServer(c.Handler())
	defer cts.Close()

	accepted := clock.now()
	if err := c.Accept(shipF0("a1", 1, []stream.Item{1})); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Minute)
	if err := c.Accept(shipF0("a2", 1, []stream.Item{2})); err != nil {
		t.Fatal(err)
	}

	var list struct {
		Streams []struct {
			Agents int `json:"agents"`
			Detail []struct {
				Agent    string    `json:"agent"`
				LastSeen time.Time `json:"last_seen"`
				Stale    bool      `json:"stale"`
			} `json:"agent_detail"`
		} `json:"streams"`
	}
	do(t, http.MethodGet, cts.URL+"/v1/streams", "", nil, &list)
	if len(list.Streams) != 1 || list.Streams[0].Agents != 2 {
		t.Fatalf("list: %+v", list)
	}
	byAgent := map[string]struct {
		last  time.Time
		stale bool
	}{}
	for _, d := range list.Streams[0].Detail {
		byAgent[d.Agent] = struct {
			last  time.Time
			stale bool
		}{d.LastSeen, d.Stale}
	}
	if !byAgent["a1"].stale || byAgent["a2"].stale {
		t.Fatalf("stale flags: %+v", byAgent)
	}
	if !byAgent["a1"].last.Equal(accepted) {
		t.Fatalf("a1 last_seen = %v, want %v", byAgent["a1"].last, accepted)
	}

	var est struct {
		Agents  int `json:"agents"`
		Skipped int `json:"skipped_stale"`
	}
	do(t, http.MethodGet, cts.URL+"/v1/streams/s/estimate", "", nil, &est)
	if est.Agents != 1 || est.Skipped != 1 {
		t.Fatalf("estimate response: %+v", est)
	}

	// Fleet-wide silence answers 503, distinct from an unknown stream's
	// 404 — a monitor must be able to tell "everyone stopped shipping"
	// from "never registered".
	clock.advance(time.Hour)
	if resp := do(t, http.MethodGet, cts.URL+"/v1/streams/s/estimate", "", nil, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-stale estimate: status %d, want 503", resp.StatusCode)
	}
	if resp := do(t, http.MethodGet, cts.URL+"/v1/streams/nope/estimate", "", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream estimate: status %d, want 404", resp.StatusCode)
	}
}
