package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxIngestBytes bounds one ingest request body (64 MiB ≈ 8M binary
// items), keeping a single request from exhausting memory.
const maxIngestBytes = 64 << 20

// maxSummaryBytes bounds one shipped summary envelope.
const maxSummaryBytes = 256 << 20

// discardLogger is the default when a role is built without a Logger:
// structured logging is opt-in, matching the old nil-Logf behavior.
func discardLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }

// reqSeq numbers requests across all daemon instances in the process;
// the id is only a correlation handle, so a shared sequence is fine
// (and makes ids unique across an in-process agent+collector pair).
var reqSeq atomic.Uint64

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// withRequestLog wraps a handler with request-scoped structured
// logging: every request gets a process-unique id (echoed in the
// X-Request-Id response header so operators can grep a failing call
// back to the log), and completion is logged at Debug with method,
// path, status, and duration. The Enabled check comes first so a
// disabled Debug level pays neither the attr boxing nor the status
// capture — the ingest hot path sees only the id header.
func withRequestLog(logger *slog.Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqSeq.Add(1)
		w.Header().Set("X-Request-Id", strconv.FormatUint(id, 10))
		if !logger.Enabled(r.Context(), slog.LevelDebug) {
			h.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		logger.Debug("http request",
			"req_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", time.Since(start),
		)
	})
}

// Server wraps an http.Server with explicit startup (so callers learn
// the bound address) and graceful shutdown — the skeleton cmd/substreamd
// wires signals into.
type Server struct {
	http *http.Server
	ln   net.Listener
	done chan error

	shutdownOnce sync.Once
	shutdownErr  error
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves h in
// the background.
func Start(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		http: &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() {
		err := s.http.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops accepting connections, drains in-flight requests, and
// waits for the serve loop to exit. It is idempotent: repeat calls
// return the first call's result instead of blocking.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		if err := s.http.Shutdown(ctx); err != nil {
			s.shutdownErr = err
			return
		}
		s.shutdownErr = <-s.done
	})
	return s.shutdownErr
}
