package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Metrics is the daemon's expvar instrument panel. The vars live in an
// unregistered expvar.Map (not the process-global registry), so multiple
// daemons — e.g. an agent fleet inside one test binary — never collide.
type Metrics struct {
	vars *expvar.Map

	IngestRequests  *expvar.Int
	IngestItems     *expvar.Int
	IngestErrors    *expvar.Int
	EstimateQueries *expvar.Int
	SummariesOut    *expvar.Int
	ShipErrors      *expvar.Int
	SummariesIn     *expvar.Int
	CollectRejects  *expvar.Int
}

// newMetrics builds an instrument panel.
func newMetrics() *Metrics {
	m := &Metrics{vars: new(expvar.Map).Init()}
	add := func(name string) *expvar.Int {
		v := new(expvar.Int)
		m.vars.Set(name, v)
		return v
	}
	m.IngestRequests = add("ingest_requests")
	m.IngestItems = add("ingest_items")
	m.IngestErrors = add("ingest_errors")
	m.EstimateQueries = add("estimate_queries")
	m.SummariesOut = add("summaries_shipped")
	m.ShipErrors = add("ship_errors")
	m.SummariesIn = add("summaries_received")
	m.CollectRejects = add("summaries_rejected")
	return m
}

// handler serves the panel as JSON, expvar-style.
func (m *Metrics) handler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, m.vars.String())
}

// addOps registers the operational endpoints shared by both roles.
func addOps(mux *http.ServeMux, role string, m *Metrics) {
	start := time.Now()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"role":   role,
			"uptime": time.Since(start).Round(time.Millisecond).String(),
		})
	})
	mux.HandleFunc("GET /metricsz", m.handler)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxIngestBytes bounds one ingest request body (64 MiB ≈ 8M binary
// items), keeping a single request from exhausting memory.
const maxIngestBytes = 64 << 20

// maxSummaryBytes bounds one shipped summary envelope.
const maxSummaryBytes = 256 << 20

// Server wraps an http.Server with explicit startup (so callers learn
// the bound address) and graceful shutdown — the skeleton cmd/substreamd
// wires signals into.
type Server struct {
	http *http.Server
	ln   net.Listener
	done chan error

	shutdownOnce sync.Once
	shutdownErr  error
}

// Start listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves h in
// the background.
func Start(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		http: &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() {
		err := s.http.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the base URL of the server.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown stops accepting connections, drains in-flight requests, and
// waits for the serve loop to exit. It is idempotent: repeat calls
// return the first call's result instead of blocking.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		if err := s.http.Shutdown(ctx); err != nil {
			s.shutdownErr = err
			return
		}
		s.shutdownErr = <-s.done
	})
	return s.shutdownErr
}
